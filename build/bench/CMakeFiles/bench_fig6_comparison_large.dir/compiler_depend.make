# Empty compiler generated dependencies file for bench_fig6_comparison_large.
# This may be replaced when dependencies are built.
