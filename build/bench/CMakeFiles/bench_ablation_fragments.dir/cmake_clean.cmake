file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fragments.dir/bench_ablation_fragments.cc.o"
  "CMakeFiles/bench_ablation_fragments.dir/bench_ablation_fragments.cc.o.d"
  "bench_ablation_fragments"
  "bench_ablation_fragments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fragments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
