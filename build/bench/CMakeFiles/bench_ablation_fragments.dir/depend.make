# Empty dependencies file for bench_ablation_fragments.
# This may be replaced when dependencies are built.
