# Empty dependencies file for bench_table1_framework.
# This may be replaced when dependencies are built.
