# Empty dependencies file for bench_fig11_pivots.
# This may be replaced when dependencies are built.
