file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_pivots.dir/bench_fig11_pivots.cc.o"
  "CMakeFiles/bench_fig11_pivots.dir/bench_fig11_pivots.cc.o.d"
  "bench_fig11_pivots"
  "bench_fig11_pivots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_pivots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
