# Empty compiler generated dependencies file for bench_fig8_datascale.
# This may be replaced when dependencies are built.
