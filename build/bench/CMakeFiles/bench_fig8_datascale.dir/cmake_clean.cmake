file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_datascale.dir/bench_fig8_datascale.cc.o"
  "CMakeFiles/bench_fig8_datascale.dir/bench_fig8_datascale.cc.o.d"
  "bench_fig8_datascale"
  "bench_fig8_datascale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_datascale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
