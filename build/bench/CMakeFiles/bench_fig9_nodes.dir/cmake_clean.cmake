file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_nodes.dir/bench_fig9_nodes.cc.o"
  "CMakeFiles/bench_fig9_nodes.dir/bench_fig9_nodes.cc.o.d"
  "bench_fig9_nodes"
  "bench_fig9_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
