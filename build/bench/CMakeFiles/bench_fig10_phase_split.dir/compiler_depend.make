# Empty compiler generated dependencies file for bench_fig10_phase_split.
# This may be replaced when dependencies are built.
