file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_phase_split.dir/bench_fig10_phase_split.cc.o"
  "CMakeFiles/bench_fig10_phase_split.dir/bench_fig10_phase_split.cc.o.d"
  "bench_fig10_phase_split"
  "bench_fig10_phase_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_phase_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
