# Empty compiler generated dependencies file for bench_ext_dataflow.
# This may be replaced when dependencies are built.
