# Empty dependencies file for bench_ext_minhash.
# This may be replaced when dependencies are built.
