file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_minhash.dir/bench_ext_minhash.cc.o"
  "CMakeFiles/bench_ext_minhash.dir/bench_ext_minhash.cc.o.d"
  "bench_ext_minhash"
  "bench_ext_minhash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_minhash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
