# Empty dependencies file for bench_fig7_comparison_small.
# This may be replaced when dependencies are built.
