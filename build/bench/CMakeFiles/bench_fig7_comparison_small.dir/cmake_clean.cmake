file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_comparison_small.dir/bench_fig7_comparison_small.cc.o"
  "CMakeFiles/bench_fig7_comparison_small.dir/bench_fig7_comparison_small.cc.o.d"
  "bench_fig7_comparison_small"
  "bench_fig7_comparison_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_comparison_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
