file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_horizontal.dir/bench_fig13_horizontal.cc.o"
  "CMakeFiles/bench_fig13_horizontal.dir/bench_fig13_horizontal.cc.o.d"
  "bench_fig13_horizontal"
  "bench_fig13_horizontal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_horizontal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
