# Empty compiler generated dependencies file for bench_fig12_join_methods.
# This may be replaced when dependencies are built.
