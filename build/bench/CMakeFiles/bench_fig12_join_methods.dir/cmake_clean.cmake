file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_join_methods.dir/bench_fig12_join_methods.cc.o"
  "CMakeFiles/bench_fig12_join_methods.dir/bench_fig12_join_methods.cc.o.d"
  "bench_fig12_join_methods"
  "bench_fig12_join_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_join_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
