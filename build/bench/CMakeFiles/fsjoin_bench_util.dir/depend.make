# Empty dependencies file for fsjoin_bench_util.
# This may be replaced when dependencies are built.
