file(REMOVE_RECURSE
  "libfsjoin_bench_util.a"
)
