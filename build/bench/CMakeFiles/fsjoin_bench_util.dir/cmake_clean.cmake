file(REMOVE_RECURSE
  "CMakeFiles/fsjoin_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/fsjoin_bench_util.dir/bench_util.cc.o.d"
  "libfsjoin_bench_util.a"
  "libfsjoin_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsjoin_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
