file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_filters.dir/bench_table4_filters.cc.o"
  "CMakeFiles/bench_table4_filters.dir/bench_table4_filters.cc.o.d"
  "bench_table4_filters"
  "bench_table4_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
