# Empty dependencies file for bench_table4_filters.
# This may be replaced when dependencies are built.
