# Empty dependencies file for email_dedup.
# This may be replaced when dependencies are built.
