file(REMOVE_RECURSE
  "CMakeFiles/email_dedup.dir/email_dedup.cpp.o"
  "CMakeFiles/email_dedup.dir/email_dedup.cpp.o.d"
  "email_dedup"
  "email_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/email_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
