file(REMOVE_RECURSE
  "CMakeFiles/fsjoin_cli.dir/fsjoin_cli.cpp.o"
  "CMakeFiles/fsjoin_cli.dir/fsjoin_cli.cpp.o.d"
  "fsjoin_cli"
  "fsjoin_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsjoin_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
