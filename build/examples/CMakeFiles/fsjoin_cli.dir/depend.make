# Empty dependencies file for fsjoin_cli.
# This may be replaced when dependencies are built.
