file(REMOVE_RECURSE
  "libfsjoin_text.a"
)
