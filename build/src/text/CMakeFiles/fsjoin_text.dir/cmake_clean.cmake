file(REMOVE_RECURSE
  "CMakeFiles/fsjoin_text.dir/corpus.cc.o"
  "CMakeFiles/fsjoin_text.dir/corpus.cc.o.d"
  "CMakeFiles/fsjoin_text.dir/corpus_io.cc.o"
  "CMakeFiles/fsjoin_text.dir/corpus_io.cc.o.d"
  "CMakeFiles/fsjoin_text.dir/dictionary.cc.o"
  "CMakeFiles/fsjoin_text.dir/dictionary.cc.o.d"
  "CMakeFiles/fsjoin_text.dir/generator.cc.o"
  "CMakeFiles/fsjoin_text.dir/generator.cc.o.d"
  "CMakeFiles/fsjoin_text.dir/tokenizer.cc.o"
  "CMakeFiles/fsjoin_text.dir/tokenizer.cc.o.d"
  "libfsjoin_text.a"
  "libfsjoin_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsjoin_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
