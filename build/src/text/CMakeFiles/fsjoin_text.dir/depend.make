# Empty dependencies file for fsjoin_text.
# This may be replaced when dependencies are built.
