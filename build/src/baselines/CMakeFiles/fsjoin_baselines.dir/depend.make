# Empty dependencies file for fsjoin_baselines.
# This may be replaced when dependencies are built.
