file(REMOVE_RECURSE
  "CMakeFiles/fsjoin_baselines.dir/baseline.cc.o"
  "CMakeFiles/fsjoin_baselines.dir/baseline.cc.o.d"
  "CMakeFiles/fsjoin_baselines.dir/massjoin.cc.o"
  "CMakeFiles/fsjoin_baselines.dir/massjoin.cc.o.d"
  "CMakeFiles/fsjoin_baselines.dir/vernica_join.cc.o"
  "CMakeFiles/fsjoin_baselines.dir/vernica_join.cc.o.d"
  "CMakeFiles/fsjoin_baselines.dir/vsmart_join.cc.o"
  "CMakeFiles/fsjoin_baselines.dir/vsmart_join.cc.o.d"
  "libfsjoin_baselines.a"
  "libfsjoin_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsjoin_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
