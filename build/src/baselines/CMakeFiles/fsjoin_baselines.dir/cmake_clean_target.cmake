file(REMOVE_RECURSE
  "libfsjoin_baselines.a"
)
