file(REMOVE_RECURSE
  "libfsjoin_mr.a"
)
