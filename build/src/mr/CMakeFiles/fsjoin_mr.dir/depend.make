# Empty dependencies file for fsjoin_mr.
# This may be replaced when dependencies are built.
