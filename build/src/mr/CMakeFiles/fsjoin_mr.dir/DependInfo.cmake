
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mr/cluster_sim.cc" "src/mr/CMakeFiles/fsjoin_mr.dir/cluster_sim.cc.o" "gcc" "src/mr/CMakeFiles/fsjoin_mr.dir/cluster_sim.cc.o.d"
  "/root/repo/src/mr/engine.cc" "src/mr/CMakeFiles/fsjoin_mr.dir/engine.cc.o" "gcc" "src/mr/CMakeFiles/fsjoin_mr.dir/engine.cc.o.d"
  "/root/repo/src/mr/metrics.cc" "src/mr/CMakeFiles/fsjoin_mr.dir/metrics.cc.o" "gcc" "src/mr/CMakeFiles/fsjoin_mr.dir/metrics.cc.o.d"
  "/root/repo/src/mr/pipeline.cc" "src/mr/CMakeFiles/fsjoin_mr.dir/pipeline.cc.o" "gcc" "src/mr/CMakeFiles/fsjoin_mr.dir/pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fsjoin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
