file(REMOVE_RECURSE
  "CMakeFiles/fsjoin_mr.dir/cluster_sim.cc.o"
  "CMakeFiles/fsjoin_mr.dir/cluster_sim.cc.o.d"
  "CMakeFiles/fsjoin_mr.dir/engine.cc.o"
  "CMakeFiles/fsjoin_mr.dir/engine.cc.o.d"
  "CMakeFiles/fsjoin_mr.dir/metrics.cc.o"
  "CMakeFiles/fsjoin_mr.dir/metrics.cc.o.d"
  "CMakeFiles/fsjoin_mr.dir/pipeline.cc.o"
  "CMakeFiles/fsjoin_mr.dir/pipeline.cc.o.d"
  "libfsjoin_mr.a"
  "libfsjoin_mr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsjoin_mr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
