
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/global_order.cc" "src/sim/CMakeFiles/fsjoin_sim.dir/global_order.cc.o" "gcc" "src/sim/CMakeFiles/fsjoin_sim.dir/global_order.cc.o.d"
  "/root/repo/src/sim/join_result.cc" "src/sim/CMakeFiles/fsjoin_sim.dir/join_result.cc.o" "gcc" "src/sim/CMakeFiles/fsjoin_sim.dir/join_result.cc.o.d"
  "/root/repo/src/sim/minhash.cc" "src/sim/CMakeFiles/fsjoin_sim.dir/minhash.cc.o" "gcc" "src/sim/CMakeFiles/fsjoin_sim.dir/minhash.cc.o.d"
  "/root/repo/src/sim/serial_join.cc" "src/sim/CMakeFiles/fsjoin_sim.dir/serial_join.cc.o" "gcc" "src/sim/CMakeFiles/fsjoin_sim.dir/serial_join.cc.o.d"
  "/root/repo/src/sim/set_ops.cc" "src/sim/CMakeFiles/fsjoin_sim.dir/set_ops.cc.o" "gcc" "src/sim/CMakeFiles/fsjoin_sim.dir/set_ops.cc.o.d"
  "/root/repo/src/sim/similarity.cc" "src/sim/CMakeFiles/fsjoin_sim.dir/similarity.cc.o" "gcc" "src/sim/CMakeFiles/fsjoin_sim.dir/similarity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fsjoin_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/fsjoin_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
