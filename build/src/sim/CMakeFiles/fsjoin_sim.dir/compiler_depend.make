# Empty compiler generated dependencies file for fsjoin_sim.
# This may be replaced when dependencies are built.
