file(REMOVE_RECURSE
  "CMakeFiles/fsjoin_sim.dir/global_order.cc.o"
  "CMakeFiles/fsjoin_sim.dir/global_order.cc.o.d"
  "CMakeFiles/fsjoin_sim.dir/join_result.cc.o"
  "CMakeFiles/fsjoin_sim.dir/join_result.cc.o.d"
  "CMakeFiles/fsjoin_sim.dir/minhash.cc.o"
  "CMakeFiles/fsjoin_sim.dir/minhash.cc.o.d"
  "CMakeFiles/fsjoin_sim.dir/serial_join.cc.o"
  "CMakeFiles/fsjoin_sim.dir/serial_join.cc.o.d"
  "CMakeFiles/fsjoin_sim.dir/set_ops.cc.o"
  "CMakeFiles/fsjoin_sim.dir/set_ops.cc.o.d"
  "CMakeFiles/fsjoin_sim.dir/similarity.cc.o"
  "CMakeFiles/fsjoin_sim.dir/similarity.cc.o.d"
  "libfsjoin_sim.a"
  "libfsjoin_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsjoin_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
