file(REMOVE_RECURSE
  "libfsjoin_sim.a"
)
