
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/fsjoin_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/fsjoin_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/filters.cc" "src/core/CMakeFiles/fsjoin_core.dir/filters.cc.o" "gcc" "src/core/CMakeFiles/fsjoin_core.dir/filters.cc.o.d"
  "/root/repo/src/core/fragment_join.cc" "src/core/CMakeFiles/fsjoin_core.dir/fragment_join.cc.o" "gcc" "src/core/CMakeFiles/fsjoin_core.dir/fragment_join.cc.o.d"
  "/root/repo/src/core/fsjoin.cc" "src/core/CMakeFiles/fsjoin_core.dir/fsjoin.cc.o" "gcc" "src/core/CMakeFiles/fsjoin_core.dir/fsjoin.cc.o.d"
  "/root/repo/src/core/fsjoin_config.cc" "src/core/CMakeFiles/fsjoin_core.dir/fsjoin_config.cc.o" "gcc" "src/core/CMakeFiles/fsjoin_core.dir/fsjoin_config.cc.o.d"
  "/root/repo/src/core/horizontal.cc" "src/core/CMakeFiles/fsjoin_core.dir/horizontal.cc.o" "gcc" "src/core/CMakeFiles/fsjoin_core.dir/horizontal.cc.o.d"
  "/root/repo/src/core/jobs.cc" "src/core/CMakeFiles/fsjoin_core.dir/jobs.cc.o" "gcc" "src/core/CMakeFiles/fsjoin_core.dir/jobs.cc.o.d"
  "/root/repo/src/core/pivots.cc" "src/core/CMakeFiles/fsjoin_core.dir/pivots.cc.o" "gcc" "src/core/CMakeFiles/fsjoin_core.dir/pivots.cc.o.d"
  "/root/repo/src/core/segments.cc" "src/core/CMakeFiles/fsjoin_core.dir/segments.cc.o" "gcc" "src/core/CMakeFiles/fsjoin_core.dir/segments.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fsjoin_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/fsjoin_text.dir/DependInfo.cmake"
  "/root/repo/build/src/mr/CMakeFiles/fsjoin_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fsjoin_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
