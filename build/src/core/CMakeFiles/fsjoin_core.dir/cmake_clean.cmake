file(REMOVE_RECURSE
  "CMakeFiles/fsjoin_core.dir/cost_model.cc.o"
  "CMakeFiles/fsjoin_core.dir/cost_model.cc.o.d"
  "CMakeFiles/fsjoin_core.dir/filters.cc.o"
  "CMakeFiles/fsjoin_core.dir/filters.cc.o.d"
  "CMakeFiles/fsjoin_core.dir/fragment_join.cc.o"
  "CMakeFiles/fsjoin_core.dir/fragment_join.cc.o.d"
  "CMakeFiles/fsjoin_core.dir/fsjoin.cc.o"
  "CMakeFiles/fsjoin_core.dir/fsjoin.cc.o.d"
  "CMakeFiles/fsjoin_core.dir/fsjoin_config.cc.o"
  "CMakeFiles/fsjoin_core.dir/fsjoin_config.cc.o.d"
  "CMakeFiles/fsjoin_core.dir/horizontal.cc.o"
  "CMakeFiles/fsjoin_core.dir/horizontal.cc.o.d"
  "CMakeFiles/fsjoin_core.dir/jobs.cc.o"
  "CMakeFiles/fsjoin_core.dir/jobs.cc.o.d"
  "CMakeFiles/fsjoin_core.dir/pivots.cc.o"
  "CMakeFiles/fsjoin_core.dir/pivots.cc.o.d"
  "CMakeFiles/fsjoin_core.dir/segments.cc.o"
  "CMakeFiles/fsjoin_core.dir/segments.cc.o.d"
  "libfsjoin_core.a"
  "libfsjoin_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsjoin_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
