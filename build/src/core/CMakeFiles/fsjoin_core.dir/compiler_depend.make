# Empty compiler generated dependencies file for fsjoin_core.
# This may be replaced when dependencies are built.
