file(REMOVE_RECURSE
  "libfsjoin_core.a"
)
