# Empty dependencies file for fsjoin_flow.
# This may be replaced when dependencies are built.
