file(REMOVE_RECURSE
  "libfsjoin_flow.a"
)
