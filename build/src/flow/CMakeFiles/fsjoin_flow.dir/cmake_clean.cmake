file(REMOVE_RECURSE
  "CMakeFiles/fsjoin_flow.dir/dataflow.cc.o"
  "CMakeFiles/fsjoin_flow.dir/dataflow.cc.o.d"
  "CMakeFiles/fsjoin_flow.dir/fsjoin_flow.cc.o"
  "CMakeFiles/fsjoin_flow.dir/fsjoin_flow.cc.o.d"
  "libfsjoin_flow.a"
  "libfsjoin_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsjoin_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
