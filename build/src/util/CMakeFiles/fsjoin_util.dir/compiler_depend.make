# Empty compiler generated dependencies file for fsjoin_util.
# This may be replaced when dependencies are built.
