file(REMOVE_RECURSE
  "libfsjoin_util.a"
)
