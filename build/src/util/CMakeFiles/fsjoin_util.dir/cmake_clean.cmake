file(REMOVE_RECURSE
  "CMakeFiles/fsjoin_util.dir/logging.cc.o"
  "CMakeFiles/fsjoin_util.dir/logging.cc.o.d"
  "CMakeFiles/fsjoin_util.dir/random.cc.o"
  "CMakeFiles/fsjoin_util.dir/random.cc.o.d"
  "CMakeFiles/fsjoin_util.dir/serde.cc.o"
  "CMakeFiles/fsjoin_util.dir/serde.cc.o.d"
  "CMakeFiles/fsjoin_util.dir/status.cc.o"
  "CMakeFiles/fsjoin_util.dir/status.cc.o.d"
  "CMakeFiles/fsjoin_util.dir/string_util.cc.o"
  "CMakeFiles/fsjoin_util.dir/string_util.cc.o.d"
  "CMakeFiles/fsjoin_util.dir/table_printer.cc.o"
  "CMakeFiles/fsjoin_util.dir/table_printer.cc.o.d"
  "CMakeFiles/fsjoin_util.dir/thread_pool.cc.o"
  "CMakeFiles/fsjoin_util.dir/thread_pool.cc.o.d"
  "libfsjoin_util.a"
  "libfsjoin_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsjoin_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
