# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/fsjoin_correctness_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/mr_engine_test[1]_include.cmake")
include("/root/repo/build/tests/similarity_test[1]_include.cmake")
include("/root/repo/build/tests/serial_join_test[1]_include.cmake")
include("/root/repo/build/tests/pivots_test[1]_include.cmake")
include("/root/repo/build/tests/segments_test[1]_include.cmake")
include("/root/repo/build/tests/horizontal_test[1]_include.cmake")
include("/root/repo/build/tests/filters_test[1]_include.cmake")
include("/root/repo/build/tests/fragment_join_test[1]_include.cmake")
include("/root/repo/build/tests/jobs_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/minhash_test[1]_include.cmake")
include("/root/repo/build/tests/dataflow_test[1]_include.cmake")
