# Empty compiler generated dependencies file for fragment_join_test.
# This may be replaced when dependencies are built.
