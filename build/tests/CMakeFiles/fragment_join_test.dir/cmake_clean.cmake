file(REMOVE_RECURSE
  "CMakeFiles/fragment_join_test.dir/fragment_join_test.cc.o"
  "CMakeFiles/fragment_join_test.dir/fragment_join_test.cc.o.d"
  "fragment_join_test"
  "fragment_join_test.pdb"
  "fragment_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fragment_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
