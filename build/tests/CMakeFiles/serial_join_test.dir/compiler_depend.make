# Empty compiler generated dependencies file for serial_join_test.
# This may be replaced when dependencies are built.
