file(REMOVE_RECURSE
  "CMakeFiles/serial_join_test.dir/serial_join_test.cc.o"
  "CMakeFiles/serial_join_test.dir/serial_join_test.cc.o.d"
  "serial_join_test"
  "serial_join_test.pdb"
  "serial_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serial_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
