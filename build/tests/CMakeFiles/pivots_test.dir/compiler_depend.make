# Empty compiler generated dependencies file for pivots_test.
# This may be replaced when dependencies are built.
