# Empty dependencies file for fsjoin_correctness_test.
# This may be replaced when dependencies are built.
