file(REMOVE_RECURSE
  "CMakeFiles/fsjoin_correctness_test.dir/fsjoin_correctness_test.cc.o"
  "CMakeFiles/fsjoin_correctness_test.dir/fsjoin_correctness_test.cc.o.d"
  "fsjoin_correctness_test"
  "fsjoin_correctness_test.pdb"
  "fsjoin_correctness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsjoin_correctness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
