file(REMOVE_RECURSE
  "CMakeFiles/segments_test.dir/segments_test.cc.o"
  "CMakeFiles/segments_test.dir/segments_test.cc.o.d"
  "segments_test"
  "segments_test.pdb"
  "segments_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segments_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
