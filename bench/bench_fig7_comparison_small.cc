// Figure 7: all four algorithms on the SMALL datasets (random samples of
// the large ones), where MassJoin and V-Smart-Join can complete. Expected
// shapes: FS-Join and RIDPairsPPJoin close to each other and well ahead of
// MassJoin-Merge; Merge+Light between; V-Smart worst on Email/Wiki and
// insensitive to theta.

#include <cstdio>
#include <iostream>

#include "baselines/massjoin.h"
#include "baselines/vernica_join.h"
#include "baselines/vsmart_join.h"
#include "bench_util.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace fsjoin::bench {
namespace {

std::vector<mr::JobMetrics> JoinJobsOf(const BaselineReport& report) {
  // Skip the ordering job (index 0) for the ordering-based algorithms so
  // all columns cover the same work; V-Smart has no ordering job.
  if (report.algorithm == "V-Smart-Join") return report.jobs;
  return {report.jobs.begin() + 1, report.jobs.end()};
}

void Run() {
  PrintBanner("Figure 7 — comparison with state-of-the-art (small datasets)",
              "FS-Join ~ RIDPairsPPJoin << MassJoin variants; V-Smart-Join "
              "worst and theta-insensitive");

  const double thetas[] = {0.75, 0.80, 0.85, 0.90, 0.95};
  for (Workload& w : AllWorkloads(0.1)) {  // paper: small random samples
    std::printf("\n[%s-small] %zu records\n", w.name.c_str(),
                w.corpus.NumRecords());
    TablePrinter table({"theta", "FS-Join", "PPJoin", "Merge", "Merge+Light",
                        "V-Smart", "(sim10 ms)"});
    for (double theta : thetas) {
      Result<FsJoinOutput> fs = FsJoin(DefaultFsConfig(theta)).Run(w.corpus);
      Result<BaselineOutput> pp =
          RunVernicaJoin(w.corpus, DefaultBaselineConfig(theta));
      MassJoinConfig merge_cfg;
      static_cast<BaselineConfig&>(merge_cfg) = DefaultBaselineConfig(theta);
      merge_cfg.length_group = 1;
      Result<BaselineOutput> merge = RunMassJoin(w.corpus, merge_cfg);
      MassJoinConfig light_cfg = merge_cfg;
      light_cfg.length_group = 8;
      Result<BaselineOutput> light = RunMassJoin(w.corpus, light_cfg);
      Result<BaselineOutput> vsmart =
          RunVSmartJoin(w.corpus, DefaultBaselineConfig(theta));

      auto cell = [&](const Result<BaselineOutput>& r) {
        if (!r.ok()) return std::string("DNF");
        return StrFormat("%.0f",
                         SimulatedMs(JoinJobsOf(r->report), kDefaultNodes));
      };
      table.AddRow({StrFormat("%.2f", theta),
                    fs.ok() ? StrFormat("%.0f", SimulatedMs(
                                                    fs->report.JoinJobs(),
                                                    kDefaultNodes))
                            : "FAIL",
                    cell(pp), cell(merge), cell(light), cell(vsmart), ""});
    }
    table.Print(std::cout);
  }
}

}  // namespace
}  // namespace fsjoin::bench

int main() {
  fsjoin::bench::Run();
  return 0;
}
