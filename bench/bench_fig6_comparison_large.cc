// Figure 6: FS-Join vs the state of the art on the LARGE datasets, theta
// in {0.75..0.95}. In the paper only FS-Join and RIDPairsPPJoin complete
// at this scale; MassJoin and V-Smart-Join fail with exploding
// intermediate data. We reproduce that with an emission budget sized to a
// multiple of what FS-Join itself needs (a stand-in for the cluster's
// disk/timeout limits): the budgeted baselines abort with
// ResourceExhausted, printed as DNF.

#include <cstdio>
#include <iostream>

#include "baselines/massjoin.h"
#include "baselines/vernica_join.h"
#include "baselines/vsmart_join.h"
#include "bench_util.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace fsjoin::bench {
namespace {

void Run() {
  PrintBanner("Figure 6 — comparison with state-of-the-art (large datasets)",
              "FS-Join outperforms RIDPairsPPJoin, and the gap widens as "
              "theta drops; MassJoin/V-Smart-Join cannot finish");

  const double thetas[] = {0.75, 0.80, 0.85, 0.90, 0.95};
  for (Workload& w : AllWorkloads(1.0)) {
    std::printf("\n[%s] %zu records\n", w.name.c_str(),
                w.corpus.NumRecords());
    TablePrinter table({"theta", "FS exact", "FS aggr", "PPJoin", "speedup",
                        "V-Smart", "MassJoin", "results", "aggr recall"});
    for (double theta : thetas) {
      Result<FsJoinOutput> fs = FsJoin(DefaultFsConfig(theta)).Run(w.corpus);
      if (!fs.ok()) {
        std::printf("FS-Join failed: %s\n", fs.status().ToString().c_str());
        continue;
      }
      double fs_ms = SimulatedMs(fs->report.JoinJobs(), kDefaultNodes);

      // The paper's per-segment θ-prefix variant (fast, bounded recall
      // loss; see DESIGN.md).
      FsJoinConfig aggr_cfg = DefaultFsConfig(theta);
      aggr_cfg.aggressive_segment_prefix = true;
      Result<FsJoinOutput> aggr = FsJoin(aggr_cfg).Run(w.corpus);
      double aggr_ms =
          aggr.ok() ? SimulatedMs(aggr->report.JoinJobs(), kDefaultNodes)
                    : -1.0;

      Result<BaselineOutput> pp =
          RunVernicaJoin(w.corpus, DefaultBaselineConfig(theta));
      double pp_ms = pp.ok() ? SimulatedMs({pp->report.jobs.begin() + 1,
                                            pp->report.jobs.end()},
                                           kDefaultNodes)
                             : -1.0;

      // Budget: a generous multiple of FS-Join's total intermediate data;
      // the quadratic baselines blow straight through it on these corpora.
      const uint64_t budget =
          20 * (fs->report.filtering_job.map_output_records +
                fs->report.filtering_job.reduce_output_records + 1);
      BaselineConfig limited = DefaultBaselineConfig(theta);
      limited.exec.emission_limit = budget;
      Result<BaselineOutput> vs = RunVSmartJoin(w.corpus, limited);
      MassJoinConfig mj;
      static_cast<BaselineConfig&>(mj) = limited;
      Result<BaselineOutput> mass = RunMassJoin(w.corpus, mj);

      const double recall =
          aggr.ok() && fs->report.result_pairs > 0
              ? static_cast<double>(aggr->report.result_pairs) /
                    static_cast<double>(fs->report.result_pairs)
              : 1.0;
      table.AddRow({StrFormat("%.2f", theta), StrFormat("%.0f", fs_ms),
                    aggr.ok() ? StrFormat("%.0f", aggr_ms) : "FAIL",
                    pp.ok() ? StrFormat("%.0f", pp_ms) : "FAIL",
                    pp.ok() && aggr.ok()
                        ? StrFormat("%.2fx", pp_ms / std::min(fs_ms, aggr_ms))
                        : "-",
                    vs.ok() ? StrFormat("%.0f", SimulatedMs(
                                                    vs->report.jobs,
                                                    kDefaultNodes))
                            : "DNF",
                    mass.ok() ? StrFormat("%.0f",
                                          SimulatedMs(
                                              {mass->report.jobs.begin() + 1,
                                               mass->report.jobs.end()},
                                              kDefaultNodes))
                              : "DNF",
                    WithThousandsSep(fs->report.result_pairs),
                    StrFormat("%.2f", recall)});
    }
    table.Print(std::cout);
  }
  std::printf(
      "\nDNF = aborted with ResourceExhausted: intermediate records "
      "exceeded 20x FS-Join's own volume (paper: 'cannot run successfully "
      "on the large datasets').\n");
}

}  // namespace
}  // namespace fsjoin::bench

int main() {
  fsjoin::bench::Run();
  return 0;
}
