// Figure 8: FS-Join execution time as the data scales from 4X to 10X
// (random samples of 40%..100% of each corpus), theta in {0.8, 0.9}.
// Expected shape: sub-quadratic growth — doubling data raises time well
// below 4x (the paper reports <33% increase per 2X step for cluster time).

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "text/corpus.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace fsjoin::bench {
namespace {

Corpus Sample(const Corpus& corpus, double fraction, uint64_t seed) {
  std::vector<RecordId> ids(corpus.NumRecords());
  for (RecordId i = 0; i < ids.size(); ++i) ids[i] = i;
  Rng rng(seed);
  Shuffle(ids, rng);
  ids.resize(static_cast<size_t>(static_cast<double>(ids.size()) * fraction));
  return SampleCorpus(corpus, ids);
}

void Run() {
  PrintBanner("Figure 8 — scalability with data scale (4X/6X/8X/10X)",
              "2X more data costs well under 4X more time");

  const double fractions[] = {0.4, 0.6, 0.8, 1.0};
  const char* labels[] = {"4X", "6X", "8X", "10X"};
  for (Workload& w : AllWorkloads(1.0)) {
    std::printf("\n[%s] full size %zu records\n", w.name.c_str(),
                w.corpus.NumRecords());
    TablePrinter table({"scale", "records", "theta=0.8 sim10 (ms)",
                        "theta=0.9 sim10 (ms)", "results@0.8"});
    for (size_t i = 0; i < 4; ++i) {
      Corpus sample = Sample(w.corpus, fractions[i], 99 + i);
      std::vector<std::string> row = {labels[i],
                                      WithThousandsSep(sample.NumRecords())};
      uint64_t results_08 = 0;
      for (double theta : {0.8, 0.9}) {
        Result<FsJoinOutput> fs = FsJoin(DefaultFsConfig(theta)).Run(sample);
        if (!fs.ok()) {
          row.push_back("FAIL");
          continue;
        }
        if (theta == 0.8) results_08 = fs->report.result_pairs;
        row.push_back(StrFormat(
            "%.0f", SimulatedMs(fs->report.JoinJobs(), kDefaultNodes)));
      }
      row.push_back(WithThousandsSep(results_08));
      table.AddRow(row);
    }
    table.Print(std::cout);
  }
}

}  // namespace
}  // namespace fsjoin::bench

int main() {
  fsjoin::bench::Run();
  return 0;
}
