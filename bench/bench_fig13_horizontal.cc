// Figure 13: FS-Join (with horizontal partitioning) vs FS-Join-V (vertical
// only), theta in {0.75..0.95}. Horizontal partitioning exists to keep
// each fragment inside one reducer's memory (§V-A): the paper attributes
// FS-Join-V's slowdown to repeated spill/sort passes on oversized
// fragments. The replay therefore uses the memory-constrained cost model;
// paper settings: 30 vertical partitions; horizontal counts scaled to our
// corpus sizes (paper: Email 10, Wiki 50, PubMed 70).

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace fsjoin::bench {
namespace {

uint32_t HorizontalCountFor(const std::string& name) {
  // The paper uses 10/50/70 on the full-size corpora; our corpora are
  // ~100-400x smaller, so partition counts scale down to keep per-group
  // volumes in the same regime relative to reducer memory.
  if (name == "email") return 10;
  if (name == "wiki") return 12;
  return 16;  // pubmed
}

void Run() {
  PrintBanner("Figure 13 — effect of horizontal partitioning",
              "FS-Join (vertical+horizontal) beats FS-Join-V (vertical "
              "only) at every theta");

  const double thetas[] = {0.75, 0.80, 0.85, 0.90, 0.95};
  for (Workload& w : AllWorkloads(1.0)) {
    const uint32_t t = HorizontalCountFor(w.name);
    std::printf("\n[%s] %zu records, %u horizontal partitions\n",
                w.name.c_str(), w.corpus.NumRecords(), t);
    // Simulated reducer budget: half the unpartitioned max fragment — the
    // paper's regime, where a fragment (1/30th of a multi-GB corpus)
    // cannot fit a reducer's in-memory sort buffer and must spill.
    mr::ClusterCostModel model;
    {
      Result<FsJoinOutput> probe = FsJoin(DefaultFsConfig(0.8)).Run(w.corpus);
      uint64_t max_fragment = 1;
      if (probe.ok()) {
        for (const mr::TaskMetrics& task :
             probe->report.filtering_job.reduce_tasks) {
          max_fragment = std::max(max_fragment, task.max_group_bytes);
        }
      }
      model.reduce_memory_bytes = max_fragment / 2;
      std::printf("(simulated reducer group budget: %llu KB)\n",
                  static_cast<unsigned long long>(
                      model.reduce_memory_bytes / 1024));
    }
    TablePrinter table({"theta", "FS-Join sim10 (ms)",
                        "FS-Join-V sim10 (ms)", "speedup",
                        "max fragment (KB)"});
    for (double theta : thetas) {
      FsJoinConfig with = DefaultFsConfig(theta);
      with.num_horizontal_partitions = t;
      FsJoinConfig without = DefaultFsConfig(theta);

      Result<FsJoinOutput> a = FsJoin(with).Run(w.corpus);
      Result<FsJoinOutput> b = FsJoin(without).Run(w.corpus);
      if (!a.ok() || !b.ok()) {
        std::printf("FAIL\n");
        continue;
      }
      double with_ms = SimulatedMs(a->report.JoinJobs(), kDefaultNodes, model);
      double without_ms =
          SimulatedMs(b->report.JoinJobs(), kDefaultNodes, model);
      uint64_t max_fragment = 0;
      for (const mr::TaskMetrics& task : b->report.filtering_job.reduce_tasks) {
        max_fragment = std::max(max_fragment, task.input_bytes);
      }
      table.AddRow({StrFormat("%.2f", theta), StrFormat("%.0f", with_ms),
                    StrFormat("%.0f", without_ms),
                    StrFormat("%.2fx", without_ms / with_ms),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          max_fragment / 1024))});
    }
    table.Print(std::cout);
  }
}

}  // namespace
}  // namespace fsjoin::bench

int main() {
  fsjoin::bench::Run();
  return 0;
}
