// Ablation: does the paper's Lemma 5 cost model predict reality? For a
// sweep of fragment counts we print the model's estimated cost next to the
// measured filtering-phase time; the model's *ordering* of configurations
// should match the measurements in the reduce-dominated regime.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/cost_model.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace fsjoin::bench {
namespace {

void Run() {
  PrintBanner("Ablation — Lemma 5 cost model vs measurement",
              "the model's quadratic-over-N reduce term tracks the "
              "measured loop-join filter phase");

  // The model prices the *loop join* (as the paper's appendix does), so
  // measure that variant; a modest sample keeps the quadratic affordable.
  Workload w = MakeWorkload("pubmed", 0.15);
  CorpusStats stats = ComputeStats(w.corpus);
  CostModelParams params;
  std::printf("workload: %zu pubmed-like records, theta = 0.8, loop join\n\n",
              w.corpus.NumRecords());

  TablePrinter table({"fragments", "model reduce cost", "model total",
                      "measured filter wall (ms)", "measured total (ms)"});
  for (uint32_t n : {2u, 4u, 8u, 16u, 32u}) {
    FsJoinConfig config = DefaultFsConfig(0.8);
    config.num_vertical_partitions = n;
    config.join_method = JoinMethod::kLoop;
    Result<FsJoinOutput> fs = FsJoin(config).Run(w.corpus);
    if (!fs.ok()) {
      std::printf("FAIL: %s\n", fs.status().ToString().c_str());
      continue;
    }
    CostEstimate estimate = EstimateFsJoinCost(stats, n, params);
    table.AddRow(
        {std::to_string(n), StrFormat("%.3g", estimate.reduce),
         StrFormat("%.3g", estimate.Total()),
         StrFormat("%.0f", static_cast<double>(
                               fs->report.filtering_job.reduce_wall_micros) /
                               1000.0),
         StrFormat("%.0f", fs->report.total_wall_ms)});
  }
  table.Print(std::cout);
  std::printf(
      "\nauto-tuned config for this corpus on a 10-worker/64MB cluster: "
      "%s\n",
      AutoTuneConfig(stats, 10, 64ull << 20, 0.8).Summary().c_str());
}

}  // namespace
}  // namespace fsjoin::bench

int main() {
  fsjoin::bench::Run();
  return 0;
}
