// Ablation (beyond the paper): how the number of vertical fragments V
// shapes FS-Join's cost. DESIGN.md calls out the central trade-off: more
// fragments mean better parallelism and balance, but shorter segments,
// weaker per-segment prefixes (the exact local overlap bound degenerates
// once |seg| < (1-θ)|s| + 1), and more partial-overlap records to
// aggregate.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace fsjoin::bench {
namespace {

void Run() {
  PrintBanner("Ablation — number of vertical fragments (not in the paper)",
              "more fragments: better balance/parallelism, weaker prefixes, "
              "more partial overlaps");

  const uint32_t fragment_counts[] = {2, 5, 10, 30, 60};
  for (Workload& w : AllWorkloads(0.5)) {
    std::printf("\n[%s] %zu records, theta = 0.8\n", w.name.c_str(),
                w.corpus.NumRecords());
    TablePrinter table({"fragments", "wall (ms)", "sim10 (ms)",
                        "candidates considered", "partials emitted",
                        "verify shuffle"});
    for (uint32_t v : fragment_counts) {
      FsJoinConfig config = DefaultFsConfig(0.8);
      config.num_vertical_partitions = v;
      Result<FsJoinOutput> fs = FsJoin(config).Run(w.corpus);
      if (!fs.ok()) {
        std::printf("FAIL: %s\n", fs.status().ToString().c_str());
        continue;
      }
      table.AddRow(
          {std::to_string(v), StrFormat("%.0f", fs->report.total_wall_ms),
           StrFormat("%.0f",
                     SimulatedMs(fs->report.JoinJobs(), kDefaultNodes)),
           WithThousandsSep(fs->report.filters.pairs_considered),
           WithThousandsSep(fs->report.filters.emitted),
           HumanBytes(fs->report.verification_job.shuffle_bytes)});
    }
    table.Print(std::cout);
  }
}

}  // namespace
}  // namespace fsjoin::bench

int main() {
  fsjoin::bench::Run();
  return 0;
}
