#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "util/logging.h"
#include "util/timer.h"

namespace fsjoin::bench {

double BenchScale() {
  const char* env = std::getenv("FSJOIN_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

Workload MakeWorkload(const std::string& name, double fraction) {
  const double scale = BenchScale() * fraction;
  SyntheticCorpusConfig config;
  if (name == "email") {
    config = EmailLikeConfig(scale);
  } else if (name == "pubmed") {
    config = PubMedLikeConfig(scale);
  } else if (name == "wiki") {
    config = WikiLikeConfig(scale);
  } else {
    FSJOIN_LOG(Fatal) << "unknown workload " << name;
  }
  return Workload{name, GenerateCorpus(config)};
}

std::vector<Workload> AllWorkloads(double fraction) {
  std::vector<Workload> workloads;
  workloads.push_back(MakeWorkload("email", fraction));
  workloads.push_back(MakeWorkload("pubmed", fraction));
  workloads.push_back(MakeWorkload("wiki", fraction));
  return workloads;
}

FsJoinConfig DefaultFsConfig(double theta) {
  FsJoinConfig config;
  config.theta = theta;
  config.num_vertical_partitions = 30;  // paper: 30 fragments
  config.exec.num_map_tasks = kMapTasks;
  config.exec.num_reduce_tasks = kReduceTasks;
  return config;
}

BaselineConfig DefaultBaselineConfig(double theta) {
  BaselineConfig config;
  config.theta = theta;
  config.exec.num_map_tasks = kMapTasks;
  config.exec.num_reduce_tasks = kReduceTasks;
  return config;
}

double SimulatedMs(const std::vector<mr::JobMetrics>& jobs, uint32_t nodes) {
  mr::ClusterCostModel model;
  return SimulatedMs(jobs, nodes, model);
}

double SimulatedMs(const std::vector<mr::JobMetrics>& jobs, uint32_t nodes,
                   const mr::ClusterCostModel& model) {
  return mr::SimulatePipeline(jobs, nodes, model).total_ms;
}

BenchOptions ParseBenchOptions(const std::string& bench_name, int argc,
                               char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--warmup=", 9) == 0) {
      options.warmup = std::atoi(arg + 9);
    } else if (std::strncmp(arg, "--repeat=", 9) == 0) {
      options.repeat = std::max(1, std::atoi(arg + 9));
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      options.json_path = arg + 7;
    } else if (std::strcmp(arg, "--json") == 0) {
      options.json_path = "BENCH_" + bench_name + ".json";
    } else {
      std::fprintf(stderr,
                   "unknown argument %s\nusage: %s [--warmup=N] [--repeat=N] "
                   "[--json[=PATH]]\n",
                   arg, bench_name.c_str());
      std::exit(2);
    }
  }
  return options;
}

namespace {

// Enough escaping for the names this repo generates (config labels); keeps
// the writer dependency-free.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

void WriteBenchJson(const BenchOptions& options, const std::string& bench_name,
                    const std::vector<BenchRecord>& records) {
  if (options.json_path.empty()) return;
  std::ofstream out(options.json_path);
  if (!out) {
    FSJOIN_LOG(Error) << "cannot write " << options.json_path;
    return;
  }
  char buf[256];
  out << "{\n  \"bench\": \"" << JsonEscape(bench_name) << "\",\n";
  std::snprintf(buf, sizeof(buf), "  \"scale\": %.4f,\n", BenchScale());
  out << buf;
  out << "  \"warmup\": " << options.warmup << ",\n";
  out << "  \"repeat\": " << options.repeat << ",\n";
  out << "  \"results\": [";
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    out << (i == 0 ? "\n" : ",\n");
    std::snprintf(buf, sizeof(buf),
                  "      \"wall_micros\": %.1f,\n"
                  "      \"shuffle_bytes\": %llu,\n"
                  "      \"peak_group_bytes\": %llu,\n"
                  "      \"simulated_ms\": %.3f,\n"
                  "      \"spilled_bytes\": %llu,\n"
                  "      \"spill_runs\": %u\n",
                  r.wall_micros,
                  static_cast<unsigned long long>(r.shuffle_bytes),
                  static_cast<unsigned long long>(r.peak_group_bytes),
                  r.simulated_ms,
                  static_cast<unsigned long long>(r.spilled_bytes),
                  r.spill_runs);
    out << "    {\n      \"name\": \"" << JsonEscape(r.name) << "\",\n"
        << buf << "    }";
  }
  out << "\n  ]\n}\n";
  std::printf("wrote %s (%zu results)\n", options.json_path.c_str(),
              records.size());
}

double MinWallMicros(const BenchOptions& options,
                     const std::function<void()>& fn) {
  for (int i = 0; i < options.warmup; ++i) fn();
  double best = 0;
  for (int i = 0; i < options.repeat; ++i) {
    WallTimer timer;
    fn();
    const double micros = static_cast<double>(timer.ElapsedMicros());
    if (i == 0 || micros < best) best = micros;
  }
  return best;
}

uint64_t MaxGroupBytes(const mr::JobMetrics& job) {
  uint64_t max_group = 0;
  for (const mr::TaskMetrics& task : job.reduce_tasks) {
    max_group = std::max(max_group, task.max_group_bytes);
  }
  return max_group;
}

void PrintBanner(const std::string& experiment, const std::string& claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf(
      "workloads: synthetic Email/PubMed/Wiki analogues (DESIGN.md); "
      "scale=%.2f\n",
      BenchScale());
  std::printf(
      "sim<N> = replay of measured task costs on N simulated Hadoop "
      "workers\n");
  std::printf("================================================================\n");
}

}  // namespace fsjoin::bench
