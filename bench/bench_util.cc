#include "bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "util/logging.h"

namespace fsjoin::bench {

double BenchScale() {
  const char* env = std::getenv("FSJOIN_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

Workload MakeWorkload(const std::string& name, double fraction) {
  const double scale = BenchScale() * fraction;
  SyntheticCorpusConfig config;
  if (name == "email") {
    config = EmailLikeConfig(scale);
  } else if (name == "pubmed") {
    config = PubMedLikeConfig(scale);
  } else if (name == "wiki") {
    config = WikiLikeConfig(scale);
  } else {
    FSJOIN_LOG(Fatal) << "unknown workload " << name;
  }
  return Workload{name, GenerateCorpus(config)};
}

std::vector<Workload> AllWorkloads(double fraction) {
  std::vector<Workload> workloads;
  workloads.push_back(MakeWorkload("email", fraction));
  workloads.push_back(MakeWorkload("pubmed", fraction));
  workloads.push_back(MakeWorkload("wiki", fraction));
  return workloads;
}

FsJoinConfig DefaultFsConfig(double theta) {
  FsJoinConfig config;
  config.theta = theta;
  config.num_vertical_partitions = 30;  // paper: 30 fragments
  config.num_map_tasks = kMapTasks;
  config.num_reduce_tasks = kReduceTasks;
  return config;
}

BaselineConfig DefaultBaselineConfig(double theta) {
  BaselineConfig config;
  config.theta = theta;
  config.num_map_tasks = kMapTasks;
  config.num_reduce_tasks = kReduceTasks;
  return config;
}

double SimulatedMs(const std::vector<mr::JobMetrics>& jobs, uint32_t nodes) {
  mr::ClusterCostModel model;
  return SimulatedMs(jobs, nodes, model);
}

double SimulatedMs(const std::vector<mr::JobMetrics>& jobs, uint32_t nodes,
                   const mr::ClusterCostModel& model) {
  return mr::SimulatePipeline(jobs, nodes, model).total_ms;
}

void PrintBanner(const std::string& experiment, const std::string& claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf(
      "workloads: synthetic Email/PubMed/Wiki analogues (DESIGN.md); "
      "scale=%.2f\n",
      BenchScale());
  std::printf(
      "sim<N> = replay of measured task costs on N simulated Hadoop "
      "workers\n");
  std::printf("================================================================\n");
}

}  // namespace fsjoin::bench
