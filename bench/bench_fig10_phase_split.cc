// Figure 10: filtering-phase vs verification-phase time as the number of
// horizontal partitions grows (per dataset, the paper uses different
// partition counts per corpus). Expected shapes: the filtering phase
// dominates end-to-end time (the filters leave verification little work),
// and more horizontal partitions shrink the dominant filtering phase.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace fsjoin::bench {
namespace {

void Run(const BenchOptions& options) {
  PrintBanner(
      "Figure 10 — filtering vs verification time by horizontal partitions",
      "filtering dominates; more horizontal partitions reduce it");

  std::vector<BenchRecord> records;
  const uint32_t partition_counts[] = {0, 4, 8, 16};
  for (Workload& w : AllWorkloads(1.0)) {
    std::printf("\n[%s] %zu records, theta = 0.8\n", w.name.c_str(),
                w.corpus.NumRecords());
    // Memory-constrained model: horizontal partitioning exists to keep
    // fragments inside reducer memory (§V-A). Budget = half the
    // unpartitioned max fragment (the paper's regime).
    mr::ClusterCostModel model;
    {
      Result<FsJoinOutput> probe = FsJoin(DefaultFsConfig(0.8)).Run(w.corpus);
      uint64_t max_fragment = 1;
      if (probe.ok()) {
        for (const mr::TaskMetrics& task :
             probe->report.filtering_job.reduce_tasks) {
          max_fragment = std::max(max_fragment, task.max_group_bytes);
        }
      }
      model.reduce_memory_bytes = max_fragment / 2;
    }
    TablePrinter table({"h-partitions", "filter sim10 (ms)",
                        "verify sim10 (ms)", "total (ms)", "filter share"});
    for (uint32_t t : partition_counts) {
      FsJoinConfig config = DefaultFsConfig(0.8);
      config.num_horizontal_partitions = t;
      Result<FsJoinOutput> fs = Status::Internal("not run");
      const double wall_micros =
          MinWallMicros(options, [&] { fs = FsJoin(config).Run(w.corpus); });
      if (!fs.ok()) {
        std::printf("FAIL: %s\n", fs.status().ToString().c_str());
        continue;
      }
      double filter_ms =
          SimulatedMs({fs->report.filtering_job}, kDefaultNodes, model);
      double verify_ms =
          SimulatedMs({fs->report.verification_job}, kDefaultNodes, model);
      table.AddRow(
          {t == 0 ? "off" : std::to_string(t), StrFormat("%.0f", filter_ms),
           StrFormat("%.0f", verify_ms),
           StrFormat("%.0f", filter_ms + verify_ms),
           StrFormat("%.0f%%", 100.0 * filter_ms / (filter_ms + verify_ms))});
      BenchRecord record;
      record.name = w.name + "/h=" + (t == 0 ? "off" : std::to_string(t));
      record.wall_micros = wall_micros;
      record.shuffle_bytes = fs->report.filtering_job.shuffle_bytes +
                             fs->report.verification_job.shuffle_bytes;
      record.peak_group_bytes =
          std::max(MaxGroupBytes(fs->report.filtering_job),
                   MaxGroupBytes(fs->report.verification_job));
      record.simulated_ms = filter_ms + verify_ms;
      records.push_back(std::move(record));
    }
    table.Print(std::cout);
  }
  WriteBenchJson(options, "fig10_phase_split", records);
}

}  // namespace
}  // namespace fsjoin::bench

int main(int argc, char** argv) {
  fsjoin::bench::Run(
      fsjoin::bench::ParseBenchOptions("fig10_phase_split", argc, argv));
  return 0;
}
