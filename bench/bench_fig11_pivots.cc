// Figure 11: effect of the pivot selection method (Random, Even-Interval,
// Even-TF). Expected shape: Even-TF fastest thanks to its fragment
// load-balance guarantee; Even-Interval and Random suffer skewed reducers.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace fsjoin::bench {
namespace {

void Run() {
  PrintBanner("Figure 11 — effect of pivot selection",
              "Even-TF beats Even-Interval and Random via load balancing");

  const PivotStrategy strategies[] = {PivotStrategy::kRandom,
                                      PivotStrategy::kEvenInterval,
                                      PivotStrategy::kEvenTf};
  for (Workload& w : AllWorkloads(1.0)) {
    std::printf("\n[%s] %zu records, theta = 0.8\n", w.name.c_str(),
                w.corpus.NumRecords());
    TablePrinter table({"strategy", "sim10 (ms)", "sim10 aggr (ms)",
                        "reduce skew (max/avg)", "filter-phase balance"});
    for (PivotStrategy strategy : strategies) {
      FsJoinConfig config = DefaultFsConfig(0.8);
      config.pivot_strategy = strategy;
      // One reduce task per fragment makes the fragment imbalance directly
      // visible as reducer skew (the paper's workload-balancing argument).
      config.exec.num_reduce_tasks = config.num_vertical_partitions;
      Result<FsJoinOutput> fs = FsJoin(config).Run(w.corpus);
      if (!fs.ok()) {
        std::printf("FAIL: %s\n", fs.status().ToString().c_str());
        continue;
      }
      mr::ClusterCostModel model;
      mr::SimulatedJobTime sim =
          mr::SimulatePipeline(fs->report.JoinJobs(), kDefaultNodes, model);
      // The paper's aggressive per-segment prefix (its implementation's
      // behavior on frequent-token fragments; see DESIGN.md).
      FsJoinConfig aggr_config = config;
      aggr_config.aggressive_segment_prefix = true;
      Result<FsJoinOutput> aggr = FsJoin(aggr_config).Run(w.corpus);
      double aggr_ms =
          aggr.ok()
              ? SimulatedMs(aggr->report.JoinJobs(), kDefaultNodes)
              : -1.0;
      table.AddRow({PivotStrategyName(strategy),
                    StrFormat("%.0f", sim.total_ms),
                    aggr.ok() ? StrFormat("%.0f", aggr_ms) : "FAIL",
                    StrFormat("%.2f", fs->report.filtering_job.ReduceSkew()),
                    StrFormat("%.2f", sim.reduce_balance)});
    }
    table.Print(std::cout);
  }
}

}  // namespace
}  // namespace fsjoin::bench

int main() {
  fsjoin::bench::Run();
  return 0;
}
