#ifndef FSJOIN_BENCH_BENCH_UTIL_H_
#define FSJOIN_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "core/fsjoin.h"
#include "mr/cluster_sim.h"
#include "text/corpus.h"
#include "text/generator.h"

namespace fsjoin::bench {

/// Scale multiplier for all bench workloads, from the environment variable
/// FSJOIN_BENCH_SCALE (default 1.0). 0.25 makes the whole suite ~4x
/// faster; 1.0 is the calibrated single-machine "10X" workload.
double BenchScale();

/// Number of reduce tasks per configuration, following the paper's rule of
/// 3 tasks per node on a 10-worker cluster.
inline constexpr uint32_t kReduceTasks = 30;
inline constexpr uint32_t kMapTasks = 30;
inline constexpr uint32_t kDefaultNodes = 10;

/// The three synthetic corpora standing in for Enron Email / PubMed / Wiki
/// (see DESIGN.md for the substitution argument). `fraction` further scales
/// the record count (1.0 = full bench workload = the paper's "10X").
struct Workload {
  std::string name;
  Corpus corpus;
};

Workload MakeWorkload(const std::string& name, double fraction);

/// All three workloads at a fraction.
std::vector<Workload> AllWorkloads(double fraction);

/// Default FS-Join config used across benches (paper defaults: Even-TF,
/// prefix join, all filters, 30 vertical partitions).
FsJoinConfig DefaultFsConfig(double theta);

/// Default baseline config.
BaselineConfig DefaultBaselineConfig(double theta);

/// Simulated cluster time of a job pipeline on `nodes` workers using the
/// default Hadoop-era cost model. Excludes the ordering job when the
/// caller passes report.JoinJobs() (the paper's cost scope).
double SimulatedMs(const std::vector<mr::JobMetrics>& jobs, uint32_t nodes);

/// Same, with a caller-supplied model (Fig. 13 uses a memory-constrained
/// one).
double SimulatedMs(const std::vector<mr::JobMetrics>& jobs, uint32_t nodes,
                   const mr::ClusterCostModel& model);

/// Prints the standard bench banner: experiment id, paper reference, and
/// the workload substitution note.
void PrintBanner(const std::string& experiment, const std::string& claim);

}  // namespace fsjoin::bench

#endif  // FSJOIN_BENCH_BENCH_UTIL_H_
