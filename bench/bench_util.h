#ifndef FSJOIN_BENCH_BENCH_UTIL_H_
#define FSJOIN_BENCH_BENCH_UTIL_H_

#include <functional>
#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "core/fsjoin.h"
#include "mr/cluster_sim.h"
#include "text/corpus.h"
#include "text/generator.h"

namespace fsjoin::bench {

/// Scale multiplier for all bench workloads, from the environment variable
/// FSJOIN_BENCH_SCALE (default 1.0). 0.25 makes the whole suite ~4x
/// faster; 1.0 is the calibrated single-machine "10X" workload.
double BenchScale();

/// Number of reduce tasks per configuration, following the paper's rule of
/// 3 tasks per node on a 10-worker cluster.
inline constexpr uint32_t kReduceTasks = 30;
inline constexpr uint32_t kMapTasks = 30;
inline constexpr uint32_t kDefaultNodes = 10;

/// The three synthetic corpora standing in for Enron Email / PubMed / Wiki
/// (see DESIGN.md for the substitution argument). `fraction` further scales
/// the record count (1.0 = full bench workload = the paper's "10X").
struct Workload {
  std::string name;
  Corpus corpus;
};

Workload MakeWorkload(const std::string& name, double fraction);

/// All three workloads at a fraction.
std::vector<Workload> AllWorkloads(double fraction);

/// Default FS-Join config used across benches (paper defaults: Even-TF,
/// prefix join, all filters, 30 vertical partitions).
FsJoinConfig DefaultFsConfig(double theta);

/// Default baseline config.
BaselineConfig DefaultBaselineConfig(double theta);

/// Simulated cluster time of a job pipeline on `nodes` workers using the
/// default Hadoop-era cost model. Excludes the ordering job when the
/// caller passes report.JoinJobs() (the paper's cost scope).
double SimulatedMs(const std::vector<mr::JobMetrics>& jobs, uint32_t nodes);

/// Same, with a caller-supplied model (Fig. 13 uses a memory-constrained
/// one).
double SimulatedMs(const std::vector<mr::JobMetrics>& jobs, uint32_t nodes,
                   const mr::ClusterCostModel& model);

/// Prints the standard bench banner: experiment id, paper reference, and
/// the workload substitution note.
void PrintBanner(const std::string& experiment, const std::string& claim);

// ---- Repeatable runs and machine-readable output --------------------------

/// Shared command-line options for the driver benches:
///   --warmup=N   untimed runs before measuring (default 0)
///   --repeat=N   timed repetitions; wall time reported as the minimum
///                (default 1)
///   --json[=P]   write a JSON summary to P (default BENCH_<name>.json)
struct BenchOptions {
  int warmup = 0;
  int repeat = 1;
  std::string json_path;  // empty = no JSON output
};

/// Parses the flags above from argv. Unknown arguments print usage and
/// exit(2), so typos never silently run the default configuration.
BenchOptions ParseBenchOptions(const std::string& bench_name, int argc,
                               char** argv);

/// One measured configuration within a bench run. Unused fields stay 0 and
/// are still emitted, keeping the JSON schema uniform across benches.
struct BenchRecord {
  std::string name;               // e.g. "email/h=8" — unique within the run
  double wall_micros = 0;         // measured wall time (min over repeats)
  uint64_t shuffle_bytes = 0;     // bytes through the shuffle(s)
  uint64_t peak_group_bytes = 0;  // largest reduce group (memory pressure)
  double simulated_ms = 0;        // cluster-simulator time, when applicable
  uint64_t spilled_bytes = 0;     // bytes written to spill run files
  uint32_t spill_runs = 0;        // spill run files written
};

/// Writes `records` to options.json_path as
///   {"bench": <name>, "scale": <s>, "warmup": N, "repeat": N,
///    "results": [{...}, ...]}
/// No-op when json_path is empty.
void WriteBenchJson(const BenchOptions& options, const std::string& bench_name,
                    const std::vector<BenchRecord>& records);

/// Runs `fn` options.warmup times untimed, then options.repeat times timed,
/// and returns the fastest run in microseconds (min filters scheduler noise
/// better than mean for single-machine runs).
double MinWallMicros(const BenchOptions& options,
                     const std::function<void()>& fn);

/// Largest reduce group (key + values bytes) across a job's reduce tasks —
/// the per-reducer memory high-water mark horizontal partitioning bounds.
uint64_t MaxGroupBytes(const mr::JobMetrics& job);

}  // namespace fsjoin::bench

#endif  // FSJOIN_BENCH_BENCH_UTIL_H_
