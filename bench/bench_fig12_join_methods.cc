// Figure 12: effect of the fragment join method (Loop, Index, Prefix).
// Expected shape: Prefix wins everywhere, most clearly on long-record
// corpora (Email), where the paper reports ~2x over Loop/Index.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace fsjoin::bench {
namespace {

void Run() {
  PrintBanner("Figure 12 — effect of the join method",
              "Prefix join beats Index join beats Loop join");

  const JoinMethod methods[] = {JoinMethod::kLoop, JoinMethod::kIndex,
                                JoinMethod::kPrefix};
  // Loop join is quadratic in fragment size; keep this bench affordable
  // with a smaller sample (same relative shapes).
  for (Workload& w : AllWorkloads(0.4)) {
    std::printf("\n[%s] %zu records, theta = 0.8\n", w.name.c_str(),
                w.corpus.NumRecords());
    TablePrinter table({"join method", "filter wall (ms)", "sim10 (ms)",
                        "candidates considered", "speedup vs loop"});
    double loop_ms = 0.0;
    for (int variant = 0; variant < 4; ++variant) {
      const JoinMethod method = variant < 3 ? methods[variant]
                                            : JoinMethod::kPrefix;
      FsJoinConfig config = DefaultFsConfig(0.8);
      config.join_method = method;
      config.aggressive_segment_prefix = (variant == 3);
      Result<FsJoinOutput> fs = FsJoin(config).Run(w.corpus);
      if (!fs.ok()) {
        std::printf("FAIL: %s\n", fs.status().ToString().c_str());
        continue;
      }
      double wall =
          static_cast<double>(fs->report.filtering_job.reduce_wall_micros) /
          1000.0;
      double sim = SimulatedMs(fs->report.JoinJobs(), kDefaultNodes);
      if (method == JoinMethod::kLoop) loop_ms = wall;
      const std::string label =
          variant == 3 ? "prefix (aggressive)" : JoinMethodName(method);
      table.AddRow({label, StrFormat("%.0f", wall),
                    StrFormat("%.0f", sim),
                    WithThousandsSep(fs->report.filters.pairs_considered),
                    loop_ms > 0.0 ? StrFormat("%.2fx", loop_ms / wall)
                                  : "-"});
    }
    table.Print(std::cout);
  }
}

}  // namespace
}  // namespace fsjoin::bench

int main() {
  fsjoin::bench::Run();
  return 0;
}
