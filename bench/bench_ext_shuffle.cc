// Extension: shuffle data-plane microbenchmark. Pits the seed engine's
// per-record string path (vector<KeyValue> buckets, bytewise stable_sort,
// per-value copies into a std::vector<std::string> per group) against the
// zero-copy arena path (KvBuffer -> ShuffleShard tag sort -> ReduceShard
// over string_views) on an ordering-job-shaped workload: >= 1M records of
// 4-byte big-endian token keys with varint count values, Zipf-distributed
// tokens. Both paths run the same reducer and must produce identical
// output; the arena path is expected to win by >= 1.5x.
//
// A third configuration forces the external shuffle: the same arena path
// under a memory budget of 1/8th the shuffle volume, so every shard spills
// CRC-framed run files and reduces through the streaming k-way merge. Its
// output must also be byte-identical; the row reports the spill volume and
// run count alongside throughput, quantifying the disk detour's cost.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "mr/job.h"
#include "mr/kv.h"
#include "mr/shuffle.h"
#include "store/memory_budget.h"
#include "store/temp_dir.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/serde.h"

namespace fsjoin::bench {
namespace {

constexpr uint32_t kNumMapTasks = 8;
constexpr uint32_t kNumShards = 8;
constexpr uint32_t kVocab = 1 << 16;

std::vector<uint32_t> ZipfTokens(size_t n) {
  Rng rng(4242);
  ZipfSampler zipf(kVocab, 1.0);
  std::vector<uint32_t> tokens(n);
  for (uint32_t& t : tokens) t = static_cast<uint32_t>(zipf.Sample(rng));
  return tokens;
}

class CollectingEmitter : public mr::Emitter {
 public:
  explicit CollectingEmitter(mr::Dataset* out) : out_(out) {}
  void Emit(std::string_view key, std::string_view value) override {
    out_->push_back(mr::KeyValue{std::string(key), std::string(value)});
  }

 private:
  mr::Dataset* out_;
};

class SumReducer : public mr::Reducer {
 public:
  Status Reduce(std::string_view key, mr::ValueList values,
                mr::Emitter* out) override {
    uint64_t total = 0;
    for (std::string_view v : values) {
      Decoder dec(v);
      uint64_t x = 0;
      FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&x));
      total += x;
    }
    std::string value;
    PutVarint64(&value, total);
    out->Emit(key, value);
    return Status::OK();
  }
};

struct PathResult {
  mr::Dataset output;           // shard order, keys sorted within a shard
  uint64_t shuffle_bytes = 0;
  uint64_t peak_group_bytes = 0;
  uint64_t spilled_bytes = 0;
  uint32_t spill_runs = 0;
};

// The seed data plane: every emitted record is a heap KeyValue, the shard
// sort compares strings, and grouping copies each value before reducing.
PathResult RunLegacyPath(const std::vector<uint32_t>& tokens) {
  mr::PrefixIdPartitioner partitioner;
  std::string one;
  PutVarint64(&one, 1);

  std::vector<std::vector<mr::Dataset>> task_out(
      kNumMapTasks, std::vector<mr::Dataset>(kNumShards));
  const size_t per_task = (tokens.size() + kNumMapTasks - 1) / kNumMapTasks;
  for (uint32_t m = 0; m < kNumMapTasks; ++m) {
    const size_t begin = std::min(tokens.size(), m * per_task);
    const size_t end = std::min(tokens.size(), begin + per_task);
    for (size_t i = begin; i < end; ++i) {
      std::string key;
      PutFixed32BE(&key, tokens[i]);
      const uint32_t shard = partitioner.Partition(key, kNumShards);
      task_out[m][shard].push_back(mr::KeyValue{std::move(key), one});
    }
  }

  PathResult result;
  SumReducer reducer;
  CollectingEmitter emitter(&result.output);
  for (uint32_t r = 0; r < kNumShards; ++r) {
    mr::Dataset shard;
    for (uint32_t m = 0; m < kNumMapTasks; ++m) {
      std::move(task_out[m][r].begin(), task_out[m][r].end(),
                std::back_inserter(shard));
      mr::Dataset().swap(task_out[m][r]);
    }
    result.shuffle_bytes += mr::DatasetBytes(shard);
    std::stable_sort(shard.begin(), shard.end(),
                     [](const mr::KeyValue& a, const mr::KeyValue& b) {
                       return a.key < b.key;
                     });
    size_t i = 0;
    while (i < shard.size()) {
      size_t j = i;
      std::vector<std::string> values;  // the copies the arena path removes
      uint64_t group_bytes = 0;
      while (j < shard.size() && shard[j].key == shard[i].key) {
        values.push_back(shard[j].value);
        group_bytes += shard[j].key.size() + shard[j].value.size();
        ++j;
      }
      result.peak_group_bytes = std::max(result.peak_group_bytes, group_bytes);
      std::vector<std::string_view> views(values.begin(), values.end());
      Status st = reducer.Reduce(
          shard[i].key, mr::ValueList(views.data(), views.size()), &emitter);
      if (!st.ok()) FSJOIN_LOG(Fatal) << st.ToString();
      i = j;
    }
  }
  return result;
}

// The zero-copy data plane: emits append bytes to per-shard arenas, the
// shuffle moves arenas, the sort compares 8-byte tags, and the reducer sees
// views into the sorted arena.
PathResult RunArenaPath(const std::vector<uint32_t>& tokens) {
  mr::PrefixIdPartitioner partitioner;
  std::string one;
  PutVarint64(&one, 1);

  std::vector<std::vector<mr::KvBuffer>> task_out(
      kNumMapTasks, std::vector<mr::KvBuffer>(kNumShards));
  const size_t per_task = (tokens.size() + kNumMapTasks - 1) / kNumMapTasks;
  for (uint32_t m = 0; m < kNumMapTasks; ++m) {
    const size_t begin = std::min(tokens.size(), m * per_task);
    const size_t end = std::min(tokens.size(), begin + per_task);
    std::string key;
    for (size_t i = begin; i < end; ++i) {
      key.clear();
      PutFixed32BE(&key, tokens[i]);
      task_out[m][partitioner.Partition(key, kNumShards)].Append(key, one);
    }
  }

  PathResult result;
  SumReducer reducer;
  CollectingEmitter emitter(&result.output);
  for (uint32_t r = 0; r < kNumShards; ++r) {
    mr::ShuffleShard shard;
    for (uint32_t m = 0; m < kNumMapTasks; ++m) {
      shard.AddBuffer(std::move(task_out[m][r]));
    }
    result.shuffle_bytes += shard.PayloadBytes();
    shard.SortByKey();
    uint64_t max_group = 0;
    Status st = mr::ReduceShard(&reducer, shard, &emitter, &max_group);
    if (!st.ok()) FSJOIN_LOG(Fatal) << st.ToString();
    result.peak_group_bytes = std::max(result.peak_group_bytes, max_group);
  }
  return result;
}

// The arena path with a deliberately starved memory budget: shards spill
// key-sorted runs into a scratch directory and the reduce streams a merge.
PathResult RunSpillPath(const std::vector<uint32_t>& tokens,
                        uint64_t budget_bytes) {
  mr::PrefixIdPartitioner partitioner;
  std::string one;
  PutVarint64(&one, 1);

  auto scratch = store::TempSpillDir::Create("", "fsjoin-bench-spill");
  if (!scratch.ok()) FSJOIN_LOG(Fatal) << scratch.status().ToString();
  store::MemoryBudget budget(budget_bytes);

  std::vector<std::vector<mr::KvBuffer>> task_out(
      kNumMapTasks, std::vector<mr::KvBuffer>(kNumShards));
  const size_t per_task = (tokens.size() + kNumMapTasks - 1) / kNumMapTasks;
  for (uint32_t m = 0; m < kNumMapTasks; ++m) {
    const size_t begin = std::min(tokens.size(), m * per_task);
    const size_t end = std::min(tokens.size(), begin + per_task);
    std::string key;
    for (size_t i = begin; i < end; ++i) {
      key.clear();
      PutFixed32BE(&key, tokens[i]);
      task_out[m][partitioner.Partition(key, kNumShards)].Append(key, one);
    }
  }

  PathResult result;
  SumReducer reducer;
  CollectingEmitter emitter(&result.output);
  for (uint32_t r = 0; r < kNumShards; ++r) {
    mr::ShuffleShard shard;
    shard.EnableSpill(&budget, scratch->path(), "r" + std::to_string(r));
    for (uint32_t m = 0; m < kNumMapTasks; ++m) {
      Status st = shard.AddBuffer(std::move(task_out[m][r]));
      if (!st.ok()) FSJOIN_LOG(Fatal) << st.ToString();
    }
    Status st = shard.Seal();
    if (!st.ok()) FSJOIN_LOG(Fatal) << st.ToString();
    result.shuffle_bytes += shard.PayloadBytes();
    result.spilled_bytes += shard.spilled_bytes();
    result.spill_runs += shard.spill_runs();
    if (!shard.spilled()) shard.SortByKey();
    uint64_t max_group = 0;
    st = mr::ReduceShard(&reducer, shard, &emitter, &max_group);
    if (!st.ok()) FSJOIN_LOG(Fatal) << st.ToString();
    result.peak_group_bytes = std::max(result.peak_group_bytes, max_group);
  }
  return result;
}

bool SameOutput(const PathResult& a, const PathResult& b) {
  if (a.output.size() != b.output.size()) return false;
  for (size_t i = 0; i < a.output.size(); ++i) {
    if (a.output[i].key != b.output[i].key ||
        a.output[i].value != b.output[i].value) {
      return false;
    }
  }
  return a.shuffle_bytes == b.shuffle_bytes &&
         a.peak_group_bytes == b.peak_group_bytes;
}

void Run(const BenchOptions& options) {
  PrintBanner("Extension — shuffle data plane: arena vs per-record strings",
              "arena-backed shuffle >= 1.5x faster at identical accounting");

  const size_t num_records =
      std::max<size_t>(1, static_cast<size_t>((1 << 20) * BenchScale()));
  const std::vector<uint32_t> tokens = ZipfTokens(num_records);
  std::printf("workload: %zu records, %u map tasks, %u shards, Zipf(1.0) "
              "over %u tokens\n\n",
              tokens.size(), kNumMapTasks, kNumShards, kVocab);

  // All paths must agree record-for-record and counter-for-counter before
  // their timings mean anything.
  const PathResult legacy_check = RunLegacyPath(tokens);
  const PathResult arena_check = RunArenaPath(tokens);
  if (!SameOutput(legacy_check, arena_check)) {
    std::printf("FAIL: paths disagree (legacy %zu records / %llu bytes, "
                "arena %zu records / %llu bytes)\n",
                legacy_check.output.size(),
                static_cast<unsigned long long>(legacy_check.shuffle_bytes),
                arena_check.output.size(),
                static_cast<unsigned long long>(arena_check.shuffle_bytes));
    std::exit(1);
  }
  // Budget = 1/8th of the shuffle volume: several spill passes per shard.
  const uint64_t spill_budget = std::max<uint64_t>(
      1, arena_check.shuffle_bytes / 8);
  const PathResult spill_check = RunSpillPath(tokens, spill_budget);
  if (!SameOutput(arena_check, spill_check)) {
    std::printf("FAIL: spill path disagrees (arena %zu records, spill %zu "
                "records)\n",
                arena_check.output.size(), spill_check.output.size());
    std::exit(1);
  }
  if (spill_check.spill_runs == 0) {
    std::printf("FAIL: spill budget of %llu bytes produced no runs\n",
                static_cast<unsigned long long>(spill_budget));
    std::exit(1);
  }

  const double legacy_micros =
      MinWallMicros(options, [&] { RunLegacyPath(tokens); });
  const double arena_micros =
      MinWallMicros(options, [&] { RunArenaPath(tokens); });
  const double spill_micros = MinWallMicros(
      options, [&] { RunSpillPath(tokens, spill_budget); });
  const double speedup = legacy_micros / arena_micros;

  struct Row {
    const char* name;
    double micros;
    const PathResult* result;
  };
  const Row rows[] = {{"legacy", legacy_micros, &legacy_check},
                      {"arena", arena_micros, &arena_check},
                      {"spill", spill_micros, &spill_check}};

  std::printf("%-8s %12s %14s %14s %16s %14s %6s\n", "path", "wall (ms)",
              "MB/s", "shuffle (MB)", "peak group (B)", "spilled (MB)",
              "runs");
  std::vector<BenchRecord> records;
  for (const Row& row : rows) {
    std::printf("%-8s %12.1f %14.2f %14.2f %16llu %14.2f %6u\n", row.name,
                row.micros / 1e3, row.result->shuffle_bytes / row.micros,
                row.result->shuffle_bytes / 1e6,
                static_cast<unsigned long long>(row.result->peak_group_bytes),
                row.result->spilled_bytes / 1e6, row.result->spill_runs);
    BenchRecord record;
    record.name = row.name;
    record.wall_micros = row.micros;
    record.shuffle_bytes = row.result->shuffle_bytes;
    record.peak_group_bytes = row.result->peak_group_bytes;
    record.spilled_bytes = row.result->spilled_bytes;
    record.spill_runs = row.result->spill_runs;
    records.push_back(std::move(record));
  }
  std::printf("\nspeedup (legacy/arena): %.2fx  [target >= 1.50x: %s]\n",
              speedup, speedup >= 1.5 ? "PASS" : "FAIL");
  std::printf("spill overhead (spill/arena): %.2fx with %u runs / %.2f MB "
              "on disk\n",
              spill_micros / arena_micros, spill_check.spill_runs,
              spill_check.spilled_bytes / 1e6);
  WriteBenchJson(options, "ext_shuffle", records);
}

}  // namespace
}  // namespace fsjoin::bench

int main(int argc, char** argv) {
  fsjoin::bench::Run(
      fsjoin::bench::ParseBenchOptions("ext_shuffle", argc, argv));
  return 0;
}
