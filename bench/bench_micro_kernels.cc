// Microbenchmarks (google-benchmark) for the hot kernels under everything:
// sorted-set operations, serde, Zipf sampling, prefix math, segment
// splitting and the fragment join.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/fragment_join.h"
#include "core/pivots.h"
#include "core/segments.h"
#include "sim/set_ops.h"
#include "sim/similarity.h"
#include "text/generator.h"
#include "util/random.h"
#include "util/serde.h"

namespace fsjoin {
namespace {

std::vector<uint32_t> RandomSortedSet(Rng& rng, size_t n, uint32_t domain) {
  std::vector<uint32_t> v;
  v.reserve(n);
  while (v.size() < n) v.push_back(static_cast<uint32_t>(rng.NextBounded(domain)));
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

void BM_SortedOverlap(benchmark::State& state) {
  Rng rng(1);
  auto a = RandomSortedSet(rng, state.range(0), 1 << 20);
  auto b = RandomSortedSet(rng, state.range(0), 1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SortedOverlap(a, b));
  }
  state.SetItemsProcessed(state.iterations() * (a.size() + b.size()));
}
BENCHMARK(BM_SortedOverlap)->Arg(64)->Arg(512)->Arg(4096);

// Skewed pair: a `small`-element probe set against one `small * skew`
// elements long. Compares the linear merge, the galloping probe, and the
// dispatching SortedOverlap across the crossover region.
void BM_OverlapSkewedLinear(benchmark::State& state) {
  Rng rng(7);
  auto a = RandomSortedSet(rng, state.range(0), 1 << 22);
  auto b = RandomSortedSet(rng, state.range(0) * state.range(1), 1 << 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LinearOverlap(a, b));
  }
  state.SetItemsProcessed(state.iterations() * (a.size() + b.size()));
}
BENCHMARK(BM_OverlapSkewedLinear)
    ->Args({64, 8})
    ->Args({64, 64})
    ->Args({64, 512});

void BM_OverlapSkewedGalloping(benchmark::State& state) {
  Rng rng(7);
  auto a = RandomSortedSet(rng, state.range(0), 1 << 22);
  auto b = RandomSortedSet(rng, state.range(0) * state.range(1), 1 << 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GallopingOverlap(a, b));
  }
  state.SetItemsProcessed(state.iterations() * (a.size() + b.size()));
}
BENCHMARK(BM_OverlapSkewedGalloping)
    ->Args({64, 8})
    ->Args({64, 64})
    ->Args({64, 512});

void BM_OverlapSkewedDispatch(benchmark::State& state) {
  Rng rng(7);
  auto a = RandomSortedSet(rng, state.range(0), 1 << 22);
  auto b = RandomSortedSet(rng, state.range(0) * state.range(1), 1 << 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SortedOverlap(a, b));
  }
  state.SetItemsProcessed(state.iterations() * (a.size() + b.size()));
}
BENCHMARK(BM_OverlapSkewedDispatch)
    ->Args({64, 8})
    ->Args({64, 64})
    ->Args({64, 512});

void BM_SortedOverlapAtLeast(benchmark::State& state) {
  Rng rng(2);
  auto a = RandomSortedSet(rng, state.range(0), 1 << 20);
  auto b = a;
  for (size_t i = 0; i < b.size(); i += 3) b[i] += 1;  // ~2/3 overlap
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  const uint64_t required = a.size() * 9 / 10;  // unreachable -> early exit
  for (auto _ : state) {
    benchmark::DoNotOptimize(SortedOverlapAtLeast(a, b, required));
  }
}
BENCHMARK(BM_SortedOverlapAtLeast)->Arg(512)->Arg(4096);

void BM_VarintRoundTrip(benchmark::State& state) {
  std::vector<uint32_t> values(1024);
  Rng rng(3);
  for (auto& v : values) v = static_cast<uint32_t>(rng.Next());
  for (auto _ : state) {
    std::string buf;
    PutUint32Vector(&buf, values);
    std::vector<uint32_t> out;
    Decoder dec(buf);
    benchmark::DoNotOptimize(dec.GetUint32Vector(&out));
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_VarintRoundTrip);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(4);
  ZipfSampler zipf(static_cast<uint64_t>(state.range(0)), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(10000)->Arg(1000000);

void BM_MinOverlap(benchmark::State& state) {
  uint64_t a = 80, b = 95;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MinOverlap(SimilarityFunction::kJaccard, 0.8, a, b));
    a = (a % 200) + 1;
    b = (b % 180) + 1;
  }
}
BENCHMARK(BM_MinOverlap);

void BM_SplitIntoSegments(benchmark::State& state) {
  Rng rng(5);
  OrderedRecord rec{0, RandomSortedSet(rng, 256, 1 << 16)};
  std::vector<TokenRank> pivots;
  for (int i = 1; i < 30; ++i) pivots.push_back((i << 16) / 30);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SplitIntoSegments(rec, pivots));
  }
}
BENCHMARK(BM_SplitIntoSegments);

void BM_FragmentJoin(benchmark::State& state) {
  Rng rng(6);
  std::vector<SegmentRecord> fragment;
  for (uint32_t i = 0; i < static_cast<uint32_t>(state.range(0)); ++i) {
    SegmentRecord seg;
    seg.rid = i;
    seg.tokens = RandomSortedSet(rng, 12, 4096);
    seg.head = 30;
    seg.record_size = 30 + static_cast<uint32_t>(seg.tokens.size()) + 30;
    fragment.push_back(std::move(seg));
  }
  FragmentJoinOptions opts;
  opts.theta = 0.8;
  opts.method = static_cast<JoinMethod>(state.range(1));
  for (auto _ : state) {
    std::vector<PartialOverlap> out;
    FilterCounters counters;
    JoinFragment(fragment, opts, &out, &counters);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FragmentJoin)
    ->Args({200, 0})   // loop
    ->Args({200, 1})   // index
    ->Args({200, 2})   // prefix
    ->Args({1000, 2});  // prefix, larger fragment

void BM_CorpusGeneration(benchmark::State& state) {
  for (auto _ : state) {
    SyntheticCorpusConfig cfg = WikiLikeConfig(0.02);
    benchmark::DoNotOptimize(GenerateCorpus(cfg));
  }
}
BENCHMARK(BM_CorpusGeneration);

}  // namespace
}  // namespace fsjoin

BENCHMARK_MAIN();
