// Microbenchmarks (google-benchmark) for the hot kernels under everything:
// sorted-set operations, serde, Zipf sampling, prefix math, segment
// splitting and the fragment join.
//
// Two modes:
//   (default)        google-benchmark suite, standard --benchmark_* flags.
//   --json[=PATH]    focused kernel comparison written as BENCH_kernels.json
//                    (scalar vs galloping vs word-packed vs SIMD overlap on
//                    short segments, bounded overlap under the SegI bound,
//                    mid-length block merge, container kernels; serial vs
//                    morsel-parallel JoinFragment on a skewed fragment set).
//                    Prints the detected SIMD ISA. Honors --warmup/--repeat.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/fragment_join.h"
#include "core/pivots.h"
#include "core/segments.h"
#include "sim/set_ops.h"
#include "sim/similarity.h"
#include "text/generator.h"
#include "util/random.h"
#include "util/serde.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace fsjoin {
namespace {

std::vector<uint32_t> RandomSortedSet(Rng& rng, size_t n, uint32_t domain) {
  std::vector<uint32_t> v;
  v.reserve(n);
  while (v.size() < n) v.push_back(static_cast<uint32_t>(rng.NextBounded(domain)));
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

void BM_SortedOverlap(benchmark::State& state) {
  Rng rng(1);
  auto a = RandomSortedSet(rng, state.range(0), 1 << 20);
  auto b = RandomSortedSet(rng, state.range(0), 1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SortedOverlap(a, b));
  }
  state.SetItemsProcessed(state.iterations() * (a.size() + b.size()));
}
BENCHMARK(BM_SortedOverlap)->Arg(64)->Arg(512)->Arg(4096);

// Skewed pair: a `small`-element probe set against one `small * skew`
// elements long. Compares the linear merge, the galloping probe, and the
// dispatching SortedOverlap across the crossover region.
void BM_OverlapSkewedLinear(benchmark::State& state) {
  Rng rng(7);
  auto a = RandomSortedSet(rng, state.range(0), 1 << 22);
  auto b = RandomSortedSet(rng, state.range(0) * state.range(1), 1 << 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LinearOverlap(a, b));
  }
  state.SetItemsProcessed(state.iterations() * (a.size() + b.size()));
}
BENCHMARK(BM_OverlapSkewedLinear)
    ->Args({64, 8})
    ->Args({64, 64})
    ->Args({64, 512});

void BM_OverlapSkewedGalloping(benchmark::State& state) {
  Rng rng(7);
  auto a = RandomSortedSet(rng, state.range(0), 1 << 22);
  auto b = RandomSortedSet(rng, state.range(0) * state.range(1), 1 << 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GallopingOverlap(a, b));
  }
  state.SetItemsProcessed(state.iterations() * (a.size() + b.size()));
}
BENCHMARK(BM_OverlapSkewedGalloping)
    ->Args({64, 8})
    ->Args({64, 64})
    ->Args({64, 512});

void BM_OverlapSkewedDispatch(benchmark::State& state) {
  Rng rng(7);
  auto a = RandomSortedSet(rng, state.range(0), 1 << 22);
  auto b = RandomSortedSet(rng, state.range(0) * state.range(1), 1 << 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SortedOverlap(a, b));
  }
  state.SetItemsProcessed(state.iterations() * (a.size() + b.size()));
}
BENCHMARK(BM_OverlapSkewedDispatch)
    ->Args({64, 8})
    ->Args({64, 64})
    ->Args({64, 512});

void BM_SortedOverlapAtLeast(benchmark::State& state) {
  Rng rng(2);
  auto a = RandomSortedSet(rng, state.range(0), 1 << 20);
  auto b = a;
  for (size_t i = 0; i < b.size(); i += 3) b[i] += 1;  // ~2/3 overlap
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  const uint64_t required = a.size() * 9 / 10;  // unreachable -> early exit
  for (auto _ : state) {
    benchmark::DoNotOptimize(SortedOverlapAtLeast(a, b, required));
  }
}
BENCHMARK(BM_SortedOverlapAtLeast)->Arg(512)->Arg(4096);

void BM_VarintRoundTrip(benchmark::State& state) {
  std::vector<uint32_t> values(1024);
  Rng rng(3);
  for (auto& v : values) v = static_cast<uint32_t>(rng.Next());
  for (auto _ : state) {
    std::string buf;
    PutUint32Vector(&buf, values);
    std::vector<uint32_t> out;
    Decoder dec(buf);
    benchmark::DoNotOptimize(dec.GetUint32Vector(&out));
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_VarintRoundTrip);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(4);
  ZipfSampler zipf(static_cast<uint64_t>(state.range(0)), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(10000)->Arg(1000000);

void BM_MinOverlap(benchmark::State& state) {
  uint64_t a = 80, b = 95;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MinOverlap(SimilarityFunction::kJaccard, 0.8, a, b));
    a = (a % 200) + 1;
    b = (b % 180) + 1;
  }
}
BENCHMARK(BM_MinOverlap);

void BM_SplitIntoSegments(benchmark::State& state) {
  Rng rng(5);
  OrderedRecord rec{0, RandomSortedSet(rng, 256, 1 << 16)};
  std::vector<TokenRank> pivots;
  for (int i = 1; i < 30; ++i) pivots.push_back((i << 16) / 30);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SplitIntoSegments(rec, pivots));
  }
}
BENCHMARK(BM_SplitIntoSegments);

void BM_FragmentJoin(benchmark::State& state) {
  Rng rng(6);
  std::vector<SegmentRecord> fragment;
  for (uint32_t i = 0; i < static_cast<uint32_t>(state.range(0)); ++i) {
    SegmentRecord seg;
    seg.rid = i;
    seg.tokens = RandomSortedSet(rng, 12, 4096);
    seg.head = 30;
    seg.record_size = 30 + static_cast<uint32_t>(seg.tokens.size()) + 30;
    fragment.push_back(std::move(seg));
  }
  FragmentJoinOptions opts;
  opts.theta = 0.8;
  opts.method = static_cast<JoinMethod>(state.range(1));
  for (auto _ : state) {
    std::vector<PartialOverlap> out;
    FilterCounters counters;
    JoinFragment(fragment, opts, &out, &counters);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FragmentJoin)
    ->Args({200, 0})   // loop
    ->Args({200, 1})   // index
    ->Args({200, 2})   // prefix
    ->Args({1000, 2});  // prefix, larger fragment

// Short segments (vertical partitioning leaves most segments a handful of
// tokens) with fragment-local bucket bitmaps precomputed once, as
// SegmentBatch::Seal does. With 4-token segments over 64 buckets ~3/4 of
// random pairs are rejected by the single AND.
struct ShortSegments {
  std::vector<std::vector<uint32_t>> sets;
  std::vector<uint64_t> bitmaps;
};

ShortSegments MakeShortSegments(Rng& rng, size_t count, size_t len,
                                uint32_t domain) {
  ShortSegments s;
  const uint32_t shift = BitmapShiftForSpan(domain);
  for (size_t i = 0; i < count; ++i) {
    std::vector<uint32_t> v = RandomSortedSet(rng, len, domain);
    s.bitmaps.push_back(TokenBitmap(v.data(), v.size(), 0, shift));
    s.sets.push_back(std::move(v));
  }
  return s;
}

void BM_OverlapShortScalar(benchmark::State& state) {
  Rng rng(42);
  ShortSegments s = MakeShortSegments(rng, 1024, state.range(0), 1024);
  size_t i = 0, j = 1;
  for (auto _ : state) {
    const auto& a = s.sets[i];
    const auto& b = s.sets[j];
    benchmark::DoNotOptimize(
        LinearOverlap(a.data(), a.size(), b.data(), b.size()));
    i = (i + 1) & 1023;
    j = (j + 7) & 1023;
  }
}
BENCHMARK(BM_OverlapShortScalar)->Arg(4)->Arg(8)->Arg(16);

void BM_OverlapShortGalloping(benchmark::State& state) {
  Rng rng(42);
  ShortSegments s = MakeShortSegments(rng, 1024, state.range(0), 1024);
  size_t i = 0, j = 1;
  for (auto _ : state) {
    const auto& a = s.sets[i];
    const auto& b = s.sets[j];
    benchmark::DoNotOptimize(
        GallopingOverlap(a.data(), a.size(), b.data(), b.size()));
    i = (i + 1) & 1023;
    j = (j + 7) & 1023;
  }
}
BENCHMARK(BM_OverlapShortGalloping)->Arg(4)->Arg(8)->Arg(16);

void BM_OverlapShortPacked(benchmark::State& state) {
  Rng rng(42);
  ShortSegments s = MakeShortSegments(rng, 1024, state.range(0), 1024);
  size_t i = 0, j = 1;
  for (auto _ : state) {
    const auto& a = s.sets[i];
    const auto& b = s.sets[j];
    benchmark::DoNotOptimize(PackedOverlap(a.data(), a.size(), s.bitmaps[i],
                                           b.data(), b.size(), s.bitmaps[j]));
    i = (i + 1) & 1023;
    j = (j + 7) & 1023;
  }
}
BENCHMARK(BM_OverlapShortPacked)->Arg(4)->Arg(8)->Arg(16);

void BM_OverlapShortSimd(benchmark::State& state) {
  Rng rng(42);
  ShortSegments s = MakeShortSegments(rng, 1024, state.range(0), 1024);
  size_t i = 0, j = 1;
  for (auto _ : state) {
    const auto& a = s.sets[i];
    const auto& b = s.sets[j];
    benchmark::DoNotOptimize(
        SimdOverlap(a.data(), a.size(), b.data(), b.size()));
    i = (i + 1) & 1023;
    j = (j + 7) & 1023;
  }
}
BENCHMARK(BM_OverlapShortSimd)->Arg(4)->Arg(8)->Arg(16);

// Mid-length balanced sets: the 8-rotation AVX2 block merge against the
// scalar merge and the galloping probe (galloping degenerates when neither
// side is much longer).
void BM_OverlapMid(benchmark::State& state) {
  Rng rng(9);
  auto a = RandomSortedSet(rng, 512, 1 << 14);
  auto b = RandomSortedSet(rng, 512, 1 << 14);
  const int kernel = static_cast<int>(state.range(0));
  for (auto _ : state) {
    uint64_t r;
    if (kernel == 0) {
      r = LinearOverlap(a.data(), a.size(), b.data(), b.size());
    } else if (kernel == 1) {
      r = GallopingOverlap(a.data(), a.size(), b.data(), b.size());
    } else {
      r = SimdOverlap(a.data(), a.size(), b.data(), b.size());
    }
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * (a.size() + b.size()));
}
BENCHMARK(BM_OverlapMid)->Arg(0)->Arg(1)->Arg(2);

void BM_OverlapSkewedSimd(benchmark::State& state) {
  Rng rng(7);
  auto a = RandomSortedSet(rng, state.range(0), 1 << 22);
  auto b = RandomSortedSet(rng, state.range(0) * state.range(1), 1 << 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SimdOverlap(a.data(), a.size(), b.data(), b.size()));
  }
  state.SetItemsProcessed(state.iterations() * (a.size() + b.size()));
}
BENCHMARK(BM_OverlapSkewedSimd)
    ->Args({64, 8})
    ->Args({64, 64})
    ->Args({64, 512});

// Bounded early exit with an unreachable SegI bound (~2/3 real overlap,
// required at 90%): the kernel may bail as soon as the bound is provably
// unreachable.
void BM_SimdOverlapBounded(benchmark::State& state) {
  Rng rng(2);
  auto a = RandomSortedSet(rng, state.range(0), 1 << 20);
  auto b = a;
  for (size_t i = 0; i < b.size(); i += 3) b[i] += 1;
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  const uint64_t required = a.size() * 9 / 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SimdOverlapBounded(a.data(), a.size(), b.data(), b.size(), required));
  }
}
BENCHMARK(BM_SimdOverlapBounded)->Arg(512)->Arg(4096);

void BM_FragmentJoinMorsel(benchmark::State& state) {
  Rng rng(6);
  std::vector<SegmentRecord> fragment;
  for (uint32_t i = 0; i < static_cast<uint32_t>(state.range(0)); ++i) {
    SegmentRecord seg;
    seg.rid = i;
    seg.tokens = RandomSortedSet(rng, 12, 4096);
    seg.head = 30;
    seg.record_size = 30 + static_cast<uint32_t>(seg.tokens.size()) + 30;
    fragment.push_back(std::move(seg));
  }
  ThreadPool pool(static_cast<size_t>(state.range(1)));
  FragmentJoinOptions opts;
  opts.theta = 0.8;
  opts.morsel_pool = &pool;
  opts.morsel_size = 64;
  for (auto _ : state) {
    std::vector<PartialOverlap> out;
    FilterCounters counters;
    JoinFragment(fragment, opts, &out, &counters);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FragmentJoinMorsel)
    ->Args({1000, 0})   // inline morsels (scheduling overhead floor)
    ->Args({1000, 4})
    ->Args({1000, 8});

void BM_CorpusGeneration(benchmark::State& state) {
  for (auto _ : state) {
    SyntheticCorpusConfig cfg = WikiLikeConfig(0.02);
    benchmark::DoNotOptimize(GenerateCorpus(cfg));
  }
}
BENCHMARK(BM_CorpusGeneration);

// ---- --json mode: focused kernel comparison -------------------------------

// Sum of pairwise overlaps over a fixed pair schedule — identical work for
// every kernel, and the checksum doubles as an equality check between them.
template <typename OverlapFn>
uint64_t SweepPairs(const ShortSegments& s, size_t pairs, OverlapFn&& fn) {
  uint64_t sum = 0;
  const size_t n = s.sets.size();
  size_t i = 0, j = 1;
  for (size_t p = 0; p < pairs; ++p) {
    sum += fn(i, j);
    i = i + 1 == n ? 0 : i + 1;
    j = j + 7 >= n ? (j + 7) - n : j + 7;
  }
  return sum;
}

// Skewed fragment set: one oversized fragment plus a tail of small ones —
// the shape that stalls a reduce wave without morsel parallelism.
std::vector<std::vector<SegmentRecord>> MakeSkewedFragments(Rng& rng) {
  std::vector<std::vector<SegmentRecord>> fragments;
  auto make_fragment = [&rng](uint32_t n) {
    std::vector<SegmentRecord> fragment;
    for (uint32_t i = 0; i < n; ++i) {
      SegmentRecord seg;
      seg.rid = i;
      seg.tokens = RandomSortedSet(rng, 12, 4096);
      seg.head = 30;
      seg.record_size = 30 + static_cast<uint32_t>(seg.tokens.size()) + 30;
      fragment.push_back(std::move(seg));
    }
    return fragment;
  };
  fragments.push_back(make_fragment(2600));  // the straggler
  for (int f = 0; f < 20; ++f) fragments.push_back(make_fragment(50));
  return fragments;
}

}  // namespace

int RunKernelComparison(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseBenchOptions("kernels", argc, argv);
  std::vector<bench::BenchRecord> records;
  std::printf("simd: isa=%s (kernels %s)\n", SimdIsaName(DetectedSimdIsa()),
              SimdAvailable() ? "vectorized" : "scalar fallback");

  // 1) Overlap kernels on short segments (4 tokens, 1024-rank fragment).
  Rng rng(42);
  const ShortSegments s = MakeShortSegments(rng, 4096, 4, 1024);
  const size_t kPairs = 2'000'000;
  uint64_t check_scalar = 0, check_gallop = 0, check_packed = 0;
  const double scalar_us = bench::MinWallMicros(options, [&] {
    check_scalar = SweepPairs(s, kPairs, [&s](size_t i, size_t j) {
      return LinearOverlap(s.sets[i].data(), s.sets[i].size(),
                           s.sets[j].data(), s.sets[j].size());
    });
  });
  const double gallop_us = bench::MinWallMicros(options, [&] {
    check_gallop = SweepPairs(s, kPairs, [&s](size_t i, size_t j) {
      return GallopingOverlap(s.sets[i].data(), s.sets[i].size(),
                              s.sets[j].data(), s.sets[j].size());
    });
  });
  const double packed_us = bench::MinWallMicros(options, [&] {
    check_packed = SweepPairs(s, kPairs, [&s](size_t i, size_t j) {
      return PackedOverlap(s.sets[i].data(), s.sets[i].size(), s.bitmaps[i],
                           s.sets[j].data(), s.sets[j].size(), s.bitmaps[j]);
    });
  });
  if (check_scalar != check_gallop || check_scalar != check_packed) {
    std::fprintf(stderr, "kernel mismatch: scalar=%llu gallop=%llu packed=%llu\n",
                 static_cast<unsigned long long>(check_scalar),
                 static_cast<unsigned long long>(check_gallop),
                 static_cast<unsigned long long>(check_packed));
    return 1;
  }
  uint64_t check_simd = 0;
  const double simd_us = bench::MinWallMicros(options, [&] {
    check_simd = SweepPairs(s, kPairs, [&s](size_t i, size_t j) {
      return (s.bitmaps[i] & s.bitmaps[j]) == 0
                 ? uint64_t{0}
                 : SimdOverlap(s.sets[i].data(), s.sets[i].size(),
                               s.sets[j].data(), s.sets[j].size());
    });
  });
  if (check_scalar != check_simd) {
    std::fprintf(stderr, "kernel mismatch: scalar=%llu simd=%llu\n",
                 static_cast<unsigned long long>(check_scalar),
                 static_cast<unsigned long long>(check_simd));
    return 1;
  }
  records.push_back({"overlap_short/scalar", scalar_us});
  records.push_back({"overlap_short/galloping", gallop_us});
  records.push_back({"overlap_short/packed", packed_us});
  records.push_back({"overlap_short/simd", simd_us});
  std::printf("overlap_short (4-token segments, %zu pairs):\n", kPairs);
  std::printf("  scalar    %10.0f us\n", scalar_us);
  std::printf("  galloping %10.0f us\n", gallop_us);
  std::printf("  packed    %10.0f us  (%.2fx vs galloping)\n", packed_us,
              gallop_us / packed_us);
  std::printf("  simd      %10.0f us  (%.2fx vs packed)\n", simd_us,
              packed_us / simd_us);

  // 1b) Bounded overlap on short 16-token segments: the SegI predicate
  // "does the pair reach required?" with required at 3/4 of the segment.
  // Every kernel answers the predicate identically under the bounded
  // contract; the checksum counts qualifying pairs. PR-3's packed kernel
  // has no bound support, so it pays for the exact merge every time, while
  // the bounded kernel bails once the bound is provably unreachable.
  Rng rng16(43);
  const ShortSegments s16 = MakeShortSegments(rng16, 4096, 16, 1024);
  const uint64_t kRequired = 12;
  uint64_t bound_packed = 0, bound_simd = 0;
  const double bound_packed_us = bench::MinWallMicros(options, [&] {
    bound_packed = SweepPairs(s16, kPairs, [&s16](size_t i, size_t j) {
      return uint64_t{PackedOverlap(s16.sets[i].data(), s16.sets[i].size(),
                                    s16.bitmaps[i], s16.sets[j].data(),
                                    s16.sets[j].size(),
                                    s16.bitmaps[j]) >= kRequired};
    });
  });
  const double bound_simd_us = bench::MinWallMicros(options, [&] {
    bound_simd = SweepPairs(s16, kPairs, [&s16](size_t i, size_t j) {
      if ((s16.bitmaps[i] & s16.bitmaps[j]) == 0) return uint64_t{0};
      return uint64_t{
          SimdOverlapBounded(s16.sets[i].data(), s16.sets[i].size(),
                             s16.sets[j].data(), s16.sets[j].size(),
                             kRequired) >= kRequired};
    });
  });
  if (bound_packed != bound_simd) {
    std::fprintf(stderr, "bounded mismatch: packed=%llu simd=%llu\n",
                 static_cast<unsigned long long>(bound_packed),
                 static_cast<unsigned long long>(bound_simd));
    return 1;
  }
  records.push_back({"overlap_bounded_short/packed", bound_packed_us});
  records.push_back({"overlap_bounded_short/simd", bound_simd_us});
  std::printf(
      "overlap_bounded_short (required=%llu of 16 tokens, %zu pairs):\n",
      static_cast<unsigned long long>(kRequired), kPairs);
  std::printf("  packed    %10.0f us\n", bound_packed_us);
  std::printf("  simd      %10.0f us  (%.2fx vs packed)\n", bound_simd_us,
              bound_packed_us / bound_simd_us);

  // 1c) Mid-length balanced sets (512 tokens a side): the block merge vs
  // the scalar merge and galloping, which degenerates without skew.
  Rng mid_rng(9);
  std::vector<std::vector<uint32_t>> mid;
  for (int k = 0; k < 64; ++k) {
    mid.push_back(RandomSortedSet(mid_rng, 512, 1 << 14));
  }
  const size_t kMidPairs = 200'000;
  auto mid_sweep = [&mid](auto&& fn) {
    uint64_t sum = 0;
    size_t i = 0, j = 1;
    for (size_t p = 0; p < kMidPairs; ++p) {
      sum += fn(mid[i], mid[j]);
      i = (i + 1) & 63;
      j = (j + 7) & 63;
    }
    return sum;
  };
  uint64_t mid_scalar = 0, mid_gallop = 0, mid_simd = 0;
  const double mid_scalar_us = bench::MinWallMicros(options, [&] {
    mid_scalar = mid_sweep([](const auto& a, const auto& b) {
      return LinearOverlap(a.data(), a.size(), b.data(), b.size());
    });
  });
  const double mid_gallop_us = bench::MinWallMicros(options, [&] {
    mid_gallop = mid_sweep([](const auto& a, const auto& b) {
      return GallopingOverlap(a.data(), a.size(), b.data(), b.size());
    });
  });
  const double mid_simd_us = bench::MinWallMicros(options, [&] {
    mid_simd = mid_sweep([](const auto& a, const auto& b) {
      return SimdOverlap(a.data(), a.size(), b.data(), b.size());
    });
  });
  if (mid_scalar != mid_gallop || mid_scalar != mid_simd) {
    std::fprintf(stderr, "mid mismatch: scalar=%llu gallop=%llu simd=%llu\n",
                 static_cast<unsigned long long>(mid_scalar),
                 static_cast<unsigned long long>(mid_gallop),
                 static_cast<unsigned long long>(mid_simd));
    return 1;
  }
  records.push_back({"overlap_mid/scalar", mid_scalar_us});
  records.push_back({"overlap_mid/galloping", mid_gallop_us});
  records.push_back({"overlap_mid/simd", mid_simd_us});
  std::printf("overlap_mid (512-token balanced sets, %zu pairs):\n",
              kMidPairs);
  std::printf("  scalar    %10.0f us\n", mid_scalar_us);
  std::printf("  galloping %10.0f us\n", mid_gallop_us);
  std::printf("  simd      %10.0f us  (%.2fx vs galloping, %.2fx vs scalar)\n",
              mid_simd_us, mid_gallop_us / mid_simd_us,
              mid_scalar_us / mid_simd_us);

  // 1d) Container kernels: the same dense mid-length sets as bitsets on the
  // absolute word grid, and clustered sets as run lists.
  std::vector<std::vector<uint64_t>> words(mid.size());
  std::vector<uint32_t> word0(mid.size());
  for (size_t k = 0; k < mid.size(); ++k) {
    const auto& v = mid[k];
    word0[k] = v.front() / 64;
    words[k].assign(v.back() / 64 - word0[k] + 1, 0);
    for (uint32_t t : v) {
      words[k][t / 64 - word0[k]] |= uint64_t{1} << (t % 64);
    }
  }
  std::vector<std::vector<TokenRun>> runs(mid.size());
  for (size_t k = 0; k < mid.size(); ++k) {
    Rng r(static_cast<uint64_t>(k) + 1);
    std::vector<uint32_t> clustered;
    for (uint32_t base = 0; base < 2048 && clustered.size() < 512;
         base += 32 + static_cast<uint32_t>(r.NextBounded(32))) {
      for (uint32_t q = 0; q < 24 && clustered.size() < 512; ++q) {
        clustered.push_back(base + q);
      }
    }
    AppendTokenRuns(clustered.data(), clustered.size(), &runs[k]);
  }
  uint64_t cont_bitset = 0, cont_runs = 0;
  const double bitset_us = bench::MinWallMicros(options, [&] {
    cont_bitset = 0;
    size_t i = 0, j = 1;
    for (size_t p = 0; p < kMidPairs; ++p) {
      cont_bitset += BitsetBitsetOverlap(
          words[i].data(), word0[i], static_cast<uint32_t>(words[i].size()),
          words[j].data(), word0[j], static_cast<uint32_t>(words[j].size()));
      i = (i + 1) & 63;
      j = (j + 7) & 63;
    }
  });
  const double runs_us = bench::MinWallMicros(options, [&] {
    cont_runs = 0;
    size_t i = 0, j = 1;
    for (size_t p = 0; p < kMidPairs; ++p) {
      cont_runs += RunsRunsOverlap(runs[i].data(), runs[i].size(),
                                   runs[j].data(), runs[j].size());
      i = (i + 1) & 63;
      j = (j + 7) & 63;
    }
  });
  benchmark::DoNotOptimize(cont_runs);
  if (cont_bitset != mid_scalar) {
    std::fprintf(stderr, "container mismatch: bitset=%llu scalar=%llu\n",
                 static_cast<unsigned long long>(cont_bitset),
                 static_cast<unsigned long long>(mid_scalar));
    return 1;
  }
  records.push_back({"containers/bitset_bitset", bitset_us});
  records.push_back({"containers/runs_runs", runs_us});
  std::printf("containers (%zu pairs):\n", kMidPairs);
  std::printf("  bitset x bitset %10.0f us  (%.2fx vs sorted-array scalar)\n",
              bitset_us, mid_scalar_us / bitset_us);
  std::printf("  runs x runs     %10.0f us  (clustered 512-token sets)\n",
              runs_us);

  // 1e) Crossover sweep (feeds the tuner): scalar vs packed vs simd across
  // segment lengths 2..512. The per-fragment decision layer's
  // TuningPolicy::simd_min_avg_len is calibrated from these rows — the
  // smallest length where the simd column beats packed is the crossover,
  // and the rows land in BENCH_kernels.json so recalibrating after a kernel
  // change is a diff of two bench files, not a guess.
  std::printf("crossover (scalar vs packed vs simd by segment length):\n");
  std::printf("  %6s %10s %10s %10s  %s\n", "len", "scalar", "packed", "simd",
              "winner");
  for (size_t len : {2, 4, 8, 16, 32, 64, 128, 256, 512}) {
    Rng cross_rng(1000 + static_cast<uint64_t>(len));
    // Domain scales with length so density (and bitmap selectivity) stays
    // comparable across rows; pair count shrinks so long rows stay cheap.
    const uint32_t domain = static_cast<uint32_t>(len) * 256;
    const size_t count = 1024;
    const ShortSegments cs = MakeShortSegments(cross_rng, count, len, domain);
    const size_t pairs = std::max<size_t>(20'000, 2'000'000 / len);
    uint64_t cross_scalar = 0, cross_packed = 0, cross_simd = 0;
    const double cross_scalar_us = bench::MinWallMicros(options, [&] {
      cross_scalar = SweepPairs(cs, pairs, [&cs](size_t i, size_t j) {
        return LinearOverlap(cs.sets[i].data(), cs.sets[i].size(),
                             cs.sets[j].data(), cs.sets[j].size());
      });
    });
    const double cross_packed_us = bench::MinWallMicros(options, [&] {
      cross_packed = SweepPairs(cs, pairs, [&cs](size_t i, size_t j) {
        return PackedOverlap(cs.sets[i].data(), cs.sets[i].size(),
                             cs.bitmaps[i], cs.sets[j].data(),
                             cs.sets[j].size(), cs.bitmaps[j]);
      });
    });
    const double cross_simd_us = bench::MinWallMicros(options, [&] {
      cross_simd = SweepPairs(cs, pairs, [&cs](size_t i, size_t j) {
        return (cs.bitmaps[i] & cs.bitmaps[j]) == 0
                   ? uint64_t{0}
                   : SimdOverlap(cs.sets[i].data(), cs.sets[i].size(),
                                 cs.sets[j].data(), cs.sets[j].size());
      });
    });
    if (cross_scalar != cross_packed || cross_scalar != cross_simd) {
      std::fprintf(stderr,
                   "crossover mismatch at len=%zu: scalar=%llu packed=%llu "
                   "simd=%llu\n",
                   len, static_cast<unsigned long long>(cross_scalar),
                   static_cast<unsigned long long>(cross_packed),
                   static_cast<unsigned long long>(cross_simd));
      return 1;
    }
    // Normalize to microseconds per million pairs so rows with different
    // pair counts compare directly.
    const double scale = 1'000'000.0 / static_cast<double>(pairs);
    const double ns = cross_scalar_us * scale;
    const double np = cross_packed_us * scale;
    const double nv = cross_simd_us * scale;
    records.push_back({"crossover/len" + std::to_string(len) + "/scalar", ns});
    records.push_back({"crossover/len" + std::to_string(len) + "/packed", np});
    records.push_back({"crossover/len" + std::to_string(len) + "/simd", nv});
    const char* winner =
        nv <= np && nv <= ns ? "simd" : (np <= ns ? "packed" : "scalar");
    std::printf("  %6zu %10.0f %10.0f %10.0f  %s\n", len, ns, np, nv, winner);
  }

  // 2) JoinFragment aggregate, serial vs morsel-parallel on 8 threads.
  Rng frag_rng(6);
  const std::vector<std::vector<SegmentRecord>> fragments =
      MakeSkewedFragments(frag_rng);
  FragmentJoinOptions serial_opts;
  serial_opts.theta = 0.8;
  uint64_t serial_emitted = 0, parallel_emitted = 0;
  const double serial_us = bench::MinWallMicros(options, [&] {
    serial_emitted = 0;
    for (const auto& fragment : fragments) {
      std::vector<PartialOverlap> out;
      FilterCounters counters;
      JoinFragment(fragment, serial_opts, &out, &counters);
      serial_emitted += counters.emitted;
    }
  });
  ThreadPool pool(8);
  FragmentJoinOptions morsel_opts = serial_opts;
  morsel_opts.morsel_pool = &pool;
  morsel_opts.morsel_size = 64;
  const double parallel_us = bench::MinWallMicros(options, [&] {
    parallel_emitted = 0;
    for (const auto& fragment : fragments) {
      std::vector<PartialOverlap> out;
      FilterCounters counters;
      JoinFragment(fragment, morsel_opts, &out, &counters);
      parallel_emitted += counters.emitted;
    }
  });
  if (serial_emitted != parallel_emitted) {
    std::fprintf(stderr, "fragment join mismatch: serial=%llu parallel=%llu\n",
                 static_cast<unsigned long long>(serial_emitted),
                 static_cast<unsigned long long>(parallel_emitted));
    return 1;
  }
  records.push_back({"fragment_join/serial", serial_us});
  records.push_back({"fragment_join/morsel_8t", parallel_us});
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("fragment_join (skewed fragments, prefix method, %u cores):\n",
              cores);
  std::printf("  serial    %10.0f us\n", serial_us);
  std::printf("  morsel 8t %10.0f us  (%.2fx speedup)\n", parallel_us,
              serial_us / parallel_us);
  if (cores < 8) {
    std::printf(
        "  note: only %u hardware threads available; the 8-thread speedup "
        "is bounded by the machine, not the morsel path.\n",
        cores);
  }

  bench::WriteBenchJson(options, "kernels", records);
  return 0;
}

}  // namespace fsjoin

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--json", 0) == 0 || arg.rfind("--warmup", 0) == 0 ||
        arg.rfind("--repeat", 0) == 0) {
      return fsjoin::RunKernelComparison(argc, argv);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
