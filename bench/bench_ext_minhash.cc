// Extension (the paper's future work §VII): approximate joins via
// MinHash/LSH, compared against exact FS-Join — time vs recall across
// banding configurations. Expected shape: LSH is far cheaper at high
// thresholds with near-perfect recall, degrading gracefully as bands
// shrink.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "sim/minhash.h"
#include "sim/serial_join.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace fsjoin::bench {
namespace {

void Run() {
  PrintBanner("Extension — MinHash/LSH approximate join (paper §VII "
              "future work)",
              "LSH trades bounded recall for large speedups at high theta");

  const double theta = 0.8;
  for (Workload& w : AllWorkloads(0.5)) {
    GlobalOrder order = GlobalOrder::FromCorpus(w.corpus);
    std::vector<OrderedRecord> records = ApplyGlobalOrder(w.corpus, order);

    WallTimer timer;
    Result<FsJoinOutput> exact = FsJoin(DefaultFsConfig(theta)).Run(w.corpus);
    double exact_ms = timer.ElapsedMillis();
    if (!exact.ok()) continue;

    std::printf("\n[%s] %zu records, theta = %.2f, exact FS-Join: %.0f ms, "
                "%zu pairs\n",
                w.name.c_str(), w.corpus.NumRecords(), theta, exact_ms,
                exact->pairs.size());
    TablePrinter table({"bands x rows", "wall (ms)", "candidates", "results",
                        "recall", "predicted recall@theta"});
    for (uint32_t bands : {64u, 32u, 16u, 8u}) {
      MinHashJoinConfig config;
      config.theta = theta;
      config.num_hashes = 128;
      config.bands = bands;
      timer.Restart();
      MinHashJoinStats stats;
      Result<JoinResultSet> approx = MinHashJoin(records, config, &stats);
      double ms = timer.ElapsedMillis();
      if (!approx.ok()) continue;
      double recall =
          exact->pairs.empty()
              ? 1.0
              : static_cast<double>(approx->size()) /
                    static_cast<double>(exact->pairs.size());
      table.AddRow({StrFormat("%ux%u", bands, config.num_hashes / bands),
                    StrFormat("%.0f", ms),
                    WithThousandsSep(stats.candidate_pairs),
                    WithThousandsSep(approx->size()),
                    StrFormat("%.3f", recall),
                    StrFormat("%.3f", config.CandidateProbability(theta))});
    }
    table.Print(std::cout);
  }
  std::printf(
      "\n(every LSH result pair is exactly verified: precision is always "
      "1.0; recall is measured against exact FS-Join)\n");
}

}  // namespace
}  // namespace fsjoin::bench

int main() {
  fsjoin::bench::Run();
  return 0;
}
