// Table III: dataset statistics. Prints the statistics of our synthetic
// analogues next to the paper's real numbers so the substitution is
// auditable: the shapes to preserve are the relative record counts, the
// length distributions (min/avg with a heavy max tail) and large
// vocabularies.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace fsjoin::bench {
namespace {

void Run() {
  PrintBanner("Table III — dataset statistics (synthetic analogues)",
              "Email: few very long records; PubMed: many medium; Wiki: "
              "many short");

  TablePrinter table({"dataset", "records", "vocab", "min len", "max len",
                      "avg len", "size"});
  for (Workload& w : AllWorkloads(1.0)) {
    CorpusStats stats = ComputeStats(w.corpus);
    table.AddRow({w.name, WithThousandsSep(stats.num_records),
                  WithThousandsSep(stats.vocab_size),
                  std::to_string(stats.min_len),
                  WithThousandsSep(stats.max_len),
                  StrFormat("%.1f", stats.avg_len),
                  HumanBytes(stats.approx_bytes)});
  }
  table.Print(std::cout);

  std::printf("\npaper's real datasets (for reference):\n");
  TablePrinter paper({"dataset", "records", "size", "length profile"});
  paper.AddRow({"Enron Email", "517,401", "0.994 GB",
                "very long records, heavy tail (max ~148k tokens)"});
  paper.AddRow({"PubMed Abstract", "7,400,308", "4.390 GB",
                "avg ~80 tokens"});
  paper.AddRow({"Wiki Abstract", "4,305,022", "1.630 GB",
                "avg ~56 tokens"});
  paper.Print(std::cout);
  std::printf(
      "\n(record counts are scaled to single-machine budgets; vocabularies "
      "stay large relative to the corpus to preserve cross-pair token "
      "sharing rates — see DESIGN.md)\n");
}

}  // namespace
}  // namespace fsjoin::bench

int main() {
  fsjoin::bench::Run();
  return 0;
}
