// Extension (paper §VII future work: "other Big Data platforms, like
// Spark"): FS-Join on the Hadoop-style MR engine vs the Spark-style fused
// dataflow engine. Expected shape: identical results, but the dataflow run
// eliminates the verification job's identity-map pass and the between-job
// materializations, so it is faster and moves fewer bytes — the well-known
// Spark-over-Hadoop effect for multi-job pipelines.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "flow/fsjoin_flow.h"
#include "sim/join_result.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace fsjoin::bench {
namespace {

void Run() {
  PrintBanner("Extension — Spark-style dataflow vs Hadoop-style MR "
              "(paper §VII future work)",
              "same results; fused pipelines cut passes and "
              "materialization");

  const double theta = 0.8;
  for (Workload& w : AllWorkloads(0.5)) {
    std::printf("\n[%s] %zu records, theta = %.2f\n", w.name.c_str(),
                w.corpus.NumRecords(), theta);
    TablePrinter table({"engine", "wall (ms)", "shuffle", "materialized",
                        "results", "same pairs"});

    FsJoinConfig config = DefaultFsConfig(theta);
    WallTimer timer;
    Result<FsJoinOutput> mr_out = FsJoin(config).Run(w.corpus);
    double mr_ms = timer.ElapsedMillis();
    timer.Restart();
    Result<flow::FlowJoinOutput> flow_out =
        flow::RunFsJoinOnFlow(w.corpus, config);
    double flow_ms = timer.ElapsedMillis();
    if (!mr_out.ok() || !flow_out.ok()) {
      std::printf("FAIL\n");
      continue;
    }

    // MR materializes every job's input+output through the DFS.
    uint64_t mr_shuffle = 0, mr_materialized = 0;
    for (const mr::JobMetrics& j : mr_out->report.AllJobs()) {
      mr_shuffle += j.shuffle_bytes;
      mr_materialized += j.map_input_bytes + j.reduce_output_bytes;
    }
    uint64_t flow_shuffle = flow_out->report.ordering.shuffle_bytes +
                            flow_out->report.join.shuffle_bytes;
    uint64_t flow_materialized =
        flow_out->report.ordering.materialized_bytes +
        flow_out->report.join.materialized_bytes;

    const bool same = SamePairs(mr_out->pairs, flow_out->pairs);
    table.AddRow({"MapReduce (3 jobs)", StrFormat("%.0f", mr_ms),
                  HumanBytes(mr_shuffle), HumanBytes(mr_materialized),
                  WithThousandsSep(mr_out->pairs.size()), "-"});
    table.AddRow({"Dataflow (2 pipelines)", StrFormat("%.0f", flow_ms),
                  HumanBytes(flow_shuffle), HumanBytes(flow_materialized),
                  WithThousandsSep(flow_out->pairs.size()),
                  same ? "yes" : "NO!"});
    table.Print(std::cout);
  }
}

}  // namespace
}  // namespace fsjoin::bench

int main() {
  fsjoin::bench::Run();
  return 0;
}
