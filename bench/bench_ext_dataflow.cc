// Extension (paper §VII future work: "other Big Data platforms, like
// Spark"): the same FS-Join logical plans executed on the Hadoop-style MR
// backend vs the Spark-style fused dataflow backend, crossed with the
// overlap-kernel family (scalar reference, PR-3 word-packed, SIMD
// container pipelines). Expected shape: identical results across every
// cell — checked by ResultDigest — with the fused backend cutting passes
// and materialization and the SIMD kernels cutting filtering-phase time.
//
// Flags: --warmup=N --repeat=N --json[=PATH]

#include <cstdio>
#include <iostream>
#include <optional>

#include "bench_util.h"
#include "check/invariants.h"
#include "exec/exec_config.h"
#include "mr/runner.h"
#include "mr/worker.h"
#include "net/worker.h"
#include "sim/join_result.h"
#include "util/simd.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace fsjoin::bench {
namespace {

void Run(const BenchOptions& options) {
  PrintBanner("Extension — Spark-style dataflow vs Hadoop-style MR "
              "(paper §VII future work), crossed with overlap kernels",
              "same plans, same results; the fused backend cuts passes and "
              "materialization, the SIMD kernels cut filtering time");
  std::printf("simd: isa=%s\n", SimdIsaName(DetectedSimdIsa()));

  const double theta = 0.8;
  constexpr exec::KernelMode kKernels[] = {exec::KernelMode::kScalar,
                                           exec::KernelMode::kPacked,
                                           exec::KernelMode::kSimd};
  std::vector<BenchRecord> records;
  for (Workload& w : AllWorkloads(0.5)) {
    std::printf("\n[%s] %zu records, theta = %.2f\n", w.name.c_str(),
                w.corpus.NumRecords(), theta);
    TablePrinter table({"backend", "kernel", "wall (ms)", "filter (ms)",
                        "shuffle", "results", "digest"});

    // Digest of the scalar MR run — every other cell must reproduce it
    // byte for byte (the bounded kernels change *when* a merge stops, never
    // what survives).
    std::optional<uint32_t> reference_digest;
    for (exec::BackendKind kind :
         {exec::BackendKind::kMapReduce, exec::BackendKind::kFusedFlow}) {
      for (exec::KernelMode kernel : kKernels) {
        FsJoinConfig config = DefaultFsConfig(theta);
        config.exec.backend = kind;
        config.exec.kernel = kernel;
        std::optional<Result<FsJoinOutput>> result;
        // Track the filtering job's own wall time as a min over repeats
        // too — the per-job split is noisier than end-to-end wall on a
        // loaded machine.
        uint64_t min_filter_micros = ~uint64_t{0};
        double wall_micros = MinWallMicros(options, [&] {
          result.emplace(FsJoin(config).Run(w.corpus));
          if (result->ok()) {
            const uint64_t f =
                (*result)->report.filtering_job.total_wall_micros;
            if (f > 0 && f < min_filter_micros) min_filter_micros = f;
          }
        });
        Result<FsJoinOutput>& out = *result;
        if (!out.ok()) {
          std::printf("FAIL: %s\n", out.status().ToString().c_str());
          continue;
        }

        uint64_t shuffle = 0;
        if (kind == exec::BackendKind::kMapReduce) {
          for (const mr::JobMetrics& j : out->report.AllJobs()) {
            shuffle += j.shuffle_bytes;
          }
        } else {
          for (const flow::Pipeline::Metrics& p :
               out->report.flow_pipelines) {
            shuffle += p.shuffle_bytes;
          }
        }

        const uint32_t digest = check::ResultDigest(out->pairs);
        if (!reference_digest) reference_digest = digest;
        const bool same = digest == *reference_digest;
        // The fused backend accounts wall time per pipeline, not per job,
        // so the per-job filter column only applies to MR.
        const uint64_t filter_micros =
            min_filter_micros == ~uint64_t{0} ? 0 : min_filter_micros;
        table.AddRow({exec::BackendKindName(kind),
                      out->report.filtering_job.join_kernel,
                      StrFormat("%.0f", wall_micros / 1000.0),
                      filter_micros == 0
                          ? std::string("-")
                          : StrFormat("%.0f",
                                      static_cast<double>(filter_micros) /
                                          1000.0),
                      HumanBytes(shuffle),
                      WithThousandsSep(out->pairs.size()),
                      same ? StrFormat("%08x", digest)
                           : StrFormat("%08x MISMATCH!", digest)});

        BenchRecord record;
        record.name = StrFormat("%s/%s/%s", w.name.c_str(),
                                exec::BackendKindName(kind),
                                exec::KernelModeName(kernel));
        record.wall_micros = wall_micros;
        record.shuffle_bytes = shuffle;
        records.push_back(std::move(record));
      }
    }
    table.Print(std::cout);
  }
  WriteBenchJson(options, "ext_dataflow", records);

  // Runner comparison: the same plans on the inline, thread-pool, and
  // forked-subprocess task runners. Scheduling and process overhead is the
  // quantity under test, so this section uses the auto kernel and records
  // into its own JSON (BENCH_runtime.json) to join the perf trajectory.
  PrintBanner("Extension — task-runner overhead: inline vs thread-pool vs "
              "forked subprocess",
              "same plans, same digests; the delta is pure scheduling, "
              "fork/exec, and run-file interchange cost");
  constexpr mr::RunnerKind kRunnerMenu[] = {mr::RunnerKind::kInline,
                                            mr::RunnerKind::kThreads,
                                            mr::RunnerKind::kSubprocess};
  std::vector<BenchRecord> runtime_records;
  for (Workload& w : AllWorkloads(0.25)) {
    std::printf("\n[%s] %zu records, theta = %.2f\n", w.name.c_str(),
                w.corpus.NumRecords(), theta);
    TablePrinter table(
        {"backend", "runner", "wall (ms)", "shuffle", "results", "digest"});
    std::optional<uint32_t> reference_digest;
    for (exec::BackendKind kind :
         {exec::BackendKind::kMapReduce, exec::BackendKind::kFusedFlow}) {
      for (mr::RunnerKind runner : kRunnerMenu) {
        FsJoinConfig config = DefaultFsConfig(theta);
        config.exec.backend = kind;
        config.exec.runner = runner;
        std::optional<Result<FsJoinOutput>> result;
        double wall_micros = MinWallMicros(options, [&] {
          result.emplace(FsJoin(config).Run(w.corpus));
        });
        Result<FsJoinOutput>& out = *result;
        if (!out.ok()) {
          std::printf("FAIL: %s\n", out.status().ToString().c_str());
          continue;
        }
        uint64_t shuffle = 0;
        if (kind == exec::BackendKind::kMapReduce) {
          for (const mr::JobMetrics& j : out->report.AllJobs()) {
            shuffle += j.shuffle_bytes;
          }
        } else {
          for (const flow::Pipeline::Metrics& p :
               out->report.flow_pipelines) {
            shuffle += p.shuffle_bytes;
          }
        }
        const uint32_t digest = check::ResultDigest(out->pairs);
        if (!reference_digest) reference_digest = digest;
        const bool same = digest == *reference_digest;
        table.AddRow({exec::BackendKindName(kind), mr::RunnerKindName(runner),
                      StrFormat("%.0f", wall_micros / 1000.0),
                      HumanBytes(shuffle),
                      WithThousandsSep(out->pairs.size()),
                      same ? StrFormat("%08x", digest)
                           : StrFormat("%08x MISMATCH!", digest)});

        BenchRecord record;
        record.name = StrFormat("%s/%s/%s", w.name.c_str(),
                                exec::BackendKindName(kind),
                                mr::RunnerKindName(runner));
        record.wall_micros = wall_micros;
        record.shuffle_bytes = shuffle;
        runtime_records.push_back(std::move(record));
      }
    }
    table.Print(std::cout);
  }
  BenchOptions runtime_options = options;
  if (!options.json_path.empty()) {
    runtime_options.json_path = "BENCH_runtime.json";
  }
  WriteBenchJson(runtime_options, "runtime", runtime_records);

  // Cluster scaling: the same plans on the socket-RPC cluster runner with
  // 1, 2 and 4 spawned loopback workers (DESIGN.md §5j). The quantity
  // under test is the networked runtime's overhead and scaling — RPC
  // framing, input streaming, and the worker-to-worker network shuffle —
  // against the inline runner's zero-cost baseline. Records into its own
  // JSON (BENCH_cluster.json).
  PrintBanner("Extension — cluster runtime scaling: inline vs 1/2/4 "
              "loopback socket workers",
              "same plans, same digests; the delta is RPC dispatch, "
              "stream framing, and network-shuffle cost");
  std::vector<BenchRecord> cluster_records;
  for (Workload& w : AllWorkloads(0.25)) {
    std::printf("\n[%s] %zu records, theta = %.2f\n", w.name.c_str(),
                w.corpus.NumRecords(), theta);
    TablePrinter table(
        {"runner", "workers", "wall (ms)", "shuffle", "results", "digest"});
    std::optional<uint32_t> reference_digest;
    for (int workers : {0, 1, 2, 4}) {
      FsJoinConfig config = DefaultFsConfig(theta);
      config.exec.backend = exec::BackendKind::kMapReduce;
      if (workers == 0) {
        config.exec.runner = mr::RunnerKind::kInline;
      } else {
        config.exec.runner = mr::RunnerKind::kCluster;
        config.exec.spawn_local_workers = workers;
      }
      std::optional<Result<FsJoinOutput>> result;
      double wall_micros = MinWallMicros(options, [&] {
        result.emplace(FsJoin(config).Run(w.corpus));
      });
      Result<FsJoinOutput>& out = *result;
      if (!out.ok()) {
        std::printf("FAIL: %s\n", out.status().ToString().c_str());
        continue;
      }
      uint64_t shuffle = 0;
      for (const mr::JobMetrics& j : out->report.AllJobs()) {
        shuffle += j.shuffle_bytes;
      }
      const uint32_t digest = check::ResultDigest(out->pairs);
      if (!reference_digest) reference_digest = digest;
      const bool same = digest == *reference_digest;
      table.AddRow({workers == 0 ? "inline" : "cluster",
                    workers == 0 ? "-" : StrFormat("%d", workers),
                    StrFormat("%.0f", wall_micros / 1000.0),
                    HumanBytes(shuffle), WithThousandsSep(out->pairs.size()),
                    same ? StrFormat("%08x", digest)
                         : StrFormat("%08x MISMATCH!", digest)});

      BenchRecord record;
      record.name =
          workers == 0
              ? StrFormat("%s/inline", w.name.c_str())
              : StrFormat("%s/cluster%d", w.name.c_str(), workers);
      record.wall_micros = wall_micros;
      record.shuffle_bytes = shuffle;
      cluster_records.push_back(std::move(record));
    }
    table.Print(std::cout);
  }
  BenchOptions cluster_options = options;
  if (!options.json_path.empty()) {
    cluster_options.json_path = "BENCH_cluster.json";
  }
  WriteBenchJson(cluster_options, "cluster", cluster_records);

  // R-S two-collection joins: the same corpus split at three |R|:|S|
  // ratios, run on both backends. The quantity under test is the
  // side-tagged fragment join's cost shape — the probe x build pair space
  // shrinks from n^2/2 toward n_r * n_s, so the skewed ratios should be
  // cheaper than 1:1 at equal total input. Digests must agree across
  // backends per ratio. Records into its own JSON (BENCH_rs.json).
  PrintBanner("Extension — R-S two-collection joins: |R|:|S| ratio x "
              "backend",
              "same merged corpus, boundary moved; probe x build pair "
              "space and both backends' wall time per ratio");
  std::vector<BenchRecord> rs_records;
  for (Workload& w : AllWorkloads(0.25)) {
    const uint64_t n = w.corpus.NumRecords();
    struct Ratio {
      const char* name;
      RecordId boundary;
    };
    const Ratio kRatios[] = {
        {"1:1", static_cast<RecordId>(n / 2)},
        {"1:10", static_cast<RecordId>(n / 11)},
        {"10:1", static_cast<RecordId>(n - n / 11)},
    };
    std::printf("\n[%s] %zu records, theta = %.2f\n", w.name.c_str(),
                w.corpus.NumRecords(), theta);
    TablePrinter table({"ratio", "backend", "wall (ms)", "shuffle",
                        "candidates", "results", "digest"});
    for (const Ratio& ratio : kRatios) {
      std::optional<uint32_t> reference_digest;  // per ratio
      for (exec::BackendKind kind :
           {exec::BackendKind::kMapReduce, exec::BackendKind::kFusedFlow}) {
        FsJoinConfig config = DefaultFsConfig(theta);
        config.exec.backend = kind;
        config.rs_boundary = ratio.boundary;
        std::optional<Result<FsJoinOutput>> result;
        double wall_micros = MinWallMicros(options, [&] {
          result.emplace(FsJoin(config).Run(w.corpus));
        });
        Result<FsJoinOutput>& out = *result;
        if (!out.ok()) {
          std::printf("FAIL: %s\n", out.status().ToString().c_str());
          continue;
        }
        uint64_t shuffle = 0;
        if (kind == exec::BackendKind::kMapReduce) {
          for (const mr::JobMetrics& j : out->report.AllJobs()) {
            shuffle += j.shuffle_bytes;
          }
        } else {
          for (const flow::Pipeline::Metrics& p :
               out->report.flow_pipelines) {
            shuffle += p.shuffle_bytes;
          }
        }
        const uint32_t digest = check::ResultDigest(out->pairs);
        if (!reference_digest) reference_digest = digest;
        const bool same = digest == *reference_digest;
        table.AddRow({ratio.name, exec::BackendKindName(kind),
                      StrFormat("%.0f", wall_micros / 1000.0),
                      HumanBytes(shuffle),
                      WithThousandsSep(out->report.candidate_pairs),
                      WithThousandsSep(out->pairs.size()),
                      same ? StrFormat("%08x", digest)
                           : StrFormat("%08x MISMATCH!", digest)});

        BenchRecord record;
        record.name = StrFormat("%s/rs%s/%s", w.name.c_str(), ratio.name,
                                exec::BackendKindName(kind));
        record.wall_micros = wall_micros;
        record.shuffle_bytes = shuffle;
        rs_records.push_back(std::move(record));
      }
    }
    table.Print(std::cout);
  }
  BenchOptions rs_options = options;
  if (!options.json_path.empty()) {
    rs_options.json_path = "BENCH_rs.json";
  }
  WriteBenchJson(rs_options, "rs", rs_records);
}

}  // namespace
}  // namespace fsjoin::bench

int main(int argc, char** argv) {
  // Subprocess-runner children re-exec this binary in --worker-task mode,
  // and the cluster runner spawns it in --worker-serve mode.
  if (const int code = fsjoin::mr::WorkerTaskMainIfRequested(argc, argv);
      code >= 0) {
    return code;
  }
  if (const int code = fsjoin::net::WorkerServeMainIfRequested(argc, argv);
      code >= 0) {
    return code;
  }
  fsjoin::bench::Run(
      fsjoin::bench::ParseBenchOptions("ext_dataflow", argc, argv));
  return 0;
}
