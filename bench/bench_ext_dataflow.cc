// Extension (paper §VII future work: "other Big Data platforms, like
// Spark"): the same FS-Join logical plans executed on the Hadoop-style MR
// backend vs the Spark-style fused dataflow backend. Expected shape:
// identical results, but the dataflow run eliminates the verification
// stage's identity-map pass and the between-job materializations, so it is
// faster and moves fewer bytes — the well-known Spark-over-Hadoop effect
// for multi-job pipelines.
//
// Flags: --warmup=N --repeat=N --json[=PATH]

#include <cstdio>
#include <iostream>
#include <optional>

#include "bench_util.h"
#include "exec/exec_config.h"
#include "sim/join_result.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace fsjoin::bench {
namespace {

void Run(const BenchOptions& options) {
  PrintBanner("Extension — Spark-style dataflow vs Hadoop-style MR "
              "(paper §VII future work)",
              "same plans, same results; the fused backend cuts passes and "
              "materialization");

  const double theta = 0.8;
  std::vector<BenchRecord> records;
  for (Workload& w : AllWorkloads(0.5)) {
    std::printf("\n[%s] %zu records, theta = %.2f\n", w.name.c_str(),
                w.corpus.NumRecords(), theta);
    TablePrinter table({"backend", "wall (ms)", "shuffle", "materialized",
                        "results", "same pairs"});

    JoinResultSet mr_pairs;
    bool have_mr_pairs = false;
    for (exec::BackendKind kind :
         {exec::BackendKind::kMapReduce, exec::BackendKind::kFusedFlow}) {
      FsJoinConfig config = DefaultFsConfig(theta);
      config.exec.backend = kind;
      std::optional<Result<FsJoinOutput>> result;
      double wall_micros = MinWallMicros(
          options, [&] { result.emplace(FsJoin(config).Run(w.corpus)); });
      Result<FsJoinOutput>& out = *result;
      if (!out.ok()) {
        std::printf("FAIL: %s\n", out.status().ToString().c_str());
        continue;
      }

      uint64_t shuffle = 0, materialized = 0;
      if (kind == exec::BackendKind::kMapReduce) {
        // MR materializes every job's input+output through the DFS.
        for (const mr::JobMetrics& j : out->report.AllJobs()) {
          shuffle += j.shuffle_bytes;
          materialized += j.map_input_bytes + j.reduce_output_bytes;
        }
      } else {
        for (const flow::Pipeline::Metrics& p : out->report.flow_pipelines) {
          shuffle += p.shuffle_bytes;
          materialized += p.materialized_bytes;
        }
      }

      const bool same = have_mr_pairs && SamePairs(mr_pairs, out->pairs);
      if (kind == exec::BackendKind::kMapReduce) {
        mr_pairs = out->pairs;
        have_mr_pairs = true;
      }
      table.AddRow(
          {kind == exec::BackendKind::kMapReduce ? "MapReduce (3 jobs)"
                                                 : "Dataflow (2 pipelines)",
           StrFormat("%.0f", wall_micros / 1000.0), HumanBytes(shuffle),
           HumanBytes(materialized), WithThousandsSep(out->pairs.size()),
           kind == exec::BackendKind::kMapReduce ? "-"
                                                 : (same ? "yes" : "NO!")});

      BenchRecord record;
      record.name = w.name + "/" + exec::BackendKindName(kind);
      record.wall_micros = wall_micros;
      record.shuffle_bytes = shuffle;
      records.push_back(std::move(record));
    }
    table.Print(std::cout);
  }
  WriteBenchJson(options, "ext_dataflow", records);
}

}  // namespace
}  // namespace fsjoin::bench

int main(int argc, char** argv) {
  fsjoin::bench::Run(
      fsjoin::bench::ParseBenchOptions("ext_dataflow", argc, argv));
  return 0;
}
