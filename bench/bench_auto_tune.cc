// Headline bench for cost-based auto-tuning (DESIGN.md §5i): --auto vs a
// spread of hand-tuned configurations on three corpus shapes — zipfian
// (skewed token frequencies, the shape vertical pivots care about),
// uniform (no skew: the degenerate case where tuning must not hurt), and
// clustered (near-duplicate heavy with a wide length spread, the shape
// horizontal splitting cares about).
//
// The claim under test: one flag lands within ~10% of the best hand-tuned
// configuration on every shape, and beats the worst hand configuration by
// >= 1.5x on at least one — while producing byte-identical results
// (ResultDigest) to every hand configuration. Rows land in
// BENCH_auto.json as <shape>/hand/<cfg> and <shape>/auto.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "check/invariants.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace fsjoin::bench {
namespace {

struct Shape {
  std::string name;
  Corpus corpus;
};

std::vector<Shape> MakeShapes() {
  const double scale = BenchScale();
  std::vector<Shape> shapes;
  {
    SyntheticCorpusConfig cfg;
    cfg.name = "zipf";
    cfg.num_records = static_cast<uint64_t>(4000 * scale);
    cfg.vocab_size = 20000;
    cfg.zipf_skew = 1.1;  // heavy head -> skewed fragments under even-tf
    cfg.avg_len = 30;
    cfg.len_sigma = 0.5;
    cfg.seed = 71;
    shapes.push_back({cfg.name, GenerateCorpus(cfg)});
  }
  {
    SyntheticCorpusConfig cfg;
    cfg.name = "uniform";
    cfg.num_records = static_cast<uint64_t>(4000 * scale);
    cfg.vocab_size = 20000;
    cfg.zipf_skew = 0.0;  // flat token popularity, no fragment skew
    cfg.avg_len = 25;
    cfg.len_sigma = 0.3;
    cfg.seed = 72;
    shapes.push_back({cfg.name, GenerateCorpus(cfg)});
  }
  {
    SyntheticCorpusConfig cfg;
    cfg.name = "clustered";
    cfg.num_records = static_cast<uint64_t>(3000 * scale);
    cfg.vocab_size = 8000;
    cfg.zipf_skew = 0.9;
    cfg.avg_len = 45;
    cfg.len_sigma = 1.0;  // wide length spread -> many length windows
    cfg.near_duplicate_fraction = 0.5;
    cfg.mutation_rate = 0.05;
    cfg.seed = 73;
    shapes.push_back({cfg.name, GenerateCorpus(cfg)});
  }
  return shapes;
}

struct HandConfig {
  std::string name;
  FsJoinConfig config;
};

// Hand-tuned spread, best to worst: the paper-default prefix/even-tf/30
// is what an expert would pick; the tail (loop joins, the scalar kernel,
// random pivots, too few fragments) is what a first-time user gets wrong.
std::vector<HandConfig> MakeHandConfigs(double theta) {
  std::vector<HandConfig> configs;
  auto base = [theta] { return DefaultFsConfig(theta); };
  {
    HandConfig h{"prefix_evtf_30", base()};
    configs.push_back(std::move(h));
  }
  {
    HandConfig h{"prefix_evtf_30_h2", base()};
    h.config.num_horizontal_partitions = 2;
    configs.push_back(std::move(h));
  }
  {
    HandConfig h{"prefix_evtf_8", base()};
    h.config.num_vertical_partitions = 8;
    configs.push_back(std::move(h));
  }
  {
    HandConfig h{"index_evtf_30", base()};
    h.config.join_method = JoinMethod::kIndex;
    configs.push_back(std::move(h));
  }
  {
    HandConfig h{"prefix_random_30", base()};
    h.config.pivot_strategy = PivotStrategy::kRandom;
    configs.push_back(std::move(h));
  }
  {
    HandConfig h{"prefix_evint_30_scalar", base()};
    h.config.pivot_strategy = PivotStrategy::kEvenInterval;
    h.config.exec.kernel = exec::KernelMode::kScalar;
    configs.push_back(std::move(h));
  }
  {
    HandConfig h{"loop_evtf_8_scalar", base()};
    h.config.join_method = JoinMethod::kLoop;
    h.config.num_vertical_partitions = 8;
    h.config.exec.kernel = exec::KernelMode::kScalar;
    configs.push_back(std::move(h));
  }
  return configs;
}

void Run(int argc, char** argv) {
  BenchOptions options = ParseBenchOptions("auto", argc, argv);
  PrintBanner("Auto-tuning — --auto vs hand-tuned configurations",
              "one flag lands near the best hand-tuned config on every "
              "corpus shape, byte-identically");

  const double theta = 0.8;
  std::vector<BenchRecord> records;
  bool any_big_win = false;
  bool all_within = true;

  for (const Shape& shape : MakeShapes()) {
    std::printf("\n[%s] %zu records, theta = %.1f\n", shape.name.c_str(),
                shape.corpus.NumRecords(), theta);
    TablePrinter table({"config", "filter wall (ms)", "vs best hand",
                        "vs auto"});

    uint32_t digest = 0;
    bool have_digest = false;
    double best_hand = 0.0, worst_hand = 0.0;
    std::string best_name;
    struct Row {
      std::string name;
      double wall_ms;
    };
    std::vector<Row> rows;

    FsJoinOutput keep;  // last measured output (for the auto report lines)
    auto measure = [&](const std::string& label, const FsJoinConfig& config,
                       const FsJoinReport** last_report) -> double {
      const double us = MinWallMicros(options, [&] {
        Result<FsJoinOutput> out = FsJoin(config).Run(shape.corpus);
        if (!out.ok()) {
          std::fprintf(stderr, "FAIL %s: %s\n", label.c_str(),
                       out.status().ToString().c_str());
          std::exit(1);
        }
        const uint32_t d = check::ResultDigest(out->pairs);
        if (!have_digest) {
          digest = d;
          have_digest = true;
        } else if (d != digest) {
          std::fprintf(stderr,
                       "DIGEST MISMATCH on %s/%s: %08x != %08x — the tuner "
                       "changed the result set\n",
                       shape.name.c_str(), label.c_str(), d, digest);
          std::exit(1);
        }
        keep = std::move(*out);
      });
      if (last_report) *last_report = &keep.report;
      return us;
    };

    for (const HandConfig& hand : MakeHandConfigs(theta)) {
      const double us = measure(hand.name, hand.config, nullptr);
      const double ms = us / 1000.0;
      rows.push_back({"hand/" + hand.name, ms});
      records.push_back({shape.name + "/hand/" + hand.name, us});
      if (best_hand == 0.0 || ms < best_hand) {
        best_hand = ms;
        best_name = hand.name;
      }
      if (ms > worst_hand) worst_hand = ms;
    }

    FsJoinConfig auto_config = DefaultFsConfig(theta);
    auto_config.exec.auto_tune = true;
    const FsJoinReport* auto_report = nullptr;
    const double auto_us = measure("auto", auto_config, &auto_report);
    const double auto_ms = auto_us / 1000.0;
    rows.push_back({"auto", auto_ms});
    records.push_back({shape.name + "/auto", auto_us});

    for (const Row& row : rows) {
      table.AddRow({row.name, StrFormat("%.0f", row.wall_ms),
                    StrFormat("%.2fx", row.wall_ms / best_hand),
                    StrFormat("%.2fx", row.wall_ms / auto_ms)});
    }
    table.Print(std::cout);
    std::printf("  best hand: %s (%.0f ms); auto/best = %.2f, "
                "worst/auto = %.2f\n",
                best_name.c_str(), best_hand, auto_ms / best_hand,
                worst_hand / auto_ms);
    if (auto_report && auto_report->tuning.enabled) {
      for (const std::string& line : auto_report->tuning.lines) {
        std::printf("  auto: %s\n", line.c_str());
      }
    }
    if (auto_ms > best_hand * 1.10) all_within = false;
    if (worst_hand >= auto_ms * 1.5) any_big_win = true;
  }

  std::printf("\nacceptance: auto within 10%% of best hand on all shapes: "
              "%s; >=1.5x over worst hand on some shape: %s\n",
              all_within ? "yes" : "NO", any_big_win ? "yes" : "NO");
  WriteBenchJson(options, "auto", records);
}

}  // namespace
}  // namespace fsjoin::bench

int main(int argc, char** argv) {
  fsjoin::bench::Run(argc, argv);
  return 0;
}
