// Table IV: pruning power of the filters — the number of records the
// filter job outputs under StrL alone, StrL+SegL, StrL+SegI, StrL+SegD,
// StrL+Prefix and All. Expected shapes: SegI/SegD prune by far the most
// after StrL; combining everything prunes the most.
//
// Note (DESIGN.md): in the single-fragment (reducer-local) forms the SegI
// and SegD conditions are algebraically equivalent, so their rows match by
// construction — the paper's small SegI/SegD gap comes from evaluating the
// lemmas with different bounds on the unseen fragments.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace fsjoin::bench {
namespace {

struct FilterRow {
  const char* label;
  bool segl, segi, segd;
  JoinMethod method;
  bool aggressive = false;
};

void Run() {
  PrintBanner("Table IV — filtering power (filter job output records)",
              "SegI/SegD prune >90% on top of StrL; 'All' prunes the most");

  const FilterRow rows[] = {
      {"StrL", false, false, false, JoinMethod::kIndex},
      {"StrL + SegL", true, false, false, JoinMethod::kIndex},
      {"StrL + SegI", false, true, false, JoinMethod::kIndex},
      {"StrL + SegD", false, false, true, JoinMethod::kIndex},
      {"StrL + Prefix", false, false, false, JoinMethod::kPrefix},
      {"All", true, true, true, JoinMethod::kPrefix},
      // The paper's aggressive per-segment θ-prefix (lossy; DESIGN.md):
      {"StrL + Prefix(aggr)", false, false, false, JoinMethod::kPrefix, true},
      {"All(aggr)", true, true, true, JoinMethod::kPrefix, true},
  };
  // The paper uses Email(10%), Wiki(1%), PubMed(1%); unfiltered outputs are
  // quadratic, so measure on reduced samples too.
  Workload workloads[] = {MakeWorkload("email", 0.4),
                          MakeWorkload("wiki", 0.08),
                          MakeWorkload("pubmed", 0.08)};

  TablePrinter table({"filter", "email", "wiki", "pubmed"});
  std::vector<std::vector<std::string>> cells(
      std::size(rows), std::vector<std::string>{});
  for (Workload& w : workloads) {
    std::printf("[%s] %zu records\n", w.name.c_str(), w.corpus.NumRecords());
    for (size_t r = 0; r < std::size(rows); ++r) {
      FsJoinConfig config = DefaultFsConfig(0.8);
      config.use_segment_length_filter = rows[r].segl;
      config.use_segment_intersection_filter = rows[r].segi;
      config.use_segment_difference_filter = rows[r].segd;
      config.join_method = rows[r].method;
      config.aggressive_segment_prefix = rows[r].aggressive;
      Result<FsJoinOutput> fs = FsJoin(config).Run(w.corpus);
      cells[r].push_back(
          fs.ok() ? WithThousandsSep(fs->report.filters.emitted) : "FAIL");
    }
  }
  for (size_t r = 0; r < std::size(rows); ++r) {
    table.AddRow(
        {rows[r].label, cells[r][0], cells[r][1], cells[r][2]});
  }
  std::printf("\n");
  table.Print(std::cout);
  std::printf(
      "\n(values are the filtering job's emitted partial-overlap records; "
      "the result set is identical in every exact row — the (aggr) rows use "
      "the paper's lossy per-segment prefix, see DESIGN.md)\n");
}

}  // namespace
}  // namespace fsjoin::bench

int main() {
  fsjoin::bench::Run();
  return 0;
}
