// Table I: framework comparison — the qualitative table quantified. For
// each algorithm we measure the properties the paper tabulates: record
// duplication in the signature/partition job, reduce-side load balance,
// number of MapReduce jobs, and total shuffle volume.

#include <cstdio>
#include <iostream>

#include "baselines/massjoin.h"
#include "baselines/vernica_join.h"
#include "baselines/vsmart_join.h"
#include "bench_util.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace fsjoin::bench {
namespace {

void AddRow(TablePrinter* table, const std::string& name, size_t jobs,
            double duplication, double skew, uint64_t shuffle_bytes,
            uint64_t results) {
  table->AddRow({name, std::to_string(jobs), StrFormat("%.2fx", duplication),
                 StrFormat("%.2f", skew), HumanBytes(shuffle_bytes),
                 WithThousandsSep(results)});
}

double MaxReduceSkew(const std::vector<mr::JobMetrics>& jobs,
                     const std::string& from_stage) {
  double skew = 1.0;
  bool seen = from_stage.empty();
  for (const mr::JobMetrics& j : jobs) {
    if (!seen && j.job_name != from_stage) continue;
    seen = true;
    skew = std::max(skew, j.ReduceSkew());
  }
  return skew;
}

uint64_t TotalShuffle(const std::vector<mr::JobMetrics>& jobs) {
  uint64_t total = 0;
  for (const mr::JobMetrics& j : jobs) total += j.shuffle_bytes;
  return total;
}

void Run() {
  PrintBanner("Table I — framework comparison, quantified",
              "FS-Join: no signature duplication + load-balance guarantee; "
              "the baselines duplicate records and skew");

  const double theta = 0.8;
  Workload w = MakeWorkload("pubmed", 0.25);
  std::printf("workload: %zu pubmed-like records, theta = %.2f\n\n",
              w.corpus.NumRecords(), theta);

  TablePrinter table({"algorithm", "MR jobs", "record duplication",
                      "max reduce skew", "total shuffle", "results"});

  Result<FsJoinOutput> fs = FsJoin(DefaultFsConfig(theta)).Run(w.corpus);
  if (fs.ok()) {
    // FS-Join's map output is segments: record *bytes* are never copied,
    // so duplication is map-output bytes over input bytes.
    double dup =
        static_cast<double>(fs->report.filtering_job.map_output_bytes) /
        static_cast<double>(fs->report.filtering_job.map_input_bytes);
    AddRow(&table, "FS-Join", 3, dup,
           MaxReduceSkew(fs->report.AllJobs(), "filtering"),
           TotalShuffle(fs->report.JoinJobs()), fs->report.result_pairs);
  }

  auto add_baseline = [&](Result<BaselineOutput> r, size_t input_records) {
    if (!r.ok()) return;
    const BaselineReport& rep = r->report;
    const mr::JobMetrics* sig = rep.SignatureJob();
    if (sig == nullptr) return;
    double dup = static_cast<double>(sig->map_output_bytes) /
                 static_cast<double>(sig->map_input_bytes);
    (void)input_records;
    AddRow(&table, rep.algorithm, rep.jobs.size(), dup,
           MaxReduceSkew(rep.jobs, rep.signature_stage),
           TotalShuffle(rep.jobs), rep.result_pairs);
  };
  add_baseline(RunVernicaJoin(w.corpus, DefaultBaselineConfig(theta)),
               w.corpus.NumRecords());
  MassJoinConfig mj;
  static_cast<BaselineConfig&>(mj) = DefaultBaselineConfig(theta);
  add_baseline(RunMassJoin(w.corpus, mj), w.corpus.NumRecords());
  add_baseline(RunVSmartJoin(w.corpus, DefaultBaselineConfig(theta)),
               w.corpus.NumRecords());

  table.Print(std::cout);
  std::printf(
      "\n(duplication = signature-job map-output bytes / input bytes; "
      "FS-Join emits each token exactly once per horizontal group)\n");
}

}  // namespace
}  // namespace fsjoin::bench

int main() {
  fsjoin::bench::Run();
  return 0;
}
