// Figure 9: FS-Join scalability with the number of worker nodes (5, 10,
// 15), reduce tasks = 3x nodes as in the paper. Expected shape: a 35-48%
// drop from 5 to 10 nodes and a smaller 10-20% drop from 10 to 15 (shuffle
// growth and task-grain limits eat the gains).

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace fsjoin::bench {
namespace {

void Run() {
  PrintBanner("Figure 9 — scalability with cluster size (5/10/15 nodes)",
              "time drops 35-48% from 5 to 10 nodes, 10-20% from 10 to 15");

  const uint32_t node_counts[] = {5, 10, 15};
  for (Workload& w : AllWorkloads(1.0)) {
    std::printf("\n[%s] %zu records, theta = 0.8\n", w.name.c_str(),
                w.corpus.NumRecords());
    TablePrinter table(
        {"nodes", "reduce tasks", "sim (ms)", "drop vs previous"});
    double prev = 0.0;
    for (uint32_t nodes : node_counts) {
      FsJoinConfig config = DefaultFsConfig(0.8);
      config.exec.num_reduce_tasks = nodes * 3;  // paper: 3 reducers per node
      Result<FsJoinOutput> fs = FsJoin(config).Run(w.corpus);
      if (!fs.ok()) {
        std::printf("FAIL: %s\n", fs.status().ToString().c_str());
        continue;
      }
      double ms = SimulatedMs(fs->report.JoinJobs(), nodes);
      table.AddRow({std::to_string(nodes), std::to_string(nodes * 3),
                    StrFormat("%.0f", ms),
                    prev > 0.0
                        ? StrFormat("%.0f%%", 100.0 * (prev - ms) / prev)
                        : "-"});
      prev = ms;
    }
    table.Print(std::cout);
  }
}

}  // namespace
}  // namespace fsjoin::bench

int main() {
  fsjoin::bench::Run();
  return 0;
}
