// Standalone cluster worker: listens on --listen host:port, waits for a
// coordinator (ClusterTaskRunner dial mode, `--runner cluster --workers
// host:port,...`) to connect, then executes dispatched tasks and serves its
// retained shuffle partitions until the coordinator sends kShutdown.
//
// Usage:
//   fsjoin_worker --listen 127.0.0.1:9001 [--timeout-ms 10000]
//
// The process serves exactly one coordinator session and then exits, so a
// driver script can restart workers between runs without pid bookkeeping.

#include <cstdio>
#include <cstring>
#include <string>

#include "core/jobs.h"
#include "net/worker.h"
#include "util/endpoint.h"
#include "util/status.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --listen <host:port> [--timeout-ms <ms>]\n"
               "Runs one fsjoin cluster worker session (DESIGN.md 5j):\n"
               "accepts a coordinator connection, executes dispatched tasks,\n"
               "serves retained shuffle partitions, exits on shutdown.\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fsjoin::net::WorkerServeOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--listen") == 0 && i + 1 < argc) {
      options.listen = argv[++i];
    } else if (std::strcmp(arg, "--timeout-ms") == 0 && i + 1 < argc) {
      options.timeout_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return Usage(argv[0]);
    }
  }
  if (options.listen.empty()) {
    std::fprintf(stderr, "--listen is required\n");
    return Usage(argv[0]);
  }
  // Pull the core jobs translation unit (and its static "core.ordering"
  // task-factory registration) into this binary with a real call: a static
  // archive only links objects whose symbols are referenced, an unused
  // address-of constant gets folded away before the linker sees it, and
  // the worker reaches task factories purely by name over the wire.
  (void)fsjoin::MakeOrderingJobConfig(1, 1);
  // Validate up front for a friendly message; ServeWorker re-parses.
  auto ep = fsjoin::ParseEndpoint(options.listen);
  if (!ep.ok()) {
    std::fprintf(stderr, "%s\n", ep.status().ToString().c_str());
    return 2;
  }
  fsjoin::Status st = fsjoin::net::ServeWorker(options);
  if (!st.ok()) {
    std::fprintf(stderr, "fsjoin_worker: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
