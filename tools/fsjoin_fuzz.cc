// fsjoin_fuzz — differential fuzz driver for the FS-Join repository.
//
// For every seed it builds an adversarial scenario corpus, draws a join
// shape (self join, or an R-S two-collection join with |R|:|S| ratio in
// {1:1, 1:10, 10:1, |S|=0} — cross-collection near-threshold pairs planted
// across the boundary), computes the serial brute-force oracle, samples a
// lattice of configurations across all four algorithms (FS-Join, Vernica,
// V-Smart-Join, MassJoin), runs each and checks every invariant (result ==
// oracle, partial-overlap conservation, no same-side pair in R-S mode,
// filter-counter balance, JobMetrics accounting, cross-config digest
// identity). Failures are delta-debugged into a minimal repro printed as a
// ready-to-paste C++ test case; in R-S mode the minimizer shrinks both
// collections, recomputing the boundary as records fall away.
//
// All output is deterministic: same flags — byte-identical stdout and the
// same exit code (0 clean, 1 failures found, 2 usage error).
//
// Usage:
//   fsjoin_fuzz --seed 42                 one seed
//   fsjoin_fuzz --seeds 1:50 --lattice 8  seed range [1, 50), 8 points each
//   fsjoin_fuzz --fault segl              inject +1 into SegL required
//                                         overlap (self-test: must FAIL)
//   fsjoin_fuzz --no-minimize             report failures without shrinking
//   fsjoin_fuzz --repro-out PATH          also write minimized repros to PATH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "check/sweeper.h"
#include "core/filters.h"
#include "mr/worker.h"
#include "util/string_util.h"

namespace {

void PrintUsage(std::FILE* stream) {
  std::fprintf(
      stream,
      "usage: fsjoin_fuzz [options]\n"
      "  --seed N          fuzz the single seed N (default: 1)\n"
      "  --seeds A:B       fuzz the half-open seed range [A, B)\n"
      "  --lattice N       configurations sampled per seed (default: 8)\n"
      "  --max-failures N  stop after N failing seeds, 0 = no cap "
      "(default: 4)\n"
      "  --no-minimize     skip delta-debugging of failures\n"
      "  --fault none|segl|segi\n"
      "                    inject a +1 off-by-one into the named filter's\n"
      "                    required-overlap bound (harness self-test)\n"
      "  --repro-out PATH  write minimized repro test cases to PATH\n"
      "  --help            this text\n");
}

bool ParseUint64(const char* text, uint64_t* value) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *value = parsed;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Subprocess-runner children re-exec this binary in --worker-task mode;
  // the lattice samples that runner, so the fuzz driver must speak it.
  if (const int code = fsjoin::mr::WorkerTaskMainIfRequested(argc, argv);
      code >= 0) {
    return code;
  }
  using fsjoin::FilterFaultInjection;
  using fsjoin::check::RunSweep;
  using fsjoin::check::SweepFailure;
  using fsjoin::check::SweepOptions;
  using fsjoin::check::SweepReport;

  SweepOptions options;
  options.seed_begin = 1;
  options.seed_count = 1;
  FilterFaultInjection fault;
  std::string fault_name = "none";
  std::string repro_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr || !ParseUint64(v, &options.seed_begin)) {
        std::fprintf(stderr, "fsjoin_fuzz: bad --seed\n");
        return 2;
      }
      options.seed_count = 1;
    } else if (arg == "--seeds") {
      const char* v = next();
      const char* colon = v == nullptr ? nullptr : std::strchr(v, ':');
      uint64_t begin = 0, end = 0;
      if (colon == nullptr ||
          !ParseUint64(std::string(v, colon).c_str(), &begin) ||
          !ParseUint64(colon + 1, &end) || end <= begin) {
        std::fprintf(stderr, "fsjoin_fuzz: bad --seeds, want A:B with A<B\n");
        return 2;
      }
      options.seed_begin = begin;
      options.seed_count = end - begin;
    } else if (arg == "--lattice") {
      const char* v = next();
      uint64_t n = 0;
      if (v == nullptr || !ParseUint64(v, &n) || n == 0) {
        std::fprintf(stderr, "fsjoin_fuzz: bad --lattice\n");
        return 2;
      }
      options.lattice_points = static_cast<size_t>(n);
    } else if (arg == "--max-failures") {
      const char* v = next();
      uint64_t n = 0;
      if (v == nullptr || !ParseUint64(v, &n)) {
        std::fprintf(stderr, "fsjoin_fuzz: bad --max-failures\n");
        return 2;
      }
      options.max_failures = static_cast<size_t>(n);
    } else if (arg == "--no-minimize") {
      options.minimize = false;
    } else if (arg == "--fault") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "fsjoin_fuzz: --fault needs a value\n");
        return 2;
      }
      fault_name = v;
      if (fault_name == "none") {
        fault = FilterFaultInjection{};
      } else if (fault_name == "segl") {
        fault.segl_required_bias = 1;
      } else if (fault_name == "segi") {
        fault.segi_required_bias = 1;
      } else {
        std::fprintf(stderr, "fsjoin_fuzz: unknown --fault '%s'\n", v);
        return 2;
      }
    } else if (arg == "--repro-out") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "fsjoin_fuzz: --repro-out needs a path\n");
        return 2;
      }
      repro_out = v;
    } else {
      std::fprintf(stderr, "fsjoin_fuzz: unknown option '%s'\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    }
  }

  std::printf("fsjoin_fuzz: seeds [%llu, %llu) x %zu lattice points, "
              "fault=%s\n",
              static_cast<unsigned long long>(options.seed_begin),
              static_cast<unsigned long long>(options.seed_begin +
                                              options.seed_count),
              options.lattice_points, fault_name.c_str());

  fsjoin::ScopedFilterFault scoped_fault(fault);
  const SweepReport report = RunSweep(options);
  std::fputs(report.Summary().c_str(), stdout);

  if (!repro_out.empty() && !report.ok()) {
    std::ofstream out(repro_out);
    if (!out) {
      std::fprintf(stderr, "fsjoin_fuzz: cannot write '%s'\n",
                   repro_out.c_str());
      return 2;
    }
    out << "// Minimized repros from fsjoin_fuzz --seeds "
        << options.seed_begin << ":"
        << options.seed_begin + options.seed_count << " --fault "
        << fault_name << "\n\n";
    for (const SweepFailure& failure : report.failures) {
      if (failure.minimized) out << failure.repro.ToCppTestCase() << "\n";
    }
  }
  return report.ok() ? 0 : 1;
}
