// Near-duplicate detection (the paper's data-cleaning motivation): find
// clusters of near-identical messages in an email-like corpus and report
// the largest duplicate groups.
//
//   ./email_dedup [theta] [path]
//
// Without a path, a synthetic Enron-like corpus is generated; with a path,
// each line of the file is treated as one document.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "core/fsjoin.h"
#include "text/corpus_io.h"
#include "text/generator.h"
#include "util/string_util.h"

namespace {

/// Union-find over record ids, used to group pairwise matches into
/// duplicate clusters.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

int main(int argc, char** argv) {
  const double theta = argc > 1 ? std::atof(argv[1]) : 0.8;

  fsjoin::Corpus corpus;
  if (argc > 2) {
    fsjoin::Result<fsjoin::Corpus> loaded = fsjoin::ReadCorpusText(argv[2]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", argv[2],
                   loaded.status().ToString().c_str());
      return 1;
    }
    corpus = std::move(loaded).value();
  } else {
    std::printf("generating a synthetic Enron-like corpus...\n");
    corpus = fsjoin::GenerateCorpus(fsjoin::EmailLikeConfig(0.5));
  }
  fsjoin::CorpusStats stats = fsjoin::ComputeStats(corpus);
  std::printf("corpus: %s records, vocab %s, avg length %.1f tokens\n",
              fsjoin::WithThousandsSep(stats.num_records).c_str(),
              fsjoin::WithThousandsSep(stats.vocab_size).c_str(),
              stats.avg_len);

  fsjoin::FsJoinConfig config;
  config.theta = theta;
  config.num_vertical_partitions = 16;
  config.num_horizontal_partitions = 8;  // long-record corpora benefit most
  config.exec.num_map_tasks = 16;
  config.exec.num_reduce_tasks = 16;

  fsjoin::Result<fsjoin::FsJoinOutput> result =
      fsjoin::FsJoin(config).Run(corpus);
  if (!result.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // Group matches into duplicate clusters.
  UnionFind groups(corpus.NumRecords());
  for (const fsjoin::SimilarPair& pair : result->pairs) {
    groups.Union(pair.a, pair.b);
  }
  std::map<size_t, std::vector<fsjoin::RecordId>> clusters;
  for (fsjoin::RecordId r = 0; r < corpus.NumRecords(); ++r) {
    clusters[groups.Find(r)].push_back(r);
  }

  std::vector<const std::vector<fsjoin::RecordId>*> dup_clusters;
  for (const auto& [root, members] : clusters) {
    if (members.size() > 1) dup_clusters.push_back(&members);
  }
  std::sort(dup_clusters.begin(), dup_clusters.end(),
            [](const auto* a, const auto* b) { return a->size() > b->size(); });

  std::printf(
      "\nfound %zu near-duplicate pairs in %zu clusters (theta = %.2f)\n",
      result->pairs.size(), dup_clusters.size(), theta);
  std::printf("largest duplicate clusters:\n");
  for (size_t i = 0; i < std::min<size_t>(dup_clusters.size(), 5); ++i) {
    std::printf("  cluster of %zu records: ", dup_clusters[i]->size());
    for (size_t j = 0; j < std::min<size_t>(dup_clusters[i]->size(), 8); ++j) {
      std::printf("%u ", (*dup_clusters[i])[j]);
    }
    std::printf("\n");
  }
  std::printf("\n%s\n", result->report.Summary().c_str());
  return 0;
}
