// Quickstart: run an FS-Join self-join over a handful of strings and print
// the similar pairs.
//
//   ./quickstart
//
// Demonstrates the minimal public API surface: tokenize -> configure ->
// Run -> read the pairs and the execution report.

#include <cstdio>
#include <string>
#include <vector>

#include "core/fsjoin.h"
#include "text/corpus.h"
#include "text/tokenizer.h"

int main() {
  // 1. Build a corpus: one record per line, word tokens, set semantics.
  std::vector<std::string> lines = {
      "the quick brown fox jumps over the lazy dog",
      "the quick brown fox jumped over a lazy dog",
      "lorem ipsum dolor sit amet consectetur adipiscing elit",
      "lorem ipsum dolor sit amet consectetur elit adipiscing sed",
      "set similarity joins find pairs of similar records",
      "distributed set similarity joins find similar record pairs",
      "completely unrelated text about cooking pasta with tomatoes",
  };
  fsjoin::WordTokenizer tokenizer;
  fsjoin::Corpus corpus = fsjoin::BuildCorpus(lines, tokenizer);

  // 2. Configure FS-Join: Jaccard >= 0.6, 4 vertical fragments.
  fsjoin::FsJoinConfig config;
  config.theta = 0.6;
  config.function = fsjoin::SimilarityFunction::kJaccard;
  config.num_vertical_partitions = 4;

  // 3. Run the three-job MapReduce pipeline.
  fsjoin::FsJoin join(config);
  fsjoin::Result<fsjoin::FsJoinOutput> result = join.Run(corpus);
  if (!result.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 4. Consume the results.
  std::printf("similar pairs (jaccard >= %.2f):\n", config.theta);
  for (const fsjoin::SimilarPair& pair : result->pairs) {
    std::printf("  [%u] %s\n  [%u] %s\n  similarity = %.3f\n\n", pair.a,
                lines[pair.a].c_str(), pair.b, lines[pair.b].c_str(),
                pair.similarity);
  }
  std::printf("%s\n", result->report.Summary().c_str());
  return 0;
}
