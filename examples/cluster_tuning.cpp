// Tuning tour: how FS-Join's knobs (pivot strategy, join method,
// horizontal partitioning, filters) change the cost profile on one
// workload, with both measured engine costs and simulated cluster time.
//
//   ./cluster_tuning [num_records]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/fsjoin.h"
#include "mr/cluster_sim.h"
#include "text/generator.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

void RunOne(const fsjoin::Corpus& corpus, const std::string& label,
            fsjoin::FsJoinConfig config, fsjoin::TablePrinter* table) {
  fsjoin::Result<fsjoin::FsJoinOutput> result =
      fsjoin::FsJoin(config).Run(corpus);
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", label.c_str(),
                 result.status().ToString().c_str());
    return;
  }
  const fsjoin::FsJoinReport& rep = result->report;
  fsjoin::mr::ClusterCostModel model;
  fsjoin::mr::SimulatedJobTime sim =
      fsjoin::mr::SimulatePipeline(rep.JoinJobs(), 10, model);
  table->AddRow({
      label,
      fsjoin::StrFormat("%.0f", rep.total_wall_ms),
      fsjoin::StrFormat("%.0f", sim.total_ms),
      fsjoin::WithThousandsSep(rep.candidate_pairs),
      fsjoin::WithThousandsSep(rep.result_pairs),
      fsjoin::HumanBytes(rep.filtering_job.shuffle_bytes +
                         rep.verification_job.shuffle_bytes),
      fsjoin::StrFormat("%.2f", rep.filtering_job.ReduceSkew()),
  });
}

}  // namespace

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) / 20000.0 : 0.25;
  fsjoin::Corpus corpus =
      fsjoin::GenerateCorpus(fsjoin::PubMedLikeConfig(scale));
  std::printf("workload: %zu pubmed-like records, theta = 0.8\n\n",
              corpus.NumRecords());

  fsjoin::FsJoinConfig base;
  base.theta = 0.8;
  base.num_vertical_partitions = 30;
  base.exec.num_map_tasks = 30;
  base.exec.num_reduce_tasks = 30;

  fsjoin::TablePrinter table({"configuration", "wall ms", "sim10 ms",
                              "candidates", "results", "shuffle",
                              "reduce skew"});

  RunOne(corpus, "default (prefix, even-tf, all filters)", base, &table);

  fsjoin::FsJoinConfig loop = base;
  loop.join_method = fsjoin::JoinMethod::kLoop;
  RunOne(corpus, "loop join", loop, &table);

  fsjoin::FsJoinConfig random_pivots = base;
  random_pivots.pivot_strategy = fsjoin::PivotStrategy::kRandom;
  RunOne(corpus, "random pivots", random_pivots, &table);

  fsjoin::FsJoinConfig no_filters = base;
  no_filters.use_segment_length_filter = false;
  no_filters.use_segment_intersection_filter = false;
  no_filters.use_segment_difference_filter = false;
  RunOne(corpus, "StrL filter only", no_filters, &table);

  fsjoin::FsJoinConfig horizontal = base;
  horizontal.num_horizontal_partitions = 20;
  RunOne(corpus, "with horizontal partitioning (t=20)", horizontal, &table);

  table.Print(std::cout);
  return 0;
}
