// Command-line set similarity join over text files: one record per line.
//
//   fsjoin_cli --input corpus.txt --theta 0.8 [options]
//
// Options:
//   --input PATH        the (left) input file: the whole collection for a
//                       self join, the R side for --join rs     (required)
//   --join MODE         self | rs                               [self]
//   --right PATH        S side of an R-S join; implies --join rs. Output
//                       pairs are "r s sim" with s re-based into S's own
//                       id space
//   --rs PATH           alias for --join rs --right PATH
//   --theta X           similarity threshold in (0, 1]        [0.8]
//   --function NAME     jaccard | dice | cosine               [jaccard]
//   --tokenizer NAME    word | whitespace | qgramN (e.g. qgram3) [word]
//   --fragments N       vertical partitions                   [30]
//   --horizontal N      horizontal length pivots (0 = off)    [0]
//   --method NAME       loop | index | prefix                 [prefix]
//   --auto              cost-based auto-tuning: sample-refined pivots,
//                       skew-triggered horizontal splitting, per-fragment
//                       join method + kernel. Explicitly passed knobs
//                       (--method, --kernel, --horizontal) stay pinned and
//                       override the tuner, with the override logged.
//   --sample-rate X     tuning sample rate in (0, 1]; requires --auto
//                       [0.05]
//   --aggressive        paper-aggressive segment prefixes (faster,
//                       may miss borderline pairs)
//   --backend NAME      mr | flow (execution backend)         [mr]
//   --kernel NAME       auto | scalar | packed | simd overlap kernel
//                       family for fragment-join verification [auto]
//   --threads N         engine worker threads                 [0 = inline]
//   --parallel-join     morsel-parallel fragment joins (same results,
//                       work-stealing over --threads workers)
//   --morsel N          probe segments per morsel             [64]
//   --shuffle-mem SIZE  spill the shuffle to disk past this many buffered
//                       bytes; accepts k/m/g suffixes         [0 = in memory]
//   --spill-dir PATH    where spill runs are written (removed when the job
//                       finishes)                             [system temp]
//   --runner NAME       inline | threads | subprocess | cluster task
//                       execution (subprocess forks/re-execs one child per
//                       task attempt and retries failures; cluster runs
//                       tasks on socket-RPC workers)          [threads]
//   --task-retries N    re-executions per failed task on the subprocess
//                       or cluster runner                     [2]
//   --workers LIST      cluster: comma-separated host:port list of
//                       pre-started fsjoin_worker processes to dial
//   --spawn-local-workers N
//                       cluster: fork/exec N loopback workers from this
//                       binary instead of dialing --workers
//   --heartbeat-ms N    cluster liveness probe interval       [2000]
//   --output PATH       write "idA idB similarity" lines      [stdout]
//   --report            print the execution report to stderr
//
// Internal: --worker-task SPEC re-executes one serialized task and exits
// (the subprocess runner launches the binary this way; see mr/worker.h).
// Internal: --worker-serve HOST:PORT turns the process into a cluster
// worker dialing that coordinator (spawn-local mode; see net/worker.h).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "core/fsjoin.h"
#include "mr/worker.h"
#include "net/worker.h"
#include "text/corpus_io.h"
#include "text/tokenizer.h"

namespace {

struct CliOptions {
  std::string input;
  std::string join = "self";
  std::string right;
  std::string output;
  std::string tokenizer = "word";
  std::string method = "prefix";
  std::string function = "jaccard";
  std::string backend = "mr";
  std::string kernel = "auto";
  std::string runner = "threads";
  std::string spill_dir;
  std::string workers;
  int spawn_local_workers = 0;
  int heartbeat_ms = 2000;
  int task_retries = 2;
  double theta = 0.8;
  uint32_t fragments = 30;
  uint32_t horizontal = 0;
  size_t threads = 0;
  size_t morsel = 64;
  uint64_t shuffle_mem = 0;
  bool parallel_join = false;
  bool aggressive = false;
  bool report = false;
  bool auto_tune = false;
  double sample_rate = 0.0;
  // Which knobs were passed explicitly: with --auto they stay pinned and
  // the override is logged instead of being silently ignored.
  bool method_set = false;
  bool kernel_set = false;
  bool horizontal_set = false;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --input FILE [--join self|rs] [--right FILE] "
               "[--rs FILE] [--theta X] "
               "[--function jaccard|dice|cosine] [--tokenizer "
               "word|whitespace|qgramN] [--fragments N] [--horizontal N] "
               "[--method loop|index|prefix] [--auto] [--sample-rate X] "
               "[--aggressive] "
               "[--backend mr|flow] [--kernel auto|scalar|packed|simd] "
               "[--threads N] "
               "[--parallel-join] [--morsel N] "
               "[--shuffle-mem SIZE] [--spill-dir DIR] "
               "[--runner inline|threads|subprocess|cluster] "
               "[--task-retries N] "
               "[--workers host:port,...] [--spawn-local-workers N] "
               "[--heartbeat-ms N] "
               "[--output FILE] [--report]\n",
               argv0);
  return 2;
}

// Parses "262144", "256k", "64m" or "1g" into bytes; returns false on junk.
bool ParseByteSize(const char* text, uint64_t* out) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || value < 0) return false;
  double mult = 1.0;
  if (*end == 'k' || *end == 'K') {
    mult = 1024.0;
    ++end;
  } else if (*end == 'm' || *end == 'M') {
    mult = 1024.0 * 1024.0;
    ++end;
  } else if (*end == 'g' || *end == 'G') {
    mult = 1024.0 * 1024.0 * 1024.0;
    ++end;
  }
  if (*end != '\0') return false;
  *out = static_cast<uint64_t>(value * mult);
  return true;
}

fsjoin::Result<std::unique_ptr<fsjoin::Tokenizer>> MakeTokenizer(
    const std::string& name) {
  if (name == "word") {
    return std::unique_ptr<fsjoin::Tokenizer>(new fsjoin::WordTokenizer());
  }
  if (name == "whitespace") {
    return std::unique_ptr<fsjoin::Tokenizer>(
        new fsjoin::WhitespaceTokenizer());
  }
  if (name.rfind("qgram", 0) == 0) {
    int q = std::atoi(name.c_str() + 5);
    if (q < 1) return fsjoin::Status::InvalidArgument("bad qgram size");
    return std::unique_ptr<fsjoin::Tokenizer>(
        new fsjoin::QGramTokenizer(static_cast<size_t>(q)));
  }
  return fsjoin::Status::InvalidArgument("unknown tokenizer: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  // Worker mode: when launched as `fsjoin_cli --worker-task spec`, execute
  // that one task and exit. Must run before any CLI work so a re-execed
  // child never re-runs the whole join.
  if (const int code = fsjoin::mr::WorkerTaskMainIfRequested(argc, argv);
      code >= 0) {
    return code;
  }
  // Cluster worker mode: `fsjoin_cli --worker-serve host:port` (how
  // --spawn-local-workers re-execs this binary) serves tasks until the
  // coordinator shuts the session down.
  if (const int code = fsjoin::net::WorkerServeMainIfRequested(argc, argv);
      code >= 0) {
    return code;
  }
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--input") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      opts.input = v;
    } else if (arg == "--join") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      opts.join = v;
    } else if (arg == "--right") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      opts.right = v;
      if (opts.join == "self") opts.join = "rs";
    } else if (arg == "--rs") {  // alias for --join rs --right FILE
      const char* v = next();
      if (!v) return Usage(argv[0]);
      opts.right = v;
      opts.join = "rs";
    } else if (arg == "--output") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      opts.output = v;
    } else if (arg == "--theta") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      opts.theta = std::atof(v);
    } else if (arg == "--function") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      opts.function = v;
    } else if (arg == "--tokenizer") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      opts.tokenizer = v;
    } else if (arg == "--method") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      opts.method = v;
      opts.method_set = true;
    } else if (arg == "--auto") {
      opts.auto_tune = true;
    } else if (arg == "--sample-rate") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      opts.sample_rate = std::atof(v);
    } else if (arg == "--fragments") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      opts.fragments = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--horizontal") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      opts.horizontal = static_cast<uint32_t>(std::atoi(v));
      opts.horizontal_set = true;
    } else if (arg == "--backend") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      opts.backend = v;
    } else if (arg == "--kernel") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      opts.kernel = v;
      opts.kernel_set = true;
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      opts.threads = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--parallel-join") {
      opts.parallel_join = true;
    } else if (arg == "--morsel") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      opts.morsel = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--shuffle-mem") {
      const char* v = next();
      if (!v || !ParseByteSize(v, &opts.shuffle_mem)) {
        std::fprintf(stderr, "bad --shuffle-mem value\n");
        return Usage(argv[0]);
      }
    } else if (arg == "--spill-dir") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      opts.spill_dir = v;
    } else if (arg == "--runner") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      opts.runner = v;
    } else if (arg == "--task-retries") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      opts.task_retries = std::atoi(v);
    } else if (arg == "--workers") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      opts.workers = v;
    } else if (arg == "--spawn-local-workers") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      opts.spawn_local_workers = std::atoi(v);
    } else if (arg == "--heartbeat-ms") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      opts.heartbeat_ms = std::atoi(v);
    } else if (arg == "--aggressive") {
      opts.aggressive = true;
    } else if (arg == "--report") {
      opts.report = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (opts.input.empty()) return Usage(argv[0]);
  if (opts.join != "self" && opts.join != "rs") {
    std::fprintf(stderr, "unknown --join mode: %s (want self|rs)\n",
                 opts.join.c_str());
    return Usage(argv[0]);
  }
  if (opts.join == "rs" && opts.right.empty()) {
    std::fprintf(stderr, "--join rs needs --right FILE\n");
    return Usage(argv[0]);
  }
  const bool rs_mode = opts.join == "rs";

  auto tokenizer_result = MakeTokenizer(opts.tokenizer);
  if (!tokenizer_result.ok()) {
    std::fprintf(stderr, "%s\n", tokenizer_result.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<fsjoin::Tokenizer> tokenizer =
      std::move(tokenizer_result).value();

  auto load = [&](const std::string& path) -> fsjoin::Result<fsjoin::Corpus> {
    auto lines = fsjoin::ReadLines(path);
    if (!lines.ok()) return lines.status();
    return fsjoin::BuildCorpus(*lines, *tokenizer);
  };

  fsjoin::Result<fsjoin::Corpus> r = load(opts.input);
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }

  fsjoin::FsJoinConfig config;
  config.theta = opts.theta;
  config.num_vertical_partitions = opts.fragments;
  config.num_horizontal_partitions = opts.horizontal;
  config.exec.num_threads = opts.threads;
  config.exec.parallel_fragment_join = opts.parallel_join;
  config.exec.join_morsel_size = opts.morsel;
  config.exec.shuffle_memory_bytes = opts.shuffle_mem;
  config.exec.spill_dir = opts.spill_dir;
  config.exec.task_retries = opts.task_retries;
  config.exec.workers = opts.workers;
  config.exec.spawn_local_workers = opts.spawn_local_workers;
  config.exec.heartbeat_ms = opts.heartbeat_ms;
  {
    auto runner = fsjoin::mr::RunnerKindFromName(opts.runner);
    if (!runner.ok()) {
      std::fprintf(stderr, "%s\n", runner.status().ToString().c_str());
      return 1;
    }
    config.exec.runner = *runner;
  }
  {
    auto backend = fsjoin::exec::BackendKindFromName(opts.backend);
    if (!backend.ok()) {
      std::fprintf(stderr, "%s\n", backend.status().ToString().c_str());
      return 1;
    }
    config.exec.backend = *backend;
  }
  {
    auto kernel = fsjoin::exec::KernelModeFromName(opts.kernel);
    if (!kernel.ok()) {
      std::fprintf(stderr, "%s\n", kernel.status().ToString().c_str());
      return 1;
    }
    config.exec.kernel = *kernel;
  }
  config.aggressive_segment_prefix = opts.aggressive;
  {
    auto fn = fsjoin::SimilarityFunctionFromName(opts.function);
    if (!fn.ok()) {
      std::fprintf(stderr, "%s\n", fn.status().ToString().c_str());
      return 1;
    }
    config.function = *fn;
  }
  if (opts.method == "loop") {
    config.join_method = fsjoin::JoinMethod::kLoop;
  } else if (opts.method == "index") {
    config.join_method = fsjoin::JoinMethod::kIndex;
  } else if (opts.method == "prefix") {
    config.join_method = fsjoin::JoinMethod::kPrefix;
  } else {
    std::fprintf(stderr, "unknown join method: %s\n", opts.method.c_str());
    return 1;
  }
  config.exec.auto_tune = opts.auto_tune;
  config.exec.tune_sample_rate = opts.sample_rate;
  if (opts.auto_tune) {
    // Explicitly passed knobs stay pinned: --auto fills in only what the
    // user left unset, and each override is logged instead of one side
    // silently losing (the old behavior accepted e.g. --auto --method loop
    // and ignored the --method).
    config.pinned.join_method = opts.method_set;
    config.pinned.kernel = opts.kernel_set;
    config.pinned.horizontal = opts.horizontal_set;
    if (opts.method_set) {
      std::fprintf(stderr,
                   "[auto] --method %s set explicitly; pinning it and "
                   "skipping the per-fragment method choice\n",
                   opts.method.c_str());
    }
    if (opts.kernel_set) {
      std::fprintf(stderr,
                   "[auto] --kernel %s set explicitly; pinning it and "
                   "skipping the per-fragment kernel choice\n",
                   opts.kernel.c_str());
    }
    if (opts.horizontal_set) {
      std::fprintf(stderr,
                   "[auto] --horizontal %u set explicitly; pinning it and "
                   "skipping the tuned horizontal split\n",
                   opts.horizontal);
    }
  }

  fsjoin::Result<fsjoin::FsJoinOutput> out =
      [&]() -> fsjoin::Result<fsjoin::FsJoinOutput> {
    if (!rs_mode) return fsjoin::FsJoin(config).Run(*r);
    fsjoin::Result<fsjoin::Corpus> s = load(opts.right);
    if (!s.ok()) return s.status();
    return fsjoin::FsJoinRS(*r, *s, config);
  }();
  if (!out.ok()) {
    std::fprintf(stderr, "join failed: %s\n", out.status().ToString().c_str());
    return 1;
  }

  const fsjoin::RecordId boundary =
      rs_mode ? static_cast<fsjoin::RecordId>(r->NumRecords()) : 0;
  std::FILE* sink = stdout;
  if (!opts.output.empty()) {
    sink = std::fopen(opts.output.c_str(), "w");
    if (sink == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", opts.output.c_str());
      return 1;
    }
  }
  for (const fsjoin::SimilarPair& p : out->pairs) {
    if (boundary > 0) {
      std::fprintf(sink, "%u %u %.6f\n", p.a, p.b - boundary, p.similarity);
    } else {
      std::fprintf(sink, "%u %u %.6f\n", p.a, p.b, p.similarity);
    }
  }
  if (sink != stdout) std::fclose(sink);
  if (opts.report) {
    std::fprintf(stderr, "%s\n", out->report.Summary().c_str());
  }
  return 0;
}
