// Record linkage across two collections (the paper's data-integration
// motivation): R-S join between two "databases" describing overlapping
// entities, using FsJoinRS.
//
//   ./record_linkage [theta]
//
// Two synthetic catalogs are generated that share a subset of entities
// with noisy descriptions; the join links them without comparing every
// (R, S) pair.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/fsjoin.h"
#include "text/corpus.h"
#include "text/tokenizer.h"
#include "util/random.h"
#include "util/string_util.h"

namespace {

/// Builds two catalogs: `shared` entities appear in both (with per-token
/// noise), plus unique records on each side.
void BuildCatalogs(size_t shared, size_t unique_each, fsjoin::Corpus* r,
                   fsjoin::Corpus* s) {
  fsjoin::Rng rng(2017);
  auto random_description = [&rng]() {
    std::string line;
    const size_t len = 8 + rng.NextBounded(10);
    for (size_t i = 0; i < len; ++i) {
      line += fsjoin::StrFormat("attr%llu ",
                                static_cast<unsigned long long>(
                                    rng.NextBounded(40000)));
    }
    return line;
  };
  auto perturb = [&rng](const std::string& line) {
    std::vector<std::string_view> parts = fsjoin::SplitString(line, " ");
    std::string out;
    for (const auto& p : parts) {
      if (rng.NextBool(0.1)) continue;  // drop ~10% of attributes
      out += std::string(p) + " ";
    }
    out += fsjoin::StrFormat(
        "attr%llu", static_cast<unsigned long long>(rng.NextBounded(40000)));
    return out;
  };

  std::vector<std::string> r_lines, s_lines;
  for (size_t i = 0; i < shared; ++i) {
    std::string base = random_description();
    r_lines.push_back(base);
    s_lines.push_back(perturb(base));
  }
  for (size_t i = 0; i < unique_each; ++i) {
    r_lines.push_back(random_description());
    s_lines.push_back(random_description());
  }
  fsjoin::WordTokenizer tokenizer;
  *r = fsjoin::BuildCorpus(r_lines, tokenizer);
  *s = fsjoin::BuildCorpus(s_lines, tokenizer);
}

}  // namespace

int main(int argc, char** argv) {
  const double theta = argc > 1 ? std::atof(argv[1]) : 0.6;
  const size_t kShared = 800;
  const size_t kUniqueEach = 1200;

  fsjoin::Corpus r, s;
  BuildCatalogs(kShared, kUniqueEach, &r, &s);
  std::printf("catalog R: %zu records, catalog S: %zu records\n",
              r.NumRecords(), s.NumRecords());
  std::printf("%zu entities appear in both (with ~10%% attribute noise)\n\n",
              kShared);

  fsjoin::FsJoinConfig config;
  config.theta = theta;
  config.num_vertical_partitions = 8;
  fsjoin::Result<fsjoin::FsJoinOutput> result =
      fsjoin::FsJoinRS(r, s, config);
  if (!result.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // Result ids: a < |R| is the R-side record; b - |R| is the S-side one.
  const fsjoin::RecordId boundary =
      static_cast<fsjoin::RecordId>(r.NumRecords());
  size_t true_links = 0;
  for (const fsjoin::SimilarPair& pair : result->pairs) {
    fsjoin::RecordId r_id = pair.a;
    fsjoin::RecordId s_id = pair.b - boundary;
    if (r_id == s_id && r_id < kShared) ++true_links;
  }

  std::printf("linked %zu (R, S) pairs at jaccard >= %.2f\n",
              result->pairs.size(), theta);
  std::printf("  %zu of %zu planted links recovered (%.1f%% recall)\n",
              true_links, kShared, 100.0 * true_links / kShared);
  std::printf("  %zu links are other coincidental matches\n",
              result->pairs.size() - true_links);
  std::printf("\n%s\n", result->report.Summary().c_str());
  return 0;
}
