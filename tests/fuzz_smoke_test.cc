// Bounded differential-fuzz smoke tier (ctest label: fuzz-smoke).
//
// 64 fixed seeds x 8 lattice points, every seed verified against the serial
// brute-force oracle with the full invariant battery (result equality,
// partial-overlap conservation, filter-counter balance, JobMetrics byte
// accounting, cross-config digest identity). The range is split across
// several TESTs so `ctest -j` spreads the work; each shard takes well under
// the 30 s budget even under asan. The long seeded sweep lives in CI
// (`fsjoin_fuzz --seeds`), not here.

#include <gtest/gtest.h>

#include "check/lattice.h"
#include "check/sweeper.h"

namespace fsjoin::check {
namespace {

void RunShard(uint64_t seed_begin, uint64_t seed_count) {
  SweepOptions options;
  options.seed_begin = seed_begin;
  options.seed_count = seed_count;
  options.lattice_points = 8;
  SweepReport report = RunSweep(options);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.seeds_run, seed_count);
  EXPECT_EQ(report.points_run, seed_count * options.lattice_points);
}

TEST(FuzzSmoke, Seeds1To16) { RunShard(1, 16); }
TEST(FuzzSmoke, Seeds17To32) { RunShard(17, 16); }
TEST(FuzzSmoke, Seeds33To48) { RunShard(33, 16); }
TEST(FuzzSmoke, Seeds49To64) { RunShard(49, 16); }

// Every shard exercises all four algorithms: the first four lattice points
// of every seed cover them by construction.
TEST(FuzzSmoke, AllAlgorithmsCovered) {
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    std::vector<LatticePoint> points = SampleLattice(seed, 8);
    ASSERT_GE(points.size(), 4u);
    bool seen[4] = {false, false, false, false};
    for (size_t i = 0; i < 4; ++i) {
      seen[static_cast<int>(points[i].algorithm)] = true;
    }
    EXPECT_TRUE(seen[0] && seen[1] && seen[2] && seen[3]) << "seed " << seed;
  }
}

}  // namespace
}  // namespace fsjoin::check
