// Unit tests for the coordinator/executor layer: TaskSpec serialization,
// the task-factory registry, TaskScheduler state transitions and retry
// budget, the exactly-once completion pass, and the up-front knob
// validation of EngineOptions / exec::ExecConfig. Everything here is
// in-process (mock runners) — cross-process behavior lives in
// multiproc_test.cc.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "exec/exec_config.h"
#include "mr/engine.h"
#include "mr/runner.h"
#include "mr/scheduler.h"
#include "mr/task.h"
#include "util/status.h"

namespace fsjoin::mr {
namespace {

TaskSpec SampleSpec() {
  TaskSpec spec;
  spec.job_name = "job/stage";
  spec.kind = TaskKind::kReduce;
  spec.task_index = 7;
  spec.num_partitions = 12;
  spec.input_begin = 1000;
  spec.input_end = 2000;
  spec.input_runs = {"/tmp/a.run", "/tmp/b.run", ""};
  spec.output_base = "/tmp/scratch/red-t7";
  spec.factory = "core.ordering";
  spec.payload = std::string("bin\0ary", 7);
  spec.attempt = 3;
  return spec;
}

TEST(TaskSpecTest, CodecRoundTripsEveryField) {
  const TaskSpec spec = SampleSpec();
  std::string encoded;
  spec.EncodeTo(&encoded);

  auto decoded = TaskSpec::Decode(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->job_name, spec.job_name);
  EXPECT_EQ(decoded->kind, spec.kind);
  EXPECT_EQ(decoded->task_index, spec.task_index);
  EXPECT_EQ(decoded->num_partitions, spec.num_partitions);
  EXPECT_EQ(decoded->input_begin, spec.input_begin);
  EXPECT_EQ(decoded->input_end, spec.input_end);
  EXPECT_EQ(decoded->input_runs, spec.input_runs);
  EXPECT_EQ(decoded->output_base, spec.output_base);
  EXPECT_EQ(decoded->factory, spec.factory);
  EXPECT_EQ(decoded->payload, spec.payload);
  EXPECT_EQ(decoded->attempt, spec.attempt);
}

TEST(TaskSpecTest, DecodeRejectsTruncationAtEveryPrefix) {
  const TaskSpec spec = SampleSpec();
  std::string encoded;
  spec.EncodeTo(&encoded);
  for (size_t keep = 0; keep < encoded.size(); ++keep) {
    auto decoded = TaskSpec::Decode(encoded.substr(0, keep));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << keep << " bytes decoded";
  }
}

TEST(RunnerKindTest, NamesRoundTrip) {
  for (RunnerKind kind : {RunnerKind::kInline, RunnerKind::kThreads,
                          RunnerKind::kSubprocess}) {
    auto parsed = RunnerKindFromName(RunnerKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(RunnerKindFromName("remote").ok());
  EXPECT_FALSE(RunnerKindFromName("").ok());
}

TEST(TaskFactoryTest, RegistryRejectsDuplicatesAndUnknownNames) {
  const std::string name = "scheduler_test.factory";
  EXPECT_FALSE(HasTaskFactory(name));
  ASSERT_TRUE(RegisterTaskFactory(name, [](const std::string&) {
    return Result<TaskFactories>(TaskFactories{});
  }));
  EXPECT_TRUE(HasTaskFactory(name));
  EXPECT_FALSE(RegisterTaskFactory(name, [](const std::string&) {
    return Result<TaskFactories>(TaskFactories{});
  }));
  EXPECT_FALSE(ResolveTaskFactory("scheduler_test.no_such", "").ok());
}

/// Scripted runner: runs tasks inline (optionally in reverse submission
/// order) and fails attempt i of task t when `fail(t, i)` says so.
class MockRunner : public TaskRunner {
 public:
  const char* name() const override { return "mock"; }
  bool retryable() const override { return retryable_; }

  void ParallelRun(size_t n, const std::function<void(size_t)>& fn) override {
    for (size_t i = 0; i < n; ++i) fn(reverse_ ? n - 1 - i : i);
  }

  Status RunAttempt(const TaskSpec& spec, const TaskBody& body,
                    const TaskSideChannel& side, TaskOutput* out) override {
    attempts_seen += 1;
    if (fail && fail(spec.task_index, spec.attempt)) {
      return Status::Internal("scripted failure");
    }
    FSJOIN_RETURN_NOT_OK(body(spec, out));
    if (capture_side && side.capture) out->side_state = side.capture();
    return Status::OK();
  }

  bool retryable_ = true;
  bool reverse_ = false;
  bool capture_side = false;
  std::function<bool(uint32_t task, uint32_t attempt)> fail;
  int attempts_seen = 0;
};

std::vector<TaskSpec> MakeSpecs(size_t n) {
  std::vector<TaskSpec> specs(n);
  for (size_t t = 0; t < n; ++t) {
    specs[t].job_name = "stage";
    specs[t].task_index = static_cast<uint32_t>(t);
  }
  return specs;
}

TEST(TaskSchedulerTest, DeliversResultsOnceInTaskIndexOrder) {
  MockRunner runner;
  runner.reverse_ = true;  // completion order must not leak into delivery
  TaskScheduler scheduler(&runner, 2);

  std::vector<uint32_t> delivered;
  const Status st = scheduler.RunStage(
      MakeSpecs(5),
      [](const TaskSpec& spec, TaskOutput* out) {
        out->metrics.output_records = spec.task_index;
        return Status::OK();
      },
      TaskSideChannel{},
      [&](const TaskSpec& spec, TaskOutput out) {
        delivered.push_back(spec.task_index);
        EXPECT_EQ(out.metrics.output_records, spec.task_index);
        EXPECT_EQ(out.metrics.attempts, 1u);
        return Status::OK();
      });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(delivered, (std::vector<uint32_t>{0, 1, 2, 3, 4}));
  for (const TaskRecord& record : scheduler.records()) {
    EXPECT_EQ(record.state, TaskState::kDone);
    EXPECT_EQ(record.attempts, 1u);
  }
}

TEST(TaskSchedulerTest, RetriesFailedTasksWithinBudget) {
  MockRunner runner;
  // Task 2 fails its first two attempts and succeeds on the third.
  runner.fail = [](uint32_t task, uint32_t attempt) {
    return task == 2 && attempt < 2;
  };
  TaskScheduler scheduler(&runner, 2);

  int deliveries_of_task2 = 0;
  const Status st = scheduler.RunStage(
      MakeSpecs(4),
      [](const TaskSpec&, TaskOutput*) { return Status::OK(); },
      TaskSideChannel{},
      [&](const TaskSpec& spec, TaskOutput out) {
        if (spec.task_index == 2) {
          deliveries_of_task2 += 1;
          EXPECT_EQ(out.metrics.attempts, 3u);
        } else {
          EXPECT_EQ(out.metrics.attempts, 1u);
        }
        return Status::OK();
      });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(deliveries_of_task2, 1);
  EXPECT_EQ(runner.attempts_seen, 6);  // 4 first attempts + 2 retries
  EXPECT_EQ(scheduler.records()[2].attempts, 3u);
  EXPECT_EQ(scheduler.records()[2].state, TaskState::kDone);
}

TEST(TaskSchedulerTest, FailsStageWhenRetryBudgetExhausted) {
  MockRunner runner;
  runner.fail = [](uint32_t task, uint32_t) { return task == 1; };
  TaskScheduler scheduler(&runner, 2);

  int deliveries = 0;
  const Status st = scheduler.RunStage(
      MakeSpecs(3),
      [](const TaskSpec&, TaskOutput*) { return Status::OK(); },
      TaskSideChannel{},
      [&](const TaskSpec&, TaskOutput) {
        deliveries += 1;
        return Status::OK();
      });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("failed after 3 attempt(s)"),
            std::string::npos)
      << st.ToString();
  // The completion pass never ran: no partial deliveries on failure.
  EXPECT_EQ(deliveries, 0);
  EXPECT_EQ(scheduler.records()[1].state, TaskState::kFailed);
  EXPECT_EQ(scheduler.records()[1].attempts, 3u);
}

TEST(TaskSchedulerTest, InProcessRunnersFailOnFirstErrorWithoutRetry) {
  MockRunner runner;
  runner.retryable_ = false;  // like InlineRunner / ThreadPoolRunner
  runner.fail = [](uint32_t task, uint32_t) { return task == 0; };
  TaskScheduler scheduler(&runner, 5);

  const Status st = scheduler.RunStage(
      MakeSpecs(2),
      [](const TaskSpec&, TaskOutput*) { return Status::OK(); },
      TaskSideChannel{},
      [](const TaskSpec&, TaskOutput) { return Status::OK(); });
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("failed after 1 attempt(s)"),
            std::string::npos)
      << st.ToString();
  EXPECT_EQ(scheduler.records()[0].attempts, 1u);
}

TEST(TaskSchedulerTest, SideChannelMergesOncePerLogicalTaskAcrossRetries) {
  MockRunner runner;
  runner.capture_side = true;
  runner.fail = [](uint32_t task, uint32_t attempt) {
    return task == 0 && attempt == 0;
  };
  TaskScheduler scheduler(&runner, 3);

  int merges = 0;
  TaskSideChannel side;
  side.capture = [] { return std::string("delta"); };
  side.merge = [&](const std::string& bytes) {
    EXPECT_EQ(bytes, "delta");
    merges += 1;
    return Status::OK();
  };

  const Status st = scheduler.RunStage(
      MakeSpecs(3),
      [](const TaskSpec&, TaskOutput*) { return Status::OK(); }, side,
      [](const TaskSpec&, TaskOutput) { return Status::OK(); });
  ASSERT_TRUE(st.ok()) << st.ToString();
  // 3 logical tasks -> 3 merges, even though task 0 ran twice.
  EXPECT_EQ(merges, 3);
}

// ---- Satellite: up-front knob validation -----------------------------

TEST(ValidationTest, EngineOptionsRejectsNegativeRetryBudget) {
  EngineOptions options;
  options.task_retries = -1;
  const Status st = options.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(ValidationTest, EngineOptionsRejectsSubFloorShuffleBudget) {
  EngineOptions options;
  options.shuffle_memory_bytes = kMinShuffleMemoryBytes - 1;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.shuffle_memory_bytes = kMinShuffleMemoryBytes;
  EXPECT_TRUE(options.Validate().ok());
  options.shuffle_memory_bytes = 0;  // 0 = unbounded, explicitly allowed
  EXPECT_TRUE(options.Validate().ok());
}

TEST(ValidationTest, ExecConfigRejectsZeroMorselWithParallelJoin) {
  exec::ExecConfig config;
  config.parallel_fragment_join = true;
  config.join_morsel_size = 0;
  const Status st = config.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("join_morsel_size"), std::string::npos);
  // Morsel size 0 is fine when the parallel join is off (knob is unused).
  config.parallel_fragment_join = false;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ValidationTest, ExecConfigRejectsBadKnobs) {
  {
    exec::ExecConfig config;
    config.num_map_tasks = 0;
    EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    exec::ExecConfig config;
    config.task_retries = -3;
    EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    exec::ExecConfig config;
    config.shuffle_memory_bytes = 1;
    EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ValidationTest, ExecConfigRejectsUncreatableSpillDir) {
  exec::ExecConfig config;
  // A path under /dev/null can never be created as a directory.
  config.spill_dir = "/dev/null/fsjoin-spill";
  const Status st = config.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("spill_dir"), std::string::npos);
}

}  // namespace
}  // namespace fsjoin::mr
