// SIMD overlap kernels, per-segment containers and the compiled pipeline
// registry (DESIGN.md §5g). Every kernel x container pair is checked
// against the scalar reference on adversarial inputs, under the detected
// ISA and with the scalar fallback forced; the registry must dispatch every
// shape to a pipeline producing results identical to the scalar one.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/fragment_join.h"
#include "core/join_pipeline.h"
#include "core/segments.h"
#include "sim/set_ops.h"
#include "util/random.h"
#include "util/simd.h"

namespace fsjoin {
namespace {

using Tokens = std::vector<uint32_t>;

Tokens Iota(uint32_t start, uint32_t n, uint32_t stride = 1) {
  Tokens v;
  for (uint32_t i = 0; i < n; ++i) v.push_back(start + i * stride);
  return v;
}

/// The adversarial pair matrix from the issue: empty, single-token,
/// all-equal, max-skew, and boundary shapes around vector-lane widths.
std::vector<std::pair<Tokens, Tokens>> AdversarialPairs() {
  std::vector<std::pair<Tokens, Tokens>> pairs;
  pairs.push_back({{}, {}});
  pairs.push_back({{}, Iota(5, 40)});
  pairs.push_back({{7}, {7}});
  pairs.push_back({{7}, {8}});
  pairs.push_back({{7}, Iota(0, 100)});
  pairs.push_back({Iota(0, 64), Iota(0, 64)});          // all-equal
  pairs.push_back({Iota(0, 64), Iota(64, 64)});         // disjoint, adjacent
  pairs.push_back({Iota(0, 64, 2), Iota(1, 64, 2)});    // interleaved
  pairs.push_back({Iota(0, 7), Iota(3, 7)});            // below lane width
  pairs.push_back({Iota(0, 8), Iota(4, 8)});            // exactly one lane
  pairs.push_back({Iota(0, 9), Iota(4, 9)});            // lane + tail
  pairs.push_back({Iota(0, 5), Iota(0, 4096)});         // max skew
  pairs.push_back({Iota(100, 3), Iota(0, 4096, 3)});    // skew, sparse large
  // Random clustered + sparse mixes.
  Rng rng(99);
  for (int i = 0; i < 12; ++i) {
    Tokens a, b;
    for (uint32_t r = 0; r < 600; ++r) {
      if (rng.NextBool(0.25)) a.push_back(r);
      if (rng.NextBool(i % 2 ? 0.25 : 0.02)) b.push_back(r);
    }
    pairs.push_back({std::move(a), std::move(b)});
  }
  return pairs;
}

uint64_t Ref(const Tokens& a, const Tokens& b) {
  return LinearOverlap(a.data(), a.size(), b.data(), b.size());
}

TEST(SimdKernelTest, ExactOverlapMatchesScalarReference) {
  for (SimdIsa isa : {DetectedSimdIsa(), SimdIsa::kScalar}) {
    ScopedSimdIsaOverride force(isa);
    for (const auto& [a, b] : AdversarialPairs()) {
      const uint64_t expected = Ref(a, b);
      EXPECT_EQ(SimdOverlap(a.data(), a.size(), b.data(), b.size()), expected)
          << SimdIsaName(isa) << " na=" << a.size() << " nb=" << b.size();
      EXPECT_EQ(SimdOverlap(b.data(), b.size(), a.data(), a.size()), expected);
    }
  }
}

TEST(SimdKernelTest, BoundedKernelsHonorTheContract) {
  for (SimdIsa isa : {DetectedSimdIsa(), SimdIsa::kScalar}) {
    ScopedSimdIsaOverride force(isa);
    for (const auto& [a, b] : AdversarialPairs()) {
      const uint64_t exact = Ref(a, b);
      const uint64_t max_possible = std::min(a.size(), b.size());
      // Boundary-at-required-overlap: exact itself plus both neighbors.
      for (uint64_t required :
           {uint64_t{0}, uint64_t{1}, exact, exact + 1, exact + 7,
            max_possible, max_possible + 1}) {
        for (auto* kernel : {&SimdOverlapBounded, &SortedOverlapBounded}) {
          const uint64_t got =
              kernel(a.data(), a.size(), b.data(), b.size(), required);
          // (got < required) must equal (exact < required), and at-or-above
          // the bound the result must be exact.
          EXPECT_EQ(got < required, exact < required)
              << SimdIsaName(isa) << " required=" << required;
          if (got >= required) {
            EXPECT_EQ(got, exact);
          }
        }
      }
    }
  }
}

/// Builds the bitset form of `v` on the absolute word grid.
struct Bitset {
  std::vector<uint64_t> words;
  uint32_t word0 = 0;
  explicit Bitset(const Tokens& v) {
    if (v.empty()) return;
    word0 = v.front() / 64;
    words.assign(v.back() / 64 - word0 + 1, 0);
    for (uint32_t t : v) words[t / 64 - word0] |= uint64_t{1} << (t % 64);
  }
  uint32_t num_words() const { return static_cast<uint32_t>(words.size()); }
};

TEST(ContainerKernelTest, EveryContainerPairMatchesScalarReference) {
  for (const auto& [a, b] : AdversarialPairs()) {
    const uint64_t expected = Ref(a, b);
    const Bitset ba(a), bb(b);
    std::vector<TokenRun> ra, rb;
    AppendTokenRuns(a.data(), a.size(), &ra);
    AppendTokenRuns(b.data(), b.size(), &rb);
    ASSERT_EQ(CountTokenRuns(a.data(), a.size()), ra.size());
    EXPECT_EQ(BitsetBitsetOverlap(ba.words.data(), ba.word0, ba.num_words(),
                                  bb.words.data(), bb.word0, bb.num_words()),
              expected);
    EXPECT_EQ(BitsetArrayOverlap(ba.words.data(), ba.word0, ba.num_words(),
                                 /*base=*/0, b.data(), b.size()),
              expected);
    EXPECT_EQ(BitsetRunsOverlap(ba.words.data(), ba.word0, ba.num_words(),
                                /*base=*/0, rb.data(), rb.size()),
              expected);
    EXPECT_EQ(RunsRunsOverlap(ra.data(), ra.size(), rb.data(), rb.size()),
              expected);
    EXPECT_EQ(RunsArrayOverlap(ra.data(), ra.size(), b.data(), b.size()),
              expected);
    EXPECT_EQ(RunsArrayOverlap(rb.data(), rb.size(), a.data(), a.size()),
              expected);
  }
}

TEST(ContainerKernelTest, SealClassifiesContainers) {
  SegmentBatch batch;
  const Tokens consecutive = Iota(100, 48);        // 1 run -> kRuns
  const Tokens dense = Iota(0, 64, 2);             // 2 tokens/word -> kBitset
  const Tokens sparse = Iota(0, 64, 97);           // spread out -> kArray
  const Tokens tiny = Iota(0, 8);                  // below min size -> kArray
  for (const Tokens* t : {&consecutive, &dense, &sparse, &tiny}) {
    batch.Append(static_cast<RecordId>(batch.size()),
                 static_cast<uint32_t>(t->size()), 0, t->data(), t->size());
  }
  batch.Seal();
  EXPECT_EQ(batch.container(0), SegContainer::kRuns);
  EXPECT_EQ(batch.container(1), SegContainer::kBitset);
  EXPECT_EQ(batch.container(2), SegContainer::kArray);
  EXPECT_EQ(batch.container(3), SegContainer::kArray);
  EXPECT_EQ(batch.num_runs(0), 1u);
  EXPECT_EQ(batch.bitset_word0(1), 0u);
  EXPECT_EQ(batch.bitset_num_words(1), 2u);
  // The token arrays stay available regardless of container.
  EXPECT_EQ(batch.length(0), 48u);
  EXPECT_EQ(batch.tokens(0)[0], 100u);
  EXPECT_STREQ(SegContainerName(batch.container(0)), "runs");
}

TEST(KernelRegistryTest, EveryShapeHasAUniquelyNamedPipeline) {
  const KernelRegistry& registry = KernelRegistry::Get();
  const std::vector<std::string> names = registry.Names();
  EXPECT_EQ(names.size(), 3u * kNumFilterMasks * 3u);
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()).size(),
            names.size());
  for (const std::string& name : names) {
    EXPECT_NE(registry.LookupByName(name), nullptr) << name;
  }
  EXPECT_EQ(registry.LookupByName("prefix/none/warp"), nullptr);
  for (JoinMethod method :
       {JoinMethod::kLoop, JoinMethod::kIndex, JoinMethod::kPrefix}) {
    for (uint32_t mask = 0; mask < kNumFilterMasks; ++mask) {
      for (exec::KernelMode kernel :
           {exec::KernelMode::kScalar, exec::KernelMode::kPacked,
            exec::KernelMode::kSimd}) {
        const PipelineShape shape{method, mask, kernel};
        EXPECT_NE(registry.Lookup(shape), nullptr);
        EXPECT_EQ(registry.LookupByName(KernelRegistry::ShapeName(shape)),
                  registry.Lookup(shape))
            << KernelRegistry::ShapeName(shape);
      }
    }
  }
  EXPECT_EQ(KernelRegistry::ShapeName(
                PipelineShape{JoinMethod::kPrefix, kNumFilterMasks - 1,
                              exec::KernelMode::kSimd}),
            "prefix/strl+segl+segi+segd/simd");
  EXPECT_EQ(KernelRegistry::ShapeName(
                PipelineShape{JoinMethod::kLoop, 0, exec::KernelMode::kScalar}),
            "loop/none/scalar");
}

TEST(KernelRegistryTest, ShapeOfResolvesAuto) {
  FragmentJoinOptions opts;
  opts.kernel = exec::KernelMode::kAuto;
  const PipelineShape shape = ShapeOf(opts);
  EXPECT_NE(shape.kernel, exec::KernelMode::kAuto);
  EXPECT_EQ(shape.kernel, SimdAvailable() ? exec::KernelMode::kSimd
                                          : exec::KernelMode::kPacked);
  EXPECT_EQ(shape.filter_mask, kNumFilterMasks - 1);  // all filters default-on
  {
    ScopedSimdIsaOverride force(SimdIsa::kScalar);
    EXPECT_EQ(ShapeOf(opts).kernel, exec::KernelMode::kPacked);
  }
}

std::vector<SegmentRecord> RandomFragment(Rng& rng, size_t n) {
  std::vector<SegmentRecord> segments;
  for (size_t i = 0; i < n; ++i) {
    SegmentRecord seg;
    seg.rid = static_cast<RecordId>(i);
    // Mix of shapes so Seal produces all three containers: clustered rank
    // blocks (runs), dense stripes (bitset) and sparse picks (array).
    const int shape = static_cast<int>(rng.NextBounded(3));
    if (shape == 0) {
      const uint32_t start = static_cast<uint32_t>(rng.NextBounded(40));
      for (uint32_t r = 0; r < 20 + rng.NextBounded(20); ++r) {
        seg.tokens.push_back(start + r);
      }
    } else {
      for (uint32_t r = 0; r < 80; ++r) {
        if (rng.NextBool(shape == 1 ? 0.6 : 0.2)) seg.tokens.push_back(r);
      }
    }
    if (seg.tokens.empty()) seg.tokens.push_back(1);
    seg.head = static_cast<uint32_t>(rng.NextBounded(6));
    const uint32_t tail = static_cast<uint32_t>(rng.NextBounded(6));
    seg.record_size =
        seg.head + static_cast<uint32_t>(seg.tokens.size()) + tail;
    segments.push_back(std::move(seg));
  }
  return segments;
}

bool SamePartials(const std::vector<PartialOverlap>& x,
                  const std::vector<PartialOverlap>& y) {
  if (x.size() != y.size()) return false;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i].a != y[i].a || x[i].b != y[i].b || x[i].overlap != y[i].overlap ||
        x[i].size_a != y[i].size_a || x[i].size_b != y[i].size_b) {
      return false;
    }
  }
  return true;
}

/// All kernel modes must emit identical partials in identical order, with
/// identical counters up to the documented empty_overlap/pruned_segi
/// attribution shift of kSimd (the sum of the two is invariant).
TEST(KernelPipelineTest, KernelModesProduceIdenticalJoins) {
  Rng rng(4242);
  for (int iter = 0; iter < 12; ++iter) {
    const std::vector<SegmentRecord> fragment = RandomFragment(rng, 30);
    for (JoinMethod method :
         {JoinMethod::kLoop, JoinMethod::kIndex, JoinMethod::kPrefix}) {
      FragmentJoinOptions opts;
      opts.theta = 0.5 + 0.1 * (iter % 5);
      opts.method = method;
      if (iter % 3 == 0) {
        opts.use_length_filter = rng.NextBool(0.5);
        opts.use_segment_length_filter = rng.NextBool(0.5);
        opts.use_segment_intersection_filter = rng.NextBool(0.5);
        opts.use_segment_difference_filter = rng.NextBool(0.5);
      }

      opts.kernel = exec::KernelMode::kScalar;
      std::vector<PartialOverlap> scalar_out;
      FilterCounters scalar_counters;
      JoinFragment(fragment, opts, &scalar_out, &scalar_counters);

      auto check = [&](exec::KernelMode kernel, bool force_scalar_isa) {
        ScopedSimdIsaOverride force(force_scalar_isa ? SimdIsa::kScalar
                                                     : DetectedSimdIsa());
        FragmentJoinOptions k_opts = opts;
        k_opts.kernel = kernel;
        std::vector<PartialOverlap> out;
        FilterCounters c;
        JoinFragment(fragment, k_opts, &out, &c);
        const std::string label =
            std::string(exec::KernelModeName(kernel)) +
            (force_scalar_isa ? "/scalar-isa" : "/native-isa");
        EXPECT_TRUE(SamePartials(scalar_out, out)) << label;
        EXPECT_EQ(c.pairs_considered, scalar_counters.pairs_considered);
        EXPECT_EQ(c.pruned_role, scalar_counters.pruned_role) << label;
        EXPECT_EQ(c.pruned_strl, scalar_counters.pruned_strl) << label;
        EXPECT_EQ(c.pruned_segl, scalar_counters.pruned_segl) << label;
        EXPECT_EQ(c.pruned_segd, scalar_counters.pruned_segd) << label;
        EXPECT_EQ(c.emitted, scalar_counters.emitted) << label;
        EXPECT_EQ(c.empty_overlap + c.pruned_segi,
                  scalar_counters.empty_overlap + scalar_counters.pruned_segi)
            << label;
        if (exec::ResolveKernelMode(kernel) != exec::KernelMode::kSimd) {
          // Only kSimd may shift attribution between the two buckets.
          EXPECT_EQ(c.empty_overlap, scalar_counters.empty_overlap) << label;
          EXPECT_EQ(c.pruned_segi, scalar_counters.pruned_segi) << label;
        }
      };
      check(exec::KernelMode::kPacked, false);
      check(exec::KernelMode::kSimd, false);
      check(exec::KernelMode::kSimd, true);  // forced scalar fallback
      check(exec::KernelMode::kAuto, false);
    }
  }
}

/// kSimd's attribution shift must itself be deterministic: two kSimd runs
/// (serial vs morsel-parallel) agree exactly, counter for counter.
TEST(KernelPipelineTest, SimdCountersAreDeterministicAcrossMorsels) {
  Rng rng(77);
  const std::vector<SegmentRecord> fragment = RandomFragment(rng, 40);
  ThreadPool pool(3);
  for (JoinMethod method : {JoinMethod::kLoop, JoinMethod::kPrefix}) {
    FragmentJoinOptions serial;
    serial.method = method;
    serial.kernel = exec::KernelMode::kSimd;
    std::vector<PartialOverlap> serial_out;
    FilterCounters serial_counters;
    JoinFragment(fragment, serial, &serial_out, &serial_counters);

    FragmentJoinOptions morsel = serial;
    morsel.morsel_pool = &pool;
    morsel.morsel_size = 7;
    std::vector<PartialOverlap> morsel_out;
    FilterCounters morsel_counters;
    JoinFragment(fragment, morsel, &morsel_out, &morsel_counters);

    EXPECT_TRUE(SamePartials(serial_out, morsel_out));
    EXPECT_EQ(serial_counters.empty_overlap, morsel_counters.empty_overlap);
    EXPECT_EQ(serial_counters.pruned_segi, morsel_counters.pruned_segi);
    EXPECT_EQ(serial_counters.emitted, morsel_counters.emitted);
  }
}

}  // namespace
}  // namespace fsjoin
