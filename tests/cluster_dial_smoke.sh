#!/usr/bin/env bash
# Dial-mode smoke test for the standalone worker binary: start two
# fsjoin_worker processes, join through them with `fsjoin_cli --runner
# cluster --workers host:port,...`, and require byte-identical output to
# the inline runner. This is the only place the shipped fsjoin_worker
# binary (rather than a re-execed test binary) executes tasks, so it
# guards the force-link of the core task factories into that binary — a
# static archive drops unreferenced objects, and the worker reaches
# "core.ordering" purely by name over the wire.
set -euo pipefail
worker=$1
cli=$2

tmp=$(mktemp -d)
w1=
w2=
cleanup() {
  [[ -n "$w1" ]] && kill "$w1" 2>/dev/null
  [[ -n "$w2" ]] && kill "$w2" 2>/dev/null
  rm -rf "$tmp"
  return 0
}
trap cleanup EXIT

printf 'a b c d e\na b c d f\nx y z w\nx y z q\na b c e f\n' \
  > "$tmp/corpus.txt"

# Pid-derived ports; the cluster tier runs serially so collisions with
# other tests are not a concern, and a clash with an unrelated process
# fails loudly at bind time.
p1=$((20000 + $$ % 20000))
p2=$((p1 + 1))

"$worker" --listen "127.0.0.1:$p1" &
w1=$!
"$worker" --listen "127.0.0.1:$p2" &
w2=$!

# Wait for both control ports to reach LISTEN before dialing. A probe
# connection would be accepted as the coordinator (workers serve exactly
# one session), so read kernel state instead of connecting.
listening() {
  grep -qi ":$(printf '%04X' "$1") 00000000:0000 0A" /proc/net/tcp
}
for port in "$p1" "$p2"; do
  for _ in $(seq 1 100); do
    listening "$port" && break
    sleep 0.1
  done
  listening "$port" || { echo "worker on port $port never listened" >&2; exit 1; }
done

"$cli" --input "$tmp/corpus.txt" --theta 0.6 > "$tmp/inline.txt"
"$cli" --input "$tmp/corpus.txt" --theta 0.6 --runner cluster \
  --workers "127.0.0.1:$p1,127.0.0.1:$p2" > "$tmp/dial.txt"

# Both workers must exit 0 on the coordinator's shutdown frame.
wait "$w1"
wait "$w2"
w1=
w2=

diff -u "$tmp/inline.txt" "$tmp/dial.txt"
echo "dial-mode output identical to inline ($(wc -l < "$tmp/dial.txt") pairs)"
