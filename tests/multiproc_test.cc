// Cross-process tests of the coordinator/runner split (ctest label
// `multiproc`): result-digest identity across the inline, thread-pool and
// forked-subprocess runners on both backends for FS-Join and all three
// baselines; fault injection showing a killed task re-executed to the
// correct result without double-counted metrics; the task interchange
// files crossing a real process boundary (byte identity plus every
// corruption class the run-file format detects); and scratch-directory
// lifetime when children crash.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "baselines/massjoin.h"
#include "baselines/vernica_join.h"
#include "baselines/vsmart_join.h"
#include "check/invariants.h"
#include "core/fsjoin.h"
#include "mr/engine.h"
#include "mr/runner.h"
#include "mr/task.h"
#include "mr/worker.h"
#include "store/run_file.h"
#include "store/temp_dir.h"
#include "test_util.h"
#include "util/status.h"

namespace fsjoin {
namespace {

using mr::RunnerKind;
using mr::TaskKind;
using mr::TaskSpec;

/// Installs a subprocess fault hook for one test and always clears it.
class ScopedFaultHook {
 public:
  explicit ScopedFaultHook(std::function<bool(const TaskSpec&)> hook) {
    mr::SetSubprocessTaskFaultHook(std::move(hook));
  }
  ~ScopedFaultHook() { mr::SetSubprocessTaskFaultHook(nullptr); }
};

constexpr RunnerKind kAllRunners[] = {RunnerKind::kInline, RunnerKind::kThreads,
                                      RunnerKind::kSubprocess};

void ExpectDatasetsEqual(const mr::Dataset& got, const mr::Dataset& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, want[i].key) << "record " << i;
    EXPECT_EQ(got[i].value, want[i].value) << "record " << i;
  }
}
constexpr exec::BackendKind kBothBackends[] = {exec::BackendKind::kMapReduce,
                                               exec::BackendKind::kFusedFlow};

exec::ExecConfig SmallExec(exec::BackendKind backend, RunnerKind runner) {
  exec::ExecConfig config;
  config.backend = backend;
  config.runner = runner;
  config.num_map_tasks = 3;
  config.num_reduce_tasks = 3;
  config.num_threads = 2;
  return config;
}

TEST(MultiprocTest, WorkerModeIsInstalledInTestBinaries) {
  // fsjoin_gtest_main.cc routed main() through the --worker-task hook, so
  // the subprocess runner may re-exec this binary for factory-named tasks.
  EXPECT_TRUE(mr::WorkerModeAvailable());
  EXPECT_TRUE(mr::HasTaskFactory("core.ordering"));
}

TEST(MultiprocTest, DigestsIdenticalAcrossRunnersBackendsAlgorithms) {
  const Corpus corpus = testing::RandomCorpus(48, 60, 0.8, 8.0, 11);
  const double theta = 0.6;

  for (int algorithm = 0; algorithm < 4; ++algorithm) {
    std::optional<uint32_t> reference;
    std::optional<size_t> reference_pairs;
    for (exec::BackendKind backend : kBothBackends) {
      for (RunnerKind runner : kAllRunners) {
        JoinResultSet pairs;
        std::string cell;
        switch (algorithm) {
          case 0: {
            FsJoinConfig config;
            config.theta = theta;
            config.num_vertical_partitions = 4;
            config.num_horizontal_partitions = 1;
            config.exec = SmallExec(backend, runner);
            auto out = FsJoin(config).Run(corpus);
            ASSERT_TRUE(out.ok()) << out.status().ToString();
            pairs = std::move(out->pairs);
            cell = "fsjoin";
            break;
          }
          case 1: {
            BaselineConfig config;
            config.theta = theta;
            config.exec = SmallExec(backend, runner);
            auto out = RunVernicaJoin(corpus, config);
            ASSERT_TRUE(out.ok()) << out.status().ToString();
            pairs = std::move(out->pairs);
            cell = "vernica";
            break;
          }
          case 2: {
            BaselineConfig config;
            config.theta = theta;
            config.exec = SmallExec(backend, runner);
            auto out = RunVSmartJoin(corpus, config);
            ASSERT_TRUE(out.ok()) << out.status().ToString();
            pairs = std::move(out->pairs);
            cell = "vsmart";
            break;
          }
          default: {
            MassJoinConfig config;
            config.theta = theta;
            config.exec = SmallExec(backend, runner);
            config.length_group = 2;
            auto out = RunMassJoin(corpus, config);
            ASSERT_TRUE(out.ok()) << out.status().ToString();
            pairs = std::move(out->pairs);
            cell = "massjoin";
            break;
          }
        }
        const uint32_t digest = check::ResultDigest(pairs);
        if (!reference) {
          reference = digest;
          reference_pairs = pairs.size();
          EXPECT_GT(pairs.size(), 0u) << cell << ": degenerate corpus";
        }
        EXPECT_EQ(digest, *reference)
            << cell << " backend=" << exec::BackendKindName(backend)
            << " runner=" << mr::RunnerKindName(runner);
        EXPECT_EQ(pairs.size(), *reference_pairs);
      }
    }
  }
}

// ---- Fault injection: killed tasks are re-executed -------------------

class PassThroughMapper : public mr::Mapper {
 public:
  Status Map(const mr::KeyValue& record, mr::Emitter* out) override {
    out->Emit(record.key, record.value);
    return Status::OK();
  }
};

class CountReducer : public mr::Reducer {
 public:
  Status Reduce(std::string_view key, mr::ValueList values,
                mr::Emitter* out) override {
    out->Emit(key, std::to_string(values.size()));
    return Status::OK();
  }
};

mr::JobConfig CountJob() {
  mr::JobConfig config;
  config.name = "count";
  config.num_map_tasks = 3;
  config.num_reduce_tasks = 3;
  config.mapper_factory = [] { return std::make_unique<PassThroughMapper>(); };
  config.reducer_factory = [] { return std::make_unique<CountReducer>(); };
  return config;
}

mr::Dataset CountInput() {
  mr::Dataset input;
  for (int i = 0; i < 40; ++i) {
    input.push_back({"k" + std::to_string(i % 7), "x"});
  }
  return input;
}

TEST(MultiprocTest, KilledReduceTaskIsReExecutedWithoutDoubleCounting) {
  const mr::Dataset input = CountInput();

  mr::Dataset clean_output;
  mr::JobMetrics clean_metrics;
  {
    mr::EngineOptions options;
    options.runner = RunnerKind::kInline;
    mr::Engine engine(options);
    ASSERT_TRUE(
        engine.Run(CountJob(), input, &clean_output, &clean_metrics).ok());
  }

  // Kill reduce task 1's first attempt: the child writes a torn .dat and
  // dies with a non-protocol exit code. The scheduler must detect it and
  // re-execute to the same result.
  ScopedFaultHook hook([](const TaskSpec& spec) {
    return spec.kind == TaskKind::kReduce && spec.task_index == 1 &&
           spec.attempt == 0;
  });
  mr::EngineOptions options;
  options.runner = RunnerKind::kSubprocess;
  options.task_retries = 2;
  mr::Engine engine(options);
  mr::Dataset output;
  mr::JobMetrics metrics;
  const Status st = engine.Run(CountJob(), input, &output, &metrics);
  ASSERT_TRUE(st.ok()) << st.ToString();

  ExpectDatasetsEqual(output, clean_output);
  // Exactly one logical task ran twice; metrics describe the final
  // successful attempt only, so the aggregates match the clean run.
  ASSERT_EQ(metrics.reduce_tasks.size(), clean_metrics.reduce_tasks.size());
  EXPECT_EQ(metrics.reduce_tasks[1].attempts, 2u);
  for (size_t t = 0; t < metrics.reduce_tasks.size(); ++t) {
    if (t != 1) {
      EXPECT_EQ(metrics.reduce_tasks[t].attempts, 1u);
    }
  }
  EXPECT_EQ(metrics.map_output_records, clean_metrics.map_output_records);
  EXPECT_EQ(metrics.shuffle_records, clean_metrics.shuffle_records);
  EXPECT_EQ(metrics.shuffle_bytes, clean_metrics.shuffle_bytes);
  EXPECT_EQ(metrics.reduce_output_records,
            clean_metrics.reduce_output_records);
  EXPECT_EQ(metrics.reduce_output_bytes, clean_metrics.reduce_output_bytes);
}

TEST(MultiprocTest, RetryBudgetExhaustionFailsTheJob) {
  ScopedFaultHook hook([](const TaskSpec& spec) {
    return spec.kind == TaskKind::kReduce && spec.task_index == 0;
  });
  mr::EngineOptions options;
  options.runner = RunnerKind::kSubprocess;
  options.task_retries = 1;
  mr::Engine engine(options);
  mr::Dataset output;
  mr::JobMetrics metrics;
  const Status st = engine.Run(CountJob(), CountInput(), &output, &metrics);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("failed after 2 attempt(s)"),
            std::string::npos)
      << st.ToString();
}

TEST(MultiprocTest, KilledFilteringTaskReRunsToIdenticalFsJoinResult) {
  const Corpus corpus = testing::RandomCorpus(40, 50, 0.8, 8.0, 5);
  FsJoinConfig config;
  config.theta = 0.6;
  config.num_vertical_partitions = 4;
  config.exec = SmallExec(exec::BackendKind::kMapReduce,
                          RunnerKind::kSubprocess);

  auto clean = FsJoin(config).Run(corpus);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  ScopedFaultHook hook([](const TaskSpec& spec) {
    return spec.job_name == "filtering" && spec.kind == TaskKind::kReduce &&
           spec.task_index == 0 && spec.attempt == 0;
  });
  auto faulted = FsJoin(config).Run(corpus);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();

  EXPECT_EQ(check::ResultDigest(faulted->pairs),
            check::ResultDigest(clean->pairs));
  // The re-run task's side-channel deltas (filter counters) merged exactly
  // once: the shared counters equal the clean run's.
  EXPECT_EQ(faulted->report.filters.emitted, clean->report.filters.emitted);
  EXPECT_EQ(faulted->report.filters.pairs_considered,
            clean->report.filters.pairs_considered);
  ASSERT_GT(faulted->report.filtering_job.reduce_tasks.size(), 0u);
  EXPECT_EQ(faulted->report.filtering_job.reduce_tasks[0].attempts, 2u);
}

// ---- Task interchange files across a real process boundary -----------

mr::TaskOutput SampleOutput() {
  mr::TaskOutput out;
  for (int i = 0; i < 100; ++i) {
    out.records.push_back(
        {"key" + std::to_string(i), "value-" + std::to_string(i * 3)});
  }
  out.metrics.input_records = 100;
  out.metrics.input_bytes = 1234;
  out.metrics.output_records = 100;
  out.metrics.max_group_bytes = 77;
  out.side_state = std::string("side\0bytes", 10);
  return out;
}

/// Writes SampleOutput() under `base` in a forked child; returns the
/// child's exit code (0 on success).
int WriteOutputInChild(const std::string& base) {
  const pid_t pid = fork();
  if (pid == 0) {
    const Status st = mr::WriteTaskOutputFiles(base, SampleOutput());
    _exit(st.ok() ? 0 : 1);
  }
  int wait_status = 0;
  waitpid(pid, &wait_status, 0);
  return WIFEXITED(wait_status) ? WEXITSTATUS(wait_status) : -1;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void Dump(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class InterchangeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = store::TempSpillDir::Create("", "fsjoin-multiproc");
    ASSERT_TRUE(dir.ok()) << dir.status().ToString();
    dir_.emplace(std::move(dir).value());
    base_ = dir_->path() + "/task-t0-a0";
    ASSERT_EQ(WriteOutputInChild(base_), 0);
  }

  std::optional<store::TempSpillDir> dir_;
  std::string base_;
};

TEST_F(InterchangeTest, ChildWrittenOutputReadsBackByteIdentical) {
  mr::TaskOutput read;
  const Status st = mr::ReadTaskOutputFiles(base_, &read);
  ASSERT_TRUE(st.ok()) << st.ToString();
  const mr::TaskOutput expected = SampleOutput();
  ExpectDatasetsEqual(read.records, expected.records);
  EXPECT_EQ(read.side_state, expected.side_state);
  EXPECT_EQ(read.metrics.input_records, expected.metrics.input_records);
  EXPECT_EQ(read.metrics.input_bytes, expected.metrics.input_bytes);
  EXPECT_EQ(read.metrics.output_records, expected.metrics.output_records);
  EXPECT_EQ(read.metrics.max_group_bytes, expected.metrics.max_group_bytes);
}

TEST_F(InterchangeTest, EveryBitFlipInChildOutputIsDetected) {
  const std::string good = Slurp(base_ + ".dat");
  ASSERT_GT(good.size(), store::kRunFooterBytes);
  for (size_t i = 0; i < good.size(); i += 7) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    Dump(base_ + ".dat", bad);
    mr::TaskOutput read;
    const Status st = mr::ReadTaskOutputFiles(base_, &read);
    ASSERT_FALSE(st.ok()) << "flip at offset " << i << " went unnoticed";
    EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
  }
}

TEST_F(InterchangeTest, TruncationsOfChildOutputAreDetected) {
  const std::string good = Slurp(base_ + ".dat");
  for (size_t keep :
       {good.size() - 1, good.size() - store::kRunFooterBytes,
        good.size() / 2, store::kRunFooterBytes, size_t{1}}) {
    Dump(base_ + ".dat", good.substr(0, keep));
    mr::TaskOutput read;
    const Status st = mr::ReadTaskOutputFiles(base_, &read);
    ASSERT_FALSE(st.ok()) << "truncation to " << keep << " went unnoticed";
    EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
  }
}

TEST_F(InterchangeTest, ShortResultFileIsCorruption) {
  Dump(base_ + ".res", "tiny");
  mr::TaskOutput read;
  const Status st = mr::ReadTaskOutputFiles(base_, &read);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
}

TEST_F(InterchangeTest, AppendedGarbageIsDetected) {
  const std::string good = Slurp(base_ + ".dat");
  const std::string body =
      good.substr(0, good.size() - store::kRunFooterBytes);
  const std::string footer = good.substr(good.size() - store::kRunFooterBytes);
  Dump(base_ + ".dat", body + body + footer);
  mr::TaskOutput read;
  const Status st = mr::ReadTaskOutputFiles(base_, &read);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
}

TEST_F(InterchangeTest, MissingFilesAreIoErrors) {
  std::filesystem::remove(base_ + ".dat");
  mr::TaskOutput read;
  Status st = mr::ReadTaskOutputFiles(base_, &read);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError) << st.ToString();

  // Rewrite, then drop the result file instead.
  ASSERT_EQ(WriteOutputInChild(base_), 0);
  std::filesystem::remove(base_ + ".res");
  st = mr::ReadTaskOutputFiles(base_, &read);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError) << st.ToString();
}

// ---- Scratch-directory lifetime across processes ---------------------

size_t EntriesUnder(const std::string& dir) {
  size_t n = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator(dir)) {
    n += 1;
  }
  return n;
}

TEST(MultiprocTest, CrashedChildLeavesNoStrayScratchFiles) {
  auto base = store::TempSpillDir::Create("", "fsjoin-scratch-base");
  ASSERT_TRUE(base.ok());

  // Success path: one task crashes once, the job retries and succeeds —
  // the job's scratch subdirectory (torn attempt files included) is gone.
  {
    ScopedFaultHook hook([](const TaskSpec& spec) {
      return spec.kind == TaskKind::kReduce && spec.task_index == 1 &&
             spec.attempt == 0;
    });
    mr::EngineOptions options;
    options.runner = RunnerKind::kSubprocess;
    options.task_retries = 2;
    options.spill_dir = base->path();
    mr::Engine engine(options);
    mr::Dataset output;
    mr::JobMetrics metrics;
    ASSERT_TRUE(engine.Run(CountJob(), CountInput(), &output, &metrics).ok());
  }
  EXPECT_EQ(EntriesUnder(base->path()), 0u);

  // Failure path: the task crashes on every attempt, the job fails — the
  // scratch subdirectory must still be removed by the parent.
  {
    ScopedFaultHook hook([](const TaskSpec& spec) {
      return spec.kind == TaskKind::kReduce && spec.task_index == 1;
    });
    mr::EngineOptions options;
    options.runner = RunnerKind::kSubprocess;
    options.task_retries = 1;
    options.spill_dir = base->path();
    mr::Engine engine(options);
    mr::Dataset output;
    mr::JobMetrics metrics;
    ASSERT_FALSE(engine.Run(CountJob(), CountInput(), &output, &metrics).ok());
  }
  EXPECT_EQ(EntriesUnder(base->path()), 0u);
}

TEST(MultiprocTest, ChildProcessCannotRemoveParentScratch) {
  auto dir = store::TempSpillDir::Create("", "fsjoin-owner");
  ASSERT_TRUE(dir.ok());
  std::ofstream(dir->path() + "/keep.txt") << "payload";

  const pid_t pid = fork();
  if (pid == 0) {
    // Inherited handle: cleanup in the child must be a no-op (the pid
    // guard), both explicitly and via destructor at scope exit.
    dir->RemoveNow();
    _exit(0);
  }
  int wait_status = 0;
  waitpid(pid, &wait_status, 0);
  ASSERT_TRUE(WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 0);

  EXPECT_TRUE(std::filesystem::exists(dir->path() + "/keep.txt"))
      << "child removed the parent's scratch";
  const std::string path = dir->path();
  dir->RemoveNow();
  EXPECT_FALSE(std::filesystem::exists(path));
}

// A fork-mode child that wedges before reaching task code — the real-world
// case is a COW-copied allocator lock inherited from a parent thread that
// was mid-malloc at fork() time — must not hang the job behind a blocking
// waitpid. The runner kills the child at the attempt deadline and surfaces
// a retryable error for the scheduler's budget to absorb.
TEST(SubprocessRunnerTest, WedgedForkChildIsKilledAtAttemptDeadline) {
  auto dir = store::TempSpillDir::Create("", "fsjoin-multiproc");
  ASSERT_TRUE(dir.ok()) << dir.status().ToString();

  ASSERT_EQ(setenv("FSJOIN_TASK_TIMEOUT_MS", "300", /*overwrite=*/1), 0);

  mr::TaskSpec spec;
  spec.job_name = "wedged";
  spec.kind = mr::TaskKind::kMap;
  spec.output_base = dir->path() + "/task-t0";
  // No factory name: forces fork mode, so the child runs this closure.
  const mr::TaskBody body = [](const mr::TaskSpec&, mr::TaskOutput*) -> Status {
    while (true) ::pause();
    return Status::OK();  // unreachable
  };

  mr::SubprocessRunner runner(/*num_threads=*/0);
  mr::TaskOutput out;
  const auto start = std::chrono::steady_clock::now();
  const Status st = runner.RunAttempt(spec, body, mr::TaskSideChannel{}, &out);
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  ASSERT_EQ(unsetenv("FSJOIN_TASK_TIMEOUT_MS"), 0);

  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("timed out"), std::string::npos)
      << st.ToString();
  EXPECT_LT(elapsed_ms, 10'000)
      << "runner waited past the deadline on a wedged child";
}

}  // namespace
}  // namespace fsjoin
