// Cost-based auto-tuning (DESIGN.md §5i): sampling statistics, pivot
// refinement, the per-fragment decision layer, and the --auto end-to-end
// identity — tuned runs must produce byte-identical results to hand-set
// configurations, only faster.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "check/invariants.h"
#include "core/fsjoin.h"
#include "core/pivots.h"
#include "test_util.h"
#include "tune/decision.h"
#include "tune/pivot_refiner.h"
#include "tune/stats.h"
#include "tune/tuner.h"
#include "util/random.h"

namespace fsjoin {
namespace {

using testing::CorpusFromTokenSets;
using testing::RandomCorpus;

// ---- Sampling statistics --------------------------------------------------

TEST(SampleStatsTest, RateOneIsExactDictionary) {
  Corpus corpus = RandomCorpus(400, 900, 0.8, 12.0, 11);
  tune::SampleStats stats = tune::SampleCorpusStats(corpus, 1.0, 99);
  EXPECT_EQ(stats.sampled_records, corpus.NumRecords());
  EXPECT_EQ(stats.sampled_tokens, corpus.TotalTokens());
  ASSERT_EQ(stats.sampled_frequency.size(), corpus.dictionary.size());
  for (TokenId t = 0; t < corpus.dictionary.size(); ++t) {
    EXPECT_EQ(stats.sampled_frequency[t], corpus.dictionary.Frequency(t))
        << "token " << t;
    EXPECT_DOUBLE_EQ(stats.EstimatedFrequency(t),
                     static_cast<double>(corpus.dictionary.Frequency(t)));
  }
}

TEST(SampleStatsTest, SamplesAreNestedAcrossRates) {
  // The per-record uniform is fixed by (seed, rid), so the sample at a low
  // rate is a subset of the sample at any higher rate — the property that
  // makes the convergence below monotone in expectation.
  const uint64_t seed = 1234;
  const double rates[] = {0.05, 0.1, 0.25, 0.5, 0.9, 1.0};
  for (RecordId rid = 0; rid < 5000; ++rid) {
    bool prev = false;
    for (double rate : rates) {
      const bool cur = tune::SampleIncludesRecord(seed, rid, rate);
      EXPECT_FALSE(prev && !cur)
          << "rid " << rid << " dropped when the rate increased to " << rate;
      prev = cur;
    }
    EXPECT_TRUE(tune::SampleIncludesRecord(seed, rid, 1.0));
    EXPECT_FALSE(tune::SampleIncludesRecord(seed, rid, 0.0));
  }
}

TEST(SampleStatsTest, FrequencyEstimatesConvergeToExactCounts) {
  // The satellite property: as rate -> 1 the Horvitz–Thompson estimates
  // converge to the exact dictionary counts. Nested samples make the error
  // sequence decrease essentially monotonically; we assert a weakly
  // decreasing trend with slack for sampling noise, and exactness at 1.0.
  Corpus corpus = RandomCorpus(3000, 1200, 0.9, 14.0, 23);
  const uint64_t seed = 7;
  const double rates[] = {0.1, 0.25, 0.5, 0.75, 1.0};
  std::vector<double> errors;
  for (double rate : rates) {
    tune::SampleStats stats = tune::SampleCorpusStats(corpus, rate, seed);
    double abs_err = 0.0, total = 0.0;
    for (TokenId t = 0; t < corpus.dictionary.size(); ++t) {
      const double exact = static_cast<double>(corpus.dictionary.Frequency(t));
      abs_err += std::fabs(stats.EstimatedFrequency(t) - exact);
      total += exact;
    }
    errors.push_back(abs_err / total);  // relative L1 error
  }
  EXPECT_EQ(errors.back(), 0.0) << "rate 1.0 must be exact";
  // Each halving-ish step may wobble, but the end must beat the start
  // decisively and no step may blow the error up.
  EXPECT_LT(errors[3], errors[0] * 0.75);
  for (size_t i = 1; i < errors.size(); ++i) {
    EXPECT_LT(errors[i], errors[i - 1] + 0.05)
        << "error regressed sharply between rates " << rates[i - 1] << " and "
        << rates[i];
  }
}

TEST(SampleStatsTest, DegenerateCorpora) {
  // Empty corpus.
  {
    Corpus empty;
    tune::SampleStats stats = tune::SampleCorpusStats(empty, 0.5, 1);
    EXPECT_EQ(stats.sampled_records, 0u);
    EXPECT_EQ(stats.sampled_tokens, 0u);
    EXPECT_TRUE(stats.sampled_frequency.empty());
    GlobalOrder order = GlobalOrder::FromCorpus(empty);
    tune::TuneOptions topt;
    tune::TunePlan plan = tune::PlanTuning(empty, order, topt);
    EXPECT_TRUE(plan.pivots.empty());
    EXPECT_EQ(plan.horizontal_t, 0u);
  }
  // Single-token records: one vocabulary entry, every estimate lands on it.
  {
    Corpus corpus = CorpusFromTokenSets({{1}, {1}, {1}, {1}});
    tune::SampleStats stats = tune::SampleCorpusStats(corpus, 1.0, 3);
    ASSERT_EQ(stats.sampled_frequency.size(), 1u);
    EXPECT_EQ(stats.sampled_frequency[0], 4u);
    GlobalOrder order = GlobalOrder::FromCorpus(corpus);
    tune::TuneOptions topt;
    topt.sample_rate = 1.0;
    tune::TunePlan plan = tune::PlanTuning(corpus, order, topt);
    EXPECT_EQ(plan.horizontal_t, 0u);  // one length window only
  }
  // All-duplicate records: tuning must not split what cannot be balanced.
  {
    Corpus corpus = CorpusFromTokenSets(
        {{1, 2, 3}, {1, 2, 3}, {1, 2, 3}, {1, 2, 3}, {1, 2, 3}});
    GlobalOrder order = GlobalOrder::FromCorpus(corpus);
    tune::TuneOptions topt;
    topt.sample_rate = 1.0;
    topt.num_fragments = 8;
    tune::TunePlan plan = tune::PlanTuning(corpus, order, topt);
    EXPECT_LE(plan.pivots.size(), 7u);
    EXPECT_TRUE(std::is_sorted(plan.pivots.begin(), plan.pivots.end()));
    // Identical lengths -> a single window -> horizontal stays off.
    EXPECT_EQ(plan.horizontal_t, 0u);
  }
}

// ---- Pivot refinement -----------------------------------------------------

TEST(PivotRefinerTest, PivotsAreStrictlyIncreasingAndInRange) {
  Corpus corpus = RandomCorpus(800, 600, 1.0, 10.0, 5);
  GlobalOrder order = GlobalOrder::FromCorpus(corpus);
  tune::SampleStats stats = tune::SampleCorpusStats(corpus, 1.0, 7);
  tune::PivotPlan plan = tune::RefinePivots(corpus, order, stats, 16, 3.0);
  EXPECT_LE(plan.pivots.size(), 15u);
  for (size_t i = 0; i < plan.pivots.size(); ++i) {
    EXPECT_LT(plan.pivots[i], order.NumTokens());
    if (i > 0) EXPECT_GT(plan.pivots[i], plan.pivots[i - 1]);
  }
  EXPECT_EQ(plan.est_load.size(), plan.pivots.size() + 1);
  EXPECT_EQ(plan.heavy.size(), plan.est_load.size());
}

TEST(PivotRefinerTest, RefinementBeatsEvenTfOnSkewedData) {
  // On a heavily skewed corpus the tuned boundaries must not be worse than
  // plain Even-TF under the refiner's own objective: total estimated join
  // cost, sum over fragments of segments^2/2 pairs plus a token scan term.
  Corpus corpus = RandomCorpus(2000, 500, 1.2, 16.0, 31);
  GlobalOrder order = GlobalOrder::FromCorpus(corpus);
  tune::SampleStats stats = tune::SampleCorpusStats(corpus, 1.0, 7);
  const uint32_t fragments = 12;
  tune::PivotPlan refined =
      tune::RefinePivots(corpus, order, stats, fragments, 3.0);
  std::vector<TokenRank> even =
      SelectPivots(order, PivotStrategy::kEvenTf, fragments - 1, /*seed=*/7);

  // Exact total cost of a pivot vector, computed from the full corpus.
  auto total_cost = [&](const std::vector<TokenRank>& pivots) {
    const size_t n = pivots.size() + 1;
    std::vector<uint64_t> segs(n, 0), toks(n, 0);
    for (const Record& rec : corpus.records) {
      std::vector<uint8_t> present(n, 0);
      for (TokenId t : rec.tokens) {
        const TokenRank rank = order.RankOf(t);
        const size_t frag =
            std::upper_bound(pivots.begin(), pivots.end(), rank) -
            pivots.begin();
        present[frag] = 1;
        toks[frag]++;
      }
      for (size_t f = 0; f < n; ++f) segs[f] += present[f];
    }
    double cost = 0.0;
    for (size_t f = 0; f < n; ++f) {
      const double s = static_cast<double>(segs[f]);
      cost += 0.5 * s * (s - 1.0) + static_cast<double>(toks[f]);
    }
    return cost;
  };
  EXPECT_LE(total_cost(refined.pivots), total_cost(even) * 1.1)
      << "refined pivots lost to Even-TF by more than 10% on the refiner's "
         "own objective";
}

// ---- Per-fragment decisions ----------------------------------------------

TEST(DecisionTest, ShapeThresholdsSelectExpectedMethods) {
  tune::TuningPolicy policy;  // calibrated defaults
  // Tiny fragment -> loop join, no index/prefix overhead to amortize.
  tune::FragmentShape tiny{/*num_segments=*/8, /*total_tokens=*/64,
                           /*max_segment_len=*/12};
  EXPECT_EQ(tune::ChooseFragmentPlan(tiny, policy).method, JoinMethod::kLoop);
  // Many short segments -> inverted index.
  tune::FragmentShape shorty{2000, 3500, 3};
  EXPECT_EQ(tune::ChooseFragmentPlan(shorty, policy).method,
            JoinMethod::kIndex);
  // Many long segments -> prefix join.
  tune::FragmentShape longy{2000, 60000, 64};
  EXPECT_EQ(tune::ChooseFragmentPlan(longy, policy).method,
            JoinMethod::kPrefix);
}

TEST(DecisionTest, DecisionIsAPureFunctionOfShape) {
  // Determinism across backends/runners hangs on this: equal aggregate
  // shapes give equal plans, regardless of how segments arrived.
  tune::TuningPolicy policy;
  tune::FragmentShape shape{137, 1900, 41};
  tune::FragmentPlan first = tune::ChooseFragmentPlan(shape, policy);
  for (int i = 0; i < 100; ++i) {
    tune::FragmentPlan again = tune::ChooseFragmentPlan(shape, policy);
    EXPECT_EQ(again.method, first.method);
    EXPECT_EQ(again.kernel, first.kernel);
  }
}

// ---- ExecConfig validation (satellite: contradictory knobs) ---------------

TEST(TuneConfigTest, SampleRateWithoutAutoIsRejected) {
  FsJoinConfig config;
  config.exec.tune_sample_rate = 0.3;  // but auto_tune left off
  Corpus corpus = CorpusFromTokenSets({{1, 2}, {1, 2}});
  auto out = FsJoin(config).Run(corpus);
  EXPECT_FALSE(out.ok());
}

TEST(TuneConfigTest, OutOfRangeSampleRateIsRejected) {
  FsJoinConfig config;
  config.exec.auto_tune = true;
  config.exec.tune_sample_rate = 1.5;
  Corpus corpus = CorpusFromTokenSets({{1, 2}, {1, 2}});
  EXPECT_FALSE(FsJoin(config).Run(corpus).ok());
  config.exec.tune_sample_rate = -0.1;
  EXPECT_FALSE(FsJoin(config).Run(corpus).ok());
}

// ---- End-to-end: --auto is byte-identical to hand-set configs -------------

TEST(AutoTuneEndToEndTest, AutoMatchesHandSetResultsExactly) {
  Corpus corpus = RandomCorpus(350, 400, 0.9, 11.0, 77);
  FsJoinConfig hand;
  hand.theta = 0.7;
  hand.num_vertical_partitions = 10;
  auto hand_out = FsJoin(hand).Run(corpus);
  ASSERT_TRUE(hand_out.ok()) << hand_out.status().ToString();

  for (double rate : {0.0, 0.25, 1.0}) {
    FsJoinConfig tuned = hand;
    tuned.exec.auto_tune = true;
    tuned.exec.tune_sample_rate = rate;
    auto tuned_out = FsJoin(tuned).Run(corpus);
    ASSERT_TRUE(tuned_out.ok()) << tuned_out.status().ToString();
    EXPECT_EQ(check::ResultDigest(tuned_out->pairs), check::ResultDigest(hand_out->pairs))
        << "--auto changed the result set at sample rate " << rate;
    EXPECT_TRUE(tuned_out->report.tuning.enabled);
    EXPECT_FALSE(tuned_out->report.tuning.lines.empty());
  }
}

TEST(AutoTuneEndToEndTest, AutoIsDeterministicAcrossRuns) {
  Corpus corpus = RandomCorpus(300, 350, 1.0, 12.0, 13);
  FsJoinConfig config;
  config.theta = 0.75;
  config.exec.auto_tune = true;
  auto first = FsJoin(config).Run(corpus);
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 3; ++i) {
    auto again = FsJoin(config).Run(corpus);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(check::ResultDigest(again->pairs), check::ResultDigest(first->pairs));
    EXPECT_EQ(again->report.pivots, first->report.pivots);
    EXPECT_EQ(again->report.tuning.lines, first->report.tuning.lines);
  }
}

TEST(AutoTuneEndToEndTest, PinnedKnobsWinAndLogTheOverride) {
  Corpus corpus = RandomCorpus(250, 300, 0.8, 10.0, 41);
  FsJoinConfig config;
  config.theta = 0.7;
  config.exec.auto_tune = true;
  config.exec.tune_sample_rate = 1.0;
  config.join_method = JoinMethod::kLoop;
  config.pinned.join_method = true;
  auto out = FsJoin(config).Run(corpus);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  bool logged = false;
  for (const std::string& line : out->report.tuning.lines) {
    if (line.find("override") != std::string::npos &&
        line.find("method") != std::string::npos) {
      logged = true;
    }
  }
  EXPECT_TRUE(logged) << "pinned join method must log its override";

  // And the pinned method must actually be honored: same digest as a fully
  // hand-set loop-join run.
  FsJoinConfig hand;
  hand.theta = 0.7;
  hand.join_method = JoinMethod::kLoop;
  auto hand_out = FsJoin(hand).Run(corpus);
  ASSERT_TRUE(hand_out.ok());
  EXPECT_EQ(check::ResultDigest(out->pairs), check::ResultDigest(hand_out->pairs));
}

TEST(AutoTuneEndToEndTest, SkewTriggeredSplittingKeepsResultsIdentical) {
  // Community-structured corpus engineered to trip the skew trigger:
  // 10 token communities with distinct sizes (so their tokens occupy
  // disjoint frequency bands -> contiguous rank ranges the DP can split
  // apart), one community much larger than the rest (its fragment's
  // quadratic cost dwarfs the mean -> heavy), and two record-length
  // classes per community (6 and 24; at theta 0.8 jaccard the partner
  // bound of 24 is 20 > 6, so the sampled lengths span >= 2 windows and
  // horizontal splitting is worth turning on).
  Rng rng(99);
  std::vector<std::vector<uint32_t>> sets;
  for (uint32_t community = 0; community < 10; ++community) {
    const uint32_t base = community * 100;
    const uint32_t count = community == 0 ? 400 : 30 + community * 10;
    for (uint32_t r = 0; r < count; ++r) {
      const size_t len = r % 2 == 0 ? 6 : 24;
      std::vector<uint32_t> tokens;
      while (tokens.size() < len) {
        const uint32_t t = base + static_cast<uint32_t>(rng.NextBounded(100));
        if (std::find(tokens.begin(), tokens.end(), t) == tokens.end()) {
          tokens.push_back(t);
        }
      }
      sets.push_back(std::move(tokens));
    }
  }
  Corpus corpus = CorpusFromTokenSets(sets);

  GlobalOrder order = GlobalOrder::FromCorpus(corpus);
  tune::TuneOptions topt;
  topt.sample_rate = 1.0;
  topt.num_fragments = 16;
  tune::TunePlan plan = tune::PlanTuning(corpus, order, topt);
  EXPECT_GE(plan.pivots.size(), 1u)
      << "disjoint communities should split into multiple fragments";
  EXPECT_GE(plan.horizontal_t, 1u)
      << "a heavy fragment plus >= 2 length windows should enable splitting";
  uint32_t heavy = 0;
  for (uint8_t h : plan.split_fragment) heavy += h;
  EXPECT_GE(heavy, 1u);

  // The split path must not change results: digest equality against a
  // hand-set run with no horizontal partitioning and against one with
  // uniform horizontal partitioning.
  FsJoinConfig hand;
  hand.theta = 0.8;
  auto hand_out = FsJoin(hand).Run(corpus);
  ASSERT_TRUE(hand_out.ok());
  hand.num_horizontal_partitions = 2;
  auto hand_h2_out = FsJoin(hand).Run(corpus);
  ASSERT_TRUE(hand_h2_out.ok());
  ASSERT_EQ(check::ResultDigest(hand_out->pairs),
            check::ResultDigest(hand_h2_out->pairs));

  FsJoinConfig tuned;
  tuned.theta = 0.8;
  tuned.num_vertical_partitions = 16;
  tuned.exec.auto_tune = true;
  tuned.exec.tune_sample_rate = 1.0;
  auto tuned_out = FsJoin(tuned).Run(corpus);
  ASSERT_TRUE(tuned_out.ok()) << tuned_out.status().ToString();
  EXPECT_EQ(check::ResultDigest(tuned_out->pairs),
            check::ResultDigest(hand_out->pairs))
      << "skew-triggered splitting changed the result set";
  bool split_logged = false;
  for (const std::string& line : tuned_out->report.tuning.lines) {
    if (line.find("horizontal: t=") != std::string::npos) split_logged = true;
  }
  EXPECT_TRUE(split_logged) << "expected a horizontal split log line";
}

TEST(AutoTuneEndToEndTest, AutoMatchesAcrossBackends) {
  Corpus corpus = RandomCorpus(300, 350, 0.9, 10.0, 53);
  FsJoinConfig config;
  config.theta = 0.7;
  config.exec.auto_tune = true;
  config.exec.tune_sample_rate = 0.5;
  auto mr_out = FsJoin(config).Run(corpus);
  ASSERT_TRUE(mr_out.ok());
  config.exec.backend = exec::BackendKind::kFusedFlow;
  auto flow_out = FsJoin(config).Run(corpus);
  ASSERT_TRUE(flow_out.ok());
  EXPECT_EQ(check::ResultDigest(mr_out->pairs), check::ResultDigest(flow_out->pairs));
}

}  // namespace
}  // namespace fsjoin
