// Vertical segmentation (Definitions 5-6): segments must partition the
// record exactly (disjoint cover, consistent head/tail counts), land in the
// right fragment, and round-trip through the MR serialization.

#include <gtest/gtest.h>

#include "core/pivots.h"
#include "core/segments.h"
#include "sim/set_ops.h"
#include "test_util.h"
#include "util/random.h"

namespace fsjoin {
namespace {

OrderedRecord MakeRecord(RecordId id, std::vector<TokenRank> tokens) {
  return OrderedRecord{id, std::move(tokens)};
}

TEST(SegmentsTest, PaperExampleSplit) {
  // Tokens {B=1,C=2,I=8,J=9,K=10} with pivots at ranks {3, 6, 9}
  // (like Figure 2's pivots {C, F, I} in dictionary order).
  OrderedRecord s1 = MakeRecord(0, {1, 2, 8, 9, 10});
  SegmentSplit split = SplitIntoSegments(s1, {3, 6, 9});
  ASSERT_EQ(split.segments.size(), 3u);
  EXPECT_EQ(split.fragment_ids[0], 0u);  // {1, 2}
  EXPECT_EQ(split.segments[0].tokens, (std::vector<TokenRank>{1, 2}));
  EXPECT_EQ(split.fragment_ids[1], 2u);  // {8}
  EXPECT_EQ(split.segments[1].tokens, (std::vector<TokenRank>{8}));
  EXPECT_EQ(split.fragment_ids[2], 3u);  // {9, 10}
  EXPECT_EQ(split.segments[2].tokens, (std::vector<TokenRank>{9, 10}));
  // Head/tail bookkeeping.
  EXPECT_EQ(split.segments[0].head, 0u);
  EXPECT_EQ(split.segments[0].Tail(), 3u);
  EXPECT_EQ(split.segments[1].head, 2u);
  EXPECT_EQ(split.segments[1].Tail(), 2u);
  EXPECT_EQ(split.segments[2].head, 3u);
  EXPECT_EQ(split.segments[2].Tail(), 0u);
}

TEST(SegmentsTest, EmptySegmentsAreSkipped) {
  OrderedRecord rec = MakeRecord(3, {0, 100});
  SegmentSplit split = SplitIntoSegments(rec, {10, 20, 30});
  ASSERT_EQ(split.segments.size(), 2u);
  EXPECT_EQ(split.fragment_ids[0], 0u);
  EXPECT_EQ(split.fragment_ids[1], 3u);
}

TEST(SegmentsTest, NoPivotsSingleSegment) {
  OrderedRecord rec = MakeRecord(1, {5, 9, 42});
  SegmentSplit split = SplitIntoSegments(rec, {});
  ASSERT_EQ(split.segments.size(), 1u);
  EXPECT_EQ(split.fragment_ids[0], 0u);
  EXPECT_EQ(split.segments[0].tokens.size(), 3u);
  EXPECT_EQ(split.segments[0].head, 0u);
  EXPECT_EQ(split.segments[0].Tail(), 0u);
}

TEST(SegmentsTest, EmptyRecordNoSegments) {
  SegmentSplit split = SplitIntoSegments(MakeRecord(0, {}), {5, 10});
  EXPECT_TRUE(split.segments.empty());
}

// Property (Definition 5): segments are a disjoint, order-preserving cover
// of the record; every token lands in the fragment SegmentOfRank assigns.
TEST(SegmentsTest, SplitIsDisjointCover) {
  Rng rng(17);
  for (int iter = 0; iter < 300; ++iter) {
    // Random sorted-unique record over ranks < 200 and random pivots.
    std::vector<TokenRank> tokens;
    for (TokenRank r = 0; r < 200; ++r) {
      if (rng.NextBool(0.15)) tokens.push_back(r);
    }
    std::vector<TokenRank> pivots;
    for (TokenRank r = 1; r < 200; ++r) {
      if (rng.NextBool(0.05)) pivots.push_back(r);
    }
    OrderedRecord rec = MakeRecord(7, tokens);
    SegmentSplit split = SplitIntoSegments(rec, pivots);

    std::vector<TokenRank> reassembled;
    uint32_t position = 0;
    for (size_t i = 0; i < split.segments.size(); ++i) {
      const SegmentRecord& seg = split.segments[i];
      EXPECT_EQ(seg.rid, 7u);
      EXPECT_EQ(seg.record_size, tokens.size());
      EXPECT_EQ(seg.head, position);
      EXPECT_FALSE(seg.tokens.empty());
      for (TokenRank t : seg.tokens) {
        EXPECT_EQ(SegmentOfRank(pivots, t), split.fragment_ids[i]);
        reassembled.push_back(t);
      }
      position += seg.tokens.size();
      if (i > 0) {
        EXPECT_GT(split.fragment_ids[i], split.fragment_ids[i - 1]);
      }
    }
    EXPECT_EQ(reassembled, tokens);
  }
}

TEST(SegmentsTest, SerdeRoundTrip) {
  SegmentRecord seg;
  seg.rid = 12345;
  seg.record_size = 50;
  seg.head = 7;
  seg.tokens = {3, 9, 27, 81};
  std::string buf;
  EncodeSegment(seg, &buf);
  SegmentRecord decoded;
  ASSERT_TRUE(DecodeSegment(buf, &decoded).ok());
  EXPECT_EQ(decoded.rid, seg.rid);
  EXPECT_EQ(decoded.record_size, seg.record_size);
  EXPECT_EQ(decoded.head, seg.head);
  EXPECT_EQ(decoded.tokens, seg.tokens);
  EXPECT_EQ(decoded.Tail(), 50u - 7u - 4u);
}

TEST(SegmentsTest, SerdeRejectsCorruption) {
  SegmentRecord seg;
  seg.rid = 1;
  seg.record_size = 3;
  seg.head = 0;
  seg.tokens = {1, 2, 3};
  std::string buf;
  EncodeSegment(seg, &buf);
  SegmentRecord decoded;
  EXPECT_FALSE(
      DecodeSegment(std::string_view(buf).substr(0, buf.size() - 1), &decoded)
          .ok());
  EXPECT_FALSE(DecodeSegment(buf + "x", &decoded).ok());
  EXPECT_FALSE(DecodeSegment("", &decoded).ok());
}

// ---- SegmentBatch (columnar storage) --------------------------------------

TEST(SegmentBatchTest, FromRecordsMatchesRows) {
  Rng rng(31);
  std::vector<SegmentRecord> rows;
  for (int i = 0; i < 12; ++i) {
    SegmentRecord seg;
    seg.rid = static_cast<RecordId>(100 + i);
    seg.head = static_cast<uint32_t>(i % 3);
    for (TokenRank r = 0; r < 40; ++r) {
      if (rng.NextBool(0.25)) seg.tokens.push_back(r);
    }
    if (seg.tokens.empty()) seg.tokens.push_back(0);
    seg.record_size = seg.head + static_cast<uint32_t>(seg.tokens.size()) + 2;
    rows.push_back(std::move(seg));
  }
  SegmentBatch batch = SegmentBatch::FromRecords(rows);
  ASSERT_TRUE(batch.sealed());
  ASSERT_EQ(batch.size(), rows.size());
  size_t total = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(batch.rid(i), rows[i].rid);
    EXPECT_EQ(batch.record_size(i), rows[i].record_size);
    EXPECT_EQ(batch.head(i), rows[i].head);
    EXPECT_EQ(batch.length(i), rows[i].tokens.size());
    EXPECT_EQ(batch.Tail(i), rows[i].Tail());
    SegmentView view = batch.View(i);
    EXPECT_EQ(view.rid, rows[i].rid);
    for (size_t k = 0; k < rows[i].tokens.size(); ++k) {
      EXPECT_EQ(batch.tokens(i)[k], rows[i].tokens[k]);
    }
    total += rows[i].tokens.size();
  }
  EXPECT_EQ(batch.total_tokens(), total);
}

TEST(SegmentBatchTest, AppendEncodedMatchesDecodeSegment) {
  // Shuffle values decode straight into the arena; the columns must agree
  // with the row-oriented DecodeSegment on the same bytes.
  std::vector<SegmentRecord> rows(3);
  rows[0] = {41, 9, 2, {5, 8, 13}};
  rows[1] = {7, 4, 0, {1, 2, 3, 4}};
  rows[2] = {1000000, 123456, 77, {99999}};
  SegmentBatch batch;
  batch.Reserve(rows.size(), 8);
  for (const SegmentRecord& seg : rows) {
    std::string buf;
    EncodeSegment(seg, &buf);
    ASSERT_TRUE(batch.AppendEncoded(buf).ok());
  }
  batch.Seal();
  ASSERT_EQ(batch.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(batch.rid(i), rows[i].rid);
    EXPECT_EQ(batch.record_size(i), rows[i].record_size);
    EXPECT_EQ(batch.head(i), rows[i].head);
    ASSERT_EQ(batch.length(i), rows[i].tokens.size());
    for (size_t k = 0; k < rows[i].tokens.size(); ++k) {
      EXPECT_EQ(batch.tokens(i)[k], rows[i].tokens[k]);
    }
  }
}

TEST(SegmentBatchTest, AppendEncodedRollsBackOnCorruption) {
  SegmentRecord good = {5, 6, 1, {2, 4, 6}};
  std::string buf;
  EncodeSegment(good, &buf);
  SegmentBatch batch;
  // Truncated value: the batch must stay exactly as before the call.
  EXPECT_FALSE(
      batch.AppendEncoded(std::string_view(buf).substr(0, buf.size() - 1))
          .ok());
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.total_tokens(), 0u);
  // Trailing garbage is rejected too.
  EXPECT_FALSE(batch.AppendEncoded(buf + "x").ok());
  EXPECT_TRUE(batch.empty());
  // A good value still appends after failures.
  ASSERT_TRUE(batch.AppendEncoded(buf).ok());
  batch.Seal();
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.length(0), 3u);
}

TEST(SegmentBatchTest, SealedBitmapsAreSound) {
  // Soundness of the word-packed gate: disjoint bitmaps must imply an
  // actually-empty overlap for every pair in the batch.
  Rng rng(91);
  std::vector<SegmentRecord> rows;
  for (int i = 0; i < 30; ++i) {
    SegmentRecord seg;
    seg.rid = static_cast<RecordId>(i);
    for (TokenRank r = 500; r < 700; ++r) {
      if (rng.NextBool(0.05)) seg.tokens.push_back(r);
    }
    if (seg.tokens.empty()) seg.tokens.push_back(500);
    seg.record_size = static_cast<uint32_t>(seg.tokens.size());
    rows.push_back(std::move(seg));
  }
  SegmentBatch batch = SegmentBatch::FromRecords(rows);
  for (size_t i = 0; i < batch.size(); ++i) {
    for (size_t j = i + 1; j < batch.size(); ++j) {
      if ((batch.bitmap(i) & batch.bitmap(j)) != 0) continue;
      EXPECT_EQ(SortedOverlap(batch.tokens(i), batch.length(i),
                              batch.tokens(j), batch.length(j)),
                0u);
    }
  }
}

}  // namespace
}  // namespace fsjoin
