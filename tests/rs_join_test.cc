// R-S two-collection join correctness across the whole plan layer: the
// RS(C, C) ≡ Self(C) property (R-S over two copies of a corpus must equal
// the self-join plus exactly the symmetric and reflexive pairs a self-join
// suppresses), the edge cases ISSUE 10 calls out (empty R or S, disjoint
// vocabularies with the identity-mapping guarantee of MergeJoinInput, one
// side entirely outside the other's length-filter window), and digest
// identity across join methods x kernels x backends x runners for all four
// algorithms against the BruteForceJoinRS oracle.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "baselines/massjoin.h"
#include "baselines/vernica_join.h"
#include "baselines/vsmart_join.h"
#include "check/invariants.h"
#include "core/fsjoin.h"
#include "sim/serial_join.h"
#include "test_util.h"

namespace fsjoin {
namespace {

using mr::RunnerKind;
using ::fsjoin::testing::CorpusFromTokenSets;
using ::fsjoin::testing::OrderedView;
using ::fsjoin::testing::RandomCorpus;

/// Raw token-id sets of a corpus — the shared vocabulary both sides of a
/// merged R-S corpus are rebuilt from.
std::vector<std::vector<uint32_t>> SetsOf(const Corpus& corpus) {
  std::vector<std::vector<uint32_t>> sets;
  sets.reserve(corpus.records.size());
  for (const Record& rec : corpus.records) {
    sets.emplace_back(rec.tokens.begin(), rec.tokens.end());
  }
  return sets;
}

/// Concatenates R's and S's token sets into one merged corpus over a shared
/// vocabulary; the R/S boundary is r_sets.size().
Corpus MergedCorpus(const std::vector<std::vector<uint32_t>>& r_sets,
                    const std::vector<std::vector<uint32_t>>& s_sets) {
  std::vector<std::vector<uint32_t>> all = r_sets;
  all.insert(all.end(), s_sets.begin(), s_sets.end());
  return CorpusFromTokenSets(all);
}

FsJoinConfig RsConfig(double theta, RecordId boundary) {
  FsJoinConfig config;
  config.theta = theta;
  config.num_vertical_partitions = 4;
  config.num_horizontal_partitions = 2;
  config.exec.num_map_tasks = 3;
  config.exec.num_reduce_tasks = 5;
  config.rs_boundary = boundary;
  return config;
}

/// Runs one of the four algorithms in R-S mode and returns its pairs.
JoinResultSet RunAlgorithmRS(int algorithm, const Corpus& corpus,
                             RecordId boundary, double theta,
                             const exec::ExecConfig& exec_config) {
  switch (algorithm) {
    case 0: {
      FsJoinConfig config = RsConfig(theta, boundary);
      config.exec = exec_config;
      auto out = FsJoin(config).Run(corpus);
      EXPECT_TRUE(out.ok()) << out.status().ToString();
      return out.ok() ? std::move(out->pairs) : JoinResultSet{};
    }
    case 1: {
      BaselineConfig config;
      config.theta = theta;
      config.exec = exec_config;
      config.rs_boundary = boundary;
      auto out = RunVernicaJoin(corpus, config);
      EXPECT_TRUE(out.ok()) << out.status().ToString();
      return out.ok() ? std::move(out->pairs) : JoinResultSet{};
    }
    case 2: {
      BaselineConfig config;
      config.theta = theta;
      config.exec = exec_config;
      config.rs_boundary = boundary;
      auto out = RunVSmartJoin(corpus, config);
      EXPECT_TRUE(out.ok()) << out.status().ToString();
      return out.ok() ? std::move(out->pairs) : JoinResultSet{};
    }
    default: {
      MassJoinConfig config;
      config.theta = theta;
      config.exec = exec_config;
      config.rs_boundary = boundary;
      config.length_group = 2;
      auto out = RunMassJoin(corpus, config);
      EXPECT_TRUE(out.ok()) << out.status().ToString();
      return out.ok() ? std::move(out->pairs) : JoinResultSet{};
    }
  }
}

constexpr const char* kAlgorithmNames[] = {"fsjoin", "vernica", "vsmart",
                                           "massjoin"};
constexpr exec::BackendKind kBothBackends[] = {exec::BackendKind::kMapReduce,
                                               exec::BackendKind::kFusedFlow};

// ---- Property: RS(C, C) == Self(C) + suppressed pairs --------------------

// A self-join emits each similar pair {a, b} once (normalized a < b) and
// never pairs a record with itself. Running the same corpus as both R and S
// must recover exactly what self-join suppressed: every pair in both
// orientations — (a, |C|+b) and (b, |C|+a) — plus the reflexive diagonal
// (i, |C|+i) at similarity 1.0.
JoinResultSet RsExpectedFromSelf(const JoinResultSet& self, size_t n) {
  JoinResultSet expected;
  expected.reserve(self.size() * 2 + n);
  for (const SimilarPair& p : self) {
    expected.push_back(
        {p.a, static_cast<RecordId>(p.b + n), p.similarity});
    expected.push_back(
        {p.b, static_cast<RecordId>(p.a + n), p.similarity});
  }
  for (size_t i = 0; i < n; ++i) {
    expected.push_back(
        {static_cast<RecordId>(i), static_cast<RecordId>(i + n), 1.0});
  }
  NormalizeResult(&expected);
  return expected;
}

TEST(RsJoinProperty, RsOfCorpusWithItselfEqualsSelfJoinPlusSuppressed) {
  const double theta = 0.6;
  const Corpus corpus = RandomCorpus(50, 70, 1.0, 8, 42);
  const auto sets = SetsOf(corpus);
  const Corpus merged = MergedCorpus(sets, sets);
  const RecordId boundary = static_cast<RecordId>(sets.size());

  const JoinResultSet self = BruteForceJoin(
      OrderedView(corpus), SimilarityFunction::kJaccard, theta);
  ASSERT_GT(self.size(), 0u);
  const JoinResultSet expected = RsExpectedFromSelf(self, sets.size());
  const uint32_t expected_digest = check::ResultDigest(expected);

  // The oracle itself must satisfy the property — anchors everything else.
  EXPECT_TRUE(SamePairs(
      expected, BruteForceJoinRS(OrderedView(merged), boundary,
                                 SimilarityFunction::kJaccard, theta)));

  // All four algorithms, both backends: byte-identical to the expected set.
  for (int algorithm = 0; algorithm < 4; ++algorithm) {
    for (exec::BackendKind backend : kBothBackends) {
      exec::ExecConfig exec_config;
      exec_config.backend = backend;
      exec_config.num_map_tasks = 3;
      exec_config.num_reduce_tasks = 5;
      const JoinResultSet pairs =
          RunAlgorithmRS(algorithm, merged, boundary, theta, exec_config);
      EXPECT_TRUE(SamePairs(expected, pairs))
          << kAlgorithmNames[algorithm] << " on "
          << exec::BackendKindName(backend) << "\n"
          << DiffResults(expected, pairs);
      EXPECT_EQ(check::ResultDigest(pairs), expected_digest)
          << kAlgorithmNames[algorithm] << " on "
          << exec::BackendKindName(backend);
    }
  }
}

// ---- Edge case: empty R or empty S ---------------------------------------

TEST(RsJoinEdgeCases, EmptySideProducesNoPairsInAllAlgorithms) {
  const Corpus corpus = RandomCorpus(40, 60, 1.0, 8, 77);
  const RecordId n = static_cast<RecordId>(corpus.records.size());
  // boundary == 0: R is empty (no probe side); boundary == n: S is empty
  // (no build side). Either way the cross space is empty.
  for (RecordId boundary : {RecordId{0}, n}) {
    for (int algorithm = 0; algorithm < 4; ++algorithm) {
      for (exec::BackendKind backend : kBothBackends) {
        exec::ExecConfig exec_config;
        exec_config.backend = backend;
        const JoinResultSet pairs =
            RunAlgorithmRS(algorithm, corpus, boundary, 0.5, exec_config);
        EXPECT_TRUE(pairs.empty())
            << kAlgorithmNames[algorithm] << " boundary=" << boundary
            << " emitted " << pairs.size() << " pairs";
      }
    }
  }
}

TEST(RsJoinEdgeCases, EmptyCollectionThroughJoinInputApi) {
  const Corpus some = CorpusFromTokenSets({{1, 2, 3}, {1, 2, 4}, {5, 6}});
  const Corpus empty = CorpusFromTokenSets({});
  FsJoinConfig config;
  config.theta = 0.5;
  config.num_vertical_partitions = 2;

  Result<FsJoinOutput> r_empty = FsJoinRS(empty, some, config);
  ASSERT_TRUE(r_empty.ok()) << r_empty.status().ToString();
  EXPECT_TRUE(r_empty->pairs.empty());

  Result<FsJoinOutput> s_empty = FsJoinRS(some, empty, config);
  ASSERT_TRUE(s_empty.ok()) << s_empty.status().ToString();
  EXPECT_TRUE(s_empty->pairs.empty());
}

// ---- Edge case: disjoint vocabularies ------------------------------------

TEST(RsJoinEdgeCases, DisjointVocabulariesNeverRemapProbeTokens) {
  // R and S share no token strings. MergeJoinInput interns R's dictionary
  // first in token-id order, so the union mapping must be the identity on
  // every R record — probe tokens are never remapped.
  WhitespaceTokenizer tokenizer;
  const Corpus r =
      BuildCorpus({"ra rb rc", "rb rc rd", "ra rd"}, tokenizer);
  const Corpus s =
      BuildCorpus({"sa sb sc sd", "sb sc", "sa sd se"}, tokenizer);

  const Corpus merged = MergeJoinInput(JoinInput{r, s});
  ASSERT_EQ(merged.records.size(), r.records.size() + s.records.size());
  for (size_t i = 0; i < r.records.size(); ++i) {
    EXPECT_EQ(merged.records[i].tokens, r.records[i].tokens)
        << "R record " << i << " was remapped by the union dictionary";
  }
  // S ids are offset by |R| and its tokens live above R's id range.
  for (size_t i = 0; i < s.records.size(); ++i) {
    for (TokenId t : merged.records[r.records.size() + i].tokens) {
      EXPECT_GE(static_cast<size_t>(t), r.dictionary.size());
    }
  }

  // No shared token -> no similar pair at any positive threshold.
  FsJoinConfig config;
  config.theta = 0.1;
  config.num_vertical_partitions = 3;
  Result<FsJoinOutput> out = FsJoinRS(r, s, config);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->pairs.empty());
  EXPECT_EQ(out->report.candidate_pairs, 0u);
}

// ---- Edge case: one side entirely outside the length-filter window -------

TEST(RsJoinEdgeCases, LengthWindowDisjointSidesYieldZeroCandidates) {
  // Every R record has 2 tokens, every S record has 20. At theta = 0.8
  // Jaccard a length-2 probe admits partners of length 2..2, so the whole
  // cross space is pruned by the StrL-Filter — but the sides deliberately
  // share tokens so candidates WOULD exist without it.
  std::vector<std::vector<uint32_t>> r_sets, s_sets;
  for (uint32_t i = 0; i < 8; ++i) {
    r_sets.push_back({i, i + 1});
    std::vector<uint32_t> big;
    for (uint32_t t = 0; t < 20; ++t) big.push_back(i + t);
    s_sets.push_back(std::move(big));
  }
  const Corpus merged = MergedCorpus(r_sets, s_sets);
  const RecordId boundary = static_cast<RecordId>(r_sets.size());

  FsJoinConfig config = RsConfig(0.8, boundary);
  config.join_method = JoinMethod::kLoop;  // consider pairs, then prune
  Result<FsJoinOutput> out = FsJoin(config).Run(merged);
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  EXPECT_TRUE(out->pairs.empty());
  EXPECT_EQ(out->report.candidate_pairs, 0u);
  EXPECT_EQ(out->report.result_pairs, 0u);
  // Full metrics accounting even on the all-pruned path: every considered
  // pair lands in exactly one pruning bucket and nothing is emitted.
  const FilterCounters& c = out->report.filters;
  EXPECT_EQ(c.emitted, 0u);
  EXPECT_EQ(c.pairs_considered,
            c.pruned_role + c.pruned_strl + c.pruned_segl + c.pruned_segi +
                c.pruned_segd + c.empty_overlap + c.emitted);
}

// ---- Digest identity: methods x kernels x backends against the oracle ----

TEST(RsJoinMatrix, MethodsKernelsBackendsMatchOracle) {
  const double theta = 0.6;
  const auto r_sets = SetsOf(RandomCorpus(40, 80, 1.0, 9, 501));
  const auto s_sets = SetsOf(RandomCorpus(55, 80, 1.0, 9, 502));
  const Corpus merged = MergedCorpus(r_sets, s_sets);
  const RecordId boundary = static_cast<RecordId>(r_sets.size());

  const JoinResultSet oracle = BruteForceJoinRS(
      OrderedView(merged), boundary, SimilarityFunction::kJaccard, theta);
  ASSERT_GT(oracle.size(), 0u);
  const uint32_t oracle_digest = check::ResultDigest(oracle);

  for (JoinMethod method :
       {JoinMethod::kLoop, JoinMethod::kIndex, JoinMethod::kPrefix}) {
    for (exec::KernelMode kernel :
         {exec::KernelMode::kScalar, exec::KernelMode::kSimd}) {
      for (exec::BackendKind backend : kBothBackends) {
        FsJoinConfig config = RsConfig(theta, boundary);
        config.join_method = method;
        config.exec.kernel = kernel;
        config.exec.backend = backend;
        Result<FsJoinOutput> out = FsJoin(config).Run(merged);
        ASSERT_TRUE(out.ok()) << out.status().ToString();
        EXPECT_TRUE(SamePairs(oracle, out->pairs))
            << JoinMethodName(method) << "/" << exec::KernelModeName(kernel)
            << "/" << exec::BackendKindName(backend) << "\n"
            << DiffResults(oracle, out->pairs);
        EXPECT_EQ(check::ResultDigest(out->pairs), oracle_digest)
            << JoinMethodName(method) << "/" << exec::KernelModeName(kernel)
            << "/" << exec::BackendKindName(backend);
      }
    }
  }
}

// ---- Digest identity: all four algorithms x backends x runners -----------

TEST(RsJoinMatrix, AllAlgorithmsAllRunnersIdenticalDigests) {
  const double theta = 0.6;
  const auto r_sets = SetsOf(RandomCorpus(30, 60, 0.9, 8, 601));
  const auto s_sets = SetsOf(RandomCorpus(36, 60, 0.9, 8, 602));
  const Corpus merged = MergedCorpus(r_sets, s_sets);
  const RecordId boundary = static_cast<RecordId>(r_sets.size());

  const uint32_t oracle_digest = check::ResultDigest(BruteForceJoinRS(
      OrderedView(merged), boundary, SimilarityFunction::kJaccard, theta));

  // Cluster-runner identity lives in cluster_test.cc (ctest label
  // `cluster`); this covers the in-process and subprocess runners.
  for (RunnerKind runner :
       {RunnerKind::kInline, RunnerKind::kThreads, RunnerKind::kSubprocess}) {
    for (exec::BackendKind backend : kBothBackends) {
      for (int algorithm = 0; algorithm < 4; ++algorithm) {
        exec::ExecConfig exec_config;
        exec_config.backend = backend;
        exec_config.runner = runner;
        exec_config.num_map_tasks = 3;
        exec_config.num_reduce_tasks = 3;
        exec_config.num_threads = 2;
        const JoinResultSet pairs =
            RunAlgorithmRS(algorithm, merged, boundary, theta, exec_config);
        EXPECT_EQ(check::ResultDigest(pairs), oracle_digest)
            << kAlgorithmNames[algorithm] << " runner="
            << mr::RunnerKindName(runner)
            << " backend=" << exec::BackendKindName(backend);
      }
    }
  }
}

}  // namespace
}  // namespace fsjoin
