// Tests of the MapReduce substrate: execution semantics (record-at-a-time
// map, combiner, partitioning, sorted grouping), error propagation, metric
// accounting, the MiniDfs/Pipeline layer and the cluster makespan simulator.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <set>

#include "mr/cluster_sim.h"
#include "mr/engine.h"
#include "mr/pipeline.h"
#include "store/temp_dir.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/serde.h"

namespace fsjoin::mr {
namespace {

// Word-count building blocks used across these tests.
class WordCountMapper : public Mapper {
 public:
  Status Map(const KeyValue& record, Emitter* out) override {
    std::string current;
    for (char c : record.value + " ") {
      if (c == ' ') {
        if (!current.empty()) {
          std::string one;
          PutVarint64(&one, 1);
          out->Emit(current, one);
          current.clear();
        }
      } else {
        current.push_back(c);
      }
    }
    return Status::OK();
  }
};

class SumReducer : public Reducer {
 public:
  Status Reduce(std::string_view key, ValueList values,
                Emitter* out) override {
    uint64_t total = 0;
    for (std::string_view v : values) {
      Decoder dec(v);
      uint64_t x = 0;
      FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&x));
      total += x;
    }
    std::string value;
    PutVarint64(&value, total);
    out->Emit(key, value);
    return Status::OK();
  }
};

JobConfig WordCountConfig(uint32_t maps, uint32_t reduces, bool combiner) {
  JobConfig config;
  config.name = "wordcount";
  config.num_map_tasks = maps;
  config.num_reduce_tasks = reduces;
  config.mapper_factory = [] { return std::make_unique<WordCountMapper>(); };
  config.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  if (combiner) {
    config.combiner_factory = [] { return std::make_unique<SumReducer>(); };
  }
  return config;
}

Dataset WordsInput() {
  return {{"1", "a b a"}, {"2", "b c"}, {"3", "a a a"}, {"4", ""},
          {"5", "c"},     {"6", "d b"}};
}

std::map<std::string, uint64_t> DecodeCounts(const Dataset& output) {
  std::map<std::string, uint64_t> counts;
  for (const KeyValue& kv : output) {
    Decoder dec(kv.value);
    uint64_t v = 0;
    EXPECT_TRUE(dec.GetVarint64(&v).ok());
    counts[kv.key] += v;
  }
  return counts;
}

TEST(EngineTest, WordCountIsCorrect) {
  Engine engine(0);
  Dataset output;
  JobMetrics metrics;
  ASSERT_TRUE(engine
                  .Run(WordCountConfig(3, 4, /*combiner=*/false), WordsInput(),
                       &output, &metrics)
                  .ok());
  auto counts = DecodeCounts(output);
  EXPECT_EQ(counts["a"], 5u);
  EXPECT_EQ(counts["b"], 3u);
  EXPECT_EQ(counts["c"], 2u);
  EXPECT_EQ(counts["d"], 1u);
  EXPECT_EQ(counts.size(), 4u);
}

TEST(EngineTest, ResultsIndependentOfTaskCounts) {
  for (uint32_t maps : {1u, 2u, 7u}) {
    for (uint32_t reduces : {1u, 3u, 8u}) {
      Engine engine(0);
      Dataset output;
      JobMetrics metrics;
      ASSERT_TRUE(engine
                      .Run(WordCountConfig(maps, reduces, false), WordsInput(),
                           &output, &metrics)
                      .ok());
      auto counts = DecodeCounts(output);
      EXPECT_EQ(counts["a"], 5u) << maps << "x" << reduces;
      EXPECT_EQ(metrics.reduce_tasks.size(), reduces);
    }
  }
}

TEST(EngineTest, CombinerReducesShuffleButNotResults) {
  Engine engine(0);
  Dataset with, without;
  JobMetrics m_with, m_without;
  ASSERT_TRUE(engine
                  .Run(WordCountConfig(2, 3, true), WordsInput(), &with,
                       &m_with)
                  .ok());
  ASSERT_TRUE(engine
                  .Run(WordCountConfig(2, 3, false), WordsInput(), &without,
                       &m_without)
                  .ok());
  EXPECT_EQ(DecodeCounts(with), DecodeCounts(without));
  EXPECT_LT(m_with.shuffle_records, m_without.shuffle_records);
  EXPECT_GT(m_with.combine_input_records, 0u);
}

TEST(EngineTest, ThreadedMatchesInline) {
  Engine inline_engine(0), threaded(4);
  Dataset a, b;
  JobMetrics ma, mb;
  ASSERT_TRUE(inline_engine
                  .Run(WordCountConfig(4, 5, true), WordsInput(), &a, &ma)
                  .ok());
  ASSERT_TRUE(
      threaded.Run(WordCountConfig(4, 5, true), WordsInput(), &b, &mb).ok());
  EXPECT_EQ(DecodeCounts(a), DecodeCounts(b));
}

TEST(EngineTest, ReduceInputIsKeySorted) {
  // A reducer that checks its keys arrive in sorted order per partition.
  class OrderCheckReducer : public Reducer {
   public:
    Status Reduce(std::string_view key, ValueList,
                  Emitter* out) override {
      if (!last_.empty() && key < last_) {
        return Status::Internal("keys out of order");
      }
      last_ = std::string(key);
      out->Emit(key, "");
      return Status::OK();
    }
    std::string last_;
  };
  JobConfig config;
  config.num_map_tasks = 3;
  config.num_reduce_tasks = 2;
  config.mapper_factory = [] { return std::make_unique<WordCountMapper>(); };
  config.reducer_factory = [] { return std::make_unique<OrderCheckReducer>(); };
  Engine engine(0);
  Dataset output;
  JobMetrics metrics;
  EXPECT_TRUE(engine.Run(config, WordsInput(), &output, &metrics).ok());
}

TEST(EngineTest, MapErrorAbortsJob) {
  class FailingMapper : public Mapper {
   public:
    Status Map(const KeyValue&, Emitter*) override {
      return Status::Internal("boom");
    }
  };
  JobConfig config = WordCountConfig(2, 2, false);
  config.mapper_factory = [] { return std::make_unique<FailingMapper>(); };
  Engine engine(0);
  Dataset output;
  JobMetrics metrics;
  Status st = engine.Run(config, WordsInput(), &output, &metrics);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "task 'wordcount/map0' failed after 1 attempt(s): boom");
}

TEST(EngineTest, ReduceErrorAbortsJob) {
  class FailingReducer : public Reducer {
   public:
    Status Reduce(std::string_view, ValueList, Emitter*) override {
      return Status::OutOfRange("bad reduce");
    }
  };
  JobConfig config = WordCountConfig(2, 2, false);
  config.reducer_factory = [] { return std::make_unique<FailingReducer>(); };
  Engine engine(0);
  Dataset output;
  JobMetrics metrics;
  EXPECT_FALSE(engine.Run(config, WordsInput(), &output, &metrics).ok());
}

TEST(EngineTest, MissingFactoriesRejected) {
  Engine engine(0);
  Dataset output;
  JobMetrics metrics;
  JobConfig config;
  EXPECT_EQ(engine.Run(config, WordsInput(), &output, &metrics).code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineTest, EmptyInputProducesEmptyOutput) {
  Engine engine(0);
  Dataset output = {{"junk", "junk"}};
  JobMetrics metrics;
  ASSERT_TRUE(
      engine.Run(WordCountConfig(4, 4, false), {}, &output, &metrics).ok());
  EXPECT_TRUE(output.empty());
  EXPECT_EQ(metrics.map_input_records, 0u);
}

TEST(EngineTest, MetricsAccounting) {
  Engine engine(0);
  Dataset output;
  JobMetrics metrics;
  Dataset input = WordsInput();
  ASSERT_TRUE(
      engine.Run(WordCountConfig(2, 3, false), input, &output, &metrics).ok());
  EXPECT_EQ(metrics.map_input_records, input.size());
  EXPECT_EQ(metrics.map_output_records, 11u);  // total words
  EXPECT_EQ(metrics.shuffle_records, metrics.map_output_records);
  EXPECT_EQ(metrics.reduce_output_records, output.size());
  uint64_t reduce_inputs = 0;
  for (const auto& t : metrics.reduce_tasks) reduce_inputs += t.input_records;
  EXPECT_EQ(reduce_inputs, metrics.shuffle_records);
  EXPECT_GT(metrics.DuplicationFactor(), 1.0);  // words > records
}

TEST(PartitionerTest, CustomPartitionerIsHonored) {
  // Route everything to partition 0; reduce task 1.. must see nothing.
  class ZeroPartitioner : public Partitioner {
   public:
    uint32_t Partition(std::string_view, uint32_t) const override {
      return 0;
    }
  };
  JobConfig config = WordCountConfig(2, 4, false);
  config.partitioner = std::make_shared<ZeroPartitioner>();
  Engine engine(0);
  Dataset output;
  JobMetrics metrics;
  ASSERT_TRUE(engine.Run(config, WordsInput(), &output, &metrics).ok());
  EXPECT_GT(metrics.reduce_tasks[0].input_records, 0u);
  for (size_t r = 1; r < metrics.reduce_tasks.size(); ++r) {
    EXPECT_EQ(metrics.reduce_tasks[r].input_records, 0u);
  }
  EXPECT_GT(metrics.ReduceSkew(), 3.0);
}

TEST(PartitionerTest, PrefixIdPartitioner) {
  PrefixIdPartitioner p;
  std::string key;
  PutFixed32BE(&key, 7);
  EXPECT_EQ(p.Partition(key, 4), 7u % 4);
  // Short keys fall back to hashing without crashing.
  (void)p.Partition("ab", 4);
}

TEST(PartitionerTest, PrefixIdPartitionerShortKeysUseStableHash) {
  PrefixIdPartitioner p;
  // Keys under 4 bytes can't carry a record id; they hash deterministically
  // and always land in range.
  for (std::string_view key : {std::string_view(""), std::string_view("a"),
                               std::string_view("ab"),
                               std::string_view("abc")}) {
    const uint32_t part = p.Partition(key, 5);
    EXPECT_LT(part, 5u);
    EXPECT_EQ(part, Fnv1a64(key) % 5) << "key size " << key.size();
  }
}

TEST(PartitionerTest, PrefixIdPartitionerSingleAndWrapAround) {
  PrefixIdPartitioner p;
  std::string key;
  PutFixed32BE(&key, 0xFFFFFFFFu);
  // Ids far past the partition count wrap via modulo.
  EXPECT_EQ(p.Partition(key, 7), 0xFFFFFFFFu % 7);
  // A single partition absorbs everything, on both paths.
  EXPECT_EQ(p.Partition(key, 1), 0u);
  EXPECT_EQ(p.Partition("", 1), 0u);
  // Bytes after the 4-byte id prefix don't affect routing.
  EXPECT_EQ(p.Partition(key + "trailing-token-bytes", 7), p.Partition(key, 7));
}

// ---- MiniDfs / Pipeline ------------------------------------------------

TEST(MiniDfsTest, PutGetRemove) {
  MiniDfs dfs;
  EXPECT_FALSE(dfs.Has("x"));
  EXPECT_FALSE(dfs.Get("x").ok());
  dfs.Put("x", {{"k", "v"}});
  ASSERT_TRUE(dfs.Has("x"));
  EXPECT_EQ(dfs.Get("x").value()->size(), 1u);
  dfs.Put("x", {});  // replace
  EXPECT_EQ(dfs.Get("x").value()->size(), 0u);
  dfs.Remove("x");
  EXPECT_FALSE(dfs.Has("x"));
}

TEST(PipelineTest, ChainsJobsAndRecordsHistory) {
  Engine engine(0);
  MiniDfs dfs;
  Pipeline pipeline(&engine, &dfs);
  dfs.Put("in", WordsInput());
  ASSERT_TRUE(
      pipeline.RunJob(WordCountConfig(2, 2, false), "in", "counts").ok());
  // Second job over the first job's output (identity-ish re-reduce).
  ASSERT_TRUE(pipeline
                  .RunJob(WordCountConfig(2, 2, false), "counts",
                          "counts2")
                  .ok());
  EXPECT_EQ(pipeline.history().size(), 2u);
  EXPECT_TRUE(dfs.Has("counts2"));
  JobMetrics total = pipeline.TotalMetrics("all");
  EXPECT_EQ(total.map_input_records,
            pipeline.history()[0].map_input_records +
                pipeline.history()[1].map_input_records);
}

TEST(PipelineTest, MissingInputFails) {
  Engine engine(0);
  MiniDfs dfs;
  Pipeline pipeline(&engine, &dfs);
  EXPECT_EQ(
      pipeline.RunJob(WordCountConfig(1, 1, false), "nope", "out").code(),
      StatusCode::kNotFound);
}

// ---- Cluster simulator -----------------------------------------------------

TEST(ClusterSimTest, MakespanBasics) {
  // 4 unit tasks on 2 slots -> 2 units; on 4 slots -> 1 unit.
  std::vector<double> tasks(4, 1000.0);
  EXPECT_DOUBLE_EQ(ListScheduleMakespan(tasks, 2), 2000.0);
  EXPECT_DOUBLE_EQ(ListScheduleMakespan(tasks, 4), 1000.0);
  EXPECT_DOUBLE_EQ(ListScheduleMakespan({}, 3), 0.0);
  // One giant task dominates regardless of slots.
  EXPECT_DOUBLE_EQ(ListScheduleMakespan({5000.0, 1.0, 1.0}, 8), 5000.0);
}

TEST(ClusterSimTest, MoreNodesNeverSlower) {
  JobMetrics job;
  job.job_name = "t";
  for (int i = 0; i < 30; ++i) {
    TaskMetrics t;
    t.wall_micros = 1000 + i * 100;
    job.map_tasks.push_back(t);
    t.input_bytes = 10000;
    job.reduce_tasks.push_back(t);
  }
  ClusterCostModel model;
  double prev = 1e18;
  for (uint32_t nodes : {1u, 2u, 5u, 10u, 15u}) {
    SimulatedJobTime sim = SimulateJob(job, nodes, model);
    EXPECT_LE(sim.total_ms, prev + 1e-9);
    prev = sim.total_ms;
  }
}

TEST(ClusterSimTest, SkewedReducersLimitScaling) {
  // One reducer does 100x the work: adding nodes cannot help beyond it.
  JobMetrics job;
  TaskMetrics small;
  small.wall_micros = 1000;
  TaskMetrics big;
  big.wall_micros = 100000;
  for (int i = 0; i < 9; ++i) job.reduce_tasks.push_back(small);
  job.reduce_tasks.push_back(big);
  ClusterCostModel model;
  model.per_task_overhead_micros = 0;
  SimulatedJobTime at5 = SimulateJob(job, 5, model);
  SimulatedJobTime at15 = SimulateJob(job, 15, model);
  EXPECT_GE(at15.reduce_phase_ms, 100.0);  // bounded by the big task
  EXPECT_GT(at5.reduce_balance, 5.0);
  EXPECT_NEAR(at15.reduce_phase_ms, at5.reduce_phase_ms, 1.0);
}

TEST(ClusterSimTest, PipelineSumsJobs) {
  JobMetrics job;
  TaskMetrics t;
  t.wall_micros = 1000;
  job.map_tasks.push_back(t);
  job.reduce_tasks.push_back(t);
  ClusterCostModel model;
  SimulatedJobTime one = SimulateJob(job, 2, model);
  SimulatedJobTime two = SimulatePipeline({job, job}, 2, model);
  EXPECT_NEAR(two.total_ms, 2 * one.total_ms, 1e-6);
}


TEST(ClusterSimTest, OversizedGroupsChargeSpills) {
  JobMetrics job;
  TaskMetrics t;
  t.wall_micros = 1000;
  t.input_bytes = 10 * 1024 * 1024;  // 10 MB into one reducer
  t.max_group_bytes = 4 * 1024 * 1024;  // largest fragment: 4 MB
  job.reduce_tasks.push_back(t);
  ClusterCostModel roomy;
  roomy.per_task_overhead_micros = 0;
  ClusterCostModel tight = roomy;
  tight.reduce_memory_bytes = 1024 * 1024;  // 1 MB group budget -> spills
  SimulatedJobTime fast = SimulateJob(job, 4, roomy);
  SimulatedJobTime slow = SimulateJob(job, 4, tight);
  EXPECT_GT(slow.total_ms, fast.total_ms);
  // Every input byte pays the spill cost once a group exceeds the budget.
  double expected_extra_ms =
      10.0 * 1024 * 1024 * tight.spill_micros_per_byte / 1000.0;
  EXPECT_NEAR(slow.total_ms - fast.total_ms, expected_extra_ms, 1e-6);

  // Groups inside the budget never pay, regardless of task input size.
  job.reduce_tasks[0].max_group_bytes = 512 * 1024;
  SimulatedJobTime ok = SimulateJob(job, 4, tight);
  EXPECT_NEAR(ok.total_ms, fast.total_ms, 1e-6);
}

TEST(EngineTest, ReduceTasksRecordMaxGroupBytes) {
  Engine engine(0);
  Dataset output;
  JobMetrics metrics;
  ASSERT_TRUE(engine
                  .Run(WordCountConfig(1, 1, false), WordsInput(), &output,
                       &metrics)
                  .ok());
  // Largest group is 'a' (5 records of key "a" + value varint(1)).
  ASSERT_EQ(metrics.reduce_tasks.size(), 1u);
  EXPECT_EQ(metrics.reduce_tasks[0].max_group_bytes, 5u * 2u);
}

TEST(EngineTest, MapperFinishCanEmit) {
  // A mapper that emits one trailing record per task from Finish().
  class TrailerMapper : public Mapper {
   public:
    Status Map(const KeyValue&, Emitter*) override { return Status::OK(); }
    Status Finish(Emitter* out) override {
      out->Emit("trailer", "1");
      return Status::OK();
    }
  };
  JobConfig config;
  config.num_map_tasks = 3;
  config.num_reduce_tasks = 2;
  config.mapper_factory = [] { return std::make_unique<TrailerMapper>(); };
  config.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  Engine engine(0);
  Dataset output;
  JobMetrics metrics;
  ASSERT_TRUE(engine.Run(config, WordsInput(), &output, &metrics).ok());
  // 3 map tasks (6 records / 3 tasks) -> 3 trailers summed into one group.
  ASSERT_EQ(output.size(), 1u);
  EXPECT_EQ(output[0].key, "trailer");
}

TEST(EngineTest, SetupErrorAborts) {
  class BadSetupMapper : public Mapper {
   public:
    Status Setup() override { return Status::FailedPrecondition("no setup"); }
    Status Map(const KeyValue&, Emitter*) override { return Status::OK(); }
  };
  JobConfig config;
  config.num_map_tasks = 2;
  config.num_reduce_tasks = 2;
  config.mapper_factory = [] { return std::make_unique<BadSetupMapper>(); };
  config.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  Engine engine(0);
  Dataset output;
  JobMetrics metrics;
  Status st = engine.Run(config, WordsInput(), &output, &metrics);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(EngineTest, CombinerErrorAborts) {
  class BadCombiner : public Reducer {
   public:
    Status Reduce(std::string_view, ValueList, Emitter*) override {
      return Status::Internal("combiner boom");
    }
  };
  JobConfig config = WordCountConfig(2, 2, false);
  config.combiner_factory = [] { return std::make_unique<BadCombiner>(); };
  Engine engine(0);
  Dataset output;
  JobMetrics metrics;
  EXPECT_FALSE(engine.Run(config, WordsInput(), &output, &metrics).ok());
}

// ---- External shuffle (spill-to-disk) ---------------------------------

// A few hundred lines of random words: enough shuffle volume that a tiny
// budget forces several spill runs per reduce shard.
Dataset BigWordsInput(size_t lines, uint64_t seed) {
  Rng rng(seed);
  Dataset input;
  input.reserve(lines);
  for (size_t i = 0; i < lines; ++i) {
    std::string text;
    const size_t words = 2 + rng.NextBounded(6);
    for (size_t w = 0; w < words; ++w) {
      if (w > 0) text.push_back(' ');
      const size_t len = 1 + rng.NextBounded(4);
      for (size_t c = 0; c < len; ++c) {
        text.push_back(static_cast<char>('a' + rng.NextBounded(3)));
      }
    }
    input.push_back(KeyValue{std::to_string(i), std::move(text)});
  }
  return input;
}

void ExpectSameDataset(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key) << "at " << i;
    EXPECT_EQ(a[i].value, b[i].value) << "at " << i;
  }
}

TEST(EngineSpillTest, ForcedSpillIsByteIdenticalToInMemory) {
  const Dataset input = BigWordsInput(300, 91);
  const JobConfig config = WordCountConfig(4, 3, /*combiner=*/false);

  Engine plain(0);
  Dataset want;
  JobMetrics want_metrics;
  ASSERT_TRUE(plain.Run(config, input, &want, &want_metrics).ok());
  EXPECT_EQ(want_metrics.spilled_bytes, 0u);
  EXPECT_EQ(want_metrics.spill_runs, 0u);

  EngineOptions options;
  options.shuffle_memory_bytes = 256;  // far below the shuffle volume
  Engine spilling(options);
  Dataset got;
  JobMetrics got_metrics;
  ASSERT_TRUE(spilling.Run(config, input, &got, &got_metrics).ok());

  ExpectSameDataset(want, got);
  EXPECT_GT(got_metrics.spilled_bytes, 0u);
  EXPECT_GT(got_metrics.spill_runs, 0u);
  // Everything except the spill counters is unchanged by the spill path.
  EXPECT_EQ(got_metrics.map_output_records, want_metrics.map_output_records);
  EXPECT_EQ(got_metrics.shuffle_records, want_metrics.shuffle_records);
  EXPECT_EQ(got_metrics.reduce_output_records,
            want_metrics.reduce_output_records);
}

TEST(EngineSpillTest, ThreadedForcedSpillMatchesInline) {
  const Dataset input = BigWordsInput(300, 92);
  const JobConfig config = WordCountConfig(6, 4, /*combiner=*/true);

  EngineOptions inline_opts;
  inline_opts.shuffle_memory_bytes = 256;
  Engine inline_engine(inline_opts);
  Dataset a;
  JobMetrics ma;
  ASSERT_TRUE(inline_engine.Run(config, input, &a, &ma).ok());

  EngineOptions threaded_opts = inline_opts;
  threaded_opts.num_threads = 4;
  Engine threaded(threaded_opts);
  Dataset b;
  JobMetrics mb;
  ASSERT_TRUE(threaded.Run(config, input, &b, &mb).ok());

  ExpectSameDataset(a, b);
  EXPECT_GT(mb.spill_runs, 0u);
}

TEST(EngineSpillTest, NoSpillFilesSurviveCompletedOrFailedJobs) {
  namespace fs = std::filesystem;
  auto base = store::TempSpillDir::Create("", "fsjoin-engine-test");
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EngineOptions options;
  options.shuffle_memory_bytes = kMinShuffleMemoryBytes;  // spill everything
  options.spill_dir = base->path();

  const Dataset input = BigWordsInput(100, 93);
  {
    Engine engine(options);
    Dataset output;
    JobMetrics metrics;
    ASSERT_TRUE(
        engine.Run(WordCountConfig(3, 3, false), input, &output, &metrics)
            .ok());
    EXPECT_GT(metrics.spill_runs, 0u);
  }
  EXPECT_TRUE(fs::is_empty(base->path()))
      << "completed job left spill files behind";

  class FailingReducer : public Reducer {
   public:
    Status Reduce(std::string_view, ValueList, Emitter*) override {
      return Status::Internal("reduce boom");
    }
  };
  JobConfig bad = WordCountConfig(3, 3, false);
  bad.reducer_factory = [] { return std::make_unique<FailingReducer>(); };
  {
    Engine engine(options);
    Dataset output;
    JobMetrics metrics;
    EXPECT_FALSE(engine.Run(bad, input, &output, &metrics).ok());
  }
  EXPECT_TRUE(fs::is_empty(base->path()))
      << "failed job left spill files behind";
}

TEST(ClusterSimTest, MeasuredSpillBytesOverrideTheGroupHeuristic) {
  JobMetrics job;
  TaskMetrics t;
  t.wall_micros = 1000;
  t.input_bytes = 10 * 1024 * 1024;
  t.max_group_bytes = 4 * 1024 * 1024;
  job.reduce_tasks.push_back(t);
  ClusterCostModel tight;
  tight.per_task_overhead_micros = 0;
  tight.reduce_memory_bytes = 1024 * 1024;  // heuristic would charge 10 MB

  SimulatedJobTime inferred = SimulateJob(job, 4, tight);

  // With a measured 2 MB of spill the simulator charges exactly that —
  // not every input byte the heuristic assumes.
  job.reduce_tasks[0].spilled_bytes = 2 * 1024 * 1024;
  SimulatedJobTime measured = SimulateJob(job, 4, tight);
  EXPECT_LT(measured.total_ms, inferred.total_ms);

  ClusterCostModel roomy = tight;
  roomy.reduce_memory_bytes = 1ull << 40;
  job.reduce_tasks[0].spilled_bytes = 0;
  SimulatedJobTime baseline = SimulateJob(job, 4, roomy);
  job.reduce_tasks[0].spilled_bytes = 2 * 1024 * 1024;
  SimulatedJobTime spilled = SimulateJob(job, 4, roomy);
  const double expected_extra_ms =
      2.0 * 1024 * 1024 * roomy.spill_micros_per_byte / 1000.0;
  EXPECT_NEAR(spilled.total_ms - baseline.total_ms, expected_extra_ms, 1e-6);
}

TEST(EngineTest, SingleRecordInput) {
  Engine engine(0);
  Dataset output;
  JobMetrics metrics;
  ASSERT_TRUE(engine
                  .Run(WordCountConfig(8, 8, true), {{"1", "solo"}}, &output,
                       &metrics)
                  .ok());
  ASSERT_EQ(output.size(), 1u);
  EXPECT_EQ(output[0].key, "solo");
  // Map task count is clamped to the input size.
  EXPECT_EQ(metrics.map_tasks.size(), 1u);
}

}  // namespace
}  // namespace fsjoin::mr
