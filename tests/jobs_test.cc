// Unit tests for the MR-facing plumbing of core/: corpus dataset serde,
// the ordering job, the fragment partitioner, partial-overlap encoding,
// verification decoding, config validation and report structure.

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/baseline.h"
#include "core/fsjoin.h"
#include "core/jobs.h"
#include "mr/engine.h"
#include "test_util.h"
#include "text/generator.h"
#include "util/hash.h"
#include "util/serde.h"

namespace fsjoin {
namespace {

using ::fsjoin::testing::CorpusFromTokenSets;
using ::fsjoin::testing::RandomCorpus;

TEST(CorpusDatasetTest, RoundTrip) {
  Corpus corpus = RandomCorpus(40, 60, 1.0, 8, 1);
  mr::Dataset dataset = MakeCorpusDataset(corpus);
  ASSERT_EQ(dataset.size(), corpus.NumRecords());
  for (size_t i = 0; i < dataset.size(); ++i) {
    RecordId rid = 0;
    std::vector<TokenId> tokens;
    ASSERT_TRUE(DecodeCorpusRecord(dataset[i], &rid, &tokens).ok());
    EXPECT_EQ(rid, corpus.records[i].id);
    EXPECT_EQ(tokens, corpus.records[i].tokens);
  }
  // Keys are bytewise-sortable record ids.
  EXPECT_LT(dataset[0].key, dataset[1].key);
}

TEST(CorpusDatasetTest, DecodeRejectsGarbage) {
  RecordId rid = 0;
  std::vector<TokenId> tokens;
  EXPECT_FALSE(DecodeCorpusRecord({"", ""}, &rid, &tokens).ok());
  EXPECT_FALSE(DecodeCorpusRecord({"abcd", "\xff\xff\xff"}, &rid, &tokens).ok());
}

TEST(OrderingJobTest, ComputesExactFrequencies) {
  Corpus corpus = CorpusFromTokenSets({{0, 1, 2}, {1, 2}, {2}});
  mr::Engine engine(0);
  mr::Dataset output;
  mr::JobMetrics metrics;
  ASSERT_TRUE(engine
                  .Run(MakeOrderingJobConfig(2, 3), MakeCorpusDataset(corpus),
                       &output, &metrics)
                  .ok())
      << "ordering job failed";
  Result<GlobalOrder> order =
      BuildGlobalOrderFromJobOutput(output, corpus.dictionary.size());
  ASSERT_TRUE(order.ok());
  // Frequencies: t0=1, t1=2, t2=3 (token ids match interning order).
  TokenId t0 = corpus.dictionary.Lookup("t0").value();
  TokenId t1 = corpus.dictionary.Lookup("t1").value();
  TokenId t2 = corpus.dictionary.Lookup("t2").value();
  EXPECT_EQ(order->RankOf(t0), 0u);
  EXPECT_EQ(order->RankOf(t1), 1u);
  EXPECT_EQ(order->RankOf(t2), 2u);
  EXPECT_EQ(order->TotalFrequency(), 6u);
  // Combiner must have pre-aggregated (shuffle < map emissions).
  EXPECT_LT(metrics.shuffle_records, 6u);
}

TEST(OrderingJobTest, RejectsOutOfVocabularyTokens) {
  Corpus corpus = CorpusFromTokenSets({{0, 1}});
  mr::Engine engine(0);
  mr::Dataset output;
  mr::JobMetrics metrics;
  ASSERT_TRUE(engine
                  .Run(MakeOrderingJobConfig(1, 1), MakeCorpusDataset(corpus),
                       &output, &metrics)
                  .ok());
  // Pretend the vocabulary is smaller than the data claims.
  EXPECT_FALSE(BuildGlobalOrderFromJobOutput(output, 1).ok());
}

TEST(FragmentPartitionerTest, SpreadsFragmentsRoundRobin) {
  FragmentPartitioner partitioner(/*num_vertical=*/4);
  auto key = [](uint32_t h, uint32_t v) {
    std::string k;
    PutFixed32BE(&k, h);
    PutFixed32BE(&k, v);
    return k;
  };
  // (h, v) -> (h*4 + v) % partitions.
  EXPECT_EQ(partitioner.Partition(key(0, 0), 3), 0u);
  EXPECT_EQ(partitioner.Partition(key(0, 1), 3), 1u);
  EXPECT_EQ(partitioner.Partition(key(0, 3), 3), 0u);
  EXPECT_EQ(partitioner.Partition(key(1, 0), 3), 1u);
  EXPECT_EQ(partitioner.Partition(key(2, 2), 3), 1u);
  // Malformed keys fall back to hashing, never crash.
  (void)partitioner.Partition("xy", 3);
}

TEST(FragmentPartitionerTest, ShortKeysFallBackToStableHash) {
  FragmentPartitioner partitioner(/*num_vertical=*/4);
  // Anything shorter than the 8-byte (h, v) prefix — including a key that
  // decodes h but runs out mid-v — hashes instead of decoding.
  for (std::string_view key : {std::string_view(""), std::string_view("a"),
                               std::string_view("abcd"),
                               std::string_view("abcdefg")}) {
    const uint32_t part = partitioner.Partition(key, 3);
    EXPECT_LT(part, 3u);
    EXPECT_EQ(part, Fnv1a64(key) % 3) << "key size " << key.size();
  }
}

TEST(FragmentPartitionerTest, SinglePartitionAndWrapAround) {
  FragmentPartitioner partitioner(/*num_vertical=*/4);
  auto key = [](uint32_t h, uint32_t v) {
    std::string k;
    PutFixed32BE(&k, h);
    PutFixed32BE(&k, v);
    return k;
  };
  // One partition absorbs everything, on both the decode and hash paths.
  EXPECT_EQ(partitioner.Partition(key(3, 2), 1), 0u);
  EXPECT_EQ(partitioner.Partition("x", 1), 0u);
  // Fragment ids far beyond the partition count wrap via modulo.
  EXPECT_EQ(partitioner.Partition(key(1000000, 3), 7), (1000000u * 4 + 3) % 7);
  EXPECT_EQ(partitioner.Partition(key(0xFFFFFFFFu, 0), 3),
            (0xFFFFFFFFu * 4u) % 3);
}

TEST(PartialOverlapTest, EncodingMatchesVerificationInput) {
  PartialOverlap p{3, 9, 25, 40, 7};
  std::string key, value;
  EncodePartialOverlap(p, &key, &value);
  Decoder key_dec(key);
  uint32_t a = 0, b = 0;
  ASSERT_TRUE(key_dec.GetFixed32BE(&a).ok());
  ASSERT_TRUE(key_dec.GetFixed32BE(&b).ok());
  EXPECT_EQ(a, 3u);
  EXPECT_EQ(b, 9u);
  Decoder value_dec(value);
  uint64_t c = 0, la = 0, lb = 0;
  ASSERT_TRUE(value_dec.GetVarint64(&c).ok());
  ASSERT_TRUE(value_dec.GetVarint64(&la).ok());
  ASSERT_TRUE(value_dec.GetVarint64(&lb).ok());
  EXPECT_EQ(c, 7u);
  EXPECT_EQ(la, 25u);
  EXPECT_EQ(lb, 40u);
}

TEST(VerificationJobTest, AggregatesAcrossFragments) {
  // Two partial overlaps of the same pair (3 + 4 = 7 of sizes 8/9) must be
  // summed: jaccard = 7/10 = 0.7.
  mr::Dataset partials;
  for (uint64_t c : {3u, 4u}) {
    PartialOverlap p{1, 2, 8, 9, c};
    mr::KeyValue kv;
    EncodePartialOverlap(p, &kv.key, &kv.value);
    partials.push_back(std::move(kv));
  }
  auto ctx = std::make_shared<VerificationContext>();
  ctx->config.theta = 0.7;
  ctx->config.function = SimilarityFunction::kJaccard;
  ctx->config.exec.num_map_tasks = 2;
  ctx->config.exec.num_reduce_tasks = 2;
  mr::Engine engine(0);
  mr::Dataset output;
  mr::JobMetrics metrics;
  ASSERT_TRUE(engine
                  .Run(MakeVerificationJobConfig(ctx), partials, &output,
                       &metrics)
                  .ok());
  Result<JoinResultSet> results = DecodeJoinResults(output);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].a, 1u);
  EXPECT_EQ((*results)[0].b, 2u);
  EXPECT_NEAR((*results)[0].similarity, 0.7, 1e-12);
  EXPECT_EQ(ctx->candidate_pairs, 1u);

  // Below threshold with only one partial: no output.
  ctx = std::make_shared<VerificationContext>();
  ctx->config.theta = 0.7;
  ctx->config.exec.num_map_tasks = 1;
  ctx->config.exec.num_reduce_tasks = 1;
  mr::Dataset one(partials.begin(), partials.begin() + 1);
  ASSERT_TRUE(
      engine.Run(MakeVerificationJobConfig(ctx), one, &output, &metrics).ok());
  EXPECT_TRUE(output.empty());
  EXPECT_EQ(ctx->candidate_pairs, 1u);
}

// ---- Config -----------------------------------------------------------

TEST(FsJoinConfigTest, ValidationCatchesBadParameters) {
  FsJoinConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.theta = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config.theta = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config.theta = 0.8;
  config.num_vertical_partitions = 0;
  EXPECT_FALSE(config.Validate().ok());
  config.num_vertical_partitions = 4;
  config.exec.num_map_tasks = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(FsJoinConfigTest, SummaryMentionsKeyKnobs) {
  FsJoinConfig config;
  config.theta = 0.85;
  config.join_method = JoinMethod::kLoop;
  config.pivot_strategy = PivotStrategy::kRandom;
  std::string s = config.Summary();
  EXPECT_NE(s.find("0.85"), std::string::npos);
  EXPECT_NE(s.find("loop"), std::string::npos);
  EXPECT_NE(s.find("random"), std::string::npos);
}

TEST(FsJoinConfigTest, InvalidConfigRejectedByRun) {
  FsJoinConfig config;
  config.theta = -1;
  Corpus corpus = CorpusFromTokenSets({{1, 2}});
  Result<FsJoinOutput> out = FsJoin(config).Run(corpus);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

// ---- Report structure -----------------------------------------------------

TEST(FsJoinReportTest, JobListsAndSummary) {
  Corpus corpus = RandomCorpus(50, 80, 1.0, 8, 77);
  FsJoinConfig config;
  config.theta = 0.8;
  Result<FsJoinOutput> out = FsJoin(config).Run(corpus);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->report.AllJobs().size(), 3u);
  EXPECT_EQ(out->report.JoinJobs().size(), 2u);
  EXPECT_EQ(out->report.AllJobs()[0].job_name, "ordering");
  EXPECT_EQ(out->report.JoinJobs()[0].job_name, "filtering");
  EXPECT_EQ(out->report.JoinJobs()[1].job_name, "verification");
  std::string summary = out->report.Summary();
  EXPECT_NE(summary.find("candidates"), std::string::npos);
  EXPECT_NE(summary.find("shuffle"), std::string::npos);
}

// ---- R-S edge cases -------------------------------------------------------

TEST(FsJoinRsTest, EmptySidesYieldNoPairs) {
  Corpus empty;
  Corpus some = CorpusFromTokenSets({{1, 2, 3}});
  FsJoinConfig config;
  config.theta = 0.5;
  Result<FsJoinOutput> a = FsJoinRS(empty, some, config);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->pairs.empty());
  Result<FsJoinOutput> b = FsJoinRS(some, empty, config);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->pairs.empty());
}

TEST(FsJoinRsTest, IdenticalCollectionsMatchEverywhere) {
  Corpus c = CorpusFromTokenSets({{1, 2, 3}, {4, 5, 6}});
  FsJoinConfig config;
  config.theta = 1.0;
  Result<FsJoinOutput> out = FsJoinRS(c, c, config);
  ASSERT_TRUE(out.ok());
  // Each record matches its twin across the boundary (never within).
  ASSERT_EQ(out->pairs.size(), 2u);
  for (const SimilarPair& p : out->pairs) {
    EXPECT_LT(p.a, 2u);
    EXPECT_GE(p.b, 2u);
    EXPECT_EQ(p.b - 2u, p.a);
    EXPECT_NEAR(p.similarity, 1.0, 1e-12);
  }
}

// ---- Metrics regression ---------------------------------------------------

// The zero-copy shuffle must keep JobMetrics accounting byte-identical to
// the seed engine's per-record path, so perf numbers stay comparable across
// revisions. Expected counters were captured from the seed implementation on
// this fixed-seed corpus and configuration; any drift here means the data
// plane changed what it counts, not just how it stores bytes.
TEST(MetricsRegressionTest, CountersMatchSeedEngine) {
  SyntheticCorpusConfig cfg;
  cfg.num_records = 300;
  cfg.vocab_size = 400;
  cfg.zipf_skew = 1.0;
  cfg.avg_len = 12;
  cfg.len_sigma = 0.7;
  cfg.min_len = 1;
  cfg.max_len = 56;
  cfg.near_duplicate_fraction = 0.35;
  cfg.mutation_rate = 0.12;
  cfg.seed = 4242;
  Corpus corpus = GenerateCorpus(cfg);

  FsJoinConfig config;
  config.theta = 0.8;
  config.num_vertical_partitions = 6;
  config.exec.num_map_tasks = 4;
  config.exec.num_reduce_tasks = 5;
  config.num_horizontal_partitions = 2;
  Result<FsJoinOutput> out = FsJoin(config).Run(corpus);
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  auto max_group_bytes = [](const mr::JobMetrics& m) {
    uint64_t max_group = 0;
    for (const mr::TaskMetrics& t : m.reduce_tasks) {
      max_group = std::max(max_group, t.max_group_bytes);
    }
    return max_group;
  };

  const mr::JobMetrics& ord = out->report.ordering_job;
  EXPECT_EQ(ord.map_input_records, 300u);
  EXPECT_EQ(ord.map_input_bytes, 6677u);
  EXPECT_EQ(ord.map_output_records, 992u);
  EXPECT_EQ(ord.map_output_bytes, 4960u);
  EXPECT_EQ(ord.combine_input_records, 4208u);
  EXPECT_EQ(ord.shuffle_records, 992u);
  EXPECT_EQ(ord.shuffle_bytes, 4960u);
  EXPECT_EQ(ord.reduce_output_records, 375u);
  EXPECT_EQ(ord.reduce_output_bytes, 1878u);
  EXPECT_EQ(max_group_bytes(ord), 20u);

  const mr::JobMetrics& fil = out->report.filtering_job;
  EXPECT_EQ(fil.map_input_records, 300u);
  EXPECT_EQ(fil.map_input_bytes, 6677u);
  EXPECT_EQ(fil.map_output_records, 2382u);
  EXPECT_EQ(fil.map_output_bytes, 42332u);
  EXPECT_EQ(fil.combine_input_records, 0u);
  EXPECT_EQ(fil.shuffle_records, 2382u);
  EXPECT_EQ(fil.shuffle_bytes, 42332u);
  EXPECT_EQ(fil.reduce_output_records, 5628u);
  EXPECT_EQ(fil.reduce_output_bytes, 61908u);
  EXPECT_EQ(max_group_bytes(fil), 2120u);

  const mr::JobMetrics& ver = out->report.verification_job;
  EXPECT_EQ(ver.map_input_records, 5628u);
  EXPECT_EQ(ver.map_input_bytes, 61908u);
  EXPECT_EQ(ver.map_output_records, 5628u);
  EXPECT_EQ(ver.map_output_bytes, 61908u);
  EXPECT_EQ(ver.shuffle_records, 5628u);
  EXPECT_EQ(ver.shuffle_bytes, 61908u);
  EXPECT_EQ(ver.reduce_output_records, 71u);
  EXPECT_EQ(ver.reduce_output_bytes, 1136u);
  EXPECT_EQ(max_group_bytes(ver), 66u);

  EXPECT_EQ(out->report.result_pairs, 71u);
  EXPECT_EQ(out->report.candidate_pairs, 4471u);
}

// ---- Emission budget ------------------------------------------------------

TEST(EmissionBudgetTest, EnforcesLimit) {
  EmissionBudget unlimited(0);
  EXPECT_TRUE(unlimited.Consume(1u << 30).ok());
  EmissionBudget budget(100);
  EXPECT_TRUE(budget.Consume(60).ok());
  EXPECT_TRUE(budget.Consume(40).ok());
  Status st = budget.Consume(1);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_GE(budget.used(), 100u);
}

}  // namespace
}  // namespace fsjoin
