// Horizontal partitioning (§V-A "Optimization"): every θ-similar length
// pair must be joinable in exactly ONE group (coverage + the duplicate-free
// band-anchoring refinement documented in DESIGN.md).

#include <gtest/gtest.h>

#include "core/fsjoin.h"
#include "core/horizontal.h"
#include "sim/serial_join.h"
#include "test_util.h"

namespace fsjoin {
namespace {

TEST(HorizontalTest, DisabledSchemeIsOneGroup) {
  HorizontalScheme scheme;
  EXPECT_EQ(scheme.NumGroups(), 1u);
  EXPECT_EQ(scheme.GroupsOf(17), (std::vector<uint32_t>{0}));
  EXPECT_TRUE(scheme.ShouldJoinInGroup(0, 3, 9000));
}

TEST(HorizontalTest, MainGroupBoundaries) {
  HorizontalScheme scheme({10, 20}, SimilarityFunction::kJaccard, 0.8);
  EXPECT_EQ(scheme.NumGroups(), 5u);
  EXPECT_EQ(scheme.MainGroupOf(9), 0u);
  EXPECT_EQ(scheme.MainGroupOf(10), 1u);  // pivot starts the next group
  EXPECT_EQ(scheme.MainGroupOf(19), 1u);
  EXPECT_EQ(scheme.MainGroupOf(20), 2u);
  EXPECT_EQ(scheme.MainGroupOf(1000), 2u);
}

TEST(HorizontalTest, BandMembershipMatchesPaperBounds) {
  // theta=0.8, pivot L=10: band holds lengths in [ceil(0.8*10), floor(10/0.8)]
  // = [8, 12].
  HorizontalScheme scheme({10}, SimilarityFunction::kJaccard, 0.8);
  auto in_band = [&](uint32_t len) {
    auto groups = scheme.GroupsOf(len);
    return std::find(groups.begin(), groups.end(), 1u + 0 + 1) !=
           groups.end();  // band id = t + k = 1 + 1... NumPivots()=1, band=2
  };
  (void)in_band;
  auto groups_of = [&](uint32_t len) { return scheme.GroupsOf(len); };
  // Band id is t + k = 1 + 1 = 2.
  EXPECT_EQ(groups_of(7), (std::vector<uint32_t>{0}));
  EXPECT_EQ(groups_of(8), (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(groups_of(9), (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(groups_of(10), (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(groups_of(12), (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(groups_of(13), (std::vector<uint32_t>{1}));
}

// The central property: for every pair of lengths that could be θ-similar
// (shorter >= PartnerSizeLowerBound(longer)), there is EXACTLY one group
// where both records are members AND ShouldJoinInGroup allows the pair.
// For pairs violating the length filter, AT MOST one group may join them
// (they are pruned by StrL inside the fragment anyway).
TEST(HorizontalTest, EveryFeasiblePairJoinsExactlyOnce) {
  const double theta = 0.8;
  const SimilarityFunction fn = SimilarityFunction::kJaccard;
  for (std::vector<uint32_t> pivots :
       {std::vector<uint32_t>{10}, std::vector<uint32_t>{10, 20},
        std::vector<uint32_t>{5, 11, 12, 40},
        std::vector<uint32_t>{8, 9, 10, 11, 12}}) {
    HorizontalScheme scheme(pivots, fn, theta);
    for (uint32_t la = 1; la <= 60; ++la) {
      std::vector<uint32_t> groups_a = scheme.GroupsOf(la);
      for (uint32_t lb = la; lb <= 60; ++lb) {
        std::vector<uint32_t> groups_b = scheme.GroupsOf(lb);
        int join_count = 0;
        for (uint32_t g : groups_a) {
          if (std::find(groups_b.begin(), groups_b.end(), g) !=
                  groups_b.end() &&
              scheme.ShouldJoinInGroup(g, la, lb)) {
            ++join_count;
          }
        }
        const bool feasible = la >= PartnerSizeLowerBound(fn, theta, lb);
        if (feasible) {
          EXPECT_EQ(join_count, 1)
              << "lengths (" << la << "," << lb << ") pivots n="
              << pivots.size();
        } else {
          EXPECT_LE(join_count, 1)
              << "lengths (" << la << "," << lb << ")";
        }
      }
    }
  }
}

// Same property for the other similarity functions (generic bounds).
TEST(HorizontalTest, FeasiblePairCoverageDiceCosine) {
  for (auto fn : {SimilarityFunction::kDice, SimilarityFunction::kCosine}) {
    const double theta = 0.85;
    HorizontalScheme scheme({7, 15, 30}, fn, theta);
    for (uint32_t la = 1; la <= 50; ++la) {
      auto groups_a = scheme.GroupsOf(la);
      for (uint32_t lb = la; lb <= 50; ++lb) {
        auto groups_b = scheme.GroupsOf(lb);
        int join_count = 0;
        for (uint32_t g : groups_a) {
          if (std::find(groups_b.begin(), groups_b.end(), g) !=
                  groups_b.end() &&
              scheme.ShouldJoinInGroup(g, la, lb)) {
            ++join_count;
          }
        }
        if (la >= PartnerSizeLowerBound(fn, theta, lb)) {
          EXPECT_EQ(join_count, 1) << SimilarityFunctionName(fn) << " ("
                                   << la << "," << lb << ")";
        } else {
          EXPECT_LE(join_count, 1);
        }
      }
    }
  }
}

TEST(HorizontalTest, SelectLengthPivotsQuantiles) {
  std::vector<OrderedRecord> records;
  for (uint32_t len = 1; len <= 100; ++len) {
    OrderedRecord r;
    r.id = len - 1;
    r.tokens.resize(len);
    records.push_back(r);
  }
  auto pivots = SelectLengthPivots(records, 3,
                                   SimilarityFunction::kJaccard, 0.8);
  ASSERT_EQ(pivots.size(), 3u);
  EXPECT_NEAR(pivots[0], 25, 2);
  EXPECT_NEAR(pivots[1], 50, 2);
  EXPECT_NEAR(pivots[2], 75, 2);
}

TEST(HorizontalTest, SelectLengthPivotsDegenerate) {
  EXPECT_TRUE(SelectLengthPivots({}, 3, SimilarityFunction::kJaccard, 0.8)
                  .empty());
  // All records the same length: at most one distinct pivot, strictly
  // increasing.
  std::vector<OrderedRecord> uniform(50);
  for (auto& r : uniform) r.tokens.resize(5);
  auto pivots =
      SelectLengthPivots(uniform, 4, SimilarityFunction::kJaccard, 0.8);
  EXPECT_LE(pivots.size(), 1u);
}


TEST(HorizontalTest, MembershipBoundedWithGappedPivots) {
  // With geometrically-gapped pivots (lb(L_{k+1}) > L_k) every record
  // belongs to at most 3 groups: main, one shorter-side band, one
  // longer-side band.
  const double theta = 0.8;
  const SimilarityFunction fn = SimilarityFunction::kJaccard;
  std::vector<uint32_t> pivots = {10, 15, 20, 30, 40, 60, 80};
  for (size_t i = 1; i < pivots.size(); ++i) {
    ASSERT_GT(PartnerSizeLowerBound(fn, theta, pivots[i]), pivots[i - 1]);
  }
  HorizontalScheme scheme(pivots, fn, theta);
  for (uint32_t len = 1; len <= 120; ++len) {
    EXPECT_LE(scheme.GroupsOf(len).size(), 3u) << "len=" << len;
  }
}

// ---- Boundary-band edge cases ---------------------------------------------

// t = 0 via the full pipeline: num_horizontal_partitions = 0 must behave
// exactly like the disabled scheme (one group, everything joined there).
TEST(HorizontalTest, EndToEndZeroPivots) {
  Corpus corpus = ::fsjoin::testing::RandomCorpus(30, 40, 0.9, 6.0, 31);
  FsJoinConfig config;
  config.theta = 0.7;
  config.num_vertical_partitions = 4;
  config.num_horizontal_partitions = 0;
  JoinResultSet expected = BruteForceJoin(::fsjoin::testing::OrderedView(corpus),
                                          config.function, config.theta);
  Result<FsJoinOutput> result = FsJoin(config).Run(corpus);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(SamePairs(expected, result->pairs))
      << DiffResults(expected, result->pairs);
}

// Fragment smaller than 2t+1: fewer records than length groups. Most groups
// are empty; coverage and dedup must still hold.
TEST(HorizontalTest, EndToEndFewerRecordsThanGroups) {
  Corpus corpus = ::fsjoin::testing::CorpusFromTokenSets({
      {1, 2, 3},
      {1, 2, 3, 4},
      {1, 2, 3, 4, 5, 6, 7, 8},
  });
  for (uint32_t t : {3u, 5u, 8u}) {  // up to 17 groups for 3 records
    FsJoinConfig config;
    config.theta = 0.6;
    config.num_vertical_partitions = 2;
    config.num_horizontal_partitions = t;
    JoinResultSet expected = BruteForceJoin(
        ::fsjoin::testing::OrderedView(corpus), config.function, config.theta);
    Result<FsJoinOutput> result = FsJoin(config).Run(corpus);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(SamePairs(expected, result->pairs))
        << "t=" << t << "\n" << DiffResults(expected, result->pairs);
  }
}

// All records equal length: every quantile candidate collapses to one
// value, so at most one pivot survives and no band can straddle anything —
// yet the result must stay exact end to end.
TEST(HorizontalTest, EndToEndAllRecordsEqualLength) {
  std::vector<std::vector<uint32_t>> sets;
  for (uint32_t i = 0; i < 12; ++i) {
    // Length-5 sets with heavy overlap between neighbors.
    sets.push_back({i, i + 1, i + 2, i + 3, i + 4});
  }
  Corpus corpus = ::fsjoin::testing::CorpusFromTokenSets(sets);
  FsJoinConfig config;
  config.theta = 0.6;
  config.num_vertical_partitions = 3;
  config.num_horizontal_partitions = 4;
  JoinResultSet expected = BruteForceJoin(::fsjoin::testing::OrderedView(corpus),
                                          config.function, config.theta);
  Result<FsJoinOutput> result = FsJoin(config).Run(corpus);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(SamePairs(expected, result->pairs))
      << DiffResults(expected, result->pairs);
}

// Zero-length (empty) records must have a well-defined main group and never
// join anything at positive theta.
TEST(HorizontalTest, ZeroLengthMembership) {
  HorizontalScheme scheme({10, 20}, SimilarityFunction::kJaccard, 0.8);
  std::vector<uint32_t> groups = scheme.GroupsOf(0);
  ASSERT_FALSE(groups.empty());
  EXPECT_EQ(groups.front(), scheme.MainGroupOf(0));
  EXPECT_EQ(scheme.MainGroupOf(0), 0u);
}

TEST(HorizontalTest, SelectLengthPivotsEnforcesGeometricGap) {
  // A dense length distribution: quantile candidates are close together;
  // thinning must keep only pivots a full similarity window apart.
  std::vector<OrderedRecord> records;
  for (uint32_t len = 50; len <= 70; ++len) {
    for (int copies = 0; copies < 10; ++copies) {
      OrderedRecord r;
      r.tokens.resize(len);
      records.push_back(r);
    }
  }
  const double theta = 0.8;
  auto pivots = SelectLengthPivots(records, 10,
                                   SimilarityFunction::kJaccard, theta);
  ASSERT_FALSE(pivots.empty());
  for (size_t i = 1; i < pivots.size(); ++i) {
    EXPECT_GT(PartnerSizeLowerBound(SimilarityFunction::kJaccard, theta,
                                    pivots[i]),
              pivots[i - 1]);
  }
  // Lengths 50..70 span less than a 1/0.8 factor from 56 up, so very few
  // pivots can coexist.
  EXPECT_LE(pivots.size(), 3u);
}

}  // namespace
}  // namespace fsjoin
