// The external-shuffle subsystem: CRC32C, the memory-budget governor, spill
// run files (round trips plus fault-injection on real runs), RAII scratch
// directories and the streaming loser-tree merge.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "store/memory_budget.h"
#include "store/merge.h"
#include "store/record_stream.h"
#include "store/run_file.h"
#include "store/temp_dir.h"
#include "util/crc32c.h"
#include "util/random.h"
#include "util/status.h"

namespace fsjoin::store {
namespace {

namespace fs = std::filesystem;

using Record = std::pair<std::string, std::string>;

// ---- CRC32C ----------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  EXPECT_EQ(Crc32c(""), 0x00000000u);
  EXPECT_EQ(Crc32c("a"), 0xC1D04330u);
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c("The quick brown fox jumps over the lazy dog"),
            0x22620404u);
}

TEST(Crc32cTest, ExtendComposesLikeConcatenation) {
  const std::string a = "hello, ";
  const std::string b = "external shuffle";
  EXPECT_EQ(Crc32cExtend(Crc32c(a), b), Crc32c(a + b));
  // Byte-at-a-time extension equals one-shot too (exercises the tail loop
  // against the 8-byte slicing loop).
  uint32_t crc = 0;
  const std::string all = a + b;
  for (char c : all) crc = Crc32cExtend(crc, std::string_view(&c, 1));
  EXPECT_EQ(crc, Crc32c(all));
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string data(300, '\0');
  Rng rng(42);
  for (char& c : data) c = static_cast<char>(rng.NextBounded(256));
  const uint32_t good = Crc32c(data);
  for (size_t i = 0; i < data.size(); i += 37) {
    std::string bad = data;
    bad[i] ^= 0x10;
    EXPECT_NE(Crc32c(bad), good) << "flip at " << i;
  }
}

// ---- MemoryBudget ----------------------------------------------------

TEST(MemoryBudgetTest, ChargesAndReleases) {
  MemoryBudget budget(100);
  EXPECT_TRUE(budget.Charge(60));
  EXPECT_EQ(budget.used(), 60u);
  EXPECT_TRUE(budget.Charge(40));  // exactly at the limit: still fine
  EXPECT_FALSE(budget.Charge(1));  // over
  budget.Release(1);
  budget.Release(100);
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_TRUE(budget.Charge(100));
}

TEST(MemoryBudgetTest, ZeroLimitTripsEveryCharge) {
  MemoryBudget budget(0);
  EXPECT_FALSE(budget.Charge(1));
  budget.Release(1);
}

TEST(MemoryBudgetTest, UnlimitedNeverTrips) {
  MemoryBudget budget;  // kUnlimited
  EXPECT_TRUE(budget.Charge(UINT64_MAX / 2));
  budget.Release(UINT64_MAX / 2);
}

TEST(MemoryBudgetTest, ParentLimitTripsChildCharge) {
  MemoryBudget parent(100);
  MemoryBudget wide_child(1000, &parent);
  MemoryBudget other_child(1000, &parent);
  EXPECT_TRUE(wide_child.Charge(80));  // parent at 80/100
  // The second child is far under its own limit, but the shared parent
  // trips — this is how concurrent jobs share one process ceiling.
  EXPECT_FALSE(other_child.Charge(30));
  EXPECT_EQ(parent.used(), 110u);
  other_child.Release(30);
  wide_child.Release(80);
  EXPECT_EQ(parent.used(), 0u);
  EXPECT_EQ(wide_child.used(), 0u);
}

TEST(MemoryBudgetTest, SetLimitNarrowsLater) {
  MemoryBudget budget;
  EXPECT_TRUE(budget.Charge(500));
  budget.set_limit(100);
  EXPECT_FALSE(budget.Charge(1));
  budget.Release(501);
}

// ---- TempSpillDir ----------------------------------------------------

TEST(TempSpillDirTest, RemovesContentsOnScopeExit) {
  std::string path;
  {
    auto dir = TempSpillDir::Create("", "fsjoin-store-test");
    ASSERT_TRUE(dir.ok()) << dir.status().ToString();
    path = dir->path();
    ASSERT_TRUE(fs::is_directory(path));
    std::ofstream(path + "/leftover.run") << "bytes";
    ASSERT_TRUE(fs::exists(path + "/leftover.run"));
  }
  EXPECT_FALSE(fs::exists(path));
}

TEST(TempSpillDirTest, MoveTransfersOwnership) {
  auto dir = TempSpillDir::Create("", "fsjoin-store-test");
  ASSERT_TRUE(dir.ok());
  const std::string path = dir->path();
  {
    TempSpillDir moved = std::move(dir).value();
    EXPECT_EQ(moved.path(), path);
    EXPECT_TRUE(fs::exists(path));
  }
  EXPECT_FALSE(fs::exists(path));
}

TEST(TempSpillDirTest, CreatesMissingBaseAndDistinctNames) {
  auto base_holder = TempSpillDir::Create("", "fsjoin-store-test");
  ASSERT_TRUE(base_holder.ok());
  const std::string base = base_holder->path() + "/nested/deeper";
  auto a = TempSpillDir::Create(base, "run");
  auto b = TempSpillDir::Create(base, "run");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->path(), b->path());
}

// ---- Run files -------------------------------------------------------

std::vector<Record> SortedRecords(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Record> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string key;
    const size_t len = rng.NextBounded(10);
    for (size_t j = 0; j < len; ++j) {
      key.push_back(static_cast<char>('a' + rng.NextBounded(3)));
    }
    records.emplace_back(std::move(key), "v" + std::to_string(i));
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const Record& a, const Record& b) {
                     return a.first < b.first;
                   });
  return records;
}

Status WriteRun(const std::string& path, const std::vector<Record>& records,
                size_t block_bytes) {
  RunWriter writer(path, block_bytes);
  FSJOIN_RETURN_NOT_OK(writer.Open());
  for (const Record& r : records) {
    FSJOIN_RETURN_NOT_OK(writer.Add(r.first, r.second));
  }
  return writer.Finish();
}

/// Streams a whole RecordStream into a vector (copies the views).
Status Drain(RecordStream* stream, std::vector<Record>* out) {
  for (;;) {
    bool has = false;
    std::string_view key, value;
    FSJOIN_RETURN_NOT_OK(stream->Next(&has, &key, &value));
    if (!has) return Status::OK();
    out->emplace_back(std::string(key), std::string(value));
  }
}

Status ReadRun(const std::string& path, std::vector<Record>* out) {
  auto reader = RunReader::Open(path);
  FSJOIN_RETURN_NOT_OK(reader.status());
  return Drain(reader->get(), out);
}

class RunFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempSpillDir::Create("", "fsjoin-run-test");
    ASSERT_TRUE(dir.ok()) << dir.status().ToString();
    dir_.emplace(std::move(dir).value());
  }

  std::string Path(const std::string& name) const {
    return dir_->path() + "/" + name;
  }

  std::optional<TempSpillDir> dir_;
};

TEST_F(RunFileTest, RoundTripsAcrossManyBlocks) {
  const std::vector<Record> records = SortedRecords(800, 11);
  // A 64-byte block target forces many small frames.
  ASSERT_TRUE(WriteRun(Path("a.run"), records, 64).ok());

  auto reader = RunReader::Open(Path("a.run"));
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->records(), records.size());
  std::vector<Record> read;
  ASSERT_TRUE(Drain(reader->get(), &read).ok());
  EXPECT_EQ(read, records);
}

TEST_F(RunFileTest, RoundTripsEmptyRunAndEmptyFields) {
  ASSERT_TRUE(WriteRun(Path("empty.run"), {}, 64).ok());
  std::vector<Record> read;
  ASSERT_TRUE(ReadRun(Path("empty.run"), &read).ok());
  EXPECT_TRUE(read.empty());

  const std::vector<Record> odd = {{"", ""}, {"", "v"}, {"k", ""}};
  ASSERT_TRUE(WriteRun(Path("odd.run"), odd, 64).ok());
  read.clear();
  ASSERT_TRUE(ReadRun(Path("odd.run"), &read).ok());
  EXPECT_EQ(read, odd);
}

TEST_F(RunFileTest, MissingFileIsIoError) {
  auto reader = RunReader::Open(Path("nope.run"));
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kIoError);
}

TEST_F(RunFileTest, ShortFooterIsCorruption) {
  std::ofstream(Path("short.run"), std::ios::binary) << "tiny";
  auto reader = RunReader::Open(Path("short.run"));
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void Dump(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST_F(RunFileTest, EveryBitFlipIsDetected) {
  // Flip one byte at a sweep of offsets covering block headers, payloads
  // and the footer: reading the damaged run must fail with Corruption —
  // never crash, never silently return wrong records.
  const std::vector<Record> records = SortedRecords(120, 22);
  ASSERT_TRUE(WriteRun(Path("good.run"), records, 128).ok());
  const std::string good = Slurp(Path("good.run"));
  ASSERT_GT(good.size(), kRunFooterBytes);

  for (size_t i = 0; i < good.size(); i += 7) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    Dump(Path("bad.run"), bad);
    std::vector<Record> read;
    const Status st = ReadRun(Path("bad.run"), &read);
    ASSERT_FALSE(st.ok()) << "flip at offset " << i << " went unnoticed";
    EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
  }
}

TEST_F(RunFileTest, TruncationsAreDetected) {
  const std::vector<Record> records = SortedRecords(200, 33);
  ASSERT_TRUE(WriteRun(Path("good.run"), records, 128).ok());
  const std::string good = Slurp(Path("good.run"));

  // Cut the file at several points: inside a block, inside the footer,
  // and dropping just the trailing byte.
  for (size_t keep :
       {good.size() - 1, good.size() - kRunFooterBytes, good.size() / 2,
        kRunFooterBytes, size_t{1}}) {
    Dump(Path("cut.run"), good.substr(0, keep));
    std::vector<Record> read;
    const Status st = ReadRun(Path("cut.run"), &read);
    ASSERT_FALSE(st.ok()) << "truncation to " << keep << " went unnoticed";
    EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
  }
}

TEST_F(RunFileTest, AppendedGarbageIsDetected) {
  // Valid footer bytes preceded by an extra block the footer never
  // promised: the count cross-check at end-of-stream must complain.
  const std::vector<Record> records = SortedRecords(50, 44);
  ASSERT_TRUE(WriteRun(Path("good.run"), records, 1 << 20).ok());
  const std::string good = Slurp(Path("good.run"));
  const std::string body = good.substr(0, good.size() - kRunFooterBytes);
  const std::string footer = good.substr(good.size() - kRunFooterBytes);
  Dump(Path("dup.run"), body + body + footer);
  std::vector<Record> read;
  const Status st = ReadRun(Path("dup.run"), &read);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
}

// ---- LoserTreeMerge --------------------------------------------------

/// In-memory RecordStream over a sorted vector (test double).
class VectorStream : public RecordStream {
 public:
  explicit VectorStream(std::vector<Record> records)
      : records_(std::move(records)) {}

  Status Next(bool* has_record, std::string_view* key,
              std::string_view* value) override {
    if (pos_ >= records_.size()) {
      *has_record = false;
      return Status::OK();
    }
    *key = records_[pos_].first;
    *value = records_[pos_].second;
    ++pos_;
    *has_record = true;
    return Status::OK();
  }

 private:
  std::vector<Record> records_;
  size_t pos_ = 0;
};

std::vector<Record> ReferenceMerge(
    const std::vector<std::vector<Record>>& sources) {
  // Stable merge == concatenate in source order, then stable sort by key.
  std::vector<Record> all;
  for (const auto& src : sources) {
    all.insert(all.end(), src.begin(), src.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Record& a, const Record& b) {
                     return a.first < b.first;
                   });
  return all;
}

Status MergeAll(std::vector<std::vector<Record>> sources,
                std::vector<Record>* out) {
  std::vector<std::unique_ptr<RecordStream>> streams;
  streams.reserve(sources.size());
  for (auto& src : sources) {
    streams.push_back(std::make_unique<VectorStream>(std::move(src)));
  }
  LoserTreeMerge merge(std::move(streams));
  return Drain(&merge, out);
}

TEST(LoserTreeMergeTest, ZeroAndOneSource) {
  std::vector<Record> out;
  ASSERT_TRUE(MergeAll({}, &out).ok());
  EXPECT_TRUE(out.empty());

  const std::vector<Record> only = {{"a", "1"}, {"a", "2"}, {"b", "3"}};
  out.clear();
  ASSERT_TRUE(MergeAll({only}, &out).ok());
  EXPECT_EQ(out, only);  // single-source fast path forwards verbatim
}

TEST(LoserTreeMergeTest, BreaksTiesOnSourceIndex) {
  // Every source carries the same key: the merge must emit source 0's
  // records first, then source 1's, ... — the arrival order a stable
  // in-memory sort would have kept.
  std::vector<std::vector<Record>> sources;
  for (int s = 0; s < 5; ++s) {
    sources.push_back({{"k", "s" + std::to_string(s) + "a"},
                       {"k", "s" + std::to_string(s) + "b"}});
  }
  std::vector<Record> out;
  ASSERT_TRUE(MergeAll(sources, &out).ok());
  const std::vector<Record> expected = ReferenceMerge(sources);
  EXPECT_EQ(out, expected);
  EXPECT_EQ(out.front().second, "s0a");
  EXPECT_EQ(out.back().second, "s4b");
}

TEST(LoserTreeMergeTest, HandlesEmptySourcesAmongNonEmpty) {
  std::vector<std::vector<Record>> sources = {
      {}, {{"a", "1"}}, {}, {{"a", "2"}, {"c", "3"}}, {}};
  std::vector<Record> out;
  ASSERT_TRUE(MergeAll(sources, &out).ok());
  EXPECT_EQ(out, ReferenceMerge(sources));
}

TEST(LoserTreeMergeTest, RandomizedAgainstStableReference) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t k = 1 + rng.NextBounded(9);  // covers non-powers of two
    std::vector<std::vector<Record>> sources(k);
    for (size_t s = 0; s < k; ++s) {
      const size_t n = rng.NextBounded(40);
      std::vector<Record>& src = sources[s];
      for (size_t i = 0; i < n; ++i) {
        std::string key;
        const size_t len = rng.NextBounded(6);
        for (size_t j = 0; j < len; ++j) {
          key.push_back(static_cast<char>('a' + rng.NextBounded(2)));
        }
        src.emplace_back(std::move(key),
                         "s" + std::to_string(s) + "." + std::to_string(i));
      }
      std::stable_sort(src.begin(), src.end(),
                       [](const Record& a, const Record& b) {
                         return a.first < b.first;
                       });
    }
    std::vector<Record> out;
    ASSERT_TRUE(MergeAll(sources, &out).ok());
    EXPECT_EQ(out, ReferenceMerge(sources)) << "trial " << trial;
  }
}

TEST(LoserTreeMergeTest, MergesRunFilesWrittenToDisk) {
  auto dir = TempSpillDir::Create("", "fsjoin-merge-test");
  ASSERT_TRUE(dir.ok());
  std::vector<std::vector<Record>> sources;
  std::vector<std::unique_ptr<RecordStream>> streams;
  for (int s = 0; s < 3; ++s) {
    sources.push_back(SortedRecords(150, 100 + s));
    const std::string path =
        dir->path() + "/r" + std::to_string(s) + ".run";
    ASSERT_TRUE(WriteRun(path, sources.back(), 96).ok());
    auto reader = RunReader::Open(path);
    ASSERT_TRUE(reader.ok());
    streams.push_back(std::move(reader).value());
  }
  LoserTreeMerge merge(std::move(streams));
  std::vector<Record> out;
  ASSERT_TRUE(Drain(&merge, &out).ok());
  EXPECT_EQ(out, ReferenceMerge(sources));
}

}  // namespace
}  // namespace fsjoin::store
