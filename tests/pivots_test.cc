// Vertical pivot selection (§IV): the three strategies' structural
// guarantees — strictly increasing boundaries, Even-TF's frequency balance,
// Even-Interval's rank balance — and SegmentOfRank's boundary semantics.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/pivots.h"
#include "test_util.h"

namespace fsjoin {
namespace {

GlobalOrder SkewedOrder(size_t vocab) {
  // Zipf-like frequencies: token t has frequency ~ vocab/(t+1).
  std::vector<uint64_t> freq(vocab);
  for (size_t t = 0; t < vocab; ++t) freq[t] = vocab / (t + 1) + 1;
  return GlobalOrder::FromFrequencies(std::move(freq));
}

void ExpectValidPivots(const std::vector<TokenRank>& pivots, size_t vocab) {
  for (size_t i = 0; i < pivots.size(); ++i) {
    EXPECT_GT(pivots[i], 0u);
    EXPECT_LT(pivots[i], vocab);
    if (i > 0) {
      EXPECT_GT(pivots[i], pivots[i - 1]);
    }
  }
}

class PivotStrategies : public ::testing::TestWithParam<PivotStrategy> {};

TEST_P(PivotStrategies, ProducesValidBoundaries) {
  GlobalOrder order = SkewedOrder(1000);
  for (uint32_t n : {1u, 4u, 9u, 31u}) {
    auto pivots = SelectPivots(order, GetParam(), n, 42);
    EXPECT_LE(pivots.size(), n);
    ExpectValidPivots(pivots, 1000);
  }
}

TEST_P(PivotStrategies, HandlesDegenerateDomains) {
  // Tiny domains cannot host many pivots but must not crash or duplicate.
  GlobalOrder order = GlobalOrder::FromFrequencies({5, 3});
  auto pivots = SelectPivots(order, GetParam(), 10, 7);
  EXPECT_LE(pivots.size(), 1u);
  ExpectValidPivots(pivots, 2);

  GlobalOrder single = GlobalOrder::FromFrequencies({5});
  EXPECT_TRUE(SelectPivots(single, GetParam(), 3, 7).empty());
  EXPECT_TRUE(SelectPivots(order, GetParam(), 0, 7).empty());
}

INSTANTIATE_TEST_SUITE_P(All, PivotStrategies,
                         ::testing::Values(PivotStrategy::kRandom,
                                           PivotStrategy::kEvenInterval,
                                           PivotStrategy::kEvenTf),
                         [](const ::testing::TestParamInfo<PivotStrategy>& i) {
                           std::string n = PivotStrategyName(i.param);
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

TEST(PivotsTest, EvenIntervalSplitsRanksEvenly) {
  GlobalOrder order = SkewedOrder(1000);
  auto pivots = SelectPivots(order, PivotStrategy::kEvenInterval, 9, 0);
  ASSERT_EQ(pivots.size(), 9u);
  for (size_t i = 0; i < pivots.size(); ++i) {
    EXPECT_EQ(pivots[i], (i + 1) * 100);
  }
}

TEST(PivotsTest, EvenTfBalancesFragmentFrequencies) {
  GlobalOrder order = SkewedOrder(5000);
  const uint32_t num_pivots = 9;
  auto even_tf = SelectPivots(order, PivotStrategy::kEvenTf, num_pivots, 0);
  auto even_iv =
      SelectPivots(order, PivotStrategy::kEvenInterval, num_pivots, 0);

  auto imbalance = [&](const std::vector<TokenRank>& pivots) {
    auto freqs = FragmentFrequencies(order, pivots);
    uint64_t max_f = *std::max_element(freqs.begin(), freqs.end());
    double mean = static_cast<double>(order.TotalFrequency()) /
                  static_cast<double>(freqs.size());
    return static_cast<double>(max_f) / mean;
  };
  // Even-TF must be far better balanced than Even-Interval on a skewed
  // domain (the load-balance guarantee of §IV).
  EXPECT_LT(imbalance(even_tf), 1.5);
  EXPECT_GT(imbalance(even_iv), 2.0);
}

TEST(PivotsTest, RandomPivotsAreSeedDeterministic) {
  GlobalOrder order = SkewedOrder(500);
  auto a = SelectPivots(order, PivotStrategy::kRandom, 5, 11);
  auto b = SelectPivots(order, PivotStrategy::kRandom, 5, 11);
  auto c = SelectPivots(order, PivotStrategy::kRandom, 5, 12);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(PivotsTest, SegmentOfRankBoundaries) {
  std::vector<TokenRank> pivots = {10, 20, 30};
  EXPECT_EQ(SegmentOfRank(pivots, 0), 0u);
  EXPECT_EQ(SegmentOfRank(pivots, 9), 0u);
  EXPECT_EQ(SegmentOfRank(pivots, 10), 1u);  // pivot starts a new segment
  EXPECT_EQ(SegmentOfRank(pivots, 19), 1u);
  EXPECT_EQ(SegmentOfRank(pivots, 20), 2u);
  EXPECT_EQ(SegmentOfRank(pivots, 30), 3u);
  EXPECT_EQ(SegmentOfRank(pivots, 1000), 3u);
  EXPECT_EQ(SegmentOfRank({}, 5), 0u);
}

TEST(PivotsTest, FragmentFrequenciesSumToTotal) {
  GlobalOrder order = SkewedOrder(777);
  auto pivots = SelectPivots(order, PivotStrategy::kEvenTf, 6, 0);
  auto freqs = FragmentFrequencies(order, pivots);
  ASSERT_EQ(freqs.size(), pivots.size() + 1);
  uint64_t sum = 0;
  for (uint64_t f : freqs) sum += f;
  EXPECT_EQ(sum, order.TotalFrequency());
}

}  // namespace
}  // namespace fsjoin
