// Lemma 5 as executable code: the cost model's structure (linear
// map/shuffle, quadratic-over-N reduce), the fragment-count optimum, and
// the autotuner's sizing rules.

#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/fsjoin.h"
#include "sim/serial_join.h"
#include "test_util.h"

namespace fsjoin {
namespace {

CorpusStats StatsFor(uint64_t records, double avg_len) {
  CorpusStats stats;
  stats.num_records = records;
  stats.avg_len = avg_len;
  stats.total_tokens = static_cast<uint64_t>(records * avg_len);
  stats.approx_bytes = stats.total_tokens * 4;
  return stats;
}

TEST(CostModelTest, MapShuffleIndependentOfFragments) {
  CostModelParams params;
  CorpusStats stats = StatsFor(10000, 80);
  CostEstimate a = EstimateFsJoinCost(stats, 1, params);
  CostEstimate b = EstimateFsJoinCost(stats, 30, params);
  EXPECT_DOUBLE_EQ(a.map, b.map);
  EXPECT_DOUBLE_EQ(a.shuffle, b.shuffle);
  EXPECT_DOUBLE_EQ(a.verify, b.verify);
}

TEST(CostModelTest, ReduceCostFallsQuadraticallyWithFragments) {
  CostModelParams params;
  params.cost_per_fragment = 0.0;  // isolate the loop-join term
  CorpusStats stats = StatsFor(10000, 80);
  double r1 = EstimateFsJoinCost(stats, 1, params).reduce;
  double r10 = EstimateFsJoinCost(stats, 10, params).reduce;
  double r100 = EstimateFsJoinCost(stats, 100, params).reduce;
  // reduce = N * (M p / N)^2 * (avg/N) ~ 1/N^2.
  EXPECT_NEAR(r1 / r10, 100.0, 1.0);
  EXPECT_NEAR(r10 / r100, 100.0, 1.0);
  // With the per-fragment overhead on, many fragments cost more again.
  CostModelParams with_overhead;
  EXPECT_GT(EstimateFsJoinCost(stats, 10000, with_overhead).reduce,
            EstimateFsJoinCost(stats, 100, with_overhead).reduce);
}

TEST(CostModelTest, OptimumIsInterior) {
  // The quadratic reduce term pushes the optimum up; the per-fragment
  // overhead pulls it down — for a large corpus the optimum is interior,
  // and it grows with corpus size.
  CostModelParams params;
  CorpusStats small = StatsFor(5000, 80);
  CorpusStats large = StatsFor(50000, 80);
  uint32_t n_small = OptimalFragments(small, 256, params);
  uint32_t n_large = OptimalFragments(large, 256, params);
  EXPECT_GT(n_small, 1u);
  EXPECT_LT(n_large, 256u);
  EXPECT_GE(n_large, n_small);
  // A degenerate corpus: reduce is negligible, the overhead dominates and
  // one fragment is best.
  CorpusStats tiny = StatsFor(2, 3);
  EXPECT_EQ(OptimalFragments(tiny, 64, params), 1u);
}

TEST(CostModelTest, ToStringMentionsPhases) {
  CostEstimate e = EstimateFsJoinCost(StatsFor(100, 10), 4, CostModelParams{});
  std::string s = e.ToString();
  EXPECT_NE(s.find("map="), std::string::npos);
  EXPECT_NE(s.find("reduce="), std::string::npos);
  EXPECT_GT(e.Total(), 0.0);
}

TEST(AutoTuneTest, FragmentsCoverWorkersAndMemory) {
  CorpusStats stats = StatsFor(10000, 80);  // ~3.2 MB
  // Plenty of memory: fragment count driven by workers / cost optimum.
  FsJoinConfig roomy = AutoTuneConfig(stats, 10, 1ull << 30, 0.8);
  EXPECT_GE(roomy.num_vertical_partitions, 10u);
  EXPECT_EQ(roomy.exec.num_map_tasks, 30u);  // 3 slots per worker
  EXPECT_EQ(roomy.exec.num_reduce_tasks, 30u);
  EXPECT_TRUE(roomy.Validate().ok());

  // Tiny memory: enough fragments that one fragment fits (and horizontal
  // partitioning kicks in).
  FsJoinConfig tight = AutoTuneConfig(stats, 4, 16 * 1024, 0.8);
  EXPECT_GE(tight.num_vertical_partitions,
            static_cast<uint32_t>(stats.approx_bytes / (16 * 1024)));
  EXPECT_GT(tight.num_horizontal_partitions, 0u);
}

TEST(AutoTuneTest, TunedConfigActuallyRuns) {
  Corpus corpus = fsjoin::testing::RandomCorpus(120, 150, 1.0, 10, 4242);
  CorpusStats stats = ComputeStats(corpus);
  FsJoinConfig config = AutoTuneConfig(stats, 3, 1 << 20, 0.7);
  config.exec.num_map_tasks = 3;  // keep the test fast
  config.exec.num_reduce_tasks = 3;
  Result<FsJoinOutput> out = FsJoin(config).Run(corpus);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Exactness is independent of tuning.
  JoinResultSet expected = BruteForceJoin(
      fsjoin::testing::OrderedView(corpus), config.function, config.theta);
  EXPECT_TRUE(SamePairs(expected, out->pairs));
}

}  // namespace
}  // namespace fsjoin
