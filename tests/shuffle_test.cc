// The zero-copy shuffle data plane: KvBuffer arenas, the fixed-width key
// tag sort, grouped reduce over string_view windows (no per-value copies),
// and the tag-based dataset sort used by the dataflow layer.

#include "mr/shuffle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "mr/job.h"
#include "mr/kv.h"
#include "store/memory_budget.h"
#include "store/temp_dir.h"
#include "util/random.h"

namespace fsjoin::mr {
namespace {

TEST(KvBufferTest, StoresRecordsContiguously) {
  KvBuffer buffer;
  EXPECT_TRUE(buffer.empty());
  buffer.Append("key1", "value1");
  buffer.Append("", "v");
  buffer.Append("k", "");
  ASSERT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.key(0), "key1");
  EXPECT_EQ(buffer.value(0), "value1");
  EXPECT_EQ(buffer.key(1), "");
  EXPECT_EQ(buffer.value(1), "v");
  EXPECT_EQ(buffer.key(2), "k");
  EXPECT_EQ(buffer.value(2), "");
  EXPECT_EQ(buffer.RecordBytes(0), 10u);
  EXPECT_EQ(buffer.PayloadBytes(), 10u + 1u + 1u);
}

TEST(KvBufferTest, ViewsSurviveArenaGrowth) {
  // Offsets (not pointers) back the entries, so views read after thousands
  // of reallocating appends are still correct.
  KvBuffer buffer;
  for (int i = 0; i < 5000; ++i) {
    buffer.Append("key" + std::to_string(i), std::string(i % 37, 'x'));
  }
  for (int i : {0, 1, 999, 4999}) {
    EXPECT_EQ(buffer.key(i), "key" + std::to_string(i));
    EXPECT_EQ(buffer.value(i), std::string(i % 37, 'x'));
  }
}

TEST(KeyTagTest, OrdersLikeBytewiseComparison) {
  const std::vector<std::string> keys = {
      std::string(),
      std::string("a"),
      std::string("ab"),
      std::string("ab\0", 3),  // embedded NUL: longer key, same tag prefix
      std::string("abc"),
      std::string("abcdefgh"),     // exactly 8 bytes
      std::string("abcdefghi"),    // shares the full 8-byte tag with above
      std::string("abcdefghj"),
      std::string("\x80\xff high bytes"),
      std::string("\xff\xff\xff\xff\xff\xff\xff\xff"),
  };
  for (const std::string& a : keys) {
    for (const std::string& b : keys) {
      if (KeyTag(a) < KeyTag(b)) {
        EXPECT_LT(a, b) << "tag order disagrees with bytewise order";
      }
      if (a < b) {
        EXPECT_LE(KeyTag(a), KeyTag(b)) << "bytewise order disagrees with tag";
      }
    }
  }
}

// Random keys drawn from a 2-letter alphabet with lengths 0..12: plenty of
// duplicates, shared prefixes, and keys longer than the 8-byte tag.
std::vector<KeyValue> RandomRecords(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<KeyValue> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string key;
    const size_t len = rng.NextBounded(13);
    for (size_t j = 0; j < len; ++j) {
      key.push_back(rng.NextBounded(2) == 0 ? 'a' : 'b');
    }
    records.push_back(KeyValue{std::move(key), "v" + std::to_string(i)});
  }
  return records;
}

TEST(ShuffleShardTest, SortMatchesStableSortOverConcatenatedBuffers) {
  const std::vector<KeyValue> records = RandomRecords(500, 77);

  // Distribute across three "map task" buffers round-robin, like the
  // engine's shuffle receives them.
  ShuffleShard shard;
  {
    std::vector<KvBuffer> buffers(3);
    for (size_t i = 0; i < records.size(); ++i) {
      buffers[i % 3].Append(records[i].key, records[i].value);
    }
    for (KvBuffer& b : buffers) shard.AddBuffer(std::move(b));
  }
  ASSERT_EQ(shard.NumRecords(), records.size());
  shard.SortByKey();

  // Reference: the seed engine's semantics — concatenate buffers in the
  // same order, bytewise stable_sort.
  Dataset reference;
  for (size_t r = 0; r < 3; ++r) {
    for (size_t i = r; i < records.size(); i += 3) {
      reference.push_back(records[i]);
    }
  }
  std::stable_sort(reference.begin(), reference.end(),
                   [](const KeyValue& a, const KeyValue& b) {
                     return a.key < b.key;
                   });

  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(shard.key(i), reference[i].key) << "at " << i;
    EXPECT_EQ(shard.value(i), reference[i].value) << "at " << i;
  }
}

TEST(ShuffleShardTest, DropsEmptyBuffersAndCountsPayload) {
  ShuffleShard shard;
  KvBuffer a;
  a.Append("k", "vv");
  shard.AddBuffer(std::move(a));
  shard.AddBuffer(KvBuffer());  // empty: dropped
  KvBuffer b;
  b.Append("j", "w");
  shard.AddBuffer(std::move(b));
  EXPECT_EQ(shard.NumRecords(), 2u);
  EXPECT_EQ(shard.PayloadBytes(), 5u);
  EXPECT_EQ(shard.buffers().size(), 2u);
}

/// Reducer asserting every key/value it sees aliases a shard arena — the
/// zero-copy contract: grouping never duplicates record bytes.
class ViewCheckingReducer : public Reducer {
 public:
  explicit ViewCheckingReducer(const ShuffleShard* shard) : shard_(shard) {}

  Status Reduce(std::string_view key, ValueList values,
                Emitter* out) override {
    if (!PointsIntoArena(key)) {
      return Status::Internal("key copied out of the arena");
    }
    for (std::string_view v : values) {
      if (!v.empty() && !PointsIntoArena(v)) {
        return Status::Internal("value copied out of the arena");
      }
      total_value_bytes_ += v.size();
    }
    out->Emit(key, "");
    ++groups_;
    return Status::OK();
  }

  int groups() const { return groups_; }
  uint64_t total_value_bytes() const { return total_value_bytes_; }

 private:
  bool PointsIntoArena(std::string_view s) const {
    if (s.empty()) return true;  // empty views carry no bytes to alias
    for (const KvBuffer& buffer : shard_->buffers()) {
      const std::string_view arena = buffer.arena();
      if (s.data() >= arena.data() &&
          s.data() + s.size() <= arena.data() + arena.size()) {
        return true;
      }
    }
    return false;
  }

  const ShuffleShard* shard_;
  int groups_ = 0;
  uint64_t total_value_bytes_ = 0;
};

class NullEmitter : public Emitter {
 public:
  void Emit(std::string_view, std::string_view) override {}
};

TEST(ReduceShardTest, ValuesAreViewsIntoTheArena) {
  ShuffleShard shard;
  std::vector<KvBuffer> buffers(2);
  const std::vector<KeyValue> records = RandomRecords(200, 13);
  uint64_t value_bytes = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    buffers[i % 2].Append(records[i].key, records[i].value);
    value_bytes += records[i].value.size();
  }
  for (KvBuffer& b : buffers) shard.AddBuffer(std::move(b));
  shard.SortByKey();

  ViewCheckingReducer reducer(&shard);
  NullEmitter out;
  ASSERT_TRUE(ReduceShard(&reducer, shard, &out).ok());
  EXPECT_GT(reducer.groups(), 0);
  EXPECT_EQ(reducer.total_value_bytes(), value_bytes);
}

/// Records each group it receives for later inspection.
class RecordingReducer : public Reducer {
 public:
  Status Reduce(std::string_view key, ValueList values,
                Emitter*) override {
    groups_.emplace_back(std::string(key), std::vector<std::string>());
    for (std::string_view v : values) groups_.back().second.emplace_back(v);
    return Status::OK();
  }

  const std::vector<std::pair<std::string, std::vector<std::string>>>& groups()
      const {
    return groups_;
  }

 private:
  std::vector<std::pair<std::string, std::vector<std::string>>> groups_;
};

TEST(ReduceShardTest, GroupsByKeyAndTracksLargestGroup) {
  KvBuffer buffer;
  buffer.Append("b", "only");
  buffer.Append("aa", "first");
  buffer.Append("aa", "second");
  buffer.Append("aa", "third!");
  ShuffleShard shard;
  shard.AddBuffer(std::move(buffer));
  shard.SortByKey();

  RecordingReducer reducer;
  NullEmitter out;
  uint64_t max_group_bytes = 0;
  ASSERT_TRUE(ReduceShard(&reducer, shard, &out, &max_group_bytes).ok());
  ASSERT_EQ(reducer.groups().size(), 2u);
  EXPECT_EQ(reducer.groups()[0].first, "aa");
  EXPECT_EQ(reducer.groups()[0].second,
            (std::vector<std::string>{"first", "second", "third!"}));
  EXPECT_EQ(reducer.groups()[1].first, "b");
  EXPECT_EQ(reducer.groups()[1].second, std::vector<std::string>{"only"});
  // Largest group: 3 * (2 key bytes) + 5 + 6 + 6 value bytes.
  EXPECT_EQ(max_group_bytes, 23u);
}

// ---- Spill-to-disk edge cases ---------------------------------------
//
// Each test reduces the same records twice — once through a purely
// in-memory shard, once through a shard forced to spill — and demands
// byte-identical groups (same keys, same values, same order) plus equal
// max_group_bytes, the external-shuffle contract.

using Groups = std::vector<std::pair<std::string, std::vector<std::string>>>;

std::vector<KvBuffer> MakeBuffers(const std::vector<KeyValue>& records,
                                  size_t num_buffers) {
  std::vector<KvBuffer> buffers(num_buffers);
  for (size_t i = 0; i < records.size(); ++i) {
    buffers[i % num_buffers].Append(records[i].key, records[i].value);
  }
  return buffers;
}

Groups ShardGroups(const ShuffleShard& shard, uint64_t* max_group_bytes) {
  RecordingReducer reducer;
  NullEmitter out;
  EXPECT_TRUE(ReduceShard(&reducer, shard, &out, max_group_bytes).ok());
  return reducer.groups();
}

Groups InMemoryReference(const std::vector<KeyValue>& records,
                         size_t num_buffers, uint64_t* max_group_bytes) {
  ShuffleShard shard;
  std::vector<KvBuffer> buffers = MakeBuffers(records, num_buffers);
  for (KvBuffer& b : buffers) shard.AddBuffer(std::move(b));
  shard.SortByKey();
  return ShardGroups(shard, max_group_bytes);
}

TEST(ShuffleSpillTest, ZeroBudgetSpillsEveryBufferAndMatchesInMemory) {
  const std::vector<KeyValue> records = RandomRecords(300, 21);
  uint64_t want_max_group = 0;
  const Groups want = InMemoryReference(records, 4, &want_max_group);

  auto dir = store::TempSpillDir::Create("", "fsjoin-shuffle-test");
  ASSERT_TRUE(dir.ok()) << dir.status().ToString();
  store::MemoryBudget budget(0);  // nothing fits: spill everything
  ShuffleShard shard;
  shard.EnableSpill(&budget, dir->path(), "zero");
  std::vector<KvBuffer> buffers = MakeBuffers(records, 4);
  for (KvBuffer& b : buffers) {
    ASSERT_TRUE(shard.AddBuffer(std::move(b)).ok());
  }
  ASSERT_TRUE(shard.Seal().ok());

  EXPECT_TRUE(shard.spilled());
  EXPECT_EQ(shard.spill_runs(), 4u);  // every buffer trips on arrival
  EXPECT_EQ(shard.spilled_bytes(), shard.PayloadBytes());
  EXPECT_EQ(budget.used(), 0u);  // all charges released at spill time

  uint64_t got_max_group = 0;
  EXPECT_EQ(ShardGroups(shard, &got_max_group), want);
  EXPECT_EQ(got_max_group, want_max_group);
}

TEST(ShuffleSpillTest, BudgetOfTwoArenasYieldsSingleRunFastPath) {
  const std::vector<KeyValue> records = RandomRecords(240, 22);
  uint64_t want_max_group = 0;
  const Groups want = InMemoryReference(records, 3, &want_max_group);

  auto dir = store::TempSpillDir::Create("", "fsjoin-shuffle-test");
  ASSERT_TRUE(dir.ok());
  std::vector<KvBuffer> buffers = MakeBuffers(records, 3);
  // Exactly the first two arenas fit; the third charge trips and spills
  // everything held so far as one run. Nothing arrives afterwards, so
  // Seal() is a no-op and the reduce exercises the merge-of-one path.
  store::MemoryBudget budget(buffers[0].PayloadBytes() +
                             buffers[1].PayloadBytes());
  ShuffleShard shard;
  shard.EnableSpill(&budget, dir->path(), "single");
  for (KvBuffer& b : buffers) {
    ASSERT_TRUE(shard.AddBuffer(std::move(b)).ok());
  }
  ASSERT_TRUE(shard.Seal().ok());

  EXPECT_EQ(shard.spill_runs(), 1u);
  EXPECT_EQ(shard.spilled_bytes(), shard.PayloadBytes());

  uint64_t got_max_group = 0;
  EXPECT_EQ(ShardGroups(shard, &got_max_group), want);
  EXPECT_EQ(got_max_group, want_max_group);
}

TEST(ShuffleSpillTest, SealSpillsTheInMemoryRemainderAsTheLastRun) {
  const std::vector<KeyValue> records = RandomRecords(400, 23);
  uint64_t want_max_group = 0;
  const Groups want = InMemoryReference(records, 4, &want_max_group);

  auto dir = store::TempSpillDir::Create("", "fsjoin-shuffle-test");
  ASSERT_TRUE(dir.ok());
  std::vector<KvBuffer> buffers = MakeBuffers(records, 4);
  // Buffers 0+1 fit, buffer 2 trips (run 0 = buffers 0..2), buffer 3 fits
  // again and must be flushed by Seal() as run 1 — the highest-numbered
  // run, so the merge tie-break still sees arrival order.
  store::MemoryBudget budget(buffers[0].PayloadBytes() +
                             buffers[1].PayloadBytes());
  ShuffleShard shard;
  shard.EnableSpill(&budget, dir->path(), "seal");
  for (KvBuffer& b : buffers) {
    ASSERT_TRUE(shard.AddBuffer(std::move(b)).ok());
  }
  ASSERT_TRUE(shard.Seal().ok());

  EXPECT_EQ(shard.spill_runs(), 2u);
  EXPECT_EQ(shard.spilled_bytes(), shard.PayloadBytes());
  EXPECT_EQ(budget.used(), 0u);

  uint64_t got_max_group = 0;
  EXPECT_EQ(ShardGroups(shard, &got_max_group), want);
  EXPECT_EQ(got_max_group, want_max_group);
}

TEST(ShuffleSpillTest, RecordLargerThanTheWholeBudgetPassesThrough) {
  // The governor never rejects: a single record bigger than the budget is
  // charged, trips, and is spilled as its own run.
  std::vector<KeyValue> records;
  records.push_back(KeyValue{"big", std::string(4096, 'x')});
  records.push_back(KeyValue{"a", "1"});
  records.push_back(KeyValue{"big", "2"});
  uint64_t want_max_group = 0;
  const Groups want = InMemoryReference(records, 1, &want_max_group);

  auto dir = store::TempSpillDir::Create("", "fsjoin-shuffle-test");
  ASSERT_TRUE(dir.ok());
  store::MemoryBudget budget(64);
  ShuffleShard shard;
  shard.EnableSpill(&budget, dir->path(), "big");
  KvBuffer oversized;
  oversized.Append(records[0].key, records[0].value);
  ASSERT_TRUE(shard.AddBuffer(std::move(oversized)).ok());
  EXPECT_EQ(shard.spill_runs(), 1u);
  KvBuffer small;  // fits in the budget, flushed by Seal()
  small.Append(records[1].key, records[1].value);
  small.Append(records[2].key, records[2].value);
  ASSERT_TRUE(shard.AddBuffer(std::move(small)).ok());
  ASSERT_TRUE(shard.Seal().ok());
  EXPECT_EQ(shard.spill_runs(), 2u);

  uint64_t got_max_group = 0;
  EXPECT_EQ(ShardGroups(shard, &got_max_group), want);
  EXPECT_EQ(got_max_group, want_max_group);
}

TEST(SortDatasetByKeyTest, MatchesBytewiseStableSort) {
  Dataset data = RandomRecords(400, 99);
  Dataset reference = data;
  std::stable_sort(reference.begin(), reference.end(),
                   [](const KeyValue& a, const KeyValue& b) {
                     return a.key < b.key;
                   });
  SortDatasetByKey(&data);
  ASSERT_EQ(data.size(), reference.size());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i].key, reference[i].key) << "at " << i;
    EXPECT_EQ(data[i].value, reference[i].value) << "at " << i;
  }
}

}  // namespace
}  // namespace fsjoin::mr
