// The serial reference joins: AllPairs and PPJoin must agree with brute
// force on every corpus/threshold/function combination, and PPJoin's
// positional filter must only reduce candidates.

#include <gtest/gtest.h>

#include "sim/serial_join.h"
#include "test_util.h"

namespace fsjoin {
namespace {

using ::fsjoin::testing::CorpusFromTokenSets;
using ::fsjoin::testing::OrderedView;
using ::fsjoin::testing::RandomCorpus;

struct Param {
  SimilarityFunction fn;
  double theta;
  uint64_t seed;
};

class SerialJoinEquivalence : public ::testing::TestWithParam<Param> {};

TEST_P(SerialJoinEquivalence, AllPairsMatchesBruteForce) {
  const Param& p = GetParam();
  auto records = OrderedView(RandomCorpus(150, 180, 1.0, 10, p.seed));
  JoinResultSet expected = BruteForceJoin(records, p.fn, p.theta);
  SerialJoinStats stats;
  JoinResultSet actual = AllPairsJoin(records, p.fn, p.theta, &stats);
  EXPECT_TRUE(SamePairs(expected, actual)) << DiffResults(expected, actual);
  EXPECT_EQ(stats.verified, actual.size());
}

TEST_P(SerialJoinEquivalence, PPJoinMatchesBruteForce) {
  const Param& p = GetParam();
  auto records = OrderedView(RandomCorpus(150, 180, 1.0, 10, p.seed + 1000));
  JoinResultSet expected = BruteForceJoin(records, p.fn, p.theta);
  SerialJoinStats stats;
  JoinResultSet actual = PPJoin(records, p.fn, p.theta, &stats);
  EXPECT_TRUE(SamePairs(expected, actual)) << DiffResults(expected, actual);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SerialJoinEquivalence,
    ::testing::Values(Param{SimilarityFunction::kJaccard, 0.5, 1},
                      Param{SimilarityFunction::kJaccard, 0.75, 2},
                      Param{SimilarityFunction::kJaccard, 0.9, 3},
                      Param{SimilarityFunction::kDice, 0.7, 4},
                      Param{SimilarityFunction::kDice, 0.9, 5},
                      Param{SimilarityFunction::kCosine, 0.7, 6},
                      Param{SimilarityFunction::kCosine, 0.9, 7}),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(SimilarityFunctionName(info.param.fn)) + "_t" +
             std::to_string(static_cast<int>(info.param.theta * 100));
    });

TEST(SerialJoinTest, PositionalFilterOnlyPrunes) {
  auto records = OrderedView(RandomCorpus(300, 300, 1.1, 12, 99));
  SerialJoinStats allpairs_stats, ppjoin_stats;
  JoinResultSet a =
      AllPairsJoin(records, SimilarityFunction::kJaccard, 0.8, &allpairs_stats);
  JoinResultSet b =
      PPJoin(records, SimilarityFunction::kJaccard, 0.8, &ppjoin_stats);
  EXPECT_TRUE(SamePairs(a, b));
  EXPECT_LE(ppjoin_stats.candidates, allpairs_stats.candidates);
}

TEST(SerialJoinTest, EmptyAndDegenerateInputs) {
  std::vector<OrderedRecord> empty;
  EXPECT_TRUE(PPJoin(empty, SimilarityFunction::kJaccard, 0.8).empty());

  // Records with empty token sets are ignored, never matched.
  std::vector<OrderedRecord> records(3);
  records[0] = {0, {}};
  records[1] = {1, {1, 2}};
  records[2] = {2, {1, 2}};
  JoinResultSet out = PPJoin(records, SimilarityFunction::kJaccard, 0.9);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].a, 1u);
  EXPECT_EQ(out[0].b, 2u);
}

TEST(SerialJoinTest, DuplicateRecordsAllPair) {
  // Four identical records: C(4,2)=6 result pairs at theta 1.0.
  Corpus corpus =
      CorpusFromTokenSets({{1, 2, 3}, {1, 2, 3}, {1, 2, 3}, {1, 2, 3}});
  auto records = OrderedView(corpus);
  EXPECT_EQ(PPJoin(records, SimilarityFunction::kJaccard, 1.0).size(), 6u);
  EXPECT_EQ(AllPairsJoin(records, SimilarityFunction::kJaccard, 1.0).size(),
            6u);
}

TEST(SerialJoinTest, NormalizeResultDedupes) {
  JoinResultSet r = {{2, 1, 0.5}, {1, 2, 0.5}, {3, 4, 0.9}};
  NormalizeResult(&r);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].a, 1u);
  EXPECT_EQ(r[0].b, 2u);
}

TEST(SerialJoinTest, DiffResultsReportsBothDirections) {
  JoinResultSet expected = {{1, 2, 0.9}, {3, 4, 0.8}};
  JoinResultSet actual = {{1, 2, 0.9}, {5, 6, 0.7}};
  std::string diff = DiffResults(expected, actual);
  EXPECT_NE(diff.find("missing (3,4)"), std::string::npos);
  EXPECT_NE(diff.find("extra   (5,6)"), std::string::npos);
  EXPECT_NE(diff.find("1 missing, 1 extra"), std::string::npos);
}

}  // namespace
}  // namespace fsjoin
