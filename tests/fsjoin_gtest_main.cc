// Shared gtest main for every test binary in the repo. It differs from
// GTest's stock main in one way: it routes through the --worker-task hook
// first, so the subprocess TaskRunner can re-exec the test binary itself
// as a task worker (exec mode). Without this, tests exercising the
// subprocess runner would silently fall back to fork-mode isolation.

#include <gtest/gtest.h>

#include "mr/worker.h"

int main(int argc, char** argv) {
  if (const int code = fsjoin::mr::WorkerTaskMainIfRequested(argc, argv);
      code >= 0) {
    return code;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
