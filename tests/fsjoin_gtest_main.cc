// Shared gtest main for every test binary in the repo. It differs from
// GTest's stock main in one way: it routes through the --worker-task and
// --worker-serve hooks first, so the subprocess TaskRunner can re-exec the
// test binary itself as a task worker (exec mode) and the cluster runner
// can spawn it as a loopback socket worker. Without this, tests exercising
// those runners would silently fall back to fork-mode isolation (or fail
// to bring a cluster up at all).

#include <gtest/gtest.h>

#include "mr/worker.h"
#include "net/worker.h"

int main(int argc, char** argv) {
  if (const int code = fsjoin::mr::WorkerTaskMainIfRequested(argc, argv);
      code >= 0) {
    return code;
  }
  if (const int code = fsjoin::net::WorkerServeMainIfRequested(argc, argv);
      code >= 0) {
    return code;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
