// The logical-plan layer: plan validation, MapReduce lowering (narrow-chain
// fusion into map phases, identity maps, map-only tails, unions), the
// per-wide-stage history contract both backends share, and the headline
// property — FS-Join and every baseline produce identical result sets on
// the MapReduce and fused-dataflow backends.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "baselines/massjoin.h"
#include "baselines/vernica_join.h"
#include "baselines/vsmart_join.h"
#include "core/fsjoin.h"
#include "exec/backend.h"
#include "exec/plan.h"
#include "test_util.h"
#include "util/serde.h"

namespace fsjoin::exec {
namespace {

using ::fsjoin::testing::RandomCorpus;

// Reusable word-count operators.
class SplitMapper : public mr::Mapper {
 public:
  Status Map(const mr::KeyValue& record, mr::Emitter* out) override {
    std::string current;
    for (char c : record.value + " ") {
      if (c == ' ') {
        if (!current.empty()) {
          std::string one;
          PutVarint64(&one, 1);
          out->Emit(current, one);
          current.clear();
        }
      } else {
        current.push_back(c);
      }
    }
    return Status::OK();
  }
};

class UpperMapper : public mr::Mapper {
 public:
  Status Map(const mr::KeyValue& record, mr::Emitter* out) override {
    std::string key = record.key;
    for (char& c : key) c = static_cast<char>(std::toupper(c));
    out->Emit(std::move(key), record.value);
    return Status::OK();
  }
};

class SumReducer : public mr::Reducer {
 public:
  Status Reduce(std::string_view key, mr::ValueList values,
                mr::Emitter* out) override {
    uint64_t total = 0;
    for (std::string_view v : values) {
      Decoder dec(v);
      uint64_t x = 0;
      FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&x));
      total += x;
    }
    std::string value;
    PutVarint64(&value, total);
    out->Emit(key, value);
    return Status::OK();
  }
};

mr::Dataset Words() {
  return {{"1", "a b a"}, {"2", "b c"}, {"3", "a a"}, {"4", "d"}};
}

std::map<std::string, uint64_t> Counts(const mr::Dataset& output) {
  std::map<std::string, uint64_t> counts;
  for (const mr::KeyValue& kv : output) {
    Decoder dec(kv.value);
    uint64_t v = 0;
    EXPECT_TRUE(dec.GetVarint64(&v).ok());
    counts[kv.key] += v;
  }
  return counts;
}

ExecConfig SmallExec(BackendKind kind) {
  ExecConfig config;
  config.backend = kind;
  config.num_map_tasks = 3;
  config.num_reduce_tasks = 4;
  return config;
}

// ---- ExecConfig ----------------------------------------------------------

TEST(ExecConfigTest, BackendNames) {
  EXPECT_STREQ(BackendKindName(BackendKind::kMapReduce), "mr");
  EXPECT_STREQ(BackendKindName(BackendKind::kFusedFlow), "flow");
  for (const char* name : {"mr", "mapreduce"}) {
    auto kind = BackendKindFromName(name);
    ASSERT_TRUE(kind.ok());
    EXPECT_EQ(*kind, BackendKind::kMapReduce);
  }
  for (const char* name : {"flow", "fused"}) {
    auto kind = BackendKindFromName(name);
    ASSERT_TRUE(kind.ok());
    EXPECT_EQ(*kind, BackendKind::kFusedFlow);
  }
  EXPECT_FALSE(BackendKindFromName("spark").ok());
}

TEST(ExecConfigTest, ValidateRejectsZeroTaskCounts) {
  ExecConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.num_map_tasks = 0;
  EXPECT_FALSE(config.Validate().ok());
}

// ---- Plan validation -----------------------------------------------------

TEST(PlanTest, ValidationCatchesMissingOperators) {
  Plan ok_plan("ok");
  ok_plan.FlatMap("m", [] { return std::make_unique<SplitMapper>(); })
      .GroupByKey("g", [] { return std::make_unique<SumReducer>(); });
  EXPECT_TRUE(ok_plan.Validate().ok());
  EXPECT_EQ(ok_plan.NumWideStages(), 1u);

  Plan no_mapper("bad");
  no_mapper.FlatMap("m", nullptr);
  EXPECT_FALSE(no_mapper.Validate().ok());

  Plan no_reducer("bad");
  no_reducer.GroupByKey("g", nullptr);
  EXPECT_FALSE(no_reducer.Validate().ok());

  Plan no_dataset("bad");
  no_dataset.UnionWith("u", nullptr);
  EXPECT_FALSE(no_dataset.Validate().ok());
}

// ---- Lowering, both backends ---------------------------------------------

TEST(BackendTest, ChainedNarrowStagesFuseIntoOneJob) {
  for (BackendKind kind : {BackendKind::kMapReduce, BackendKind::kFusedFlow}) {
    auto backend = MakeBackend(SmallExec(kind));
    Plan plan("wordcount");
    plan.FlatMap("split", [] { return std::make_unique<SplitMapper>(); })
        .FlatMap("upper", [] { return std::make_unique<UpperMapper>(); })
        .GroupByKey("sum", [] { return std::make_unique<SumReducer>(); });
    Result<mr::Dataset> out = backend->Execute(plan, Words());
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    auto counts = Counts(*out);
    EXPECT_EQ(counts["A"], 4u);
    EXPECT_EQ(counts["B"], 2u);
    EXPECT_EQ(counts["C"], 1u);
    EXPECT_EQ(counts["D"], 1u);
    // One wide stage -> exactly one history entry, named after the stage,
    // regardless of how many narrow stages preceded it.
    ASSERT_EQ(backend->history().size(), 1u);
    EXPECT_EQ(backend->history()[0].job_name, "sum");
    EXPECT_EQ(backend->history()[0].shuffle_records, 8u);
  }
}

TEST(BackendTest, WideStageWithNoNarrowPrefixGetsIdentityMap) {
  for (BackendKind kind : {BackendKind::kMapReduce, BackendKind::kFusedFlow}) {
    auto backend = MakeBackend(SmallExec(kind));
    Plan plan("presplit");
    plan.GroupByKey("sum", [] { return std::make_unique<SumReducer>(); });
    mr::Dataset input;
    for (const char* word : {"a", "b", "a", "a", "c"}) {
      std::string one;
      PutVarint64(&one, 1);
      input.push_back({word, one});
    }
    Result<mr::Dataset> out = backend->Execute(plan, input);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    auto counts = Counts(*out);
    EXPECT_EQ(counts["a"], 3u);
    EXPECT_EQ(counts["b"], 1u);
    EXPECT_EQ(counts["c"], 1u);
  }
}

TEST(BackendTest, TrailingNarrowStagesRun) {
  for (BackendKind kind : {BackendKind::kMapReduce, BackendKind::kFusedFlow}) {
    auto backend = MakeBackend(SmallExec(kind));
    Plan plan("tailcase");
    plan.FlatMap("split", [] { return std::make_unique<SplitMapper>(); })
        .GroupByKey("sum", [] { return std::make_unique<SumReducer>(); })
        .FlatMap("upper", [] { return std::make_unique<UpperMapper>(); });
    Result<mr::Dataset> out = backend->Execute(plan, Words());
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    auto counts = Counts(*out);
    EXPECT_EQ(counts["A"], 4u);
    EXPECT_EQ(counts["D"], 1u);
    EXPECT_EQ(counts.count("a"), 0u);
  }
}

TEST(BackendTest, UnionSplicesSideDataset) {
  auto side = std::make_shared<const mr::Dataset>(
      mr::Dataset{{"5", "d d"}, {"6", "e"}});
  for (BackendKind kind : {BackendKind::kMapReduce, BackendKind::kFusedFlow}) {
    auto backend = MakeBackend(SmallExec(kind));
    Plan plan("unioned");
    plan.UnionWith("extra", side)
        .FlatMap("split", [] { return std::make_unique<SplitMapper>(); })
        .GroupByKey("sum", [] { return std::make_unique<SumReducer>(); });
    Result<mr::Dataset> out = backend->Execute(plan, Words());
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    auto counts = Counts(*out);
    EXPECT_EQ(counts["a"], 4u);
    EXPECT_EQ(counts["d"], 3u);  // 1 from the input, 2 from the side dataset
    EXPECT_EQ(counts["e"], 1u);
  }
}

TEST(BackendTest, MapReduceRejectsUnionAfterUnflushedFlatMap) {
  auto side = std::make_shared<const mr::Dataset>(mr::Dataset{{"5", "d"}});
  auto backend = MakeBackend(SmallExec(BackendKind::kMapReduce));
  Plan plan("bad-union");
  plan.FlatMap("split", [] { return std::make_unique<SplitMapper>(); })
      .UnionWith("extra", side)
      .GroupByKey("sum", [] { return std::make_unique<SumReducer>(); });
  Result<mr::Dataset> out = backend->Execute(plan, Words());
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnimplemented);
}

TEST(BackendTest, HistoryAccumulatesAcrossExecuteCalls) {
  for (BackendKind kind : {BackendKind::kMapReduce, BackendKind::kFusedFlow}) {
    auto backend = MakeBackend(SmallExec(kind));
    Plan plan("repeat");
    plan.FlatMap("split", [] { return std::make_unique<SplitMapper>(); })
        .GroupByKey("sum", [] { return std::make_unique<SumReducer>(); });
    ASSERT_TRUE(backend->Execute(plan, Words()).ok());
    ASSERT_TRUE(backend->Execute(plan, Words()).ok());
    ASSERT_EQ(backend->history().size(), 2u);
    EXPECT_EQ(backend->history()[0].job_name, "sum");
    EXPECT_EQ(backend->history()[1].job_name, "sum");
  }
}

// ---- Backend equivalence: FS-Join and every baseline ---------------------

/// The three corpus shapes stand in for the paper's Email / PubMed / Wiki
/// datasets: short skewed records, mid-length records, long heavy-tailed
/// records.
struct CorpusShape {
  const char* name;
  uint64_t records, vocab;
  double skew, avg_len;
  uint64_t seed;
};

const CorpusShape kShapes[] = {
    {"email-like", 120, 140, 1.05, 7, 9101},
    {"pubmed-like", 110, 170, 0.9, 11, 9102},
    {"wiki-like", 90, 220, 1.2, 16, 9103},
};

class BackendEquivalence : public ::testing::TestWithParam<CorpusShape> {};

TEST_P(BackendEquivalence, FsJoinSameResultsOnBothBackends) {
  const CorpusShape& shape = GetParam();
  Corpus corpus = RandomCorpus(shape.records, shape.vocab, shape.skew,
                               shape.avg_len, shape.seed);
  FsJoinConfig config;
  config.theta = 0.75;
  config.num_vertical_partitions = 5;
  config.num_horizontal_partitions = 2;
  config.exec = SmallExec(BackendKind::kMapReduce);

  Result<FsJoinOutput> mr_out = FsJoin(config).Run(corpus);
  config.exec.backend = BackendKind::kFusedFlow;
  Result<FsJoinOutput> flow_out = FsJoin(config).Run(corpus);
  ASSERT_TRUE(mr_out.ok()) << mr_out.status().ToString();
  ASSERT_TRUE(flow_out.ok()) << flow_out.status().ToString();
  EXPECT_TRUE(SamePairs(mr_out->pairs, flow_out->pairs))
      << DiffResults(mr_out->pairs, flow_out->pairs);
  EXPECT_EQ(mr_out->report.backend, BackendKind::kMapReduce);
  EXPECT_EQ(flow_out->report.backend, BackendKind::kFusedFlow);
  // Same history layout on both backends; the verification stage's reduce
  // output is the result set, so the counters must agree exactly.
  EXPECT_EQ(flow_out->report.verification_job.job_name,
            mr_out->report.verification_job.job_name);
  EXPECT_EQ(flow_out->report.verification_job.reduce_output_records,
            mr_out->report.verification_job.reduce_output_records);
}

TEST_P(BackendEquivalence, BaselinesSameResultsOnBothBackends) {
  const CorpusShape& shape = GetParam();
  Corpus corpus = RandomCorpus(shape.records, shape.vocab, shape.skew,
                               shape.avg_len, shape.seed + 50);
  BaselineConfig config;
  config.theta = 0.75;
  config.exec = SmallExec(BackendKind::kMapReduce);
  BaselineConfig flow_config = config;
  flow_config.exec.backend = BackendKind::kFusedFlow;

  auto check = [&](Result<BaselineOutput> mr_out,
                   Result<BaselineOutput> flow_out) {
    ASSERT_TRUE(mr_out.ok()) << mr_out.status().ToString();
    ASSERT_TRUE(flow_out.ok()) << flow_out.status().ToString();
    EXPECT_TRUE(SamePairs(mr_out->pairs, flow_out->pairs))
        << mr_out->report.algorithm << ": "
        << DiffResults(mr_out->pairs, flow_out->pairs);
    // The signature stage resolves by name on both backends and sees the
    // same record duplication.
    const mr::JobMetrics* mr_sig = mr_out->report.SignatureJob();
    const mr::JobMetrics* flow_sig = flow_out->report.SignatureJob();
    ASSERT_NE(mr_sig, nullptr);
    ASSERT_NE(flow_sig, nullptr);
    EXPECT_EQ(mr_sig->job_name, flow_sig->job_name);
    EXPECT_EQ(mr_sig->shuffle_records, flow_sig->shuffle_records);
  };

  check(RunVernicaJoin(corpus, config), RunVernicaJoin(corpus, flow_config));
  check(RunVSmartJoin(corpus, config), RunVSmartJoin(corpus, flow_config));
  MassJoinConfig mj, mj_flow;
  static_cast<BaselineConfig&>(mj) = config;
  static_cast<BaselineConfig&>(mj_flow) = flow_config;
  check(RunMassJoin(corpus, mj), RunMassJoin(corpus, mj_flow));
}

// Acceptance for the external shuffle: with the budget far below the
// shuffle volume every wide stage spills run files to disk, yet FS-Join
// produces the identical result set on both backends, and the report
// carries real measured spill volume.
TEST_P(BackendEquivalence, FsJoinForcedSpillMatchesInMemory) {
  const CorpusShape& shape = GetParam();
  Corpus corpus = RandomCorpus(shape.records, shape.vocab, shape.skew,
                               shape.avg_len, shape.seed + 200);
  for (BackendKind kind : {BackendKind::kMapReduce, BackendKind::kFusedFlow}) {
    FsJoinConfig config;
    config.theta = 0.75;
    config.num_vertical_partitions = 5;
    config.num_horizontal_partitions = 2;
    config.exec = SmallExec(kind);

    Result<FsJoinOutput> in_memory = FsJoin(config).Run(corpus);
    ASSERT_TRUE(in_memory.ok()) << in_memory.status().ToString();
    uint64_t baseline_spill = 0;
    for (const mr::JobMetrics& job : in_memory->report.AllJobs()) {
      baseline_spill += job.spilled_bytes;
    }
    EXPECT_EQ(baseline_spill, 0u);  // spill off by default

    FsJoinConfig spill_config = config;
    spill_config.exec.shuffle_memory_bytes = 256;  // way below shuffle size
    Result<FsJoinOutput> spilled = FsJoin(spill_config).Run(corpus);
    ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
    EXPECT_TRUE(SamePairs(in_memory->pairs, spilled->pairs))
        << BackendKindName(kind) << ": "
        << DiffResults(in_memory->pairs, spilled->pairs);
    uint64_t spilled_bytes = 0;
    uint32_t spill_runs = 0;
    for (const mr::JobMetrics& job : spilled->report.AllJobs()) {
      spilled_bytes += job.spilled_bytes;
      spill_runs += job.spill_runs;
    }
    EXPECT_GT(spilled_bytes, 0u) << BackendKindName(kind);
    EXPECT_GT(spill_runs, 0u) << BackendKindName(kind);
  }
}

TEST_P(BackendEquivalence, BaselinesForcedSpillMatchesInMemory) {
  const CorpusShape& shape = GetParam();
  Corpus corpus = RandomCorpus(shape.records, shape.vocab, shape.skew,
                               shape.avg_len, shape.seed + 250);
  for (BackendKind kind : {BackendKind::kMapReduce, BackendKind::kFusedFlow}) {
    BaselineConfig config;
    config.theta = 0.75;
    config.exec = SmallExec(kind);
    BaselineConfig spill_config = config;
    spill_config.exec.shuffle_memory_bytes = 256;

    auto check = [&](Result<BaselineOutput> in_memory,
                     Result<BaselineOutput> spilled) {
      ASSERT_TRUE(in_memory.ok()) << in_memory.status().ToString();
      ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
      EXPECT_TRUE(SamePairs(in_memory->pairs, spilled->pairs))
          << spilled->report.algorithm << " on " << BackendKindName(kind)
          << ": " << DiffResults(in_memory->pairs, spilled->pairs);
      uint64_t spilled_bytes = 0;
      for (const mr::JobMetrics& job : spilled->report.jobs) {
        spilled_bytes += job.spilled_bytes;
      }
      EXPECT_GT(spilled_bytes, 0u)
          << spilled->report.algorithm << " on " << BackendKindName(kind);
    };

    check(RunVernicaJoin(corpus, config), RunVernicaJoin(corpus, spill_config));
    check(RunVSmartJoin(corpus, config), RunVSmartJoin(corpus, spill_config));
    MassJoinConfig mj, mj_spill;
    static_cast<BaselineConfig&>(mj) = config;
    static_cast<BaselineConfig&>(mj_spill) = spill_config;
    check(RunMassJoin(corpus, mj), RunMassJoin(corpus, mj_spill));
  }
}

// Acceptance for the morsel-parallel filtering phase: with the knob on and
// 8 worker threads, results, filter counters, and the filtering job's
// metrics are identical to the serial run — on both backends.
TEST_P(BackendEquivalence, ParallelFragmentJoinMatchesSerial) {
  const CorpusShape& shape = GetParam();
  Corpus corpus = RandomCorpus(shape.records, shape.vocab, shape.skew,
                               shape.avg_len, shape.seed + 100);
  for (BackendKind kind : {BackendKind::kMapReduce, BackendKind::kFusedFlow}) {
    FsJoinConfig config;
    config.theta = 0.7;
    config.num_vertical_partitions = 5;
    config.num_horizontal_partitions = 2;
    config.exec = SmallExec(kind);

    Result<FsJoinOutput> serial = FsJoin(config).Run(corpus);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();

    for (size_t morsel : {size_t{1}, size_t{64}}) {
      FsJoinConfig par_config = config;
      par_config.exec.parallel_fragment_join = true;
      par_config.exec.join_morsel_size = morsel;
      par_config.exec.num_threads = 8;
      Result<FsJoinOutput> parallel = FsJoin(par_config).Run(corpus);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      EXPECT_TRUE(SamePairs(serial->pairs, parallel->pairs))
          << DiffResults(serial->pairs, parallel->pairs);
      const FilterCounters& sc = serial->report.filters;
      const FilterCounters& pc = parallel->report.filters;
      EXPECT_EQ(sc.pairs_considered, pc.pairs_considered);
      EXPECT_EQ(sc.pruned_role, pc.pruned_role);
      EXPECT_EQ(sc.pruned_strl, pc.pruned_strl);
      EXPECT_EQ(sc.pruned_segl, pc.pruned_segl);
      EXPECT_EQ(sc.pruned_segi, pc.pruned_segi);
      EXPECT_EQ(sc.pruned_segd, pc.pruned_segd);
      EXPECT_EQ(sc.empty_overlap, pc.empty_overlap);
      EXPECT_EQ(sc.emitted, pc.emitted);
      // The filtering job's data-plane metrics must be byte-identical.
      EXPECT_EQ(serial->report.filtering_job.shuffle_bytes,
                parallel->report.filtering_job.shuffle_bytes);
      EXPECT_EQ(serial->report.filtering_job.reduce_output_records,
                parallel->report.filtering_job.reduce_output_records);
      EXPECT_EQ(serial->report.candidate_pairs,
                parallel->report.candidate_pairs);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BackendEquivalence, ::testing::ValuesIn(kShapes),
    [](const ::testing::TestParamInfo<CorpusShape>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---- Report plumbing -----------------------------------------------------

TEST(BaselineReportTest, SignatureJobLookup) {
  BaselineReport report;
  EXPECT_EQ(report.SignatureJob(), nullptr);
  report.signature_stage = "vernica-kernel";
  EXPECT_EQ(report.SignatureJob(), nullptr);
  mr::JobMetrics job;
  job.job_name = "vernica-kernel";
  job.map_output_records = 42;
  report.jobs.push_back(job);
  ASSERT_NE(report.SignatureJob(), nullptr);
  EXPECT_EQ(report.SignatureJob()->map_output_records, 42u);
  EXPECT_DOUBLE_EQ(report.DuplicationFactor(21), 2.0);
}

}  // namespace
}  // namespace fsjoin::exec
