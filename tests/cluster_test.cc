// End-to-end tests of the networked cluster runtime (ctest label
// `cluster`): record streams crossing real sockets with their trailer
// cross-checks; result-digest identity between the cluster runner (four
// spawned loopback workers) and the inline runner on both backends for
// FS-Join and all three baselines; kill-a-worker fault injection for both
// task kinds (a map death re-runs the task, a reduce death additionally
// re-creates the dead worker's retained shuffle partitions on survivors)
// with exactly-once metrics; heartbeat-timeout death detection against a
// worker that registers and then goes silent; and the cluster-simulator
// cross-check feeding measured 4-worker task costs back into the cost
// model of mr/cluster_sim.h.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/massjoin.h"
#include "baselines/vernica_join.h"
#include "baselines/vsmart_join.h"
#include "check/invariants.h"
#include "core/fsjoin.h"
#include "core/jobs.h"
#include "mr/cluster_sim.h"
#include "mr/engine.h"
#include "mr/runner.h"
#include "mr/task.h"
#include "net/cluster_runner.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/stream.h"
#include "sim/serial_join.h"
#include "test_util.h"
#include "util/endpoint.h"
#include "util/status.h"

namespace fsjoin {
namespace {

using mr::RunnerKind;
using mr::TaskKind;

/// Sets FSJOIN_WORKER_FAULT for one test and always clears it. Spawned
/// workers inherit the environment, so this must be constructed before the
/// cluster runner (i.e. before the join config's Run / Engine build).
class ScopedWorkerFault {
 public:
  explicit ScopedWorkerFault(const std::string& value) {
    ::setenv("FSJOIN_WORKER_FAULT", value.c_str(), 1);
  }
  ~ScopedWorkerFault() { ::unsetenv("FSJOIN_WORKER_FAULT"); }
};

exec::ExecConfig SmallExec(exec::BackendKind backend, RunnerKind runner) {
  exec::ExecConfig config;
  config.backend = backend;
  config.runner = runner;
  config.num_map_tasks = 3;
  config.num_reduce_tasks = 3;
  config.num_threads = 2;
  if (runner == RunnerKind::kCluster) {
    config.spawn_local_workers = 4;
  }
  return config;
}

// ---- Record streams over real sockets --------------------------------

TEST(ClusterStreamTest, RecordStreamRoundTripsOverSocketPair) {
  auto pair = net::Socket::Pair();
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  net::Socket writer_sock = std::move(pair->first);
  net::Socket reader_sock = std::move(pair->second);

  // Enough payload to force several chunks (target is 256 KiB per chunk).
  const size_t kRecords = 9000;
  const std::string filler(100, 'x');
  std::thread writer([&] {
    net::ChunkStreamWriter writer(&writer_sock, net::MsgType::kShuffleChunk,
                                  net::MsgType::kShuffleEnd);
    for (size_t i = 0; i < kRecords; ++i) {
      const std::string key = "key" + std::to_string(i);
      ASSERT_TRUE(writer.Add(key, filler).ok());
    }
    ASSERT_TRUE(writer.Finish().ok());
  });

  net::FrameRecordStream stream(&reader_sock, net::MsgType::kShuffleChunk,
                                net::MsgType::kShuffleEnd);
  size_t got = 0;
  bool has = false;
  std::string_view key, value;
  for (;;) {
    const Status st = stream.Next(&has, &key, &value);
    ASSERT_TRUE(st.ok()) << st.ToString();
    if (!has) break;
    EXPECT_EQ(key, "key" + std::to_string(got));
    EXPECT_EQ(value, filler);
    ++got;
  }
  writer.join();
  EXPECT_EQ(got, kRecords);
  EXPECT_EQ(stream.records(), kRecords);
}

TEST(ClusterStreamTest, TaskErrorFrameFailsTheStreamWithItsStatus) {
  auto pair = net::Socket::Pair();
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();

  net::TaskErrorMsg err;
  err.error = Status::NotFound("no retained partition for job 'j'");
  std::string payload;
  err.EncodeTo(&payload);
  ASSERT_TRUE(
      net::SendFrame(&pair->first, net::MsgType::kTaskError, payload).ok());

  net::FrameRecordStream stream(&pair->second, net::MsgType::kShuffleChunk,
                                net::MsgType::kShuffleEnd);
  bool has = false;
  std::string_view key, value;
  const Status st = stream.Next(&has, &key, &value);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound) << st.ToString();
  EXPECT_NE(st.message().find("no retained partition"), std::string::npos);
}

TEST(ClusterStreamTest, TrailerCountMismatchIsCorruption) {
  // A lost chunk frame cannot be caught by per-frame CRCs; the trailer's
  // running totals must catch it instead.
  auto pair = net::Socket::Pair();
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();

  std::string chunk;
  net::AppendChunkRecord(&chunk, "k1", "v1");
  net::AppendChunkRecord(&chunk, "k2", "v2");
  ASSERT_TRUE(
      net::SendFrame(&pair->first, net::MsgType::kShuffleChunk, chunk).ok());
  net::StreamTrailer trailer;
  trailer.records = 3;  // lies: only 2 were sent
  trailer.payload_bytes = chunk.size();
  trailer.chunks = 1;
  std::string payload;
  trailer.EncodeTo(&payload);
  ASSERT_TRUE(
      net::SendFrame(&pair->first, net::MsgType::kShuffleEnd, payload).ok());

  net::FrameRecordStream stream(&pair->second, net::MsgType::kShuffleChunk,
                                net::MsgType::kShuffleEnd);
  bool has = false;
  std::string_view key, value;
  Status st = Status::OK();
  while (st.ok()) {
    st = stream.Next(&has, &key, &value);
    if (st.ok() && !has) break;
  }
  ASSERT_FALSE(st.ok()) << "trailer mismatch went unnoticed";
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
}

// ---- Spawn-local cluster bring-up ------------------------------------

TEST(ClusterRunnerTest, SpawnsWorkersAndReportsThemAlive) {
  net::ClusterOptions options;
  options.spawn_local_workers = 3;
  auto runner = net::ClusterTaskRunner::Create(options);
  ASSERT_TRUE(runner.ok()) << runner.status().ToString();
  EXPECT_EQ((*runner)->alive_workers(), 3u);
  EXPECT_STREQ((*runner)->name(), "cluster");
  EXPECT_TRUE((*runner)->distributed());
  EXPECT_TRUE((*runner)->retryable());
  EXPECT_TRUE((*runner)->isolated());
}

TEST(ClusterRunnerTest, CreateRejectsBadTopologyAndHeartbeat) {
  {
    net::ClusterOptions options;  // neither workers nor spawn
    auto runner = net::ClusterTaskRunner::Create(options);
    ASSERT_FALSE(runner.ok());
    EXPECT_NE(runner.status().message().find("exactly one"),
              std::string::npos);
  }
  {
    net::ClusterOptions options;
    options.spawn_local_workers = 2;
    options.workers.push_back(Endpoint{"localhost", 9000});
    auto runner = net::ClusterTaskRunner::Create(options);
    ASSERT_FALSE(runner.ok());
  }
  {
    net::ClusterOptions options;
    options.spawn_local_workers = 2;
    options.heartbeat_ms = 10;
    auto runner = net::ClusterTaskRunner::Create(options);
    ASSERT_FALSE(runner.ok());
    EXPECT_NE(runner.status().message().find("heartbeat_ms"),
              std::string::npos);
  }
}

// ---- Digest identity: cluster vs inline, both backends, 4 algorithms --

JoinResultSet RunAlgorithm(int algorithm, const Corpus& corpus,
                           const exec::ExecConfig& exec_config,
                           std::optional<RecordId> rs_boundary = std::nullopt) {
  const double theta = 0.6;
  switch (algorithm) {
    case 0: {
      FsJoinConfig config;
      config.theta = theta;
      config.num_vertical_partitions = 4;
      config.num_horizontal_partitions = 1;
      config.rs_boundary = rs_boundary;
      config.exec = exec_config;
      auto out = FsJoin(config).Run(corpus);
      EXPECT_TRUE(out.ok()) << out.status().ToString();
      return out.ok() ? std::move(out->pairs) : JoinResultSet{};
    }
    case 1: {
      BaselineConfig config;
      config.theta = theta;
      config.exec = exec_config;
      config.rs_boundary = rs_boundary;
      auto out = RunVernicaJoin(corpus, config);
      EXPECT_TRUE(out.ok()) << out.status().ToString();
      return out.ok() ? std::move(out->pairs) : JoinResultSet{};
    }
    case 2: {
      BaselineConfig config;
      config.theta = theta;
      config.exec = exec_config;
      config.rs_boundary = rs_boundary;
      auto out = RunVSmartJoin(corpus, config);
      EXPECT_TRUE(out.ok()) << out.status().ToString();
      return out.ok() ? std::move(out->pairs) : JoinResultSet{};
    }
    default: {
      MassJoinConfig config;
      config.theta = theta;
      config.exec = exec_config;
      config.rs_boundary = rs_boundary;
      config.length_group = 2;
      auto out = RunMassJoin(corpus, config);
      EXPECT_TRUE(out.ok()) << out.status().ToString();
      return out.ok() ? std::move(out->pairs) : JoinResultSet{};
    }
  }
}

TEST(ClusterRunnerTest, DigestsIdenticalToInlineAcrossBackendsAlgorithms) {
  const Corpus corpus = testing::RandomCorpus(48, 60, 0.8, 8.0, 11);
  const char* names[] = {"fsjoin", "vernica", "vsmart", "massjoin"};
  constexpr exec::BackendKind kBothBackends[] = {
      exec::BackendKind::kMapReduce, exec::BackendKind::kFusedFlow};

  for (int algorithm = 0; algorithm < 4; ++algorithm) {
    const JoinResultSet reference = RunAlgorithm(
        algorithm, corpus,
        SmallExec(exec::BackendKind::kMapReduce, RunnerKind::kInline));
    ASSERT_GT(reference.size(), 0u) << names[algorithm];
    const uint32_t reference_digest = check::ResultDigest(reference);
    for (exec::BackendKind backend : kBothBackends) {
      const JoinResultSet pairs = RunAlgorithm(
          algorithm, corpus, SmallExec(backend, RunnerKind::kCluster));
      EXPECT_EQ(check::ResultDigest(pairs), reference_digest)
          << names[algorithm]
          << " backend=" << exec::BackendKindName(backend);
      EXPECT_EQ(pairs.size(), reference.size());
    }
  }
}

// R-S mode over the socket workers: the side-tagged fragment joins must
// survive network shuffle byte-identically. The inline reference is itself
// pinned to the serial BruteForceJoinRS oracle so a cluster/inline match
// can't hide a shared wrong answer.
TEST(ClusterRunnerTest, RsDigestsIdenticalToInlineAcrossBackendsAlgorithms) {
  const Corpus corpus = testing::RandomCorpus(48, 60, 0.8, 8.0, 11);
  const RecordId boundary = 20;
  const char* names[] = {"fsjoin", "vernica", "vsmart", "massjoin"};
  constexpr exec::BackendKind kBothBackends[] = {
      exec::BackendKind::kMapReduce, exec::BackendKind::kFusedFlow};
  const uint32_t oracle_digest = check::ResultDigest(BruteForceJoinRS(
      testing::OrderedView(corpus), boundary, SimilarityFunction::kJaccard,
      0.6));

  for (int algorithm = 0; algorithm < 4; ++algorithm) {
    const JoinResultSet reference = RunAlgorithm(
        algorithm, corpus,
        SmallExec(exec::BackendKind::kMapReduce, RunnerKind::kInline),
        boundary);
    ASSERT_GT(reference.size(), 0u) << names[algorithm];
    EXPECT_EQ(check::ResultDigest(reference), oracle_digest)
        << names[algorithm];
    for (exec::BackendKind backend : kBothBackends) {
      const JoinResultSet pairs = RunAlgorithm(
          algorithm, corpus, SmallExec(backend, RunnerKind::kCluster),
          boundary);
      EXPECT_EQ(check::ResultDigest(pairs), oracle_digest)
          << names[algorithm]
          << " backend=" << exec::BackendKindName(backend);
      EXPECT_EQ(pairs.size(), reference.size());
    }
  }
}

// ---- Kill-a-worker fault injection ------------------------------------

/// Runs FS-Join on the MR backend with 4 spawned cluster workers.
Result<FsJoinOutput> ClusterFsJoin(const Corpus& corpus) {
  FsJoinConfig config;
  config.theta = 0.6;
  config.num_vertical_partitions = 4;
  config.num_horizontal_partitions = 1;
  config.exec =
      SmallExec(exec::BackendKind::kMapReduce, RunnerKind::kCluster);
  return FsJoin(config).Run(corpus);
}

TEST(ClusterFaultTest, KilledMapWorkerTaskLandsExactlyOnceOnSurvivor) {
  const Corpus corpus = testing::RandomCorpus(40, 50, 0.8, 8.0, 5);

  auto clean = ClusterFsJoin(corpus);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  // The worker executing the ordering job's map task 1 (attempt 0)
  // _Exit(3)s mid-task. The coordinator must see the dead connection, fail
  // the attempt retryably, and the scheduler re-runs it on a survivor —
  // the bumped attempt number keeps the fault from re-firing.
  ScopedWorkerFault fault("ordering:map:1:0");
  auto faulted = ClusterFsJoin(corpus);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();

  EXPECT_EQ(check::ResultDigest(faulted->pairs),
            check::ResultDigest(clean->pairs));
  const mr::JobMetrics& job = faulted->report.ordering_job;
  ASSERT_GT(job.map_tasks.size(), 1u);
  EXPECT_EQ(job.map_tasks[1].attempts, 2u);
  for (size_t t = 0; t < job.map_tasks.size(); ++t) {
    if (t != 1) {
      EXPECT_EQ(job.map_tasks[t].attempts, 1u) << "map " << t;
    }
  }
  // Exactly-once metrics merge: aggregates match the clean cluster run in
  // spite of the re-executed attempt.
  const mr::JobMetrics& clean_job = clean->report.ordering_job;
  EXPECT_EQ(job.map_output_records, clean_job.map_output_records);
  EXPECT_EQ(job.shuffle_records, clean_job.shuffle_records);
  EXPECT_EQ(job.reduce_output_records, clean_job.reduce_output_records);
}

TEST(ClusterFaultTest, KilledReduceWorkerRecoversRetainedMapOutput) {
  const Corpus corpus = testing::RandomCorpus(40, 50, 0.8, 8.0, 7);

  auto clean = ClusterFsJoin(corpus);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  // The worker dies mid-reduce, taking its retained map partitions with
  // it. Recovery must re-run those map tasks on survivors (internally,
  // without burning scheduler attempts) before the retried reduce
  // re-resolves its shuffle sources.
  ScopedWorkerFault fault("ordering:reduce:1:0");
  auto faulted = ClusterFsJoin(corpus);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();

  EXPECT_EQ(check::ResultDigest(faulted->pairs),
            check::ResultDigest(clean->pairs));
  const mr::JobMetrics& job = faulted->report.ordering_job;
  ASSERT_GT(job.reduce_tasks.size(), 1u);
  // The killed reduce re-ran; sibling reduces that were fetching from the
  // dead worker's shuffle server at that moment may legitimately have
  // burned an attempt too, so only the faulted task's count is exact.
  EXPECT_GE(job.reduce_tasks[1].attempts, 2u);
  for (size_t t = 0; t < job.map_tasks.size(); ++t) {
    EXPECT_EQ(job.map_tasks[t].attempts, 1u)
        << "internal map re-runs must not count as scheduler attempts";
  }
  const mr::JobMetrics& clean_job = clean->report.ordering_job;
  EXPECT_EQ(job.shuffle_records, clean_job.shuffle_records);
  EXPECT_EQ(job.reduce_output_records, clean_job.reduce_output_records);
}

// ---- Heartbeat-timeout death detection --------------------------------

/// A worker that completes the handshake and then never answers anything
/// again — the failure mode heartbeats exist for (process alive, stuck).
class SilentWorker {
 public:
  Status Start() {
    FSJOIN_ASSIGN_OR_RETURN(listener_, net::Listener::Listen("127.0.0.1", 0));
    port_ = listener_.port();
    thread_ = std::thread([this] { Run(); });
    return Status::OK();
  }

  uint16_t port() const { return port_; }

  ~SilentWorker() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  void Run() {
    Result<net::Socket> conn = listener_.Accept(/*timeout_ms=*/10000);
    if (!conn.ok()) return;
    net::HelloMsg hello;
    hello.pid = static_cast<uint64_t>(::getpid());
    hello.shuffle_port = 1;  // never served; nothing will fetch from us
    std::string payload;
    hello.EncodeTo(&payload);
    if (!net::SendFrame(&*conn, net::MsgType::kHello, payload).ok()) return;
    // Drain frames without ever answering, until the coordinator gives up
    // on us and closes the connection.
    for (;;) {
      net::Frame frame;
      if (!net::RecvFrame(&*conn, &frame).ok()) return;
    }
  }

  net::Listener listener_;
  uint16_t port_ = 0;
  std::thread thread_;
};

TEST(ClusterFaultTest, SilentWorkerIsDeclaredDeadAfterMissedHeartbeats) {
  SilentWorker worker;
  ASSERT_TRUE(worker.Start().ok());

  net::ClusterOptions options;
  options.workers.push_back(Endpoint{"127.0.0.1", worker.port()});
  options.heartbeat_ms = 60;
  auto runner = net::ClusterTaskRunner::Create(options);
  ASSERT_TRUE(runner.ok()) << runner.status().ToString();
  ASSERT_EQ((*runner)->alive_workers(), 1u);

  mr::TaskSpec spec;
  spec.job_name = "hbtest";
  spec.kind = TaskKind::kMap;
  spec.task_index = 0;
  spec.num_partitions = 1;
  spec.factory = "core.ordering";
  spec.retain_shuffle = true;  // remote-capable: must go to the worker
  mr::TaskOutput out;
  const Status st =
      (*runner)->RunAttempt(spec, mr::TaskBody{}, mr::TaskSideChannel{}, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("died"), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find("heartbeats"), std::string::npos)
      << st.ToString();
  EXPECT_EQ((*runner)->alive_workers(), 0u);

  // With every worker dead, further remote attempts fail fast.
  mr::TaskOutput out2;
  const Status st2 =
      (*runner)->RunAttempt(spec, mr::TaskBody{}, mr::TaskSideChannel{}, &out2);
  ASSERT_FALSE(st2.ok());
  EXPECT_NE(st2.message().find("no alive cluster workers"), std::string::npos)
      << st2.ToString();
}

// ---- Direct engine runs over the network shuffle ----------------------

mr::Dataset OrderingInput(uint64_t num_records, uint64_t seed) {
  return MakeCorpusDataset(testing::RandomCorpus(num_records, 80, 0.8, 8.0,
                                                 seed));
}

Result<std::unique_ptr<net::ClusterTaskRunner>> SpawnWorkers(int n) {
  net::ClusterOptions options;
  options.spawn_local_workers = n;
  return net::ClusterTaskRunner::Create(options);
}

Status RunOrderingJob(mr::TaskRunner* runner, const mr::Dataset& input,
                      mr::Dataset* output, mr::JobMetrics* metrics) {
  mr::EngineOptions options;
  options.runner = runner == nullptr ? RunnerKind::kInline
                                     : RunnerKind::kCluster;
  options.external_runner = runner;
  mr::Engine engine(options);
  // 30 map tasks: every reduce fans 30 fetch connections into one shuffle
  // server when a single worker hosts all map output, which regresses into
  // multi-second TCP-retransmission stalls if the listener backlog ever
  // drops below that fan-in again (socket.h Listener::Listen).
  return engine.Run(MakeOrderingJobConfig(30, 30), input, output, metrics);
}

TEST(ClusterRunnerTest, NetworkShuffleMatchesInlineEngineByteForByte) {
  const mr::Dataset input = OrderingInput(120, 13);

  mr::Dataset inline_out;
  mr::JobMetrics inline_metrics;
  ASSERT_TRUE(
      RunOrderingJob(nullptr, input, &inline_out, &inline_metrics).ok());

  auto runner = SpawnWorkers(4);
  ASSERT_TRUE(runner.ok()) << runner.status().ToString();
  mr::Dataset cluster_out;
  mr::JobMetrics cluster_metrics;
  const Status st =
      RunOrderingJob(runner->get(), input, &cluster_out, &cluster_metrics);
  ASSERT_TRUE(st.ok()) << st.ToString();

  ASSERT_EQ(cluster_out.size(), inline_out.size());
  for (size_t i = 0; i < cluster_out.size(); ++i) {
    EXPECT_EQ(cluster_out[i].key, inline_out[i].key) << "record " << i;
    EXPECT_EQ(cluster_out[i].value, inline_out[i].value) << "record " << i;
  }
  EXPECT_EQ(cluster_metrics.shuffle_records, inline_metrics.shuffle_records);
  EXPECT_EQ(cluster_metrics.reduce_output_records,
            inline_metrics.reduce_output_records);
  EXPECT_EQ((*runner)->alive_workers(), 4u);
}

// ---- Cluster-simulator cross-check (measured vs predicted scaling) ----

TEST(ClusterSimCrossCheckTest, PredictedSpeedupTracksMeasuredSpeedup) {
  // A workload heavy enough that per-task time is measurable over the
  // dispatch overhead on a loopback cluster.
  const mr::Dataset input = OrderingInput(600, 17);

  auto one = SpawnWorkers(1);
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  mr::Dataset out1;
  mr::JobMetrics metrics1;
  ASSERT_TRUE(RunOrderingJob(one->get(), input, &out1, &metrics1).ok());

  auto four = SpawnWorkers(4);
  ASSERT_TRUE(four.ok()) << four.status().ToString();
  mr::Dataset out4;
  mr::JobMetrics metrics4;
  ASSERT_TRUE(RunOrderingJob(four->get(), input, &out4, &metrics4).ok());

  const double measured_speedup =
      static_cast<double>(std::max<int64_t>(metrics1.total_wall_micros, 1)) /
      static_cast<double>(std::max<int64_t>(metrics4.total_wall_micros, 1));

  // Feed the 4-worker run's measured per-task costs into the cost model,
  // with the per-task overhead estimated from the serialized 1-worker run
  // (total wall minus task-body wall, spread over the tasks — on one
  // worker everything is dispatch + body, end to end).
  const size_t num_tasks = metrics1.map_tasks.size() +
                           metrics1.reduce_tasks.size();
  ASSERT_GT(num_tasks, 0u);
  const double body_micros = static_cast<double>(metrics1.map_wall_micros +
                                                 metrics1.reduce_wall_micros);
  const double overhead_micros = std::max(
      1.0, (static_cast<double>(metrics1.total_wall_micros) - body_micros) /
               static_cast<double>(num_tasks));
  mr::ClusterCostModel model;
  model.slots_per_node = 1;  // one simulated slot == one loopback worker
  model.per_task_overhead_micros = overhead_micros;
  model.network_micros_per_byte = 0.0;  // loopback shuffle is ~free

  const mr::SimulatedJobTime sim1 = mr::SimulateJob(metrics4, 1, model);
  const mr::SimulatedJobTime sim4 = mr::SimulateJob(metrics4, 4, model);
  ASSERT_GT(sim4.total_ms, 0.0);
  const double predicted_speedup = sim1.total_ms / sim4.total_ms;

  // The simulator is deterministic: more nodes can only help, and four
  // single-slot nodes can at best quadruple throughput.
  EXPECT_GE(predicted_speedup, 1.0);
  EXPECT_LE(predicted_speedup, 4.0 + 1e-9);
  // Sanity band against the (noisy) measured wall-clock ratio: the
  // prediction must be the same order of magnitude. The band is wide on
  // purpose — CI machines are loaded and the corpus is small.
  EXPECT_GT(measured_speedup, predicted_speedup / 10.0);
  EXPECT_LT(measured_speedup, predicted_speedup * 10.0);
}

}  // namespace
}  // namespace fsjoin
