// Unit tests for the text substrate: tokenizers, dictionary, corpus
// construction/validation/sampling, synthetic generators and IO.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <set>

#include "test_util.h"
#include "text/corpus.h"
#include "text/corpus_io.h"
#include "text/dictionary.h"
#include "text/generator.h"
#include "text/tokenizer.h"

namespace fsjoin {
namespace {

// ---- Tokenizers -----------------------------------------------------------

TEST(TokenizerTest, Whitespace) {
  WhitespaceTokenizer t;
  EXPECT_EQ(t.Tokenize("a  b\tc\n"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize("   ").empty());
  EXPECT_EQ(t.Tokenize("Keep.Case!"),
            (std::vector<std::string>{"Keep.Case!"}));
}

TEST(TokenizerTest, WordLowercasesAndSplitsPunctuation) {
  WordTokenizer t;
  EXPECT_EQ(t.Tokenize("Hello, World! x2"),
            (std::vector<std::string>{"hello", "world", "x2"}));
  EXPECT_TRUE(t.Tokenize("...!!!").empty());
}

TEST(TokenizerTest, QGrams) {
  QGramTokenizer t(3);
  auto grams = t.Tokenize("abcd");
  EXPECT_EQ(grams, (std::vector<std::string>{"abc", "bcd"}));
  // Shorter than q: padded single gram.
  EXPECT_EQ(t.Tokenize("ab"), (std::vector<std::string>{"ab$"}));
  // Whitespace normalized, case folded.
  auto norm = t.Tokenize("A  b");
  EXPECT_EQ(norm, (std::vector<std::string>{"a b"}));
  EXPECT_EQ(t.Name(), "3-gram");
}

// ---- Dictionary -----------------------------------------------------------

TEST(DictionaryTest, InternIsIdempotent) {
  TokenDictionary dict;
  TokenId a = dict.Intern("apple");
  TokenId b = dict.Intern("banana");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("apple"), a);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.TokenString(a), "apple");
}

TEST(DictionaryTest, LookupAndFrequency) {
  TokenDictionary dict;
  TokenId a = dict.Intern("x");
  EXPECT_TRUE(dict.Lookup("x").ok());
  EXPECT_FALSE(dict.Lookup("y").ok());
  EXPECT_EQ(dict.Frequency(a), 0u);
  dict.AddFrequency(a, 3);
  EXPECT_EQ(dict.Frequency(a), 3u);
  EXPECT_EQ(dict.Frequency(999), 0u);  // unknown id
}

// ---- Corpus ---------------------------------------------------------------

TEST(CorpusTest, BuildDeduplicatesAndSorts) {
  WordTokenizer t;
  Corpus corpus = BuildCorpus({"b a b a c", "c c"}, t);
  ASSERT_EQ(corpus.NumRecords(), 2u);
  EXPECT_EQ(corpus.records[0].tokens.size(), 3u);  // {a, b, c}
  EXPECT_EQ(corpus.records[1].tokens.size(), 1u);  // {c}
  EXPECT_TRUE(corpus.Validate().ok());
  // Term frequencies are per-record (set semantics).
  TokenId c = corpus.dictionary.Lookup("c").value();
  EXPECT_EQ(corpus.dictionary.Frequency(c), 2u);
}

TEST(CorpusTest, EmptyLinesYieldEmptyRecords) {
  WordTokenizer t;
  Corpus corpus = BuildCorpus({"", "a"}, t);
  EXPECT_EQ(corpus.records[0].tokens.size(), 0u);
  EXPECT_TRUE(corpus.Validate().ok());
}

TEST(CorpusTest, ValidateCatchesCorruption) {
  WordTokenizer t;
  Corpus corpus = BuildCorpus({"a b", "b c"}, t);
  corpus.records[1].id = 7;  // break dense ids
  EXPECT_FALSE(corpus.Validate().ok());
}

TEST(CorpusTest, SampleRenumbersAndRecounts) {
  WordTokenizer t;
  Corpus corpus = BuildCorpus({"a b", "b c", "c d", "d e"}, t);
  Corpus sampled = SampleCorpus(corpus, {1, 3});
  ASSERT_EQ(sampled.NumRecords(), 2u);
  EXPECT_EQ(sampled.records[0].id, 0u);
  EXPECT_EQ(sampled.records[1].id, 1u);
  EXPECT_TRUE(sampled.Validate().ok());
  // 'b' survives once.
  EXPECT_EQ(
      sampled.dictionary.Frequency(sampled.dictionary.Lookup("b").value()),
      1u);
  EXPECT_FALSE(sampled.dictionary.Lookup("a").ok() &&
               sampled.dictionary.Frequency(
                   sampled.dictionary.Lookup("a").value()) > 1);
}

TEST(CorpusTest, StatsMatchDefinition) {
  WordTokenizer t;
  Corpus corpus = BuildCorpus({"a b c", "d", "e f"}, t);
  CorpusStats stats = ComputeStats(corpus);
  EXPECT_EQ(stats.num_records, 3u);
  EXPECT_EQ(stats.total_tokens, 6u);
  EXPECT_EQ(stats.min_len, 1u);
  EXPECT_EQ(stats.max_len, 3u);
  EXPECT_DOUBLE_EQ(stats.avg_len, 2.0);
  EXPECT_EQ(stats.vocab_size, 6u);
}

// ---- Generator ------------------------------------------------------------

TEST(GeneratorTest, ZeroRecordsOrZeroVocabYieldsEmptyCorpus) {
  // Regression: these used to crash on an FSJOIN_CHECK instead of returning
  // an empty corpus. A zero-sized request is a valid (empty) corpus.
  SyntheticCorpusConfig zero_records;
  zero_records.num_records = 0;
  zero_records.vocab_size = 100;
  Corpus a = GenerateCorpus(zero_records);
  EXPECT_EQ(a.NumRecords(), 0u);
  EXPECT_TRUE(a.Validate().ok());

  SyntheticCorpusConfig zero_vocab;
  zero_vocab.num_records = 10;
  zero_vocab.vocab_size = 0;
  Corpus b = GenerateCorpus(zero_vocab);
  EXPECT_EQ(b.NumRecords(), 0u);
  EXPECT_TRUE(b.Validate().ok());

  SyntheticCorpusConfig both_zero;
  both_zero.num_records = 0;
  both_zero.vocab_size = 0;
  EXPECT_EQ(GenerateCorpus(both_zero).NumRecords(), 0u);
}

TEST(GeneratorTest, DeterministicForSeed) {
  SyntheticCorpusConfig cfg;
  cfg.num_records = 200;
  cfg.vocab_size = 500;
  cfg.seed = 13;
  Corpus a = GenerateCorpus(cfg);
  Corpus b = GenerateCorpus(cfg);
  ASSERT_EQ(a.NumRecords(), b.NumRecords());
  for (size_t i = 0; i < a.NumRecords(); ++i) {
    EXPECT_EQ(a.records[i].tokens, b.records[i].tokens);
  }
}

TEST(GeneratorTest, RespectsInvariantsAndBounds) {
  SyntheticCorpusConfig cfg;
  cfg.num_records = 300;
  cfg.vocab_size = 400;
  cfg.min_len = 2;
  cfg.max_len = 40;
  cfg.avg_len = 10;
  cfg.near_duplicate_fraction = 0.0;  // pure records obey min/max exactly
  Corpus corpus = GenerateCorpus(cfg);
  EXPECT_TRUE(corpus.Validate().ok());
  for (const Record& r : corpus.records) {
    EXPECT_GE(r.tokens.size(), cfg.min_len);
    EXPECT_LE(r.tokens.size(), cfg.max_len);
  }
}

TEST(GeneratorTest, PlantsNearDuplicates) {
  Corpus corpus = fsjoin::testing::RandomCorpus(300, 400, 1.0, 12, 31);
  // With 35% near-duplicates at 12% mutation there must be highly similar
  // pairs; check at least one pair shares >= 80% of tokens.
  auto ordered = fsjoin::testing::OrderedView(corpus);
  bool found = false;
  for (size_t i = 0; i < ordered.size() && !found; ++i) {
    for (size_t j = i + 1; j < ordered.size() && !found; ++j) {
      size_t common = 0;
      size_t x = 0, y = 0;
      while (x < ordered[i].tokens.size() && y < ordered[j].tokens.size()) {
        if (ordered[i].tokens[x] == ordered[j].tokens[y]) {
          ++common;
          ++x;
          ++y;
        } else if (ordered[i].tokens[x] < ordered[j].tokens[y]) {
          ++x;
        } else {
          ++y;
        }
      }
      size_t uni =
          ordered[i].tokens.size() + ordered[j].tokens.size() - common;
      if (uni > 0 && static_cast<double>(common) / uni >= 0.8) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(GeneratorTest, PresetsHaveDistinctShapes) {
  Corpus email = GenerateCorpus(EmailLikeConfig(0.05));
  Corpus wiki = GenerateCorpus(WikiLikeConfig(0.05));
  CorpusStats es = ComputeStats(email);
  CorpusStats ws = ComputeStats(wiki);
  // Email-like: few long records. Wiki-like: many short ones.
  EXPECT_LT(es.num_records, ws.num_records);
  EXPECT_GT(es.avg_len, 3 * ws.avg_len);
}

// ---- IO ---------------------------------------------------------------------

TEST(CorpusIoTest, RoundTripsThroughText) {
  Corpus corpus = fsjoin::testing::RandomCorpus(50, 80, 1.0, 6, 41);
  std::string path =
      (std::filesystem::temp_directory_path() / "fsjoin_io_test.txt").string();
  ASSERT_TRUE(WriteCorpusText(corpus, path).ok());
  Result<Corpus> read = ReadCorpusText(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->NumRecords(), corpus.NumRecords());
  for (size_t i = 0; i < corpus.NumRecords(); ++i) {
    // Token *sets* must match (ids may be renumbered).
    std::set<std::string> before, after;
    for (TokenId t : corpus.records[i].tokens) {
      before.insert(corpus.dictionary.TokenString(t));
    }
    for (TokenId t : read->records[i].tokens) {
      after.insert(read->dictionary.TokenString(t));
    }
    EXPECT_EQ(before, after);
  }
  std::remove(path.c_str());
}

TEST(CorpusIoTest, MissingFileIsIoError) {
  Result<Corpus> r = ReadCorpusText("/nonexistent/path/xyz.txt");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

// ---- Round-trip property ---------------------------------------------------

// tokenizer -> dictionary -> global order is lossless: ranks map back to
// the exact per-record token sets, and token multiplicity (how many records
// contain each token) is preserved by the ordering — 100 seeded iterations
// over random corpora with duplicate tokens inside lines.
TEST(RoundTripProperty, TokenizeDictionaryGlobalOrderPreservesMultiplicity) {
  WhitespaceTokenizer tokenizer;
  for (uint64_t iter = 0; iter < 100; ++iter) {
    Rng rng(1000 + iter);
    const size_t num_records = 1 + rng.NextBounded(20);
    const uint32_t vocab = 1 + static_cast<uint32_t>(rng.NextBounded(30));
    std::vector<std::string> lines;
    std::vector<std::set<std::string>> expected_sets;
    for (size_t r = 0; r < num_records; ++r) {
      const size_t len = rng.NextBounded(12);  // may be 0: empty record
      std::string line;
      std::set<std::string> expected;
      for (size_t k = 0; k < len; ++k) {
        // Duplicates within a line are likely and must collapse.
        std::string word = "w" + std::to_string(rng.NextBounded(vocab));
        expected.insert(word);
        if (!line.empty()) line += ' ';
        line += word;
      }
      lines.push_back(line);
      expected_sets.push_back(std::move(expected));
    }

    Corpus corpus = BuildCorpus(lines, tokenizer);
    ASSERT_TRUE(corpus.Validate().ok()) << "iter " << iter;
    ASSERT_EQ(corpus.NumRecords(), num_records);

    // Dictionary multiplicity: frequency of each token == number of
    // records whose set contains it.
    std::map<std::string, uint64_t> expected_freq;
    for (const auto& set : expected_sets) {
      for (const std::string& word : set) ++expected_freq[word];
    }
    uint64_t expected_total = 0;
    for (const auto& [word, f] : expected_freq) {
      auto id = corpus.dictionary.Lookup(word);
      ASSERT_TRUE(id.ok()) << "iter " << iter << " lost token " << word;
      EXPECT_EQ(corpus.dictionary.Frequency(*id), f)
          << "iter " << iter << " token " << word;
      expected_total += f;
    }

    // Global order is a bijection on the token domain; mapping ranks back
    // through TokenAt recovers each record's exact token set, and the
    // summed per-rank frequency equals the corpus's total multiplicity.
    GlobalOrder order = GlobalOrder::FromCorpus(corpus);
    ASSERT_EQ(order.NumTokens(), corpus.dictionary.size());
    std::vector<OrderedRecord> ordered = ApplyGlobalOrder(corpus, order);
    ASSERT_EQ(ordered.size(), num_records);
    for (size_t r = 0; r < num_records; ++r) {
      EXPECT_EQ(ordered[r].tokens.size(), expected_sets[r].size());
      std::set<std::string> recovered;
      for (TokenRank rank : ordered[r].tokens) {
        recovered.insert(
            corpus.dictionary.TokenString(order.TokenAt(rank)));
      }
      EXPECT_EQ(recovered, expected_sets[r]) << "iter " << iter
                                             << " record " << r;
    }
    uint64_t rank_total = 0;
    for (TokenRank rank = 0; rank < order.NumTokens(); ++rank) {
      rank_total += order.FrequencyAt(rank);
      if (rank > 0) {
        EXPECT_GE(order.FrequencyAt(rank), order.FrequencyAt(rank - 1))
            << "global order not ascending in frequency at rank " << rank;
      }
    }
    EXPECT_EQ(rank_total, expected_total) << "iter " << iter;
    EXPECT_EQ(rank_total, corpus.TotalTokens()) << "iter " << iter;
  }
}

}  // namespace
}  // namespace fsjoin
