// Fragment-local joins (§V-A "Join Algorithms"): Loop, Index and Prefix
// must produce identical surviving partial overlaps (Loop is the oracle),
// and the filter counters must account for every considered pair.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/fragment_join.h"
#include "core/pivots.h"
#include "core/segments.h"
#include "test_util.h"
#include "util/random.h"

namespace fsjoin {
namespace {

std::vector<SegmentRecord> RandomFragment(Rng& rng, size_t n,
                                          uint32_t rank_lo, uint32_t rank_hi) {
  std::vector<SegmentRecord> segments;
  for (size_t i = 0; i < n; ++i) {
    SegmentRecord seg;
    seg.rid = static_cast<RecordId>(i);
    for (uint32_t r = rank_lo; r < rank_hi; ++r) {
      if (rng.NextBool(0.3)) seg.tokens.push_back(r);
    }
    if (seg.tokens.empty()) seg.tokens.push_back(rank_lo);
    seg.head = static_cast<uint32_t>(rng.NextBounded(6));
    uint32_t tail = static_cast<uint32_t>(rng.NextBounded(6));
    seg.record_size =
        seg.head + static_cast<uint32_t>(seg.tokens.size()) + tail;
    segments.push_back(std::move(seg));
  }
  return segments;
}

void SortPartials(std::vector<PartialOverlap>* v) {
  std::sort(v->begin(), v->end(),
            [](const PartialOverlap& x, const PartialOverlap& y) {
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
}

bool SamePartials(const std::vector<PartialOverlap>& x,
                  const std::vector<PartialOverlap>& y) {
  if (x.size() != y.size()) return false;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i].a != y[i].a || x[i].b != y[i].b || x[i].overlap != y[i].overlap ||
        x[i].size_a != y[i].size_a || x[i].size_b != y[i].size_b) {
      return false;
    }
  }
  return true;
}

TEST(FragmentJoinTest, MethodsProduceIdenticalPartials) {
  Rng rng(2024);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<SegmentRecord> fragment = RandomFragment(rng, 25, 0, 30);
    for (double theta : {0.5, 0.8}) {
      FragmentJoinOptions opts;
      opts.theta = theta;
      std::vector<PartialOverlap> loop, index, prefix;
      FilterCounters cl, ci, cp;
      opts.method = JoinMethod::kLoop;
      JoinFragment(fragment, opts, &loop, &cl);
      opts.method = JoinMethod::kIndex;
      JoinFragment(fragment, opts, &index, &ci);
      opts.method = JoinMethod::kPrefix;
      JoinFragment(fragment, opts, &prefix, &cp);
      SortPartials(&loop);
      SortPartials(&index);
      SortPartials(&prefix);
      EXPECT_TRUE(SamePartials(loop, index));
      EXPECT_TRUE(SamePartials(loop, prefix));
      // Prefix considers no more candidates than Index, which considers no
      // more than Loop.
      EXPECT_LE(ci.pairs_considered, cl.pairs_considered);
      EXPECT_LE(cp.pairs_considered, ci.pairs_considered);
    }
  }
}

TEST(FragmentJoinTest, CountersAccountForEveryConsideredPair) {
  Rng rng(7);
  std::vector<SegmentRecord> fragment = RandomFragment(rng, 30, 0, 25);
  FragmentJoinOptions opts;
  opts.theta = 0.8;
  opts.method = JoinMethod::kLoop;
  std::vector<PartialOverlap> out;
  FilterCounters c;
  JoinFragment(fragment, opts, &out, &c);
  EXPECT_EQ(c.pairs_considered, 30u * 29u / 2u);
  EXPECT_EQ(c.pairs_considered, c.pruned_role + c.pruned_strl + c.pruned_segl +
                                    c.pruned_segi + c.pruned_segd +
                                    c.empty_overlap + c.emitted);
  EXPECT_EQ(c.emitted, out.size());
}

TEST(FragmentJoinTest, PairAllowedGatesJoins) {
  Rng rng(8);
  std::vector<SegmentRecord> fragment = RandomFragment(rng, 10, 0, 15);
  FragmentJoinOptions opts;
  opts.theta = 0.5;
  opts.use_length_filter = false;
  opts.use_segment_length_filter = false;
  opts.use_segment_intersection_filter = false;
  opts.use_segment_difference_filter = false;
  opts.pair_allowed = [](const SegmentRecord& a, const SegmentRecord& b) {
    return (a.rid + b.rid) % 2 == 1;  // only odd-parity pairs
  };
  std::vector<PartialOverlap> out;
  FilterCounters c;
  JoinFragment(fragment, opts, &out, &c);
  for (const PartialOverlap& p : out) {
    EXPECT_EQ((p.a + p.b) % 2, 1u);
  }
  EXPECT_GT(c.pruned_role, 0u);
}

TEST(FragmentJoinTest, PartialsAreNormalizedAndExact) {
  // Two hand-built segments with known overlap.
  SegmentRecord x, y;
  x.rid = 9;
  x.record_size = 6;
  x.head = 1;
  x.tokens = {2, 4, 6, 8};
  y.rid = 3;
  y.record_size = 5;
  y.head = 0;
  y.tokens = {2, 6, 7, 9};
  FragmentJoinOptions opts;
  opts.theta = 0.3;
  opts.method = JoinMethod::kLoop;
  std::vector<PartialOverlap> out;
  FilterCounters c;
  JoinFragment({x, y}, opts, &out, &c);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].a, 3u);  // smaller rid first
  EXPECT_EQ(out[0].b, 9u);
  EXPECT_EQ(out[0].size_a, 5u);
  EXPECT_EQ(out[0].size_b, 6u);
  EXPECT_EQ(out[0].overlap, 2u);  // {2, 6}
}

TEST(FragmentJoinTest, EmptyFragment) {
  FragmentJoinOptions opts;
  std::vector<PartialOverlap> out;
  FilterCounters c;
  JoinFragment({}, opts, &out, &c);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(c.pairs_considered, 0u);
}

TEST(FragmentJoinTest, FilterCountersAdd) {
  FilterCounters a, b;
  a.pairs_considered = 5;
  a.emitted = 2;
  b.pairs_considered = 7;
  b.pruned_strl = 3;
  a.Add(b);
  EXPECT_EQ(a.pairs_considered, 12u);
  EXPECT_EQ(a.pruned_strl, 3u);
  EXPECT_EQ(a.emitted, 2u);
}

}  // namespace
}  // namespace fsjoin
