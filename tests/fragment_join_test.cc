// Fragment-local joins (§V-A "Join Algorithms"): Loop, Index and Prefix
// must produce identical surviving partial overlaps (Loop is the oracle),
// and the filter counters must account for every considered pair.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/fragment_join.h"
#include "core/pivots.h"
#include "core/segments.h"
#include "test_util.h"
#include "util/random.h"

namespace fsjoin {
namespace {

std::vector<SegmentRecord> RandomFragment(Rng& rng, size_t n,
                                          uint32_t rank_lo, uint32_t rank_hi) {
  std::vector<SegmentRecord> segments;
  for (size_t i = 0; i < n; ++i) {
    SegmentRecord seg;
    seg.rid = static_cast<RecordId>(i);
    for (uint32_t r = rank_lo; r < rank_hi; ++r) {
      if (rng.NextBool(0.3)) seg.tokens.push_back(r);
    }
    if (seg.tokens.empty()) seg.tokens.push_back(rank_lo);
    seg.head = static_cast<uint32_t>(rng.NextBounded(6));
    uint32_t tail = static_cast<uint32_t>(rng.NextBounded(6));
    seg.record_size =
        seg.head + static_cast<uint32_t>(seg.tokens.size()) + tail;
    segments.push_back(std::move(seg));
  }
  return segments;
}

void SortPartials(std::vector<PartialOverlap>* v) {
  std::sort(v->begin(), v->end(),
            [](const PartialOverlap& x, const PartialOverlap& y) {
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
}

bool SamePartials(const std::vector<PartialOverlap>& x,
                  const std::vector<PartialOverlap>& y) {
  if (x.size() != y.size()) return false;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i].a != y[i].a || x[i].b != y[i].b || x[i].overlap != y[i].overlap ||
        x[i].size_a != y[i].size_a || x[i].size_b != y[i].size_b) {
      return false;
    }
  }
  return true;
}

TEST(FragmentJoinTest, MethodsProduceIdenticalPartials) {
  Rng rng(2024);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<SegmentRecord> fragment = RandomFragment(rng, 25, 0, 30);
    for (double theta : {0.5, 0.8}) {
      FragmentJoinOptions opts;
      opts.theta = theta;
      std::vector<PartialOverlap> loop, index, prefix;
      FilterCounters cl, ci, cp;
      opts.method = JoinMethod::kLoop;
      JoinFragment(fragment, opts, &loop, &cl);
      opts.method = JoinMethod::kIndex;
      JoinFragment(fragment, opts, &index, &ci);
      opts.method = JoinMethod::kPrefix;
      JoinFragment(fragment, opts, &prefix, &cp);
      SortPartials(&loop);
      SortPartials(&index);
      SortPartials(&prefix);
      EXPECT_TRUE(SamePartials(loop, index));
      EXPECT_TRUE(SamePartials(loop, prefix));
      // Prefix considers no more candidates than Index, which considers no
      // more than Loop.
      EXPECT_LE(ci.pairs_considered, cl.pairs_considered);
      EXPECT_LE(cp.pairs_considered, ci.pairs_considered);
    }
  }
}

TEST(FragmentJoinTest, CountersAccountForEveryConsideredPair) {
  Rng rng(7);
  std::vector<SegmentRecord> fragment = RandomFragment(rng, 30, 0, 25);
  FragmentJoinOptions opts;
  opts.theta = 0.8;
  opts.method = JoinMethod::kLoop;
  std::vector<PartialOverlap> out;
  FilterCounters c;
  JoinFragment(fragment, opts, &out, &c);
  EXPECT_EQ(c.pairs_considered, 30u * 29u / 2u);
  EXPECT_EQ(c.pairs_considered, c.pruned_role + c.pruned_strl + c.pruned_segl +
                                    c.pruned_segi + c.pruned_segd +
                                    c.empty_overlap + c.emitted);
  EXPECT_EQ(c.emitted, out.size());
}

TEST(FragmentJoinTest, PairAllowedGatesJoins) {
  Rng rng(8);
  std::vector<SegmentRecord> fragment = RandomFragment(rng, 10, 0, 15);
  FragmentJoinOptions opts;
  opts.theta = 0.5;
  opts.use_length_filter = false;
  opts.use_segment_length_filter = false;
  opts.use_segment_intersection_filter = false;
  opts.use_segment_difference_filter = false;
  opts.pair_allowed = [](const SegmentView& a, const SegmentView& b) {
    return (a.rid + b.rid) % 2 == 1;  // only odd-parity pairs
  };
  std::vector<PartialOverlap> out;
  FilterCounters c;
  JoinFragment(fragment, opts, &out, &c);
  for (const PartialOverlap& p : out) {
    EXPECT_EQ((p.a + p.b) % 2, 1u);
  }
  EXPECT_GT(c.pruned_role, 0u);
}

TEST(FragmentJoinTest, PartialsAreNormalizedAndExact) {
  // Two hand-built segments with known overlap.
  SegmentRecord x, y;
  x.rid = 9;
  x.record_size = 6;
  x.head = 1;
  x.tokens = {2, 4, 6, 8};
  y.rid = 3;
  y.record_size = 5;
  y.head = 0;
  y.tokens = {2, 6, 7, 9};
  FragmentJoinOptions opts;
  opts.theta = 0.3;
  opts.method = JoinMethod::kLoop;
  std::vector<PartialOverlap> out;
  FilterCounters c;
  JoinFragment({x, y}, opts, &out, &c);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].a, 3u);  // smaller rid first
  EXPECT_EQ(out[0].b, 9u);
  EXPECT_EQ(out[0].size_a, 5u);
  EXPECT_EQ(out[0].size_b, 6u);
  EXPECT_EQ(out[0].overlap, 2u);  // {2, 6}
}

TEST(FragmentJoinTest, EmptyFragment) {
  FragmentJoinOptions opts;
  std::vector<PartialOverlap> out;
  FilterCounters c;
  JoinFragment({}, opts, &out, &c);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(c.pairs_considered, 0u);
}

// Determinism contract of the morsel path: for every join method, every
// morsel size and every thread count (including 0 = inline debug mode),
// output order and counters are byte-identical to the serial run.
TEST(FragmentJoinTest, MorselJoinIsDeterministicAcrossSizesAndThreads) {
  Rng rng(99);
  std::vector<SegmentRecord> fragment = RandomFragment(rng, 40, 0, 30);
  for (JoinMethod method :
       {JoinMethod::kLoop, JoinMethod::kIndex, JoinMethod::kPrefix}) {
    FragmentJoinOptions serial_opts;
    serial_opts.theta = 0.5;
    serial_opts.method = method;
    std::vector<PartialOverlap> serial_out;
    FilterCounters serial_counters;
    JoinFragment(fragment, serial_opts, &serial_out, &serial_counters);

    for (size_t threads : {size_t{0}, size_t{1}, size_t{8}}) {
      ThreadPool pool(threads);
      for (size_t morsel :
           {size_t{1}, size_t{7}, size_t{64}, std::numeric_limits<size_t>::max()}) {
        FragmentJoinOptions opts = serial_opts;
        opts.morsel_pool = &pool;
        opts.morsel_size = morsel;
        std::vector<PartialOverlap> out;
        FilterCounters counters;
        JoinFragment(fragment, opts, &out, &counters);
        // Unsorted comparison: order itself must match the serial run.
        EXPECT_TRUE(SamePartials(serial_out, out))
            << "method=" << static_cast<int>(method) << " threads=" << threads
            << " morsel=" << morsel;
        EXPECT_EQ(serial_counters.pairs_considered, counters.pairs_considered);
        EXPECT_EQ(serial_counters.pruned_role, counters.pruned_role);
        EXPECT_EQ(serial_counters.pruned_strl, counters.pruned_strl);
        EXPECT_EQ(serial_counters.pruned_segl, counters.pruned_segl);
        EXPECT_EQ(serial_counters.pruned_segi, counters.pruned_segi);
        EXPECT_EQ(serial_counters.pruned_segd, counters.pruned_segd);
        EXPECT_EQ(serial_counters.empty_overlap, counters.empty_overlap);
        EXPECT_EQ(serial_counters.emitted, counters.emitted);
      }
    }
  }
}

// Property: FilterCounters summed over ANY morsel split of a fragment equal
// the serial counters exactly — Add is a plain component-wise sum, so the
// merge is associative regardless of how probes are partitioned.
TEST(FragmentJoinTest, CountersSumExactlyOverAnyMorselSplit) {
  Rng rng(123);
  std::vector<SegmentRecord> fragment = RandomFragment(rng, 35, 0, 28);
  FragmentJoinOptions opts;
  opts.theta = 0.6;
  opts.method = JoinMethod::kLoop;
  std::vector<PartialOverlap> serial_out;
  FilterCounters serial;
  JoinFragment(fragment, opts, &serial_out, &serial);

  ThreadPool pool(4);
  for (int trial = 0; trial < 20; ++trial) {
    // Random morsel size in [1, n + 5] exercises uneven trailing splits.
    size_t morsel = 1 + rng.NextBounded(fragment.size() + 5);
    FragmentJoinOptions split_opts = opts;
    split_opts.morsel_pool = &pool;
    split_opts.morsel_size = morsel;
    std::vector<PartialOverlap> out;
    FilterCounters summed;
    JoinFragment(fragment, split_opts, &out, &summed);
    EXPECT_EQ(serial.pairs_considered, summed.pairs_considered)
        << "morsel=" << morsel;
    EXPECT_EQ(serial.pruned_role, summed.pruned_role);
    EXPECT_EQ(serial.pruned_strl, summed.pruned_strl);
    EXPECT_EQ(serial.pruned_segl, summed.pruned_segl);
    EXPECT_EQ(serial.pruned_segi, summed.pruned_segi);
    EXPECT_EQ(serial.pruned_segd, summed.pruned_segd);
    EXPECT_EQ(serial.empty_overlap, summed.empty_overlap);
    EXPECT_EQ(serial.emitted, summed.emitted);
    EXPECT_TRUE(SamePartials(serial_out, out));
  }
}

TEST(FragmentJoinTest, BatchJoinMatchesRowJoin) {
  Rng rng(55);
  std::vector<SegmentRecord> fragment = RandomFragment(rng, 20, 0, 24);
  FragmentJoinOptions opts;
  opts.theta = 0.5;
  for (JoinMethod method :
       {JoinMethod::kLoop, JoinMethod::kIndex, JoinMethod::kPrefix}) {
    opts.method = method;
    std::vector<PartialOverlap> row_out, batch_out;
    FilterCounters row_c, batch_c;
    JoinFragment(fragment, opts, &row_out, &row_c);
    SegmentBatch batch = SegmentBatch::FromRecords(fragment);
    JoinFragmentBatch(batch, opts, &batch_out, &batch_c);
    EXPECT_TRUE(SamePartials(row_out, batch_out));
    EXPECT_EQ(row_c.pairs_considered, batch_c.pairs_considered);
    EXPECT_EQ(row_c.emitted, batch_c.emitted);
  }
}

TEST(FragmentJoinTest, FilterCountersAdd) {
  FilterCounters a, b;
  a.pairs_considered = 5;
  a.emitted = 2;
  b.pairs_considered = 7;
  b.pruned_strl = 3;
  a.Add(b);
  EXPECT_EQ(a.pairs_considered, 12u);
  EXPECT_EQ(a.pruned_strl, 3u);
  EXPECT_EQ(a.emitted, 2u);
}

}  // namespace
}  // namespace fsjoin
