// MinHash/LSH approximate join (the paper's future-work extension):
// signature properties, the banding probability, and the join's
// precision-1.0 / high-recall behavior against brute force.

#include <gtest/gtest.h>

#include <cmath>

#include "sim/minhash.h"
#include "sim/serial_join.h"
#include "sim/set_ops.h"
#include "test_util.h"
#include "util/random.h"

namespace fsjoin {
namespace {

using ::fsjoin::testing::OrderedView;
using ::fsjoin::testing::RandomCorpus;

TEST(MinHashSignatureTest, DeterministicAndSeedSensitive) {
  std::vector<TokenRank> tokens = {1, 5, 9, 42, 77};
  auto a = MinHashSignature(tokens, 64, 7);
  auto b = MinHashSignature(tokens, 64, 7);
  auto c = MinHashSignature(tokens, 64, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 64u);
}

TEST(MinHashSignatureTest, IdenticalSetsIdenticalSignatures) {
  std::vector<TokenRank> tokens = {3, 14, 15, 92, 65, 35};
  EXPECT_EQ(MinHashSignature(tokens, 32, 1), MinHashSignature(tokens, 32, 1));
  EXPECT_NEAR(EstimateJaccard(MinHashSignature(tokens, 32, 1),
                              MinHashSignature(tokens, 32, 1)),
              1.0, 1e-12);
}

TEST(MinHashSignatureTest, EstimatesJaccardUnbiasedly) {
  // Two sets with known Jaccard 0.5: estimate from a large signature must
  // land near 0.5.
  std::vector<TokenRank> a, b;
  for (TokenRank t = 0; t < 300; ++t) {
    if (t < 200) a.push_back(t);       // a = [0, 200)
    if (t >= 100) b.push_back(t);      // b = [100, 300); overlap 100/300
  }
  double true_jaccard = 100.0 / 300.0;
  auto sa = MinHashSignature(a, 1024, 5);
  auto sb = MinHashSignature(b, 1024, 5);
  EXPECT_NEAR(EstimateJaccard(sa, sb), true_jaccard, 0.05);
}

TEST(MinHashConfigTest, ValidationAndProbability) {
  MinHashJoinConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.bands = 33;  // does not divide 128
  EXPECT_FALSE(config.Validate().ok());
  config.bands = 32;
  config.theta = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config.theta = 0.8;

  // r = 4, b = 32: the S-curve is ~0 at low sim, ~1 at high sim.
  EXPECT_LT(config.CandidateProbability(0.2), 0.1);
  EXPECT_GT(config.CandidateProbability(0.9), 0.99);
  // Exact formula check at sim = 0.8.
  double expected = 1.0 - std::pow(1.0 - std::pow(0.8, 4.0), 32.0);
  EXPECT_NEAR(config.CandidateProbability(0.8), expected, 1e-12);
}

TEST(MinHashJoinTest, PrecisionIsOneRecallIsHigh) {
  auto records = OrderedView(RandomCorpus(250, 300, 1.0, 12, 3030));
  MinHashJoinConfig config;
  config.theta = 0.8;
  config.num_hashes = 128;
  config.bands = 32;  // r = 4: recall at 0.8 is ~1 - (1-0.41)^32 ~ 1.0
  MinHashJoinStats stats;
  Result<JoinResultSet> approx = MinHashJoin(records, config, &stats);
  ASSERT_TRUE(approx.ok());
  JoinResultSet exact =
      BruteForceJoin(records, SimilarityFunction::kJaccard, config.theta);

  // Precision 1.0: every returned pair is in the exact result.
  size_t found = 0;
  for (const SimilarPair& p : *approx) {
    bool present = std::binary_search(
        exact.begin(), exact.end(), p,
        [](const SimilarPair& x, const SimilarPair& y) {
          if (x.a != y.a) return x.a < y.a;
          return x.b < y.b;
        });
    EXPECT_TRUE(present) << "(" << p.a << "," << p.b << ")";
    if (present) ++found;
  }
  // Recall: with r=4/b=32 the expected recall at theta is > 99%.
  if (!exact.empty()) {
    EXPECT_GE(static_cast<double>(approx->size()) /
                  static_cast<double>(exact.size()),
              0.95);
  }
  EXPECT_EQ(stats.verified_pairs, approx->size());
  EXPECT_GE(stats.candidate_pairs, stats.verified_pairs);
}

TEST(MinHashJoinTest, FewerBandsLowerRecallFewerCandidates) {
  auto records = OrderedView(RandomCorpus(200, 250, 1.0, 10, 3131));
  MinHashJoinConfig many;
  many.theta = 0.8;
  many.num_hashes = 128;
  many.bands = 32;
  MinHashJoinConfig few = many;
  few.bands = 4;  // r = 32: near-exact matches only
  MinHashJoinStats many_stats, few_stats;
  Result<JoinResultSet> a = MinHashJoin(records, many, &many_stats);
  Result<JoinResultSet> b = MinHashJoin(records, few, &few_stats);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LE(few_stats.candidate_pairs, many_stats.candidate_pairs);
  EXPECT_LE(b->size(), a->size());
}

TEST(MinHashJoinTest, EmptyInputsAndEmptyRecords) {
  MinHashJoinConfig config;
  Result<JoinResultSet> empty = MinHashJoin({}, config);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  std::vector<OrderedRecord> records(3);
  records[0] = {0, {}};
  records[1] = {1, {1, 2, 3}};
  records[2] = {2, {1, 2, 3}};
  Result<JoinResultSet> out = MinHashJoin(records, config);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].a, 1u);
}

}  // namespace
}  // namespace fsjoin
