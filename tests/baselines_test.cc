// The competitor algorithms must all be *correct* (same result set as brute
// force) — the paper's comparison is about cost, not answers. Also checks
// the cost signatures the paper attributes to each algorithm (duplication,
// emission blowups) and the ResourceExhausted behavior used to model
// "cannot run successfully on large datasets".

#include <gtest/gtest.h>

#include "baselines/massjoin.h"
#include "baselines/vernica_join.h"
#include "baselines/vsmart_join.h"
#include "core/fsjoin.h"
#include "sim/serial_join.h"
#include "test_util.h"

namespace fsjoin {
namespace {

using ::fsjoin::testing::OrderedView;
using ::fsjoin::testing::RandomCorpus;

BaselineConfig SmallConfig(double theta) {
  BaselineConfig config;
  config.theta = theta;
  config.exec.num_map_tasks = 3;
  config.exec.num_reduce_tasks = 5;
  return config;
}

class BaselineCorrectness : public ::testing::TestWithParam<double> {};

TEST_P(BaselineCorrectness, VernicaMatchesBruteForce) {
  Corpus corpus = RandomCorpus(130, 150, 1.0, 10, 901);
  JoinResultSet expected = BruteForceJoin(
      OrderedView(corpus), SimilarityFunction::kJaccard, GetParam());
  Result<BaselineOutput> out = RunVernicaJoin(corpus, SmallConfig(GetParam()));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(SamePairs(expected, out->pairs))
      << DiffResults(expected, out->pairs);
}

TEST_P(BaselineCorrectness, VSmartMatchesBruteForce) {
  Corpus corpus = RandomCorpus(120, 150, 1.0, 9, 902);
  JoinResultSet expected = BruteForceJoin(
      OrderedView(corpus), SimilarityFunction::kJaccard, GetParam());
  Result<BaselineOutput> out = RunVSmartJoin(corpus, SmallConfig(GetParam()));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(SamePairs(expected, out->pairs))
      << DiffResults(expected, out->pairs);
}

TEST_P(BaselineCorrectness, MassJoinMergeMatchesBruteForce) {
  Corpus corpus = RandomCorpus(110, 140, 1.0, 9, 903);
  JoinResultSet expected = BruteForceJoin(
      OrderedView(corpus), SimilarityFunction::kJaccard, GetParam());
  MassJoinConfig config;
  static_cast<BaselineConfig&>(config) = SmallConfig(GetParam());
  config.length_group = 1;
  Result<BaselineOutput> out = RunMassJoin(corpus, config);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(SamePairs(expected, out->pairs))
      << DiffResults(expected, out->pairs);
}

TEST_P(BaselineCorrectness, MassJoinLightMatchesBruteForce) {
  Corpus corpus = RandomCorpus(110, 140, 1.0, 9, 904);
  JoinResultSet expected = BruteForceJoin(
      OrderedView(corpus), SimilarityFunction::kJaccard, GetParam());
  MassJoinConfig config;
  static_cast<BaselineConfig&>(config) = SmallConfig(GetParam());
  config.length_group = 5;
  Result<BaselineOutput> out = RunMassJoin(corpus, config);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(SamePairs(expected, out->pairs))
      << DiffResults(expected, out->pairs);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, BaselineCorrectness,
                         ::testing::Values(0.6, 0.75, 0.9),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "theta" +
                                  std::to_string(static_cast<int>(
                                      info.param * 100 + 0.5));
                         });

TEST(BaselineCorrectness, AllAlgorithmsAgreeWithFsJoin) {
  Corpus corpus = RandomCorpus(100, 130, 1.05, 10, 905);
  const double theta = 0.7;

  FsJoinConfig fs_config;
  fs_config.theta = theta;
  fs_config.num_vertical_partitions = 5;
  Result<FsJoinOutput> fs = FsJoin(fs_config).Run(corpus);
  ASSERT_TRUE(fs.ok());

  Result<BaselineOutput> vernica =
      RunVernicaJoin(corpus, SmallConfig(theta));
  Result<BaselineOutput> vsmart = RunVSmartJoin(corpus, SmallConfig(theta));
  MassJoinConfig mj_config;
  static_cast<BaselineConfig&>(mj_config) = SmallConfig(theta);
  Result<BaselineOutput> massjoin = RunMassJoin(corpus, mj_config);
  ASSERT_TRUE(vernica.ok());
  ASSERT_TRUE(vsmart.ok());
  ASSERT_TRUE(massjoin.ok());

  EXPECT_TRUE(SamePairs(fs->pairs, vernica->pairs));
  EXPECT_TRUE(SamePairs(fs->pairs, vsmart->pairs));
  EXPECT_TRUE(SamePairs(fs->pairs, massjoin->pairs));
}

// ---- Cost signatures -----------------------------------------------------

TEST(BaselineCostShape, VernicaDuplicatesRecordsPerPrefixToken) {
  Corpus corpus = RandomCorpus(200, 300, 1.0, 12, 906);
  Result<BaselineOutput> out = RunVernicaJoin(corpus, SmallConfig(0.8));
  ASSERT_TRUE(out.ok());
  // Each record is emitted once per prefix token: duplication strictly
  // above 1 for theta < 1.
  EXPECT_GT(out->report.DuplicationFactor(corpus.NumRecords()), 1.5);
}

TEST(BaselineCostShape, FsJoinShufflesLessThanVSmart) {
  Corpus corpus = RandomCorpus(150, 200, 1.0, 10, 907);
  FsJoinConfig fs_config;
  fs_config.theta = 0.8;
  Result<FsJoinOutput> fs = FsJoin(fs_config).Run(corpus);
  Result<BaselineOutput> vsmart = RunVSmartJoin(corpus, SmallConfig(0.8));
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE(vsmart.ok());
  uint64_t vsmart_shuffle = 0;
  for (const auto& j : vsmart->report.jobs) vsmart_shuffle += j.shuffle_bytes;
  uint64_t fs_shuffle = fs->report.filtering_job.shuffle_bytes +
                        fs->report.verification_job.shuffle_bytes;
  EXPECT_LT(fs_shuffle, vsmart_shuffle);
}

TEST(BaselineCostShape, EmissionLimitAbortsVSmart) {
  Corpus corpus = RandomCorpus(300, 100, 1.2, 15, 908);
  BaselineConfig config = SmallConfig(0.8);
  config.exec.emission_limit = 1000;  // far below the quadratic pair count
  Result<BaselineOutput> out = RunVSmartJoin(corpus, config);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

TEST(BaselineCostShape, EmissionLimitAbortsMassJoin) {
  Corpus corpus = RandomCorpus(300, 100, 1.2, 15, 909);
  MassJoinConfig config;
  static_cast<BaselineConfig&>(config) = SmallConfig(0.8);
  config.exec.emission_limit = 2000;
  Result<BaselineOutput> out = RunMassJoin(corpus, config);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

TEST(BaselineCostShape, MassJoinLightEmitsLessThanMerge) {
  Corpus corpus = RandomCorpus(120, 150, 1.0, 12, 910);
  MassJoinConfig merge;
  static_cast<BaselineConfig&>(merge) = SmallConfig(0.8);
  merge.length_group = 1;
  MassJoinConfig light = merge;
  light.length_group = 8;
  Result<BaselineOutput> merge_out = RunMassJoin(corpus, merge);
  Result<BaselineOutput> light_out = RunMassJoin(corpus, light);
  ASSERT_TRUE(merge_out.ok());
  ASSERT_TRUE(light_out.ok());
  EXPECT_LT(light_out->report.jobs[1].map_output_records,
            merge_out->report.jobs[1].map_output_records);
}

}  // namespace
}  // namespace fsjoin
