// The four filtering lemmas and the per-segment prefix machinery. The key
// property: a filter may NEVER prune a pair whose true similarity reaches
// θ (soundness); each filter must also demonstrably prune something
// (effectiveness).

#include <gtest/gtest.h>

#include "core/filters.h"
#include "core/fragment_join.h"
#include "core/pivots.h"
#include "core/segments.h"
#include "sim/set_ops.h"
#include "test_util.h"
#include "util/random.h"

namespace fsjoin {
namespace {

// Builds random ordered records plus a random pivot split and checks every
// filter on every fragment-coresident segment pair against ground truth.
TEST(FiltersTest, FiltersNeverPruneSimilarPairs) {
  Rng rng(4242);
  const double thetas[] = {0.5, 0.7, 0.8, 0.9};
  const SimilarityFunction fns[] = {SimilarityFunction::kJaccard,
                                    SimilarityFunction::kDice,
                                    SimilarityFunction::kCosine};
  int pruned_checks = 0;
  for (int iter = 0; iter < 200; ++iter) {
    // Two random records over ranks < 60.
    std::vector<TokenRank> a, b;
    for (TokenRank r = 0; r < 60; ++r) {
      if (rng.NextBool(0.35)) a.push_back(r);
      if (rng.NextBool(0.35)) b.push_back(r);
    }
    if (a.empty() || b.empty()) continue;
    std::vector<TokenRank> pivots;
    for (TokenRank r = 1; r < 60; ++r) {
      if (rng.NextBool(0.08)) pivots.push_back(r);
    }
    OrderedRecord ra{0, a}, rb{1, b};
    SegmentSplit sa = SplitIntoSegments(ra, pivots);
    SegmentSplit sb = SplitIntoSegments(rb, pivots);
    const uint64_t true_overlap = SortedOverlap(a, b);

    for (SimilarityFunction fn : fns) {
      for (double theta : thetas) {
        const bool similar =
            PassesThreshold(fn, true_overlap, a.size(), b.size(), theta);
        const bool strl_prunes = StrLengthPrunes(
            fn, theta, static_cast<uint32_t>(a.size()),
            static_cast<uint32_t>(b.size()));
        if (similar) {
          EXPECT_FALSE(strl_prunes);
        }

        // Check the segment filters on every pair of co-fragment segments.
        for (size_t i = 0; i < sa.segments.size(); ++i) {
          for (size_t j = 0; j < sb.segments.size(); ++j) {
            if (sa.fragment_ids[i] != sb.fragment_ids[j]) continue;
            const SegmentRecord& x = sa.segments[i];
            const SegmentRecord& y = sb.segments[j];
            const uint64_t seg_overlap = SortedOverlap(x.tokens, y.tokens);
            const bool segl = SegmentLengthPrunes(fn, theta, x, y);
            const bool segi =
                SegmentIntersectionPrunes(fn, theta, x, y, seg_overlap);
            const bool segd =
                SegmentDifferencePrunes(fn, theta, x, y, seg_overlap);
            if (similar) {
              EXPECT_FALSE(segl) << "SegL pruned a similar pair";
              EXPECT_FALSE(segi) << "SegI pruned a similar pair";
              EXPECT_FALSE(segd) << "SegD pruned a similar pair";
            }
            if (segl || segi || segd) ++pruned_checks;
          }
        }
      }
    }
  }
  // The filters must actually fire on dissimilar data.
  EXPECT_GT(pruned_checks, 100);
}

TEST(FiltersTest, StrLengthMatchesLemma1) {
  // Jaccard, theta 0.8: |s| < 0.8|t| prunes.
  EXPECT_TRUE(StrLengthPrunes(SimilarityFunction::kJaccard, 0.8, 7, 10));
  EXPECT_FALSE(StrLengthPrunes(SimilarityFunction::kJaccard, 0.8, 8, 10));
  EXPECT_FALSE(StrLengthPrunes(SimilarityFunction::kJaccard, 0.8, 10, 10));
  // Symmetric in the arguments.
  EXPECT_TRUE(StrLengthPrunes(SimilarityFunction::kJaccard, 0.8, 10, 7));
}

TEST(FiltersTest, SegIStrongerThanSegL) {
  // With the actual overlap available, SegI prunes at least whenever SegL
  // does (SegI uses overlap <= min segment length).
  Rng rng(99);
  for (int iter = 0; iter < 500; ++iter) {
    SegmentRecord x, y;
    x.record_size = 10 + rng.NextBounded(30);
    y.record_size = 10 + rng.NextBounded(30);
    x.head = rng.NextBounded(5);
    y.head = rng.NextBounded(5);
    uint32_t xs = 1 + rng.NextBounded(x.record_size - x.head);
    uint32_t ys = 1 + rng.NextBounded(y.record_size - y.head);
    if (x.head + xs > x.record_size) xs = x.record_size - x.head;
    if (y.head + ys > y.record_size) ys = y.record_size - y.head;
    x.tokens.resize(xs);
    y.tokens.resize(ys);
    uint64_t overlap = rng.NextBounded(std::min(xs, ys) + 1);
    if (SegmentLengthPrunes(SimilarityFunction::kJaccard, 0.8, x, y)) {
      EXPECT_TRUE(SegmentIntersectionPrunes(SimilarityFunction::kJaccard, 0.8,
                                            x, y, overlap));
    }
  }
}

TEST(FiltersTest, PaperExample2SegLPrunes) {
  // Example 2: s = {A,B,D,E,G}, t = {B,D,E,F,K}, theta = 0.8, pivots {D,G}
  // (token ranks: A=0,B=1,D=3,E=4,F=5,G=6,K=10; pivots at ranks 3 and 6 ->
  // wait, pivot D means D starts segment 2 in the paper's example where
  // Seg1={A,B,D}. The paper treats pivots as segment *terminators*; with our
  // boundary semantics pivots {4, 7} give Seg1(s)={A,B,D}, Seg2(s)={E,G}.)
  OrderedRecord s{0, {0, 1, 3, 4, 6}};
  OrderedRecord t{1, {1, 3, 4, 5, 10}};
  std::vector<TokenRank> pivots = {4, 7};
  SegmentSplit ss = SplitIntoSegments(s, pivots);
  SegmentSplit st = SplitIntoSegments(t, pivots);
  ASSERT_EQ(ss.segments[0].tokens.size(), 3u);  // {A,B,D}
  ASSERT_EQ(st.segments[0].tokens.size(), 2u);  // {B,D}
  // Regardless of exact segment contents, the pair is dissimilar at 0.8 and
  // at least one segment filter must prune it in some fragment.
  bool any_pruned = false;
  for (size_t i = 0; i < ss.segments.size(); ++i) {
    for (size_t j = 0; j < st.segments.size(); ++j) {
      if (ss.fragment_ids[i] != st.fragment_ids[j]) continue;
      uint64_t ov =
          SortedOverlap(ss.segments[i].tokens, st.segments[j].tokens);
      if (SegmentLengthPrunes(SimilarityFunction::kJaccard, 0.8,
                              ss.segments[i], st.segments[j]) ||
          SegmentIntersectionPrunes(SimilarityFunction::kJaccard, 0.8,
                                    ss.segments[i], st.segments[j], ov) ||
          SegmentDifferencePrunes(SimilarityFunction::kJaccard, 0.8,
                                  ss.segments[i], st.segments[j], ov)) {
        any_pruned = true;
      }
    }
  }
  EXPECT_TRUE(any_pruned);
}

TEST(FiltersTest, SegmentPrefixLengthBounds) {
  SegmentRecord seg;
  seg.record_size = 20;
  seg.head = 5;
  seg.tokens = {1, 2, 3, 4, 5};  // tail = 10
  for (auto fn : {SimilarityFunction::kJaccard, SimilarityFunction::kDice,
                  SimilarityFunction::kCosine}) {
    for (double theta : {0.5, 0.8, 1.0}) {
      uint64_t o = SegmentMinLocalOverlap(fn, theta, seg);
      EXPECT_GE(o, 1u);
      EXPECT_LE(o, seg.tokens.size());
      uint64_t p = SegmentPrefixLength(fn, theta, seg);
      EXPECT_GE(p, 1u);
      EXPECT_LE(p, seg.tokens.size());
      EXPECT_EQ(p, seg.tokens.size() - o + 1);
    }
  }
  // theta=1 requires full overlap: local requirement = |seg| exactly,
  // prefix shrinks to 1.
  EXPECT_EQ(SegmentMinLocalOverlap(SimilarityFunction::kJaccard, 1.0, seg),
            5u);
  EXPECT_EQ(SegmentPrefixLength(SimilarityFunction::kJaccard, 1.0, seg), 1u);
}

// Property backing the Prefix Join exactness argument: for θ-similar pairs,
// the fragment overlap c_i always reaches SegmentMinLocalOverlap of BOTH
// segments.
TEST(FiltersTest, LocalOverlapBoundHoldsForSimilarPairs) {
  Rng rng(31337);
  int similar_seen = 0;
  for (int iter = 0; iter < 2000 && similar_seen < 200; ++iter) {
    std::vector<TokenRank> a, b;
    for (TokenRank r = 0; r < 40; ++r) {
      bool in_a = rng.NextBool(0.5);
      a.push_back(0);
      a.pop_back();
      if (in_a) a.push_back(r);
      // b is a noisy copy of a to make similar pairs common.
      if (in_a ? rng.NextBool(0.9) : rng.NextBool(0.05)) b.push_back(r);
    }
    if (a.empty() || b.empty()) continue;
    const double theta = 0.7;
    const SimilarityFunction fn = SimilarityFunction::kJaccard;
    uint64_t overlap = SortedOverlap(a, b);
    if (!PassesThreshold(fn, overlap, a.size(), b.size(), theta)) continue;
    ++similar_seen;

    std::vector<TokenRank> pivots;
    for (TokenRank r = 1; r < 40; ++r) {
      if (rng.NextBool(0.1)) pivots.push_back(r);
    }
    SegmentSplit sa = SplitIntoSegments(OrderedRecord{0, a}, pivots);
    SegmentSplit sb = SplitIntoSegments(OrderedRecord{1, b}, pivots);
    for (size_t i = 0; i < sa.segments.size(); ++i) {
      for (size_t j = 0; j < sb.segments.size(); ++j) {
        if (sa.fragment_ids[i] != sb.fragment_ids[j]) continue;
        uint64_t c = SortedOverlap(sa.segments[i].tokens,
                                   sb.segments[j].tokens);
        if (c == 0) continue;
        EXPECT_GE(c, SegmentMinLocalOverlap(fn, theta, sa.segments[i]));
        EXPECT_GE(c, SegmentMinLocalOverlap(fn, theta, sb.segments[j]));
      }
    }
  }
  EXPECT_GE(similar_seen, 50);
}

}  // namespace
}  // namespace fsjoin
