// Unit tests for the util layer: Status/Result, serde, RNG/Zipf, string
// helpers, hashing, table printing and the thread pool.

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>
#include <sstream>
#include <thread>

#include "util/hash.h"
#include "util/random.h"
#include "util/serde.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace fsjoin {
namespace {

// ---- Status / Result ----------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad theta");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad theta");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad theta");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 9; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

Status UseParsed(int x, int* out) {
  FSJOIN_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::OK();
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 21);

  Result<int> err = ParsePositive(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);

  int out = 0;
  EXPECT_TRUE(UseParsed(5, &out).ok());
  EXPECT_EQ(out, 10);
  EXPECT_FALSE(UseParsed(0, &out).ok());
}

// ---- Serde ----------------------------------------------------------------

TEST(SerdeTest, VarintRoundTrip) {
  std::string buf;
  const uint64_t values[] = {0,   1,    127,        128,
                             300, 1u << 20, (1ull << 40), UINT64_MAX};
  for (uint64_t v : values) PutVarint64(&buf, v);
  Decoder dec(buf);
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(dec.GetVarint64(&got).ok());
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(dec.done());
}

TEST(SerdeTest, FixedBigEndianIsOrderPreserving) {
  std::string a, b;
  PutFixed32BE(&a, 5);
  PutFixed32BE(&b, 1000);
  EXPECT_LT(a, b);  // bytewise comparison matches numeric order
  a.clear();
  b.clear();
  PutFixed64BE(&a, 1ull << 40);
  PutFixed64BE(&b, (1ull << 40) + 1);
  EXPECT_LT(a, b);
}

TEST(SerdeTest, FixedRoundTrip) {
  std::string buf;
  PutFixed32BE(&buf, 0xdeadbeef);
  PutFixed64BE(&buf, 0x0123456789abcdefULL);
  Decoder dec(buf);
  uint32_t x = 0;
  uint64_t y = 0;
  ASSERT_TRUE(dec.GetFixed32BE(&x).ok());
  ASSERT_TRUE(dec.GetFixed64BE(&y).ok());
  EXPECT_EQ(x, 0xdeadbeefu);
  EXPECT_EQ(y, 0x0123456789abcdefULL);
}

TEST(SerdeTest, LengthPrefixedAndVectorRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutUint32Vector(&buf, {3, 1, 4, 1, 5});
  PutLengthPrefixed(&buf, "");
  Decoder dec(buf);
  std::string_view s;
  ASSERT_TRUE(dec.GetLengthPrefixed(&s).ok());
  EXPECT_EQ(s, "hello");
  std::vector<uint32_t> v;
  ASSERT_TRUE(dec.GetUint32Vector(&v).ok());
  EXPECT_EQ(v, (std::vector<uint32_t>{3, 1, 4, 1, 5}));
  ASSERT_TRUE(dec.GetLengthPrefixed(&s).ok());
  EXPECT_EQ(s, "");
  EXPECT_TRUE(dec.done());
}

TEST(SerdeTest, TruncatedInputsReturnErrors) {
  {
    Decoder dec("");
    uint64_t v = 0;
    EXPECT_FALSE(dec.GetVarint64(&v).ok());
  }
  {
    std::string buf;
    PutFixed32BE(&buf, 7);
    Decoder dec(std::string_view(buf).substr(0, 2));
    uint32_t v = 0;
    EXPECT_FALSE(dec.GetFixed32BE(&v).ok());
  }
  {
    std::string buf;
    PutVarint64(&buf, 100);  // claims 100 bytes follow
    buf += "short";
    Decoder dec(buf);
    std::string_view s;
    EXPECT_FALSE(dec.GetLengthPrefixed(&s).ok());
  }
  {
    std::string buf;
    PutVarint64(&buf, 1000);  // claims 1000 elements
    Decoder dec(buf);
    std::vector<uint32_t> v;
    EXPECT_FALSE(dec.GetUint32Vector(&v).ok());
  }
  {
    // Varint overflow: 10 continuation bytes.
    std::string buf(10, static_cast<char>(0xff));
    Decoder dec(buf);
    uint64_t v = 0;
    EXPECT_FALSE(dec.GetVarint64(&v).ok());
  }
}

// ---- RNG / Zipf ---------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    int64_t r = rng.NextInRange(-5, 9);
    EXPECT_GE(r, -5);
    EXPECT_LE(r, 9);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(99);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
  }
}

TEST(ZipfTest, SkewZeroIsUniform) {
  Rng rng(5);
  ZipfSampler zipf(100, 0.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 1000, 350);
}

TEST(ZipfTest, FrequenciesFollowPowerLaw) {
  Rng rng(5);
  const double s = 1.0;
  ZipfSampler zipf(1000, s);
  std::vector<int> counts(1000, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  // Rank 0 should be about twice rank 1 and about 10x rank 9.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[1], 2.0, 0.5);
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[9], 10.0, 3.0);
}

TEST(ZipfTest, SingleItemDomain) {
  Rng rng(5);
  ZipfSampler zipf(1, 1.2);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

TEST(ShuffleTest, IsPermutation) {
  Rng rng(11);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  Shuffle(v, rng);
  std::set<int> seen(v.begin(), v.end());
  EXPECT_EQ(seen.size(), 50u);
}

// ---- String helpers -------------------------------------------------------

TEST(StringUtilTest, SplitString) {
  auto parts = SplitString("a b,,c", " ,");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(SplitString("", " ").empty());
  EXPECT_TRUE(SplitString("   ", " ").empty());
}

TEST(StringUtilTest, CaseAndTrim) {
  EXPECT_EQ(ToLowerAscii("HeLLo 123"), "hello 123");
  EXPECT_EQ(TrimWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(TrimWhitespace("   "), "");
}

TEST(StringUtilTest, HumanBytesAndThousands) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(WithThousandsSep(1234567), "1,234,567");
  EXPECT_EQ(WithThousandsSep(12), "12");
  EXPECT_EQ(WithThousandsSep(0), "0");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
}

// ---- Hash -----------------------------------------------------------------

TEST(HashTest, StableAndSpread) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  // Mix64 must separate adjacent integers well.
  std::set<uint64_t> buckets;
  for (uint64_t i = 0; i < 1000; ++i) buckets.insert(Mix64(i) % 64);
  EXPECT_EQ(buckets.size(), 64u);
}

// ---- TablePrinter -------------------------------------------------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"col", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "22"});
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("col"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header separator line exists.
  EXPECT_NE(out.find("---"), std::string::npos);
}

// ---- ThreadPool -----------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, InlineModeWorks) {
  ThreadPool pool(0);
  int counter = 0;
  pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter, 1);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(64, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ChunkedParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(101);
  pool.ParallelFor(101, 7, [&hits](size_t begin, size_t end) {
    EXPECT_LT(begin, end);
    EXPECT_LE(end - begin, 7u);
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ChunkedParallelForZeroThreadsRunsInlineInOrder) {
  // num_threads == 0 is the deterministic-debug mode: every chunk runs on
  // the calling thread in ascending order, so side effects are ordered.
  ThreadPool pool(0);
  std::vector<size_t> begins;
  pool.ParallelFor(20, 6, [&begins](size_t begin, size_t end) {
    begins.push_back(begin);
    EXPECT_LE(end, 20u);
  });
  EXPECT_EQ(begins, (std::vector<size_t>{0, 6, 12, 18}));
}

TEST(ThreadPoolTest, ChunkedParallelForEdgeCases) {
  ThreadPool pool(2);
  // n == 0: fn never runs.
  pool.ParallelFor(0, 4, [](size_t, size_t) { FAIL(); });
  // chunk 0 is treated as 1.
  std::vector<std::atomic<int>> hits(5);
  pool.ParallelFor(5, 0, [&hits](size_t begin, size_t end) {
    EXPECT_EQ(end, begin + 1);
    hits[begin].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  // chunk larger than n: one inline chunk covering everything.
  std::atomic<int> calls{0};
  pool.ParallelFor(3, 100, [&calls](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 3u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, ChunkedParallelForConcurrentCallsShareThePool) {
  // Two threads issue ParallelFor against the same pool at once; both must
  // complete with full coverage (per-call completion state, no cross-talk).
  ThreadPool pool(4);
  std::vector<std::atomic<int>> a(200), b(200);
  std::thread other([&pool, &b] {
    pool.ParallelFor(200, 9,
                     [&b](size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) b[i].fetch_add(1);
                     });
  });
  pool.ParallelFor(200, 9, [&a](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) a[i].fetch_add(1);
  });
  other.join();
  for (auto& h : a) EXPECT_EQ(h.load(), 1);
  for (auto& h : b) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace fsjoin
