// Tests of the similarity math (thresholds, overlap bounds, prefix
// lengths), the sorted-set kernels and the global ordering.

#include <gtest/gtest.h>

#include <cmath>

#include "sim/global_order.h"
#include "sim/set_ops.h"
#include "sim/similarity.h"
#include "test_util.h"
#include "util/random.h"

namespace fsjoin {
namespace {

TEST(SimilarityTest, KnownValues) {
  // |s|=4, |t|=6, c=3: jaccard 3/7, dice 6/10, cosine 3/sqrt(24).
  EXPECT_NEAR(ComputeSimilarity(SimilarityFunction::kJaccard, 3, 4, 6),
              3.0 / 7.0, 1e-12);
  EXPECT_NEAR(ComputeSimilarity(SimilarityFunction::kDice, 3, 4, 6), 0.6,
              1e-12);
  EXPECT_NEAR(ComputeSimilarity(SimilarityFunction::kCosine, 3, 4, 6),
              3.0 / std::sqrt(24.0), 1e-12);
  EXPECT_EQ(ComputeSimilarity(SimilarityFunction::kJaccard, 0, 0, 5), 0.0);
}

TEST(SimilarityTest, IdenticalSetsScoreOne) {
  for (auto fn : {SimilarityFunction::kJaccard, SimilarityFunction::kDice,
                  SimilarityFunction::kCosine}) {
    EXPECT_NEAR(ComputeSimilarity(fn, 7, 7, 7), 1.0, 1e-12);
    EXPECT_TRUE(PassesThreshold(fn, 7, 7, 7, 1.0));
  }
}

TEST(SimilarityTest, NamesRoundTrip) {
  for (auto fn : {SimilarityFunction::kJaccard, SimilarityFunction::kDice,
                  SimilarityFunction::kCosine}) {
    Result<SimilarityFunction> parsed =
        SimilarityFunctionFromName(SimilarityFunctionName(fn));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, fn);
  }
  EXPECT_FALSE(SimilarityFunctionFromName("euclid").ok());
}

// Property: MinOverlap is the exact integer threshold — c >= MinOverlap
// iff the pair passes.
TEST(SimilarityTest, MinOverlapIsTight) {
  const double thetas[] = {0.5, 0.6, 0.75, 0.8, 0.9, 0.95, 1.0};
  for (auto fn : {SimilarityFunction::kJaccard, SimilarityFunction::kDice,
                  SimilarityFunction::kCosine}) {
    for (double theta : thetas) {
      for (uint64_t a = 1; a <= 30; ++a) {
        for (uint64_t b = a; b <= 30; ++b) {
          uint64_t alpha = MinOverlap(fn, theta, a, b);
          for (uint64_t c = 0; c <= a; ++c) {
            EXPECT_EQ(c >= alpha, PassesThreshold(fn, c, a, b, theta))
                << SimilarityFunctionName(fn) << " theta=" << theta
                << " a=" << a << " b=" << b << " c=" << c
                << " alpha=" << alpha;
          }
        }
      }
    }
  }
}

// Property: MinOverlapSelf lower-bounds MinOverlap over every feasible
// partner size.
TEST(SimilarityTest, MinOverlapSelfIsValidBound) {
  for (auto fn : {SimilarityFunction::kJaccard, SimilarityFunction::kDice,
                  SimilarityFunction::kCosine}) {
    for (double theta : {0.5, 0.7, 0.8, 0.9}) {
      for (uint64_t a = 1; a <= 40; ++a) {
        uint64_t self = MinOverlapSelf(fn, theta, a);
        uint64_t lo = PartnerSizeLowerBound(fn, theta, a);
        uint64_t hi = PartnerSizeUpperBound(fn, theta, a);
        EXPECT_LE(lo, hi);
        for (uint64_t b = std::max<uint64_t>(lo, 1); b <= hi; ++b) {
          EXPECT_LE(self, MinOverlap(fn, theta, a, b))
              << SimilarityFunctionName(fn) << " theta=" << theta
              << " a=" << a << " b=" << b;
        }
      }
    }
  }
}

// Property: partner sizes outside [lower, upper] can never pass.
TEST(SimilarityTest, PartnerBoundsAreSound) {
  for (auto fn : {SimilarityFunction::kJaccard, SimilarityFunction::kDice,
                  SimilarityFunction::kCosine}) {
    for (double theta : {0.6, 0.8, 0.9}) {
      for (uint64_t a = 1; a <= 40; ++a) {
        uint64_t lo = PartnerSizeLowerBound(fn, theta, a);
        if (lo > 0) {
          // best case c = min(a, lo-1) with partner size lo-1.
          uint64_t b = lo - 1;
          if (b >= 1) {
            uint64_t c = std::min(a, b);
            EXPECT_FALSE(PassesThreshold(fn, c, a, b, theta));
          }
        }
        uint64_t hi = PartnerSizeUpperBound(fn, theta, a);
        uint64_t b = hi + 1;
        uint64_t c = std::min(a, b);
        EXPECT_FALSE(PassesThreshold(fn, c, a, b, theta));
      }
    }
  }
}

TEST(SimilarityTest, PrefixLengthEdges) {
  // theta = 1: prefix must still be 1 token (required == size).
  EXPECT_EQ(PrefixLength(SimilarityFunction::kJaccard, 1.0, 10), 1u);
  // Low theta: longer prefix, never exceeding size.
  for (uint64_t a = 1; a <= 50; ++a) {
    uint64_t p = PrefixLength(SimilarityFunction::kJaccard, 0.5, a);
    EXPECT_GE(p, 1u);
    EXPECT_LE(p, a);
  }
}

// ---- Set kernels ---------------------------------------------------------

TEST(SetOpsTest, OverlapBasics) {
  std::vector<uint32_t> a = {1, 3, 5, 7};
  std::vector<uint32_t> b = {2, 3, 5, 8};
  EXPECT_EQ(SortedOverlap(a, b), 2u);
  EXPECT_EQ(SortedOverlap(a, {}), 0u);
  EXPECT_EQ(SortedOverlap(a, a), 4u);
  EXPECT_TRUE(SortedIntersects(a, b));
  EXPECT_FALSE(SortedIntersects({1, 2}, {3, 4}));
  EXPECT_EQ(SortedSymmetricDifference(a, b), 4u);
  EXPECT_EQ(SortedSymmetricDifference(a, a), 0u);
}

TEST(SetOpsTest, SuffixOverlap) {
  std::vector<uint32_t> a = {1, 3, 5, 7};
  std::vector<uint32_t> b = {3, 5, 9};
  EXPECT_EQ(SortedSuffixOverlap(a, 0, b, 0), 2u);
  EXPECT_EQ(SortedSuffixOverlap(a, 2, b, 1), 1u);  // {5,7} vs {5,9}
  EXPECT_EQ(SortedSuffixOverlap(a, 4, b, 0), 0u);
}

TEST(SetOpsTest, GallopingOverlapMatchesLinearMerge) {
  Rng rng(88);
  for (int iter = 0; iter < 200; ++iter) {
    // Skewed sizes: a short probe set against a much longer one, so the
    // galloping path (and SortedOverlap's dispatch into it) is exercised.
    std::vector<uint32_t> small, large;
    for (uint32_t v = 0; v < 2000; ++v) {
      if (rng.NextBool(0.005)) small.push_back(v);
      if (rng.NextBool(0.6)) large.push_back(v);
    }
    const uint64_t expected = LinearOverlap(small, large);
    EXPECT_EQ(GallopingOverlap(small, large), expected);
    EXPECT_EQ(GallopingOverlap(large, small), expected);  // order-insensitive
    EXPECT_EQ(SortedOverlap(small, large), expected);
  }
}

TEST(SetOpsTest, GallopingOverlapEdgeCases) {
  const std::vector<uint32_t> empty;
  const std::vector<uint32_t> one = {5};
  std::vector<uint32_t> big(1000);
  for (uint32_t i = 0; i < 1000; ++i) big[i] = 2 * i;
  EXPECT_EQ(GallopingOverlap(empty, big), 0u);
  EXPECT_EQ(GallopingOverlap(one, big), 0u);  // 5 is odd: no match
  EXPECT_EQ(GallopingOverlap({10}, big), 1u);
  EXPECT_EQ(GallopingOverlap({1998}, big), 1u);  // last element
  EXPECT_EQ(GallopingOverlap({5000}, big), 0u);  // past the end
  EXPECT_EQ(GallopingOverlap(big, big), 1000u);
  // Needles beyond the largest element stop the walk early, not crash it.
  EXPECT_EQ(GallopingOverlap({0, 1998, 9999}, big), 2u);
}

TEST(SetOpsTest, OverlapAtLeastAgreesWhenReachable) {
  Rng rng(77);
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<uint32_t> a, b;
    for (int i = 0; i < 30; ++i) {
      if (rng.NextBool(0.4)) a.push_back(i);
      if (rng.NextBool(0.4)) b.push_back(i);
    }
    uint64_t exact = SortedOverlap(a, b);
    for (uint64_t required = 0; required <= 10; ++required) {
      uint64_t got = SortedOverlapAtLeast(a, b, required);
      if (exact >= required) {
        EXPECT_EQ(got, exact);
      } else {
        EXPECT_EQ(got, 0u);
      }
    }
  }
}

TEST(SetOpsTest, BitmapShiftForSpanCoversSpanIn64Buckets) {
  EXPECT_EQ(BitmapShiftForSpan(1), 0u);
  EXPECT_EQ(BitmapShiftForSpan(64), 0u);
  EXPECT_EQ(BitmapShiftForSpan(65), 1u);
  EXPECT_EQ(BitmapShiftForSpan(128), 1u);
  EXPECT_EQ(BitmapShiftForSpan(129), 2u);
  // Any span must fit: (span - 1) >> shift < 64.
  for (uint64_t span : {uint64_t{1}, uint64_t{63}, uint64_t{1000},
                        uint64_t{1} << 32, uint64_t{1} << 40}) {
    uint32_t shift = BitmapShiftForSpan(span);
    EXPECT_LT((span - 1) >> shift, 64u) << "span=" << span;
  }
}

TEST(SetOpsTest, TokenBitmapMarksEveryTokenBucket) {
  std::vector<uint32_t> tokens = {10, 11, 40, 73};
  uint32_t shift = BitmapShiftForSpan(73 - 10 + 1);  // span 64 -> shift 0
  ASSERT_EQ(shift, 0u);
  uint64_t bm = TokenBitmap(tokens.data(), tokens.size(), 10, shift);
  EXPECT_EQ(bm, (uint64_t{1} << 0) | (uint64_t{1} << 1) | (uint64_t{1} << 30) |
                    (uint64_t{1} << 63));
}

TEST(SetOpsTest, PackedOverlapIsExact) {
  // The bitmap gate must be sound: PackedOverlap always returns the true
  // overlap, never a false zero, under a shared (base, shift) mapping.
  Rng rng(101);
  for (int iter = 0; iter < 500; ++iter) {
    const uint32_t base = 5000;
    const uint64_t span = 1 + rng.NextBounded(4000);
    const uint32_t shift = BitmapShiftForSpan(span);
    std::vector<uint32_t> a, b;
    for (uint64_t v = 0; v < span; ++v) {
      if (rng.NextBool(0.01)) a.push_back(base + static_cast<uint32_t>(v));
      if (rng.NextBool(0.01)) b.push_back(base + static_cast<uint32_t>(v));
    }
    const uint64_t bm_a = TokenBitmap(a.data(), a.size(), base, shift);
    const uint64_t bm_b = TokenBitmap(b.data(), b.size(), base, shift);
    const uint64_t expected = LinearOverlap(a, b);
    EXPECT_EQ(
        PackedOverlap(a.data(), a.size(), bm_a, b.data(), b.size(), bm_b),
        expected);
    if ((bm_a & bm_b) == 0) {
      EXPECT_EQ(expected, 0u);  // disjoint bitmaps imply empty overlap
    }
  }
}

// ---- Global order --------------------------------------------------------

TEST(GlobalOrderTest, SortsByAscendingFrequency) {
  // freq: t0=5, t1=1, t2=3 -> order t1, t2, t0.
  GlobalOrder order = GlobalOrder::FromFrequencies({5, 1, 3});
  EXPECT_EQ(order.RankOf(1), 0u);
  EXPECT_EQ(order.RankOf(2), 1u);
  EXPECT_EQ(order.RankOf(0), 2u);
  EXPECT_EQ(order.TokenAt(0), 1u);
  EXPECT_EQ(order.FrequencyAt(0), 1u);
  EXPECT_EQ(order.FrequencyAt(2), 5u);
  EXPECT_EQ(order.TotalFrequency(), 9u);
}

TEST(GlobalOrderTest, TiesBrokenByTokenId) {
  GlobalOrder order = GlobalOrder::FromFrequencies({2, 2, 2});
  EXPECT_EQ(order.RankOf(0), 0u);
  EXPECT_EQ(order.RankOf(1), 1u);
  EXPECT_EQ(order.RankOf(2), 2u);
}

TEST(GlobalOrderTest, RankIsABijection) {
  Corpus corpus = fsjoin::testing::RandomCorpus(100, 200, 1.0, 10, 55);
  GlobalOrder order = GlobalOrder::FromCorpus(corpus);
  std::vector<bool> seen(order.NumTokens(), false);
  for (TokenId t = 0; t < order.NumTokens(); ++t) {
    TokenRank r = order.RankOf(t);
    ASSERT_LT(r, order.NumTokens());
    EXPECT_FALSE(seen[r]);
    seen[r] = true;
    EXPECT_EQ(order.TokenAt(r), t);
  }
  // Frequencies ascend along ranks.
  for (TokenRank r = 1; r < order.NumTokens(); ++r) {
    EXPECT_LE(order.FrequencyAt(r - 1), order.FrequencyAt(r));
  }
}

TEST(GlobalOrderTest, ApplyGlobalOrderSortsRecords) {
  Corpus corpus = fsjoin::testing::RandomCorpus(50, 80, 1.0, 8, 56);
  GlobalOrder order = GlobalOrder::FromCorpus(corpus);
  std::vector<OrderedRecord> ordered = ApplyGlobalOrder(corpus, order);
  ASSERT_EQ(ordered.size(), corpus.NumRecords());
  for (size_t i = 0; i < ordered.size(); ++i) {
    EXPECT_EQ(ordered[i].id, corpus.records[i].id);
    EXPECT_EQ(ordered[i].tokens.size(), corpus.records[i].tokens.size());
    for (size_t j = 1; j < ordered[i].tokens.size(); ++j) {
      EXPECT_LT(ordered[i].tokens[j - 1], ordered[i].tokens[j]);
    }
  }
}

}  // namespace
}  // namespace fsjoin
