// Socket-free tests of the cluster runtime's serial layers: endpoint
// parsing and list validation, the CRC32C frame codec under the full
// corruption battery (every truncated prefix, every bit flip, trailing
// bytes — mirroring the PR 7 TaskSpec codec and PR 4 run-file tests),
// the RPC message payload codecs, the TaskOutput wire codec, the
// TaskSpec shuffle extensions, cluster knob validation in
// exec::ExecConfig / mr::EngineOptions, and the host-unique spill-dir
// naming.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "exec/exec_config.h"
#include "mr/engine.h"
#include "mr/task.h"
#include "net/frame.h"
#include "store/temp_dir.h"
#include "util/endpoint.h"
#include "util/status.h"

namespace fsjoin {
namespace {

// ---- Endpoint parsing -------------------------------------------------

TEST(EndpointTest, ParsesHostPort) {
  auto ep = ParseEndpoint("worker3:9000");
  ASSERT_TRUE(ep.ok()) << ep.status().ToString();
  EXPECT_EQ(ep->host, "worker3");
  EXPECT_EQ(ep->port, 9000);
  EXPECT_EQ(ep->ToString(), "worker3:9000");
}

TEST(EndpointTest, ParsesBracketedIpv6) {
  auto ep = ParseEndpoint("[::1]:8080");
  ASSERT_TRUE(ep.ok()) << ep.status().ToString();
  EXPECT_EQ(ep->host, "::1");
  EXPECT_EQ(ep->port, 8080);
}

TEST(EndpointTest, RejectsMalformedEndpoints) {
  for (const char* bad :
       {"", ":9000", "host:", "host", "host:0", "host:65536", "host:70000",
        "host:12ab", "host:-1", "[::1]", "[::1]8080", "a:b:c"}) {
    auto ep = ParseEndpoint(bad);
    ASSERT_FALSE(ep.ok()) << "'" << bad << "' was accepted";
    EXPECT_EQ(ep.status().code(), StatusCode::kInvalidArgument);
    // Actionable: the message names the offending input and the shape.
    EXPECT_NE(ep.status().message().find("'" + std::string(bad) + "'"),
              std::string::npos)
        << ep.status().ToString();
    EXPECT_NE(ep.status().message().find("host:port"), std::string::npos)
        << ep.status().ToString();
  }
}

TEST(EndpointTest, ParsesLists) {
  auto list = ParseEndpointList("a:1,b:2,c:3");
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  ASSERT_EQ(list->size(), 3u);
  EXPECT_EQ((*list)[0].ToString(), "a:1");
  EXPECT_EQ((*list)[2].ToString(), "c:3");
}

TEST(EndpointTest, RejectsBadLists) {
  for (const char* bad : {"", ",", "a:1,,b:2", "a:1,", "a:1,a:1",
                          "a:1,b:0", "a:1,:2"}) {
    auto list = ParseEndpointList(bad);
    EXPECT_FALSE(list.ok()) << "'" << bad << "' was accepted";
  }
  // Same host, different port is NOT a duplicate (co-located workers).
  EXPECT_TRUE(ParseEndpointList("a:1,a:2").ok());
}

// ---- Frame codec ------------------------------------------------------

std::string EncodedFrame(net::MsgType type, const std::string& payload) {
  std::string bytes;
  net::EncodeFrame(type, payload, &bytes);
  return bytes;
}

TEST(FrameTest, RoundTripsEveryMessageType) {
  using net::MsgType;
  for (MsgType type :
       {MsgType::kHello, MsgType::kHeartbeat, MsgType::kDispatchTask,
        MsgType::kTaskData, MsgType::kTaskResult, MsgType::kShuffleFetch,
        MsgType::kShuffleRelease}) {
    const std::string payload = "payload-" + std::string(net::MsgTypeName(type));
    const std::string bytes = EncodedFrame(type, payload);
    ASSERT_EQ(bytes.size(), net::kFrameHeaderBytes + payload.size());
    net::Frame frame;
    size_t consumed = 0;
    const Status st = net::DecodeFrame(bytes, &frame, &consumed);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.payload, payload);
    EXPECT_EQ(consumed, bytes.size());
  }
}

TEST(FrameTest, EmptyPayloadRoundTrips) {
  const std::string bytes = EncodedFrame(net::MsgType::kHeartbeat, "");
  net::Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(net::DecodeFrame(bytes, &frame, &consumed).ok());
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FrameTest, EveryTruncatedPrefixIsIoError) {
  const std::string good =
      EncodedFrame(net::MsgType::kTaskResult, "some payload bytes here");
  for (size_t keep = 0; keep < good.size(); ++keep) {
    net::Frame frame;
    size_t consumed = 0;
    const Status st =
        net::DecodeFrame(std::string_view(good).substr(0, keep), &frame,
                         &consumed);
    ASSERT_FALSE(st.ok()) << "prefix of " << keep << " bytes was accepted";
    // A short read is "need more bytes" (IoError), never Corruption: the
    // socket reader must keep waiting, not kill the connection.
    EXPECT_EQ(st.code(), StatusCode::kIoError)
        << "prefix " << keep << ": " << st.ToString();
  }
}

TEST(FrameTest, EveryBitFlipIsDetected) {
  const std::string good =
      EncodedFrame(net::MsgType::kTaskResult, "bit flip battery payload");
  for (size_t i = 0; i < good.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = good;
      bad[i] = static_cast<char>(bad[i] ^ (1u << bit));
      net::Frame frame;
      size_t consumed = 0;
      const Status st = net::DecodeFrame(bad, &frame, &consumed);
      ASSERT_FALSE(st.ok())
          << "flip of bit " << bit << " at offset " << i << " went unnoticed";
      // A header flip that grows `len` reads as truncation (IoError) until
      // the header CRC is checked; everything else is Corruption. Either
      // way the frame is rejected.
      EXPECT_TRUE(st.code() == StatusCode::kCorruption ||
                  st.code() == StatusCode::kIoError)
          << st.ToString();
    }
  }
}

TEST(FrameTest, HeaderCrcGuardsTheLengthField) {
  // Flip a length byte AND append enough bytes that the bogus length is
  // satisfiable: the header CRC must still reject the frame — a corrupted
  // length must never send the reader off into the stream.
  std::string good = EncodedFrame(net::MsgType::kTaskData, "abc");
  std::string bad = good;
  bad[11] = static_cast<char>(bad[11] ^ 0x04);  // len is bytes 8..11 (BE)
  bad.append(16, 'x');
  net::Frame frame;
  size_t consumed = 0;
  const Status st = net::DecodeFrame(bad, &frame, &consumed);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
}

TEST(FrameTest, BadMagicAndBadTypeAreCorruption) {
  std::string bad_magic = EncodedFrame(net::MsgType::kHello, "x");
  bad_magic[0] = 'X';
  net::Frame frame;
  size_t consumed = 0;
  Status st = net::DecodeFrame(bad_magic, &frame, &consumed);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_NE(st.message().find("magic"), std::string::npos) << st.ToString();

  // A type outside the MsgType range with a *valid* CRC (re-encoded, not
  // flipped) is still rejected.
  std::string evil;
  net::EncodeFrame(static_cast<net::MsgType>(999), "x", &evil);
  st = net::DecodeFrame(evil, &frame, &consumed);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
}

TEST(FrameTest, TrailingBytesAreLeftForTheNextFrame) {
  // DecodeFrame consumes exactly one frame; bytes after it belong to the
  // next message, which is how a pipelined socket buffer works.
  const std::string first = EncodedFrame(net::MsgType::kHeartbeat, "");
  const std::string second = EncodedFrame(net::MsgType::kShutdown, "bye");
  net::Frame frame;
  size_t consumed = 0;
  ASSERT_TRUE(net::DecodeFrame(first + second, &frame, &consumed).ok());
  EXPECT_EQ(frame.type, net::MsgType::kHeartbeat);
  ASSERT_EQ(consumed, first.size());
  ASSERT_TRUE(
      net::DecodeFrame(std::string_view(first + second).substr(consumed),
                       &frame, &consumed)
          .ok());
  EXPECT_EQ(frame.type, net::MsgType::kShutdown);
  EXPECT_EQ(frame.payload, "bye");
}

// ---- Message payload codecs ------------------------------------------

TEST(MessageCodecTest, HelloRoundTripsAndRejectsTrailingBytes) {
  net::HelloMsg msg;
  msg.pid = 12345;
  msg.shuffle_port = 40123;
  std::string bytes;
  msg.EncodeTo(&bytes);
  auto decoded = net::HelloMsg::Decode(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->protocol_version, net::kProtocolVersion);
  EXPECT_EQ(decoded->pid, 12345u);
  EXPECT_EQ(decoded->shuffle_port, 40123u);
  EXPECT_FALSE(net::HelloMsg::Decode(bytes + "x").ok());
  EXPECT_FALSE(net::HelloMsg::Decode("").ok());
}

TEST(MessageCodecTest, StreamTrailerRoundTripsAndRejectsTrailingBytes) {
  net::StreamTrailer trailer;
  trailer.records = 1u << 20;
  trailer.payload_bytes = 123456789;
  trailer.chunks = 7;
  std::string bytes;
  trailer.EncodeTo(&bytes);
  auto decoded = net::StreamTrailer::Decode(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->records, trailer.records);
  EXPECT_EQ(decoded->payload_bytes, trailer.payload_bytes);
  EXPECT_EQ(decoded->chunks, trailer.chunks);
  EXPECT_FALSE(net::StreamTrailer::Decode(bytes + "y").ok());
}

TEST(MessageCodecTest, TaskErrorCarriesStatusAndLostEndpoint) {
  net::TaskErrorMsg msg;
  msg.error = Status::Internal("worker exploded: details");
  msg.lost_endpoint = "10.0.0.3:41200";
  std::string bytes;
  msg.EncodeTo(&bytes);
  auto decoded = net::TaskErrorMsg::Decode(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->error.code(), StatusCode::kInternal);
  EXPECT_EQ(decoded->error.message(), "worker exploded: details");
  EXPECT_EQ(decoded->lost_endpoint, "10.0.0.3:41200");
  EXPECT_FALSE(net::TaskErrorMsg::Decode(bytes + "z").ok());
}

TEST(MessageCodecTest, ShuffleFetchRoundTrips) {
  net::ShuffleFetchMsg msg;
  msg.job = "filtering";
  msg.map_task = 6;
  msg.partition = 2;
  std::string bytes;
  msg.EncodeTo(&bytes);
  auto decoded = net::ShuffleFetchMsg::Decode(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->job, "filtering");
  EXPECT_EQ(decoded->map_task, 6u);
  EXPECT_EQ(decoded->partition, 2u);
  EXPECT_FALSE(net::ShuffleFetchMsg::Decode(bytes + "w").ok());
}

// ---- TaskSpec shuffle extensions -------------------------------------

mr::TaskSpec ShuffleSpec() {
  mr::TaskSpec spec;
  spec.job_name = "ordering";
  spec.kind = mr::TaskKind::kReduce;
  spec.task_index = 2;
  spec.num_partitions = 4;
  spec.factory = "core.ordering";
  spec.attempt = 1;
  spec.retain_shuffle = false;
  spec.shuffle_sources = {{"ordering", 0, "127.0.0.1:41200"},
                          {"ordering", 1, "127.0.0.1:41201"},
                          {"ordering", 2, ""}};
  return spec;
}

TEST(TaskSpecWireTest, ShuffleFieldsRoundTrip) {
  const mr::TaskSpec spec = ShuffleSpec();
  std::string bytes;
  spec.EncodeTo(&bytes);
  auto decoded = mr::TaskSpec::Decode(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->retain_shuffle, false);
  ASSERT_EQ(decoded->shuffle_sources.size(), 3u);
  EXPECT_EQ(decoded->shuffle_sources[1].job, "ordering");
  EXPECT_EQ(decoded->shuffle_sources[1].map_task, 1u);
  EXPECT_EQ(decoded->shuffle_sources[1].endpoint, "127.0.0.1:41201");
  EXPECT_EQ(decoded->shuffle_sources[2].endpoint, "");

  mr::TaskSpec retained;
  retained.job_name = "ordering";
  retained.retain_shuffle = true;
  std::string rbytes;
  retained.EncodeTo(&rbytes);
  auto rdec = mr::TaskSpec::Decode(rbytes);
  ASSERT_TRUE(rdec.ok());
  EXPECT_TRUE(rdec->retain_shuffle);
}

TEST(TaskSpecWireTest, EveryTruncationIsRejected) {
  std::string bytes;
  ShuffleSpec().EncodeTo(&bytes);
  for (size_t keep = 0; keep < bytes.size(); ++keep) {
    auto decoded =
        mr::TaskSpec::Decode(std::string_view(bytes).substr(0, keep));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << keep << " bytes accepted";
  }
  EXPECT_FALSE(mr::TaskSpec::Decode(bytes + "!").ok());
}

// ---- TaskOutput wire codec -------------------------------------------

TEST(TaskOutputWireTest, ReduceResultRoundTrips) {
  mr::TaskOutput out;
  for (int i = 0; i < 50; ++i) {
    out.records.push_back({"key" + std::to_string(i / 5),
                           "value-" + std::to_string(i)});
  }
  out.metrics.input_records = 50;
  out.metrics.input_bytes = 4321;
  out.metrics.output_records = 50;
  out.metrics.max_group_bytes = 99;
  out.combine_input_records = 17;
  out.side_state = std::string("side\0bytes", 10);
  std::string bytes;
  mr::EncodeTaskOutputWire(out, &bytes);

  mr::TaskOutput read;
  const Status st = mr::DecodeTaskOutputWire(bytes, &read);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(read.records.size(), out.records.size());
  for (size_t i = 0; i < read.records.size(); ++i) {
    EXPECT_EQ(read.records[i].key, out.records[i].key);
    EXPECT_EQ(read.records[i].value, out.records[i].value);
  }
  EXPECT_EQ(read.metrics.input_records, 50u);
  EXPECT_EQ(read.metrics.input_bytes, 4321u);
  EXPECT_EQ(read.metrics.max_group_bytes, 99u);
  EXPECT_EQ(read.combine_input_records, 17u);
  EXPECT_EQ(read.side_state, out.side_state);
}

TEST(TaskOutputWireTest, RetainedMapResultCarriesStatsNotData) {
  mr::TaskOutput out;
  out.partition_stats = {{10, 100}, {0, 0}, {7, 77}};
  out.shuffle_endpoint = "127.0.0.1:40123";
  out.metrics.input_records = 17;
  std::string bytes;
  mr::EncodeTaskOutputWire(out, &bytes);
  mr::TaskOutput read;
  ASSERT_TRUE(mr::DecodeTaskOutputWire(bytes, &read).ok());
  ASSERT_EQ(read.partition_stats.size(), 3u);
  EXPECT_EQ(read.partition_stats[0].records, 10u);
  EXPECT_EQ(read.partition_stats[0].bytes, 100u);
  EXPECT_EQ(read.partition_stats[2].records, 7u);
  EXPECT_EQ(read.shuffle_endpoint, "127.0.0.1:40123");
  EXPECT_TRUE(read.records.empty());
}

TEST(TaskOutputWireTest, TruncationAndTrailingBytesAreRejected) {
  mr::TaskOutput out;
  out.records.push_back({"k", "v"});
  out.partition_stats = {{1, 2}};
  std::string bytes;
  mr::EncodeTaskOutputWire(out, &bytes);
  for (size_t keep = 0; keep < bytes.size(); ++keep) {
    mr::TaskOutput read;
    EXPECT_FALSE(
        mr::DecodeTaskOutputWire(std::string_view(bytes).substr(0, keep),
                                 &read)
            .ok())
        << "prefix of " << keep << " bytes accepted";
  }
  mr::TaskOutput read;
  const Status st = mr::DecodeTaskOutputWire(bytes + "x", &read);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
}

// ---- Cluster knob validation -----------------------------------------

TEST(ClusterConfigTest, ClusterRunnerNeedsExactlyOneTopology) {
  exec::ExecConfig config;
  config.runner = mr::RunnerKind::kCluster;
  Status st = config.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("--workers"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("--spawn-local-workers"), std::string::npos)
      << st.ToString();

  config.workers = "a:1,b:2";
  config.spawn_local_workers = 2;
  st = config.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("mutually exclusive"), std::string::npos)
      << st.ToString();

  config.spawn_local_workers = 0;
  EXPECT_TRUE(config.Validate().ok());
  config.workers.clear();
  config.spawn_local_workers = 4;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ClusterConfigTest, MalformedWorkerListsAreRejected) {
  exec::ExecConfig config;
  config.runner = mr::RunnerKind::kCluster;
  for (const char* bad : {":9000", "host:0", "host:65536", "a:1,a:1",
                          "a:1,,b:2", "nohost"}) {
    config.workers = bad;
    const Status st = config.Validate();
    EXPECT_FALSE(st.ok()) << "'" << bad << "' was accepted";
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  }
}

TEST(ClusterConfigTest, ClusterKnobsWithoutClusterRunnerAreRejected) {
  exec::ExecConfig config;
  config.workers = "a:1";
  Status st = config.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("requires --runner cluster"), std::string::npos)
      << st.ToString();

  config.workers.clear();
  config.spawn_local_workers = 2;
  st = config.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("requires --runner cluster"), std::string::npos);
}

TEST(ClusterConfigTest, HeartbeatFloorIsEnforced) {
  exec::ExecConfig config;
  config.runner = mr::RunnerKind::kCluster;
  config.spawn_local_workers = 2;
  config.heartbeat_ms = 10;
  const Status st = config.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("heartbeat_ms"), std::string::npos)
      << st.ToString();
}

TEST(ClusterConfigTest, EngineRejectsClusterWithoutExternalRunner) {
  mr::EngineOptions options;
  options.runner = mr::RunnerKind::kCluster;
  const Status st = options.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("external_runner"), std::string::npos)
      << st.ToString();
}

TEST(ClusterConfigTest, RunnerKindClusterRoundTripsByName) {
  auto kind = mr::RunnerKindFromName("cluster");
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, mr::RunnerKind::kCluster);
  EXPECT_STREQ(mr::RunnerKindName(mr::RunnerKind::kCluster), "cluster");
  // MakeTaskRunner cannot build one (net/ owns it); engines must receive
  // it via EngineOptions::external_runner.
  EXPECT_EQ(mr::MakeTaskRunner(mr::RunnerKind::kCluster, 2), nullptr);
}

// ---- Host-unique spill-dir naming ------------------------------------

TEST(TempDirTest, SpillDirNameCarriesHostAndPid) {
  auto dir = store::TempSpillDir::Create("", "fsjoin-hostname-test");
  ASSERT_TRUE(dir.ok()) << dir.status().ToString();
  const std::string name =
      std::filesystem::path(dir->path()).filename().string();
  // Layout: <prefix>-<host>-<pid>-<seq>; the host tag sits between the
  // prefix and the pid, so co-located workers on different machines
  // sharing a spill filesystem cannot collide on pid alone.
  const std::string prefix = "fsjoin-hostname-test-";
  ASSERT_EQ(name.rfind(prefix, 0), 0u) << name;
  const std::string rest = name.substr(prefix.size());
  // Parse from the right — the host tag itself may contain dashes.
  const size_t seq_dash = rest.rfind('-');
  ASSERT_NE(seq_dash, std::string::npos) << name;
  const size_t pid_dash = rest.rfind('-', seq_dash - 1);
  ASSERT_NE(pid_dash, std::string::npos) << name;
  EXPECT_EQ(rest.substr(pid_dash + 1, seq_dash - pid_dash - 1),
            std::to_string(getpid()))
      << name;
  EXPECT_GT(pid_dash, 0u) << "empty host tag in " << name;
}

}  // namespace
}  // namespace fsjoin
