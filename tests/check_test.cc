// Unit tests for the src/check verification harness: scenario generator,
// configuration lattice, invariant checker, result digest, delta-debugging
// minimizer and the end-to-end fault-injection self-test (a deliberate
// off-by-one in the SegL/SegI bounds must be detected and shrunk to a
// handful of records).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "check/lattice.h"
#include "check/minimizer.h"
#include "check/runner.h"
#include "check/scenarios.h"
#include "check/sweeper.h"
#include "core/filters.h"
#include "sim/similarity.h"
#include "util/random.h"

namespace fsjoin::check {
namespace {

bool SameCorpus(const Corpus& x, const Corpus& y) {
  if (x.records.size() != y.records.size()) return false;
  for (size_t i = 0; i < x.records.size(); ++i) {
    if (x.records[i].tokens != y.records[i].tokens) return false;
  }
  return true;
}

// ---- Scenarios ------------------------------------------------------------

TEST(ScenarioTest, SameSeedSameCorpus) {
  for (uint64_t seed : {1ull, 7ull, 23ull, 100ull}) {
    Scenario a = MakeScenario(seed, SimilarityFunction::kJaccard, 0.8);
    Scenario b = MakeScenario(seed, SimilarityFunction::kJaccard, 0.8);
    EXPECT_EQ(a.family, b.family);
    EXPECT_TRUE(SameCorpus(a.corpus, b.corpus)) << "seed " << seed;
  }
}

TEST(ScenarioTest, SeedsCycleThroughAllFamilies) {
  const std::vector<std::string> families = ScenarioFamilies();
  std::set<std::string> seen;
  for (uint64_t seed = 0; seed < families.size(); ++seed) {
    seen.insert(MakeScenario(seed, SimilarityFunction::kJaccard, 0.8).family);
  }
  EXPECT_EQ(seen.size(), families.size());
}

TEST(ScenarioTest, CorpusRoundTripsThroughSets) {
  Scenario scenario = MakeScenario(11, SimilarityFunction::kDice, 0.75);
  std::vector<std::vector<uint32_t>> sets = SetsFromCorpus(scenario.corpus);
  Corpus rebuilt = CorpusFromSets(sets);
  ASSERT_EQ(rebuilt.records.size(), scenario.corpus.records.size());
  // Token ids may be re-interned, but set sizes and overlap structure must
  // survive; spot-check sizes.
  for (size_t i = 0; i < sets.size(); ++i) {
    EXPECT_EQ(rebuilt.records[i].tokens.size(), sets[i].size());
  }
}

TEST(ScenarioTest, PlantsPairsAtExactlyTheta) {
  for (SimilarityFunction fn :
       {SimilarityFunction::kJaccard, SimilarityFunction::kDice,
        SimilarityFunction::kCosine}) {
    for (double theta : {0.5, 0.75, 0.8}) {
      std::vector<std::vector<uint32_t>> sets;
      Rng rng(99);
      PlantNearThresholdPairs(&sets, fn, theta, 3, 1000, rng);
      ASSERT_GE(sets.size(), 2u);
      // Among all planted pairs there must be at least one exactly at theta
      // and at least one strictly below.
      bool at = false, below = false, above = false;
      for (size_t i = 0; i < sets.size(); ++i) {
        for (size_t j = i + 1; j < sets.size(); ++j) {
          std::vector<uint32_t> inter;
          std::set_intersection(sets[i].begin(), sets[i].end(),
                                sets[j].begin(), sets[j].end(),
                                std::back_inserter(inter));
          if (inter.empty()) continue;
          const double sim = ComputeSimilarity(fn, inter.size(),
                                               sets[i].size(), sets[j].size());
          if (sim == theta) at = true;
          if (sim < theta) below = true;
          if (sim > theta) above = true;
        }
      }
      EXPECT_TRUE(at) << SimilarityFunctionName(fn) << " theta " << theta;
      EXPECT_TRUE(below) << SimilarityFunctionName(fn) << " theta " << theta;
      EXPECT_TRUE(above) << SimilarityFunctionName(fn) << " theta " << theta;
    }
  }
}

TEST(ScenarioTest, DegenerateFamilyHasEmptyAndTinyRecords) {
  const std::vector<std::string> families = ScenarioFamilies();
  const auto it = std::find(families.begin(), families.end(), "degenerate");
  ASSERT_NE(it, families.end());
  const uint64_t seed =
      static_cast<uint64_t>(it - families.begin()) + families.size();
  Scenario s = MakeScenario(seed, SimilarityFunction::kJaccard, 0.8);
  ASSERT_EQ(s.family, "degenerate");
  bool has_empty = false, has_single = false;
  for (const auto& r : s.corpus.records) {
    if (r.tokens.empty()) has_empty = true;
    if (r.tokens.size() == 1) has_single = true;
  }
  EXPECT_TRUE(has_empty);
  EXPECT_TRUE(has_single);
}

TEST(ScenarioTest, SamePrefixFamilySharesAPrefix) {
  const std::vector<std::string> families = ScenarioFamilies();
  const auto it = std::find(families.begin(), families.end(), "same-prefix");
  ASSERT_NE(it, families.end());
  const uint64_t seed = static_cast<uint64_t>(it - families.begin());
  Scenario s = MakeScenario(seed, SimilarityFunction::kJaccard, 0.8);
  ASSERT_EQ(s.family, "same-prefix");
  // Every non-planted record carries the shared prefix (>= 2 tokens, >= 20
  // base records); planted boundary pairs are appended on top, so assert
  // at least two tokens each appearing in >= 20 records.
  std::map<TokenId, size_t> freq;
  for (const auto& r : s.corpus.records) {
    for (TokenId t : r.tokens) ++freq[t];
  }
  size_t hot_tokens = 0;
  for (const auto& [t, f] : freq) {
    if (f >= 20) ++hot_tokens;
  }
  EXPECT_GE(hot_tokens, 2u);
}

// ---- Lattice --------------------------------------------------------------

TEST(LatticeTest, SameSeedSamePoints) {
  std::vector<LatticePoint> a = SampleLattice(42, 12);
  std::vector<LatticePoint> b = SampleLattice(42, 12);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].Name(), b[i].Name()) << "point " << i;
  }
}

TEST(LatticeTest, FirstFourPointsCoverAllAlgorithms) {
  for (uint64_t seed : {1ull, 2ull, 55ull}) {
    std::vector<LatticePoint> points = SampleLattice(seed, 8);
    ASSERT_GE(points.size(), 4u);
    std::set<Algorithm> algos;
    for (size_t i = 0; i < 4; ++i) algos.insert(points[i].algorithm);
    EXPECT_EQ(algos.size(), 4u) << "seed " << seed;
  }
}

TEST(LatticeTest, ThetaAndFunctionSharedAcrossPoints) {
  for (uint64_t seed : {3ull, 17ull, 91ull}) {
    std::vector<LatticePoint> points = SampleLattice(seed, 10);
    for (const LatticePoint& p : points) {
      EXPECT_EQ(p.theta(), points[0].theta());
      EXPECT_EQ(p.function(), points[0].function());
      // Baseline config mirrors the shared semantic knobs.
      EXPECT_EQ(p.baseline.theta, p.fsjoin.theta);
      EXPECT_EQ(p.baseline.function, p.fsjoin.function);
    }
  }
}

TEST(LatticeTest, ConfigsValidate) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    for (const LatticePoint& p : SampleLattice(seed, 8)) {
      if (p.algorithm == Algorithm::kFsJoin) {
        EXPECT_TRUE(p.fsjoin.Validate().ok()) << p.Name();
      } else {
        EXPECT_TRUE(p.baseline.Validate().ok()) << p.Name();
      }
    }
  }
}

// ---- Invariant checker ----------------------------------------------------

class InvariantTest : public ::testing::Test {
 protected:
  void SetUp() override {
    points_ = SampleLattice(5, 8);
    // Use an FS-Join point so filter/partial invariants are active.
    for (const LatticePoint& p : points_) {
      if (p.algorithm == Algorithm::kFsJoin) {
        point_ = p;
        break;
      }
    }
    scenario_ = MakeScenario(5, point_.function(), point_.theta());
    oracle_ = BuildOracle(scenario_.corpus, point_.function(), point_.theta());
    Result<RunOutcome> outcome = RunPoint(scenario_.corpus, point_);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    outcome_ = *std::move(outcome);
  }

  std::vector<LatticePoint> points_;
  LatticePoint point_;
  Scenario scenario_;
  Oracle oracle_;
  RunOutcome outcome_;
};

TEST_F(InvariantTest, CleanRunPasses) {
  std::vector<std::string> messages =
      CheckInvariants(scenario_.corpus, oracle_, point_, outcome_);
  EXPECT_TRUE(messages.empty())
      << "unexpected violations:\n" << messages.front();
}

TEST_F(InvariantTest, DetectsDroppedPair) {
  ASSERT_FALSE(outcome_.pairs.empty());
  RunOutcome doctored = outcome_;
  doctored.pairs.pop_back();
  std::vector<std::string> messages =
      CheckInvariants(scenario_.corpus, oracle_, point_, doctored);
  EXPECT_FALSE(messages.empty());
}

TEST_F(InvariantTest, DetectsUnbalancedFilterCounters) {
  RunOutcome doctored = outcome_;
  doctored.filters.pruned_segl += 1;
  std::vector<std::string> messages =
      CheckInvariants(scenario_.corpus, oracle_, point_, doctored);
  bool found = false;
  for (const std::string& m : messages) {
    if (m.find("unbalanced") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(InvariantTest, DetectsBrokenPartialConservation) {
  ASSERT_FALSE(outcome_.partials.empty());
  RunOutcome doctored = outcome_;
  doctored.partials.pop_back();
  std::vector<std::string> messages =
      CheckInvariants(scenario_.corpus, oracle_, point_, doctored);
  bool found = false;
  for (const std::string& m : messages) {
    if (m.find("conservation") != std::string::npos ||
        m.find("over-count") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(InvariantTest, DetectsByteAccountingDrift) {
  ASSERT_FALSE(outcome_.jobs.empty());
  RunOutcome doctored = outcome_;
  doctored.jobs[0].shuffle_bytes += 1;
  std::vector<std::string> messages =
      CheckInvariants(scenario_.corpus, oracle_, point_, doctored);
  bool found = false;
  for (const std::string& m : messages) {
    if (m.find("shuffle_bytes") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(InvariantTest, DetectsDoubleEmission) {
  RunOutcome doctored = outcome_;
  doctored.final_reduce_output_records += 1;
  std::vector<std::string> messages =
      CheckInvariants(scenario_.corpus, oracle_, point_, doctored);
  EXPECT_FALSE(messages.empty());
}

TEST(DigestTest, SensitiveToPairsAndSimilarityBits) {
  JoinResultSet pairs;
  pairs.push_back({1, 2, 0.875});
  pairs.push_back({3, 9, 0.8125});
  const uint32_t base = ResultDigest(pairs);
  EXPECT_EQ(base, ResultDigest(pairs));

  JoinResultSet fewer = pairs;
  fewer.pop_back();
  EXPECT_NE(ResultDigest(fewer), base);

  JoinResultSet drifted = pairs;
  drifted[0].similarity += 1e-15;
  EXPECT_NE(ResultDigest(drifted), base);

  EXPECT_EQ(ResultDigest({}), ResultDigest({}));
}

// ---- Minimizer ------------------------------------------------------------

TEST(MinimizerTest, ShrinksToMinimalWitness) {
  // Synthetic predicate (no joins): fails iff at least two distinct records
  // contain token 7. The minimal witness is two single-token records.
  std::vector<std::vector<uint32_t>> sets;
  Rng rng(4);
  for (int i = 0; i < 24; ++i) {
    std::vector<uint32_t> set;
    for (int j = 0; j < 6; ++j) set.push_back(rng.NextBounded(40));
    if (i % 5 == 0) set.push_back(7);
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
    sets.push_back(std::move(set));
  }
  Corpus corpus = CorpusFromSets(sets);
  FailurePredicate fails = [](const Corpus& c, const LatticePoint&) {
    int with_token = 0;
    for (const auto& set : SetsFromCorpus(c)) {
      if (std::find(set.begin(), set.end(), 7u) != set.end()) ++with_token;
    }
    return with_token >= 2;
  };
  LatticePoint point;
  MinimizedRepro repro = Minimize(corpus, point, fails);
  EXPECT_EQ(repro.sets.size(), 2u);
  for (const auto& set : repro.sets) {
    EXPECT_EQ(set, (std::vector<uint32_t>{7u}));
  }
  EXPECT_GT(repro.predicate_runs, 0u);
  EXPECT_EQ(repro.original_records, 24u);
}

TEST(MinimizerTest, NonFailingInputReturnsUnchanged) {
  Corpus corpus = CorpusFromSets({{1, 2}, {3, 4}});
  FailurePredicate never = [](const Corpus&, const LatticePoint&) {
    return false;
  };
  LatticePoint point;
  MinimizedRepro repro = Minimize(corpus, point, never);
  EXPECT_EQ(repro.sets.size(), 2u);
  EXPECT_EQ(repro.predicate_runs, 1u);
}

TEST(MinimizerTest, ReproPrintsAsCppTest) {
  MinimizedRepro repro;
  repro.sets = {{1, 2, 3}, {1, 2}};
  repro.point.fsjoin.theta = 0.75;
  repro.point.fsjoin.num_vertical_partitions = 2;
  repro.failure = "result mismatch vs oracle";
  const std::string code = repro.ToCppTestCase();
  EXPECT_NE(code.find("TEST(FuzzRepro, Minimized)"), std::string::npos);
  EXPECT_NE(code.find("CorpusFromTokenSets"), std::string::npos);
  EXPECT_NE(code.find("{1, 2, 3}"), std::string::npos);
  EXPECT_NE(code.find("config.num_vertical_partitions = 2;"),
            std::string::npos);
  EXPECT_NE(code.find("BruteForceJoin"), std::string::npos);
}

// ---- Sweeper + fault injection -------------------------------------------

TEST(SweeperTest, CleanSweepPasses) {
  SweepOptions options;
  options.seed_begin = 1;
  options.seed_count = 4;
  options.lattice_points = 6;
  SweepReport report = RunSweep(options);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.seeds_run, 4u);
  EXPECT_EQ(report.points_run, 24u);
  EXPECT_NE(report.Summary().find("verdict: PASS"), std::string::npos);
}

TEST(SweeperTest, SummaryIsDeterministic) {
  SweepOptions options;
  options.seed_begin = 2;
  options.seed_count = 3;
  options.lattice_points = 5;
  EXPECT_EQ(RunSweep(options).Summary(), RunSweep(options).Summary());
}

// The acceptance self-test: a deliberate off-by-one in the SegL required
// overlap must (a) be caught by the sweep and (b) shrink to a tiny repro.
TEST(SweeperTest, SegLFaultIsDetectedAndMinimized) {
  FilterFaultInjection fault;
  fault.segl_required_bias = 1;
  ScopedFilterFault scoped(fault);

  SweepOptions options;
  options.seed_begin = 1;
  options.seed_count = 10;
  options.lattice_points = 8;
  options.max_failures = 1;
  SweepReport report = RunSweep(options);
  ASSERT_FALSE(report.ok())
      << "SegL +1 bias went undetected over 10 seeds x 8 points";
  const SweepFailure& failure = report.failures.front();
  ASSERT_TRUE(failure.minimized);
  EXPECT_LE(failure.repro.sets.size(), 6u)
      << "minimizer left " << failure.repro.sets.size() << " records";
  EXPECT_LT(failure.repro.sets.size(), failure.repro.original_records);
  EXPECT_FALSE(failure.repro.failure.empty());
  const std::string code = failure.repro.ToCppTestCase();
  EXPECT_NE(code.find("TEST(FuzzRepro, Minimized)"), std::string::npos);
  EXPECT_NE(report.Summary().find("verdict: FAIL"), std::string::npos);
}

TEST(SweeperTest, SegIFaultIsDetected) {
  FilterFaultInjection fault;
  fault.segi_required_bias = 1;
  ScopedFilterFault scoped(fault);

  SweepOptions options;
  options.seed_begin = 1;
  options.seed_count = 10;
  options.lattice_points = 8;
  options.max_failures = 1;
  options.minimize = false;
  SweepReport report = RunSweep(options);
  EXPECT_FALSE(report.ok());
}

TEST(FaultInjectionTest, ScopedFaultRestoresPreviousState) {
  EXPECT_FALSE(GetFilterFaultInjection().Active());
  {
    FilterFaultInjection outer;
    outer.segl_required_bias = 2;
    ScopedFilterFault a(outer);
    EXPECT_EQ(GetFilterFaultInjection().segl_required_bias, 2);
    {
      FilterFaultInjection inner;
      inner.segi_required_bias = -1;
      ScopedFilterFault b(inner);
      EXPECT_EQ(GetFilterFaultInjection().segi_required_bias, -1);
      EXPECT_EQ(GetFilterFaultInjection().segl_required_bias, 0);
    }
    EXPECT_EQ(GetFilterFaultInjection().segl_required_bias, 2);
  }
  EXPECT_FALSE(GetFilterFaultInjection().Active());
}

}  // namespace
}  // namespace fsjoin::check
