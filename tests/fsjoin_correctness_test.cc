// End-to-end correctness of FS-Join: the three-job pipeline must produce
// exactly the brute-force result set for every configuration — all join
// methods, every filter combination, with and without horizontal
// partitioning, for all similarity functions. This is the library's central
// invariant (DESIGN.md "Per-fragment filter soundness").

#include <gtest/gtest.h>

#include "core/fsjoin.h"
#include "sim/serial_join.h"
#include "test_util.h"

namespace fsjoin {
namespace {

using ::fsjoin::testing::CorpusFromTokenSets;
using ::fsjoin::testing::OrderedView;
using ::fsjoin::testing::RandomCorpus;

FsJoinConfig BaseConfig(double theta) {
  FsJoinConfig config;
  config.theta = theta;
  config.num_vertical_partitions = 4;
  config.exec.num_map_tasks = 3;
  config.exec.num_reduce_tasks = 5;
  return config;
}

void ExpectMatchesBruteForce(const Corpus& corpus, const FsJoinConfig& config) {
  JoinResultSet expected =
      BruteForceJoin(OrderedView(corpus), config.function, config.theta);
  FsJoin join(config);
  Result<FsJoinOutput> result = join.Run(corpus);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(SamePairs(expected, result->pairs))
      << config.Summary() << "\n"
      << DiffResults(expected, result->pairs);
  // Similarity values must agree too.
  for (size_t i = 0; i < expected.size() && i < result->pairs.size(); ++i) {
    EXPECT_NEAR(expected[i].similarity, result->pairs[i].similarity, 1e-9);
  }
}

TEST(FsJoinCorrectness, PaperRunningExample) {
  // Figure 2's dataset: s1..s4 over tokens {B, C, I, J, K, A, E, G, D, F}.
  Corpus corpus = CorpusFromTokenSets({
      {1, 2, 8, 9, 10},  // s1 = {B, C, I, J, K}
      {1, 2, 8},         // s2 = {B, C, I}
      {0, 4, 6, 9},      // s3 = {A, E, G, J}
      {3, 5, 7},         // s4 = {D, F, H}
  });
  ExpectMatchesBruteForce(corpus, BaseConfig(0.5));
}

TEST(FsJoinCorrectness, TinyEdgeCases) {
  // Single record, identical records, disjoint records, single tokens.
  ExpectMatchesBruteForce(CorpusFromTokenSets({{1, 2, 3}}), BaseConfig(0.8));
  ExpectMatchesBruteForce(
      CorpusFromTokenSets({{1, 2, 3}, {1, 2, 3}, {1, 2, 3}}), BaseConfig(0.8));
  ExpectMatchesBruteForce(CorpusFromTokenSets({{1}, {2}, {3}}),
                          BaseConfig(0.8));
  ExpectMatchesBruteForce(CorpusFromTokenSets({{1}, {1}, {2, 3}}),
                          BaseConfig(0.8));
}

TEST(FsJoinCorrectness, MoreFragmentsThanTokens) {
  Corpus corpus = CorpusFromTokenSets({{1, 2}, {1, 2}, {2}});
  FsJoinConfig config = BaseConfig(0.5);
  config.num_vertical_partitions = 64;  // far more than |U|
  ExpectMatchesBruteForce(corpus, config);
}

TEST(FsJoinCorrectness, SingleFragment) {
  FsJoinConfig config = BaseConfig(0.7);
  config.num_vertical_partitions = 1;  // no pivots at all
  ExpectMatchesBruteForce(RandomCorpus(60, 80, 0.9, 8, 11), config);
}

// ---- Property sweep: every join method x filter set x partitioning ------

struct SweepParam {
  JoinMethod method;
  bool segl, segi, segd, strl;
  uint32_t horizontal;
  const char* name;
};

class FsJoinSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(FsJoinSweep, MatchesBruteForceJaccard) {
  const SweepParam& p = GetParam();
  FsJoinConfig config = BaseConfig(0.6);
  config.join_method = p.method;
  config.use_length_filter = p.strl;
  config.use_segment_length_filter = p.segl;
  config.use_segment_intersection_filter = p.segi;
  config.use_segment_difference_filter = p.segd;
  config.num_horizontal_partitions = p.horizontal;
  ExpectMatchesBruteForce(RandomCorpus(120, 150, 1.0, 10, 101), config);
}

TEST_P(FsJoinSweep, MatchesBruteForceHighTheta) {
  const SweepParam& p = GetParam();
  FsJoinConfig config = BaseConfig(0.9);
  config.join_method = p.method;
  config.use_length_filter = p.strl;
  config.use_segment_length_filter = p.segl;
  config.use_segment_intersection_filter = p.segi;
  config.use_segment_difference_filter = p.segd;
  config.num_horizontal_partitions = p.horizontal;
  ExpectMatchesBruteForce(RandomCorpus(100, 120, 1.1, 12, 202), config);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, FsJoinSweep,
    ::testing::Values(
        SweepParam{JoinMethod::kLoop, false, false, false, false, 0,
                   "loop_nofilters"},
        SweepParam{JoinMethod::kLoop, true, true, true, true, 0,
                   "loop_allfilters"},
        SweepParam{JoinMethod::kIndex, false, false, false, true, 0,
                   "index_strl"},
        SweepParam{JoinMethod::kIndex, true, true, true, true, 3,
                   "index_horizontal"},
        SweepParam{JoinMethod::kPrefix, false, false, false, false, 0,
                   "prefix_nofilters"},
        SweepParam{JoinMethod::kPrefix, true, false, false, true, 0,
                   "prefix_segl"},
        SweepParam{JoinMethod::kPrefix, false, true, false, true, 0,
                   "prefix_segi"},
        SweepParam{JoinMethod::kPrefix, false, false, true, true, 0,
                   "prefix_segd"},
        SweepParam{JoinMethod::kPrefix, true, true, true, true, 0,
                   "prefix_allfilters"},
        SweepParam{JoinMethod::kPrefix, true, true, true, true, 2,
                   "prefix_horizontal2"},
        SweepParam{JoinMethod::kPrefix, true, true, true, true, 5,
                   "prefix_horizontal5"}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return info.param.name;
    });

// ---- Similarity functions ----------------------------------------------

class FsJoinFunctions
    : public ::testing::TestWithParam<std::pair<SimilarityFunction, double>> {
};

TEST_P(FsJoinFunctions, MatchesBruteForce) {
  FsJoinConfig config = BaseConfig(GetParam().second);
  config.function = GetParam().first;
  config.num_horizontal_partitions = 2;
  ExpectMatchesBruteForce(RandomCorpus(110, 140, 1.0, 9, 303), config);
}

INSTANTIATE_TEST_SUITE_P(
    AllFunctions, FsJoinFunctions,
    ::testing::Values(std::make_pair(SimilarityFunction::kJaccard, 0.7),
                      std::make_pair(SimilarityFunction::kDice, 0.8),
                      std::make_pair(SimilarityFunction::kCosine, 0.75)),
    [](const ::testing::TestParamInfo<std::pair<SimilarityFunction, double>>&
           info) {
      return SimilarityFunctionName(info.param.first);
    });

// ---- Pivot strategies ----------------------------------------------------

class FsJoinPivots : public ::testing::TestWithParam<PivotStrategy> {};

TEST_P(FsJoinPivots, MatchesBruteForce) {
  FsJoinConfig config = BaseConfig(0.65);
  config.pivot_strategy = GetParam();
  config.num_vertical_partitions = 7;
  ExpectMatchesBruteForce(RandomCorpus(100, 130, 1.0, 10, 404), config);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, FsJoinPivots,
                         ::testing::Values(PivotStrategy::kRandom,
                                           PivotStrategy::kEvenInterval,
                                           PivotStrategy::kEvenTf),
                         [](const ::testing::TestParamInfo<PivotStrategy>& i) {
                           std::string n = PivotStrategyName(i.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// ---- Threshold sweep ------------------------------------------------------

class FsJoinThetas : public ::testing::TestWithParam<double> {};

TEST_P(FsJoinThetas, MatchesBruteForce) {
  FsJoinConfig config = BaseConfig(GetParam());
  config.num_horizontal_partitions = 3;
  ExpectMatchesBruteForce(RandomCorpus(120, 160, 1.05, 11, 505), config);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, FsJoinThetas,
                         ::testing::Values(0.5, 0.6, 0.7, 0.75, 0.8, 0.85, 0.9,
                                           0.95, 1.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "theta" +
                                  std::to_string(static_cast<int>(
                                      info.param * 100 + 0.5));
                         });

// ---- Multi-threaded engine must agree with inline execution ------------

TEST(FsJoinCorrectness, ThreadedEngineMatches) {
  FsJoinConfig config = BaseConfig(0.7);
  config.exec.num_threads = 4;
  config.num_horizontal_partitions = 2;
  ExpectMatchesBruteForce(RandomCorpus(150, 200, 1.0, 10, 606), config);
}

// ---- R-S join ------------------------------------------------------------

TEST(FsJoinCorrectness, RsJoinMatchesFilteredBruteForce) {
  Corpus r = RandomCorpus(60, 100, 1.0, 9, 707);
  Corpus s = RandomCorpus(70, 100, 1.0, 9, 708);
  FsJoinConfig config = BaseConfig(0.5);

  Result<FsJoinOutput> result = FsJoinRS(r, s, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Reference: brute force over the merged corpus, keeping only pairs that
  // straddle the R/S boundary.
  Corpus merged;
  {
    std::vector<std::vector<uint32_t>> sets;
    auto add = [&](const Corpus& c) {
      for (const Record& rec : c.records) {
        std::vector<uint32_t> set;
        for (TokenId t : rec.tokens) {
          // Token strings are "t<i>"; re-parse to ids in a shared space.
          set.push_back(static_cast<uint32_t>(
              std::stoul(c.dictionary.TokenString(t).substr(1))));
        }
        sets.push_back(std::move(set));
      }
    };
    add(r);
    add(s);
    merged = CorpusFromTokenSets(sets);
  }
  JoinResultSet expected =
      BruteForceJoin(OrderedView(merged), config.function, config.theta);
  const RecordId boundary = static_cast<RecordId>(r.records.size());
  JoinResultSet cross;
  for (const SimilarPair& p : expected) {
    if ((p.a < boundary) != (p.b < boundary)) cross.push_back(p);
  }
  NormalizeResult(&cross);
  EXPECT_TRUE(SamePairs(cross, result->pairs))
      << DiffResults(cross, result->pairs);
}

// ---- Report sanity -----------------------------------------------------

TEST(FsJoinReportTest, CountersAreConsistent) {
  FsJoinConfig config = BaseConfig(0.8);
  FsJoin join(config);
  Result<FsJoinOutput> result = join.Run(RandomCorpus(100, 150, 1.0, 10, 809));
  ASSERT_TRUE(result.ok());
  const FsJoinReport& rep = result->report;
  EXPECT_EQ(rep.result_pairs, result->pairs.size());
  // Emitted partial overlaps == filtering job reduce output records.
  EXPECT_EQ(rep.filters.emitted, rep.filtering_job.reduce_output_records);
  // Vertical partitioning emits each token exactly once per horizontal
  // group: with horizontal off, map output record count <= input segments
  // and duplication factor is bounded by the number of fragments.
  EXPECT_LE(rep.filtering_job.DuplicationFactor(),
            static_cast<double>(config.num_vertical_partitions));
  // Candidates aggregate at least every result pair.
  EXPECT_GE(rep.candidate_pairs, rep.result_pairs);
  EXPECT_EQ(rep.pivots.size(), config.num_vertical_partitions - 1);
}


// ---- Aggressive segment prefix (paper's per-segment θ-prefix) ------------

TEST(FsJoinAggressivePrefix, NeverProducesFalsePositives) {
  Corpus corpus = RandomCorpus(200, 250, 1.1, 12, 888);
  for (double theta : {0.6, 0.8, 0.9}) {
    JoinResultSet exact =
        BruteForceJoin(OrderedView(corpus), SimilarityFunction::kJaccard,
                       theta);
    FsJoinConfig config = BaseConfig(theta);
    config.aggressive_segment_prefix = true;
    config.num_vertical_partitions = 8;
    Result<FsJoinOutput> out = FsJoin(config).Run(corpus);
    ASSERT_TRUE(out.ok());
    // Precision 1: every reported pair is a true result (partial counts can
    // only be undercounted, so a pair passing the threshold really passes).
    for (const SimilarPair& p : out->pairs) {
      EXPECT_TRUE(std::binary_search(
          exact.begin(), exact.end(), p,
          [](const SimilarPair& x, const SimilarPair& y) {
            if (x.a != y.a) return x.a < y.a;
            return x.b < y.b;
          }))
          << "false positive (" << p.a << "," << p.b << ")";
    }
    // Recall is workload-dependent but must stay high on near-duplicate
    // data (the lost counts belong to weak fragments).
    if (!exact.empty()) {
      double recall = static_cast<double>(out->pairs.size()) /
                      static_cast<double>(exact.size());
      EXPECT_GE(recall, 0.6) << "theta=" << theta;
    }
  }
}

TEST(FsJoinAggressivePrefix, FasterCandidateGeneration) {
  Corpus corpus = RandomCorpus(300, 150, 1.2, 20, 889);
  FsJoinConfig exact_cfg = BaseConfig(0.8);
  exact_cfg.num_vertical_partitions = 8;
  FsJoinConfig aggr_cfg = exact_cfg;
  aggr_cfg.aggressive_segment_prefix = true;
  Result<FsJoinOutput> exact = FsJoin(exact_cfg).Run(corpus);
  Result<FsJoinOutput> aggr = FsJoin(aggr_cfg).Run(corpus);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(aggr.ok());
  EXPECT_LT(aggr->report.filters.pairs_considered,
            exact->report.filters.pairs_considered);
}


// ---- Execution-shape invariance ------------------------------------------

TEST(FsJoinCorrectness, ResultsInvariantToTaskAndThreadCounts) {
  Corpus corpus = RandomCorpus(130, 160, 1.0, 10, 990);
  JoinResultSet reference;
  bool first = true;
  for (uint32_t maps : {1u, 4u, 9u}) {
    for (uint32_t reduces : {1u, 7u}) {
      for (size_t threads : {size_t{0}, size_t{3}}) {
        FsJoinConfig config = BaseConfig(0.7);
        config.exec.num_map_tasks = maps;
        config.exec.num_reduce_tasks = reduces;
        config.exec.num_threads = threads;
        config.num_horizontal_partitions = 2;
        Result<FsJoinOutput> out = FsJoin(config).Run(corpus);
        ASSERT_TRUE(out.ok());
        if (first) {
          reference = out->pairs;
          first = false;
        } else {
          EXPECT_TRUE(SamePairs(reference, out->pairs))
              << "maps=" << maps << " reduces=" << reduces
              << " threads=" << threads;
        }
      }
    }
  }
}

TEST(FsJoinCorrectness, DeterministicAcrossRuns) {
  Corpus corpus = RandomCorpus(100, 140, 1.0, 9, 991);
  FsJoinConfig config = BaseConfig(0.75);
  Result<FsJoinOutput> a = FsJoin(config).Run(corpus);
  Result<FsJoinOutput> b = FsJoin(config).Run(corpus);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(SamePairs(a->pairs, b->pairs));
  EXPECT_EQ(a->report.filters.emitted, b->report.filters.emitted);
  EXPECT_EQ(a->report.candidate_pairs, b->report.candidate_pairs);
}

}  // namespace
}  // namespace fsjoin
