#ifndef FSJOIN_TESTS_TEST_UTIL_H_
#define FSJOIN_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/global_order.h"
#include "text/corpus.h"
#include "text/generator.h"
#include "util/random.h"

namespace fsjoin::testing {

/// Builds a corpus directly from explicit token-id sets ("t<i>" strings),
/// for hand-written cases.
inline Corpus CorpusFromTokenSets(
    const std::vector<std::vector<uint32_t>>& sets) {
  std::vector<std::string> lines;
  lines.reserve(sets.size());
  for (const auto& set : sets) {
    std::string line;
    for (uint32_t t : set) {
      if (!line.empty()) line += ' ';
      line += "t" + std::to_string(t);
    }
    lines.push_back(line);
  }
  WhitespaceTokenizer tokenizer;
  return BuildCorpus(lines, tokenizer);
}

/// Small random corpus with planted near-duplicates — the standard input of
/// the property tests.
inline Corpus RandomCorpus(uint64_t num_records, uint64_t vocab, double skew,
                           double avg_len, uint64_t seed) {
  SyntheticCorpusConfig cfg;
  cfg.num_records = num_records;
  cfg.vocab_size = vocab;
  cfg.zipf_skew = skew;
  cfg.avg_len = avg_len;
  cfg.len_sigma = 0.7;
  cfg.min_len = 1;
  cfg.max_len = 4 * static_cast<uint64_t>(avg_len) + 8;
  cfg.near_duplicate_fraction = 0.35;
  cfg.mutation_rate = 0.12;
  cfg.seed = seed;
  return GenerateCorpus(cfg);
}

/// Ordered view of a corpus under its own frequency-based global ordering.
inline std::vector<OrderedRecord> OrderedView(const Corpus& corpus) {
  GlobalOrder order = GlobalOrder::FromCorpus(corpus);
  return ApplyGlobalOrder(corpus, order);
}

}  // namespace fsjoin::testing

#endif  // FSJOIN_TESTS_TEST_UTIL_H_
