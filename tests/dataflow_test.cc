// The Spark-style dataflow executor: fusion semantics, shuffle grouping,
// error propagation, and the FS-Join-on-flow end-to-end equivalence with
// both the MR driver and brute force.

#include <gtest/gtest.h>

#include <map>

#include "core/fsjoin.h"
#include "flow/dataflow.h"
#include "sim/serial_join.h"
#include "test_util.h"
#include "util/serde.h"

namespace fsjoin::flow {
namespace {

using ::fsjoin::testing::OrderedView;
using ::fsjoin::testing::RandomCorpus;

// Reusable word-count operators.
class SplitMapper : public mr::Mapper {
 public:
  Status Map(const mr::KeyValue& record, mr::Emitter* out) override {
    std::string current;
    for (char c : record.value + " ") {
      if (c == ' ') {
        if (!current.empty()) {
          std::string one;
          PutVarint64(&one, 1);
          out->Emit(current, one);
          current.clear();
        }
      } else {
        current.push_back(c);
      }
    }
    return Status::OK();
  }
};

class UpperMapper : public mr::Mapper {
 public:
  Status Map(const mr::KeyValue& record, mr::Emitter* out) override {
    std::string key = record.key;
    for (char& c : key) c = static_cast<char>(std::toupper(c));
    out->Emit(std::move(key), record.value);
    return Status::OK();
  }
};

class SumReducer : public mr::Reducer {
 public:
  Status Reduce(std::string_view key, mr::ValueList values,
                mr::Emitter* out) override {
    uint64_t total = 0;
    for (std::string_view v : values) {
      Decoder dec(v);
      uint64_t x = 0;
      FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&x));
      total += x;
    }
    std::string value;
    PutVarint64(&value, total);
    out->Emit(key, value);
    return Status::OK();
  }
};

mr::Dataset Words() {
  return {{"1", "a b a"}, {"2", "b c"}, {"3", "a a"}, {"4", "d"}};
}

std::map<std::string, uint64_t> Counts(const mr::Dataset& output) {
  std::map<std::string, uint64_t> counts;
  for (const mr::KeyValue& kv : output) {
    Decoder dec(kv.value);
    uint64_t v = 0;
    EXPECT_TRUE(dec.GetVarint64(&v).ok());
    counts[kv.key] += v;
  }
  return counts;
}

TEST(DataflowTest, FusedNarrowChainPlusShuffle) {
  Pipeline p("wordcount", 0, 3);
  p.FlatMap("split", [] { return std::make_unique<SplitMapper>(); })
      .FlatMap("upper", [] { return std::make_unique<UpperMapper>(); })
      .GroupByKey("sum", [] { return std::make_unique<SumReducer>(); });
  Result<mr::Dataset> out = p.Run(Words());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto counts = Counts(*out);
  EXPECT_EQ(counts["A"], 4u);
  EXPECT_EQ(counts["B"], 2u);
  EXPECT_EQ(counts["C"], 1u);
  EXPECT_EQ(counts["D"], 1u);
  EXPECT_EQ(p.metrics().num_shuffles, 1u);
  EXPECT_EQ(p.metrics().shuffle_records, 8u);  // one per word occurrence
}

TEST(DataflowTest, NarrowOnlyPipeline) {
  Pipeline p("map-only", 0, 2);
  p.FlatMap("upper", [] { return std::make_unique<UpperMapper>(); });
  Result<mr::Dataset> out = p.Run({{"x", "1"}, {"y", "2"}});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ(p.metrics().num_shuffles, 0u);
  EXPECT_EQ(p.metrics().shuffle_records, 0u);
}

TEST(DataflowTest, EmptyPipelinePassesThrough) {
  Pipeline p("identity", 0, 4);
  Result<mr::Dataset> out = p.Run(Words());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), Words().size());
}

TEST(DataflowTest, ConsecutiveShuffles) {
  // sum twice: second GroupByKey sees one record per key, totals unchanged.
  Pipeline p("double", 0, 3);
  p.FlatMap("split", [] { return std::make_unique<SplitMapper>(); })
      .GroupByKey("sum1", [] { return std::make_unique<SumReducer>(); })
      .GroupByKey("sum2", [] { return std::make_unique<SumReducer>(); });
  Result<mr::Dataset> out = p.Run(Words());
  ASSERT_TRUE(out.ok());
  auto counts = Counts(*out);
  EXPECT_EQ(counts["a"], 4u);
  EXPECT_EQ(p.metrics().num_shuffles, 2u);
}

TEST(DataflowTest, ErrorsPropagate) {
  class FailingMapper : public mr::Mapper {
   public:
    Status Map(const mr::KeyValue&, mr::Emitter*) override {
      return Status::Internal("map fail");
    }
  };
  Pipeline p("bad", 0, 2);
  p.FlatMap("boom", [] { return std::make_unique<FailingMapper>(); });
  EXPECT_FALSE(p.Run(Words()).ok());

  class FailingReducer : public mr::Reducer {
   public:
    Status Reduce(std::string_view, mr::ValueList, mr::Emitter*) override {
      return Status::Internal("reduce fail");
    }
  };
  Pipeline q("bad2", 0, 2);
  q.FlatMap("split", [] { return std::make_unique<SplitMapper>(); })
      .GroupByKey("boom", [] { return std::make_unique<FailingReducer>(); });
  EXPECT_FALSE(q.Run(Words()).ok());
}

TEST(DataflowTest, ThreadedMatchesInline) {
  Pipeline a("inline", 0, 4), b("threaded", 3, 4);
  for (Pipeline* p : {&a, &b}) {
    p->FlatMap("split", [] { return std::make_unique<SplitMapper>(); })
        .GroupByKey("sum", [] { return std::make_unique<SumReducer>(); });
  }
  Result<mr::Dataset> ra = a.Run(Words());
  Result<mr::Dataset> rb = b.Run(Words());
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(Counts(*ra), Counts(*rb));
}

// ---- FS-Join on the dataflow engine --------------------------------------

TEST(FsJoinOnFlowTest, MatchesMrDriverAndBruteForce) {
  Corpus corpus = RandomCorpus(140, 170, 1.0, 10, 5050);
  for (double theta : {0.6, 0.8, 0.95}) {
    FsJoinConfig config;
    config.theta = theta;
    config.num_vertical_partitions = 6;
    config.exec.num_map_tasks = 4;
    config.exec.num_reduce_tasks = 5;
    config.num_horizontal_partitions = 2;

    Result<FsJoinOutput> mr_out = FsJoin(config).Run(corpus);
    config.exec.backend = exec::BackendKind::kFusedFlow;
    Result<FsJoinOutput> flow_out = FsJoin(config).Run(corpus);
    ASSERT_TRUE(mr_out.ok());
    ASSERT_TRUE(flow_out.ok()) << flow_out.status().ToString();
    EXPECT_EQ(flow_out->report.backend, exec::BackendKind::kFusedFlow);
    EXPECT_TRUE(SamePairs(mr_out->pairs, flow_out->pairs))
        << DiffResults(mr_out->pairs, flow_out->pairs);

    JoinResultSet expected =
        BruteForceJoin(OrderedView(corpus), config.function, theta);
    EXPECT_TRUE(SamePairs(expected, flow_out->pairs));
  }
}

TEST(FsJoinOnFlowTest, FusionSkipsTheIdentityJob) {
  Corpus corpus = RandomCorpus(120, 150, 1.0, 9, 5151);
  FsJoinConfig config;
  config.theta = 0.8;
  Result<FsJoinOutput> mr_out = FsJoin(config).Run(corpus);
  config.exec.backend = exec::BackendKind::kFusedFlow;
  Result<FsJoinOutput> flow_out = FsJoin(config).Run(corpus);
  ASSERT_TRUE(mr_out.ok());
  ASSERT_TRUE(flow_out.ok());
  // The fused backend runs two pipelines (ordering, join); the join
  // pipeline shuffles the same records as the MR driver's filtering +
  // verification jobs but never re-maps them between the two shuffles.
  ASSERT_EQ(flow_out->report.flow_pipelines.size(), 2u);
  const Pipeline::Metrics& join = flow_out->report.flow_pipelines[1];
  EXPECT_EQ(join.num_shuffles, 2u);
  // Shuffled volume across the flow join pipeline is bounded by the MR
  // driver's filtering + verification shuffles (same records).
  EXPECT_LE(join.shuffle_records,
            mr_out->report.filtering_job.shuffle_records +
                mr_out->report.verification_job.shuffle_records);
  // Per-wide-stage counters line up with the MR jobs by name and order.
  ASSERT_EQ(flow_out->report.filtering_job.job_name, "filtering");
  ASSERT_EQ(flow_out->report.verification_job.job_name, "verification");
  EXPECT_EQ(flow_out->report.verification_job.reduce_output_records,
            mr_out->report.verification_job.reduce_output_records);
}

}  // namespace
}  // namespace fsjoin::flow
