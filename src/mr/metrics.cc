#include "mr/metrics.h"

#include <algorithm>
#include <sstream>

#include "util/string_util.h"

namespace fsjoin::mr {

double JobMetrics::DuplicationFactor() const {
  if (map_input_records == 0) return 0.0;
  return static_cast<double>(map_output_records) /
         static_cast<double>(map_input_records);
}

double JobMetrics::ReduceSkew() const {
  if (reduce_tasks.empty()) return 1.0;
  uint64_t max_bytes = 0;
  uint64_t total = 0;
  for (const TaskMetrics& t : reduce_tasks) {
    max_bytes = std::max(max_bytes, t.input_bytes);
    total += t.input_bytes;
  }
  if (total == 0) return 1.0;
  double mean =
      static_cast<double>(total) / static_cast<double>(reduce_tasks.size());
  return static_cast<double>(max_bytes) / mean;
}

std::string JobMetrics::Summary() const {
  std::ostringstream os;
  os << "job '" << job_name << "'";
  if (!join_kernel.empty()) os << " (kernel " << join_kernel << ")";
  os << ":\n";
  os << StrFormat("  map:     %s records in, %s records out (%s), dup=%.2fx\n",
                  WithThousandsSep(map_input_records).c_str(),
                  WithThousandsSep(map_output_records).c_str(),
                  HumanBytes(map_output_bytes).c_str(), DuplicationFactor());
  os << StrFormat("  shuffle: %s records, %s, reduce skew=%.2f\n",
                  WithThousandsSep(shuffle_records).c_str(),
                  HumanBytes(shuffle_bytes).c_str(), ReduceSkew());
  if (spill_runs > 0) {
    os << StrFormat("  spill:   %s in %u runs\n",
                    HumanBytes(spilled_bytes).c_str(), spill_runs);
  }
  os << StrFormat("  reduce:  %s records out (%s)\n",
                  WithThousandsSep(reduce_output_records).c_str(),
                  HumanBytes(reduce_output_bytes).c_str());
  os << StrFormat("  time:    map %.1f ms, reduce %.1f ms, total %.1f ms",
                  static_cast<double>(map_wall_micros) / 1000.0,
                  static_cast<double>(reduce_wall_micros) / 1000.0,
                  static_cast<double>(total_wall_micros) / 1000.0);
  return os.str();
}

JobMetrics CombineJobMetrics(const std::vector<JobMetrics>& jobs,
                             const std::string& name) {
  JobMetrics out;
  out.job_name = name;
  for (const JobMetrics& j : jobs) {
    if (out.join_kernel.empty()) out.join_kernel = j.join_kernel;
    out.map_input_records += j.map_input_records;
    out.map_input_bytes += j.map_input_bytes;
    out.map_output_records += j.map_output_records;
    out.map_output_bytes += j.map_output_bytes;
    out.combine_input_records += j.combine_input_records;
    out.shuffle_records += j.shuffle_records;
    out.shuffle_bytes += j.shuffle_bytes;
    out.spilled_bytes += j.spilled_bytes;
    out.spill_runs += j.spill_runs;
    out.reduce_output_records += j.reduce_output_records;
    out.reduce_output_bytes += j.reduce_output_bytes;
    out.map_tasks.insert(out.map_tasks.end(), j.map_tasks.begin(),
                         j.map_tasks.end());
    out.reduce_tasks.insert(out.reduce_tasks.end(), j.reduce_tasks.begin(),
                            j.reduce_tasks.end());
    out.map_wall_micros += j.map_wall_micros;
    out.reduce_wall_micros += j.reduce_wall_micros;
    out.total_wall_micros += j.total_wall_micros;
  }
  return out;
}

}  // namespace fsjoin::mr
