#ifndef FSJOIN_MR_ENGINE_H_
#define FSJOIN_MR_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "mr/job.h"
#include "mr/kv.h"
#include "mr/metrics.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace fsjoin::mr {

/// Engine construction knobs.
struct EngineOptions {
  /// Worker threads for running tasks (0 = inline).
  size_t num_threads = 0;
  /// Per-job cap on shuffle arena payload bytes (0 = unlimited, shuffle
  /// stays fully in memory). When a job's buffered shuffle data exceeds
  /// the cap — or the process-wide store::ProcessMemoryBudget() trips —
  /// shards spill key-sorted run files to disk and the reduce side streams
  /// a k-way merge. Results are byte-identical to the in-memory path.
  uint64_t shuffle_memory_bytes = 0;
  /// Base directory for spill runs; every job creates (and removes, even
  /// on failure) its own unique subdirectory underneath. Empty = system
  /// temp directory. Only used when shuffle_memory_bytes > 0.
  std::string spill_dir;
};

/// In-process MapReduce engine. Substitutes for the paper's Hadoop cluster:
/// the execution semantics (record-at-a-time map, optional combiner,
/// hash-partitioned sort-merge shuffle, grouped reduce) match Hadoop's, and
/// every phase is instrumented so algorithmic costs (duplicates, shuffle
/// bytes, reducer skew) are measured exactly. Cluster-size effects are
/// replayed from the per-task metrics by ClusterSimulator.
///
/// Data plane: emitted records land in per-partition byte arenas (KvBuffer),
/// the shuffle moves arenas rather than records, keys are sorted via an
/// 8-byte integer tag (mr/shuffle.h), and reducers see string_view windows
/// over the sorted arena — a record's bytes are copied exactly twice per
/// job: map emit into the arena, reduce emit out of it.
class Engine {
 public:
  /// \param num_threads worker threads for running tasks (0 = inline).
  explicit Engine(size_t num_threads = 0);
  explicit Engine(const EngineOptions& options);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs one job over `input`, appending results (in reduce-partition
  /// order, keys sorted within a partition) to `*output` and the job's
  /// counters to `*metrics`. Any Status error from user map/reduce code
  /// aborts the job and is returned.
  Status Run(const JobConfig& config, const Dataset& input, Dataset* output,
             JobMetrics* metrics);

 private:
  EngineOptions options_;
  ThreadPool pool_;
};

}  // namespace fsjoin::mr

#endif  // FSJOIN_MR_ENGINE_H_
