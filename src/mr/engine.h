#ifndef FSJOIN_MR_ENGINE_H_
#define FSJOIN_MR_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "mr/job.h"
#include "mr/kv.h"
#include "mr/metrics.h"
#include "mr/runner.h"
#include "util/status.h"

namespace fsjoin::mr {

/// Smallest meaningful shuffle memory cap: one spill charge must be able
/// to account at least a few records, or every AddBuffer would thrash a
/// run file per record. Values below this (but nonzero) are configuration
/// errors, caught by EngineOptions::Validate().
inline constexpr uint64_t kMinShuffleMemoryBytes = 64;

/// Engine construction knobs.
struct EngineOptions {
  /// Worker threads for running tasks (0 = inline).
  size_t num_threads = 0;
  /// Per-job cap on shuffle arena payload bytes (0 = unlimited, shuffle
  /// stays fully in memory). When a job's buffered shuffle data exceeds
  /// the cap — or the process-wide store::ProcessMemoryBudget() trips —
  /// shards spill key-sorted run files to disk and the reduce side streams
  /// a k-way merge. Results are byte-identical to the in-memory path.
  uint64_t shuffle_memory_bytes = 0;
  /// Base directory for spill runs and task interchange files; every job
  /// creates (and removes, even on failure) its own unique subdirectory
  /// underneath. Empty = system temp directory. Used when
  /// shuffle_memory_bytes > 0 or the runner is process-isolated.
  std::string spill_dir;
  /// How task attempts execute (mr/runner.h). kThreads with num_threads
  /// == 0 reproduces the seed engine exactly: inline, deterministic.
  RunnerKind runner = RunnerKind::kThreads;
  /// Re-executions allowed per failed task, on runners whose attempts are
  /// hermetic (subprocess). In-process runners fail the job on first error
  /// regardless — a half-run reducer may have mutated shared state.
  int task_retries = 2;
  /// Externally-owned runner overriding `runner`; must outlive the engine.
  /// Needed for RunnerKind::kCluster, whose runner lives in src/net (it
  /// needs sockets the mr layer knows nothing about) and is built via
  /// net::ClusterTaskRunner::Create, not MakeTaskRunner.
  TaskRunner* external_runner = nullptr;

  /// Checks knob ranges (negative retry budget, sub-arena-block shuffle
  /// cap) and returns a descriptive InvalidArgument instead of letting a
  /// job misbehave later. Run() calls this first.
  Status Validate() const;
};

/// In-process MapReduce engine. Substitutes for the paper's Hadoop cluster:
/// the execution semantics (record-at-a-time map, optional combiner,
/// hash-partitioned sort-merge shuffle, grouped reduce) match Hadoop's, and
/// every phase is instrumented so algorithmic costs (duplicates, shuffle
/// bytes, reducer skew) are measured exactly. Cluster-size effects are
/// replayed from the per-task metrics by ClusterSimulator.
///
/// Data plane: emitted records land in per-partition byte arenas (KvBuffer),
/// the shuffle moves arenas rather than records, keys are sorted via an
/// 8-byte integer tag (mr/shuffle.h), and reducers see string_view windows
/// over the sorted arena — a record's bytes are copied exactly twice per
/// job: map emit into the arena, reduce emit out of it.
class Engine {
 public:
  /// \param num_threads worker threads for running tasks (0 = inline).
  explicit Engine(size_t num_threads = 0);
  explicit Engine(const EngineOptions& options);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs one job over `input`, appending results (in reduce-partition
  /// order, keys sorted within a partition) to `*output` and the job's
  /// counters to `*metrics`. Any Status error from user map/reduce code
  /// aborts the job and is returned. Execution is coordinated by a
  /// TaskScheduler over the configured TaskRunner: map tasks, a parent-
  /// side shuffle, then reduce tasks; on the subprocess runner each task
  /// attempt runs in its own child and failed attempts are re-executed
  /// within the retry budget.
  Status Run(const JobConfig& config, const Dataset& input, Dataset* output,
             JobMetrics* metrics);

  const TaskRunner& runner() const { return *runner_; }

 private:
  EngineOptions options_;
  std::unique_ptr<TaskRunner> owned_runner_;
  /// The runner in use: options_.external_runner if set, else
  /// owned_runner_.get(). Null only for kCluster without an external
  /// runner, which Run() rejects with an actionable error.
  TaskRunner* runner_ = nullptr;
};

}  // namespace fsjoin::mr

#endif  // FSJOIN_MR_ENGINE_H_
