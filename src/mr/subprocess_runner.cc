#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#ifndef _WIN32
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "mr/runner.h"

namespace fsjoin::mr {

namespace {

std::function<bool(const TaskSpec&)>& FaultHook() {
  static std::function<bool(const TaskSpec&)>* hook =
      new std::function<bool(const TaskSpec&)>();
  return *hook;
}

std::atomic<bool> g_worker_mode_available{false};

Status WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open " + path);
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), file);
  const bool ok = written == bytes.size() && std::fclose(file) == 0;
  return ok ? Status::OK() : Status::IoError("short write to " + path);
}

#ifndef _WIN32
/// Leaves a torn, unreadable .dat behind — what a worker killed mid-write
/// leaves on a real cluster — then dies with a non-protocol exit code.
[[noreturn]] void DieMidWrite(const std::string& base) {
  std::FILE* file = std::fopen((base + ".dat").c_str(), "wb");
  if (file != nullptr) {
    std::fputs("torn partial task output", file);
    std::fflush(file);
  }
  _exit(3);
}

/// Wall-clock ceiling on one child attempt. A fork-mode child can inherit a
/// COW-copied allocator lock from a parent thread that was mid-malloc at
/// fork() time (ProcessForkMutex serializes fork against context merges, not
/// against allocation on other scheduler threads) and deadlock before its
/// first task instruction; a blocking waitpid would then wedge the whole job.
/// Past the ceiling the child is killed and the attempt fails over to the
/// scheduler's retry budget — the subprocess twin of the cluster runner's
/// heartbeat death detection.
int64_t AttemptTimeoutMs() {
  const char* env = std::getenv("FSJOIN_TASK_TIMEOUT_MS");
  if (env != nullptr && *env != '\0') {
    const long long ms = std::atoll(env);
    if (ms > 0) return static_cast<int64_t>(ms);
  }
  return 60'000;
}

std::string DescribeWaitStatus(int status) {
  if (WIFEXITED(status)) {
    return "exited with code " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return "killed by signal " + std::to_string(WTERMSIG(status));
  }
  return "stopped with status " + std::to_string(status);
}
#endif  // !_WIN32

}  // namespace

std::mutex& ProcessForkMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

void SetSubprocessTaskFaultHook(std::function<bool(const TaskSpec&)> hook) {
  FaultHook() = std::move(hook);
}

bool WorkerModeAvailable() {
  return g_worker_mode_available.load(std::memory_order_relaxed);
}

void SetWorkerModeAvailable(bool available) {
  g_worker_mode_available.store(available, std::memory_order_relaxed);
}

SubprocessRunner::SubprocessRunner(size_t num_threads) : pool_(num_threads) {
#ifndef _WIN32
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    argv0_ = buf;
  }
#endif
}

void SubprocessRunner::ParallelRun(size_t n,
                                   const std::function<void(size_t)>& fn) {
  pool_.ParallelFor(n, fn);
}

#ifdef _WIN32

Status SubprocessRunner::RunAttempt(const TaskSpec&, const TaskBody&,
                                    const TaskSideChannel&, TaskOutput*) {
  return Status::Unimplemented("subprocess runner requires fork()");
}

#else  // !_WIN32

Status SubprocessRunner::RunAttempt(const TaskSpec& spec_in,
                                    const TaskBody& body,
                                    const TaskSideChannel& side,
                                    TaskOutput* out) {
  if (spec_in.output_base.empty()) {
    return Status::Internal("subprocess task '" + spec_in.job_name +
                            "' has no output_base");
  }
  TaskSpec spec = spec_in;
  // Per-attempt file namespace: a retried attempt never reads the torn
  // leftovers of its predecessor.
  spec.output_base += "-a" + std::to_string(spec_in.attempt);
  const std::string& base = spec.output_base;

  // Exec mode needs three things: a factory name, its registration in this
  // (and therefore the re-execed) binary, and a main() that routes through
  // WorkerTaskMainIfRequested — otherwise re-running the binary would
  // re-run its whole program. Anything less falls back to fork mode.
  const bool exec_mode = !spec.factory.empty() && HasTaskFactory(spec.factory) &&
                         WorkerModeAvailable() && !argv0_.empty();

  pid_t pid = -1;
  if (exec_mode) {
    const std::string spec_path = base + ".spec";
    std::string bytes;
    spec.EncodeTo(&bytes);
    FSJOIN_RETURN_NOT_OK(WriteFileBytes(spec_path, bytes));
    const char* argv[] = {argv0_.c_str(), "--worker-task", spec_path.c_str(),
                          nullptr};
    std::lock_guard<std::mutex> lock(ProcessForkMutex());
    pid = fork();
    if (pid == 0) {
      if (FaultHook() && FaultHook()(spec)) DieMidWrite(base);
      execv(argv[0], const_cast<char* const*>(argv));
      _exit(127);
    }
  } else {
    std::lock_guard<std::mutex> lock(ProcessForkMutex());
    pid = fork();
    if (pid == 0) {
      // Forked child. The parent's pool threads do not exist here and its
      // context mutexes are guaranteed unlocked (fork is serialized against
      // merges). Never unwind into parent-owned destructors: _exit only.
      if (FaultHook() && FaultHook()(spec)) DieMidWrite(base);
      if (side.reset) side.reset();
      TaskOutput child_out;
      Status st = body(spec, &child_out);
      if (st.ok() && side.capture) child_out.side_state = side.capture();
      if (st.ok()) st = WriteTaskOutputFiles(base, child_out);
      if (st.ok()) _exit(0);
      WriteTaskError(base, st);
      _exit(2);
    }
  }
  if (pid < 0) {
    return Status::Internal("fork failed for task '" + spec.job_name + "/" +
                            TaskKindName(spec.kind) + std::to_string(spec.task_index) +
                            "': " + std::strerror(errno));
  }

  const int64_t timeout_ms = AttemptTimeoutMs();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  int status = 0;
  pid_t waited = 0;
  bool timed_out = false;
  for (int64_t poll_us = 200;;) {
    waited = waitpid(pid, &status, WNOHANG);
    if (waited < 0 && errno == EINTR) continue;
    if (waited != 0) break;  // Reaped, or a real waitpid error.
    if (std::chrono::steady_clock::now() >= deadline) {
      timed_out = true;
      kill(pid, SIGKILL);
      do {
        waited = waitpid(pid, &status, 0);
      } while (waited < 0 && errno == EINTR);
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(poll_us));
    if (poll_us < 20'000) poll_us *= 2;
  }
  if (waited < 0) {
    return Status::Internal("waitpid failed: " + std::string(std::strerror(errno)));
  }
  if (timed_out) {
    return Status::Internal(
        "task '" + spec.job_name + "/" + TaskKindName(spec.kind) +
        std::to_string(spec.task_index) + "' attempt " +
        std::to_string(spec.attempt) + " timed out after " +
        std::to_string(timeout_ms) + " ms; child killed");
  }

  if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
    return ReadTaskOutputFiles(base, out);
  }
  if (WIFEXITED(status) && WEXITSTATUS(status) == 2) {
    // Protocol error exit: the child persisted its real Status.
    Status persisted;
    if (ReadTaskError(base, &persisted).ok()) return persisted;
  }
  return Status::Internal(
      "task '" + spec.job_name + "/" + TaskKindName(spec.kind) +
      std::to_string(spec.task_index) + "' attempt " +
      std::to_string(spec.attempt) + " subprocess " +
      DescribeWaitStatus(status));
}

#endif  // _WIN32

}  // namespace fsjoin::mr
