#ifndef FSJOIN_MR_TASK_H_
#define FSJOIN_MR_TASK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mr/job.h"
#include "mr/kv.h"
#include "mr/metrics.h"
#include "util/status.h"

namespace fsjoin::mr {

/// The serializable task layer: one engine/flow stage becomes a set of
/// TaskSpec descriptors that a TaskRunner (mr/runner.h) executes and a
/// TaskScheduler (mr/scheduler.h) retries. A spec carries only data — job
/// stage, partition range, input run files, output paths — so it can cross
/// a process boundary; user map/reduce logic is resolved on the far side by
/// a registered task-factory name (closures cannot be serialized).

enum class TaskKind : uint32_t {
  kMap = 0,
  kReduce = 1,
};

const char* TaskKindName(TaskKind kind);

/// One remote map output a reduce task pulls over the network shuffle:
/// the worker holding `endpoint` retained (job, map_task)'s sorted
/// partitions and serves them over its shuffle port (net/frame.h).
struct ShuffleSource {
  std::string job;
  uint32_t map_task = 0;
  /// "host:port" of the holder's shuffle server. The cluster runner fills
  /// this from its location table at dispatch time; the engine leaves it
  /// empty.
  std::string endpoint;
};

/// Serde-encoded descriptor of one task attempt. Everything a worker
/// process needs to re-execute the task lives here; in-process runners
/// additionally receive the stage's TaskBody closure, which may capture
/// state a subprocess would instead reach through `factory`/`input_runs`.
struct TaskSpec {
  /// Job (engine backend) or pipeline stage (flow backend) this task
  /// belongs to; used for diagnostics and output naming only.
  std::string job_name;
  TaskKind kind = TaskKind::kMap;
  /// Task index within its stage: map split number or reduce partition.
  uint32_t task_index = 0;
  /// Reduce partition count of the stage (map tasks route emits by it).
  uint32_t num_partitions = 1;
  /// Map tasks: half-open record range of the stage input this task owns.
  uint64_t input_begin = 0;
  uint64_t input_end = 0;
  /// Input run files (store/run_file.h format). Reduce tasks under an
  /// isolated runner read and merge these; map tasks in --worker-task mode
  /// read their input split from them.
  std::vector<std::string> input_runs;
  /// Path prefix for this task's interchange files. The runner appends
  /// "-a<attempt>" plus ".spec"/".dat"/".res"/".err" suffixes.
  std::string output_base;
  /// Registered task-factory name (empty = closure-only task: runnable
  /// in-process or in a forked child, but not via binary re-exec).
  std::string factory;
  /// Opaque parameter bytes handed to the factory on the worker side.
  std::string payload;
  /// Zero-based attempt number, assigned by the scheduler.
  uint32_t attempt = 0;
  /// Map tasks under a distributed runner: keep the sorted per-partition
  /// output resident on the executing worker (served via its shuffle port)
  /// instead of shipping it back; the result then carries only
  /// TaskOutput::partition_stats.
  bool retain_shuffle = false;
  /// Reduce tasks under a distributed runner: the retained map outputs to
  /// pull and merge, in map-task order (the loser tree's source-index
  /// tie-break makes that order part of the result's byte identity).
  std::vector<ShuffleSource> shuffle_sources;

  void EncodeTo(std::string* dst) const;
  static Result<TaskSpec> Decode(std::string_view data);
};

/// Record/byte counts of one retained shuffle partition.
struct PartitionStat {
  uint64_t records = 0;
  uint64_t bytes = 0;
};

/// Everything one task attempt produces. Exactly one of the data members
/// is populated, by stage type: `partitions` for engine map tasks (one
/// KvBuffer per reduce partition), `buckets` for flow map tasks (one
/// Dataset per destination), `records` for reduce tasks.
struct TaskOutput {
  std::vector<KvBuffer> partitions;
  std::vector<Dataset> buckets;
  Dataset records;
  TaskMetrics metrics;
  /// Map tasks with a combiner: records fed into the combiner.
  uint64_t combine_input_records = 0;
  /// Captured TaskSideChannel bytes (subprocess runner only); merged into
  /// the parent's shared context exactly once by the scheduler.
  std::string side_state;
  /// Map tasks with TaskSpec::retain_shuffle: per-reduce-partition record
  /// and byte counts of the retained output (the data itself stayed on the
  /// worker). Size == num_partitions when set.
  std::vector<PartitionStat> partition_stats;
  /// "host:port" of the shuffle server holding this task's retained
  /// output; filled by the cluster runner from the executing worker.
  std::string shuffle_endpoint;
};

/// The work of one task, shared by every runner: in-process runners call it
/// directly, the subprocess runner calls it in a forked child or re-execed
/// worker. Must be safe to invoke multiple times with the same spec (the
/// scheduler re-runs failed tasks).
using TaskBody = std::function<Status(const TaskSpec&, TaskOutput*)>;

/// User-logic bundle a task-factory name resolves to.
struct TaskFactories {
  MapperFactory mapper;
  ReducerFactory reducer;
  ReducerFactory combiner;  ///< may be null
  std::shared_ptr<const Partitioner> partitioner;  ///< null = HashPartitioner
};

using TaskFactoryFn =
    std::function<Result<TaskFactories>(const std::string& payload)>;

/// Registers `name` in the process-wide task-factory registry (typically
/// from a namespace-scope initializer). Returns false if the name is
/// already taken. A job whose JobConfig::task_factory names a registered
/// factory can run its tasks via binary re-exec (--worker-task mode).
bool RegisterTaskFactory(const std::string& name, TaskFactoryFn fn);
bool HasTaskFactory(const std::string& name);
Result<TaskFactories> ResolveTaskFactory(const std::string& name,
                                         const std::string& payload);

/// Runs one map task over `input[0..count)`: Setup, record-at-a-time Map,
/// Finish, optional per-partition combine — exactly the seed engine's map
/// task — leaving per-reduce-partition arenas in out->partitions and the
/// task counters in out->metrics.
Status ExecuteMapTask(const TaskSpec& spec, const TaskFactories& factories,
                      const KeyValue* input, size_t count, TaskOutput* out);

/// Runs one reduce task whose input lives entirely in spec.input_runs:
/// streams a loser-tree merge of the runs through the reducer (identical
/// grouping to the in-memory path). Zero runs still runs Setup/Finish —
/// Finish may emit.
Status ExecuteReduceTaskFromRuns(const TaskSpec& spec,
                                 const TaskFactories& factories,
                                 TaskOutput* out);

/// Writes a task's results as interchange files under `base`:
///   base.dat — every record of every group, in order, as one CRC32C-framed
///              run file (store/run_file.h);
///   base.res — a one-record run file whose value encodes the group shape,
///              per-group record counts, TaskMetrics and side-channel bytes.
/// Both files are covered by frame CRCs and a checksummed footer, so a
/// child that dies mid-write is detected as corruption, not read as truth.
Status WriteTaskOutputFiles(const std::string& base, const TaskOutput& out);

/// Reads files written by WriteTaskOutputFiles, rebuilding the groups in
/// order. Any corruption class detectable by RunReader surfaces here.
Status ReadTaskOutputFiles(const std::string& base, TaskOutput* out);

/// Encodes a whole TaskOutput as one serde byte string for socket
/// transport (net/frame.h kTaskResult payload) — the wire sibling of
/// WriteTaskOutputFiles, minus the file indirection. Retained-shuffle map
/// results encode only partition_stats + shuffle_endpoint, not the data.
void EncodeTaskOutputWire(const TaskOutput& out, std::string* dst);

/// Decodes EncodeTaskOutputWire bytes; trailing bytes are Corruption.
Status DecodeTaskOutputWire(std::string_view data, TaskOutput* out);

/// Persists/loads a task attempt's terminal Status (base.err) so a worker
/// exit can carry a real error message across the process boundary. The
/// reader's return value reports whether *error was decoded, not whether
/// the task succeeded (it never did — the file only exists on failure).
Status WriteTaskError(const std::string& base, const Status& error);
Status ReadTaskError(const std::string& base, Status* error);

/// Emitter materializing records into a flat dataset (reduce output).
class VectorEmitter : public Emitter {
 public:
  explicit VectorEmitter(Dataset* out) : out_(out) {}

  void Emit(std::string_view key, std::string_view value) override {
    records_ += 1;
    bytes_ += key.size() + value.size();
    out_->push_back(KeyValue{std::string(key), std::string(value)});
  }

  uint64_t records() const { return records_; }
  uint64_t bytes() const { return bytes_; }

 private:
  Dataset* out_;
  uint64_t records_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace fsjoin::mr

#endif  // FSJOIN_MR_TASK_H_
