#include "mr/task.h"

#include <cstdio>
#include <map>
#include <mutex>
#include <utility>

#include "mr/shuffle.h"
#include "store/merge.h"
#include "store/run_file.h"
#include "util/logging.h"
#include "util/serde.h"
#include "util/timer.h"

namespace fsjoin::mr {

namespace {

/// Emitter that routes pairs into per-reduce-partition arenas and counts
/// them. One instance per map task (single-threaded within the task).
class PartitionedEmitter : public Emitter {
 public:
  PartitionedEmitter(const Partitioner& partitioner, uint32_t num_partitions)
      : partitioner_(partitioner), buffers_(num_partitions) {}

  void Emit(std::string_view key, std::string_view value) override {
    uint32_t p =
        partitioner_.Partition(key, static_cast<uint32_t>(buffers_.size()));
    FSJOIN_CHECK(p < buffers_.size());
    records_ += 1;
    bytes_ += key.size() + value.size();
    buffers_[p].Append(key, value);
  }

  std::vector<KvBuffer>& buffers() { return buffers_; }
  uint64_t records() const { return records_; }
  uint64_t bytes() const { return bytes_; }

 private:
  const Partitioner& partitioner_;
  std::vector<KvBuffer> buffers_;
  uint64_t records_ = 0;
  uint64_t bytes_ = 0;
};

/// Emitter appending to a single arena (combiner output).
class BufferEmitter : public Emitter {
 public:
  explicit BufferEmitter(KvBuffer* out) : out_(out) {}

  void Emit(std::string_view key, std::string_view value) override {
    records_ += 1;
    bytes_ += key.size() + value.size();
    out_->Append(key, value);
  }

  uint64_t records() const { return records_; }
  uint64_t bytes() const { return bytes_; }

 private:
  KvBuffer* out_;
  uint64_t records_ = 0;
  uint64_t bytes_ = 0;
};

/// Sorts and combines one map-task partition buffer in place.
Status CombineBuffer(const ReducerFactory& combiner_factory, KvBuffer* buffer,
                     uint64_t* out_records, uint64_t* out_bytes) {
  ShuffleShard shard;
  FSJOIN_RETURN_NOT_OK(shard.AddBuffer(std::move(*buffer)));
  shard.SortByKey();
  KvBuffer combined;
  BufferEmitter out(&combined);
  std::unique_ptr<Reducer> combiner = combiner_factory();
  FSJOIN_RETURN_NOT_OK(ReduceShard(combiner.get(), shard, &out));
  *out_records += out.records();
  *out_bytes += out.bytes();
  *buffer = std::move(combined);
  return Status::OK();
}

struct Registry {
  std::mutex mu;
  std::map<std::string, TaskFactoryFn> factories;
};

Registry& TaskRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

/// Group shape discriminant in the .res record.
enum ResultGroupKind : uint32_t {
  kGroupPartitions = 0,
  kGroupBuckets = 1,
  kGroupRecords = 2,
};

void EncodeMetrics(const TaskMetrics& tm, std::string* dst) {
  PutVarint64(dst, static_cast<uint64_t>(tm.wall_micros));
  PutVarint64(dst, tm.input_records);
  PutVarint64(dst, tm.input_bytes);
  PutVarint64(dst, tm.output_records);
  PutVarint64(dst, tm.output_bytes);
  PutVarint64(dst, tm.max_group_bytes);
  PutVarint64(dst, tm.spilled_bytes);
  PutVarint32(dst, tm.spill_runs);
}

Status DecodeMetrics(Decoder* dec, TaskMetrics* tm) {
  uint64_t wall = 0;
  FSJOIN_RETURN_NOT_OK(dec->GetVarint64(&wall));
  tm->wall_micros = static_cast<int64_t>(wall);
  FSJOIN_RETURN_NOT_OK(dec->GetVarint64(&tm->input_records));
  FSJOIN_RETURN_NOT_OK(dec->GetVarint64(&tm->input_bytes));
  FSJOIN_RETURN_NOT_OK(dec->GetVarint64(&tm->output_records));
  FSJOIN_RETURN_NOT_OK(dec->GetVarint64(&tm->output_bytes));
  FSJOIN_RETURN_NOT_OK(dec->GetVarint64(&tm->max_group_bytes));
  FSJOIN_RETURN_NOT_OK(dec->GetVarint64(&tm->spilled_bytes));
  FSJOIN_RETURN_NOT_OK(dec->GetVarint32(&tm->spill_runs));
  return Status::OK();
}

}  // namespace

const char* TaskKindName(TaskKind kind) {
  switch (kind) {
    case TaskKind::kMap:
      return "map";
    case TaskKind::kReduce:
      return "reduce";
  }
  return "?";
}

void TaskSpec::EncodeTo(std::string* dst) const {
  PutLengthPrefixed(dst, job_name);
  PutVarint32(dst, static_cast<uint32_t>(kind));
  PutVarint32(dst, task_index);
  PutVarint32(dst, num_partitions);
  PutVarint64(dst, input_begin);
  PutVarint64(dst, input_end);
  PutVarint32(dst, static_cast<uint32_t>(input_runs.size()));
  for (const std::string& run : input_runs) PutLengthPrefixed(dst, run);
  PutLengthPrefixed(dst, output_base);
  PutLengthPrefixed(dst, factory);
  PutLengthPrefixed(dst, payload);
  PutVarint32(dst, attempt);
  PutVarint32(dst, retain_shuffle ? 1 : 0);
  PutVarint32(dst, static_cast<uint32_t>(shuffle_sources.size()));
  for (const ShuffleSource& src : shuffle_sources) {
    PutLengthPrefixed(dst, src.job);
    PutVarint32(dst, src.map_task);
    PutLengthPrefixed(dst, src.endpoint);
  }
}

Result<TaskSpec> TaskSpec::Decode(std::string_view data) {
  Decoder dec(data);
  TaskSpec spec;
  std::string_view view;
  FSJOIN_RETURN_NOT_OK(dec.GetLengthPrefixed(&view));
  spec.job_name = std::string(view);
  uint32_t kind = 0;
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&kind));
  if (kind > static_cast<uint32_t>(TaskKind::kReduce)) {
    return Status::Corruption("task spec: bad kind " + std::to_string(kind));
  }
  spec.kind = static_cast<TaskKind>(kind);
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&spec.task_index));
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&spec.num_partitions));
  FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&spec.input_begin));
  FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&spec.input_end));
  uint32_t num_runs = 0;
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&num_runs));
  spec.input_runs.reserve(num_runs);
  for (uint32_t i = 0; i < num_runs; ++i) {
    FSJOIN_RETURN_NOT_OK(dec.GetLengthPrefixed(&view));
    spec.input_runs.emplace_back(view);
  }
  FSJOIN_RETURN_NOT_OK(dec.GetLengthPrefixed(&view));
  spec.output_base = std::string(view);
  FSJOIN_RETURN_NOT_OK(dec.GetLengthPrefixed(&view));
  spec.factory = std::string(view);
  FSJOIN_RETURN_NOT_OK(dec.GetLengthPrefixed(&view));
  spec.payload = std::string(view);
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&spec.attempt));
  uint32_t retain = 0;
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&retain));
  if (retain > 1) {
    return Status::Corruption("task spec: bad retain-shuffle flag " +
                              std::to_string(retain));
  }
  spec.retain_shuffle = retain == 1;
  uint32_t num_sources = 0;
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&num_sources));
  spec.shuffle_sources.reserve(num_sources);
  for (uint32_t i = 0; i < num_sources; ++i) {
    ShuffleSource src;
    FSJOIN_RETURN_NOT_OK(dec.GetLengthPrefixed(&view));
    src.job = std::string(view);
    FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&src.map_task));
    FSJOIN_RETURN_NOT_OK(dec.GetLengthPrefixed(&view));
    src.endpoint = std::string(view);
    spec.shuffle_sources.push_back(std::move(src));
  }
  if (!dec.done()) {
    return Status::Corruption("task spec: trailing bytes");
  }
  return spec;
}

bool RegisterTaskFactory(const std::string& name, TaskFactoryFn fn) {
  Registry& registry = TaskRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.factories.emplace(name, std::move(fn)).second;
}

bool HasTaskFactory(const std::string& name) {
  Registry& registry = TaskRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.factories.count(name) > 0;
}

Result<TaskFactories> ResolveTaskFactory(const std::string& name,
                                         const std::string& payload) {
  TaskFactoryFn fn;
  {
    Registry& registry = TaskRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.factories.find(name);
    if (it == registry.factories.end()) {
      return Status::NotFound("task factory not registered: " + name);
    }
    fn = it->second;
  }
  return fn(payload);
}

Status ExecuteMapTask(const TaskSpec& spec, const TaskFactories& factories,
                      const KeyValue* input, size_t count, TaskOutput* out) {
  WallTimer timer;
  std::shared_ptr<const Partitioner> partitioner = factories.partitioner;
  if (partitioner == nullptr) partitioner = std::make_shared<HashPartitioner>();

  std::unique_ptr<Mapper> mapper = factories.mapper();
  PartitionedEmitter emitter(*partitioner, spec.num_partitions);
  Status st = mapper->Setup();
  uint64_t in_bytes = 0;
  for (size_t i = 0; st.ok() && i < count; ++i) {
    in_bytes += input[i].SizeBytes();
    st = mapper->Map(input[i], &emitter);
  }
  if (st.ok()) st = mapper->Finish(&emitter);

  uint64_t out_records = emitter.records();
  uint64_t out_bytes = emitter.bytes();

  // Optional combiner: applied per partition buffer, like Hadoop's
  // spill-time combine.
  if (st.ok() && factories.combiner) {
    out->combine_input_records = out_records;
    out_records = 0;
    out_bytes = 0;
    for (KvBuffer& buffer : emitter.buffers()) {
      st = CombineBuffer(factories.combiner, &buffer, &out_records,
                         &out_bytes);
      if (!st.ok()) break;
    }
  }
  FSJOIN_RETURN_NOT_OK(st);

  out->partitions = std::move(emitter.buffers());
  TaskMetrics& tm = out->metrics;
  tm.wall_micros = timer.ElapsedMicros();
  tm.input_records = count;
  tm.input_bytes = in_bytes;
  tm.output_records = out_records;
  tm.output_bytes = out_bytes;
  return Status::OK();
}

Status ExecuteReduceTaskFromRuns(const TaskSpec& spec,
                                 const TaskFactories& factories,
                                 TaskOutput* out) {
  WallTimer timer;
  TaskMetrics& tm = out->metrics;
  std::vector<std::unique_ptr<store::RecordStream>> sources;
  sources.reserve(spec.input_runs.size());
  for (const std::string& path : spec.input_runs) {
    FSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<store::RunReader> reader,
                            store::RunReader::Open(path));
    tm.input_records += reader->records();
    tm.input_bytes += reader->payload_bytes();
    sources.push_back(std::move(reader));
  }

  VectorEmitter emit(&out->records);
  std::unique_ptr<Reducer> reducer = factories.reducer();
  Status st;
  if (sources.empty()) {
    st = reducer->Setup();
    if (st.ok()) st = reducer->Finish(&emit);
  } else {
    store::LoserTreeMerge merge(std::move(sources));
    st = ReduceMergedStream(reducer.get(), &merge, &emit, &tm.max_group_bytes);
  }
  FSJOIN_RETURN_NOT_OK(st);

  tm.wall_micros = timer.ElapsedMicros();
  tm.output_records = emit.records();
  tm.output_bytes = emit.bytes();
  return Status::OK();
}

Status WriteTaskOutputFiles(const std::string& base, const TaskOutput& out) {
  // base.dat: every record of every group, concatenated in group order.
  // Not key-sorted in general — the run framing is used for its CRC'd
  // transport, and ReadTaskOutputFiles restores the exact order.
  store::RunWriter data(base + ".dat");
  FSJOIN_RETURN_NOT_OK(data.Open());

  std::string result;
  if (!out.buckets.empty()) {
    PutVarint32(&result, kGroupBuckets);
    PutVarint32(&result, static_cast<uint32_t>(out.buckets.size()));
    for (const Dataset& bucket : out.buckets) {
      PutVarint64(&result, bucket.size());
      for (const KeyValue& kv : bucket) {
        FSJOIN_RETURN_NOT_OK(data.Add(kv.key, kv.value));
      }
    }
  } else if (!out.partitions.empty()) {
    PutVarint32(&result, kGroupPartitions);
    PutVarint32(&result, static_cast<uint32_t>(out.partitions.size()));
    for (const KvBuffer& buffer : out.partitions) {
      PutVarint64(&result, buffer.size());
      for (size_t i = 0; i < buffer.size(); ++i) {
        FSJOIN_RETURN_NOT_OK(data.Add(buffer.key(i), buffer.value(i)));
      }
    }
  } else {
    PutVarint32(&result, kGroupRecords);
    PutVarint32(&result, 1);
    PutVarint64(&result, out.records.size());
    for (const KeyValue& kv : out.records) {
      FSJOIN_RETURN_NOT_OK(data.Add(kv.key, kv.value));
    }
  }
  FSJOIN_RETURN_NOT_OK(data.Finish());

  // base.res: one-record run whose value is the result footer — group
  // shape, per-group counts, metrics and side-channel bytes — integrity-
  // checked by the run file's own frame CRC + footer.
  EncodeMetrics(out.metrics, &result);
  PutVarint64(&result, out.combine_input_records);
  PutLengthPrefixed(&result, out.side_state);
  store::RunWriter res(base + ".res");
  FSJOIN_RETURN_NOT_OK(res.Open());
  FSJOIN_RETURN_NOT_OK(res.Add("res", result));
  return res.Finish();
}

Status ReadTaskOutputFiles(const std::string& base, TaskOutput* out) {
  std::string result;
  {
    FSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<store::RunReader> res,
                            store::RunReader::Open(base + ".res"));
    bool has = false;
    std::string_view key, value;
    FSJOIN_RETURN_NOT_OK(res->Next(&has, &key, &value));
    if (!has || key != "res") {
      return Status::Corruption("task result " + base + ".res: bad record");
    }
    result = std::string(value);
    FSJOIN_RETURN_NOT_OK(res->Next(&has, &key, &value));
    if (has) {
      return Status::Corruption("task result " + base +
                                ".res: trailing records");
    }
  }

  Decoder dec(result);
  uint32_t group_kind = 0;
  uint32_t num_groups = 0;
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&group_kind));
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&num_groups));
  if (group_kind > kGroupRecords) {
    return Status::Corruption("task result: bad group kind");
  }
  std::vector<uint64_t> counts(num_groups, 0);
  for (uint64_t& c : counts) FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&c));
  FSJOIN_RETURN_NOT_OK(DecodeMetrics(&dec, &out->metrics));
  FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&out->combine_input_records));
  std::string_view side;
  FSJOIN_RETURN_NOT_OK(dec.GetLengthPrefixed(&side));
  out->side_state = std::string(side);
  if (!dec.done()) {
    return Status::Corruption("task result: trailing bytes");
  }

  FSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<store::RunReader> data,
                          store::RunReader::Open(base + ".dat"));
  auto next = [&](std::string_view* key, std::string_view* value) -> Status {
    bool has = false;
    FSJOIN_RETURN_NOT_OK(data->Next(&has, key, value));
    if (!has) {
      return Status::Corruption("task data " + base +
                                ".dat: fewer records than result footer");
    }
    return Status::OK();
  };
  std::string_view key, value;
  if (group_kind == kGroupPartitions) {
    out->partitions.resize(num_groups);
    for (uint32_t g = 0; g < num_groups; ++g) {
      for (uint64_t i = 0; i < counts[g]; ++i) {
        FSJOIN_RETURN_NOT_OK(next(&key, &value));
        out->partitions[g].Append(key, value);
      }
    }
  } else if (group_kind == kGroupBuckets) {
    out->buckets.resize(num_groups);
    for (uint32_t g = 0; g < num_groups; ++g) {
      out->buckets[g].reserve(counts[g]);
      for (uint64_t i = 0; i < counts[g]; ++i) {
        FSJOIN_RETURN_NOT_OK(next(&key, &value));
        out->buckets[g].push_back(KeyValue{std::string(key),
                                           std::string(value)});
      }
    }
  } else {
    if (num_groups != 1) {
      return Status::Corruption("task result: record output needs 1 group");
    }
    out->records.reserve(counts[0]);
    for (uint64_t i = 0; i < counts[0]; ++i) {
      FSJOIN_RETURN_NOT_OK(next(&key, &value));
      out->records.push_back(KeyValue{std::string(key), std::string(value)});
    }
  }
  bool has = false;
  FSJOIN_RETURN_NOT_OK(data->Next(&has, &key, &value));
  if (has) {
    return Status::Corruption("task data " + base +
                              ".dat: more records than result footer");
  }
  return Status::OK();
}

void EncodeTaskOutputWire(const TaskOutput& out, std::string* dst) {
  // Same footer layout as the .res file, followed by the data records
  // inline (the frame's payload CRC plays the run file's role).
  if (!out.buckets.empty()) {
    PutVarint32(dst, kGroupBuckets);
    PutVarint32(dst, static_cast<uint32_t>(out.buckets.size()));
    for (const Dataset& bucket : out.buckets) {
      PutVarint64(dst, bucket.size());
    }
  } else if (!out.partitions.empty()) {
    PutVarint32(dst, kGroupPartitions);
    PutVarint32(dst, static_cast<uint32_t>(out.partitions.size()));
    for (const KvBuffer& buffer : out.partitions) {
      PutVarint64(dst, buffer.size());
    }
  } else {
    PutVarint32(dst, kGroupRecords);
    PutVarint32(dst, 1);
    PutVarint64(dst, out.records.size());
  }
  EncodeMetrics(out.metrics, dst);
  PutVarint64(dst, out.combine_input_records);
  PutLengthPrefixed(dst, out.side_state);
  PutVarint32(dst, static_cast<uint32_t>(out.partition_stats.size()));
  for (const PartitionStat& stat : out.partition_stats) {
    PutVarint64(dst, stat.records);
    PutVarint64(dst, stat.bytes);
  }
  PutLengthPrefixed(dst, out.shuffle_endpoint);
  for (const Dataset& bucket : out.buckets) {
    for (const KeyValue& kv : bucket) {
      PutLengthPrefixed(dst, kv.key);
      PutLengthPrefixed(dst, kv.value);
    }
  }
  for (const KvBuffer& buffer : out.partitions) {
    for (size_t i = 0; i < buffer.size(); ++i) {
      PutLengthPrefixed(dst, buffer.key(i));
      PutLengthPrefixed(dst, buffer.value(i));
    }
  }
  for (const KeyValue& kv : out.records) {
    PutLengthPrefixed(dst, kv.key);
    PutLengthPrefixed(dst, kv.value);
  }
}

Status DecodeTaskOutputWire(std::string_view data, TaskOutput* out) {
  Decoder dec(data);
  uint32_t group_kind = 0;
  uint32_t num_groups = 0;
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&group_kind));
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&num_groups));
  if (group_kind > kGroupRecords) {
    return Status::Corruption("task result wire: bad group kind");
  }
  std::vector<uint64_t> counts(num_groups, 0);
  for (uint64_t& c : counts) FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&c));
  FSJOIN_RETURN_NOT_OK(DecodeMetrics(&dec, &out->metrics));
  FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&out->combine_input_records));
  std::string_view view;
  FSJOIN_RETURN_NOT_OK(dec.GetLengthPrefixed(&view));
  out->side_state = std::string(view);
  uint32_t num_stats = 0;
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&num_stats));
  out->partition_stats.resize(num_stats);
  for (PartitionStat& stat : out->partition_stats) {
    FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&stat.records));
    FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&stat.bytes));
  }
  FSJOIN_RETURN_NOT_OK(dec.GetLengthPrefixed(&view));
  out->shuffle_endpoint = std::string(view);

  auto next = [&](std::string_view* key, std::string_view* value) -> Status {
    FSJOIN_RETURN_NOT_OK(dec.GetLengthPrefixed(key));
    return dec.GetLengthPrefixed(value);
  };
  std::string_view key, value;
  if (group_kind == kGroupPartitions) {
    out->partitions.resize(num_groups);
    for (uint32_t g = 0; g < num_groups; ++g) {
      for (uint64_t i = 0; i < counts[g]; ++i) {
        FSJOIN_RETURN_NOT_OK(next(&key, &value));
        out->partitions[g].Append(key, value);
      }
    }
  } else if (group_kind == kGroupBuckets) {
    out->buckets.resize(num_groups);
    for (uint32_t g = 0; g < num_groups; ++g) {
      out->buckets[g].reserve(counts[g]);
      for (uint64_t i = 0; i < counts[g]; ++i) {
        FSJOIN_RETURN_NOT_OK(next(&key, &value));
        out->buckets[g].push_back(KeyValue{std::string(key),
                                           std::string(value)});
      }
    }
  } else {
    if (num_groups != 1) {
      return Status::Corruption("task result wire: record output needs 1 group");
    }
    out->records.reserve(counts[0]);
    for (uint64_t i = 0; i < counts[0]; ++i) {
      FSJOIN_RETURN_NOT_OK(next(&key, &value));
      out->records.push_back(KeyValue{std::string(key), std::string(value)});
    }
  }
  if (!dec.done()) {
    return Status::Corruption("task result wire: trailing bytes");
  }
  return Status::OK();
}

Status WriteTaskError(const std::string& base, const Status& error) {
  std::string encoded;
  PutVarint32(&encoded, static_cast<uint32_t>(error.code()));
  PutLengthPrefixed(&encoded, error.message());
  const std::string path = base + ".err";
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open " + path);
  }
  const size_t written = std::fwrite(encoded.data(), 1, encoded.size(), file);
  const bool ok = written == encoded.size() && std::fclose(file) == 0;
  return ok ? Status::OK() : Status::IoError("short write to " + path);
}

Status ReadTaskError(const std::string& base, Status* error) {
  const std::string path = base + ".err";
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open " + path);
  }
  std::string encoded;
  char buf[512];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    encoded.append(buf, n);
  }
  std::fclose(file);
  Decoder dec(encoded);
  uint32_t code = 0;
  std::string_view message;
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&code));
  FSJOIN_RETURN_NOT_OK(dec.GetLengthPrefixed(&message));
  if (code > static_cast<uint32_t>(StatusCode::kCorruption) || code == 0) {
    return Status::Corruption("task error file " + path + ": bad code");
  }
  *error = Status(static_cast<StatusCode>(code), std::string(message));
  return Status::OK();
}

}  // namespace fsjoin::mr
