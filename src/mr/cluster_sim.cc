#include "mr/cluster_sim.h"

#include <algorithm>
#include <queue>

#include "util/logging.h"

namespace fsjoin::mr {

double ListScheduleMakespan(const std::vector<double>& task_micros,
                            uint32_t slots) {
  FSJOIN_CHECK(slots > 0);
  if (task_micros.empty()) return 0.0;
  // Min-heap of slot completion times.
  std::priority_queue<double, std::vector<double>, std::greater<double>> heap;
  for (uint32_t s = 0; s < slots; ++s) heap.push(0.0);
  double makespan = 0.0;
  for (double t : task_micros) {
    double start = heap.top();
    heap.pop();
    double finish = start + t;
    makespan = std::max(makespan, finish);
    heap.push(finish);
  }
  return makespan;
}

SimulatedJobTime SimulateJob(const JobMetrics& job, uint32_t num_nodes,
                             const ClusterCostModel& model) {
  FSJOIN_CHECK(num_nodes > 0);
  const uint32_t slots = num_nodes * std::max<uint32_t>(model.slots_per_node, 1);

  SimulatedJobTime sim;

  std::vector<double> map_costs;
  map_costs.reserve(job.map_tasks.size());
  for (const TaskMetrics& t : job.map_tasks) {
    // Startup/teardown is paid per attempt: a task the scheduler re-ran
    // after a failure launched (attempts) containers, not one.
    map_costs.push_back(static_cast<double>(t.wall_micros) +
                        model.per_task_overhead_micros *
                            std::max<uint32_t>(t.attempts, 1));
  }
  sim.map_phase_ms = ListScheduleMakespan(map_costs, slots) / 1000.0;

  // Shuffle: each reduce task pays network transfer for its input bytes.
  std::vector<double> reduce_costs;
  reduce_costs.reserve(job.reduce_tasks.size());
  double total_shuffle_micros = 0.0;
  double total_reduce = 0.0;
  double max_reduce = 0.0;
  for (const TaskMetrics& t : job.reduce_tasks) {
    double shuffle_micros =
        static_cast<double>(t.input_bytes) * model.network_micros_per_byte;
    if (t.spilled_bytes > 0) {
      // The engine actually spilled: charge the measured run-file volume
      // rather than inferring anything.
      shuffle_micros +=
          static_cast<double>(t.spilled_bytes) * model.spill_micros_per_byte;
    } else if (t.max_group_bytes > model.reduce_memory_bytes) {
      // No measured spill, but a group larger than the in-memory budget
      // would force the task's merge through disk on a real cluster:
      // every input byte pays the spill cost.
      shuffle_micros +=
          static_cast<double>(t.input_bytes) * model.spill_micros_per_byte;
    }
    total_shuffle_micros += shuffle_micros;
    double cost = static_cast<double>(t.wall_micros) + shuffle_micros +
                  model.per_task_overhead_micros *
                      std::max<uint32_t>(t.attempts, 1);
    reduce_costs.push_back(cost);
    total_reduce += cost;
    max_reduce = std::max(max_reduce, cost);
  }
  sim.shuffle_ms = total_shuffle_micros / 1000.0;
  sim.reduce_phase_ms = ListScheduleMakespan(reduce_costs, slots) / 1000.0;
  if (!reduce_costs.empty() && total_reduce > 0.0) {
    sim.reduce_balance =
        max_reduce / (total_reduce / static_cast<double>(reduce_costs.size()));
  }
  sim.total_ms = sim.map_phase_ms + sim.reduce_phase_ms;
  return sim;
}

SimulatedJobTime SimulatePipeline(const std::vector<JobMetrics>& jobs,
                                  uint32_t num_nodes,
                                  const ClusterCostModel& model) {
  SimulatedJobTime total;
  total.reduce_balance = 0.0;
  double balance_weight = 0.0;
  for (const JobMetrics& job : jobs) {
    SimulatedJobTime sim = SimulateJob(job, num_nodes, model);
    total.map_phase_ms += sim.map_phase_ms;
    total.reduce_phase_ms += sim.reduce_phase_ms;
    total.shuffle_ms += sim.shuffle_ms;
    total.total_ms += sim.total_ms;
    // Weight per-job balance by its reduce time so the dominant job drives
    // the pipeline-level skew number.
    total.reduce_balance += sim.reduce_balance * sim.reduce_phase_ms;
    balance_weight += sim.reduce_phase_ms;
  }
  if (balance_weight > 0.0) {
    total.reduce_balance /= balance_weight;
  } else {
    total.reduce_balance = 1.0;
  }
  return total;
}

}  // namespace fsjoin::mr
