#include "mr/worker.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "mr/runner.h"
#include "mr/task.h"
#include "store/run_file.h"

namespace fsjoin::mr {

namespace {

Result<std::string> ReadFileBytes(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open " + path);
  }
  std::string bytes;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    bytes.append(buf, n);
  }
  std::fclose(file);
  return bytes;
}

Status ExecuteWorkerTask(const std::string& spec_path, std::string* base) {
  FSJOIN_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(spec_path));
  FSJOIN_ASSIGN_OR_RETURN(TaskSpec spec, TaskSpec::Decode(bytes));
  *base = spec.output_base;
  if (spec.factory.empty()) {
    return Status::InvalidArgument("worker task has no factory name");
  }
  FSJOIN_ASSIGN_OR_RETURN(TaskFactories factories,
                          ResolveTaskFactory(spec.factory, spec.payload));

  TaskOutput out;
  if (spec.kind == TaskKind::kMap) {
    // The map split arrives as run files; materialize it and run the
    // standard map-task body over the records.
    Dataset input;
    for (const std::string& path : spec.input_runs) {
      FSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<store::RunReader> reader,
                              store::RunReader::Open(path));
      input.reserve(input.size() + reader->records());
      bool has = false;
      std::string_view key, value;
      while (true) {
        FSJOIN_RETURN_NOT_OK(reader->Next(&has, &key, &value));
        if (!has) break;
        input.push_back(KeyValue{std::string(key), std::string(value)});
      }
    }
    FSJOIN_RETURN_NOT_OK(
        ExecuteMapTask(spec, factories, input.data(), input.size(), &out));
  } else {
    FSJOIN_RETURN_NOT_OK(ExecuteReduceTaskFromRuns(spec, factories, &out));
  }
  return WriteTaskOutputFiles(spec.output_base, out);
}

}  // namespace

int RunWorkerTask(const std::string& spec_path) {
  std::string base;
  Status st = ExecuteWorkerTask(spec_path, &base);
  if (st.ok()) return 0;
  if (!base.empty()) WriteTaskError(base, st);
  std::fprintf(stderr, "worker task failed: %s\n", st.ToString().c_str());
  return 2;
}

int WorkerTaskMainIfRequested(int argc, char** argv) {
  SetWorkerModeAvailable(true);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--worker-task") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--worker-task needs a spec file\n");
        return 2;
      }
      return RunWorkerTask(argv[i + 1]);
    }
  }
  return -1;
}

}  // namespace fsjoin::mr
