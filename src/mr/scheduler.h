#ifndef FSJOIN_MR_SCHEDULER_H_
#define FSJOIN_MR_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "mr/job.h"
#include "mr/runner.h"
#include "mr/task.h"
#include "util/status.h"

namespace fsjoin::mr {

/// Lifecycle of one logical task inside a stage.
enum class TaskState : uint32_t {
  kPending = 0,
  kRunning = 1,
  kDone = 2,
  kFailed = 3,
};

const char* TaskStateName(TaskState state);

/// Scheduler-side bookkeeping for one logical task.
struct TaskRecord {
  TaskSpec spec;
  TaskState state = TaskState::kPending;
  uint32_t attempts = 0;  ///< attempts started so far
  Status last_error;      ///< of the most recent failed attempt
};

/// Coordinator for one stage of tasks: owns the task list and per-task
/// state, drives attempts through a TaskRunner, re-executes failures within
/// a retry budget, and delivers each task's results downstream exactly once.
///
/// A stage here is a set of independent tasks (the engine's map phase, its
/// reduce phase, one flow pipeline pass); cross-stage ordering — map before
/// shuffle before reduce — is the caller's sequencing, so the "DAG" a job
/// forms is expressed as consecutive RunStage calls over shared state.
///
/// Retry semantics: a failed attempt is re-run only when the runner says
/// attempts are hermetic (TaskRunner::retryable), at most `max_task_retries`
/// times per task; in-process runners fail the stage on first error, like
/// the seed engine. Metrics-merge rule: on_done and the side-channel merge
/// run once per *logical* task, with the final successful attempt's output,
/// after every task finished, in task-index order — so retries never
/// double-count and completion order never leaks into results.
class TaskScheduler {
 public:
  /// `runner` must outlive the scheduler. `max_task_retries` is the number
  /// of re-executions allowed per task after its first attempt.
  TaskScheduler(TaskRunner* runner, int max_task_retries)
      : runner_(runner), max_task_retries_(max_task_retries) {}

  /// Runs every task of a stage to completion (or the stage to failure).
  /// `on_done(spec, output)` places one task's results into the caller's
  /// stage state; it runs on the scheduling thread, exactly once per task.
  Status RunStage(
      std::vector<TaskSpec> specs, const TaskBody& body,
      const TaskSideChannel& side,
      const std::function<Status(const TaskSpec&, TaskOutput)>& on_done);

  /// State of the last RunStage's tasks (for tests and diagnostics).
  const std::vector<TaskRecord>& records() const { return records_; }

 private:
  TaskRunner* runner_;
  int max_task_retries_;
  std::vector<TaskRecord> records_;
};

}  // namespace fsjoin::mr

#endif  // FSJOIN_MR_SCHEDULER_H_
