#ifndef FSJOIN_MR_PIPELINE_H_
#define FSJOIN_MR_PIPELINE_H_

#include <map>
#include <string>
#include <vector>

#include "mr/engine.h"
#include "mr/job.h"
#include "mr/kv.h"
#include "mr/metrics.h"
#include "util/status.h"

namespace fsjoin::mr {

/// In-memory stand-in for HDFS: named datasets passed between chained jobs.
class MiniDfs {
 public:
  /// Stores (or replaces) a dataset under `name`.
  void Put(const std::string& name, Dataset dataset);

  /// Fetches a dataset. NotFound if absent.
  Result<const Dataset*> Get(const std::string& name) const;

  bool Has(const std::string& name) const;
  void Remove(const std::string& name);

  /// Names of all stored datasets (sorted).
  std::vector<std::string> List() const;

 private:
  std::map<std::string, Dataset> datasets_;
};

/// Runs a chain of MapReduce jobs against a MiniDfs, collecting per-job
/// metrics — the shape of a full FS-Join/baseline execution (ordering →
/// filtering → verification).
class Pipeline {
 public:
  /// \param engine  borrowed; must outlive the pipeline.
  /// \param dfs     borrowed; must outlive the pipeline.
  Pipeline(Engine* engine, MiniDfs* dfs) : engine_(engine), dfs_(dfs) {}

  /// Runs `config` reading `input_name` and writing `output_name`.
  Status RunJob(const JobConfig& config, const std::string& input_name,
                const std::string& output_name);

  /// Metrics of every job run so far, in execution order.
  const std::vector<JobMetrics>& history() const { return history_; }

  /// Aggregate of history().
  JobMetrics TotalMetrics(const std::string& name) const;

  MiniDfs* dfs() { return dfs_; }

 private:
  Engine* engine_;
  MiniDfs* dfs_;
  std::vector<JobMetrics> history_;
};

}  // namespace fsjoin::mr

#endif  // FSJOIN_MR_PIPELINE_H_
