#ifndef FSJOIN_MR_RUNNER_H_
#define FSJOIN_MR_RUNNER_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "mr/job.h"
#include "mr/task.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace fsjoin::mr {

/// How a stage's tasks are executed. The data plane (TaskSpec in, TaskOutput
/// out) is identical across runners, so results are byte-identical; runners
/// differ only in *where* a task body runs and what failure isolation the
/// scheduler can rely on.
enum class RunnerKind : uint32_t {
  kInline = 0,      ///< caller's thread, one task at a time
  kThreads = 1,     ///< ThreadPool workers (the seed engine's path)
  kSubprocess = 2,  ///< forked children / re-execed --worker-task processes
  kCluster = 3,     ///< socket RPC workers (net/cluster_runner.h)
};

const char* RunnerKindName(RunnerKind kind);
Result<RunnerKind> RunnerKindFromName(std::string_view name);

/// Executes task attempts for the scheduler. Implementations are owned by
/// one engine/pipeline at a time and reused across its stages.
class TaskRunner {
 public:
  virtual ~TaskRunner() = default;

  virtual const char* name() const = 0;

  /// True when task bodies run in another process: inputs must be reachable
  /// through files (the engine writes transport runs) and shared-context
  /// mutations only travel through the TaskSideChannel.
  virtual bool isolated() const { return false; }

  /// True when a failed attempt may be re-executed. In-process runners
  /// return false: user reducers mutate shared driver context directly, so
  /// a half-run attempt cannot be safely repeated. Subprocess attempts are
  /// hermetic (side effects die with the child) and always retryable.
  virtual bool retryable() const { return false; }

  /// True when tasks run on networked workers that can hold retained map
  /// output: the engine switches to the streaming network shuffle
  /// (TaskSpec::retain_shuffle / shuffle_sources) instead of shipping map
  /// partitions back through the coordinator.
  virtual bool distributed() const { return false; }

  /// Called once after a job's last stage completes (success or failure);
  /// distributed runners release the job's retained shuffle partitions.
  virtual void FinishJob(const std::string& job_name) { (void)job_name; }

  /// Runs fn(i) for i in [0, n), with whatever concurrency the runner has.
  /// Also used by the engine for its parent-side shuffle phase.
  virtual void ParallelRun(size_t n,
                           const std::function<void(size_t)>& fn) = 0;

  /// Executes one attempt of one task. `side` is only consulted by
  /// isolated runners (see TaskSideChannel); the captured bytes come back
  /// in out->side_state for the scheduler to merge.
  virtual Status RunAttempt(const TaskSpec& spec, const TaskBody& body,
                            const TaskSideChannel& side, TaskOutput* out) = 0;
};

/// Runs every task inline on the calling thread.
class InlineRunner : public TaskRunner {
 public:
  const char* name() const override { return "inline"; }
  void ParallelRun(size_t n, const std::function<void(size_t)>& fn) override;
  Status RunAttempt(const TaskSpec& spec, const TaskBody& body,
                    const TaskSideChannel& side, TaskOutput* out) override;
};

/// Runs tasks on an owned ThreadPool — exactly the seed engine's execution
/// model (num_threads == 0 still means "inline on the caller", preserving
/// deterministic-debug mode).
class ThreadPoolRunner : public TaskRunner {
 public:
  explicit ThreadPoolRunner(size_t num_threads) : pool_(num_threads) {}

  const char* name() const override { return "threads"; }
  void ParallelRun(size_t n, const std::function<void(size_t)>& fn) override;
  Status RunAttempt(const TaskSpec& spec, const TaskBody& body,
                    const TaskSideChannel& side, TaskOutput* out) override;

 private:
  ThreadPool pool_;
};

/// Runs each task attempt in its own child process — the "distributed
/// runtime minus the socket". Two transports, chosen per task:
///
///   exec mode — when the spec names a registered task factory and the
///     hosting binary opted in via WorkerTaskMainIfRequested (mr/worker.h),
///     the spec is serialized to disk and the current binary is re-execed
///     with `--worker-task <spec>`; the worker resolves the factory by
///     name and reads its input from run files. Nothing of the parent's
///     address space is assumed — this is the full closure-free protocol a
///     socket transport would use.
///
///   fork mode — otherwise the child runs the stage's TaskBody closure over
///     a copy-on-write snapshot of the parent (as a multiprocessing fork
///     worker would). Shared-context deltas travel via the TaskSideChannel.
///
/// Either way the child writes its results through WriteTaskOutputFiles
/// (CRC32C-framed run files) and exits without running destructors
/// (_exit), and the parent re-reads them — a crashed or killed child is
/// detected by exit status or by run-file corruption and surfaces as a
/// retryable Internal error.
class SubprocessRunner : public TaskRunner {
 public:
  /// `num_threads` bounds how many children run concurrently (0 = one at
  /// a time, forked from the calling thread).
  explicit SubprocessRunner(size_t num_threads);

  const char* name() const override { return "subprocess"; }
  bool isolated() const override { return true; }
  bool retryable() const override { return true; }
  void ParallelRun(size_t n, const std::function<void(size_t)>& fn) override;
  Status RunAttempt(const TaskSpec& spec, const TaskBody& body,
                    const TaskSideChannel& side, TaskOutput* out) override;

 private:
  ThreadPool pool_;
  std::string argv0_;  ///< /proc/self/exe at construction; "" if unknown
};

std::unique_ptr<TaskRunner> MakeTaskRunner(RunnerKind kind,
                                           size_t num_threads);

/// Serializes fork() against parent-side merges of shared context, so a
/// child never inherits a context mutex in the locked state (a COW-copied
/// locked mutex would deadlock the child forever).
std::mutex& ProcessForkMutex();

/// Test hook: a task attempt for which the hook returns true "crashes" —
/// the child scribbles a torn .dat file and dies with a non-protocol exit
/// code, exercising the scheduler's detect-and-retry path. Cleared by
/// passing nullptr. The hook runs in the child (and is consulted for both
/// fork- and exec-mode tasks before the exec).
void SetSubprocessTaskFaultHook(std::function<bool(const TaskSpec&)> hook);

/// Whether this binary routed main() through WorkerTaskMainIfRequested and
/// can therefore be safely re-execed in --worker-task mode. Binaries that
/// never installed the hook still get subprocess isolation via fork mode.
bool WorkerModeAvailable();
void SetWorkerModeAvailable(bool available);

}  // namespace fsjoin::mr

#endif  // FSJOIN_MR_RUNNER_H_
