#ifndef FSJOIN_MR_CLUSTER_SIM_H_
#define FSJOIN_MR_CLUSTER_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mr/metrics.h"

namespace fsjoin::mr {

/// Cost model mapping measured task metrics to simulated cluster time.
/// Defaults approximate the paper's EC2 environment relative to local CPU
/// speed: shuffling a byte across the network is far more expensive than
/// streaming it through memory, and every Hadoop task pays scheduling
/// overhead.
struct ClusterCostModel {
  /// Simulated cost per byte a reduce task receives (microseconds).
  /// 0.2 us/B = ~5 MB/s effective per-reducer shuffle throughput: on
  /// Hadoop-0.20-era clusters every shuffled byte is spilled to disk
  /// map-side, fetched over HTTP, and merge-sorted with more spills
  /// reduce-side (~5 I/O passes at ~30 MB/s each). This is the constant
  /// that charges duplication-heavy algorithms for their intermediate
  /// data — the in-memory engine moves bytes for free.
  double network_micros_per_byte = 0.2;
  /// Fixed per-task scheduling/JVM overhead (microseconds).
  double per_task_overhead_micros = 100000.0;
  /// Map/reduce slots per worker node (paper: 3).
  uint32_t slots_per_node = 3;
  /// Reduce-side memory budget per key group (an FS-Join fragment slice):
  /// when the largest group a reduce task processes exceeds it, the whole
  /// task input is merged through disk in multiple passes (the spill
  /// latency §VI-F blames for FS-Join-V's slowdown; horizontal
  /// partitioning exists to keep groups inside this budget). Oversized
  /// tasks pay spill_micros_per_byte on every input byte. Effectively
  /// unlimited by default.
  ///
  /// When a task carries *measured* spill volume (TaskMetrics::spilled_bytes
  /// from the external-shuffle path), that measurement is charged instead
  /// and this heuristic is skipped for the task.
  uint64_t reduce_memory_bytes = 1ull << 40;
  double spill_micros_per_byte = 0.8;
};

/// Result of replaying one job on a simulated cluster.
struct SimulatedJobTime {
  double map_phase_ms = 0.0;
  double reduce_phase_ms = 0.0;
  double shuffle_ms = 0.0;
  double total_ms = 0.0;
  /// max worker load / mean worker load in the reduce phase.
  double reduce_balance = 1.0;
};

/// Replays a job's measured per-task costs on `num_nodes` simulated worker
/// nodes. Tasks are list-scheduled onto the least-loaded of the
/// num_nodes * slots_per_node slots in submission order (Hadoop's behavior
/// with a FIFO scheduler); each phase's duration is its makespan. Shuffle
/// cost is charged to the reduce tasks that receive the bytes.
///
/// This is the substitute for the paper's 5/10/15-node EC2 experiments
/// (Fig. 9): measured single-machine task costs + a network model determine
/// how runtimes scale with the cluster size.
SimulatedJobTime SimulateJob(const JobMetrics& job, uint32_t num_nodes,
                             const ClusterCostModel& model);

/// Sum of SimulateJob over chained jobs (a full algorithm run).
SimulatedJobTime SimulatePipeline(const std::vector<JobMetrics>& jobs,
                                  uint32_t num_nodes,
                                  const ClusterCostModel& model);

/// Schedules task durations (micros) onto `slots` identical slots in order;
/// returns the makespan in microseconds. Exposed for testing.
double ListScheduleMakespan(const std::vector<double>& task_micros,
                            uint32_t slots);

}  // namespace fsjoin::mr

#endif  // FSJOIN_MR_CLUSTER_SIM_H_
