#ifndef FSJOIN_MR_WORKER_H_
#define FSJOIN_MR_WORKER_H_

#include <string>

namespace fsjoin::mr {

/// Binary entry hook for --worker-task mode. Call first thing in main():
///
///   int main(int argc, char** argv) {
///     if (int rc = fsjoin::mr::WorkerTaskMainIfRequested(argc, argv);
///         rc >= 0) {
///       return rc;
///     }
///     ... normal program ...
///   }
///
/// When argv contains `--worker-task <spec-file>` the process is a task
/// worker: it decodes the TaskSpec, resolves the named task factory, runs
/// the map/reduce body over the spec's input runs, writes output/result
/// files and returns the protocol exit code (0 ok, 2 Status error written
/// to <base>.err). Otherwise returns -1 — and records that this binary
/// supports worker mode, which is what lets SubprocessRunner choose
/// re-exec over fork for factory-named tasks.
int WorkerTaskMainIfRequested(int argc, char** argv);

/// The worker-mode body (exposed for tests): executes the task described
/// by the serialized spec at `spec_path` and returns the protocol exit
/// code.
int RunWorkerTask(const std::string& spec_path);

}  // namespace fsjoin::mr

#endif  // FSJOIN_MR_WORKER_H_
