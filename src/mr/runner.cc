#include "mr/runner.h"

namespace fsjoin::mr {

const char* RunnerKindName(RunnerKind kind) {
  switch (kind) {
    case RunnerKind::kInline:
      return "inline";
    case RunnerKind::kThreads:
      return "threads";
    case RunnerKind::kSubprocess:
      return "subprocess";
    case RunnerKind::kCluster:
      return "cluster";
  }
  return "?";
}

Result<RunnerKind> RunnerKindFromName(std::string_view name) {
  if (name == "inline") return RunnerKind::kInline;
  if (name == "threads") return RunnerKind::kThreads;
  if (name == "subprocess") return RunnerKind::kSubprocess;
  if (name == "cluster") return RunnerKind::kCluster;
  return Status::InvalidArgument("unknown runner: " + std::string(name) +
                                 " (want inline|threads|subprocess|cluster)");
}

void InlineRunner::ParallelRun(size_t n,
                               const std::function<void(size_t)>& fn) {
  for (size_t i = 0; i < n; ++i) fn(i);
}

Status InlineRunner::RunAttempt(const TaskSpec& spec, const TaskBody& body,
                                const TaskSideChannel& /*side*/,
                                TaskOutput* out) {
  return body(spec, out);
}

void ThreadPoolRunner::ParallelRun(size_t n,
                                   const std::function<void(size_t)>& fn) {
  pool_.ParallelFor(n, fn);
}

Status ThreadPoolRunner::RunAttempt(const TaskSpec& spec, const TaskBody& body,
                                    const TaskSideChannel& /*side*/,
                                    TaskOutput* out) {
  return body(spec, out);
}

std::unique_ptr<TaskRunner> MakeTaskRunner(RunnerKind kind,
                                           size_t num_threads) {
  switch (kind) {
    case RunnerKind::kInline:
      return std::make_unique<InlineRunner>();
    case RunnerKind::kThreads:
      return std::make_unique<ThreadPoolRunner>(num_threads);
    case RunnerKind::kSubprocess:
      return std::make_unique<SubprocessRunner>(num_threads);
    case RunnerKind::kCluster:
      // The cluster runner lives in src/net (it needs sockets and worker
      // endpoints the mr layer knows nothing about); callers construct it
      // via net::ClusterTaskRunner::Create and hand it to the engine as
      // EngineOptions::external_runner.
      return nullptr;
  }
  return std::make_unique<ThreadPoolRunner>(num_threads);
}

}  // namespace fsjoin::mr
