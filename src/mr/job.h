#ifndef FSJOIN_MR_JOB_H_
#define FSJOIN_MR_JOB_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "mr/kv.h"
#include "util/hash.h"
#include "util/status.h"

namespace fsjoin::mr {

/// Sink for key/value pairs produced by a mapper or reducer. The engine's
/// emitters append the bytes into an arena (mr/kv.h), so callers may pass
/// views of transient buffers; the bytes are copied out during the call.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void Emit(std::string_view key, std::string_view value) = 0;
};

/// Hadoop-style map task: invoked once per input record of the task's
/// split. Implementations must be independent per instance — the engine
/// creates one mapper per map task, possibly on different threads.
class Mapper {
 public:
  virtual ~Mapper() = default;

  /// Called once before the first Map of a task (the paper's `setup`).
  virtual Status Setup() { return Status::OK(); }

  /// Transforms one input record into zero or more output pairs.
  virtual Status Map(const KeyValue& record, Emitter* out) = 0;

  /// Called after the last Map of a task (may emit trailing pairs).
  virtual Status Finish(Emitter* /*out*/) { return Status::OK(); }
};

/// The values of one key group: non-owning views into the engine's shuffle
/// arena, valid only for the duration of the Reduce call. A reducer that
/// needs a value beyond the call must copy it explicitly.
using ValueList = std::span<const std::string_view>;

/// Hadoop-style reduce task: invoked once per distinct key with every value
/// shuffled for it. Also used as the combiner interface. Key and values are
/// windows over the sorted shuffle arena — grouping performs no per-value
/// copies.
class Reducer {
 public:
  virtual ~Reducer() = default;

  virtual Status Setup() { return Status::OK(); }

  virtual Status Reduce(std::string_view key, ValueList values,
                        Emitter* out) = 0;

  virtual Status Finish(Emitter* /*out*/) { return Status::OK(); }
};

/// Routes keys to reduce partitions.
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual uint32_t Partition(std::string_view key,
                             uint32_t num_partitions) const = 0;
};

/// Default partitioner: stable byte hash of the whole key.
class HashPartitioner : public Partitioner {
 public:
  uint32_t Partition(std::string_view key,
                     uint32_t num_partitions) const override {
    return static_cast<uint32_t>(Fnv1a64(key) % num_partitions);
  }
};

/// Partitioner for keys that *are* a big-endian partition id prefix (the
/// FS-Join fragment jobs): partition = first 4 bytes mod num_partitions.
/// Falls back to hashing for short keys.
class PrefixIdPartitioner : public Partitioner {
 public:
  uint32_t Partition(std::string_view key,
                     uint32_t num_partitions) const override;
};

using MapperFactory = std::function<std::unique_ptr<Mapper>()>;
using ReducerFactory = std::function<std::unique_ptr<Reducer>()>;

/// Bridge for shared mutable job state (filter counters, candidate counts)
/// across the subprocess runner's fork boundary. A forked child inherits a
/// copy-on-write snapshot of the job's context objects; without help its
/// mutations die with it. A stage that mutates shared context provides:
///   reset   — child, right after fork: zero the inherited counters (they
///             were already merged in the parent) and drop resources whose
///             threads did not survive the fork (e.g. a morsel ThreadPool).
///   capture — child, after the task body: serialize the deltas this task
///             produced into opaque bytes shipped back with the output.
///   merge   — parent, exactly once per logical task (the scheduler's
///             metrics-merge rule): fold the captured bytes into the live
///             context. Retried attempts are merged once, never per try.
/// In-process runners ignore the channel — reducers mutate the shared
/// context directly, as in the seed engine.
struct TaskSideChannel {
  std::function<void()> reset;
  std::function<std::string()> capture;
  std::function<Status(const std::string&)> merge;
};

/// Static description of one MapReduce job.
struct JobConfig {
  std::string name = "job";
  /// Number of map tasks the input is split into (Hadoop: one per block).
  uint32_t num_map_tasks = 4;
  /// Number of reduce tasks == shuffle partitions (paper: 3 * #nodes).
  uint32_t num_reduce_tasks = 4;
  MapperFactory mapper_factory;
  ReducerFactory reducer_factory;
  /// Optional combiner run on each map task's output before the shuffle.
  ReducerFactory combiner_factory;
  /// Key router; HashPartitioner when null.
  std::shared_ptr<const Partitioner> partitioner;
  /// Fork-boundary bridge for shared mutable context (see above). Empty
  /// members are simply skipped — stateless jobs leave this default.
  TaskSideChannel side;
  /// Registered task-factory name (mr/task.h) that rebuilds this job's
  /// mapper/reducer/combiner/partitioner in another process. Empty = the
  /// job's logic captures driver state and tasks cannot be re-execed; the
  /// subprocess runner then uses fork-only isolation.
  std::string task_factory;
  /// Opaque parameter bytes for the task factory.
  std::string task_payload;
};

}  // namespace fsjoin::mr

#endif  // FSJOIN_MR_JOB_H_
