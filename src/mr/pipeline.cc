#include "mr/pipeline.h"

#include <utility>

namespace fsjoin::mr {

void MiniDfs::Put(const std::string& name, Dataset dataset) {
  datasets_[name] = std::move(dataset);
}

Result<const Dataset*> MiniDfs::Get(const std::string& name) const {
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("no dataset named '" + name + "'");
  }
  return &it->second;
}

bool MiniDfs::Has(const std::string& name) const {
  return datasets_.count(name) > 0;
}

void MiniDfs::Remove(const std::string& name) { datasets_.erase(name); }

std::vector<std::string> MiniDfs::List() const {
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& [name, dataset] : datasets_) names.push_back(name);
  return names;
}

Status Pipeline::RunJob(const JobConfig& config, const std::string& input_name,
                        const std::string& output_name) {
  FSJOIN_ASSIGN_OR_RETURN(const Dataset* input, dfs_->Get(input_name));
  Dataset output;
  JobMetrics metrics;
  FSJOIN_RETURN_NOT_OK(engine_->Run(config, *input, &output, &metrics));
  history_.push_back(std::move(metrics));
  dfs_->Put(output_name, std::move(output));
  return Status::OK();
}

JobMetrics Pipeline::TotalMetrics(const std::string& name) const {
  return CombineJobMetrics(history_, name);
}

}  // namespace fsjoin::mr
