#include "mr/engine.h"

#include <algorithm>
#include <mutex>
#include <optional>
#include <utility>

#include "mr/shuffle.h"
#include "store/memory_budget.h"
#include "store/temp_dir.h"
#include "util/logging.h"
#include "util/timer.h"

namespace fsjoin::mr {

namespace {

/// Emitter that routes pairs into per-reduce-partition arenas and counts
/// them. One instance per map task (single-threaded within the task).
/// Record bytes are appended once here and never copied again until the
/// reduce output materializes.
class PartitionedEmitter : public Emitter {
 public:
  PartitionedEmitter(const Partitioner& partitioner, uint32_t num_partitions)
      : partitioner_(partitioner), buffers_(num_partitions) {}

  void Emit(std::string_view key, std::string_view value) override {
    uint32_t p = partitioner_.Partition(
        key, static_cast<uint32_t>(buffers_.size()));
    FSJOIN_CHECK(p < buffers_.size());
    records_ += 1;
    bytes_ += key.size() + value.size();
    buffers_[p].Append(key, value);
  }

  std::vector<KvBuffer>& buffers() { return buffers_; }
  uint64_t records() const { return records_; }
  uint64_t bytes() const { return bytes_; }

 private:
  const Partitioner& partitioner_;
  std::vector<KvBuffer> buffers_;
  uint64_t records_ = 0;
  uint64_t bytes_ = 0;
};

/// Emitter appending to a single arena (combiner output).
class BufferEmitter : public Emitter {
 public:
  explicit BufferEmitter(KvBuffer* out) : out_(out) {}

  void Emit(std::string_view key, std::string_view value) override {
    records_ += 1;
    bytes_ += key.size() + value.size();
    out_->Append(key, value);
  }

  uint64_t records() const { return records_; }
  uint64_t bytes() const { return bytes_; }

 private:
  KvBuffer* out_;
  uint64_t records_ = 0;
  uint64_t bytes_ = 0;
};

/// Emitter materializing records into a flat dataset (reduce output).
class VectorEmitter : public Emitter {
 public:
  explicit VectorEmitter(Dataset* out) : out_(out) {}

  void Emit(std::string_view key, std::string_view value) override {
    records_ += 1;
    bytes_ += key.size() + value.size();
    out_->push_back(KeyValue{std::string(key), std::string(value)});
  }

  uint64_t records() const { return records_; }
  uint64_t bytes() const { return bytes_; }

 private:
  Dataset* out_;
  uint64_t records_ = 0;
  uint64_t bytes_ = 0;
};

/// Sanitizes a job name into something safe for a directory component.
std::string SpillDirPrefix(const std::string& job_name) {
  std::string prefix = "fsjoin-spill-";
  for (char c : job_name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    prefix.push_back(ok ? c : '_');
  }
  return prefix;
}

/// Sorts and combines one map-task partition buffer in place.
Status CombineBuffer(const ReducerFactory& combiner_factory, KvBuffer* buffer,
                     uint64_t* out_records, uint64_t* out_bytes) {
  ShuffleShard shard;
  FSJOIN_RETURN_NOT_OK(shard.AddBuffer(std::move(*buffer)));
  shard.SortByKey();
  KvBuffer combined;
  BufferEmitter out(&combined);
  std::unique_ptr<Reducer> combiner = combiner_factory();
  FSJOIN_RETURN_NOT_OK(ReduceShard(combiner.get(), shard, &out));
  *out_records += out.records();
  *out_bytes += out.bytes();
  *buffer = std::move(combined);
  return Status::OK();
}

}  // namespace

uint32_t PrefixIdPartitioner::Partition(std::string_view key,
                                        uint32_t num_partitions) const {
  if (key.size() < 4) {
    return static_cast<uint32_t>(Fnv1a64(key) % num_partitions);
  }
  const unsigned char* p = reinterpret_cast<const unsigned char*>(key.data());
  uint32_t id = (static_cast<uint32_t>(p[0]) << 24) |
                (static_cast<uint32_t>(p[1]) << 16) |
                (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
  return id % num_partitions;
}

Engine::Engine(size_t num_threads) : pool_(num_threads) {
  options_.num_threads = num_threads;
}

Engine::Engine(const EngineOptions& options)
    : options_(options), pool_(options.num_threads) {}

Status Engine::Run(const JobConfig& config, const Dataset& input,
                   Dataset* output, JobMetrics* metrics) {
  if (!config.mapper_factory) {
    return Status::InvalidArgument("job '" + config.name + "': no mapper");
  }
  if (!config.reducer_factory) {
    return Status::InvalidArgument("job '" + config.name + "': no reducer");
  }
  if (config.num_map_tasks == 0 || config.num_reduce_tasks == 0) {
    return Status::InvalidArgument("job '" + config.name +
                                   "': task counts must be positive");
  }

  WallTimer job_timer;
  JobMetrics jm;
  jm.job_name = config.name;
  jm.map_input_records = input.size();
  jm.map_input_bytes = DatasetBytes(input);

  std::shared_ptr<const Partitioner> partitioner = config.partitioner;
  if (partitioner == nullptr) {
    partitioner = std::make_shared<HashPartitioner>();
  }

  const uint32_t num_maps = std::min<uint32_t>(
      config.num_map_tasks,
      static_cast<uint32_t>(std::max<size_t>(input.size(), 1)));
  const uint32_t num_reds = config.num_reduce_tasks;

  // ---- Map phase -----------------------------------------------------
  // Each task gets a contiguous split of the input (Hadoop block split).
  std::vector<std::vector<KvBuffer>> task_buffers(num_maps);
  std::vector<TaskMetrics> map_task_metrics(num_maps);
  std::vector<uint64_t> combine_inputs(num_maps, 0);
  std::vector<Status> task_status(num_maps);
  std::mutex status_mu;

  const size_t per_task = (input.size() + num_maps - 1) / num_maps;
  pool_.ParallelFor(num_maps, [&](size_t task) {
    WallTimer timer;
    const size_t begin = task * per_task;
    const size_t end = std::min(input.size(), begin + per_task);

    std::unique_ptr<Mapper> mapper = config.mapper_factory();
    PartitionedEmitter emitter(*partitioner, num_reds);
    Status st = mapper->Setup();
    uint64_t in_bytes = 0;
    for (size_t i = begin; st.ok() && i < end; ++i) {
      in_bytes += input[i].SizeBytes();
      st = mapper->Map(input[i], &emitter);
    }
    if (st.ok()) st = mapper->Finish(&emitter);

    uint64_t out_records = emitter.records();
    uint64_t out_bytes = emitter.bytes();

    // Optional combiner: applied per partition buffer, like Hadoop's
    // spill-time combine.
    if (st.ok() && config.combiner_factory) {
      combine_inputs[task] = out_records;
      out_records = 0;
      out_bytes = 0;
      for (KvBuffer& buffer : emitter.buffers()) {
        st = CombineBuffer(config.combiner_factory, &buffer, &out_records,
                           &out_bytes);
        if (!st.ok()) break;
      }
    }

    task_buffers[task] = std::move(emitter.buffers());
    TaskMetrics& tm = map_task_metrics[task];
    tm.wall_micros = timer.ElapsedMicros();
    tm.input_records = end - begin;
    tm.input_bytes = in_bytes;
    tm.output_records = out_records;
    tm.output_bytes = out_bytes;
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(status_mu);
      task_status[task] = st;
    }
  });

  for (const Status& st : task_status) {
    FSJOIN_RETURN_NOT_OK(st);
  }
  for (const TaskMetrics& tm : map_task_metrics) {
    jm.map_output_records += tm.output_records;
    jm.map_output_bytes += tm.output_bytes;
    jm.map_wall_micros += tm.wall_micros;
  }
  for (uint64_t c : combine_inputs) jm.combine_input_records += c;
  jm.map_tasks = std::move(map_task_metrics);

  // ---- Shuffle -------------------------------------------------------
  // Each reducer's shard takes ownership of its arena from every map task:
  // a merge of buffer moves, no record ever copied. Merged in parallel
  // across reducers. With a shuffle memory cap, each shard charges the
  // per-job budget (chained to the process-wide one) and spills key-sorted
  // run files into a job-scoped scratch directory whenever a charge trips;
  // the directory is removed when this function returns, on every path.
  std::optional<store::TempSpillDir> spill_scratch;
  std::optional<store::MemoryBudget> job_budget;
  if (options_.shuffle_memory_bytes > 0) {
    FSJOIN_ASSIGN_OR_RETURN(
        store::TempSpillDir dir,
        store::TempSpillDir::Create(options_.spill_dir,
                                    SpillDirPrefix(config.name)));
    spill_scratch.emplace(std::move(dir));
    job_budget.emplace(options_.shuffle_memory_bytes,
                       &store::ProcessMemoryBudget());
  }
  std::vector<ShuffleShard> shards(num_reds);
  std::vector<Status> shuffle_status(num_reds);
  pool_.ParallelFor(num_reds, [&](size_t r) {
    if (job_budget.has_value()) {
      shards[r].EnableSpill(&*job_budget, spill_scratch->path(),
                            "r" + std::to_string(r));
    }
    Status st;
    for (uint32_t m = 0; st.ok() && m < num_maps; ++m) {
      st = shards[r].AddBuffer(std::move(task_buffers[m][r]));
    }
    if (st.ok()) st = shards[r].Seal();
    if (!st.ok()) shuffle_status[r] = std::move(st);
  });
  for (const Status& st : shuffle_status) {
    FSJOIN_RETURN_NOT_OK(st);
  }
  for (const ShuffleShard& shard : shards) {
    jm.shuffle_records += shard.NumRecords();
    jm.shuffle_bytes += shard.PayloadBytes();
  }

  // ---- Reduce phase ----------------------------------------------------
  std::vector<Dataset> reduce_outputs(num_reds);
  std::vector<TaskMetrics> reduce_task_metrics(num_reds);
  std::vector<Status> reduce_status(num_reds);
  pool_.ParallelFor(num_reds, [&](size_t r) {
    WallTimer timer;
    ShuffleShard& shard = shards[r];
    TaskMetrics& tm = reduce_task_metrics[r];
    tm.input_records = shard.NumRecords();
    tm.input_bytes = shard.PayloadBytes();
    tm.spilled_bytes = shard.spilled_bytes();
    tm.spill_runs = shard.spill_runs();

    if (!shard.spilled()) shard.SortByKey();
    VectorEmitter out(&reduce_outputs[r]);
    std::unique_ptr<Reducer> reducer = config.reducer_factory();
    Status st = ReduceShard(reducer.get(), shard, &out, &tm.max_group_bytes);

    tm.wall_micros = timer.ElapsedMicros();
    tm.output_records = out.records();
    tm.output_bytes = out.bytes();
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(status_mu);
      reduce_status[r] = st;
    }
  });

  for (const Status& st : reduce_status) {
    FSJOIN_RETURN_NOT_OK(st);
  }
  for (const TaskMetrics& tm : reduce_task_metrics) {
    jm.reduce_output_records += tm.output_records;
    jm.reduce_output_bytes += tm.output_bytes;
    jm.reduce_wall_micros += tm.wall_micros;
    jm.spilled_bytes += tm.spilled_bytes;
    jm.spill_runs += tm.spill_runs;
  }
  jm.reduce_tasks = std::move(reduce_task_metrics);

  size_t out_total = 0;
  for (const Dataset& d : reduce_outputs) out_total += d.size();
  output->clear();
  output->reserve(out_total);
  for (Dataset& d : reduce_outputs) {
    std::move(d.begin(), d.end(), std::back_inserter(*output));
  }

  jm.total_wall_micros = job_timer.ElapsedMicros();
  if (metrics != nullptr) *metrics = std::move(jm);
  return Status::OK();
}

uint64_t DatasetBytes(const Dataset& dataset) {
  uint64_t total = 0;
  for (const KeyValue& kv : dataset) total += kv.SizeBytes();
  return total;
}

}  // namespace fsjoin::mr
