#include "mr/engine.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <utility>

#include "util/logging.h"
#include "util/timer.h"

namespace fsjoin::mr {

namespace {

/// Emitter that routes pairs into per-reduce-partition buffers and counts
/// them. One instance per map task (single-threaded within the task).
class PartitionedEmitter : public Emitter {
 public:
  PartitionedEmitter(const Partitioner& partitioner, uint32_t num_partitions)
      : partitioner_(partitioner), buffers_(num_partitions) {}

  void Emit(std::string key, std::string value) override {
    uint32_t p = partitioner_.Partition(
        key, static_cast<uint32_t>(buffers_.size()));
    FSJOIN_CHECK(p < buffers_.size());
    records_ += 1;
    bytes_ += key.size() + value.size();
    buffers_[p].push_back(KeyValue{std::move(key), std::move(value)});
  }

  std::vector<Dataset>& buffers() { return buffers_; }
  uint64_t records() const { return records_; }
  uint64_t bytes() const { return bytes_; }

 private:
  const Partitioner& partitioner_;
  std::vector<Dataset> buffers_;
  uint64_t records_ = 0;
  uint64_t bytes_ = 0;
};

/// Emitter appending to a flat dataset (reduce output, combiner output).
class VectorEmitter : public Emitter {
 public:
  explicit VectorEmitter(Dataset* out) : out_(out) {}

  void Emit(std::string key, std::string value) override {
    records_ += 1;
    bytes_ += key.size() + value.size();
    out_->push_back(KeyValue{std::move(key), std::move(value)});
  }

  uint64_t records() const { return records_; }
  uint64_t bytes() const { return bytes_; }

 private:
  Dataset* out_;
  uint64_t records_ = 0;
  uint64_t bytes_ = 0;
};

void SortByKey(Dataset* data) {
  std::stable_sort(data->begin(), data->end(),
                   [](const KeyValue& a, const KeyValue& b) {
                     return a.key < b.key;
                   });
}

/// Runs `reducer` over key-grouped `input` (must be sorted by key). Tracks
/// the largest group's byte size in *max_group_bytes when non-null.
Status RunGroupedReduce(Reducer* reducer, const Dataset& input, Emitter* out,
                        uint64_t* max_group_bytes = nullptr) {
  FSJOIN_RETURN_NOT_OK(reducer->Setup());
  size_t i = 0;
  std::vector<std::string> values;
  while (i < input.size()) {
    size_t j = i;
    values.clear();
    uint64_t group_bytes = 0;
    while (j < input.size() && input[j].key == input[i].key) {
      values.push_back(input[j].value);
      group_bytes += input[j].SizeBytes();
      ++j;
    }
    if (max_group_bytes != nullptr) {
      *max_group_bytes = std::max(*max_group_bytes, group_bytes);
    }
    FSJOIN_RETURN_NOT_OK(reducer->Reduce(input[i].key, values, out));
    i = j;
  }
  return reducer->Finish(out);
}

}  // namespace

uint32_t PrefixIdPartitioner::Partition(const std::string& key,
                                        uint32_t num_partitions) const {
  if (key.size() < 4) {
    return static_cast<uint32_t>(Fnv1a64(key) % num_partitions);
  }
  const unsigned char* p = reinterpret_cast<const unsigned char*>(key.data());
  uint32_t id = (static_cast<uint32_t>(p[0]) << 24) |
                (static_cast<uint32_t>(p[1]) << 16) |
                (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
  return id % num_partitions;
}

Engine::Engine(size_t num_threads) : pool_(num_threads) {}

Status Engine::Run(const JobConfig& config, const Dataset& input,
                   Dataset* output, JobMetrics* metrics) {
  if (!config.mapper_factory) {
    return Status::InvalidArgument("job '" + config.name + "': no mapper");
  }
  if (!config.reducer_factory) {
    return Status::InvalidArgument("job '" + config.name + "': no reducer");
  }
  if (config.num_map_tasks == 0 || config.num_reduce_tasks == 0) {
    return Status::InvalidArgument("job '" + config.name +
                                   "': task counts must be positive");
  }

  WallTimer job_timer;
  JobMetrics jm;
  jm.job_name = config.name;
  jm.map_input_records = input.size();
  jm.map_input_bytes = DatasetBytes(input);

  std::shared_ptr<const Partitioner> partitioner = config.partitioner;
  if (partitioner == nullptr) {
    partitioner = std::make_shared<HashPartitioner>();
  }

  const uint32_t num_maps = std::min<uint32_t>(
      config.num_map_tasks,
      static_cast<uint32_t>(std::max<size_t>(input.size(), 1)));
  const uint32_t num_reds = config.num_reduce_tasks;

  // ---- Map phase -----------------------------------------------------
  // Each task gets a contiguous split of the input (Hadoop block split).
  std::vector<std::vector<Dataset>> task_buffers(num_maps);
  std::vector<TaskMetrics> map_task_metrics(num_maps);
  std::vector<uint64_t> combine_inputs(num_maps, 0);
  std::vector<Status> task_status(num_maps);
  std::mutex status_mu;

  const size_t per_task = (input.size() + num_maps - 1) / num_maps;
  pool_.ParallelFor(num_maps, [&](size_t task) {
    WallTimer timer;
    const size_t begin = task * per_task;
    const size_t end = std::min(input.size(), begin + per_task);

    std::unique_ptr<Mapper> mapper = config.mapper_factory();
    PartitionedEmitter emitter(*partitioner, num_reds);
    Status st = mapper->Setup();
    uint64_t in_bytes = 0;
    for (size_t i = begin; st.ok() && i < end; ++i) {
      in_bytes += input[i].SizeBytes();
      st = mapper->Map(input[i], &emitter);
    }
    if (st.ok()) st = mapper->Finish(&emitter);

    uint64_t out_records = emitter.records();
    uint64_t out_bytes = emitter.bytes();

    // Optional combiner: applied per partition buffer, like Hadoop's
    // spill-time combine.
    if (st.ok() && config.combiner_factory) {
      combine_inputs[task] = out_records;
      out_records = 0;
      out_bytes = 0;
      for (Dataset& buffer : emitter.buffers()) {
        SortByKey(&buffer);
        Dataset combined;
        VectorEmitter combined_out(&combined);
        std::unique_ptr<Reducer> combiner = config.combiner_factory();
        st = RunGroupedReduce(combiner.get(), buffer, &combined_out);
        if (!st.ok()) break;
        out_records += combined_out.records();
        out_bytes += combined_out.bytes();
        buffer = std::move(combined);
      }
    }

    task_buffers[task] = std::move(emitter.buffers());
    TaskMetrics& tm = map_task_metrics[task];
    tm.wall_micros = timer.ElapsedMicros();
    tm.input_records = end - begin;
    tm.input_bytes = in_bytes;
    tm.output_records = out_records;
    tm.output_bytes = out_bytes;
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(status_mu);
      task_status[task] = st;
    }
  });

  for (const Status& st : task_status) {
    FSJOIN_RETURN_NOT_OK(st);
  }
  for (const TaskMetrics& tm : map_task_metrics) {
    jm.map_output_records += tm.output_records;
    jm.map_output_bytes += tm.output_bytes;
    jm.map_wall_micros += tm.wall_micros;
  }
  for (uint64_t c : combine_inputs) jm.combine_input_records += c;
  jm.map_tasks = std::move(map_task_metrics);

  // ---- Shuffle -------------------------------------------------------
  std::vector<Dataset> reduce_inputs(num_reds);
  for (uint32_t r = 0; r < num_reds; ++r) {
    size_t total = 0;
    for (uint32_t m = 0; m < num_maps; ++m) {
      total += task_buffers[m][r].size();
    }
    reduce_inputs[r].reserve(total);
    for (uint32_t m = 0; m < num_maps; ++m) {
      Dataset& src = task_buffers[m][r];
      std::move(src.begin(), src.end(), std::back_inserter(reduce_inputs[r]));
      Dataset().swap(src);
    }
    jm.shuffle_records += reduce_inputs[r].size();
    jm.shuffle_bytes += DatasetBytes(reduce_inputs[r]);
  }

  // ---- Reduce phase ----------------------------------------------------
  std::vector<Dataset> reduce_outputs(num_reds);
  std::vector<TaskMetrics> reduce_task_metrics(num_reds);
  std::vector<Status> reduce_status(num_reds);
  pool_.ParallelFor(num_reds, [&](size_t r) {
    WallTimer timer;
    Dataset& rin = reduce_inputs[r];
    TaskMetrics& tm = reduce_task_metrics[r];
    tm.input_records = rin.size();
    tm.input_bytes = DatasetBytes(rin);

    SortByKey(&rin);
    VectorEmitter out(&reduce_outputs[r]);
    std::unique_ptr<Reducer> reducer = config.reducer_factory();
    Status st =
        RunGroupedReduce(reducer.get(), rin, &out, &tm.max_group_bytes);

    tm.wall_micros = timer.ElapsedMicros();
    tm.output_records = out.records();
    tm.output_bytes = out.bytes();
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(status_mu);
      reduce_status[r] = st;
    }
  });

  for (const Status& st : reduce_status) {
    FSJOIN_RETURN_NOT_OK(st);
  }
  for (const TaskMetrics& tm : reduce_task_metrics) {
    jm.reduce_output_records += tm.output_records;
    jm.reduce_output_bytes += tm.output_bytes;
    jm.reduce_wall_micros += tm.wall_micros;
  }
  jm.reduce_tasks = std::move(reduce_task_metrics);

  size_t out_total = 0;
  for (const Dataset& d : reduce_outputs) out_total += d.size();
  output->clear();
  output->reserve(out_total);
  for (Dataset& d : reduce_outputs) {
    std::move(d.begin(), d.end(), std::back_inserter(*output));
  }

  jm.total_wall_micros = job_timer.ElapsedMicros();
  if (metrics != nullptr) *metrics = std::move(jm);
  return Status::OK();
}

uint64_t DatasetBytes(const Dataset& dataset) {
  uint64_t total = 0;
  for (const KeyValue& kv : dataset) total += kv.SizeBytes();
  return total;
}

}  // namespace fsjoin::mr
