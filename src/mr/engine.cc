#include "mr/engine.h"

#include <algorithm>
#include <mutex>
#include <optional>
#include <utility>

#include "mr/scheduler.h"
#include "mr/shuffle.h"
#include "store/memory_budget.h"
#include "store/run_file.h"
#include "store/temp_dir.h"
#include "util/logging.h"
#include "util/timer.h"

namespace fsjoin::mr {

namespace {

/// Sanitizes a job name into something safe for a directory component.
std::string SpillDirPrefix(const std::string& job_name) {
  std::string prefix = "fsjoin-spill-";
  for (char c : job_name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    prefix.push_back(ok ? c : '_');
  }
  return prefix;
}

/// Writes `input[begin..end)` as one CRC32C-framed transport run (not a
/// spill run: records keep input order, and the bytes are not counted in
/// the job's spill metrics).
Status WriteInputRun(const std::string& path, const Dataset& input,
                     size_t begin, size_t end) {
  store::RunWriter writer(path);
  FSJOIN_RETURN_NOT_OK(writer.Open());
  for (size_t i = begin; i < end; ++i) {
    FSJOIN_RETURN_NOT_OK(writer.Add(input[i].key, input[i].value));
  }
  return writer.Finish();
}

/// Writes a sorted, unspilled shard as one key-ordered transport run so an
/// isolated reduce task can merge-stream it like a spill run.
Status WriteShardRun(const std::string& path, const ShuffleShard& shard) {
  store::RunWriter writer(path);
  FSJOIN_RETURN_NOT_OK(writer.Open());
  for (size_t i = 0; i < shard.NumRecords(); ++i) {
    FSJOIN_RETURN_NOT_OK(writer.Add(shard.key(i), shard.value(i)));
  }
  return writer.Finish();
}

}  // namespace

uint32_t PrefixIdPartitioner::Partition(std::string_view key,
                                        uint32_t num_partitions) const {
  if (key.size() < 4) {
    return static_cast<uint32_t>(Fnv1a64(key) % num_partitions);
  }
  const unsigned char* p = reinterpret_cast<const unsigned char*>(key.data());
  uint32_t id = (static_cast<uint32_t>(p[0]) << 24) |
                (static_cast<uint32_t>(p[1]) << 16) |
                (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
  return id % num_partitions;
}

Status EngineOptions::Validate() const {
  if (task_retries < 0) {
    return Status::InvalidArgument(
        "task_retries must be >= 0, got " + std::to_string(task_retries));
  }
  if (shuffle_memory_bytes > 0 &&
      shuffle_memory_bytes < kMinShuffleMemoryBytes) {
    return Status::InvalidArgument(
        "shuffle_memory_bytes " + std::to_string(shuffle_memory_bytes) +
        " is smaller than one arena charge (" +
        std::to_string(kMinShuffleMemoryBytes) +
        "); use 0 for an unbounded in-memory shuffle");
  }
  if (runner == RunnerKind::kCluster && external_runner == nullptr) {
    return Status::InvalidArgument(
        "runner 'cluster' needs an externally-built runner: construct one "
        "with net::ClusterTaskRunner::Create (from --workers host:port,... "
        "or --spawn-local-workers N) and pass it via "
        "EngineOptions::external_runner");
  }
  return Status::OK();
}

Engine::Engine(size_t num_threads) {
  options_.num_threads = num_threads;
  owned_runner_ = MakeTaskRunner(options_.runner, num_threads);
  runner_ = owned_runner_.get();
}

Engine::Engine(const EngineOptions& options) : options_(options) {
  if (options.external_runner != nullptr) {
    runner_ = options.external_runner;
  } else {
    owned_runner_ = MakeTaskRunner(options.runner, options.num_threads);
    runner_ = owned_runner_.get();
  }
}

Status Engine::Run(const JobConfig& config, const Dataset& input,
                   Dataset* output, JobMetrics* metrics) {
  FSJOIN_RETURN_NOT_OK(options_.Validate());
  if (runner_ == nullptr) {
    return Status::InvalidArgument(
        "runner 'cluster' needs an externally-built net::ClusterTaskRunner "
        "(EngineOptions::external_runner); MakeTaskRunner cannot create it");
  }
  if (!config.mapper_factory) {
    return Status::InvalidArgument("job '" + config.name + "': no mapper");
  }
  if (!config.reducer_factory) {
    return Status::InvalidArgument("job '" + config.name + "': no reducer");
  }
  if (config.num_map_tasks == 0 || config.num_reduce_tasks == 0) {
    return Status::InvalidArgument("job '" + config.name +
                                   "': task counts must be positive");
  }

  WallTimer job_timer;
  JobMetrics jm;
  jm.job_name = config.name;
  jm.map_input_records = input.size();
  jm.map_input_bytes = DatasetBytes(input);

  std::shared_ptr<const Partitioner> partitioner = config.partitioner;
  if (partitioner == nullptr) {
    partitioner = std::make_shared<HashPartitioner>();
  }
  const TaskFactories factories{config.mapper_factory, config.reducer_factory,
                                config.combiner_factory, partitioner};

  const uint32_t num_maps = std::min<uint32_t>(
      config.num_map_tasks,
      static_cast<uint32_t>(std::max<size_t>(input.size(), 1)));
  const uint32_t num_reds = config.num_reduce_tasks;

  // Scratch directory: spill runs and (for process-isolated runners) task
  // interchange files. Parent-owned — children never remove it — and
  // removed when this function returns, on every path.
  const bool isolated = runner_->isolated();
  std::optional<store::TempSpillDir> scratch;
  std::optional<store::MemoryBudget> job_budget;
  if (isolated || options_.shuffle_memory_bytes > 0) {
    FSJOIN_ASSIGN_OR_RETURN(
        store::TempSpillDir dir,
        store::TempSpillDir::Create(options_.spill_dir,
                                    SpillDirPrefix(config.name)));
    scratch.emplace(std::move(dir));
  }
  if (options_.shuffle_memory_bytes > 0) {
    job_budget.emplace(options_.shuffle_memory_bytes,
                       &store::ProcessMemoryBudget());
  }

  TaskScheduler scheduler(runner_, options_.task_retries);

  // ---- Map stage -------------------------------------------------------
  // Each task gets a contiguous split of the input (Hadoop block split).
  // With a registered task factory under an isolated runner, the split is
  // additionally materialized as a transport run so the task can re-exec
  // as a --worker-task process that shares nothing with this one.
  const bool exec_capable = isolated && !config.task_factory.empty() &&
                            HasTaskFactory(config.task_factory);
  // Distributed runners stream the shuffle worker-to-worker instead of
  // moving arenas through this process: map tasks retain their sorted
  // partitions on the executing worker, reduce tasks pull them directly
  // (DESIGN.md §5j). Factory-named jobs only — closures cannot cross the
  // wire, and those jobs take the materialized-run path below instead.
  const bool net_shuffle = exec_capable && runner_->distributed();
  // Retained partitions must be dropped on every exit path, success or not.
  struct JobFinisher {
    TaskRunner* runner;
    const std::string& job;
    bool active;
    ~JobFinisher() {
      if (active) runner->FinishJob(job);
    }
  } job_finisher{runner_, config.name, net_shuffle};
  const size_t per_task = (input.size() + num_maps - 1) / num_maps;
  std::vector<TaskSpec> map_specs(num_maps);
  for (uint32_t m = 0; m < num_maps; ++m) {
    TaskSpec& spec = map_specs[m];
    spec.job_name = config.name;
    spec.kind = TaskKind::kMap;
    spec.task_index = m;
    spec.num_partitions = num_reds;
    spec.input_begin = std::min<uint64_t>(input.size(), m * per_task);
    spec.input_end = std::min<uint64_t>(input.size(),
                                        spec.input_begin + per_task);
    if (scratch.has_value()) {
      spec.output_base = scratch->path() + "/map-t" + std::to_string(m);
    }
  }
  if (exec_capable) {
    std::vector<Status> write_status(num_maps);
    runner_->ParallelRun(num_maps, [&](size_t m) {
      TaskSpec& spec = map_specs[m];
      const std::string path =
          scratch->path() + "/map-in-t" + std::to_string(m) + ".run";
      write_status[m] = WriteInputRun(path, input, spec.input_begin,
                                      spec.input_end);
      spec.input_runs = {path};
      spec.factory = config.task_factory;
      spec.payload = config.task_payload;
      spec.retain_shuffle = net_shuffle;
    });
    for (const Status& st : write_status) FSJOIN_RETURN_NOT_OK(st);
  }

  std::vector<std::vector<KvBuffer>> task_buffers(num_maps);
  TaskBody map_body = [&](const TaskSpec& spec, TaskOutput* out) -> Status {
    return ExecuteMapTask(spec, factories,
                          input.data() + spec.input_begin,
                          static_cast<size_t>(spec.input_end -
                                              spec.input_begin),
                          out);
  };
  auto map_done = [&](const TaskSpec& spec, TaskOutput out) -> Status {
    if (net_shuffle) {
      // The data stayed on the worker; only the per-partition stats came
      // back, and they are the job's shuffle accounting.
      if (out.partition_stats.size() != num_reds) {
        return Status::Internal("job '" + config.name + "': map task " +
                                std::to_string(spec.task_index) +
                                " returned wrong partition-stat count");
      }
      for (const PartitionStat& stat : out.partition_stats) {
        jm.shuffle_records += stat.records;
        jm.shuffle_bytes += stat.bytes;
      }
    } else if (out.partitions.size() != num_reds) {
      return Status::Internal("job '" + config.name + "': map task " +
                              std::to_string(spec.task_index) +
                              " returned wrong partition count");
    } else {
      task_buffers[spec.task_index] = std::move(out.partitions);
    }
    jm.map_output_records += out.metrics.output_records;
    jm.map_output_bytes += out.metrics.output_bytes;
    jm.map_wall_micros += out.metrics.wall_micros;
    jm.combine_input_records += out.combine_input_records;
    jm.map_tasks.push_back(out.metrics);
    return Status::OK();
  };
  // Mappers only read shared context, so the map stage needs no side
  // channel even when it forks.
  FSJOIN_RETURN_NOT_OK(
      scheduler.RunStage(std::move(map_specs), map_body, {}, map_done));

  // ---- Shuffle ---------------------------------------------------------
  // Parent-side in every runner mode (on a cluster this is the fetch phase
  // the coordinator orchestrates). Each reducer's shard takes ownership of
  // its arena from every map task in map order: a merge of buffer moves,
  // no record ever copied. With a shuffle memory cap, each shard charges
  // the per-job budget (chained to the process-wide one) and spills
  // key-sorted run files into the scratch directory when a charge trips.
  std::vector<ShuffleShard> shards(num_reds);
  if (!net_shuffle) {
    std::vector<Status> shuffle_status(num_reds);
    runner_->ParallelRun(num_reds, [&](size_t r) {
      if (job_budget.has_value()) {
        shards[r].EnableSpill(&*job_budget, scratch->path(),
                              "r" + std::to_string(r));
      }
      Status st;
      for (uint32_t m = 0; st.ok() && m < num_maps; ++m) {
        st = shards[r].AddBuffer(std::move(task_buffers[m][r]));
      }
      if (st.ok()) st = shards[r].Seal();
      if (!st.ok()) shuffle_status[r] = std::move(st);
    });
    for (const Status& st : shuffle_status) {
      FSJOIN_RETURN_NOT_OK(st);
    }
    for (const ShuffleShard& shard : shards) {
      jm.shuffle_records += shard.NumRecords();
      jm.shuffle_bytes += shard.PayloadBytes();
    }
  }

  // ---- Reduce stage ----------------------------------------------------
  std::vector<TaskSpec> red_specs(num_reds);
  for (uint32_t r = 0; r < num_reds; ++r) {
    TaskSpec& spec = red_specs[r];
    spec.job_name = config.name;
    spec.kind = TaskKind::kReduce;
    spec.task_index = r;
    spec.num_partitions = num_reds;
    if (scratch.has_value()) {
      spec.output_base = scratch->path() + "/red-t" + std::to_string(r);
    }
  }

  TaskBody red_body;
  if (net_shuffle) {
    // Each reduce pulls every map's retained partition over the shuffle
    // sockets, in map-task order — the loser tree's source-index tie-break
    // then reproduces the in-memory stable sort's order exactly. The
    // cluster runner resolves the empty endpoints from its location table
    // at dispatch time.
    for (uint32_t r = 0; r < num_reds; ++r) {
      TaskSpec& spec = red_specs[r];
      spec.factory = config.task_factory;
      spec.payload = config.task_payload;
      spec.shuffle_sources.reserve(num_maps);
      for (uint32_t m = 0; m < num_maps; ++m) {
        spec.shuffle_sources.push_back(ShuffleSource{config.name, m, ""});
      }
    }
    red_body = [&config](const TaskSpec& spec, TaskOutput*) -> Status {
      return Status::Internal("job '" + config.name + "': reduce task " +
                              std::to_string(spec.task_index) +
                              " with shuffle sources cannot run in-process");
    };
  } else if (isolated) {
    // Every isolated reduce input travels as key-sorted run files — the
    // paper's materialized-intermediate discipline. Spilled shards already
    // are runs; in-memory shards are sorted here and written as one
    // transport run (not counted as spill). The merge tie-break then
    // reproduces the in-memory order exactly, so results stay
    // byte-identical to the in-process path.
    std::vector<Status> write_status(num_reds);
    runner_->ParallelRun(num_reds, [&](size_t r) {
      TaskSpec& spec = red_specs[r];
      ShuffleShard& shard = shards[r];
      if (shard.spilled()) {
        spec.input_runs = shard.run_paths();
      } else if (shard.NumRecords() > 0) {
        shard.SortByKey();
        const std::string path =
            scratch->path() + "/red-in-t" + std::to_string(r) + ".run";
        write_status[r] = WriteShardRun(path, shard);
        spec.input_runs = {path};
      }
      if (exec_capable) {
        spec.factory = config.task_factory;
        spec.payload = config.task_payload;
      }
    });
    for (const Status& st : write_status) FSJOIN_RETURN_NOT_OK(st);
    red_body = [&factories](const TaskSpec& spec, TaskOutput* out) -> Status {
      return ExecuteReduceTaskFromRuns(spec, factories, out);
    };
  } else {
    red_body = [&](const TaskSpec& spec, TaskOutput* out) -> Status {
      WallTimer timer;
      ShuffleShard& shard = shards[spec.task_index];
      if (!shard.spilled()) shard.SortByKey();
      VectorEmitter emit(&out->records);
      std::unique_ptr<Reducer> reducer = config.reducer_factory();
      FSJOIN_RETURN_NOT_OK(ReduceShard(reducer.get(), shard, &emit,
                                       &out->metrics.max_group_bytes));
      out->metrics.wall_micros = timer.ElapsedMicros();
      out->metrics.output_records = emit.records();
      out->metrics.output_bytes = emit.bytes();
      return Status::OK();
    };
  }

  std::vector<Dataset> reduce_outputs(num_reds);
  auto red_done = [&](const TaskSpec& spec, TaskOutput out) -> Status {
    const uint32_t r = spec.task_index;
    reduce_outputs[r] = std::move(out.records);
    TaskMetrics tm = out.metrics;
    if (!net_shuffle) {
      // Shard-side counters are authoritative for both execution paths (a
      // transport run's reader would agree on records/bytes, but spill
      // accounting must not count transport runs). Network-shuffle tasks
      // instead report the totals their stream trailers cross-checked, and
      // never spill on the coordinator.
      tm.input_records = shards[r].NumRecords();
      tm.input_bytes = shards[r].PayloadBytes();
      tm.spilled_bytes = shards[r].spilled_bytes();
      tm.spill_runs = shards[r].spill_runs();
    }
    jm.reduce_output_records += tm.output_records;
    jm.reduce_output_bytes += tm.output_bytes;
    jm.reduce_wall_micros += tm.wall_micros;
    jm.spilled_bytes += tm.spilled_bytes;
    jm.spill_runs += tm.spill_runs;
    jm.reduce_tasks.push_back(tm);
    return Status::OK();
  };
  FSJOIN_RETURN_NOT_OK(scheduler.RunStage(std::move(red_specs), red_body,
                                          config.side, red_done));

  size_t out_total = 0;
  for (const Dataset& d : reduce_outputs) out_total += d.size();
  output->clear();
  output->reserve(out_total);
  for (Dataset& d : reduce_outputs) {
    std::move(d.begin(), d.end(), std::back_inserter(*output));
  }

  jm.total_wall_micros = job_timer.ElapsedMicros();
  if (metrics != nullptr) *metrics = std::move(jm);
  return Status::OK();
}

uint64_t DatasetBytes(const Dataset& dataset) {
  uint64_t total = 0;
  for (const KeyValue& kv : dataset) total += kv.SizeBytes();
  return total;
}

}  // namespace fsjoin::mr
