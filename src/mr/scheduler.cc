#include "mr/scheduler.h"

#include <mutex>
#include <utility>

namespace fsjoin::mr {

const char* TaskStateName(TaskState state) {
  switch (state) {
    case TaskState::kPending:
      return "pending";
    case TaskState::kRunning:
      return "running";
    case TaskState::kDone:
      return "done";
    case TaskState::kFailed:
      return "failed";
  }
  return "?";
}

Status TaskScheduler::RunStage(
    std::vector<TaskSpec> specs, const TaskBody& body,
    const TaskSideChannel& side,
    const std::function<Status(const TaskSpec&, TaskOutput)>& on_done) {
  records_.clear();
  records_.reserve(specs.size());
  for (TaskSpec& spec : specs) {
    TaskRecord record;
    record.spec = std::move(spec);
    records_.push_back(std::move(record));
  }

  std::vector<TaskOutput> outputs(records_.size());
  std::vector<size_t> pending(records_.size());
  for (size_t i = 0; i < pending.size(); ++i) pending[i] = i;
  std::mutex mu;

  // Rounds: run everything pending concurrently, then decide retries at
  // the round barrier. Retried tasks of a round re-run together in the
  // next one; tasks that succeeded are not touched again.
  while (!pending.empty()) {
    std::vector<size_t> round = std::move(pending);
    pending.clear();
    runner_->ParallelRun(round.size(), [&](size_t i) {
      const size_t t = round[i];
      TaskRecord& record = records_[t];
      {
        std::lock_guard<std::mutex> lock(mu);
        record.state = TaskState::kRunning;
        record.attempts += 1;
        record.spec.attempt = record.attempts - 1;
      }
      TaskOutput out;
      Status st = runner_->RunAttempt(record.spec, body, side, &out);
      std::lock_guard<std::mutex> lock(mu);
      if (st.ok()) {
        record.state = TaskState::kDone;
        outputs[t] = std::move(out);
      } else {
        record.state = TaskState::kFailed;
        record.last_error = std::move(st);
      }
    });

    for (size_t t : round) {
      TaskRecord& record = records_[t];
      if (record.state != TaskState::kFailed) continue;
      if (runner_->retryable() &&
          record.attempts <= static_cast<uint32_t>(max_task_retries_)) {
        record.state = TaskState::kPending;
        pending.push_back(t);
        continue;
      }
      return Status(record.last_error.code(),
                    "task '" + record.spec.job_name + "/" +
                        TaskKindName(record.spec.kind) +
                        std::to_string(record.spec.task_index) +
                        "' failed after " + std::to_string(record.attempts) +
                        " attempt(s): " + record.last_error.message());
    }
  }

  // Completion pass — the exactly-once boundary. Every task is kDone here;
  // deliver results in task-index order so downstream state is independent
  // of attempt/completion order. Side-channel merges hold the fork mutex:
  // no concurrent stage may fork a child while a context mutex is locked.
  for (size_t t = 0; t < records_.size(); ++t) {
    TaskOutput& out = outputs[t];
    out.metrics.attempts = records_[t].attempts;
    if (side.merge && !out.side_state.empty()) {
      std::lock_guard<std::mutex> lock(ProcessForkMutex());
      FSJOIN_RETURN_NOT_OK(side.merge(out.side_state));
    }
    FSJOIN_RETURN_NOT_OK(on_done(records_[t].spec, std::move(out)));
  }
  return Status::OK();
}

}  // namespace fsjoin::mr
