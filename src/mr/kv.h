#ifndef FSJOIN_MR_KV_H_
#define FSJOIN_MR_KV_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fsjoin::mr {

/// One record flowing through the engine. As in Hadoop, keys and values are
/// opaque byte strings; typed layers (util/serde.h) sit on top. Keys are
/// grouped by bytewise equality and sorted bytewise during the shuffle, so
/// multi-field keys should use order-preserving encodings (PutFixed*BE).
struct KeyValue {
  std::string key;
  std::string value;

  uint64_t SizeBytes() const { return key.size() + value.size(); }
};

/// An in-memory dataset: the unit stored in the MiniDfs and passed between
/// chained jobs. Inside a job the engine moves KvBuffer arenas instead; a
/// Dataset only materializes at job boundaries.
using Dataset = std::vector<KeyValue>;

/// Total serialized size of a dataset.
uint64_t DatasetBytes(const Dataset& dataset);

/// Append-only arena of key/value records: one contiguous byte buffer plus
/// a (offset, key_len, val_len) entry vector. Emitting a record appends its
/// bytes once; everything downstream (combiner sort, shuffle, grouped
/// reduce) works on string_views into the arena, so a record is never
/// re-copied between map emit and the reducer seeing it. Moving a KvBuffer
/// moves two pointers — the shuffle ships arenas, not records.
class KvBuffer {
 public:
  void Append(std::string_view key, std::string_view value) {
    entries_.push_back(Entry{data_.size(), static_cast<uint32_t>(key.size()),
                             static_cast<uint32_t>(value.size())});
    data_.append(key);
    data_.append(value);
  }

  /// Number of records.
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Total key+value bytes — the arena holds nothing else, so this is the
  /// exact shuffle byte count of the buffer.
  uint64_t PayloadBytes() const { return data_.size(); }

  std::string_view key(size_t i) const {
    const Entry& e = entries_[i];
    return std::string_view(data_.data() + e.offset, e.key_len);
  }

  std::string_view value(size_t i) const {
    const Entry& e = entries_[i];
    return std::string_view(data_.data() + e.offset + e.key_len, e.val_len);
  }

  /// key.size() + value.size() of record i.
  uint64_t RecordBytes(size_t i) const {
    const Entry& e = entries_[i];
    return static_cast<uint64_t>(e.key_len) + e.val_len;
  }

  /// The raw arena (for tests asserting views alias it).
  std::string_view arena() const { return data_; }

  void clear() {
    data_.clear();
    entries_.clear();
  }

 private:
  struct Entry {
    uint64_t offset;
    uint32_t key_len;
    uint32_t val_len;
  };

  std::string data_;
  std::vector<Entry> entries_;
};

}  // namespace fsjoin::mr

#endif  // FSJOIN_MR_KV_H_
