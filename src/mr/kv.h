#ifndef FSJOIN_MR_KV_H_
#define FSJOIN_MR_KV_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fsjoin::mr {

/// One record flowing through the engine. As in Hadoop, keys and values are
/// opaque byte strings; typed layers (util/serde.h) sit on top. Keys are
/// grouped by bytewise equality and sorted bytewise during the shuffle, so
/// multi-field keys should use order-preserving encodings (PutFixed*BE).
struct KeyValue {
  std::string key;
  std::string value;

  uint64_t SizeBytes() const { return key.size() + value.size(); }
};

/// An in-memory dataset: the unit stored in the MiniDfs and passed between
/// chained jobs.
using Dataset = std::vector<KeyValue>;

/// Total serialized size of a dataset.
uint64_t DatasetBytes(const Dataset& dataset);

}  // namespace fsjoin::mr

#endif  // FSJOIN_MR_KV_H_
