#ifndef FSJOIN_MR_METRICS_H_
#define FSJOIN_MR_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fsjoin::mr {

/// Per-task cost record, the input to the cluster makespan simulator.
struct TaskMetrics {
  int64_t wall_micros = 0;        ///< measured CPU/wall time of the task body
  uint64_t input_records = 0;
  uint64_t input_bytes = 0;
  uint64_t output_records = 0;
  uint64_t output_bytes = 0;
  /// Reduce tasks only: size of the largest single key group — the working
  /// set a reducer must hold to process one group (an FS-Join fragment).
  /// Drives the cluster simulator's memory/spill model.
  uint64_t max_group_bytes = 0;
  /// Reduce tasks only: key+value bytes this task's shard wrote to spill
  /// run files (0 when the shuffle stayed in memory), and how many runs.
  /// Measured, not inferred; the cluster simulator prefers these over its
  /// max_group_bytes heuristic when present.
  uint64_t spilled_bytes = 0;
  uint32_t spill_runs = 0;
  /// Execution attempts of this logical task (1 = ran clean; > 1 means the
  /// scheduler re-executed failed attempts). The counters above describe
  /// the final, successful attempt only — the scheduler merges metrics
  /// exactly once per logical task, so retries never double-count. The
  /// cluster simulator charges per-task overhead once per attempt.
  uint32_t attempts = 1;
};

/// Everything the engine measures about one MapReduce job. These counters
/// are the ground truth behind the reproduced tables/figures: duplicate
/// ratios, shuffle volume, per-reducer skew and phase times all come from
/// here.
struct JobMetrics {
  std::string job_name;
  /// Resolved overlap-kernel pipeline of the job's reducers (filtering job
  /// only, e.g. "simd[avx2]"; empty for jobs that run no fragment joins).
  /// Logged so A/B benchmark runs are self-describing.
  std::string join_kernel;

  uint64_t map_input_records = 0;
  uint64_t map_input_bytes = 0;
  uint64_t map_output_records = 0;  ///< after the combiner, if any
  uint64_t map_output_bytes = 0;
  uint64_t combine_input_records = 0;  ///< 0 when no combiner configured

  uint64_t shuffle_records = 0;
  uint64_t shuffle_bytes = 0;
  /// Key+value bytes spilled to disk during the shuffle (sum over reduce
  /// tasks; 0 when everything fit in the shuffle memory budget) and the
  /// number of run files written.
  uint64_t spilled_bytes = 0;
  uint32_t spill_runs = 0;

  uint64_t reduce_output_records = 0;
  uint64_t reduce_output_bytes = 0;

  std::vector<TaskMetrics> map_tasks;
  std::vector<TaskMetrics> reduce_tasks;

  int64_t map_wall_micros = 0;     ///< sum over map tasks
  int64_t reduce_wall_micros = 0;  ///< sum over reduce tasks
  int64_t total_wall_micros = 0;   ///< end-to-end engine time

  /// Records shuffled per input record: > 1 means the algorithm duplicates
  /// data (the paper's central critique of signature-based joins).
  double DuplicationFactor() const;

  /// max / mean of per-reduce-task input bytes; 1.0 = perfectly balanced.
  double ReduceSkew() const;

  /// Multi-line human-readable summary.
  std::string Summary() const;
};

/// Aggregates the counters of several chained jobs (phase times add up,
/// shuffle volumes add up; task vectors are concatenated).
JobMetrics CombineJobMetrics(const std::vector<JobMetrics>& jobs,
                             const std::string& name);

}  // namespace fsjoin::mr

#endif  // FSJOIN_MR_METRICS_H_
