#ifndef FSJOIN_MR_SHUFFLE_H_
#define FSJOIN_MR_SHUFFLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mr/job.h"
#include "mr/kv.h"
#include "store/memory_budget.h"
#include "store/record_stream.h"
#include "util/status.h"

namespace fsjoin::mr {

/// The shuffle data plane: arena-backed record batches sorted by a
/// fixed-width key tag and reduced through windows over the sorted arena
/// (see DESIGN.md "Shuffle data layout"). With spilling enabled the shard
/// writes key-sorted run files once a MemoryBudget trips and the reduce
/// side streams a k-way merge instead (DESIGN.md §5e).

/// First 8 key bytes as a big-endian integer, zero-padded for shorter keys.
/// Comparing tags equals comparing the keys' first 8 bytes bytewise, so a
/// sort on (tag, full-key-on-tie) orders keys exactly like bytewise
/// comparison — and every FS-Join key is a 4- or 8-byte big-endian prefix,
/// so ties beyond the tag are almost always true key equality.
uint64_t KeyTag(std::string_view key);

/// Everything shuffled to one reduce task: the arenas moved from each map
/// task plus a sort index of (tag, key length, buffer, entry) references.
/// Sorting moves small references and compares integers; record bytes never
/// move, and keys at most 8 bytes long (every core FS-Join key) are ordered
/// without touching the arena at all.
///
/// External shuffle: after EnableSpill(), every AddBuffer() charges the
/// buffer's payload bytes against the budget; when a charge reports
/// over-budget the shard sorts what it holds and writes it to a run file,
/// freeing the arenas. Because each run is written in key order and runs
/// are numbered in buffer-arrival order, a k-way merge that breaks key
/// ties on run index reproduces exactly the order SortByKey() would have
/// produced in memory.
class ShuffleShard {
 public:
  ShuffleShard() = default;
  ShuffleShard(ShuffleShard&& other) noexcept;
  ShuffleShard& operator=(ShuffleShard&& other) noexcept;
  ShuffleShard(const ShuffleShard&) = delete;
  ShuffleShard& operator=(const ShuffleShard&) = delete;
  ~ShuffleShard();

  /// Arms spill-to-disk: arena payload bytes are charged to `budget` as
  /// buffers arrive and runs are written into `dir` (named
  /// "<file_prefix>-run<N>.run") whenever a charge trips. Must be called
  /// before the first AddBuffer().
  void EnableSpill(store::MemoryBudget* budget, std::string dir,
                   std::string file_prefix);

  /// Takes ownership of one map task's partition buffer. Empty buffers are
  /// dropped. Must not be called after SortByKey(). Only spill-path I/O
  /// can fail; without EnableSpill() the status is always OK.
  Status AddBuffer(KvBuffer buffer);

  /// With at least one run on disk and records still in memory, spills the
  /// remainder so the shard's records live entirely in key-sorted runs
  /// (the remainder holds the newest arrivals, so it becomes the
  /// highest-numbered run and the merge tie-break keeps arrival order).
  /// No-op for purely in-memory shards. Call after the last AddBuffer().
  Status Seal();

  /// Total records added, in memory or spilled.
  size_t NumRecords() const { return total_records_; }
  /// Total key+value bytes added, in memory or spilled.
  uint64_t PayloadBytes() const { return payload_bytes_; }

  /// True once any run has been written; the reduce side must then merge
  /// run_paths() instead of indexing records.
  bool spilled() const { return !run_paths_.empty(); }
  const std::vector<std::string>& run_paths() const { return run_paths_; }
  /// Key+value bytes written to run files / number of runs.
  uint64_t spilled_bytes() const { return spilled_bytes_; }
  uint32_t spill_runs() const {
    return static_cast<uint32_t>(run_paths_.size());
  }

  /// Sorts the index by key (bytewise order). Ties on equal keys keep
  /// buffer-arrival then append order — the same order the seed engine's
  /// stable_sort over concatenated buffers produced.
  void SortByKey();

  /// Key/value of the i-th record in index order (sorted after SortByKey).
  /// Only valid for records still in memory, i.e. for any i only when
  /// !spilled().
  std::string_view key(size_t i) const {
    const Ref& r = refs_[i];
    return buffers_[r.buffer].key(r.index);
  }
  std::string_view value(size_t i) const {
    const Ref& r = refs_[i];
    return buffers_[r.buffer].value(r.index);
  }
  uint64_t RecordBytes(size_t i) const {
    const Ref& r = refs_[i];
    return buffers_[r.buffer].RecordBytes(r.index);
  }

  /// The underlying arenas (for tests asserting zero-copy).
  const std::vector<KvBuffer>& buffers() const { return buffers_; }

 private:
  struct Ref {
    uint64_t tag;
    uint32_t buffer;
    uint32_t index;
    uint32_t key_len;
  };

  bool RefLess(const Ref& a, const Ref& b) const;

  /// Sorts the in-memory records, writes them as the next run file and
  /// releases their arenas and budget charge.
  Status SpillNow();

  std::vector<KvBuffer> buffers_;
  std::vector<Ref> refs_;
  uint64_t payload_bytes_ = 0;
  uint64_t total_records_ = 0;

  store::MemoryBudget* budget_ = nullptr;
  std::string spill_dir_;
  std::string spill_prefix_;
  std::vector<std::string> run_paths_;
  uint64_t live_bytes_ = 0;  // payload bytes currently charged to budget_
  uint64_t spilled_bytes_ = 0;
};

/// Runs `reducer` over the key groups of a sorted shard. Values are
/// string_views into the shard's arenas — zero per-value copies. Tracks the
/// largest group's key+value byte size in *max_group_bytes when non-null.
/// A spilled shard is reduced by streaming a loser-tree merge of its run
/// files instead; the reducer cannot tell the difference.
Status ReduceShard(Reducer* reducer, const ShuffleShard& shard, Emitter* out,
                   uint64_t* max_group_bytes = nullptr);

/// Runs `reducer` over the key groups of an already-merged sorted record
/// stream (run-file merge or any other RecordStream). Group values are
/// accumulated in one arena per group, so the Reduce() call sees the same
/// zero-copy span-of-views API as the in-memory path.
Status ReduceMergedStream(Reducer* reducer, store::RecordStream* stream,
                          Emitter* out, uint64_t* max_group_bytes = nullptr);

/// Adapts a key-sorted materialized Dataset to a store::RecordStream so it
/// can participate in a merge next to spilled runs (used by the fused
/// dataflow backend when only some shuffle buckets spill).
class DatasetStream : public store::RecordStream {
 public:
  /// `data` must stay alive and unmodified while the stream is consumed.
  explicit DatasetStream(const Dataset* data) : data_(data) {}

  Status Next(bool* has_record, std::string_view* key,
              std::string_view* value) override;

 private:
  const Dataset* data_;
  size_t pos_ = 0;
};

/// Sorts a materialized Dataset by key with the same tag fast path:
/// sorts (tag, index) pairs, then applies the permutation with string
/// moves. Stable (equal keys keep their relative order), replacing
/// bytewise std::stable_sort at the dataflow layer.
void SortDatasetByKey(Dataset* data);

}  // namespace fsjoin::mr

#endif  // FSJOIN_MR_SHUFFLE_H_
