#ifndef FSJOIN_MR_SHUFFLE_H_
#define FSJOIN_MR_SHUFFLE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "mr/job.h"
#include "mr/kv.h"
#include "util/status.h"

namespace fsjoin::mr {

/// The shuffle data plane: arena-backed record batches sorted by a
/// fixed-width key tag and reduced through windows over the sorted arena
/// (see DESIGN.md "Shuffle data layout").

/// First 8 key bytes as a big-endian integer, zero-padded for shorter keys.
/// Comparing tags equals comparing the keys' first 8 bytes bytewise, so a
/// sort on (tag, full-key-on-tie) orders keys exactly like bytewise
/// comparison — and every FS-Join key is a 4- or 8-byte big-endian prefix,
/// so ties beyond the tag are almost always true key equality.
uint64_t KeyTag(std::string_view key);

/// Everything shuffled to one reduce task: the arenas moved from each map
/// task plus a sort index of (tag, key length, buffer, entry) references.
/// Sorting moves small references and compares integers; record bytes never
/// move, and keys at most 8 bytes long (every core FS-Join key) are ordered
/// without touching the arena at all.
class ShuffleShard {
 public:
  /// Takes ownership of one map task's partition buffer. Empty buffers are
  /// dropped. Must not be called after SortByKey().
  void AddBuffer(KvBuffer buffer);

  size_t NumRecords() const { return refs_.size(); }
  uint64_t PayloadBytes() const { return payload_bytes_; }

  /// Sorts the index by key (bytewise order). Ties on equal keys keep
  /// buffer-arrival then append order — the same order the seed engine's
  /// stable_sort over concatenated buffers produced.
  void SortByKey();

  /// Key/value of the i-th record in index order (sorted after SortByKey).
  std::string_view key(size_t i) const {
    const Ref& r = refs_[i];
    return buffers_[r.buffer].key(r.index);
  }
  std::string_view value(size_t i) const {
    const Ref& r = refs_[i];
    return buffers_[r.buffer].value(r.index);
  }
  uint64_t RecordBytes(size_t i) const {
    const Ref& r = refs_[i];
    return buffers_[r.buffer].RecordBytes(r.index);
  }

  /// The underlying arenas (for tests asserting zero-copy).
  const std::vector<KvBuffer>& buffers() const { return buffers_; }

 private:
  struct Ref {
    uint64_t tag;
    uint32_t buffer;
    uint32_t index;
    uint32_t key_len;
  };

  bool RefLess(const Ref& a, const Ref& b) const;

  std::vector<KvBuffer> buffers_;
  std::vector<Ref> refs_;
  uint64_t payload_bytes_ = 0;
};

/// Runs `reducer` over the key groups of a sorted shard. Values are
/// string_views into the shard's arenas — zero per-value copies. Tracks the
/// largest group's key+value byte size in *max_group_bytes when non-null.
Status ReduceShard(Reducer* reducer, const ShuffleShard& shard, Emitter* out,
                   uint64_t* max_group_bytes = nullptr);

/// Sorts a materialized Dataset by key with the same tag fast path:
/// sorts (tag, index) pairs, then applies the permutation with string
/// moves. Stable (equal keys keep their relative order), replacing
/// bytewise std::stable_sort at the dataflow layer.
void SortDatasetByKey(Dataset* data);

}  // namespace fsjoin::mr

#endif  // FSJOIN_MR_SHUFFLE_H_
