#include "mr/shuffle.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "store/merge.h"
#include "store/run_file.h"

namespace fsjoin::mr {

uint64_t KeyTag(std::string_view key) {
  uint64_t tag = 0;
  const size_t n = std::min<size_t>(key.size(), 8);
  for (size_t i = 0; i < n; ++i) {
    tag |= static_cast<uint64_t>(static_cast<unsigned char>(key[i]))
           << (56 - 8 * i);
  }
  return tag;
}

ShuffleShard::ShuffleShard(ShuffleShard&& other) noexcept
    : buffers_(std::move(other.buffers_)),
      refs_(std::move(other.refs_)),
      payload_bytes_(std::exchange(other.payload_bytes_, 0)),
      total_records_(std::exchange(other.total_records_, 0)),
      budget_(std::exchange(other.budget_, nullptr)),
      spill_dir_(std::move(other.spill_dir_)),
      spill_prefix_(std::move(other.spill_prefix_)),
      run_paths_(std::move(other.run_paths_)),
      live_bytes_(std::exchange(other.live_bytes_, 0)),
      spilled_bytes_(std::exchange(other.spilled_bytes_, 0)) {}

ShuffleShard& ShuffleShard::operator=(ShuffleShard&& other) noexcept {
  if (this != &other) {
    if (budget_ != nullptr && live_bytes_ > 0) budget_->Release(live_bytes_);
    buffers_ = std::move(other.buffers_);
    refs_ = std::move(other.refs_);
    payload_bytes_ = std::exchange(other.payload_bytes_, 0);
    total_records_ = std::exchange(other.total_records_, 0);
    budget_ = std::exchange(other.budget_, nullptr);
    spill_dir_ = std::move(other.spill_dir_);
    spill_prefix_ = std::move(other.spill_prefix_);
    run_paths_ = std::move(other.run_paths_);
    live_bytes_ = std::exchange(other.live_bytes_, 0);
    spilled_bytes_ = std::exchange(other.spilled_bytes_, 0);
  }
  return *this;
}

ShuffleShard::~ShuffleShard() {
  if (budget_ != nullptr && live_bytes_ > 0) budget_->Release(live_bytes_);
}

void ShuffleShard::EnableSpill(store::MemoryBudget* budget, std::string dir,
                               std::string file_prefix) {
  budget_ = budget;
  spill_dir_ = std::move(dir);
  spill_prefix_ = std::move(file_prefix);
}

Status ShuffleShard::AddBuffer(KvBuffer buffer) {
  if (buffer.empty()) return Status::OK();
  const uint32_t b = static_cast<uint32_t>(buffers_.size());
  refs_.reserve(refs_.size() + buffer.size());
  for (size_t i = 0; i < buffer.size(); ++i) {
    const std::string_view key = buffer.key(i);
    refs_.push_back(Ref{KeyTag(key), b, static_cast<uint32_t>(i),
                        static_cast<uint32_t>(key.size())});
  }
  const uint64_t bytes = buffer.PayloadBytes();
  payload_bytes_ += bytes;
  total_records_ += buffer.size();
  buffers_.push_back(std::move(buffer));
  if (budget_ != nullptr) {
    live_bytes_ += bytes;
    // Charge never fails — the arena already exists — but a false return
    // means this shard is the one asked to relieve the pressure.
    if (!budget_->Charge(bytes)) return SpillNow();
  }
  return Status::OK();
}

Status ShuffleShard::SpillNow() {
  if (refs_.empty()) return Status::OK();
  SortByKey();
  std::string path = spill_dir_ + "/" + spill_prefix_ + "-run" +
                     std::to_string(run_paths_.size()) + ".run";
  store::RunWriter writer(path);
  FSJOIN_RETURN_NOT_OK(writer.Open());
  for (size_t i = 0; i < refs_.size(); ++i) {
    FSJOIN_RETURN_NOT_OK(writer.Add(key(i), value(i)));
  }
  FSJOIN_RETURN_NOT_OK(writer.Finish());
  spilled_bytes_ += writer.payload_bytes();
  run_paths_.push_back(std::move(path));
  buffers_.clear();
  refs_.clear();
  if (budget_ != nullptr) budget_->Release(live_bytes_);
  live_bytes_ = 0;
  return Status::OK();
}

Status ShuffleShard::Seal() {
  if (run_paths_.empty() || refs_.empty()) return Status::OK();
  return SpillNow();
}

bool ShuffleShard::RefLess(const Ref& a, const Ref& b) const {
  if (a.tag != b.tag) return a.tag < b.tag;
  if (a.key_len <= 8 || b.key_len <= 8) {
    // Tag-equal with a short key on at least one side: the shorter key's
    // zero-padded 8-byte form matches the longer's first 8 bytes, meaning
    // the shorter key is a strict prefix — length alone decides the order,
    // with no arena access.
    if (a.key_len != b.key_len) return a.key_len < b.key_len;
  } else {
    // Both keys exceed the tag and agree on their first 8 bytes: compare
    // the rest.
    const std::string_view ka = buffers_[a.buffer].key(a.index);
    const std::string_view kb = buffers_[b.buffer].key(b.index);
    const int c = ka.substr(8).compare(kb.substr(8));
    if (c != 0) return c < 0;
  }
  // Equal keys: arrival order, reproducing the seed's stable_sort.
  if (a.buffer != b.buffer) return a.buffer < b.buffer;
  return a.index < b.index;
}

void ShuffleShard::SortByKey() {
  std::sort(refs_.begin(), refs_.end(),
            [this](const Ref& a, const Ref& b) { return RefLess(a, b); });
}

Status ReduceShard(Reducer* reducer, const ShuffleShard& shard, Emitter* out,
                   uint64_t* max_group_bytes) {
  if (shard.spilled()) {
    std::vector<std::unique_ptr<store::RecordStream>> sources;
    sources.reserve(shard.run_paths().size());
    for (const std::string& path : shard.run_paths()) {
      FSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<store::RunReader> reader,
                              store::RunReader::Open(path));
      sources.push_back(std::move(reader));
    }
    store::LoserTreeMerge merge(std::move(sources));
    return ReduceMergedStream(reducer, &merge, out, max_group_bytes);
  }
  FSJOIN_RETURN_NOT_OK(reducer->Setup());
  std::vector<std::string_view> values;
  const size_t n = shard.NumRecords();
  size_t i = 0;
  while (i < n) {
    const std::string_view group_key = shard.key(i);
    values.clear();
    uint64_t group_bytes = 0;
    size_t j = i;
    while (j < n && shard.key(j) == group_key) {
      values.push_back(shard.value(j));
      group_bytes += shard.RecordBytes(j);
      ++j;
    }
    if (max_group_bytes != nullptr) {
      *max_group_bytes = std::max(*max_group_bytes, group_bytes);
    }
    FSJOIN_RETURN_NOT_OK(
        reducer->Reduce(group_key, ValueList(values.data(), values.size()),
                        out));
    i = j;
  }
  return reducer->Finish(out);
}

Status ReduceMergedStream(Reducer* reducer, store::RecordStream* stream,
                          Emitter* out, uint64_t* max_group_bytes) {
  FSJOIN_RETURN_NOT_OK(reducer->Setup());
  // One arena holds the current group: its key first, then every value
  // back to back. Spans are offsets, not views — the arena may reallocate
  // while the group grows — and become views only when the group closes.
  std::string arena;
  size_t key_len = 0;
  std::vector<std::pair<size_t, size_t>> spans;  // (offset, len) into arena
  std::vector<std::string_view> values;
  uint64_t group_bytes = 0;
  bool have_group = false;

  auto flush_group = [&]() -> Status {
    values.clear();
    values.reserve(spans.size());
    for (const auto& [off, len] : spans) {
      values.emplace_back(arena.data() + off, len);
    }
    if (max_group_bytes != nullptr) {
      *max_group_bytes = std::max(*max_group_bytes, group_bytes);
    }
    return reducer->Reduce(std::string_view(arena.data(), key_len),
                           ValueList(values.data(), values.size()), out);
  };

  for (;;) {
    bool has = false;
    std::string_view key, value;
    FSJOIN_RETURN_NOT_OK(stream->Next(&has, &key, &value));
    if (!has) break;
    if (!have_group || key != std::string_view(arena.data(), key_len)) {
      if (have_group) FSJOIN_RETURN_NOT_OK(flush_group());
      arena.assign(key.data(), key.size());
      key_len = key.size();
      spans.clear();
      group_bytes = 0;
      have_group = true;
    }
    spans.emplace_back(arena.size(), value.size());
    arena.append(value);
    group_bytes += key.size() + value.size();
  }
  if (have_group) FSJOIN_RETURN_NOT_OK(flush_group());
  return reducer->Finish(out);
}

Status DatasetStream::Next(bool* has_record, std::string_view* key,
                           std::string_view* value) {
  if (pos_ >= data_->size()) {
    *has_record = false;
    return Status::OK();
  }
  const KeyValue& kv = (*data_)[pos_++];
  *key = kv.key;
  *value = kv.value;
  *has_record = true;
  return Status::OK();
}

void SortDatasetByKey(Dataset* data) {
  struct Ref {
    uint64_t tag;
    uint32_t index;
    uint32_t key_len;
  };
  const size_t n = data->size();
  std::vector<Ref> refs;
  refs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const std::string& key = (*data)[i].key;
    refs.push_back(Ref{KeyTag(key), static_cast<uint32_t>(i),
                       static_cast<uint32_t>(key.size())});
  }
  std::sort(refs.begin(), refs.end(), [data](const Ref& a, const Ref& b) {
    if (a.tag != b.tag) return a.tag < b.tag;
    if (a.key_len <= 8 || b.key_len <= 8) {
      // See ShuffleShard::RefLess: a tag tie with a short key means the
      // shorter key is a strict prefix of the longer.
      if (a.key_len != b.key_len) return a.key_len < b.key_len;
    } else {
      const int c = std::string_view((*data)[a.index].key)
                        .substr(8)
                        .compare(std::string_view((*data)[b.index].key)
                                     .substr(8));
      if (c != 0) return c < 0;
    }
    return a.index < b.index;
  });
  Dataset sorted;
  sorted.reserve(n);
  for (const Ref& r : refs) sorted.push_back(std::move((*data)[r.index]));
  *data = std::move(sorted);
}

}  // namespace fsjoin::mr
