#include "mr/shuffle.h"

#include <algorithm>

namespace fsjoin::mr {

uint64_t KeyTag(std::string_view key) {
  uint64_t tag = 0;
  const size_t n = std::min<size_t>(key.size(), 8);
  for (size_t i = 0; i < n; ++i) {
    tag |= static_cast<uint64_t>(static_cast<unsigned char>(key[i]))
           << (56 - 8 * i);
  }
  return tag;
}

void ShuffleShard::AddBuffer(KvBuffer buffer) {
  if (buffer.empty()) return;
  const uint32_t b = static_cast<uint32_t>(buffers_.size());
  refs_.reserve(refs_.size() + buffer.size());
  for (size_t i = 0; i < buffer.size(); ++i) {
    const std::string_view key = buffer.key(i);
    refs_.push_back(Ref{KeyTag(key), b, static_cast<uint32_t>(i),
                        static_cast<uint32_t>(key.size())});
  }
  payload_bytes_ += buffer.PayloadBytes();
  buffers_.push_back(std::move(buffer));
}

bool ShuffleShard::RefLess(const Ref& a, const Ref& b) const {
  if (a.tag != b.tag) return a.tag < b.tag;
  if (a.key_len <= 8 || b.key_len <= 8) {
    // Tag-equal with a short key on at least one side: the shorter key's
    // zero-padded 8-byte form matches the longer's first 8 bytes, meaning
    // the shorter key is a strict prefix — length alone decides the order,
    // with no arena access.
    if (a.key_len != b.key_len) return a.key_len < b.key_len;
  } else {
    // Both keys exceed the tag and agree on their first 8 bytes: compare
    // the rest.
    const std::string_view ka = buffers_[a.buffer].key(a.index);
    const std::string_view kb = buffers_[b.buffer].key(b.index);
    const int c = ka.substr(8).compare(kb.substr(8));
    if (c != 0) return c < 0;
  }
  // Equal keys: arrival order, reproducing the seed's stable_sort.
  if (a.buffer != b.buffer) return a.buffer < b.buffer;
  return a.index < b.index;
}

void ShuffleShard::SortByKey() {
  std::sort(refs_.begin(), refs_.end(),
            [this](const Ref& a, const Ref& b) { return RefLess(a, b); });
}

Status ReduceShard(Reducer* reducer, const ShuffleShard& shard, Emitter* out,
                   uint64_t* max_group_bytes) {
  FSJOIN_RETURN_NOT_OK(reducer->Setup());
  std::vector<std::string_view> values;
  const size_t n = shard.NumRecords();
  size_t i = 0;
  while (i < n) {
    const std::string_view group_key = shard.key(i);
    values.clear();
    uint64_t group_bytes = 0;
    size_t j = i;
    while (j < n && shard.key(j) == group_key) {
      values.push_back(shard.value(j));
      group_bytes += shard.RecordBytes(j);
      ++j;
    }
    if (max_group_bytes != nullptr) {
      *max_group_bytes = std::max(*max_group_bytes, group_bytes);
    }
    FSJOIN_RETURN_NOT_OK(
        reducer->Reduce(group_key, ValueList(values.data(), values.size()),
                        out));
    i = j;
  }
  return reducer->Finish(out);
}

void SortDatasetByKey(Dataset* data) {
  struct Ref {
    uint64_t tag;
    uint32_t index;
    uint32_t key_len;
  };
  const size_t n = data->size();
  std::vector<Ref> refs;
  refs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const std::string& key = (*data)[i].key;
    refs.push_back(Ref{KeyTag(key), static_cast<uint32_t>(i),
                       static_cast<uint32_t>(key.size())});
  }
  std::sort(refs.begin(), refs.end(), [data](const Ref& a, const Ref& b) {
    if (a.tag != b.tag) return a.tag < b.tag;
    if (a.key_len <= 8 || b.key_len <= 8) {
      // See ShuffleShard::RefLess: a tag tie with a short key means the
      // shorter key is a strict prefix of the longer.
      if (a.key_len != b.key_len) return a.key_len < b.key_len;
    } else {
      const int c = std::string_view((*data)[a.index].key)
                        .substr(8)
                        .compare(std::string_view((*data)[b.index].key)
                                     .substr(8));
      if (c != 0) return c < 0;
    }
    return a.index < b.index;
  });
  Dataset sorted;
  sorted.reserve(n);
  for (const Ref& r : refs) sorted.push_back(std::move((*data)[r.index]));
  *data = std::move(sorted);
}

}  // namespace fsjoin::mr
