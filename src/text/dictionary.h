#ifndef FSJOIN_TEXT_DICTIONARY_H_
#define FSJOIN_TEXT_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/record.h"
#include "util/status.h"

namespace fsjoin {

/// Interns token strings to dense TokenIds and tracks per-token term
/// frequency (number of records containing the token — set semantics).
class TokenDictionary {
 public:
  TokenDictionary() = default;

  /// Returns the id for `token`, interning it on first sight.
  TokenId Intern(std::string_view token);

  /// Looks up an existing token. NotFound if never interned.
  Result<TokenId> Lookup(std::string_view token) const;

  /// The token string for an id. Requires id < size().
  const std::string& TokenString(TokenId id) const;

  /// Increments the term frequency of `id` by `delta`.
  void AddFrequency(TokenId id, uint64_t delta);

  /// Term frequency of `id` (0 if never counted).
  uint64_t Frequency(TokenId id) const;

  /// Number of distinct tokens (the paper's token domain |U|).
  size_t size() const { return tokens_.size(); }

 private:
  std::unordered_map<std::string, TokenId> index_;
  std::vector<std::string> tokens_;
  std::vector<uint64_t> frequency_;
};

}  // namespace fsjoin

#endif  // FSJOIN_TEXT_DICTIONARY_H_
