#include "text/generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/random.h"
#include "util/string_util.h"

namespace fsjoin {

namespace {

// Draws a record length: log-normal around avg_len, clipped to
// [min_len, max_len].
uint64_t DrawLength(const SyntheticCorpusConfig& cfg, Rng& rng) {
  double mu = std::log(cfg.avg_len);
  double x = std::exp(rng.NextGaussian(mu, cfg.len_sigma));
  uint64_t len = static_cast<uint64_t>(std::llround(x));
  len = std::max<uint64_t>(len, cfg.min_len);
  len = std::min<uint64_t>(len, cfg.max_len);
  len = std::min<uint64_t>(len, cfg.vocab_size);
  return std::max<uint64_t>(len, 1);
}

// Draws `len` distinct token ranks from the Zipf sampler.
std::vector<TokenId> DrawTokenSet(uint64_t len, const ZipfSampler& zipf,
                                  Rng& rng) {
  std::unordered_set<TokenId> seen;
  seen.reserve(len * 2);
  std::vector<TokenId> out;
  out.reserve(len);
  // Rejection loop; for len close to vocab_size this degrades, so fall back
  // to a scan-based draw when the target is a large share of the domain.
  if (len * 2 >= zipf.n()) {
    for (TokenId t = 0; t < zipf.n() && out.size() < len; ++t) out.push_back(t);
    return out;
  }
  while (out.size() < len) {
    TokenId t = static_cast<TokenId>(zipf.Sample(rng));
    if (seen.insert(t).second) out.push_back(t);
  }
  return out;
}

}  // namespace

Corpus GenerateCorpus(const SyntheticCorpusConfig& cfg) {
  // A zero-record or zero-vocabulary request is an empty workload, not a
  // programming error: return an empty corpus (no records, no dictionary)
  // so sweep drivers can scale record counts all the way down to nothing.
  if (cfg.num_records == 0 || cfg.vocab_size == 0) return Corpus{};
  Rng rng(cfg.seed);
  ZipfSampler zipf(cfg.vocab_size, cfg.zipf_skew);

  Corpus corpus;
  corpus.records.reserve(cfg.num_records);

  // Pre-intern the token domain so TokenId == Zipf rank: rank 0 is the most
  // popular token. This keeps the mapping between popularity and id obvious
  // in tests; the global ordering module never relies on it.
  for (uint64_t t = 0; t < cfg.vocab_size; ++t) {
    corpus.dictionary.Intern(StrFormat("t%llu", static_cast<unsigned long long>(t)));
  }

  // Indices of non-duplicate records; duplicates copy only from these so
  // duplicate clusters stay small (no copy-of-copy drift chains, which
  // would flood joins with medium-similarity pairs real corpora lack).
  std::vector<size_t> originals;

  for (uint64_t i = 0; i < cfg.num_records; ++i) {
    Record rec;
    rec.id = static_cast<RecordId>(i);
    bool make_duplicate =
        !originals.empty() && rng.NextBool(cfg.near_duplicate_fraction);
    if (make_duplicate) {
      const Record& base =
          corpus.records[originals[static_cast<size_t>(
              rng.NextBounded(originals.size()))]];
      rec.tokens = base.tokens;
      // Mutate: replace a fraction of tokens with fresh draws, then
      // occasionally drop or add one.
      for (TokenId& t : rec.tokens) {
        if (rng.NextBool(cfg.mutation_rate)) {
          t = static_cast<TokenId>(zipf.Sample(rng));
        }
      }
      if (!rec.tokens.empty() && rng.NextBool(0.3)) {
        rec.tokens.pop_back();
      }
      if (rng.NextBool(0.3)) {
        rec.tokens.push_back(static_cast<TokenId>(zipf.Sample(rng)));
      }
      std::sort(rec.tokens.begin(), rec.tokens.end());
      rec.tokens.erase(std::unique(rec.tokens.begin(), rec.tokens.end()),
                       rec.tokens.end());
      if (rec.tokens.empty()) {
        rec.tokens.push_back(static_cast<TokenId>(zipf.Sample(rng)));
      }
    } else {
      uint64_t len = DrawLength(cfg, rng);
      rec.tokens = DrawTokenSet(len, zipf, rng);
      std::sort(rec.tokens.begin(), rec.tokens.end());
      originals.push_back(static_cast<size_t>(i));
    }
    for (TokenId t : rec.tokens) corpus.dictionary.AddFrequency(t, 1);
    corpus.records.push_back(std::move(rec));
  }
  return corpus;
}

// NOTE on calibration: record counts are scaled far below the real corpora
// (single-machine budget), so vocabularies must stay large *relative to the
// corpus* to preserve the cross-pair token-sharing rate — the quantity that
// drives candidate counts and filter effectiveness. The real corpora have
// multi-million-token vocabularies; shrinking records without shrinking
// vocabulary proportionally keeps the same "two random records share almost
// nothing" sparsity they exhibit. See DESIGN.md.

SyntheticCorpusConfig EmailLikeConfig(double scale) {
  SyntheticCorpusConfig cfg;
  cfg.name = "email";
  // Enron: 517k records, long messages with a very heavy length tail.
  cfg.num_records = std::max<uint64_t>(static_cast<uint64_t>(1500 * scale), 10);
  cfg.vocab_size = 250000;
  cfg.zipf_skew = 0.6;
  cfg.avg_len = 350;
  cfg.len_sigma = 0.9;
  cfg.min_len = 30;
  cfg.max_len = 6000;
  cfg.near_duplicate_fraction = 0.30;
  cfg.mutation_rate = 0.05;
  cfg.seed = 1001;
  return cfg;
}

SyntheticCorpusConfig PubMedLikeConfig(double scale) {
  SyntheticCorpusConfig cfg;
  cfg.name = "pubmed";
  // PubMed: 7.4M abstracts, avg ~80 tokens, technical vocabulary (very
  // large, weakly skewed).
  cfg.num_records = std::max<uint64_t>(static_cast<uint64_t>(20000 * scale), 10);
  cfg.vocab_size = 400000;
  cfg.zipf_skew = 0.5;
  cfg.avg_len = 80;
  cfg.len_sigma = 0.7;
  cfg.min_len = 3;
  cfg.max_len = 1200;
  cfg.near_duplicate_fraction = 0.25;
  cfg.mutation_rate = 0.08;
  cfg.seed = 1002;
  return cfg;
}

SyntheticCorpusConfig WikiLikeConfig(double scale) {
  SyntheticCorpusConfig cfg;
  cfg.name = "wiki";
  // Wikipedia abstracts: 4.3M records, avg ~56 tokens; more skewed
  // vocabulary than PubMed (common encyclopedic phrasing).
  cfg.num_records = std::max<uint64_t>(static_cast<uint64_t>(15000 * scale), 10);
  cfg.vocab_size = 300000;
  cfg.zipf_skew = 0.7;
  cfg.avg_len = 45;
  cfg.len_sigma = 0.6;
  cfg.min_len = 2;
  cfg.max_len = 700;
  cfg.near_duplicate_fraction = 0.25;
  cfg.mutation_rate = 0.10;
  cfg.seed = 1003;
  return cfg;
}

}  // namespace fsjoin
