#ifndef FSJOIN_TEXT_CORPUS_H_
#define FSJOIN_TEXT_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "text/dictionary.h"
#include "text/record.h"
#include "text/tokenizer.h"
#include "util/status.h"

namespace fsjoin {

/// A tokenized string collection: the unit all joins operate on.
///
/// Invariants (checked by Validate()):
///  * records[i].id == i (dense ids);
///  * every record's tokens are sorted ascending by TokenId and unique;
///  * dictionary frequencies equal the number of records containing each
///    token.
struct Corpus {
  std::vector<Record> records;
  TokenDictionary dictionary;

  size_t NumRecords() const { return records.size(); }

  /// Total number of set elements across records.
  uint64_t TotalTokens() const;

  /// Verifies the structural invariants above.
  Status Validate() const;
};

/// Tokenizes raw lines (one record per line) into a Corpus: per-record
/// token sets are deduplicated and sorted; dictionary frequencies are the
/// per-record (set) term frequencies used for the global ordering.
Corpus BuildCorpus(const std::vector<std::string>& lines,
                   const Tokenizer& tokenizer);

/// Keeps records[i] for the given ids, renumbering them densely (used for
/// the paper's 4X/6X/8X/10X random samples). Frequencies are recomputed.
Corpus SampleCorpus(const Corpus& corpus, const std::vector<RecordId>& keep);

/// Summary statistics mirroring the paper's Table III.
struct CorpusStats {
  uint64_t num_records = 0;
  uint64_t vocab_size = 0;
  uint64_t total_tokens = 0;
  uint64_t min_len = 0;
  uint64_t max_len = 0;
  double avg_len = 0.0;
  uint64_t approx_bytes = 0;  ///< serialized size of token-id data
};

/// Computes corpus statistics in one pass.
CorpusStats ComputeStats(const Corpus& corpus);

}  // namespace fsjoin

#endif  // FSJOIN_TEXT_CORPUS_H_
