#ifndef FSJOIN_TEXT_RECORD_H_
#define FSJOIN_TEXT_RECORD_H_

#include <cstdint>
#include <vector>

namespace fsjoin {

/// Identifier of an interned token.
using TokenId = uint32_t;

/// Identifier of a record within a corpus (dense, 0-based).
using RecordId = uint32_t;

/// One input string viewed as a *set* of tokens (SSJoin semantics, §II of
/// the paper): tokens are deduplicated and kept sorted ascending by TokenId.
struct Record {
  RecordId id = 0;
  std::vector<TokenId> tokens;

  /// Number of set elements (paper's |s|).
  size_t Size() const { return tokens.size(); }
};

}  // namespace fsjoin

#endif  // FSJOIN_TEXT_RECORD_H_
