#include "text/corpus_io.h"

#include <fstream>
#include <sstream>

namespace fsjoin {

Result<std::vector<std::string>> ReadLines(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  if (in.bad()) return Status::IoError("read failure: " + path);
  return lines;
}

Status WriteCorpusText(const Corpus& corpus, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  for (const Record& rec : corpus.records) {
    for (size_t i = 0; i < rec.tokens.size(); ++i) {
      if (i > 0) out << ' ';
      out << corpus.dictionary.TokenString(rec.tokens[i]);
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write failure: " + path);
  return Status::OK();
}

Result<Corpus> ReadCorpusText(const std::string& path) {
  FSJOIN_ASSIGN_OR_RETURN(std::vector<std::string> lines, ReadLines(path));
  WhitespaceTokenizer tokenizer;
  return BuildCorpus(lines, tokenizer);
}

}  // namespace fsjoin
