#include "text/corpus.h"

#include <algorithm>
#include <limits>

#include "util/string_util.h"

namespace fsjoin {

uint64_t Corpus::TotalTokens() const {
  uint64_t total = 0;
  for (const auto& r : records) total += r.tokens.size();
  return total;
}

Status Corpus::Validate() const {
  std::vector<uint64_t> freq(dictionary.size(), 0);
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    if (r.id != i) {
      return Status::Internal(
          StrFormat("record %zu has id %u (ids must be dense)", i, r.id));
    }
    for (size_t j = 0; j < r.tokens.size(); ++j) {
      if (r.tokens[j] >= dictionary.size()) {
        return Status::Internal(
            StrFormat("record %zu: token id %u out of range", i, r.tokens[j]));
      }
      if (j > 0 && r.tokens[j] <= r.tokens[j - 1]) {
        return Status::Internal(
            StrFormat("record %zu: tokens not sorted-unique", i));
      }
      ++freq[r.tokens[j]];
    }
  }
  for (size_t t = 0; t < freq.size(); ++t) {
    if (freq[t] != dictionary.Frequency(static_cast<TokenId>(t))) {
      return Status::Internal(StrFormat(
          "token %zu frequency mismatch: dictionary says %llu, actual %llu", t,
          static_cast<unsigned long long>(
              dictionary.Frequency(static_cast<TokenId>(t))),
          static_cast<unsigned long long>(freq[t])));
    }
  }
  return Status::OK();
}

Corpus BuildCorpus(const std::vector<std::string>& lines,
                   const Tokenizer& tokenizer) {
  Corpus corpus;
  corpus.records.reserve(lines.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    Record rec;
    rec.id = static_cast<RecordId>(i);
    std::vector<std::string> raw = tokenizer.Tokenize(lines[i]);
    rec.tokens.reserve(raw.size());
    for (const std::string& tok : raw) {
      rec.tokens.push_back(corpus.dictionary.Intern(tok));
    }
    std::sort(rec.tokens.begin(), rec.tokens.end());
    rec.tokens.erase(std::unique(rec.tokens.begin(), rec.tokens.end()),
                     rec.tokens.end());
    for (TokenId t : rec.tokens) corpus.dictionary.AddFrequency(t, 1);
    corpus.records.push_back(std::move(rec));
  }
  return corpus;
}

Corpus SampleCorpus(const Corpus& corpus, const std::vector<RecordId>& keep) {
  Corpus out;
  out.records.reserve(keep.size());
  // Re-intern only the tokens that survive, keeping dictionary compact.
  for (size_t i = 0; i < keep.size(); ++i) {
    const Record& src = corpus.records[keep[i]];
    Record rec;
    rec.id = static_cast<RecordId>(i);
    rec.tokens.reserve(src.tokens.size());
    for (TokenId t : src.tokens) {
      rec.tokens.push_back(
          out.dictionary.Intern(corpus.dictionary.TokenString(t)));
    }
    std::sort(rec.tokens.begin(), rec.tokens.end());
    rec.tokens.erase(std::unique(rec.tokens.begin(), rec.tokens.end()),
                     rec.tokens.end());
    for (TokenId t : rec.tokens) out.dictionary.AddFrequency(t, 1);
    out.records.push_back(std::move(rec));
  }
  return out;
}

CorpusStats ComputeStats(const Corpus& corpus) {
  CorpusStats stats;
  stats.num_records = corpus.records.size();
  stats.vocab_size = corpus.dictionary.size();
  stats.min_len = std::numeric_limits<uint64_t>::max();
  for (const auto& r : corpus.records) {
    uint64_t len = r.tokens.size();
    stats.total_tokens += len;
    stats.min_len = std::min(stats.min_len, len);
    stats.max_len = std::max(stats.max_len, len);
    stats.approx_bytes += len * sizeof(TokenId) + sizeof(RecordId);
  }
  if (stats.num_records == 0) {
    stats.min_len = 0;
  } else {
    stats.avg_len = static_cast<double>(stats.total_tokens) /
                    static_cast<double>(stats.num_records);
  }
  return stats;
}

}  // namespace fsjoin
