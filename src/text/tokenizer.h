#ifndef FSJOIN_TEXT_TOKENIZER_H_
#define FSJOIN_TEXT_TOKENIZER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace fsjoin {

/// Splits raw text into token strings. Implementations must be stateless
/// and thread-compatible (const Tokenize).
class Tokenizer {
 public:
  virtual ~Tokenizer() = default;

  /// Returns the tokens of `text` in order of appearance (duplicates kept;
  /// set deduplication happens when building Records).
  virtual std::vector<std::string> Tokenize(std::string_view text) const = 0;

  /// Short name for logs and experiment output.
  virtual std::string Name() const = 0;
};

/// Splits on ASCII whitespace; tokens are kept verbatim.
class WhitespaceTokenizer : public Tokenizer {
 public:
  std::vector<std::string> Tokenize(std::string_view text) const override;
  std::string Name() const override { return "whitespace"; }
};

/// Splits on non-alphanumeric characters and lowercases — the usual choice
/// for document corpora like Enron/PubMed/Wiki.
class WordTokenizer : public Tokenizer {
 public:
  std::vector<std::string> Tokenize(std::string_view text) const override;
  std::string Name() const override { return "word"; }
};

/// Sliding character q-grams of the (whitespace-normalized, lowercased)
/// text. Strings shorter than q yield a single padded gram.
class QGramTokenizer : public Tokenizer {
 public:
  explicit QGramTokenizer(size_t q);
  std::vector<std::string> Tokenize(std::string_view text) const override;
  std::string Name() const override;

 private:
  size_t q_;
};

}  // namespace fsjoin

#endif  // FSJOIN_TEXT_TOKENIZER_H_
