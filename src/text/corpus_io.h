#ifndef FSJOIN_TEXT_CORPUS_IO_H_
#define FSJOIN_TEXT_CORPUS_IO_H_

#include <string>
#include <vector>

#include "text/corpus.h"
#include "util/status.h"

namespace fsjoin {

/// Reads a text file into lines (one record per line). Empty lines are
/// kept so record ids align with line numbers.
Result<std::vector<std::string>> ReadLines(const std::string& path);

/// Writes a corpus as text: each line is the record's tokens separated by
/// single spaces (round-trips through BuildCorpus with a
/// WhitespaceTokenizer).
Status WriteCorpusText(const Corpus& corpus, const std::string& path);

/// Reads a corpus previously written by WriteCorpusText (or any one-record-
/// per-line token file).
Result<Corpus> ReadCorpusText(const std::string& path);

}  // namespace fsjoin

#endif  // FSJOIN_TEXT_CORPUS_IO_H_
