#include "text/tokenizer.h"

#include <cctype>

#include "util/logging.h"
#include "util/string_util.h"

namespace fsjoin {

std::vector<std::string> WhitespaceTokenizer::Tokenize(
    std::string_view text) const {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() ||
        std::isspace(static_cast<unsigned char>(text[i]))) {
      if (i > start) out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> WordTokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      out.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

QGramTokenizer::QGramTokenizer(size_t q) : q_(q) { FSJOIN_CHECK(q >= 1); }

std::vector<std::string> QGramTokenizer::Tokenize(std::string_view text) const {
  // Normalize: lowercase, collapse whitespace runs to single spaces.
  std::string norm;
  norm.reserve(text.size());
  bool last_space = true;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!last_space) norm.push_back(' ');
      last_space = true;
    } else {
      norm.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
      last_space = false;
    }
  }
  while (!norm.empty() && norm.back() == ' ') norm.pop_back();

  std::vector<std::string> out;
  if (norm.empty()) return out;
  if (norm.size() < q_) {
    norm.append(q_ - norm.size(), '$');
    out.push_back(norm);
    return out;
  }
  out.reserve(norm.size() - q_ + 1);
  for (size_t i = 0; i + q_ <= norm.size(); ++i) {
    out.push_back(norm.substr(i, q_));
  }
  return out;
}

std::string QGramTokenizer::Name() const {
  return StrFormat("%zu-gram", q_);
}

}  // namespace fsjoin
