#ifndef FSJOIN_TEXT_GENERATOR_H_
#define FSJOIN_TEXT_GENERATOR_H_

#include <cstdint>
#include <string>

#include "text/corpus.h"

namespace fsjoin {

/// Parameters of the synthetic corpus generator.
///
/// The paper evaluates on Enron Email, PubMed and Wikipedia abstracts. Those
/// corpora are not available offline, so we generate analogues that
/// reproduce the two properties that drive every reported effect: the
/// Zipfian token-frequency distribution (shapes fragment skew and prefix
/// filter power) and the record-length distribution (shapes the length
/// filter and horizontal partitioning). A configurable fraction of records
/// are *planted near-duplicates* (noisy copies of earlier records) so joins
/// at high thresholds have non-trivial result sets, as real corpora do.
struct SyntheticCorpusConfig {
  std::string name = "synthetic";
  uint64_t num_records = 10000;
  uint64_t vocab_size = 50000;
  /// Zipf exponent of token popularity (0 = uniform; ~1 for text).
  double zipf_skew = 1.0;
  /// Record length is drawn log-normally: exp(N(log(avg_len), len_sigma)).
  double avg_len = 50;
  double len_sigma = 0.6;
  uint64_t min_len = 2;
  uint64_t max_len = 2000;
  /// Fraction of records generated as noisy copies of earlier records.
  double near_duplicate_fraction = 0.25;
  /// Per-token probability of replacement inside a near-duplicate.
  double mutation_rate = 0.08;
  uint64_t seed = 42;
};

/// Generates a corpus per config. Deterministic for a fixed config.
Corpus GenerateCorpus(const SyntheticCorpusConfig& config);

/// Presets calibrated against the paper's Table III. `scale` multiplies the
/// record count (scale = 1.0 is our "10X" full workload, sized to run on a
/// single machine).
SyntheticCorpusConfig EmailLikeConfig(double scale);   ///< few, very long records
SyntheticCorpusConfig PubMedLikeConfig(double scale);  ///< many medium records
SyntheticCorpusConfig WikiLikeConfig(double scale);    ///< many short records

}  // namespace fsjoin

#endif  // FSJOIN_TEXT_GENERATOR_H_
