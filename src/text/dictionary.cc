#include "text/dictionary.h"

#include "util/logging.h"

namespace fsjoin {

TokenId TokenDictionary::Intern(std::string_view token) {
  auto it = index_.find(std::string(token));
  if (it != index_.end()) return it->second;
  TokenId id = static_cast<TokenId>(tokens_.size());
  tokens_.emplace_back(token);
  frequency_.push_back(0);
  index_.emplace(tokens_.back(), id);
  return id;
}

Result<TokenId> TokenDictionary::Lookup(std::string_view token) const {
  auto it = index_.find(std::string(token));
  if (it == index_.end()) {
    return Status::NotFound("token not in dictionary: " + std::string(token));
  }
  return it->second;
}

const std::string& TokenDictionary::TokenString(TokenId id) const {
  FSJOIN_CHECK(id < tokens_.size());
  return tokens_[id];
}

void TokenDictionary::AddFrequency(TokenId id, uint64_t delta) {
  FSJOIN_CHECK(id < frequency_.size());
  frequency_[id] += delta;
}

uint64_t TokenDictionary::Frequency(TokenId id) const {
  if (id >= frequency_.size()) return 0;
  return frequency_[id];
}

}  // namespace fsjoin
