#ifndef FSJOIN_CHECK_LATTICE_H_
#define FSJOIN_CHECK_LATTICE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "baselines/massjoin.h"
#include "core/fsjoin_config.h"
#include "util/status.h"

namespace fsjoin::check {

/// Which join implementation a lattice point runs. All four produce the
/// exact brute-force result set, which is what the sweeper asserts.
enum class Algorithm { kFsJoin, kVernica, kVSmart, kMassJoin };

const char* AlgorithmName(Algorithm algorithm);

/// One sampled point of the knob cross-product: an algorithm plus a fully
/// populated configuration. For kFsJoin `fsjoin` is authoritative; for the
/// baselines `baseline` (and `massjoin_length_group`) is. Both share theta,
/// the similarity function and the exec shape so result sets are comparable
/// across every point of one seed.
struct LatticePoint {
  Algorithm algorithm = Algorithm::kFsJoin;
  FsJoinConfig fsjoin;
  BaselineConfig baseline;
  uint32_t massjoin_length_group = 1;
  /// R-S shape of the run (FsJoinConfig::rs_boundary contract): set by the
  /// sweeper from the scenario, adjusted by the minimizer as records are
  /// removed, and copied by RunPoint into whichever config the algorithm
  /// reads. Like theta it is semantic: it changes the expected result set.
  std::optional<RecordId> rs_boundary;

  double theta() const { return fsjoin.theta; }
  SimilarityFunction function() const { return fsjoin.function; }

  /// Stable one-line description — printed in failure reports and repros.
  std::string Name() const;
};

/// Deterministically samples `count` lattice points for `seed`. Theta and
/// the similarity function are drawn once per seed (they change the result
/// set; every other knob must not). The first four points always cover all
/// four algorithms; the rest lean on FS-Join, whose knob space (backend x
/// threads x morsel size x spill budget x pivot strategy x horizontal t x
/// join method x filter toggles x fragment count) is the large one.
std::vector<LatticePoint> SampleLattice(uint64_t seed, size_t count);

}  // namespace fsjoin::check

#endif  // FSJOIN_CHECK_LATTICE_H_
