#include "check/minimizer.h"

#include <algorithm>
#include <utility>

#include "check/scenarios.h"
#include "exec/exec_config.h"
#include "util/string_util.h"

namespace fsjoin::check {

namespace {

/// Counts predicate evaluations against the budget so minimization always
/// terminates, even on predicates that are slow or flaky-ish.
class Shrinker {
 public:
  Shrinker(const FailurePredicate& fails, size_t budget)
      : fails_(fails), budget_(budget) {}

  bool StillFails(const std::vector<std::vector<uint32_t>>& sets,
                  const LatticePoint& point) {
    if (runs_ >= budget_) return false;
    ++runs_;
    return fails_(CorpusFromSets(sets), point);
  }

  bool Exhausted() const { return runs_ >= budget_; }
  size_t runs() const { return runs_; }

 private:
  const FailurePredicate& fails_;
  size_t budget_;
  size_t runs_ = 0;
};

/// Classic ddmin over whole records: remove ever-finer complement chunks as
/// long as the failure survives. In R-S mode removing records shifts ids
/// across the boundary, so each candidate recomputes it as the number of
/// surviving records that were on the R side — the minimized repro keeps a
/// consistent two-collection shape all the way down.
void DdminRecords(Shrinker& shrinker, LatticePoint* point,
                  std::vector<std::vector<uint32_t>>* sets) {
  size_t n = 2;
  while (sets->size() >= 2 && !shrinker.Exhausted()) {
    const size_t size = sets->size();
    const size_t chunk = (size + n - 1) / n;
    bool reduced = false;
    for (size_t start = 0; start < size; start += chunk) {
      std::vector<std::vector<uint32_t>> candidate;
      candidate.reserve(size - 1);
      RecordId kept_r = 0;
      for (size_t i = 0; i < size; ++i) {
        if (i < start || i >= start + chunk) {
          if (point->rs_boundary.has_value() && i < *point->rs_boundary) {
            ++kept_r;
          }
          candidate.push_back((*sets)[i]);
        }
      }
      if (candidate.size() == size) continue;
      LatticePoint candidate_point = *point;
      if (candidate_point.rs_boundary.has_value()) {
        candidate_point.rs_boundary = kept_r;
      }
      if (shrinker.StillFails(candidate, candidate_point)) {
        *sets = std::move(candidate);
        *point = std::move(candidate_point);
        n = std::max<size_t>(2, n - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= size) break;
      n = std::min(size, n * 2);
    }
  }
}

/// Greedy single-token removal inside each surviving record.
void ShrinkTokens(Shrinker& shrinker, const LatticePoint& point,
                  std::vector<std::vector<uint32_t>>* sets) {
  for (size_t r = 0; r < sets->size(); ++r) {
    for (size_t t = 0; t < (*sets)[r].size() && !shrinker.Exhausted();) {
      std::vector<std::vector<uint32_t>> candidate = *sets;
      candidate[r].erase(candidate[r].begin() + static_cast<ptrdiff_t>(t));
      if (shrinker.StillFails(candidate, point)) {
        *sets = std::move(candidate);
      } else {
        ++t;
      }
    }
  }
}

template <typename Fn>
void MutateExec(LatticePoint* point, Fn mutate) {
  mutate(&point->fsjoin.exec);
  mutate(&point->baseline.exec);
}

/// Resets knobs toward their defaults, keeping each reset only if the
/// failure survives. Theta, the similarity function, the join method and
/// the filter toggles are semantic — they stay as sampled.
void ShrinkConfig(Shrinker& shrinker,
                  const std::vector<std::vector<uint32_t>>& sets,
                  LatticePoint* point) {
  auto try_mutation = [&](auto mutate) {
    LatticePoint candidate = *point;
    mutate(&candidate);
    if (shrinker.StillFails(sets, candidate)) *point = candidate;
  };

  try_mutation([](LatticePoint* p) {
    MutateExec(p, [](exec::ExecConfig* e) {
      e->backend = exec::BackendKind::kMapReduce;
    });
  });
  try_mutation([](LatticePoint* p) {
    MutateExec(p, [](exec::ExecConfig* e) {
      e->num_threads = 0;
      e->parallel_fragment_join = false;
      e->join_morsel_size = 64;
    });
  });
  try_mutation([](LatticePoint* p) {
    MutateExec(p, [](exec::ExecConfig* e) { e->shuffle_memory_bytes = 0; });
  });
  // Kernel family shrinks toward the scalar reference: a repro that still
  // fails with the scalar merge is about the filters/plan, not the SIMD
  // kernels, which narrows the suspect surface a lot.
  try_mutation([](LatticePoint* p) {
    MutateExec(p,
               [](exec::ExecConfig* e) { e->kernel = exec::KernelMode::kScalar; });
  });
  try_mutation([](LatticePoint* p) {
    MutateExec(p, [](exec::ExecConfig* e) {
      e->num_map_tasks = 1;
      e->num_reduce_tasks = 1;
    });
  });
  if (point->algorithm == Algorithm::kFsJoin) {
    try_mutation(
        [](LatticePoint* p) { p->fsjoin.num_horizontal_partitions = 0; });
    try_mutation(
        [](LatticePoint* p) { p->fsjoin.pivot_strategy = PivotStrategy::kEvenTf; });
    for (uint32_t v : {1u, 2u, 4u}) {
      if (v >= point->fsjoin.num_vertical_partitions) break;
      LatticePoint candidate = *point;
      candidate.fsjoin.num_vertical_partitions = v;
      if (shrinker.StillFails(sets, candidate)) {
        *point = candidate;
        break;
      }
    }
    try_mutation([](LatticePoint* p) { p->fsjoin.seed = 7; });
  }
  if (point->algorithm == Algorithm::kMassJoin) {
    try_mutation([](LatticePoint* p) { p->massjoin_length_group = 1; });
  }
}

const char* FunctionLiteral(SimilarityFunction fn) {
  switch (fn) {
    case SimilarityFunction::kJaccard:
      return "SimilarityFunction::kJaccard";
    case SimilarityFunction::kDice:
      return "SimilarityFunction::kDice";
    case SimilarityFunction::kCosine:
      return "SimilarityFunction::kCosine";
  }
  return "SimilarityFunction::kJaccard";
}

const char* PivotLiteral(PivotStrategy strategy) {
  switch (strategy) {
    case PivotStrategy::kRandom:
      return "PivotStrategy::kRandom";
    case PivotStrategy::kEvenInterval:
      return "PivotStrategy::kEvenInterval";
    case PivotStrategy::kEvenTf:
      return "PivotStrategy::kEvenTf";
  }
  return "PivotStrategy::kEvenTf";
}

const char* MethodLiteral(JoinMethod method) {
  switch (method) {
    case JoinMethod::kLoop:
      return "JoinMethod::kLoop";
    case JoinMethod::kIndex:
      return "JoinMethod::kIndex";
    case JoinMethod::kPrefix:
      return "JoinMethod::kPrefix";
  }
  return "JoinMethod::kPrefix";
}

const char* KernelLiteral(exec::KernelMode mode) {
  switch (mode) {
    case exec::KernelMode::kAuto:
      return "exec::KernelMode::kAuto";
    case exec::KernelMode::kScalar:
      return "exec::KernelMode::kScalar";
    case exec::KernelMode::kPacked:
      return "exec::KernelMode::kPacked";
    case exec::KernelMode::kSimd:
      return "exec::KernelMode::kSimd";
  }
  return "exec::KernelMode::kAuto";
}

const char* BackendLiteral(exec::BackendKind kind) {
  switch (kind) {
    case exec::BackendKind::kMapReduce:
      return "exec::BackendKind::kMapReduce";
    case exec::BackendKind::kFusedFlow:
      return "exec::BackendKind::kFusedFlow";
  }
  return "exec::BackendKind::kMapReduce";
}

void EmitExecOverrides(const exec::ExecConfig& exec, const std::string& var,
                       std::string* out) {
  const exec::ExecConfig defaults;
  if (exec.backend != defaults.backend) {
    *out += StrFormat("  %s.exec.backend = %s;\n", var.c_str(),
                      BackendLiteral(exec.backend));
  }
  if (exec.num_map_tasks != defaults.num_map_tasks) {
    *out += StrFormat("  %s.exec.num_map_tasks = %u;\n", var.c_str(),
                      exec.num_map_tasks);
  }
  if (exec.num_reduce_tasks != defaults.num_reduce_tasks) {
    *out += StrFormat("  %s.exec.num_reduce_tasks = %u;\n", var.c_str(),
                      exec.num_reduce_tasks);
  }
  if (exec.num_threads != defaults.num_threads) {
    *out += StrFormat("  %s.exec.num_threads = %zu;\n", var.c_str(),
                      exec.num_threads);
  }
  if (exec.parallel_fragment_join != defaults.parallel_fragment_join) {
    *out += StrFormat("  %s.exec.parallel_fragment_join = true;\n",
                      var.c_str());
  }
  if (exec.join_morsel_size != defaults.join_morsel_size) {
    *out += StrFormat("  %s.exec.join_morsel_size = %zu;\n", var.c_str(),
                      exec.join_morsel_size);
  }
  if (exec.shuffle_memory_bytes != defaults.shuffle_memory_bytes) {
    *out += StrFormat("  %s.exec.shuffle_memory_bytes = %llu;\n", var.c_str(),
                      static_cast<unsigned long long>(
                          exec.shuffle_memory_bytes));
  }
  if (exec.kernel != defaults.kernel) {
    *out += StrFormat("  %s.exec.kernel = %s;\n", var.c_str(),
                      KernelLiteral(exec.kernel));
  }
}

}  // namespace

Corpus MinimizedRepro::RebuildCorpus() const { return CorpusFromSets(sets); }

std::string MinimizedRepro::ToCppTestCase() const {
  std::string out;
  out += "// Minimized repro generated by fsjoin_fuzz.\n";
  out += "// Point: " + point.Name() + "\n";
  if (!failure.empty()) {
    out += "// Failure: " + failure.substr(0, failure.find('\n')) + "\n";
  }
  out += "TEST(FuzzRepro, Minimized) {\n";
  out += "  const Corpus corpus = testing::CorpusFromTokenSets({\n";
  for (const auto& set : sets) {
    out += "      {";
    for (size_t i = 0; i < set.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(set[i]);
    }
    out += "},\n";
  }
  out += "  });\n";

  const double theta = point.theta();
  const SimilarityFunction fn = point.function();
  if (point.algorithm == Algorithm::kFsJoin) {
    const FsJoinConfig& cfg = point.fsjoin;
    const FsJoinConfig defaults;
    out += "  FsJoinConfig config;\n";
    out += StrFormat("  config.theta = %.17g;\n", theta);
    out += StrFormat("  config.function = %s;\n", FunctionLiteral(fn));
    if (cfg.num_vertical_partitions != defaults.num_vertical_partitions) {
      out += StrFormat("  config.num_vertical_partitions = %u;\n",
                       cfg.num_vertical_partitions);
    }
    if (cfg.pivot_strategy != defaults.pivot_strategy) {
      out += StrFormat("  config.pivot_strategy = %s;\n",
                       PivotLiteral(cfg.pivot_strategy));
    }
    if (cfg.num_horizontal_partitions != defaults.num_horizontal_partitions) {
      out += StrFormat("  config.num_horizontal_partitions = %u;\n",
                       cfg.num_horizontal_partitions);
    }
    if (cfg.join_method != defaults.join_method) {
      out += StrFormat("  config.join_method = %s;\n",
                       MethodLiteral(cfg.join_method));
    }
    if (cfg.use_length_filter != defaults.use_length_filter) {
      out += "  config.use_length_filter = false;\n";
    }
    if (cfg.use_segment_length_filter != defaults.use_segment_length_filter) {
      out += "  config.use_segment_length_filter = false;\n";
    }
    if (cfg.use_segment_intersection_filter !=
        defaults.use_segment_intersection_filter) {
      out += "  config.use_segment_intersection_filter = false;\n";
    }
    if (cfg.use_segment_difference_filter !=
        defaults.use_segment_difference_filter) {
      out += "  config.use_segment_difference_filter = false;\n";
    }
    if (cfg.seed != defaults.seed) {
      out += StrFormat("  config.seed = %llu;\n",
                       static_cast<unsigned long long>(cfg.seed));
    }
    EmitExecOverrides(cfg.exec, "config", &out);
    if (point.rs_boundary.has_value()) {
      out += StrFormat("  config.rs_boundary = %u;\n", *point.rs_boundary);
      out += StrFormat(
          "  const JoinResultSet expected = BruteForceJoinRS(\n"
          "      testing::OrderedView(corpus), %u, config.function, "
          "config.theta);\n",
          *point.rs_boundary);
    } else {
      out +=
          "  const JoinResultSet expected = BruteForceJoin(\n"
          "      testing::OrderedView(corpus), config.function, "
          "config.theta);\n";
    }
    out +=
        "  Result<FsJoinOutput> out = FsJoin(config).Run(corpus);\n"
        "  ASSERT_TRUE(out.ok()) << out.status().ToString();\n"
        "  EXPECT_TRUE(SamePairs(expected, out->pairs))\n"
        "      << DiffResults(expected, out->pairs);\n";
  } else {
    const char* runner = point.algorithm == Algorithm::kVernica
                             ? "RunVernicaJoin"
                             : point.algorithm == Algorithm::kVSmart
                                   ? "RunVSmartJoin"
                                   : "RunMassJoin";
    if (point.algorithm == Algorithm::kMassJoin) {
      out += "  MassJoinConfig config;\n";
      if (point.massjoin_length_group != 1) {
        out += StrFormat("  config.length_group = %u;\n",
                         point.massjoin_length_group);
      }
    } else {
      out += "  BaselineConfig config;\n";
    }
    out += StrFormat("  config.theta = %.17g;\n", theta);
    out += StrFormat("  config.function = %s;\n", FunctionLiteral(fn));
    EmitExecOverrides(point.baseline.exec, "config", &out);
    if (point.rs_boundary.has_value()) {
      out += StrFormat("  config.rs_boundary = %u;\n", *point.rs_boundary);
      out += StrFormat(
          "  const JoinResultSet expected = BruteForceJoinRS(\n"
          "      testing::OrderedView(corpus), %u, config.function, "
          "config.theta);\n",
          *point.rs_boundary);
    } else {
      out +=
          "  const JoinResultSet expected = BruteForceJoin(\n"
          "      testing::OrderedView(corpus), config.function, "
          "config.theta);\n";
    }
    out += StrFormat(
        "  Result<BaselineOutput> out = %s(corpus, config);\n"
        "  ASSERT_TRUE(out.ok()) << out.status().ToString();\n"
        "  EXPECT_TRUE(SamePairs(expected, out->pairs))\n"
        "      << DiffResults(expected, out->pairs);\n",
        runner);
  }
  out += "}\n";
  return out;
}

MinimizedRepro Minimize(const Corpus& corpus, const LatticePoint& point,
                        const FailurePredicate& fails, size_t budget) {
  MinimizedRepro repro;
  repro.point = point;
  repro.sets = SetsFromCorpus(corpus);
  repro.original_records = repro.sets.size();

  Shrinker shrinker(fails, budget);
  // The input must actually fail, or every shrink step would be vacuous.
  if (!shrinker.StillFails(repro.sets, repro.point)) {
    repro.predicate_runs = shrinker.runs();
    return repro;
  }
  // Record removal, token removal and config simplification unlock each
  // other: dropping a token shifts frequencies, the global ordering, and
  // the pivots; fewer vertical partitions make the failure less
  // pivot-sensitive, which can make a record that previously carried the
  // failure removable (and vice versa). R-S repros are especially
  // pivot-sensitive, so iterate the passes to a fixpoint instead of
  // running each once.
  for (;;) {
    const size_t records_before = repro.sets.size();
    size_t tokens_before = 0;
    for (const auto& set : repro.sets) tokens_before += set.size();
    DdminRecords(shrinker, &repro.point, &repro.sets);
    ShrinkTokens(shrinker, repro.point, &repro.sets);
    ShrinkConfig(shrinker, repro.sets, &repro.point);
    size_t tokens_after = 0;
    for (const auto& set : repro.sets) tokens_after += set.size();
    if (shrinker.Exhausted() || (repro.sets.size() == records_before &&
                                 tokens_after == tokens_before)) {
      break;
    }
  }
  repro.predicate_runs = shrinker.runs();
  return repro;
}

}  // namespace fsjoin::check
