#ifndef FSJOIN_CHECK_RUNNER_H_
#define FSJOIN_CHECK_RUNNER_H_

#include "check/invariants.h"
#include "check/lattice.h"
#include "text/corpus.h"
#include "util/status.h"

namespace fsjoin::check {

/// Runs the lattice point's algorithm over `corpus` and collects everything
/// the invariant checker consumes. FS-Join runs with
/// collect_partial_overlaps forced on (the conservation law needs the
/// capture; at fuzz scale the cost is negligible).
Result<RunOutcome> RunPoint(const Corpus& corpus, const LatticePoint& point);

}  // namespace fsjoin::check

#endif  // FSJOIN_CHECK_RUNNER_H_
