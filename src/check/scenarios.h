#ifndef FSJOIN_CHECK_SCENARIOS_H_
#define FSJOIN_CHECK_SCENARIOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/similarity.h"
#include "text/corpus.h"
#include "util/random.h"

namespace fsjoin::check {

/// One fuzzing input: a corpus plus the family it was drawn from. The
/// scenario generator is the harness's corpus mutator — it layers
/// adversarial structure on top of text/generator's Zipf/log-normal draws
/// so every seed exercises a shape hand-written tests rarely cover.
struct Scenario {
  std::string family;  ///< "zipf", "uniform", "clustered", ...
  uint64_t seed = 0;
  Corpus corpus;
};

/// The scenario families cycled through by MakeScenario. Kept public so the
/// fuzz driver can print what a seed maps to.
///
///  * zipf       — text/generator draw with skewed token popularity
///  * uniform    — skew 0: every token equally likely (weak prefix filter)
///  * clustered  — records draw from a handful of small topic pools, so
///                 cross-pair token sharing is extreme
///  * duplicates — many exact copies (theta = 1 pairs, dense groups)
///  * degenerate — empty sets, single-token records and tiny records mixed
///                 with normal ones
///  * same-prefix— every record starts with the same rare-token prefix
///                 (adversarial for prefix-filtered joins)
///  * planted    — base corpus plus pairs planted at sim in
///                 {tau - eps, tau, tau + eps}
std::vector<std::string> ScenarioFamilies();

/// Deterministically builds the scenario for `seed`: the family is
/// seed % |families|, every size and token draw comes from Rng(seed), and
/// near-threshold pairs at (fn, theta) are planted into every family (the
/// boundary is where exact joins drift). Same seed, fn and theta — same
/// corpus, byte for byte.
Scenario MakeScenario(uint64_t seed, SimilarityFunction fn, double theta);

/// Plants `count` record pairs with similarity just below, exactly at and
/// just above theta into `sets` (token-id sets; appended records use fresh
/// ids above `next_token`). Exposed for tests; MakeScenario calls it.
void PlantNearThresholdPairs(std::vector<std::vector<uint32_t>>* sets,
                             SimilarityFunction fn, double theta, size_t count,
                             uint32_t next_token, Rng& rng);

/// Builds a Corpus from explicit token-id sets ("t<id>" strings), keeping
/// record order. The scenario currency: minimizers shrink these sets and
/// rebuild corpora with the same helper, so the corpus invariants
/// (dense ids, sorted unique tokens, set-semantics frequencies) hold by
/// construction everywhere in the harness.
Corpus CorpusFromSets(const std::vector<std::vector<uint32_t>>& sets);

/// Inverse of CorpusFromSets for corpora whose token strings are "t<id>"
/// (true for every scenario corpus): recovers per-record token-id sets.
/// Tokens that do not parse as "t<id>" are densely renumbered instead.
std::vector<std::vector<uint32_t>> SetsFromCorpus(const Corpus& corpus);

}  // namespace fsjoin::check

#endif  // FSJOIN_CHECK_SCENARIOS_H_
