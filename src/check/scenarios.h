#ifndef FSJOIN_CHECK_SCENARIOS_H_
#define FSJOIN_CHECK_SCENARIOS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/similarity.h"
#include "text/corpus.h"
#include "util/random.h"

namespace fsjoin::check {

/// One fuzzing input: a corpus plus the family it was drawn from. The
/// scenario generator is the harness's corpus mutator — it layers
/// adversarial structure on top of text/generator's Zipf/log-normal draws
/// so every seed exercises a shape hand-written tests rarely cover.
struct Scenario {
  std::string family;  ///< "zipf", "uniform", "clustered", ...
  uint64_t seed = 0;
  Corpus corpus;
  /// Set for R-S scenarios: records with id < rs_boundary are the R side
  /// (FsJoinConfig::rs_boundary contract). nullopt = self join.
  std::optional<RecordId> rs_boundary;
};

/// The join-mode dimension of the fuzz lattice: self join, or a
/// two-collection R-S join with a target |R|:|S| ratio. s_weight == 0 is
/// the |S| = 0 edge case (a non-empty R probed against nothing).
struct JoinShape {
  bool rs = false;
  uint32_t r_weight = 1;
  uint32_t s_weight = 1;

  /// "self", "rs1:1", "rs1:10", "rs10:1", "rs1:0".
  std::string Name() const;
};

/// Per-seed draw of the join shape: half the seeds run self joins (the
/// corpus exactly as MakeScenario built it), the rest R-S with a ratio from
/// {1:1, 1:10, 10:1, |S|=0}. Uses its own Rng stream so adding the
/// dimension did not reshuffle which corpus a seed maps to.
JoinShape SampleJoinShape(uint64_t seed);

/// The scenario families cycled through by MakeScenario. Kept public so the
/// fuzz driver can print what a seed maps to.
///
///  * zipf       — text/generator draw with skewed token popularity
///  * uniform    — skew 0: every token equally likely (weak prefix filter)
///  * clustered  — records draw from a handful of small topic pools, so
///                 cross-pair token sharing is extreme
///  * duplicates — many exact copies (theta = 1 pairs, dense groups)
///  * degenerate — empty sets, single-token records and tiny records mixed
///                 with normal ones
///  * same-prefix— every record starts with the same rare-token prefix
///                 (adversarial for prefix-filtered joins)
///  * planted    — base corpus plus pairs planted at sim in
///                 {tau - eps, tau, tau + eps}
std::vector<std::string> ScenarioFamilies();

/// Deterministically builds the scenario for `seed`: the family is
/// seed % |families|, every size and token draw comes from Rng(seed), and
/// near-threshold pairs at (fn, theta) are planted into every family (the
/// boundary is where exact joins drift). Same seed, fn and theta — same
/// corpus, byte for byte.
Scenario MakeScenario(uint64_t seed, SimilarityFunction fn, double theta);

/// Shape-aware variant. For an R-S shape the family's records are split
/// into the two collections at the requested ratio, every planted
/// near-threshold pair is split *across* the boundary (one record in R, one
/// in S — the τ ± ε pairs must be cross-collection to exercise the R-S
/// result path), and the corpus is reordered R-first with
/// `rs_boundary = |R|`. A self shape is byte-identical to the 3-arg
/// overload.
Scenario MakeScenario(uint64_t seed, SimilarityFunction fn, double theta,
                      const JoinShape& shape);

/// Plants `count` record pairs with similarity just below, exactly at and
/// just above theta into `sets` (token-id sets; appended records use fresh
/// ids above `next_token`). Exposed for tests; MakeScenario calls it.
void PlantNearThresholdPairs(std::vector<std::vector<uint32_t>>* sets,
                             SimilarityFunction fn, double theta, size_t count,
                             uint32_t next_token, Rng& rng);

/// Builds a Corpus from explicit token-id sets ("t<id>" strings), keeping
/// record order. The scenario currency: minimizers shrink these sets and
/// rebuild corpora with the same helper, so the corpus invariants
/// (dense ids, sorted unique tokens, set-semantics frequencies) hold by
/// construction everywhere in the harness.
Corpus CorpusFromSets(const std::vector<std::vector<uint32_t>>& sets);

/// Inverse of CorpusFromSets for corpora whose token strings are "t<id>"
/// (true for every scenario corpus): recovers per-record token-id sets.
/// Tokens that do not parse as "t<id>" are densely renumbered instead.
std::vector<std::vector<uint32_t>> SetsFromCorpus(const Corpus& corpus);

}  // namespace fsjoin::check

#endif  // FSJOIN_CHECK_SCENARIOS_H_
