#include "check/sweeper.h"

#include <optional>
#include <utility>

#include "check/invariants.h"
#include "check/lattice.h"
#include "check/runner.h"
#include "check/scenarios.h"
#include "util/string_util.h"

namespace fsjoin::check {

namespace {

/// Re-runs a point end to end and reports whether anything is wrong. This
/// is the minimizer's predicate: the oracle is rebuilt per candidate corpus,
/// so shrunk inputs are judged against their own ground truth.
bool PointFails(const Corpus& corpus, const LatticePoint& point,
                std::string* first_message) {
  Oracle oracle = BuildOracle(corpus, point.function(), point.theta(),
                              point.rs_boundary);
  Result<RunOutcome> outcome = RunPoint(corpus, point);
  if (!outcome.ok()) {
    if (first_message) {
      *first_message = "run error: " + outcome.status().ToString();
    }
    return true;
  }
  std::vector<std::string> messages =
      CheckInvariants(corpus, oracle, point, *outcome);
  if (messages.empty()) return false;
  if (first_message) *first_message = messages.front();
  return true;
}

}  // namespace

std::string SweepReport::Summary() const {
  std::string out;
  out += StrFormat("seeds run: %llu, lattice points run: %llu, "
                   "oracle pairs: %llu\n",
                   static_cast<unsigned long long>(seeds_run),
                   static_cast<unsigned long long>(points_run),
                   static_cast<unsigned long long>(oracle_pairs));
  if (failures.empty()) {
    out += "verdict: PASS\n";
    return out;
  }
  out += StrFormat("verdict: FAIL (%zu failing points)\n", failures.size());
  for (const SweepFailure& f : failures) {
    out += StrFormat("\nseed %llu family=%s point=%s\n",
                     static_cast<unsigned long long>(f.seed),
                     f.family.c_str(), f.point_name.c_str());
    for (const std::string& msg : f.messages) {
      out += "  - " + msg + "\n";
    }
    if (f.minimized) {
      out += StrFormat("  minimized: %zu records (from %zu) after %zu "
                       "predicate runs\n",
                       f.repro.sets.size(), f.repro.original_records,
                       f.repro.predicate_runs);
      out += f.repro.ToCppTestCase();
    }
  }
  return out;
}

SweepReport RunSweep(const SweepOptions& options) {
  SweepReport report;
  const uint64_t seed_end = options.seed_begin + options.seed_count;
  for (uint64_t seed = options.seed_begin; seed < seed_end; ++seed) {
    std::vector<LatticePoint> points =
        SampleLattice(seed, options.lattice_points);
    if (points.empty()) continue;
    const SimilarityFunction fn = points[0].function();
    const double theta = points[0].theta();
    // Join shape is a per-seed dimension like theta: every lattice point of
    // the seed runs the same (self or R-S) join, so digests stay comparable.
    const JoinShape shape = SampleJoinShape(seed);
    Scenario scenario = MakeScenario(seed, fn, theta, shape);
    for (LatticePoint& point : points) {
      point.rs_boundary = scenario.rs_boundary;
    }
    Oracle oracle =
        BuildOracle(scenario.corpus, fn, theta, scenario.rs_boundary);
    report.oracle_pairs += oracle.pairs.size();
    ++report.seeds_run;

    std::optional<uint32_t> reference_digest;
    for (const LatticePoint& point : points) {
      ++report.points_run;
      Result<RunOutcome> outcome = RunPoint(scenario.corpus, point);
      std::vector<std::string> messages;
      if (!outcome.ok()) {
        messages.push_back("run error: " + outcome.status().ToString());
      } else {
        messages = CheckInvariants(scenario.corpus, oracle, point, *outcome);
        // Cross-config byte-identity: every point of a seed must produce a
        // byte-identical result set (pairs and similarity bit patterns).
        const uint32_t digest = ResultDigest(outcome->pairs);
        if (!reference_digest) {
          reference_digest = digest;
        } else if (digest != *reference_digest) {
          messages.push_back(
              StrFormat("result digest %08x differs from the seed's "
                        "reference digest %08x",
                        digest, *reference_digest));
        }
      }
      if (messages.empty()) continue;

      SweepFailure failure;
      failure.seed = seed;
      failure.family = scenario.family;
      failure.point_name = point.Name();
      failure.messages = std::move(messages);
      if (options.minimize) {
        FailurePredicate fails = [](const Corpus& corpus,
                                    const LatticePoint& p) {
          return PointFails(corpus, p, nullptr);
        };
        failure.repro = Minimize(scenario.corpus, point, fails,
                                 options.minimize_budget);
        failure.minimized = true;
        PointFails(failure.repro.RebuildCorpus(), failure.repro.point,
                   &failure.repro.failure);
      }
      report.failures.push_back(std::move(failure));
      break;  // one failure per seed; the rest of the lattice is moot
    }
    if (options.max_failures != 0 &&
        report.failures.size() >= options.max_failures) {
      break;
    }
  }
  return report;
}

}  // namespace fsjoin::check
