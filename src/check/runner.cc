#include "check/runner.h"

#include <utility>

#include "baselines/massjoin.h"
#include "baselines/vernica_join.h"
#include "baselines/vsmart_join.h"
#include "core/fsjoin.h"

namespace fsjoin::check {

namespace {

RunOutcome FromBaseline(BaselineOutput output) {
  RunOutcome outcome;
  outcome.pairs = std::move(output.pairs);
  outcome.reported_result_pairs = output.report.result_pairs;
  if (!output.report.jobs.empty()) {
    outcome.final_reduce_output_records =
        output.report.jobs.back().reduce_output_records;
  } else {
    outcome.final_reduce_output_records = outcome.pairs.size();
  }
  outcome.jobs = std::move(output.report.jobs);
  return outcome;
}

}  // namespace

Result<RunOutcome> RunPoint(const Corpus& corpus, const LatticePoint& point) {
  switch (point.algorithm) {
    case Algorithm::kFsJoin: {
      FsJoinConfig config = point.fsjoin;
      config.rs_boundary = point.rs_boundary;
      config.collect_partial_overlaps = true;
      FSJOIN_ASSIGN_OR_RETURN(FsJoinOutput output,
                              FsJoin(config).Run(corpus));
      RunOutcome outcome;
      outcome.pairs = std::move(output.pairs);
      outcome.jobs = output.report.AllJobs();
      outcome.has_filters = true;
      outcome.filters = output.report.filters;
      outcome.partials = std::move(output.partial_overlaps);
      outcome.candidate_pairs = output.report.candidate_pairs;
      outcome.reported_result_pairs = output.report.result_pairs;
      outcome.final_reduce_output_records =
          output.report.verification_job.reduce_output_records;
      return outcome;
    }
    case Algorithm::kVernica: {
      BaselineConfig config = point.baseline;
      config.rs_boundary = point.rs_boundary;
      FSJOIN_ASSIGN_OR_RETURN(BaselineOutput output,
                              RunVernicaJoin(corpus, config));
      return FromBaseline(std::move(output));
    }
    case Algorithm::kVSmart: {
      BaselineConfig config = point.baseline;
      config.rs_boundary = point.rs_boundary;
      FSJOIN_ASSIGN_OR_RETURN(BaselineOutput output,
                              RunVSmartJoin(corpus, config));
      return FromBaseline(std::move(output));
    }
    case Algorithm::kMassJoin: {
      MassJoinConfig config;
      static_cast<BaselineConfig&>(config) = point.baseline;
      config.rs_boundary = point.rs_boundary;
      config.length_group = point.massjoin_length_group;
      FSJOIN_ASSIGN_OR_RETURN(BaselineOutput output,
                              RunMassJoin(corpus, config));
      return FromBaseline(std::move(output));
    }
  }
  return Status::InvalidArgument("unknown algorithm");
}

}  // namespace fsjoin::check
