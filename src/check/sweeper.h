#ifndef FSJOIN_CHECK_SWEEPER_H_
#define FSJOIN_CHECK_SWEEPER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "check/minimizer.h"
#include "util/status.h"

namespace fsjoin::check {

/// One sweep = for each seed in [seed_begin, seed_begin + seed_count):
/// build the scenario corpus, compute the serial oracle, sample
/// `lattice_points` configurations, run each, check every invariant and
/// assert cross-config result-digest identity. Failures are delta-debugged
/// into minimal repros unless `minimize` is off.
struct SweepOptions {
  uint64_t seed_begin = 1;
  uint64_t seed_count = 1;
  size_t lattice_points = 8;
  bool minimize = true;
  /// Predicate-evaluation budget per minimization.
  size_t minimize_budget = 2000;
  /// Stop sweeping after this many failing seeds (0 = no cap). A systematic
  /// bug fails every seed; one repro is enough.
  size_t max_failures = 4;
};

/// One failing lattice point, with its minimized repro when available.
struct SweepFailure {
  uint64_t seed = 0;
  std::string family;
  std::string point_name;
  std::vector<std::string> messages;  ///< invariant violations / run errors
  bool minimized = false;
  MinimizedRepro repro;
};

struct SweepReport {
  uint64_t seeds_run = 0;
  uint64_t points_run = 0;
  uint64_t oracle_pairs = 0;  ///< summed over seeds — a coverage signal
  std::vector<SweepFailure> failures;

  bool ok() const { return failures.empty(); }

  /// Deterministic human-readable summary: same seed range, same text. The
  /// fuzz driver prints exactly this, which is what makes
  /// `fsjoin_fuzz --seed N` bit-reproducible.
  std::string Summary() const;
};

/// Runs the sweep. Engine-level errors (a lattice point's run returning a
/// non-OK status) are reported as failures, not propagated, so one broken
/// configuration cannot mask the rest of the sweep.
SweepReport RunSweep(const SweepOptions& options);

}  // namespace fsjoin::check

#endif  // FSJOIN_CHECK_SWEEPER_H_
