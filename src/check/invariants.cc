#include "check/invariants.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "sim/global_order.h"
#include "util/crc32c.h"
#include "util/serde.h"
#include "util/string_util.h"

namespace fsjoin::check {

namespace {

uint64_t PairKey(RecordId a, RecordId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

// Sorted-vector intersection size over raw token ids.
uint64_t SetOverlap(const std::vector<TokenId>& x,
                    const std::vector<TokenId>& y) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  while (i < x.size() && j < y.size()) {
    if (x[i] < y[j]) {
      ++i;
    } else if (x[i] > y[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

uint64_t Oracle::OverlapOf(const Corpus& corpus, RecordId a,
                           RecordId b) const {
  return SetOverlap(corpus.records[a].tokens, corpus.records[b].tokens);
}

Oracle BuildOracle(const Corpus& corpus, SimilarityFunction fn, double theta) {
  return BuildOracle(corpus, fn, theta, std::nullopt);
}

Oracle BuildOracle(const Corpus& corpus, SimilarityFunction fn, double theta,
                   std::optional<RecordId> rs_boundary) {
  Oracle oracle;
  GlobalOrder order = GlobalOrder::FromCorpus(corpus);
  std::vector<OrderedRecord> ordered = ApplyGlobalOrder(corpus, order);
  oracle.pairs = rs_boundary.has_value()
                     ? BruteForceJoinRS(ordered, *rs_boundary, fn, theta)
                     : BruteForceJoin(ordered, fn, theta);
  return oracle;
}

std::vector<std::string> CheckInvariants(const Corpus& corpus,
                                         const Oracle& oracle,
                                         const LatticePoint& point,
                                         const RunOutcome& outcome) {
  std::vector<std::string> failures;
  auto fail = [&failures](std::string msg) {
    failures.push_back(std::move(msg));
  };

  // ---- Result set equals the serial oracle -----------------------------
  if (!SamePairs(oracle.pairs, outcome.pairs)) {
    fail("result mismatch vs oracle:\n" +
         DiffResults(oracle.pairs, outcome.pairs));
  } else {
    for (size_t i = 0; i < oracle.pairs.size(); ++i) {
      if (std::abs(oracle.pairs[i].similarity -
                   outcome.pairs[i].similarity) > 1e-9) {
        fail(StrFormat("similarity drift on (%u,%u): oracle %.12f vs %.12f",
                       oracle.pairs[i].a, oracle.pairs[i].b,
                       oracle.pairs[i].similarity,
                       outcome.pairs[i].similarity));
        break;
      }
    }
  }

  // ---- R-S: every emitted pair straddles the boundary ------------------
  // Pairs are normalized a < b and R ids precede S ids, so straddling means
  // exactly a < boundary <= b. A violation is a structural leak: some join
  // loop enumerated an R×R or S×S pair the side tagging should have made
  // impossible.
  if (point.rs_boundary.has_value()) {
    const RecordId boundary = *point.rs_boundary;
    for (const SimilarPair& p : outcome.pairs) {
      if (p.a >= boundary || p.b < boundary) {
        fail(StrFormat("same-side pair (%u,%u) emitted in R-S mode "
                       "(boundary %u)",
                       p.a, p.b, boundary));
        break;
      }
    }
  }

  // ---- No pair emitted twice ------------------------------------------
  if (outcome.reported_result_pairs != outcome.pairs.size()) {
    fail(StrFormat("reported result_pairs %llu != |pairs| %zu",
                   static_cast<unsigned long long>(
                       outcome.reported_result_pairs),
                   outcome.pairs.size()));
  }
  if (outcome.final_reduce_output_records != outcome.pairs.size()) {
    fail(StrFormat(
        "final reduce emitted %llu records for %zu unique pairs "
        "(pair emitted twice, or dropped before decode)",
        static_cast<unsigned long long>(outcome.final_reduce_output_records),
        outcome.pairs.size()));
  }

  // ---- FS-Join filter-counter balance ----------------------------------
  if (outcome.has_filters) {
    const FilterCounters& c = outcome.filters;
    const uint64_t buckets = c.pruned_role + c.pruned_strl + c.pruned_segl +
                             c.pruned_segi + c.pruned_segd + c.empty_overlap +
                             c.emitted;
    if (c.pairs_considered != buckets) {
      fail(StrFormat("filter counters unbalanced: considered %llu != "
                     "bucket sum %llu",
                     static_cast<unsigned long long>(c.pairs_considered),
                     static_cast<unsigned long long>(buckets)));
    }
    const FsJoinConfig& cfg = point.fsjoin;
    if (!cfg.use_length_filter && c.pruned_strl != 0) {
      fail("pruned_strl nonzero with StrL-Filter disabled");
    }
    if (!cfg.use_segment_length_filter && c.pruned_segl != 0) {
      fail("pruned_segl nonzero with SegL-Filter disabled");
    }
    if (!cfg.use_segment_intersection_filter && c.pruned_segi != 0) {
      fail("pruned_segi nonzero with SegI-Filter disabled");
    }
    if (!cfg.use_segment_difference_filter && c.pruned_segd != 0) {
      fail("pruned_segd nonzero with SegD-Filter disabled");
    }
    if (outcome.candidate_pairs < outcome.pairs.size()) {
      fail(StrFormat("candidate_pairs %llu < result pairs %zu",
                     static_cast<unsigned long long>(outcome.candidate_pairs),
                     outcome.pairs.size()));
    }
  }

  // ---- Partial-overlap conservation ------------------------------------
  if (outcome.has_filters && !point.fsjoin.aggressive_segment_prefix) {
    std::unordered_map<uint64_t, uint64_t> sum_of_pair;
    sum_of_pair.reserve(outcome.partials.size());
    bool partials_ok = true;
    for (const PartialOverlap& p : outcome.partials) {
      if (p.a >= p.b || p.b >= corpus.records.size()) {
        fail(StrFormat("malformed partial (%u,%u)", p.a, p.b));
        partials_ok = false;
        break;
      }
      if (p.overlap == 0) {
        fail(StrFormat("zero partial overlap emitted for (%u,%u)", p.a, p.b));
        partials_ok = false;
        break;
      }
      if (point.rs_boundary.has_value() &&
          (p.a >= *point.rs_boundary || p.b < *point.rs_boundary)) {
        fail(StrFormat("same-side partial (%u,%u) emitted in R-S mode "
                       "(boundary %u)",
                       p.a, p.b, *point.rs_boundary));
        partials_ok = false;
        break;
      }
      if (p.size_a != corpus.records[p.a].tokens.size() ||
          p.size_b != corpus.records[p.b].tokens.size()) {
        fail(StrFormat("partial (%u,%u) carries sizes (%u,%u), records have "
                       "(%zu,%zu)",
                       p.a, p.b, p.size_a, p.size_b,
                       corpus.records[p.a].tokens.size(),
                       corpus.records[p.b].tokens.size()));
        partials_ok = false;
        break;
      }
      sum_of_pair[PairKey(p.a, p.b)] += p.overlap;
    }
    if (partials_ok) {
      // Any pair: fragments never over-count (each contributes at most its
      // exact segment overlap, and only one horizontal group joins a pair).
      for (const auto& [key, sum] : sum_of_pair) {
        const RecordId a = static_cast<RecordId>(key >> 32);
        const RecordId b = static_cast<RecordId>(key & 0xffffffffu);
        const uint64_t exact = oracle.OverlapOf(corpus, a, b);
        if (sum > exact) {
          fail(StrFormat("partials over-count (%u,%u): sum %llu > exact %llu",
                         a, b, static_cast<unsigned long long>(sum),
                         static_cast<unsigned long long>(exact)));
          break;
        }
      }
      // Oracle pairs: conservation must be exact, or the verification job
      // computes a wrong similarity (the SegL/SegI off-by-one signature).
      for (const SimilarPair& p : oracle.pairs) {
        const uint64_t exact = oracle.OverlapOf(corpus, p.a, p.b);
        auto it = sum_of_pair.find(PairKey(p.a, p.b));
        const uint64_t sum = it == sum_of_pair.end() ? 0 : it->second;
        if (sum != exact) {
          fail(StrFormat(
              "partial conservation broken for oracle pair (%u,%u): "
              "sum %llu != exact overlap %llu",
              p.a, p.b, static_cast<unsigned long long>(sum),
              static_cast<unsigned long long>(exact)));
          break;
        }
      }
    }
  }

  // ---- JobMetrics byte accounting --------------------------------------
  for (const mr::JobMetrics& job : outcome.jobs) {
    if (job.map_output_records != job.shuffle_records) {
      fail(StrFormat("job '%s': map_output_records %llu != shuffle_records "
                     "%llu",
                     job.job_name.c_str(),
                     static_cast<unsigned long long>(job.map_output_records),
                     static_cast<unsigned long long>(job.shuffle_records)));
    }
    if (job.map_output_bytes != job.shuffle_bytes) {
      fail(StrFormat("job '%s': map_output_bytes %llu != shuffle_bytes %llu",
                     job.job_name.c_str(),
                     static_cast<unsigned long long>(job.map_output_bytes),
                     static_cast<unsigned long long>(job.shuffle_bytes)));
    }
    if ((job.spilled_bytes > 0) != (job.spill_runs > 0)) {
      fail(StrFormat("job '%s': spilled_bytes %llu inconsistent with "
                     "spill_runs %u",
                     job.job_name.c_str(),
                     static_cast<unsigned long long>(job.spilled_bytes),
                     job.spill_runs));
    }
    if (!job.reduce_tasks.empty()) {
      uint64_t task_out = 0, task_spilled = 0;
      for (const mr::TaskMetrics& t : job.reduce_tasks) {
        task_out += t.output_records;
        task_spilled += t.spilled_bytes;
      }
      if (task_out != job.reduce_output_records) {
        fail(StrFormat("job '%s': reduce task outputs sum to %llu, job "
                       "reports %llu",
                       job.job_name.c_str(),
                       static_cast<unsigned long long>(task_out),
                       static_cast<unsigned long long>(
                           job.reduce_output_records)));
      }
      if (task_spilled != job.spilled_bytes) {
        fail(StrFormat("job '%s': reduce task spills sum to %llu, job "
                       "reports %llu",
                       job.job_name.c_str(),
                       static_cast<unsigned long long>(task_spilled),
                       static_cast<unsigned long long>(job.spilled_bytes)));
      }
    }
  }

  return failures;
}

uint32_t ResultDigest(const JoinResultSet& pairs) {
  std::string bytes;
  bytes.reserve(pairs.size() * 16);
  for (const SimilarPair& p : pairs) {
    PutFixed32BE(&bytes, p.a);
    PutFixed32BE(&bytes, p.b);
    uint64_t sim_bits = 0;
    static_assert(sizeof(sim_bits) == sizeof(p.similarity));
    std::memcpy(&sim_bits, &p.similarity, sizeof(sim_bits));
    PutFixed64BE(&bytes, sim_bits);
  }
  return Crc32c(bytes);
}

}  // namespace fsjoin::check
