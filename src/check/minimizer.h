#ifndef FSJOIN_CHECK_MINIMIZER_H_
#define FSJOIN_CHECK_MINIMIZER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/lattice.h"
#include "text/corpus.h"

namespace fsjoin::check {

/// Returns true when (corpus, point) still reproduces the failure. The
/// minimizer only keeps shrink steps for which the predicate stays true, so
/// the final repro fails by construction.
using FailurePredicate =
    std::function<bool(const Corpus& corpus, const LatticePoint& point)>;

/// A shrunk failing input: the smallest corpus (as token-id sets) and the
/// simplest configuration the minimizer reached while the predicate kept
/// failing.
struct MinimizedRepro {
  std::vector<std::vector<uint32_t>> sets;
  LatticePoint point;
  std::string failure;  ///< message of the final failing check
  size_t original_records = 0;
  size_t predicate_runs = 0;

  Corpus RebuildCorpus() const;

  /// Renders the repro as a ready-to-paste C++ test case against the
  /// serial oracle (the fuzz driver prints this on failure).
  std::string ToCppTestCase() const;
};

/// Delta-debugs a failing (corpus, point): ddmin over records, then a
/// greedy token shrink inside each surviving record, then a config shrink
/// that resets execution knobs toward their defaults. `budget` caps
/// predicate evaluations so pathological failures still terminate quickly.
MinimizedRepro Minimize(const Corpus& corpus, const LatticePoint& point,
                        const FailurePredicate& fails, size_t budget = 2000);

}  // namespace fsjoin::check

#endif  // FSJOIN_CHECK_MINIMIZER_H_
