#ifndef FSJOIN_CHECK_INVARIANTS_H_
#define FSJOIN_CHECK_INVARIANTS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/lattice.h"
#include "core/fragment_join.h"
#include "mr/metrics.h"
#include "sim/join_result.h"
#include "sim/serial_join.h"
#include "text/corpus.h"

namespace fsjoin::check {

/// The serial ground truth one sweep seed is verified against.
struct Oracle {
  JoinResultSet pairs;  ///< BruteForceJoin result, normalized

  /// Exact |a ∩ b| over raw token sets (identical to rank-space overlap:
  /// the global ordering is a bijection).
  uint64_t OverlapOf(const Corpus& corpus, RecordId a, RecordId b) const;
};

Oracle BuildOracle(const Corpus& corpus, SimilarityFunction fn, double theta);

/// Boundary-aware overload: with rs_boundary set the ground truth is
/// BruteForceJoinRS (only boundary-straddling pairs); nullopt delegates to
/// the self-join oracle.
Oracle BuildOracle(const Corpus& corpus, SimilarityFunction fn, double theta,
                   std::optional<RecordId> rs_boundary);

/// Everything one algorithm run exposes to the invariant checker.
struct RunOutcome {
  JoinResultSet pairs;
  std::vector<mr::JobMetrics> jobs;

  /// FS-Join only.
  bool has_filters = false;
  FilterCounters filters;
  std::vector<PartialOverlap> partials;  ///< collect_partial_overlaps capture
  uint64_t candidate_pairs = 0;

  uint64_t reported_result_pairs = 0;
  /// reduce_output_records of the final (thresholding) job — equals the
  /// result-pair count unless some pair was emitted twice.
  uint64_t final_reduce_output_records = 0;
};

/// Checks every conservation law that must hold after a run, returning one
/// message per violation (empty = clean):
///  * result set equals the oracle, similarities within 1e-9;
///  * no pair emitted twice (final reduce output == result-pair count);
///  * FS-Join filter counters balance: every considered pair lands in
///    exactly one terminal bucket (role/strl/segl/segi/segd/empty/emitted);
///  * partial-overlap conservation: for every oracle pair, Σ fragment
///    overlaps == the exact overlap; for any pair, Σ never exceeds it;
///  * R-S mode (point.rs_boundary set): every emitted pair and every
///    partial overlap straddles the boundary — a same-side pair anywhere in
///    the dataflow is a structural leak, not a scoring error;
///  * JobMetrics byte accounting: map output == shuffle volume per job,
///    task sums match job totals, spill counters are paired.
std::vector<std::string> CheckInvariants(const Corpus& corpus,
                                         const Oracle& oracle,
                                         const LatticePoint& point,
                                         const RunOutcome& outcome);

/// CRC32C over the canonical encoding of a result set (rid pairs + raw
/// similarity bits). Two runs whose digests match produced byte-identical
/// answers; the sweeper asserts this across every lattice point of a seed.
uint32_t ResultDigest(const JoinResultSet& pairs);

}  // namespace fsjoin::check

#endif  // FSJOIN_CHECK_INVARIANTS_H_
