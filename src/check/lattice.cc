#include "check/lattice.h"

#include "mr/runner.h"
#include "util/random.h"
#include "util/string_util.h"

namespace fsjoin::check {

namespace {

// Menu values. Thetas are rationals representable by small equal-size pairs
// so scenario planting can hit sim == theta exactly (see scenarios.cc).
constexpr double kThetas[] = {0.5, 0.6, 0.7, 0.75, 0.8, 0.9, 1.0};
constexpr SimilarityFunction kFunctions[] = {SimilarityFunction::kJaccard,
                                             SimilarityFunction::kDice,
                                             SimilarityFunction::kCosine};
constexpr uint32_t kVerticals[] = {1, 2, 4, 8, 16};
constexpr uint32_t kHorizontals[] = {0, 1, 2, 3};
constexpr JoinMethod kMethods[] = {JoinMethod::kLoop, JoinMethod::kIndex,
                                   JoinMethod::kPrefix};
constexpr PivotStrategy kPivots[] = {PivotStrategy::kRandom,
                                     PivotStrategy::kEvenInterval,
                                     PivotStrategy::kEvenTf};
constexpr size_t kThreads[] = {0, 2, 4};
constexpr size_t kMorsels[] = {1, 7, 64};
constexpr uint64_t kSpillBudgets[] = {0, 256, 4096};
constexpr uint32_t kTaskCounts[] = {1, 3, 5, 8};
// Kernel families weighted toward the vectorized path (the new code under
// test); kAuto resolves per machine, so scalar/packed/simd are also listed
// explicitly to keep every family in the sweep regardless of CPU.
constexpr exec::KernelMode kKernels[] = {
    exec::KernelMode::kAuto, exec::KernelMode::kSimd, exec::KernelMode::kSimd,
    exec::KernelMode::kPacked, exec::KernelMode::kScalar};
// Runner menu weighted toward the thread-pool default; the subprocess
// runner appears often enough that every sweep crosses a fork boundary,
// which is how digest identity across runners gets continuous coverage.
constexpr mr::RunnerKind kRunners[] = {
    mr::RunnerKind::kThreads, mr::RunnerKind::kThreads,
    mr::RunnerKind::kInline, mr::RunnerKind::kSubprocess};
// --auto sample rates: 0.0 resolves to the tuner default, 1.0 makes the
// sample exact (the estimates-equal-counts corner).
constexpr double kSampleRates[] = {0.0, 0.05, 0.25, 1.0};

template <typename T, size_t N>
T Pick(const T (&menu)[N], Rng& rng) {
  return menu[rng.NextBounded(N)];
}

exec::ExecConfig SampleExec(Rng& rng) {
  exec::ExecConfig exec;
  exec.backend = rng.NextBool(0.5) ? exec::BackendKind::kMapReduce
                                   : exec::BackendKind::kFusedFlow;
  exec.num_map_tasks = Pick(kTaskCounts, rng);
  exec.num_reduce_tasks = Pick(kTaskCounts, rng);
  exec.num_threads = Pick(kThreads, rng);
  if (rng.NextBool(0.4)) {
    exec.parallel_fragment_join = true;
    exec.join_morsel_size = Pick(kMorsels, rng);
  }
  exec.shuffle_memory_bytes = Pick(kSpillBudgets, rng);
  exec.kernel = Pick(kKernels, rng);
  exec.runner = Pick(kRunners, rng);
  return exec;
}

}  // namespace

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kFsJoin:
      return "fsjoin";
    case Algorithm::kVernica:
      return "vernica";
    case Algorithm::kVSmart:
      return "vsmart";
    case Algorithm::kMassJoin:
      return "massjoin";
  }
  return "?";
}

std::string LatticePoint::Name() const {
  const std::string rs_suffix =
      rs_boundary.has_value() ? StrFormat(", rs=%u", *rs_boundary) : "";
  if (algorithm == Algorithm::kFsJoin) {
    const exec::ExecConfig& e = fsjoin.exec;
    return StrFormat(
        "fsjoin(%s, backend=%s, maps=%u, reduces=%u, threads=%zu, "
        "morsel=%zu, spill=%llu, kernel=%s, runner=%s%s%s)",
        fsjoin.Summary().c_str(), exec::BackendKindName(e.backend),
        e.num_map_tasks, e.num_reduce_tasks, e.num_threads,
        e.parallel_fragment_join ? e.join_morsel_size : size_t{0},
        static_cast<unsigned long long>(e.shuffle_memory_bytes),
        exec::KernelModeName(e.kernel), mr::RunnerKindName(e.runner),
        e.auto_tune ? StrFormat(", rate=%.2f", e.tune_sample_rate).c_str()
                    : "",
        rs_suffix.c_str());
  }
  const exec::ExecConfig& e = baseline.exec;
  return StrFormat(
      "%s(theta=%.2f, fn=%s, backend=%s, maps=%u, reduces=%u, threads=%zu, "
      "spill=%llu, runner=%s%s%s)",
      AlgorithmName(algorithm), baseline.theta,
      SimilarityFunctionName(baseline.function),
      exec::BackendKindName(e.backend), e.num_map_tasks, e.num_reduce_tasks,
      e.num_threads, static_cast<unsigned long long>(e.shuffle_memory_bytes),
      mr::RunnerKindName(e.runner),
      algorithm == Algorithm::kMassJoin
          ? StrFormat(", lg=%u", massjoin_length_group).c_str()
          : "",
      rs_suffix.c_str());
}

std::vector<LatticePoint> SampleLattice(uint64_t seed, size_t count) {
  Rng rng(seed * 0xd1b54a32d192ed03ull + 3);
  // Drawn once per seed: these define the join, not the execution.
  const double theta = Pick(kThetas, rng);
  const SimilarityFunction fn = Pick(kFunctions, rng);

  std::vector<LatticePoint> points;
  points.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    LatticePoint p;
    // First four points: one of each algorithm, so every sweep exercises
    // FS-Join and all three baselines. Later points lean on FS-Join.
    if (i < 4) {
      p.algorithm = static_cast<Algorithm>(i);
    } else {
      p.algorithm = rng.NextBool(0.75)
                        ? Algorithm::kFsJoin
                        : static_cast<Algorithm>(1 + rng.NextBounded(3));
    }

    p.fsjoin.theta = theta;
    p.fsjoin.function = fn;
    p.baseline.theta = theta;
    p.baseline.function = fn;

    if (p.algorithm == Algorithm::kFsJoin) {
      p.fsjoin.exec = SampleExec(rng);
      p.fsjoin.num_vertical_partitions = Pick(kVerticals, rng);
      p.fsjoin.num_horizontal_partitions = Pick(kHorizontals, rng);
      p.fsjoin.join_method = Pick(kMethods, rng);
      p.fsjoin.pivot_strategy = Pick(kPivots, rng);
      p.fsjoin.seed = seed + i;  // PivotStrategy::kRandom input
      // Cost-based auto-tuning (DESIGN.md §5i): about a third of the
      // FS-Join points run under --auto, with random pinned knobs so every
      // explicit-beats-auto combination gets differential coverage. The
      // digest must stay invariant — the tuner may only move work around.
      if (rng.NextBool(0.35)) {
        p.fsjoin.exec.auto_tune = true;
        p.fsjoin.exec.tune_sample_rate = Pick(kSampleRates, rng);
        p.fsjoin.pinned.join_method = rng.NextBool(0.3);
        p.fsjoin.pinned.kernel = rng.NextBool(0.3);
        p.fsjoin.pinned.pivot_strategy = rng.NextBool(0.3);
        p.fsjoin.pinned.horizontal = rng.NextBool(0.3);
      }
      // Filter toggles: mostly all-on (the paper's configuration), with a
      // tail of random subsets to catch inter-filter dependencies.
      if (!rng.NextBool(0.6)) {
        p.fsjoin.use_length_filter = rng.NextBool(0.5);
        p.fsjoin.use_segment_length_filter = rng.NextBool(0.5);
        p.fsjoin.use_segment_intersection_filter = rng.NextBool(0.5);
        p.fsjoin.use_segment_difference_filter = rng.NextBool(0.5);
      }
    } else {
      p.baseline.exec = SampleExec(rng);
      // Morsel-parallel joins are an FS-Join reducer feature.
      p.baseline.exec.parallel_fragment_join = false;
      if (p.algorithm == Algorithm::kMassJoin) {
        p.massjoin_length_group =
            1 + static_cast<uint32_t>(rng.NextBounded(4));
      }
    }
    points.push_back(std::move(p));
  }
  return points;
}

}  // namespace fsjoin::check
