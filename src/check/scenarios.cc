#include "check/scenarios.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_set>

#include "text/generator.h"
#include "util/string_util.h"

namespace fsjoin::check {

namespace {

const char* const kFamilies[] = {"zipf",       "uniform",     "clustered",
                                 "duplicates", "degenerate",  "same-prefix",
                                 "planted"};
constexpr size_t kNumFamilies = sizeof(kFamilies) / sizeof(kFamilies[0]);

/// Sizes and overlap of a pair whose similarity is exactly theta. Both
/// records have `size` tokens; they share `overlap` of them.
struct PlantShape {
  uint32_t size = 0;
  uint32_t overlap = 0;
};

// Searches equal-size shapes (a = b = s) for one whose similarity hits
// theta exactly: Jaccard needs c/(2s-c) == theta, Dice and Cosine c/s ==
// theta. Starts at a randomized size so different plantings differ.
std::optional<PlantShape> ExactShape(SimilarityFunction fn, double theta,
                                     Rng& rng) {
  const uint32_t start = 3 + static_cast<uint32_t>(rng.NextBounded(10));
  for (uint32_t step = 0; step < 40; ++step) {
    const uint32_t s = start + step;
    double c_real = 0.0;
    switch (fn) {
      case SimilarityFunction::kJaccard:
        c_real = 2.0 * s * theta / (1.0 + theta);
        break;
      case SimilarityFunction::kDice:
      case SimilarityFunction::kCosine:
        c_real = s * theta;
        break;
    }
    const uint32_t c = static_cast<uint32_t>(std::llround(c_real));
    if (c < 1 || c > s) continue;
    if (std::abs(ComputeSimilarity(fn, c, s, s) - theta) < 1e-12) {
      return PlantShape{s, c};
    }
  }
  return std::nullopt;
}

// Appends a record pair of `size` tokens each sharing exactly `overlap`
// fresh ids starting at *next_token.
void AppendPair(std::vector<std::vector<uint32_t>>* sets, uint32_t size,
                uint32_t overlap, uint32_t* next_token) {
  std::vector<uint32_t> a, b;
  for (uint32_t i = 0; i < overlap; ++i) {
    a.push_back(*next_token);
    b.push_back(*next_token);
    ++*next_token;
  }
  for (uint32_t i = overlap; i < size; ++i) a.push_back((*next_token)++);
  for (uint32_t i = overlap; i < size; ++i) b.push_back((*next_token)++);
  sets->push_back(std::move(a));
  sets->push_back(std::move(b));
}

// Draws a set of `len` distinct ids in [0, vocab).
std::vector<uint32_t> DrawSet(uint32_t len, uint32_t vocab, Rng& rng) {
  std::unordered_set<uint32_t> seen;
  std::vector<uint32_t> out;
  len = std::min(len, vocab);
  while (out.size() < len) {
    uint32_t t = static_cast<uint32_t>(rng.NextBounded(vocab));
    if (seen.insert(t).second) out.push_back(t);
  }
  return out;
}

std::vector<std::vector<uint32_t>> GeneratorFamily(uint64_t seed, double skew,
                                                   Rng& rng) {
  SyntheticCorpusConfig cfg;
  cfg.num_records = 20 + rng.NextBounded(28);
  cfg.vocab_size = 60 + rng.NextBounded(140);
  cfg.zipf_skew = skew;
  cfg.avg_len = 5 + static_cast<double>(rng.NextBounded(8));
  cfg.len_sigma = 0.5;
  cfg.min_len = 1;
  cfg.max_len = 40;
  cfg.near_duplicate_fraction = 0.3;
  cfg.mutation_rate = 0.1;
  cfg.seed = seed * 2654435761ull + 17;
  return SetsFromCorpus(GenerateCorpus(cfg));
}

std::vector<std::vector<uint32_t>> ClusteredFamily(Rng& rng) {
  const uint32_t topics = 3 + static_cast<uint32_t>(rng.NextBounded(4));
  const uint32_t pool = 10 + static_cast<uint32_t>(rng.NextBounded(12));
  const uint32_t records = 20 + static_cast<uint32_t>(rng.NextBounded(24));
  std::vector<std::vector<uint32_t>> sets;
  for (uint32_t i = 0; i < records; ++i) {
    const uint32_t topic = static_cast<uint32_t>(rng.NextBounded(topics));
    const uint32_t len = 3 + static_cast<uint32_t>(rng.NextBounded(8));
    std::vector<uint32_t> set = DrawSet(len, pool, rng);
    for (uint32_t& t : set) t += topic * pool;  // disjoint per-topic pools
    sets.push_back(std::move(set));
  }
  return sets;
}

std::vector<std::vector<uint32_t>> DuplicatesFamily(Rng& rng) {
  const uint32_t base_count = 5 + static_cast<uint32_t>(rng.NextBounded(6));
  const uint32_t records = 24 + static_cast<uint32_t>(rng.NextBounded(20));
  std::vector<std::vector<uint32_t>> base;
  for (uint32_t i = 0; i < base_count; ++i) {
    base.push_back(
        DrawSet(4 + static_cast<uint32_t>(rng.NextBounded(8)), 80, rng));
  }
  std::vector<std::vector<uint32_t>> sets;
  for (uint32_t i = 0; i < records; ++i) {
    std::vector<uint32_t> copy = base[rng.NextBounded(base_count)];
    if (rng.NextBool(0.3) && !copy.empty()) {
      // One-token mutation: high-similarity but non-identical neighbors.
      copy[rng.NextBounded(copy.size())] =
          80 + static_cast<uint32_t>(rng.NextBounded(40));
    }
    sets.push_back(std::move(copy));
  }
  return sets;
}

std::vector<std::vector<uint32_t>> DegenerateFamily(Rng& rng) {
  const uint32_t records = 16 + static_cast<uint32_t>(rng.NextBounded(24));
  std::vector<std::vector<uint32_t>> sets;
  for (uint32_t i = 0; i < records; ++i) {
    const uint64_t kind = rng.NextBounded(4);
    if (kind == 0) {
      sets.emplace_back();  // empty set
    } else if (kind == 1) {
      // Single token, drawn from a tiny domain so some collide exactly.
      sets.push_back({static_cast<uint32_t>(rng.NextBounded(6))});
    } else {
      sets.push_back(
          DrawSet(1 + static_cast<uint32_t>(rng.NextBounded(6)), 60, rng));
    }
  }
  return sets;
}

std::vector<std::vector<uint32_t>> SamePrefixFamily(Rng& rng) {
  const uint32_t prefix_len = 2 + static_cast<uint32_t>(rng.NextBounded(3));
  const uint32_t records = 20 + static_cast<uint32_t>(rng.NextBounded(20));
  std::vector<std::vector<uint32_t>> sets;
  for (uint32_t i = 0; i < records; ++i) {
    // Shared rare prefix: ids 0..prefix_len-1 appear in every record, so a
    // frequency-ascending global ordering puts them at the *end*; suffixes
    // draw from a shifted domain. Adversarial for prefix-filtered joins:
    // candidate generation must survive all records colliding on tokens.
    std::vector<uint32_t> set;
    for (uint32_t p = 0; p < prefix_len; ++p) set.push_back(p);
    std::vector<uint32_t> suffix =
        DrawSet(2 + static_cast<uint32_t>(rng.NextBounded(8)), 50, rng);
    for (uint32_t t : suffix) set.push_back(prefix_len + t);
    sets.push_back(std::move(set));
  }
  return sets;
}

}  // namespace

std::vector<std::string> ScenarioFamilies() {
  return std::vector<std::string>(kFamilies, kFamilies + kNumFamilies);
}

void PlantNearThresholdPairs(std::vector<std::vector<uint32_t>>* sets,
                             SimilarityFunction fn, double theta, size_t count,
                             uint32_t next_token, Rng& rng) {
  for (size_t i = 0; i < count; ++i) {
    std::optional<PlantShape> shape = ExactShape(fn, theta, rng);
    if (!shape.has_value()) {
      // Theta is not exactly representable at small sizes; plant the
      // closest bracketing pairs instead so the boundary is still probed.
      const uint32_t s = 6 + static_cast<uint32_t>(rng.NextBounded(8));
      const uint32_t c = std::max<uint32_t>(
          1, static_cast<uint32_t>(std::floor(theta * s)));
      AppendPair(sets, s, std::min(c, s), &next_token);
      if (c + 1 <= s) AppendPair(sets, s, c + 1, &next_token);
      continue;
    }
    // sim == theta exactly.
    AppendPair(sets, shape->size, shape->overlap, &next_token);
    // sim just below theta (one shared token fewer).
    if (shape->overlap > 1) {
      AppendPair(sets, shape->size, shape->overlap - 1, &next_token);
    }
    // sim just above theta (one shared token more, or identical records).
    if (shape->overlap < shape->size) {
      AppendPair(sets, shape->size, shape->overlap + 1, &next_token);
    } else if (theta < 1.0) {
      AppendPair(sets, shape->size, shape->size, &next_token);
    }
  }
}

Corpus CorpusFromSets(const std::vector<std::vector<uint32_t>>& sets) {
  std::vector<std::string> lines;
  lines.reserve(sets.size());
  for (const std::vector<uint32_t>& set : sets) {
    std::string line;
    for (uint32_t t : set) {
      if (!line.empty()) line += ' ';
      line += StrFormat("t%u", t);
    }
    lines.push_back(std::move(line));
  }
  WhitespaceTokenizer tokenizer;
  return BuildCorpus(lines, tokenizer);
}

std::vector<std::vector<uint32_t>> SetsFromCorpus(const Corpus& corpus) {
  std::vector<std::vector<uint32_t>> sets;
  sets.reserve(corpus.records.size());
  for (const Record& rec : corpus.records) {
    std::vector<uint32_t> set;
    set.reserve(rec.tokens.size());
    for (TokenId t : rec.tokens) {
      const std::string& s = corpus.dictionary.TokenString(t);
      uint32_t id = 0;
      bool parsed = s.size() > 1 && s[0] == 't';
      if (parsed) {
        for (size_t i = 1; i < s.size(); ++i) {
          if (s[i] < '0' || s[i] > '9') {
            parsed = false;
            break;
          }
          id = id * 10 + static_cast<uint32_t>(s[i] - '0');
        }
      }
      // Corpora not built from "t<id>" strings fall back to raw TokenIds,
      // which are just as stable for rebuild purposes.
      set.push_back(parsed ? id : static_cast<uint32_t>(t));
    }
    sets.push_back(std::move(set));
  }
  return sets;
}

std::string JoinShape::Name() const {
  if (!rs) return "self";
  return StrFormat("rs%u:%u", r_weight, s_weight);
}

JoinShape SampleJoinShape(uint64_t seed) {
  Rng rng(seed * 0x2545f4914f6cdd1dull + 11);
  JoinShape shape;
  if (!rng.NextBool(0.5)) return shape;  // self join
  shape.rs = true;
  constexpr uint32_t kRatios[][2] = {{1, 1}, {1, 10}, {10, 1}, {1, 0}};
  const uint64_t pick = rng.NextBounded(4);
  shape.r_weight = kRatios[pick][0];
  shape.s_weight = kRatios[pick][1];
  return shape;
}

Scenario MakeScenario(uint64_t seed, SimilarityFunction fn, double theta) {
  return MakeScenario(seed, fn, theta, JoinShape{});
}

Scenario MakeScenario(uint64_t seed, SimilarityFunction fn, double theta,
                      const JoinShape& shape) {
  Scenario scenario;
  scenario.seed = seed;
  scenario.family = kFamilies[seed % kNumFamilies];
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);

  std::vector<std::vector<uint32_t>> sets;
  size_t plant_count = 2;
  switch (seed % kNumFamilies) {
    case 0:
      sets = GeneratorFamily(seed, 0.8 + 0.4 * rng.NextDouble(), rng);
      break;
    case 1:
      sets = GeneratorFamily(seed, 0.0, rng);
      break;
    case 2:
      sets = ClusteredFamily(rng);
      break;
    case 3:
      sets = DuplicatesFamily(rng);
      break;
    case 4:
      sets = DegenerateFamily(rng);
      break;
    case 5:
      sets = SamePrefixFamily(rng);
      break;
    default:  // planted: a small base corpus dominated by boundary pairs
      sets = GeneratorFamily(seed, 1.0, rng);
      sets.resize(std::min<size_t>(sets.size(), 16));
      plant_count = 4;
      break;
  }
  const size_t base_count = sets.size();

  // Every family gets near-threshold pairs: the boundary sim ∈
  // {tau - eps, tau, tau + eps} is where exact-join reproductions drift.
  uint32_t next_token = 0;
  for (const std::vector<uint32_t>& set : sets) {
    for (uint32_t t : set) next_token = std::max(next_token, t + 1);
  }
  PlantNearThresholdPairs(&sets, fn, theta, plant_count, next_token, rng);

  if (!shape.rs) {
    scenario.corpus = CorpusFromSets(sets);
    return scenario;
  }

  // Split into R and S. Planted records arrive as consecutive (a, b) pairs
  // after base_count: a goes to R and b to S, so every near-threshold pair
  // straddles the boundary. Base records draw their side from the ratio.
  // s_weight == 0 keeps S empty (everything, planted pairs included, in R).
  std::vector<std::vector<uint32_t>> r_sets, s_sets;
  const double r_probability =
      shape.s_weight == 0
          ? 1.0
          : static_cast<double>(shape.r_weight) /
                static_cast<double>(shape.r_weight + shape.s_weight);
  for (size_t i = 0; i < sets.size(); ++i) {
    bool to_r;
    if (shape.s_weight == 0) {
      to_r = true;
    } else if (i >= base_count) {
      to_r = (i - base_count) % 2 == 0;
    } else {
      to_r = rng.NextBool(r_probability);
    }
    (to_r ? r_sets : s_sets).push_back(std::move(sets[i]));
  }
  scenario.family += "/" + shape.Name();
  scenario.rs_boundary = static_cast<RecordId>(r_sets.size());
  for (std::vector<uint32_t>& set : s_sets) r_sets.push_back(std::move(set));
  scenario.corpus = CorpusFromSets(r_sets);
  return scenario;
}

}  // namespace fsjoin::check
