#ifndef FSJOIN_EXEC_BACKEND_H_
#define FSJOIN_EXEC_BACKEND_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/exec_config.h"
#include "exec/plan.h"
#include "flow/dataflow.h"
#include "mr/engine.h"
#include "mr/kv.h"
#include "mr/metrics.h"
#include "mr/pipeline.h"
#include "util/status.h"

namespace fsjoin::exec {

/// Runs logical plans on some execution substrate. One backend instance is
/// one "cluster session": Execute may be called several times (drivers run
/// an ordering plan, compute pivots driver-side, then run the join plan)
/// and history() accumulates across calls.
///
/// History contract: every kGroupByKey stage contributes exactly one
/// JobMetrics entry named after the stage, in execution order, on *every*
/// backend. This keeps report indices and regression-pinned metrics stable
/// when the substrate changes (the MR backend's entries are real job
/// counters; the fused backend synthesizes entries from its per-wide-stage
/// dataflow counters).
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  virtual BackendKind kind() const = 0;

  /// Runs `plan` over `input` and returns the final stage's output.
  virtual Result<mr::Dataset> Execute(const Plan& plan,
                                      const mr::Dataset& input) = 0;

  /// One JobMetrics per wide stage executed so far (see class comment).
  virtual const std::vector<mr::JobMetrics>& history() const = 0;

  /// Fused backend only: raw dataflow counters, one per executed pipeline
  /// segment (fusion, materialization savings). Empty on other backends.
  virtual const std::vector<flow::Pipeline::Metrics>& flow_history() const;
};

/// Hadoop-style execution (the paper's substrate): each wide stage becomes
/// one materialized MapReduce job on the in-process engine — narrow chains
/// feed the job's map phase (an identity map when the plan has none, like
/// FS-Join's verification job), and every job output round-trips through a
/// MiniDfs. JobMetrics accounting is byte-identical to the hand-chained
/// drivers this backend replaced (pinned by MetricsRegressionTest).
class MapReduceBackend : public ExecutionBackend {
 public:
  explicit MapReduceBackend(const ExecConfig& config);

  BackendKind kind() const override { return BackendKind::kMapReduce; }
  Result<mr::Dataset> Execute(const Plan& plan,
                              const mr::Dataset& input) override;
  const std::vector<mr::JobMetrics>& history() const override {
    return pipeline_.history();
  }

 private:
  ExecConfig config_;
  /// Topology bring-up failure (cluster runner only), surfaced by the
  /// first Execute — constructors can't return Status.
  Status init_error_;
  /// RunnerKind::kCluster only; owned here (declared before engine_ so it
  /// outlives the engine that borrows it via EngineOptions::external_runner).
  std::unique_ptr<mr::TaskRunner> cluster_runner_;
  mr::Engine engine_;
  mr::MiniDfs dfs_;
  mr::Pipeline pipeline_;
  uint64_t dataset_counter_ = 0;
};

/// Spark-style execution (paper §VII future work): the plan is split into
/// pipeline segments at union points, each segment runs on flow::Pipeline
/// with narrow chains fused and shuffles kept in memory — no per-job
/// scheduling or DFS materialization.
class FusedFlowBackend : public ExecutionBackend {
 public:
  explicit FusedFlowBackend(const ExecConfig& config);

  BackendKind kind() const override { return BackendKind::kFusedFlow; }
  Result<mr::Dataset> Execute(const Plan& plan,
                              const mr::Dataset& input) override;
  const std::vector<mr::JobMetrics>& history() const override {
    return history_;
  }
  const std::vector<flow::Pipeline::Metrics>& flow_history() const override {
    return flow_history_;
  }

 private:
  ExecConfig config_;
  /// Topology bring-up failure (cluster runner only), surfaced by the
  /// first Execute.
  Status init_error_;
  /// One runner for the whole session: segment pipelines borrow it via
  /// Pipeline::SetRunner, so runner choice and retry budget apply to every
  /// wide stage this backend executes. For RunnerKind::kCluster this is a
  /// net::ClusterTaskRunner (whose closure-only fallback covers flow tasks).
  std::unique_ptr<mr::TaskRunner> runner_;
  std::vector<mr::JobMetrics> history_;
  std::vector<flow::Pipeline::Metrics> flow_history_;
};

/// Builds the backend selected by `config.backend`.
std::unique_ptr<ExecutionBackend> MakeBackend(const ExecConfig& config);

}  // namespace fsjoin::exec

#endif  // FSJOIN_EXEC_BACKEND_H_
