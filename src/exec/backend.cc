#include "exec/backend.h"

#include <string>
#include <utility>
#include <vector>

#include "net/cluster_runner.h"
#include "store/memory_budget.h"
#include "util/endpoint.h"

namespace fsjoin::exec {

namespace {

/// Map phase stand-in when a wide stage has no preceding narrow stages
/// (e.g. FS-Join's verification job): pass every record through unchanged.
class IdentityMapper : public mr::Mapper {
 public:
  Status Map(const mr::KeyValue& record, mr::Emitter* out) override {
    out->Emit(record.key, record.value);
    return Status::OK();
  }
};

/// Reduce phase stand-in for a plan that ends on narrow stages: re-emit
/// every shuffled value under its key (the MapReduce lowering of a
/// map-only tail — grouping reorders records but preserves content).
class IdentityReducer : public mr::Reducer {
 public:
  Status Reduce(std::string_view key, mr::ValueList values,
                mr::Emitter* out) override {
    for (std::string_view v : values) out->Emit(key, v);
    return Status::OK();
  }
};

/// Fuses several narrow stages into one Hadoop map phase: each record runs
/// through the whole mapper chain, intermediate emissions never touch the
/// shuffle.
class ChainMapper : public mr::Mapper {
 public:
  explicit ChainMapper(std::vector<std::unique_ptr<mr::Mapper>> mappers)
      : mappers_(std::move(mappers)) {}

  Status Setup() override {
    for (auto& mapper : mappers_) {
      FSJOIN_RETURN_NOT_OK(mapper->Setup());
    }
    return Status::OK();
  }

  Status Map(const mr::KeyValue& record, mr::Emitter* out) override {
    return Feed(0, record, out);
  }

  Status Finish(mr::Emitter* out) override {
    // Finish hooks cascade: mapper i's trailing emissions still flow
    // through mappers i+1..n before reaching the real emitter.
    for (size_t i = 0; i < mappers_.size(); ++i) {
      ChainEmitter emitter(this, i + 1, out);
      FSJOIN_RETURN_NOT_OK(mappers_[i]->Finish(&emitter));
      FSJOIN_RETURN_NOT_OK(emitter.status());
    }
    return Status::OK();
  }

 private:
  class ChainEmitter : public mr::Emitter {
   public:
    ChainEmitter(ChainMapper* chain, size_t next, mr::Emitter* out)
        : chain_(chain), next_(next), out_(out) {}

    void Emit(std::string_view key, std::string_view value) override {
      if (!status_.ok()) return;
      mr::KeyValue kv{std::string(key), std::string(value)};
      status_ = chain_->Feed(next_, kv, out_);
    }

    const Status& status() const { return status_; }

   private:
    ChainMapper* chain_;
    size_t next_;
    mr::Emitter* out_;
    Status status_;
  };

  Status Feed(size_t i, const mr::KeyValue& record, mr::Emitter* out) {
    if (i == mappers_.size()) {
      out->Emit(record.key, record.value);
      return Status::OK();
    }
    ChainEmitter emitter(this, i + 1, out);
    FSJOIN_RETURN_NOT_OK(mappers_[i]->Map(record, &emitter));
    return emitter.status();
  }

  std::vector<std::unique_ptr<mr::Mapper>> mappers_;
};

/// Lowers a run of pending narrow stages to one Hadoop map phase. A single
/// stage's factory is used as-is so single-FlatMap jobs (every job in the
/// FS-Join and baseline plans) execute exactly like the hand-chained
/// drivers did.
mr::MapperFactory ComposeMappers(std::vector<mr::MapperFactory> pending) {
  if (pending.empty()) {
    return [] { return std::make_unique<IdentityMapper>(); };
  }
  if (pending.size() == 1) return std::move(pending[0]);
  return [pending = std::move(pending)] {
    std::vector<std::unique_ptr<mr::Mapper>> mappers;
    mappers.reserve(pending.size());
    for (const mr::MapperFactory& factory : pending) {
      mappers.push_back(factory());
    }
    return std::make_unique<ChainMapper>(std::move(mappers));
  };
}

mr::JobMetrics SynthesizeJobMetrics(
    const flow::Pipeline::WideStageMetrics& ws) {
  mr::JobMetrics m;
  m.job_name = ws.name;
  m.map_input_records = ws.input_records;
  m.map_input_bytes = ws.input_bytes;
  m.map_output_records = ws.shuffle_records;
  m.map_output_bytes = ws.shuffle_bytes;
  m.combine_input_records = ws.combine_input_records;
  m.shuffle_records = ws.shuffle_records;
  m.shuffle_bytes = ws.shuffle_bytes;
  m.spilled_bytes = ws.spilled_bytes;
  m.spill_runs = ws.spill_runs;
  m.reduce_output_records = ws.output_records;
  m.reduce_output_bytes = ws.output_bytes;
  return m;
}

}  // namespace

const std::vector<flow::Pipeline::Metrics>& ExecutionBackend::flow_history()
    const {
  static const std::vector<flow::Pipeline::Metrics> kEmpty;
  return kEmpty;
}

namespace {

mr::EngineOptions EngineOptionsFrom(const ExecConfig& config,
                                    mr::TaskRunner* external) {
  mr::EngineOptions options;
  options.num_threads = config.num_threads;
  options.shuffle_memory_bytes = config.shuffle_memory_bytes;
  options.spill_dir = config.spill_dir;
  options.runner = config.runner;
  options.task_retries = config.task_retries;
  options.external_runner = external;
  return options;
}

/// Builds the cluster runner for RunnerKind::kCluster, or null for every
/// other runner kind. Bring-up failures (bad worker list, connect/handshake
/// errors) land in *error; backend constructors can't return Status, so the
/// first Execute surfaces them.
std::unique_ptr<mr::TaskRunner> MaybeMakeClusterRunner(
    const ExecConfig& config, Status* error) {
  if (config.runner != mr::RunnerKind::kCluster) return nullptr;
  if (Status st = config.Validate(); !st.ok()) {
    *error = std::move(st);
    return nullptr;
  }
  net::ClusterOptions options;
  if (!config.workers.empty()) {
    auto list = ParseEndpointList(config.workers);
    if (!list.ok()) {
      *error = list.status();
      return nullptr;
    }
    options.workers = std::move(list).value();
  }
  options.spawn_local_workers = config.spawn_local_workers;
  options.heartbeat_ms = config.heartbeat_ms;
  options.num_threads = config.num_threads;
  auto runner = net::ClusterTaskRunner::Create(options);
  if (!runner.ok()) {
    *error = runner.status();
    return nullptr;
  }
  return std::move(runner).value();
}

}  // namespace

MapReduceBackend::MapReduceBackend(const ExecConfig& config)
    : config_(config),
      cluster_runner_(MaybeMakeClusterRunner(config, &init_error_)),
      engine_(EngineOptionsFrom(config, cluster_runner_.get())),
      pipeline_(&engine_, &dfs_) {}

Result<mr::Dataset> MapReduceBackend::Execute(const Plan& plan,
                                              const mr::Dataset& input) {
  FSJOIN_RETURN_NOT_OK(init_error_);
  FSJOIN_RETURN_NOT_OK(config_.Validate());
  FSJOIN_RETURN_NOT_OK(plan.Validate());
  std::vector<std::string> created;
  auto new_name = [&](const std::string& suffix) {
    std::string name = plan.name() + "/" + std::to_string(dataset_counter_++) +
                       ":" + suffix;
    created.push_back(name);
    return name;
  };
  auto cleanup = [&] {
    for (const std::string& name : created) dfs_.Remove(name);
  };

  std::string current = new_name("input");
  dfs_.Put(current, input);

  std::vector<mr::MapperFactory> pending;
  for (const Stage& stage : plan.stages()) {
    Status st = Status::OK();
    switch (stage.kind) {
      case Stage::Kind::kUnion: {
        if (!pending.empty()) {
          st = Status::Unimplemented(
              "plan '" + plan.name() + "': union '" + stage.name +
              "' after an unflushed FlatMap cannot be lowered to MapReduce "
              "jobs (move the union before the narrow chain)");
          break;
        }
        auto cur = dfs_.Get(current);
        if (!cur.ok()) {
          st = cur.status();
          break;
        }
        mr::Dataset merged = **cur;
        merged.insert(merged.end(), stage.dataset->begin(),
                      stage.dataset->end());
        current = new_name(stage.name);
        dfs_.Put(current, std::move(merged));
        break;
      }
      case Stage::Kind::kFlatMap:
        pending.push_back(stage.mapper);
        break;
      case Stage::Kind::kGroupByKey: {
        mr::JobConfig job;
        job.name = stage.name;
        job.num_map_tasks = config_.num_map_tasks;
        job.num_reduce_tasks = config_.num_reduce_tasks;
        job.mapper_factory = ComposeMappers(std::move(pending));
        job.reducer_factory = stage.reducer;
        job.combiner_factory = stage.combiner;
        job.partitioner = stage.partitioner;
        job.side = stage.side;
        job.task_factory = stage.task_factory;
        job.task_payload = stage.task_payload;
        pending.clear();
        std::string out = new_name(stage.name);
        st = pipeline_.RunJob(job, current, out);
        current = out;
        break;
      }
    }
    if (!st.ok()) {
      cleanup();
      return st;
    }
  }

  if (!pending.empty()) {
    // Map-only tail: one more job whose reduce phase is the identity.
    mr::JobConfig job;
    job.name = plan.name() + "-tail";
    job.num_map_tasks = config_.num_map_tasks;
    job.num_reduce_tasks = config_.num_reduce_tasks;
    job.mapper_factory = ComposeMappers(std::move(pending));
    job.reducer_factory = [] { return std::make_unique<IdentityReducer>(); };
    std::string out = new_name("tail");
    Status st = pipeline_.RunJob(job, current, out);
    if (!st.ok()) {
      cleanup();
      return st;
    }
    current = out;
  }

  auto out = dfs_.Get(current);
  if (!out.ok()) {
    cleanup();
    return out.status();
  }
  mr::Dataset result = **out;
  cleanup();
  return result;
}

FusedFlowBackend::FusedFlowBackend(const ExecConfig& config)
    : config_(config),
      runner_(config.runner == mr::RunnerKind::kCluster
                  ? MaybeMakeClusterRunner(config, &init_error_)
                  : mr::MakeTaskRunner(config.runner, config.num_threads)) {}

Result<mr::Dataset> FusedFlowBackend::Execute(const Plan& plan,
                                              const mr::Dataset& input) {
  FSJOIN_RETURN_NOT_OK(init_error_);
  FSJOIN_RETURN_NOT_OK(config_.Validate());
  FSJOIN_RETURN_NOT_OK(plan.Validate());
  mr::Dataset current = input;
  const std::vector<Stage>& stages = plan.stages();
  size_t i = 0;
  int segment = 0;
  while (i < stages.size()) {
    if (stages[i].kind == Stage::Kind::kUnion) {
      current.insert(current.end(), stages[i].dataset->begin(),
                     stages[i].dataset->end());
      ++i;
      continue;
    }
    // Maximal run of non-union stages: one fused pipeline.
    size_t seg_end = i;
    while (seg_end < stages.size() &&
           stages[seg_end].kind != Stage::Kind::kUnion) {
      ++seg_end;
    }
    flow::Pipeline pipeline(plan.name() + "#" + std::to_string(segment++),
                            config_.num_threads, config_.num_reduce_tasks);
    pipeline.SetRunner(runner_.get(), config_.task_retries);
    if (config_.shuffle_memory_bytes > 0) {
      pipeline.SetSpill(flow::Pipeline::SpillOptions{
          config_.shuffle_memory_bytes, config_.spill_dir});
    }
    for (size_t s = i; s < seg_end; ++s) {
      const Stage& stage = stages[s];
      if (stage.kind == Stage::Kind::kFlatMap) {
        pipeline.FlatMap(stage.name, stage.mapper);
      } else {
        pipeline.GroupByKey(stage.name, stage.reducer, stage.partitioner,
                            stage.combiner, stage.side);
      }
    }
    FSJOIN_ASSIGN_OR_RETURN(current, pipeline.Run(current));
    flow_history_.push_back(pipeline.metrics());
    for (const flow::Pipeline::WideStageMetrics& ws :
         pipeline.metrics().wide_stages) {
      history_.push_back(SynthesizeJobMetrics(ws));
    }
    i = seg_end;
  }
  return current;
}

std::unique_ptr<ExecutionBackend> MakeBackend(const ExecConfig& config) {
  if (config.process_memory_bytes > 0) {
    store::ProcessMemoryBudget().set_limit(config.process_memory_bytes);
  }
  switch (config.backend) {
    case BackendKind::kMapReduce:
      return std::make_unique<MapReduceBackend>(config);
    case BackendKind::kFusedFlow:
      return std::make_unique<FusedFlowBackend>(config);
  }
  return std::make_unique<MapReduceBackend>(config);
}

}  // namespace fsjoin::exec
