#include "exec/plan.h"

#include <utility>

namespace fsjoin::exec {

Plan& Plan::FlatMap(std::string stage_name, mr::MapperFactory factory) {
  Stage stage;
  stage.kind = Stage::Kind::kFlatMap;
  stage.name = std::move(stage_name);
  stage.mapper = std::move(factory);
  stages_.push_back(std::move(stage));
  return *this;
}

Plan& Plan::GroupByKey(std::string stage_name, mr::ReducerFactory factory,
                       std::shared_ptr<const mr::Partitioner> partitioner,
                       mr::ReducerFactory combiner, StageHints hints) {
  Stage stage;
  stage.kind = Stage::Kind::kGroupByKey;
  stage.name = std::move(stage_name);
  stage.reducer = std::move(factory);
  stage.combiner = std::move(combiner);
  stage.partitioner = std::move(partitioner);
  stage.side = std::move(hints.side);
  stage.task_factory = std::move(hints.task_factory);
  stage.task_payload = std::move(hints.task_payload);
  stages_.push_back(std::move(stage));
  return *this;
}

Plan& Plan::UnionWith(std::string stage_name,
                      std::shared_ptr<const mr::Dataset> dataset) {
  Stage stage;
  stage.kind = Stage::Kind::kUnion;
  stage.name = std::move(stage_name);
  stage.dataset = std::move(dataset);
  stages_.push_back(std::move(stage));
  return *this;
}

Status Plan::Validate() const {
  for (const Stage& stage : stages_) {
    switch (stage.kind) {
      case Stage::Kind::kFlatMap:
        if (!stage.mapper) {
          return Status::InvalidArgument("plan '" + name_ + "': FlatMap '" +
                                         stage.name + "' has no mapper");
        }
        break;
      case Stage::Kind::kGroupByKey:
        if (!stage.reducer) {
          return Status::InvalidArgument("plan '" + name_ + "': GroupByKey '" +
                                         stage.name + "' has no reducer");
        }
        break;
      case Stage::Kind::kUnion:
        if (stage.dataset == nullptr) {
          return Status::InvalidArgument("plan '" + name_ + "': Union '" +
                                         stage.name + "' has no dataset");
        }
        break;
    }
  }
  return Status::OK();
}

size_t Plan::NumWideStages() const {
  size_t n = 0;
  for (const Stage& stage : stages_) {
    if (stage.kind == Stage::Kind::kGroupByKey) ++n;
  }
  return n;
}

}  // namespace fsjoin::exec
