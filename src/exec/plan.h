#ifndef FSJOIN_EXEC_PLAN_H_
#define FSJOIN_EXEC_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "mr/job.h"
#include "mr/kv.h"
#include "util/status.h"

namespace fsjoin::exec {

/// One stage of a logical plan. Stages reuse the mr::Mapper / mr::Reducer
/// operator interfaces, so every FS-Join and baseline operator is portable
/// across execution backends unchanged.
struct Stage {
  enum class Kind {
    kFlatMap,     ///< narrow: record -> zero or more records
    kGroupByKey,  ///< wide: shuffle by key, grouped reduce
    kUnion,       ///< splice a side dataset into the stream at this point
  };

  Kind kind = Kind::kFlatMap;
  /// Stage label. For kGroupByKey this is also the name the MapReduce
  /// backend gives the materialized job (and thus its JobMetrics entry), so
  /// wide-stage names line up across backends.
  std::string name;

  mr::MapperFactory mapper;    ///< kFlatMap
  mr::ReducerFactory reducer;  ///< kGroupByKey
  /// Optional map-side combiner for kGroupByKey (Hadoop: per map task;
  /// fused backend: per shuffle bucket before shipping).
  mr::ReducerFactory combiner;
  /// Key router for kGroupByKey; HashPartitioner when null.
  std::shared_ptr<const mr::Partitioner> partitioner;
  /// kUnion: records appended to the stream (shared because drivers reuse
  /// one side dataset at several points, e.g. MassJoin's ranked records).
  std::shared_ptr<const mr::Dataset> dataset;

  /// kGroupByKey execution hints (StageHints): fork-boundary side channel
  /// for this stage's shared context, and the registered task-factory name
  /// that lets the stage's tasks re-exec as --worker-task processes.
  mr::TaskSideChannel side;
  std::string task_factory;
  std::string task_payload;
};

/// Optional per-wide-stage execution metadata passed to Plan::GroupByKey.
/// Defaulted so stages that carry no shared mutable context (and offer no
/// re-exec factory) list only their operators.
struct StageHints {
  mr::TaskSideChannel side;
  std::string task_factory;
  std::string task_payload;
};

/// A logical description of one multi-stage computation: a chain of named
/// stages that any ExecutionBackend can run. Drivers *emit a plan* instead
/// of hand-chaining MR jobs or dataflow pipelines, which is what makes the
/// substrate swappable (paper §VII: "other Big Data platforms, like
/// Spark").
///
///   Plan join("join");
///   join.FlatMap("vertical-split", mapper_factory)
///       .GroupByKey("filtering", reducer_factory, partitioner)
///       .GroupByKey("verification", verify_factory);
class Plan {
 public:
  explicit Plan(std::string name) : name_(std::move(name)) {}

  /// Appends a narrow stage.
  Plan& FlatMap(std::string stage_name, mr::MapperFactory factory);

  /// Appends a wide stage. `stage_name` becomes the MapReduce backend's job
  /// name, so reports and regression-pinned metrics key off it.
  Plan& GroupByKey(std::string stage_name, mr::ReducerFactory factory,
                   std::shared_ptr<const mr::Partitioner> partitioner = nullptr,
                   mr::ReducerFactory combiner = nullptr,
                   StageHints hints = {});

  /// Appends a union point: `dataset`'s records join the stream here (the
  /// MassJoin drivers splice ranked record content next to candidates).
  Plan& UnionWith(std::string stage_name,
                  std::shared_ptr<const mr::Dataset> dataset);

  /// Structural checks (factories present, datasets non-null). Backends
  /// call this before executing.
  Status Validate() const;

  const std::string& name() const { return name_; }
  const std::vector<Stage>& stages() const { return stages_; }

  /// Number of kGroupByKey stages — the backend-independent length of the
  /// execution history this plan contributes.
  size_t NumWideStages() const;

 private:
  std::string name_;
  std::vector<Stage> stages_;
};

}  // namespace fsjoin::exec

#endif  // FSJOIN_EXEC_PLAN_H_
