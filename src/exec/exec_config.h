#ifndef FSJOIN_EXEC_EXEC_CONFIG_H_
#define FSJOIN_EXEC_EXEC_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "mr/runner.h"
#include "util/status.h"

namespace fsjoin::exec {

/// Which execution substrate runs a logical plan.
enum class BackendKind {
  kMapReduce,  ///< Hadoop-style: one materialized MR job per wide stage
  kFusedFlow,  ///< Spark-style: narrow chains fused, shuffles stay in memory
};

const char* BackendKindName(BackendKind kind);

/// Parses "mr"/"mapreduce" and "flow"/"fused"; InvalidArgument otherwise.
Result<BackendKind> BackendKindFromName(std::string_view name);

/// Which overlap kernel family the fragment-join verification loop uses.
/// All modes produce identical join results and emissions; they differ in
/// speed and (for kSimd) in how a provably-pruned pair is attributed between
/// the empty_overlap and pruned_segi counters (DESIGN.md §5g).
enum class KernelMode {
  kAuto,    ///< kSimd when the CPU/build has vector kernels, else kPacked
  kScalar,  ///< pure scalar reference merge, no bitmap gate — the baseline
            ///< every other mode is verified against
  kPacked,  ///< PR 3 path: word-packed bitmap gate + scalar merge
  kSimd,    ///< bitmap gate + container dispatch + vectorized bounded merge
};

const char* KernelModeName(KernelMode mode);

/// Parses auto|scalar|packed|simd; InvalidArgument otherwise.
Result<KernelMode> KernelModeFromName(std::string_view name);

/// What kAuto means on this build + machine (kSimd or kPacked).
KernelMode ResolveKernelMode(KernelMode mode);

/// Engine-shape knobs shared by every algorithm in the repo (FS-Join and
/// the three baselines). Previously duplicated across FsJoinConfig and
/// BaselineConfig; consolidated here so a driver describes *what* to run
/// (the plan) and this struct describes *where and how wide*.
struct ExecConfig {
  BackendKind backend = BackendKind::kMapReduce;

  /// Number of map tasks the input is split into (Hadoop: one per block).
  /// MapReduce backend only; the fused backend splits by partition count.
  uint32_t num_map_tasks = 8;
  /// Number of reduce tasks == shuffle partitions (paper: 3 * #nodes).
  uint32_t num_reduce_tasks = 8;
  /// Worker threads for the in-process engines (0 = run inline).
  size_t num_threads = 0;

  /// Morsel-parallel fragment joins (the filtering phase's reducer body):
  /// when true, every fragment's probe loop is cut into morsels scheduled
  /// onto a work-stealing pool of `num_threads` workers shared across
  /// fragments, so one oversized fragment is consumed by many threads
  /// instead of stalling a reduce wave. Results, counters and metrics are
  /// byte-identical to the serial run (morsel outputs merge in
  /// deterministic order). false preserves the seed behavior exactly.
  bool parallel_fragment_join = false;
  /// Probe segments per morsel when parallel_fragment_join is on. Must be
  /// >= 1 when the flag is set (Validate rejects 0 — it used to silently
  /// fall back to serial execution, hiding the misconfiguration). 64
  /// balances scheduling overhead against steal granularity on skewed
  /// fragments (measured in bench_micro_kernels --json).
  size_t join_morsel_size = 64;

  /// Overlap kernel family for fragment-join verification (taxonomy above).
  /// kAuto resolves per process at job start; the resolved choice is logged
  /// in JobMetrics so A/B runs are self-describing.
  KernelMode kernel = KernelMode::kAuto;

  /// Abort with ResourceExhausted once a run emits more than this many
  /// intermediate records (0 = unlimited). Models the paper's observation
  /// that MassJoin and V-Smart-Join "cannot run successfully" on the large
  /// datasets: their intermediate data outgrows the cluster.
  uint64_t emission_limit = 0;

  /// Per-job cap on buffered shuffle bytes (0 = unlimited, shuffle stays in
  /// memory — the seed behavior). When exceeded, both backends spill
  /// key-sorted run files to disk and reduce through a streaming k-way
  /// merge; result sets and counters other than spilled_bytes/spill_runs
  /// are unchanged. This is the knob that lets a corpus whose intermediate
  /// data outgrows RAM still run to completion.
  uint64_t shuffle_memory_bytes = 0;
  /// Process-wide ceiling shared by all concurrent jobs (0 = leave the
  /// global store::ProcessMemoryBudget() untouched). Applied by
  /// MakeBackend; only consulted by jobs that also set
  /// shuffle_memory_bytes.
  uint64_t process_memory_bytes = 0;
  /// Base directory for spill scratch space; every job creates and removes
  /// its own unique subdirectory underneath. Empty = system temp
  /// directory.
  std::string spill_dir;

  /// Cost-based auto-tuning (DESIGN.md §5i, `fsjoin_cli --auto`): the
  /// FS-Join driver draws a seeded record sample, refines the vertical
  /// pivots and the horizontal t from it, splits skew-heavy fragments, and
  /// lets every filtering reducer pick join method and overlap kernel from
  /// its fragment's shape. Knobs the caller pinned explicitly
  /// (FsJoinConfig::pinned) still win, with the override logged. Results
  /// are byte-identical to every hand-set configuration — tuning moves
  /// wall time only. Ignored by the baseline algorithms.
  bool auto_tune = false;
  /// Record-sampling rate of the tuning pass, in (0, 1]; 0 = the tuner
  /// default (tune::kDefaultSampleRate). Validate rejects a non-zero rate
  /// without auto_tune — the knob would otherwise be a silent no-op.
  double tune_sample_rate = 0.0;

  /// How task attempts execute (mr/runner.h): inline, on a thread pool
  /// (the default — num_threads == 0 still runs inline and deterministic),
  /// each in its own forked/re-execed child process, or on socket-RPC
  /// cluster workers (DESIGN.md §5j).
  mr::RunnerKind runner = mr::RunnerKind::kThreads;
  /// Re-executions allowed per failed task on the subprocess runner.
  int task_retries = 2;

  /// Cluster runner only: comma-separated "host:port" list of pre-started
  /// fsjoin_worker processes to dial. Exactly one of workers /
  /// spawn_local_workers must be set when runner is kCluster; both are
  /// rejected for any other runner (the knob would be a silent no-op).
  std::string workers;
  /// Cluster runner only: fork/exec this many loopback workers from the
  /// current binary instead of dialing `workers`.
  int spawn_local_workers = 0;
  /// Cluster liveness probe interval in milliseconds; a worker missing
  /// net::kMaxMissedHeartbeats consecutive probes is declared dead.
  int heartbeat_ms = 2000;

  /// Checks every knob up front — task counts, morsel size, retry budget,
  /// shuffle memory floor, spill_dir creatability, cluster topology
  /// (worker list well-formedness, exactly-one of --workers /
  /// --spawn-local-workers) — returning a descriptive InvalidArgument
  /// instead of silently misbehaving later.
  Status Validate() const;
};

}  // namespace fsjoin::exec

#endif  // FSJOIN_EXEC_EXEC_CONFIG_H_
