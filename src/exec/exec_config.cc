#include "exec/exec_config.h"

#include <string>

namespace fsjoin::exec {

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kMapReduce:
      return "mr";
    case BackendKind::kFusedFlow:
      return "flow";
  }
  return "?";
}

Result<BackendKind> BackendKindFromName(std::string_view name) {
  if (name == "mr" || name == "mapreduce") return BackendKind::kMapReduce;
  if (name == "flow" || name == "fused") return BackendKind::kFusedFlow;
  return Status::InvalidArgument("unknown backend: '" + std::string(name) +
                                 "' (expected mr|flow)");
}

Status ExecConfig::Validate() const {
  if (num_map_tasks == 0 || num_reduce_tasks == 0) {
    return Status::InvalidArgument("task counts must be >= 1");
  }
  return Status::OK();
}

}  // namespace fsjoin::exec
