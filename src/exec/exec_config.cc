#include "exec/exec_config.h"

#include <filesystem>
#include <string>
#include <system_error>

#include "mr/engine.h"
#include "util/endpoint.h"
#include "util/simd.h"

namespace fsjoin::exec {

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kMapReduce:
      return "mr";
    case BackendKind::kFusedFlow:
      return "flow";
  }
  return "?";
}

Result<BackendKind> BackendKindFromName(std::string_view name) {
  if (name == "mr" || name == "mapreduce") return BackendKind::kMapReduce;
  if (name == "flow" || name == "fused") return BackendKind::kFusedFlow;
  return Status::InvalidArgument("unknown backend: '" + std::string(name) +
                                 "' (expected mr|flow)");
}

const char* KernelModeName(KernelMode mode) {
  switch (mode) {
    case KernelMode::kAuto:
      return "auto";
    case KernelMode::kScalar:
      return "scalar";
    case KernelMode::kPacked:
      return "packed";
    case KernelMode::kSimd:
      return "simd";
  }
  return "?";
}

Result<KernelMode> KernelModeFromName(std::string_view name) {
  if (name == "auto") return KernelMode::kAuto;
  if (name == "scalar") return KernelMode::kScalar;
  if (name == "packed") return KernelMode::kPacked;
  if (name == "simd") return KernelMode::kSimd;
  return Status::InvalidArgument("unknown kernel: '" + std::string(name) +
                                 "' (expected auto|scalar|packed|simd)");
}

KernelMode ResolveKernelMode(KernelMode mode) {
  if (mode != KernelMode::kAuto) return mode;
  return SimdAvailable() ? KernelMode::kSimd : KernelMode::kPacked;
}

Status ExecConfig::Validate() const {
  if (num_map_tasks == 0 || num_reduce_tasks == 0) {
    return Status::InvalidArgument("task counts must be >= 1");
  }
  if (parallel_fragment_join && join_morsel_size == 0) {
    return Status::InvalidArgument(
        "join_morsel_size must be >= 1 when parallel_fragment_join is set");
  }
  if (task_retries < 0) {
    return Status::InvalidArgument("task_retries must be >= 0, got " +
                                   std::to_string(task_retries));
  }
  if (shuffle_memory_bytes > 0 &&
      shuffle_memory_bytes < mr::kMinShuffleMemoryBytes) {
    return Status::InvalidArgument(
        "shuffle_memory_bytes " + std::to_string(shuffle_memory_bytes) +
        " is smaller than one arena charge (" +
        std::to_string(mr::kMinShuffleMemoryBytes) +
        "); use 0 for an unbounded in-memory shuffle");
  }
  if (!auto_tune && tune_sample_rate != 0.0) {
    return Status::InvalidArgument(
        "tune_sample_rate is set but auto_tune is off (--sample-rate "
        "requires --auto)");
  }
  if (auto_tune &&
      (tune_sample_rate < 0.0 || tune_sample_rate > 1.0)) {
    return Status::InvalidArgument(
        "tune_sample_rate must be in (0, 1] (or 0 for the default), got " +
        std::to_string(tune_sample_rate));
  }
  if (runner == mr::RunnerKind::kCluster) {
    const bool have_dial = !workers.empty();
    const bool have_spawn = spawn_local_workers > 0;
    if (have_dial == have_spawn) {
      return Status::InvalidArgument(
          have_dial
              ? "--workers and --spawn-local-workers are mutually exclusive"
              : "--runner cluster needs a worker topology: pass --workers "
                "host:port,... or --spawn-local-workers N");
    }
    if (have_dial) {
      auto list = ParseEndpointList(workers);
      if (!list.ok()) return list.status();
    }
    if (spawn_local_workers < 0) {
      return Status::InvalidArgument(
          "spawn_local_workers must be >= 0, got " +
          std::to_string(spawn_local_workers));
    }
    if (heartbeat_ms < 50) {
      return Status::InvalidArgument(
          "heartbeat_ms must be >= 50 (got " + std::to_string(heartbeat_ms) +
          "); sub-50ms probes misdiagnose a busy loopback worker as dead");
    }
  } else if (!workers.empty() || spawn_local_workers != 0) {
    return Status::InvalidArgument(
        std::string(!workers.empty() ? "--workers" : "--spawn-local-workers") +
        " requires --runner cluster (current runner: " +
        mr::RunnerKindName(runner) + ")");
  }
  if (!spill_dir.empty()) {
    // Fail configuration, not the first job that tries to spill.
    std::error_code ec;
    std::filesystem::create_directories(spill_dir, ec);
    if (ec) {
      return Status::InvalidArgument("spill_dir '" + spill_dir +
                                     "' is not creatable: " + ec.message());
    }
  }
  return Status::OK();
}

}  // namespace fsjoin::exec
