#include "exec/exec_config.h"

#include <string>

#include "util/simd.h"

namespace fsjoin::exec {

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kMapReduce:
      return "mr";
    case BackendKind::kFusedFlow:
      return "flow";
  }
  return "?";
}

Result<BackendKind> BackendKindFromName(std::string_view name) {
  if (name == "mr" || name == "mapreduce") return BackendKind::kMapReduce;
  if (name == "flow" || name == "fused") return BackendKind::kFusedFlow;
  return Status::InvalidArgument("unknown backend: '" + std::string(name) +
                                 "' (expected mr|flow)");
}

const char* KernelModeName(KernelMode mode) {
  switch (mode) {
    case KernelMode::kAuto:
      return "auto";
    case KernelMode::kScalar:
      return "scalar";
    case KernelMode::kPacked:
      return "packed";
    case KernelMode::kSimd:
      return "simd";
  }
  return "?";
}

Result<KernelMode> KernelModeFromName(std::string_view name) {
  if (name == "auto") return KernelMode::kAuto;
  if (name == "scalar") return KernelMode::kScalar;
  if (name == "packed") return KernelMode::kPacked;
  if (name == "simd") return KernelMode::kSimd;
  return Status::InvalidArgument("unknown kernel: '" + std::string(name) +
                                 "' (expected auto|scalar|packed|simd)");
}

KernelMode ResolveKernelMode(KernelMode mode) {
  if (mode != KernelMode::kAuto) return mode;
  return SimdAvailable() ? KernelMode::kSimd : KernelMode::kPacked;
}

Status ExecConfig::Validate() const {
  if (num_map_tasks == 0 || num_reduce_tasks == 0) {
    return Status::InvalidArgument("task counts must be >= 1");
  }
  return Status::OK();
}

}  // namespace fsjoin::exec
