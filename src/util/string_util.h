#ifndef FSJOIN_UTIL_STRING_UTIL_H_
#define FSJOIN_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fsjoin {

/// Splits on any character in `delims`, dropping empty pieces.
std::vector<std::string_view> SplitString(std::string_view s,
                                          std::string_view delims);

/// ASCII lowercase copy.
std::string ToLowerAscii(std::string_view s);

/// Strips leading/trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// "1.5 GB"-style rendering of a byte count.
std::string HumanBytes(uint64_t bytes);

/// "12,345,678"-style rendering of a count.
std::string WithThousandsSep(uint64_t v);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace fsjoin

#endif  // FSJOIN_UTIL_STRING_UTIL_H_
