#ifndef FSJOIN_UTIL_TIMER_H_
#define FSJOIN_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace fsjoin {

/// Monotonic wall-clock stopwatch with microsecond resolution.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Microseconds elapsed since construction or the last Restart().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  /// Elapsed time in fractional milliseconds.
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

  /// Elapsed time in fractional seconds.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds the scope's elapsed microseconds to *sink on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(int64_t* sink) : sink_(sink) {}
  ~ScopedTimer() { *sink_ += timer_.ElapsedMicros(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  int64_t* sink_;
  WallTimer timer_;
};

}  // namespace fsjoin

#endif  // FSJOIN_UTIL_TIMER_H_
