#ifndef FSJOIN_UTIL_RANDOM_H_
#define FSJOIN_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fsjoin {

/// Deterministic, fast PRNG (xoshiro256**). Seeded explicitly so every
/// experiment in the repo is reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Bernoulli draw with probability p of true.
  bool NextBool(double p);

  /// Approximately Gaussian draw (mean, stddev) via sum of uniforms.
  double NextGaussian(double mean, double stddev);

 private:
  uint64_t s_[4];
};

/// Zipf(s) sampler over ranks {0, 1, ..., n-1}: rank r is drawn with
/// probability proportional to 1/(r+1)^s. Uses the rejection-inversion
/// method of Hörmann & Derflinger, O(1) per sample after O(1) setup, so it
/// scales to multi-million-token vocabularies.
class ZipfSampler {
 public:
  /// \param n     number of distinct items (>= 1)
  /// \param s     skew exponent (>= 0; 0 = uniform)
  ZipfSampler(uint64_t n, double s);

  /// Draws one rank in [0, n).
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double t_;
};

/// Fisher-Yates shuffle of v using rng.
template <typename T>
void Shuffle(std::vector<T>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::size_t j = static_cast<std::size_t>(rng.NextBounded(i));
    std::swap(v[i - 1], v[j]);
  }
}

}  // namespace fsjoin

#endif  // FSJOIN_UTIL_RANDOM_H_
