#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace fsjoin {

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();  // Inline mode.
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  if (threads_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (threads_.empty() || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    Submit([&fn, i] { fn(i); });
  }
  Wait();
}

void ThreadPool::ParallelFor(size_t n, size_t chunk,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t step = chunk == 0 ? 1 : chunk;
  const size_t num_chunks = (n + step - 1) / step;
  if (threads_.empty() || num_chunks == 1) {
    for (size_t begin = 0; begin < n; begin += step) {
      fn(begin, std::min(n, begin + step));
    }
    return;
  }

  // Shared claim state, kept alive by the last task to touch it — a worker
  // that wakes up after the caller already returned only reads `next`.
  struct Shared {
    std::function<void(size_t, size_t)> fn;
    size_t n = 0;
    size_t step = 0;
    size_t num_chunks = 0;
    std::atomic<size_t> next{0};
    std::mutex mu;
    std::condition_variable cv;
    size_t done = 0;
  };
  auto shared = std::make_shared<Shared>();
  shared->fn = fn;
  shared->n = n;
  shared->step = step;
  shared->num_chunks = num_chunks;

  auto drain = [](const std::shared_ptr<Shared>& s) {
    size_t completed = 0;
    for (;;) {
      const size_t c = s->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= s->num_chunks) break;
      const size_t begin = c * s->step;
      s->fn(begin, std::min(s->n, begin + s->step));
      ++completed;
    }
    if (completed > 0) {
      std::lock_guard<std::mutex> lock(s->mu);
      s->done += completed;
      if (s->done == s->num_chunks) s->cv.notify_all();
    }
  };

  // The caller participates, so progress never depends on a free worker —
  // in particular a thread blocked here from *another* pool keeps working.
  const size_t helpers = std::min(threads_.size(), num_chunks - 1);
  for (size_t i = 0; i < helpers; ++i) {
    Submit([shared, drain] { drain(shared); });
  }
  drain(shared);
  std::unique_lock<std::mutex> lock(shared->mu);
  shared->cv.wait(lock, [&] { return shared->done == shared->num_chunks; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace fsjoin
