#include "util/thread_pool.h"

#include <utility>

namespace fsjoin {

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();  // Inline mode.
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  if (threads_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (threads_.empty() || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    Submit([&fn, i] { fn(i); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace fsjoin
