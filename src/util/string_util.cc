#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace fsjoin {

std::vector<std::string_view> SplitString(std::string_view s,
                                          std::string_view delims) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string WithThousandsSep(uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (size_t i = digits.size(); i > 0; --i) {
    out.push_back(digits[i - 1]);
    if (++count == 3 && i != 1) {
      out.push_back(',');
      count = 0;
    }
  }
  return std::string(out.rbegin(), out.rend());
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

}  // namespace fsjoin
