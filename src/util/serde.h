#ifndef FSJOIN_UTIL_SERDE_H_
#define FSJOIN_UTIL_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace fsjoin {

/// Binary encoding helpers for MapReduce keys and values. Records flowing
/// through the MR engine are opaque byte strings (as in Hadoop); these
/// helpers give typed views on top.
///
/// Two integer encodings are provided:
///  * Varint (LEB128)     — compact, for values.
///  * BigEndian32/64      — fixed width, order-preserving, for keys that must
///                          sort correctly under bytewise comparison.

/// Appends an unsigned LEB128 varint.
void PutVarint64(std::string* dst, uint64_t v);
void PutVarint32(std::string* dst, uint32_t v);

/// Appends a 32/64-bit integer in big-endian order (bytewise-sortable).
void PutFixed32BE(std::string* dst, uint32_t v);
void PutFixed64BE(std::string* dst, uint64_t v);

/// Appends a length-prefixed byte string.
void PutLengthPrefixed(std::string* dst, std::string_view value);

/// Appends a varint-length-prefixed vector of uint32 (each varint coded).
void PutUint32Vector(std::string* dst, const std::vector<uint32_t>& v);

/// Cursor-style decoder over a byte string. All Get* methods return an
/// error status on truncated or malformed input instead of crashing, so a
/// corrupted shuffle record surfaces as a job failure.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data), pos_(0) {}

  Status GetVarint64(uint64_t* v);
  Status GetVarint32(uint32_t* v);
  Status GetFixed32BE(uint32_t* v);
  Status GetFixed64BE(uint64_t* v);
  Status GetLengthPrefixed(std::string_view* value);
  Status GetUint32Vector(std::vector<uint32_t>* v);

  /// Bytes not yet consumed.
  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_;
};

}  // namespace fsjoin

#endif  // FSJOIN_UTIL_SERDE_H_
