#include "util/crc32c.h"

#include <cstddef>

namespace fsjoin {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli polynomial

// Slicing-by-8 lookup tables, built once on first use. Table 0 is the
// classic byte-at-a-time table; table j folds a byte that sits j positions
// ahead of the CRC register, letting the hot loop consume 8 bytes per
// iteration with eight independent table loads.
struct Crc32cTables {
  uint32_t t[8][256];

  Crc32cTables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (c >> 1) ^ kPoly : (c >> 1);
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = t[0][i];
      for (int j = 1; j < 8; ++j) {
        c = t[0][c & 0xFF] ^ (c >> 8);
        t[j][i] = c;
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

// Little-endian 32-bit load from possibly unaligned bytes; compiles to a
// single load on little-endian targets.
inline uint32_t LoadLe32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, std::string_view data) {
  const Crc32cTables& tab = Tables();
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  uint32_t c = crc ^ 0xFFFFFFFFu;
  while (n >= 8) {
    const uint32_t lo = c ^ LoadLe32(p);
    const uint32_t hi = LoadLe32(p + 4);
    c = tab.t[7][lo & 0xFF] ^ tab.t[6][(lo >> 8) & 0xFF] ^
        tab.t[5][(lo >> 16) & 0xFF] ^ tab.t[4][lo >> 24] ^
        tab.t[3][hi & 0xFF] ^ tab.t[2][(hi >> 8) & 0xFF] ^
        tab.t[1][(hi >> 16) & 0xFF] ^ tab.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = tab.t[0][(c ^ *p++) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32c(std::string_view data) { return Crc32cExtend(0, data); }

}  // namespace fsjoin
