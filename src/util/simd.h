#ifndef FSJOIN_UTIL_SIMD_H_
#define FSJOIN_UTIL_SIMD_H_

#include <string_view>

/// Portable SIMD selection for the hot overlap kernels (sim/set_ops).
///
/// Configure time: the CMake option FSJOIN_ENABLE_SIMD (default ON) gates
/// every vector code path; OFF defines FSJOIN_NO_SIMD and this header
/// reports kScalar unconditionally — the build the SSE2-only CI job
/// exercises. The AVX2 kernels are compiled with per-function target
/// attributes, so the *baseline* ISA of the build never changes: a binary
/// compiled for plain x86-64 still carries the AVX2 kernels and picks them
/// at run time only on machines that have the instructions.
///
/// Run time: DetectedSimdIsa() probes the CPU once (cpuid via
/// __builtin_cpu_supports on x86-64, compile-time __ARM_NEON on aarch64)
/// and callers dispatch on the cached result. Tests pin the answer with
/// ScopedSimdIsaOverride to cover the scalar fallback on any machine.

namespace fsjoin {

/// Vector instruction set the overlap kernels can target. kScalar is the
/// always-available reference; the other values only appear when the CPU
/// (and the build, see FSJOIN_ENABLE_SIMD) support them.
enum class SimdIsa {
  kScalar,
  kAvx2,  ///< x86-64, 8 x 32-bit lanes
  kNeon,  ///< aarch64, 4 x 32-bit lanes
};

const char* SimdIsaName(SimdIsa isa);

/// The best ISA available to this process (cached after the first call,
/// honoring any active override). Never higher than what the build allows.
SimdIsa DetectedSimdIsa();

/// True when DetectedSimdIsa() != kScalar.
bool SimdAvailable();

/// Test hook: forces DetectedSimdIsa() to report `isa` (clamped to what the
/// build supports — requesting kAvx2 on an aarch64 or FSJOIN_NO_SIMD build
/// yields kScalar) for the enclosing scope. Process-global, not thread
/// safe; tests only.
class ScopedSimdIsaOverride {
 public:
  explicit ScopedSimdIsaOverride(SimdIsa isa);
  ~ScopedSimdIsaOverride();
  ScopedSimdIsaOverride(const ScopedSimdIsaOverride&) = delete;
  ScopedSimdIsaOverride& operator=(const ScopedSimdIsaOverride&) = delete;

 private:
  SimdIsa previous_;
};

}  // namespace fsjoin

#endif  // FSJOIN_UTIL_SIMD_H_
