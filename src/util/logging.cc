#include "util/logging.h"

#include <atomic>
#include <mutex>

namespace fsjoin {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::mutex& LogMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)) {
  if (enabled_ && level_ >= LogLevel::kWarning) {
    stream_ << "[" << LevelName(level_) << " " << file << ":" << line << "] ";
  } else if (enabled_) {
    stream_ << "[" << LevelName(level_) << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace fsjoin
