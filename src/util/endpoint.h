#ifndef FSJOIN_UTIL_ENDPOINT_H_
#define FSJOIN_UTIL_ENDPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace fsjoin {

/// A network address in "host:port" form, the currency of the cluster
/// runtime (net/): worker lists on the command line, shuffle-source
/// locations inside TaskSpecs, listen/connect arguments of fsjoin_worker.
/// Lives in util (not net) so config validation in mr/ and exec/ can parse
/// endpoint lists without depending on the socket layer.
struct Endpoint {
  std::string host;
  uint16_t port = 0;

  std::string ToString() const { return host + ":" + std::to_string(port); }

  bool operator==(const Endpoint& other) const {
    return host == other.host && port == other.port;
  }
};

/// Parses one "host:port". Rejects an empty host, a missing/empty/
/// non-numeric port, and ports outside [1, 65535], each with a message
/// naming the offending input. IPv6 literals use brackets: "[::1]:9000".
Result<Endpoint> ParseEndpoint(std::string_view text);

/// Parses a comma-separated endpoint list ("hostA:9000,hostB:9000").
/// Beyond per-endpoint validation, rejects an empty list, empty elements
/// (stray commas) and duplicate endpoints — a duplicated worker address is
/// always a typo, and dispatching to it twice would double-count its slots.
Result<std::vector<Endpoint>> ParseEndpointList(std::string_view text);

}  // namespace fsjoin

#endif  // FSJOIN_UTIL_ENDPOINT_H_
