#ifndef FSJOIN_UTIL_TABLE_PRINTER_H_
#define FSJOIN_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace fsjoin {

/// Renders aligned ASCII tables for the benchmark harness so that every
/// reproduced paper table/figure prints in a uniform, diff-friendly format.
///
///   TablePrinter t({"theta", "FS-Join (s)", "PPJoin (s)"});
///   t.AddRow({"0.80", "1.23", "9.87"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Writes the table with a rule under the header.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fsjoin

#endif  // FSJOIN_UTIL_TABLE_PRINTER_H_
