#ifndef FSJOIN_UTIL_CRC32C_H_
#define FSJOIN_UTIL_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace fsjoin {

/// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78) of `data`.
/// This is the checksum used by iSCSI, ext4 and the LevelDB/RocksDB file
/// formats; spill run files (store/run_file.h) frame every block with it.
/// Test vector: Crc32c("123456789") == 0xE3069283.
uint32_t Crc32c(std::string_view data);

/// Extends a previously computed CRC with more bytes, so a checksum can be
/// accumulated across non-contiguous buffers:
///   Crc32cExtend(Crc32c(a), b) == Crc32c(a + b).
uint32_t Crc32cExtend(uint32_t crc, std::string_view data);

}  // namespace fsjoin

#endif  // FSJOIN_UTIL_CRC32C_H_
