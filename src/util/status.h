#ifndef FSJOIN_UTIL_STATUS_H_
#define FSJOIN_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace fsjoin {

/// Error categories used across the library. Mirrors the Arrow/RocksDB
/// convention of status-code based error handling: no exceptions cross the
/// public API boundary.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kIoError = 7,
  kUnimplemented = 8,
  kResourceExhausted = 9,
  kCorruption = 10,
};

/// Returns a stable, human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error result carrying a code and a message.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error holder, analogous to arrow::Result.
///
/// Usage:
///   Result<Corpus> r = LoadCorpus(path);
///   if (!r.ok()) return r.status();
///   Corpus c = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (error).
  Result(Status status) : repr_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the error status, or OK if this holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Requires ok(). Accessors for the stored value.
  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::move(std::get<T>(repr_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> repr_;
};

/// Propagates a non-OK status from an expression to the caller.
#define FSJOIN_RETURN_NOT_OK(expr)                  \
  do {                                              \
    ::fsjoin::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (false)

/// Assigns the value of a Result<T> expression to `lhs`, or returns its
/// error status. `lhs` may include a declaration: FSJOIN_ASSIGN_OR_RETURN(
/// auto x, MakeX());
#define FSJOIN_ASSIGN_OR_RETURN(lhs, rexpr)         \
  FSJOIN_ASSIGN_OR_RETURN_IMPL(                     \
      FSJOIN_STATUS_CONCAT(_result_, __LINE__), lhs, rexpr)

#define FSJOIN_STATUS_CONCAT_INNER(a, b) a##b
#define FSJOIN_STATUS_CONCAT(a, b) FSJOIN_STATUS_CONCAT_INNER(a, b)
#define FSJOIN_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                                 \
  if (!result.ok()) return result.status();              \
  lhs = std::move(result).value();

}  // namespace fsjoin

#endif  // FSJOIN_UTIL_STATUS_H_
