#ifndef FSJOIN_UTIL_THREAD_POOL_H_
#define FSJOIN_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fsjoin {

/// Fixed-size worker pool used by the MR engine to run map/reduce tasks
/// concurrently. Tasks are plain std::function<void()>; exceptions must not
/// escape a task (the library is Status-based).
class ThreadPool {
 public:
  /// Creates num_threads workers. num_threads == 0 means "run inline on the
  /// calling thread" (useful for deterministic debugging).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Safe from any thread.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Chunked, work-stealing variant: runs fn(begin, end) over chunks of
  /// `chunk` consecutive indices (the last chunk may be short). Chunks are
  /// claimed dynamically from a shared counter by up to num_threads() pool
  /// workers *and* the calling thread, so a slow chunk never idles the
  /// rest — and concurrent ParallelFor calls from different threads steal
  /// from one shared pool. With num_threads() == 0 the chunks run inline on
  /// the caller, in ascending order (deterministic-debug mode). `chunk`
  /// of 0 is treated as 1. Safe to call concurrently from many threads;
  /// must not be called from inside a task running on this same pool.
  void ParallelFor(size_t n, size_t chunk,
                   const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace fsjoin

#endif  // FSJOIN_UTIL_THREAD_POOL_H_
