#ifndef FSJOIN_UTIL_THREAD_POOL_H_
#define FSJOIN_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fsjoin {

/// Fixed-size worker pool used by the MR engine to run map/reduce tasks
/// concurrently. Tasks are plain std::function<void()>; exceptions must not
/// escape a task (the library is Status-based).
class ThreadPool {
 public:
  /// Creates num_threads workers. num_threads == 0 means "run inline on the
  /// calling thread" (useful for deterministic debugging).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Safe from any thread.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace fsjoin

#endif  // FSJOIN_UTIL_THREAD_POOL_H_
