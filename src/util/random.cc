#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace fsjoin {

namespace {

// SplitMix64, used to expand the seed into xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (int i = 0; i < 4; ++i) s_[i] = SplitMix64(x);
  // Avoid the all-zero state (possible only for adversarial seeds).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  FSJOIN_CHECK(bound > 0);
  // Lemire's nearly-divisionless bounded sampling with rejection.
  uint64_t threshold = (-bound) % bound;
  for (;;) {
    uint64_t r = Next();
    __uint128_t m = static_cast<__uint128_t>(r) * bound;
    if (static_cast<uint64_t>(m) >= threshold) {
      return static_cast<uint64_t>(m >> 64);
    }
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  FSJOIN_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextGaussian(double mean, double stddev) {
  // Irwin-Hall approximation: sum of 12 uniforms has mean 6, variance 1.
  double sum = 0;
  for (int i = 0; i < 12; ++i) sum += NextDouble();
  return mean + (sum - 6.0) * stddev;
}

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s) {
  FSJOIN_CHECK(n >= 1);
  FSJOIN_CHECK(s >= 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  t_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s_));
}

// H(x) = integral of 1/u^s du; closed form differs at s == 1.
double ZipfSampler::H(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfSampler::HInverse(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  if (n_ == 1) return 0;
  if (s_ == 0.0) return rng.NextBounded(n_);
  for (;;) {
    double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    double kd = static_cast<double>(k);
    if (kd - x <= t_ || u >= H(kd + 0.5) - std::pow(kd, -s_)) {
      return k - 1;  // 0-based rank
    }
  }
}

}  // namespace fsjoin
