#include "util/endpoint.h"

#include <set>

namespace fsjoin {

namespace {

Status BadEndpoint(std::string_view text, const std::string& why) {
  return Status::InvalidArgument("bad endpoint '" + std::string(text) +
                                 "': " + why + " (want host:port)");
}

}  // namespace

Result<Endpoint> ParseEndpoint(std::string_view text) {
  // IPv6 literal: "[addr]:port" — the colon split must skip the brackets.
  size_t colon;
  Endpoint ep;
  if (!text.empty() && text.front() == '[') {
    const size_t close = text.find(']');
    if (close == std::string_view::npos) {
      return BadEndpoint(text, "unterminated '[' in host");
    }
    ep.host = std::string(text.substr(1, close - 1));
    if (close + 1 >= text.size() || text[close + 1] != ':') {
      return BadEndpoint(text, "missing ':port' after ']'");
    }
    colon = close + 1;
  } else {
    colon = text.rfind(':');
    if (colon == std::string_view::npos) {
      return BadEndpoint(text, "missing ':port'");
    }
    ep.host = std::string(text.substr(0, colon));
  }
  if (ep.host.empty()) {
    return BadEndpoint(text, "empty host");
  }
  const std::string_view port_str = text.substr(colon + 1);
  if (port_str.empty()) {
    return BadEndpoint(text, "empty port");
  }
  uint64_t port = 0;
  for (char c : port_str) {
    if (c < '0' || c > '9') {
      return BadEndpoint(text, "non-numeric port '" + std::string(port_str) +
                                   "'");
    }
    port = port * 10 + static_cast<uint64_t>(c - '0');
    if (port > 65535) {
      return BadEndpoint(text, "port " + std::string(port_str) +
                                   " out of range [1, 65535]");
    }
  }
  if (port == 0) {
    return BadEndpoint(text, "port 0 is not dialable");
  }
  ep.port = static_cast<uint16_t>(port);
  return ep;
}

Result<std::vector<Endpoint>> ParseEndpointList(std::string_view text) {
  std::vector<Endpoint> endpoints;
  std::set<std::string> seen;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    const std::string_view element = text.substr(pos, comma - pos);
    if (element.empty()) {
      return Status::InvalidArgument(
          "bad endpoint list '" + std::string(text) +
          "': empty element (stray comma or empty list)");
    }
    FSJOIN_ASSIGN_OR_RETURN(Endpoint ep, ParseEndpoint(element));
    if (!seen.insert(ep.ToString()).second) {
      return Status::InvalidArgument("bad endpoint list '" +
                                     std::string(text) +
                                     "': duplicate endpoint " + ep.ToString());
    }
    endpoints.push_back(std::move(ep));
    pos = comma + 1;
  }
  return endpoints;
}

}  // namespace fsjoin
