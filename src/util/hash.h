#ifndef FSJOIN_UTIL_HASH_H_
#define FSJOIN_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>

namespace fsjoin {

/// 64-bit FNV-1a over arbitrary bytes. Used for shuffle partitioning, where
/// a stable cross-run hash matters (std::hash is implementation-defined).
inline uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Stable finalizer-style mix of a 64-bit value (splitmix64 finalizer).
inline uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines two hashes (boost::hash_combine-style, 64-bit).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

/// Hash functor for pairs of 32-bit record ids, for unordered containers
/// keyed by candidate pairs.
struct RidPairHash {
  size_t operator()(const std::pair<uint32_t, uint32_t>& p) const {
    return static_cast<size_t>(
        Mix64((static_cast<uint64_t>(p.first) << 32) | p.second));
  }
};

}  // namespace fsjoin

#endif  // FSJOIN_UTIL_HASH_H_
