#include "util/serde.h"

namespace fsjoin {

void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

void PutVarint32(std::string* dst, uint32_t v) {
  PutVarint64(dst, v);
}

void PutFixed32BE(std::string* dst, uint32_t v) {
  dst->push_back(static_cast<char>((v >> 24) & 0xff));
  dst->push_back(static_cast<char>((v >> 16) & 0xff));
  dst->push_back(static_cast<char>((v >> 8) & 0xff));
  dst->push_back(static_cast<char>(v & 0xff));
}

void PutFixed64BE(std::string* dst, uint64_t v) {
  PutFixed32BE(dst, static_cast<uint32_t>(v >> 32));
  PutFixed32BE(dst, static_cast<uint32_t>(v & 0xffffffffULL));
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

void PutUint32Vector(std::string* dst, const std::vector<uint32_t>& v) {
  PutVarint64(dst, v.size());
  for (uint32_t x : v) PutVarint32(dst, x);
}

Status Decoder::GetVarint64(uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (pos_ < data_.size()) {
    unsigned char byte = static_cast<unsigned char>(data_[pos_++]);
    if (shift >= 63 && byte > 1) {
      return Status::OutOfRange("varint64 overflow");
    }
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return Status::OK();
    }
    shift += 7;
  }
  return Status::OutOfRange("truncated varint64");
}

Status Decoder::GetVarint32(uint32_t* v) {
  uint64_t wide = 0;
  FSJOIN_RETURN_NOT_OK(GetVarint64(&wide));
  if (wide > 0xffffffffULL) return Status::OutOfRange("varint32 overflow");
  *v = static_cast<uint32_t>(wide);
  return Status::OK();
}

Status Decoder::GetFixed32BE(uint32_t* v) {
  if (remaining() < 4) return Status::OutOfRange("truncated fixed32");
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data_.data()) + pos_;
  *v = (static_cast<uint32_t>(p[0]) << 24) |
       (static_cast<uint32_t>(p[1]) << 16) |
       (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
  pos_ += 4;
  return Status::OK();
}

Status Decoder::GetFixed64BE(uint64_t* v) {
  uint32_t hi = 0, lo = 0;
  FSJOIN_RETURN_NOT_OK(GetFixed32BE(&hi));
  FSJOIN_RETURN_NOT_OK(GetFixed32BE(&lo));
  *v = (static_cast<uint64_t>(hi) << 32) | lo;
  return Status::OK();
}

Status Decoder::GetLengthPrefixed(std::string_view* value) {
  uint64_t len = 0;
  FSJOIN_RETURN_NOT_OK(GetVarint64(&len));
  if (len > remaining()) return Status::OutOfRange("truncated string");
  *value = data_.substr(pos_, len);
  pos_ += len;
  return Status::OK();
}

Status Decoder::GetUint32Vector(std::vector<uint32_t>* v) {
  uint64_t n = 0;
  FSJOIN_RETURN_NOT_OK(GetVarint64(&n));
  if (n > remaining()) {
    // Each element takes at least one byte, so n > remaining is malformed.
    return Status::OutOfRange("truncated uint32 vector");
  }
  v->clear();
  v->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t x = 0;
    FSJOIN_RETURN_NOT_OK(GetVarint32(&x));
    v->push_back(x);
  }
  return Status::OK();
}

}  // namespace fsjoin
