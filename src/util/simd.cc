#include "util/simd.h"

namespace fsjoin {

namespace {

SimdIsa ProbeCpu() {
#if !defined(FSJOIN_NO_SIMD) && defined(__x86_64__)
  if (__builtin_cpu_supports("avx2")) return SimdIsa::kAvx2;
  return SimdIsa::kScalar;
#elif !defined(FSJOIN_NO_SIMD) && defined(__ARM_NEON)
  // NEON is architectural on aarch64; no runtime probe needed.
  return SimdIsa::kNeon;
#else
  return SimdIsa::kScalar;
#endif
}

/// Cached answer; ScopedSimdIsaOverride rewrites it for tests.
SimdIsa g_detected = [] { return ProbeCpu(); }();

SimdIsa Clamp(SimdIsa isa) {
  // An override may only select what this build + machine actually have;
  // anything else degrades to the scalar reference.
  return ProbeCpu() == isa ? isa : SimdIsa::kScalar;
}

}  // namespace

const char* SimdIsaName(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return "scalar";
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kNeon:
      return "neon";
  }
  return "?";
}

SimdIsa DetectedSimdIsa() { return g_detected; }

bool SimdAvailable() { return DetectedSimdIsa() != SimdIsa::kScalar; }

ScopedSimdIsaOverride::ScopedSimdIsaOverride(SimdIsa isa)
    : previous_(g_detected) {
  g_detected = Clamp(isa);
}

ScopedSimdIsaOverride::~ScopedSimdIsaOverride() { g_detected = previous_; }

}  // namespace fsjoin
