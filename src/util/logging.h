#ifndef FSJOIN_UTIL_LOGGING_H_
#define FSJOIN_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "util/status.h"

namespace fsjoin {

/// Severity for the lightweight logger. kFatal aborts the process after
/// printing (used by FSJOIN_CHECK for invariant violations — programmer
/// errors, not recoverable conditions, which use Status).
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global minimum level; messages below it are discarded. Default kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and flushes it (with level prefix) on
/// destruction. Aborts for kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows a log statement whose level is compiled out.
class NullLog {
 public:
  template <typename T>
  NullLog& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define FSJOIN_LOG(level)                                             \
  ::fsjoin::internal::LogMessage(::fsjoin::LogLevel::k##level, __FILE__, \
                                 __LINE__)

/// Fatal-on-false invariant check, always on (cheap relative to the joins).
#define FSJOIN_CHECK(cond)                                       \
  if (!(cond))                                                   \
  FSJOIN_LOG(Fatal) << "Check failed: " #cond " "

#define FSJOIN_CHECK_OK(expr)                                    \
  do {                                                           \
    ::fsjoin::Status _st = (expr);                               \
    if (!_st.ok())                                               \
      FSJOIN_LOG(Fatal) << "Status not OK: " << _st.ToString();  \
  } while (false)

#define FSJOIN_DCHECK(cond) FSJOIN_CHECK(cond)

}  // namespace fsjoin

#endif  // FSJOIN_UTIL_LOGGING_H_
