#ifndef FSJOIN_BASELINES_MASSJOIN_H_
#define FSJOIN_BASELINES_MASSJOIN_H_

#include "baselines/baseline.h"
#include "util/status.h"

namespace fsjoin {

/// MassJoin (Deng et al., ICDE 2014) — competitor [4], adapted to set
/// similarity as described in the FS-Join paper's related work: every
/// record generates *per-candidate-partner-length* signatures, which is the
/// source of its enormous intermediate data ("for each integer from 80 to
/// 125, string t will generate signatures separately").
///
/// Pipeline (4 jobs, matching the paper's description):
///   1. ordering job — token frequencies.
///   2. signature job — map: each record emits (a) index signatures: its
///      conservative prefix tokens, and (b) probe signatures: for every
///      candidate partner length l in [lb(|t|), |t|] (grouped into buckets
///      of `length_group` for Merge+Light), the exact-length prefix tokens;
///      reduce: per-token groups match probes to index entries with a
///      matching length, emitting candidate rid pairs.
///   3. merge job — dedups candidates per left rid and attaches the left
///      record's content ("outputs the same string multiple times with the
///      items" — the paper's critique).
///   4. verify job — attaches the right record's content, computes the
///      exact overlap and applies the threshold.
struct MassJoinConfig : public BaselineConfig {
  /// Partner-length bucket width: 1 reproduces the Merge variant, larger
  /// values the Merge+Light token/length-grouping optimization.
  uint32_t length_group = 1;
};

Result<BaselineOutput> RunMassJoin(const Corpus& corpus,
                                   const MassJoinConfig& config);

}  // namespace fsjoin

#endif  // FSJOIN_BASELINES_MASSJOIN_H_
