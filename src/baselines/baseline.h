#ifndef FSJOIN_BASELINES_BASELINE_H_
#define FSJOIN_BASELINES_BASELINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mr/metrics.h"
#include "sim/join_result.h"
#include "sim/similarity.h"
#include "text/corpus.h"
#include "util/status.h"

namespace fsjoin {

/// Shared parameters of the competitor algorithms (§VI "Alternative
/// Techniques"): RIDPairsPPJoin (Vernica et al.), V-Smart-Join
/// (Online-Aggregation) and MassJoin (Merge / Merge+Light).
struct BaselineConfig {
  double theta = 0.8;
  SimilarityFunction function = SimilarityFunction::kJaccard;
  uint32_t num_map_tasks = 8;
  uint32_t num_reduce_tasks = 8;
  size_t num_threads = 0;

  /// Abort with ResourceExhausted once a single job emits more than this
  /// many intermediate records (0 = unlimited). Models the paper's
  /// observation that MassJoin and V-Smart-Join "cannot run successfully"
  /// on the large datasets: their intermediate data outgrows the cluster.
  uint64_t emission_limit = 0;

  Status Validate() const;
};

/// Execution record of one baseline run; same role as FsJoinReport.
struct BaselineReport {
  std::string algorithm;
  std::vector<mr::JobMetrics> jobs;
  /// Index into `jobs` of the signature/kernel job whose map output holds
  /// the duplicated records (0 for V-Smart, 1 for the ordering-first
  /// algorithms).
  size_t signature_job = 0;
  uint64_t candidate_pairs = 0;
  uint64_t result_pairs = 0;
  double total_wall_ms = 0.0;

  /// Map-output records of the signature job divided by input records —
  /// the duplication the paper's Table I compares.
  double DuplicationFactor(uint64_t input_records) const;

  std::string Summary() const;
};

struct BaselineOutput {
  JoinResultSet pairs;
  BaselineReport report;
};

/// Budget shared across a baseline's mappers/reducers to enforce
/// BaselineConfig::emission_limit.
class EmissionBudget {
 public:
  explicit EmissionBudget(uint64_t limit) : limit_(limit) {}

  /// Consumes n emissions; ResourceExhausted when the budget is exceeded.
  Status Consume(uint64_t n) {
    if (limit_ == 0) return Status::OK();
    if (used_.fetch_add(n, std::memory_order_relaxed) + n > limit_) {
      return Status::ResourceExhausted(
          "intermediate record budget exceeded (" + std::to_string(limit_) +
          ")");
    }
    return Status::OK();
  }

  uint64_t used() const { return used_.load(std::memory_order_relaxed); }

 private:
  uint64_t limit_;
  std::atomic<uint64_t> used_{0};
};

}  // namespace fsjoin

#endif  // FSJOIN_BASELINES_BASELINE_H_
