#ifndef FSJOIN_BASELINES_BASELINE_H_
#define FSJOIN_BASELINES_BASELINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/exec_config.h"
#include "mr/metrics.h"
#include "sim/join_result.h"
#include "sim/similarity.h"
#include "text/corpus.h"
#include "util/status.h"

namespace fsjoin {

/// Shared parameters of the competitor algorithms (§VI "Alternative
/// Techniques"): RIDPairsPPJoin (Vernica et al.), V-Smart-Join
/// (Online-Aggregation) and MassJoin (Merge / Merge+Light).
struct BaselineConfig {
  double theta = 0.8;
  SimilarityFunction function = SimilarityFunction::kJaccard;

  /// Execution substrate and engine shape (backend, task counts, threads,
  /// emission limit) — shared with FS-Join via exec::ExecConfig.
  exec::ExecConfig exec;

  /// Two-collection R-S joins over a merged corpus (same contract as
  /// FsJoinConfig::rs_boundary): records with id < rs_boundary are R, the
  /// rest are S, and only pairs straddling the boundary are produced. Each
  /// baseline enforces this structurally in its candidate stage — same-side
  /// pairs are never enumerated, not enumerated-then-filtered.
  std::optional<RecordId> rs_boundary;

  Status Validate() const;
};

/// Execution record of one baseline run; same role as FsJoinReport.
struct BaselineReport {
  std::string algorithm;
  exec::BackendKind backend = exec::BackendKind::kMapReduce;
  std::vector<mr::JobMetrics> jobs;
  /// Name of the signature/kernel stage whose map output holds the
  /// duplicated records ("vernica-kernel", "vsmart-join",
  /// "massjoin-signatures").
  std::string signature_stage;
  uint64_t candidate_pairs = 0;
  uint64_t result_pairs = 0;
  double total_wall_ms = 0.0;

  /// Metrics of the signature stage, looked up by name in `jobs`;
  /// nullptr when the stage is absent (e.g. the run aborted early).
  const mr::JobMetrics* SignatureJob() const;

  /// Map-output records of the signature job divided by input records —
  /// the duplication the paper's Table I compares.
  double DuplicationFactor(uint64_t input_records) const;

  std::string Summary() const;
};

struct BaselineOutput {
  JoinResultSet pairs;
  BaselineReport report;
};

/// Budget shared across a baseline's mappers/reducers to enforce
/// BaselineConfig::emission_limit.
class EmissionBudget {
 public:
  explicit EmissionBudget(uint64_t limit) : limit_(limit) {}

  /// Consumes n emissions; ResourceExhausted when the budget is exceeded.
  Status Consume(uint64_t n) {
    if (limit_ == 0) return Status::OK();
    if (used_.fetch_add(n, std::memory_order_relaxed) + n > limit_) {
      return Status::ResourceExhausted(
          "intermediate record budget exceeded (" + std::to_string(limit_) +
          ")");
    }
    return Status::OK();
  }

  uint64_t used() const { return used_.load(std::memory_order_relaxed); }

 private:
  uint64_t limit_;
  std::atomic<uint64_t> used_{0};
};

}  // namespace fsjoin

#endif  // FSJOIN_BASELINES_BASELINE_H_
