#include "baselines/massjoin.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <optional>
#include <unordered_set>

#include "core/jobs.h"
#include "exec/backend.h"
#include "exec/plan.h"
#include "sim/global_order.h"
#include "sim/set_ops.h"
#include "util/hash.h"
#include "util/serde.h"
#include "util/timer.h"

namespace fsjoin {

namespace {

// Value tags used across the MassJoin jobs.
constexpr char kTagIndex = 'I';    // signature job: index entry
constexpr char kTagProbe = 'P';    // signature job: probe entry
constexpr char kTagCandidate = 'C';  // candidate rid pair
constexpr char kTagRecord = 'R';   // ranked record content
constexpr char kTagPartial = 'Q';  // candidate with left content attached

struct MassJoinContext {
  MassJoinConfig config;
  std::shared_ptr<const GlobalOrder> order;
  std::shared_ptr<EmissionBudget> budget;
};

// ---- Job 2: signatures -> candidate pairs -------------------------------

class SignatureMapper : public mr::Mapper {
 public:
  explicit SignatureMapper(std::shared_ptr<MassJoinContext> ctx)
      : ctx_(std::move(ctx)) {}

  Status Map(const mr::KeyValue& record, mr::Emitter* out) override {
    RecordId rid = 0;
    std::vector<TokenId> tokens;
    FSJOIN_RETURN_NOT_OK(DecodeCorpusRecord(record, &rid, &tokens));
    std::vector<TokenRank> ranks;
    ranks.reserve(tokens.size());
    for (TokenId t : tokens) ranks.push_back(ctx_->order->RankOf(t));
    std::sort(ranks.begin(), ranks.end());
    const uint64_t len = ranks.size();
    const SimilarityFunction fn = ctx_->config.function;
    const double theta = ctx_->config.theta;
    // R-S: R records probe, S records index — one-directional, so probe
    // buckets must cover the *whole* partner-length window (in the self
    // join lengths above |t| are covered by the longer partner probing
    // back; here S never probes).
    const std::optional<RecordId> rs = ctx_->config.rs_boundary;
    const bool emits_index = !rs.has_value() || rid >= *rs;
    const bool emits_probes = !rs.has_value() || rid < *rs;

    if (emits_index) {
      // Index signatures: conservative prefix (valid for any partner).
      const uint64_t index_prefix = PrefixLength(fn, theta, len);
      FSJOIN_RETURN_NOT_OK(ctx_->budget->Consume(index_prefix));
      std::string value;
      value.push_back(kTagIndex);
      PutVarint32(&value, rid);
      PutVarint64(&value, len);
      for (uint64_t p = 0; p < index_prefix; ++p) {
        std::string key;
        PutFixed32BE(&key, ranks[p]);
        out->Emit(std::move(key), value);
      }
    }
    if (!emits_probes) return Status::OK();

    // Probe signatures: one batch per candidate partner-length bucket.
    const uint64_t lmin = PartnerSizeLowerBound(fn, theta, len);
    const uint64_t lmax =
        rs.has_value() ? PartnerSizeUpperBound(fn, theta, len) : len;
    const uint64_t group = std::max<uint32_t>(ctx_->config.length_group, 1);
    for (uint64_t lo = std::max<uint64_t>(lmin, 1); lo <= lmax;
         lo += group) {
      const uint64_t hi = std::min<uint64_t>(lmax, lo + group - 1);
      // Prefix valid for every partner length in [lo, hi]: the smallest
      // length needs the longest prefix.
      const uint64_t alpha = MinOverlap(fn, theta, lo, len);
      const uint64_t probe_prefix =
          alpha > len ? 0 : std::min<uint64_t>(len, len - alpha + 1);
      FSJOIN_RETURN_NOT_OK(ctx_->budget->Consume(probe_prefix));
      std::string value;
      value.push_back(kTagProbe);
      PutVarint32(&value, rid);
      PutVarint64(&value, len);
      PutVarint64(&value, lo);
      PutVarint64(&value, hi);
      for (uint64_t p = 0; p < probe_prefix; ++p) {
        std::string key;
        PutFixed32BE(&key, ranks[p]);
        out->Emit(std::move(key), value);
      }
    }
    return Status::OK();
  }

 private:
  std::shared_ptr<MassJoinContext> ctx_;
};

class CandidateReducer : public mr::Reducer {
 public:
  explicit CandidateReducer(std::shared_ptr<MassJoinContext> ctx)
      : ctx_(std::move(ctx)) {}

  Status Reduce(std::string_view key, mr::ValueList values,
                mr::Emitter* out) override {
    (void)key;
    struct IndexEntry {
      RecordId rid;
      uint64_t len;
    };
    struct ProbeEntry {
      RecordId rid;
      uint64_t len, lo, hi;
    };
    std::vector<IndexEntry> index;
    std::vector<ProbeEntry> probes;
    for (std::string_view v : values) {
      if (v.empty()) return Status::Internal("empty massjoin signature");
      Decoder dec(v.substr(1));
      if (v[0] == kTagIndex) {
        IndexEntry e{};
        FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&e.rid));
        FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&e.len));
        index.push_back(e);
      } else if (v[0] == kTagProbe) {
        ProbeEntry e{};
        FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&e.rid));
        FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&e.len));
        FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&e.lo));
        FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&e.hi));
        probes.push_back(e);
      } else {
        return Status::Internal("unknown massjoin signature tag");
      }
    }
    std::unordered_set<std::pair<uint32_t, uint32_t>, RidPairHash> seen;
    for (const ProbeEntry& p : probes) {
      for (const IndexEntry& s : index) {
        if (s.rid == p.rid) continue;
        if (s.len < p.lo || s.len > p.hi) continue;
        const uint32_t a = std::min(s.rid, p.rid);
        const uint32_t b = std::max(s.rid, p.rid);
        if (!seen.insert({a, b}).second) continue;
        FSJOIN_RETURN_NOT_OK(ctx_->budget->Consume(1));
        std::string out_key;
        PutFixed32BE(&out_key, a);
        PutFixed32BE(&out_key, b);
        out->Emit(std::move(out_key), std::string(1, kTagCandidate));
      }
    }
    return Status::OK();
  }

 private:
  std::shared_ptr<MassJoinContext> ctx_;
};

// ---- Job 3: dedup + attach left record content --------------------------

class MergeMapper : public mr::Mapper {
 public:
  Status Map(const mr::KeyValue& record, mr::Emitter* out) override {
    if (record.value.empty()) return Status::Internal("empty massjoin value");
    if (record.value[0] == kTagCandidate) {
      Decoder dec(record.key);
      uint32_t a = 0, b = 0;
      FSJOIN_RETURN_NOT_OK(dec.GetFixed32BE(&a));
      FSJOIN_RETURN_NOT_OK(dec.GetFixed32BE(&b));
      std::string key, value;
      PutFixed32BE(&key, a);
      value.push_back(kTagCandidate);
      PutVarint32(&value, b);
      out->Emit(std::move(key), std::move(value));
    } else {
      out->Emit(record.key, record.value);  // ranked record, pass through
    }
    return Status::OK();
  }
};

class MergeReducer : public mr::Reducer {
 public:
  explicit MergeReducer(std::shared_ptr<MassJoinContext> ctx)
      : ctx_(std::move(ctx)) {}

  Status Reduce(std::string_view key, mr::ValueList values,
                mr::Emitter* out) override {
    Decoder key_dec(key);
    uint32_t a = 0;
    FSJOIN_RETURN_NOT_OK(key_dec.GetFixed32BE(&a));
    std::vector<TokenRank> content;
    bool have_content = false;
    std::unordered_set<uint32_t> partners;
    for (std::string_view v : values) {
      if (v.empty()) return Status::Internal("empty massjoin merge value");
      Decoder dec(v.substr(1));
      if (v[0] == kTagRecord) {
        FSJOIN_RETURN_NOT_OK(dec.GetUint32Vector(&content));
        have_content = true;
      } else if (v[0] == kTagCandidate) {
        uint32_t b = 0;
        FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&b));
        partners.insert(b);
      } else {
        return Status::Internal("unknown massjoin merge tag");
      }
    }
    if (!have_content) {
      return Status::Internal("massjoin merge: record content missing");
    }
    if (partners.empty()) return Status::OK();
    FSJOIN_RETURN_NOT_OK(ctx_->budget->Consume(partners.size()));
    // "Outputs the same string multiple times with the items": the left
    // record's full content is duplicated once per candidate partner.
    for (uint32_t b : partners) {
      std::string out_key, out_value;
      PutFixed32BE(&out_key, b);
      out_value.push_back(kTagPartial);
      PutVarint32(&out_value, a);
      PutUint32Vector(&out_value, content);
      out->Emit(std::move(out_key), std::move(out_value));
    }
    return Status::OK();
  }

 private:
  std::shared_ptr<MassJoinContext> ctx_;
};

// ---- Job 4: attach right record content + verify -------------------------

class VerifyReducer : public mr::Reducer {
 public:
  explicit VerifyReducer(std::shared_ptr<MassJoinContext> ctx)
      : ctx_(std::move(ctx)) {}

  Status Reduce(std::string_view key, mr::ValueList values,
                mr::Emitter* out) override {
    Decoder key_dec(key);
    uint32_t b = 0;
    FSJOIN_RETURN_NOT_OK(key_dec.GetFixed32BE(&b));
    std::vector<TokenRank> content;
    bool have_content = false;
    struct Partial {
      uint32_t a;
      std::vector<TokenRank> tokens;
    };
    std::vector<Partial> partials;
    for (std::string_view v : values) {
      if (v.empty()) return Status::Internal("empty massjoin verify value");
      Decoder dec(v.substr(1));
      if (v[0] == kTagRecord) {
        FSJOIN_RETURN_NOT_OK(dec.GetUint32Vector(&content));
        have_content = true;
      } else if (v[0] == kTagPartial) {
        Partial p;
        FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&p.a));
        FSJOIN_RETURN_NOT_OK(dec.GetUint32Vector(&p.tokens));
        partials.push_back(std::move(p));
      } else {
        return Status::Internal("unknown massjoin verify tag");
      }
    }
    if (partials.empty()) return Status::OK();
    if (!have_content) {
      return Status::Internal("massjoin verify: record content missing");
    }
    const SimilarityFunction fn = ctx_->config.function;
    const double theta = ctx_->config.theta;
    for (const Partial& p : partials) {
      const uint64_t required =
          MinOverlap(fn, theta, p.tokens.size(), content.size());
      const uint64_t c = SortedOverlapAtLeast(p.tokens, content, required);
      if (c == 0) continue;
      if (!PassesThreshold(fn, c, p.tokens.size(), content.size(), theta)) {
        continue;
      }
      std::string out_key, out_value;
      PutFixed32BE(&out_key, std::min(p.a, b));
      PutFixed32BE(&out_key, std::max(p.a, b));
      double sim = ComputeSimilarity(fn, c, p.tokens.size(), content.size());
      uint64_t bits = 0;
      std::memcpy(&bits, &sim, sizeof(bits));
      PutFixed64BE(&out_value, bits);
      out->Emit(std::move(out_key), std::move(out_value));
    }
    return Status::OK();
  }

 private:
  std::shared_ptr<MassJoinContext> ctx_;
};

mr::Dataset MakeRankedDataset(const Corpus& corpus, const GlobalOrder& order) {
  mr::Dataset dataset;
  dataset.reserve(corpus.records.size());
  for (const Record& rec : corpus.records) {
    std::vector<TokenRank> ranks;
    ranks.reserve(rec.tokens.size());
    for (TokenId t : rec.tokens) ranks.push_back(order.RankOf(t));
    std::sort(ranks.begin(), ranks.end());
    mr::KeyValue kv;
    PutFixed32BE(&kv.key, rec.id);
    kv.value.push_back(kTagRecord);
    PutUint32Vector(&kv.value, ranks);
    dataset.push_back(std::move(kv));
  }
  return dataset;
}

}  // namespace

Result<BaselineOutput> RunMassJoin(const Corpus& corpus,
                                   const MassJoinConfig& config) {
  FSJOIN_RETURN_NOT_OK(config.Validate());
  WallTimer timer;

  std::unique_ptr<exec::ExecutionBackend> backend =
      exec::MakeBackend(config.exec);
  mr::Dataset input = MakeCorpusDataset(corpus);

  // Plan 1: ordering.
  mr::JobConfig ordering_cfg = MakeOrderingJobConfig(
      config.exec.num_map_tasks, config.exec.num_reduce_tasks);
  exec::Plan ordering_plan("massjoin-ordering");
  exec::StageHints ordering_hints;
  ordering_hints.task_factory = ordering_cfg.task_factory;
  ordering_hints.task_payload = ordering_cfg.task_payload;
  ordering_plan
      .FlatMap("tokenize", ordering_cfg.mapper_factory)
      .GroupByKey("ordering", ordering_cfg.reducer_factory,
                  ordering_cfg.partitioner, ordering_cfg.combiner_factory,
                  std::move(ordering_hints));
  FSJOIN_ASSIGN_OR_RETURN(mr::Dataset freq,
                          backend->Execute(ordering_plan, input));
  FSJOIN_ASSIGN_OR_RETURN(
      GlobalOrder order,
      BuildGlobalOrderFromJobOutput(freq, corpus.dictionary.size()));

  auto ctx = std::make_shared<MassJoinContext>();
  ctx->config = config;
  ctx->order = std::make_shared<const GlobalOrder>(std::move(order));
  ctx->budget = std::make_shared<EmissionBudget>(config.exec.emission_limit);

  // Plan 2: signatures -> candidates, then dedup + attach left content,
  // then attach right content + verify. The merge and verify stages read
  // the candidate stream side by side with the ranked record content,
  // expressed as unions with a driver-materialized side dataset.
  auto ranked = std::make_shared<const mr::Dataset>(
      MakeRankedDataset(corpus, *ctx->order));

  exec::Plan plan("massjoin");
  plan.FlatMap("signatures",
               [ctx] { return std::make_unique<SignatureMapper>(ctx); })
      .GroupByKey("massjoin-signatures",
                  [ctx] { return std::make_unique<CandidateReducer>(ctx); })
      .UnionWith("ranked-records", ranked)
      .FlatMap("merge-split", [] { return std::make_unique<MergeMapper>(); })
      .GroupByKey("massjoin-merge",
                  [ctx] { return std::make_unique<MergeReducer>(ctx); })
      .UnionWith("ranked-records", ranked)
      .GroupByKey("massjoin-verify",
                  [ctx] { return std::make_unique<VerifyReducer>(ctx); });
  FSJOIN_ASSIGN_OR_RETURN(mr::Dataset results, backend->Execute(plan, input));

  BaselineOutput output;
  FSJOIN_ASSIGN_OR_RETURN(output.pairs, DecodeJoinResults(results));
  output.report.algorithm =
      config.length_group > 1 ? "MassJoin-Merge+Light" : "MassJoin-Merge";
  output.report.backend = backend->kind();
  output.report.jobs = backend->history();
  output.report.signature_stage = "massjoin-signatures";
  // Candidates = deduped (pair, left-content) records entering the verify
  // stage.
  for (const mr::JobMetrics& j : output.report.jobs) {
    if (j.job_name == "massjoin-merge") {
      output.report.candidate_pairs = j.reduce_output_records;
    }
  }
  output.report.result_pairs = output.pairs.size();
  output.report.total_wall_ms = timer.ElapsedMillis();
  return output;
}

}  // namespace fsjoin
