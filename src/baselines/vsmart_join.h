#ifndef FSJOIN_BASELINES_VSMART_JOIN_H_
#define FSJOIN_BASELINES_VSMART_JOIN_H_

#include "baselines/baseline.h"
#include "util/status.h"

namespace fsjoin {

/// V-Smart-Join, Online-Aggregation variant (Metwally & Faloutsos, VLDB
/// 2012) — competitor [13], adapted from multisets to sets.
///
/// Pipeline:
///   1. join phase — map: emit *every* token of every record with the
///      record's (rid, size); reduce: enumerate every pair in each token's
///      posting list, emitting a partial overlap of 1 per shared token. No
///      filtering whatsoever (the paper's critique).
///   2. similarity phase — aggregate partial overlaps per pair and apply
///      the threshold (FS-Join's verification job, reused).
///
/// Needs no global ordering. Returns the exact result set, but its
/// intermediate data is quadratic in posting-list sizes; set
/// config.emission_limit to reproduce the paper's "cannot run completely on
/// the large datasets" behavior.
Result<BaselineOutput> RunVSmartJoin(const Corpus& corpus,
                                     const BaselineConfig& config);

}  // namespace fsjoin

#endif  // FSJOIN_BASELINES_VSMART_JOIN_H_
