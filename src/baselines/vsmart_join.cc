#include "baselines/vsmart_join.h"

#include <memory>

#include "core/fragment_join.h"
#include "core/jobs.h"
#include "exec/backend.h"
#include "exec/plan.h"
#include "util/serde.h"
#include "util/timer.h"

namespace fsjoin {

namespace {

struct VSmartContext {
  BaselineConfig config;
  std::shared_ptr<EmissionBudget> budget;
};

/// Emits (token, (rid, size)) for every token of every record.
class TokenListMapper : public mr::Mapper {
 public:
  explicit TokenListMapper(std::shared_ptr<VSmartContext> ctx)
      : ctx_(std::move(ctx)) {}

  Status Map(const mr::KeyValue& record, mr::Emitter* out) override {
    RecordId rid = 0;
    std::vector<TokenId> tokens;
    FSJOIN_RETURN_NOT_OK(DecodeCorpusRecord(record, &rid, &tokens));
    FSJOIN_RETURN_NOT_OK(ctx_->budget->Consume(tokens.size()));
    std::string value;
    PutVarint32(&value, rid);
    PutVarint64(&value, tokens.size());
    for (TokenId t : tokens) {
      std::string key;
      PutFixed32BE(&key, t);
      out->Emit(std::move(key), value);
    }
    return Status::OK();
  }

 private:
  std::shared_ptr<VSmartContext> ctx_;
};

/// Enumerates every pair in the token's posting list — partial overlap 1
/// per shared token, no filters (Online-Aggregation).
class PairEnumerationReducer : public mr::Reducer {
 public:
  explicit PairEnumerationReducer(std::shared_ptr<VSmartContext> ctx)
      : ctx_(std::move(ctx)) {}

  Status Reduce(std::string_view key, mr::ValueList values,
                mr::Emitter* out) override {
    (void)key;
    struct Entry {
      RecordId rid;
      uint64_t size;
    };
    std::vector<Entry> entries;
    entries.reserve(values.size());
    for (std::string_view v : values) {
      Decoder dec(v);
      Entry e{};
      FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&e.rid));
      FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&e.size));
      entries.push_back(e);
    }
    const auto emit_pair = [&](const Entry& x, const Entry& y) {
      const Entry& a = x.rid <= y.rid ? x : y;
      const Entry& b = x.rid <= y.rid ? y : x;
      PartialOverlap partial{a.rid, b.rid, static_cast<uint32_t>(a.size),
                             static_cast<uint32_t>(b.size), 1};
      std::string out_key, out_value;
      EncodePartialOverlap(partial, &out_key, &out_value);
      out->Emit(std::move(out_key), std::move(out_value));
    };
    if (ctx_->config.rs_boundary.has_value()) {
      // R-S: the posting list contributes one partial per *cross-side* pair
      // sharing the token — the budget shrinks from n(n-1)/2 to n_r * n_s.
      const RecordId boundary = *ctx_->config.rs_boundary;
      std::vector<Entry> probe, build;
      for (const Entry& e : entries) {
        (e.rid < boundary ? probe : build).push_back(e);
      }
      const uint64_t cross = uint64_t{probe.size()} * build.size();
      if (cross > 0) FSJOIN_RETURN_NOT_OK(ctx_->budget->Consume(cross));
      for (const Entry& a : probe) {
        for (const Entry& b : build) emit_pair(a, b);
      }
    } else {
      const uint64_t n = entries.size();
      if (n >= 2) {
        FSJOIN_RETURN_NOT_OK(ctx_->budget->Consume(n * (n - 1) / 2));
      }
      for (size_t i = 0; i < entries.size(); ++i) {
        for (size_t j = i + 1; j < entries.size(); ++j) {
          emit_pair(entries[i], entries[j]);
        }
      }
    }
    return Status::OK();
  }

 private:
  std::shared_ptr<VSmartContext> ctx_;
};

}  // namespace

Result<BaselineOutput> RunVSmartJoin(const Corpus& corpus,
                                     const BaselineConfig& config) {
  FSJOIN_RETURN_NOT_OK(config.Validate());
  WallTimer timer;

  std::unique_ptr<exec::ExecutionBackend> backend =
      exec::MakeBackend(config.exec);
  mr::Dataset input = MakeCorpusDataset(corpus);

  auto ctx = std::make_shared<VSmartContext>();
  ctx->config = config;
  ctx->budget = std::make_shared<EmissionBudget>(config.exec.emission_limit);

  // One plan, two wide stages: join (token posting lists -> pair partial
  // overlaps), then similarity (aggregate + threshold) — the latter reuses
  // FS-Join's verification reducer.
  auto verification_ctx = std::make_shared<VerificationContext>();
  verification_ctx->config.theta = config.theta;
  verification_ctx->config.function = config.function;
  verification_ctx->config.exec = config.exec;
  mr::JobConfig verification_cfg = MakeVerificationJobConfig(verification_ctx);

  exec::Plan plan("vsmart");
  exec::StageHints verification_hints;
  verification_hints.side = verification_cfg.side;
  plan.FlatMap("token-lists",
               [ctx] { return std::make_unique<TokenListMapper>(ctx); })
      .GroupByKey("vsmart-join",
                  [ctx] { return std::make_unique<PairEnumerationReducer>(ctx); })
      .GroupByKey("verification", verification_cfg.reducer_factory, nullptr,
                  nullptr, std::move(verification_hints));
  FSJOIN_ASSIGN_OR_RETURN(mr::Dataset results, backend->Execute(plan, input));

  BaselineOutput output;
  FSJOIN_ASSIGN_OR_RETURN(output.pairs, DecodeJoinResults(results));
  output.report.algorithm = "V-Smart-Join";
  output.report.backend = backend->kind();
  output.report.jobs = backend->history();
  output.report.signature_stage = "vsmart-join";
  output.report.candidate_pairs = verification_ctx->candidate_pairs;
  output.report.result_pairs = output.pairs.size();
  output.report.total_wall_ms = timer.ElapsedMillis();
  return output;
}

}  // namespace fsjoin
