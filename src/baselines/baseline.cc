#include "baselines/baseline.h"

#include <sstream>

#include "util/string_util.h"

namespace fsjoin {

Status BaselineConfig::Validate() const {
  if (theta <= 0.0 || theta > 1.0) {
    return Status::InvalidArgument(
        StrFormat("theta must be in (0, 1], got %f", theta));
  }
  if (num_map_tasks == 0 || num_reduce_tasks == 0) {
    return Status::InvalidArgument("task counts must be >= 1");
  }
  return Status::OK();
}

double BaselineReport::DuplicationFactor(uint64_t input_records) const {
  if (input_records == 0 || signature_job >= jobs.size()) return 0.0;
  return static_cast<double>(jobs[signature_job].map_output_records) /
         static_cast<double>(input_records);
}

std::string BaselineReport::Summary() const {
  std::ostringstream os;
  os << algorithm << ": " << jobs.size() << " jobs, "
     << WithThousandsSep(candidate_pairs) << " candidates, "
     << WithThousandsSep(result_pairs) << " results, "
     << StrFormat("%.1f ms", total_wall_ms);
  uint64_t shuffle = 0;
  for (const mr::JobMetrics& j : jobs) shuffle += j.shuffle_bytes;
  os << ", shuffle " << HumanBytes(shuffle);
  return os.str();
}

}  // namespace fsjoin
