#include "baselines/baseline.h"

#include <sstream>

#include "util/string_util.h"

namespace fsjoin {

Status BaselineConfig::Validate() const {
  if (theta <= 0.0 || theta > 1.0) {
    return Status::InvalidArgument(
        StrFormat("theta must be in (0, 1], got %f", theta));
  }
  return exec.Validate();
}

const mr::JobMetrics* BaselineReport::SignatureJob() const {
  if (signature_stage.empty()) return nullptr;
  for (const mr::JobMetrics& j : jobs) {
    if (j.job_name == signature_stage) return &j;
  }
  return nullptr;
}

double BaselineReport::DuplicationFactor(uint64_t input_records) const {
  const mr::JobMetrics* signature = SignatureJob();
  if (input_records == 0 || signature == nullptr) return 0.0;
  return static_cast<double>(signature->map_output_records) /
         static_cast<double>(input_records);
}

std::string BaselineReport::Summary() const {
  std::ostringstream os;
  os << algorithm << ": " << jobs.size() << " jobs, "
     << WithThousandsSep(candidate_pairs) << " candidates, "
     << WithThousandsSep(result_pairs) << " results, "
     << StrFormat("%.1f ms", total_wall_ms);
  uint64_t shuffle = 0;
  uint64_t spilled = 0;
  uint32_t runs = 0;
  for (const mr::JobMetrics& j : jobs) {
    shuffle += j.shuffle_bytes;
    spilled += j.spilled_bytes;
    runs += j.spill_runs;
  }
  os << ", shuffle " << HumanBytes(shuffle);
  if (runs > 0) {
    os << ", spilled " << HumanBytes(spilled) << " in " << runs << " runs";
  }
  return os.str();
}

}  // namespace fsjoin
