#ifndef FSJOIN_BASELINES_VERNICA_JOIN_H_
#define FSJOIN_BASELINES_VERNICA_JOIN_H_

#include "baselines/baseline.h"
#include "util/status.h"

namespace fsjoin {

/// RIDPairsPPJoin (Vernica, Carey, Li: "Efficient parallel set-similarity
/// joins using MapReduce", SIGMOD 2010) — the paper's main competitor [18].
///
/// Pipeline:
///   1. ordering job — token frequencies -> global ordering (shared with
///      FS-Join).
///   2. kernel job — map: emit one *full copy of the record per prefix
///      token* (the duplication FS-Join eliminates); reduce: per-token
///      groups run a PPJoin-style in-memory join with length filtering and
///      first-common-prefix-token deduplication, verifying candidates
///      in-reducer against the full records.
///
/// Returns exactly the FS-Join/brute-force result set.
Result<BaselineOutput> RunVernicaJoin(const Corpus& corpus,
                                      const BaselineConfig& config);

}  // namespace fsjoin

#endif  // FSJOIN_BASELINES_VERNICA_JOIN_H_
