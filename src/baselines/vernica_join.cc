#include "baselines/vernica_join.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <mutex>

#include "core/jobs.h"
#include "exec/backend.h"
#include "exec/plan.h"
#include "sim/global_order.h"
#include "sim/set_ops.h"
#include "util/serde.h"
#include "util/timer.h"

namespace fsjoin {

namespace {

struct VernicaContext {
  BaselineConfig config;
  std::shared_ptr<const GlobalOrder> order;
  std::shared_ptr<EmissionBudget> budget;

  std::mutex mu;
  uint64_t candidate_pairs = 0;
};

void EncodeRankedRecord(RecordId rid, const std::vector<TokenRank>& ranks,
                        std::string* out) {
  PutVarint32(out, rid);
  PutUint32Vector(out, ranks);
}

Status DecodeRankedRecord(std::string_view data, OrderedRecord* rec) {
  Decoder dec(data);
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&rec->id));
  FSJOIN_RETURN_NOT_OK(dec.GetUint32Vector(&rec->tokens));
  return Status::OK();
}

/// Map phase of the kernel: one copy of the record per prefix token.
class KernelMapper : public mr::Mapper {
 public:
  explicit KernelMapper(std::shared_ptr<VernicaContext> ctx)
      : ctx_(std::move(ctx)) {}

  Status Map(const mr::KeyValue& record, mr::Emitter* out) override {
    RecordId rid = 0;
    std::vector<TokenId> tokens;
    FSJOIN_RETURN_NOT_OK(DecodeCorpusRecord(record, &rid, &tokens));
    std::vector<TokenRank> ranks;
    ranks.reserve(tokens.size());
    for (TokenId t : tokens) ranks.push_back(ctx_->order->RankOf(t));
    std::sort(ranks.begin(), ranks.end());

    const uint64_t prefix =
        PrefixLength(ctx_->config.function, ctx_->config.theta, ranks.size());
    FSJOIN_RETURN_NOT_OK(ctx_->budget->Consume(prefix));
    std::string value;
    EncodeRankedRecord(rid, ranks, &value);
    for (uint64_t p = 0; p < prefix; ++p) {
      std::string key;
      PutFixed32BE(&key, ranks[p]);
      out->Emit(std::move(key), value);
    }
    return Status::OK();
  }

 private:
  std::shared_ptr<VernicaContext> ctx_;
};

/// Reduce phase: join the records sharing one prefix token.
class KernelReducer : public mr::Reducer {
 public:
  explicit KernelReducer(std::shared_ptr<VernicaContext> ctx)
      : ctx_(std::move(ctx)) {}

  Status Reduce(std::string_view key, mr::ValueList values,
                mr::Emitter* out) override {
    Decoder key_dec(key);
    uint32_t group_token = 0;
    FSJOIN_RETURN_NOT_OK(key_dec.GetFixed32BE(&group_token));

    std::vector<OrderedRecord> group;
    group.reserve(values.size());
    for (std::string_view v : values) {
      OrderedRecord rec;
      FSJOIN_RETURN_NOT_OK(DecodeRankedRecord(v, &rec));
      group.push_back(std::move(rec));
    }
    // Length-sorted group enables the PPJoin-style sliding length window.
    const auto by_size = [](const OrderedRecord& a, const OrderedRecord& b) {
      if (a.Size() != b.Size()) return a.Size() < b.Size();
      return a.id < b.id;
    };
    std::sort(group.begin(), group.end(), by_size);

    const SimilarityFunction fn = ctx_->config.function;
    const double theta = ctx_->config.theta;
    uint64_t local_candidates = 0;
    const auto verify_emit = [&](const OrderedRecord& s,
                                 const OrderedRecord& t) {
      ++local_candidates;
      const uint64_t required = MinOverlap(fn, theta, s.Size(), t.Size());
      const uint64_t c = SortedOverlapAtLeast(s.tokens, t.tokens, required);
      if (c == 0) return;
      if (!PassesThreshold(fn, c, s.Size(), t.Size(), theta)) return;
      std::string out_key, out_value;
      PutFixed32BE(&out_key, std::min(s.id, t.id));
      PutFixed32BE(&out_key, std::max(s.id, t.id));
      double sim = ComputeSimilarity(fn, c, s.Size(), t.Size());
      uint64_t bits = 0;
      std::memcpy(&bits, &sim, sizeof(bits));
      PutFixed64BE(&out_value, bits);
      out->Emit(std::move(out_key), std::move(out_value));
    };
    if (ctx_->config.rs_boundary.has_value()) {
      // R-S: split the group by side and slide each R probe over the S
      // window its length filter allows. Same-side pairs are never formed;
      // the longer record no longer follows the probe in sort order, so the
      // window needs the lower partner bound too, not just the upper.
      const RecordId boundary = *ctx_->config.rs_boundary;
      std::vector<OrderedRecord> probe, build;
      for (OrderedRecord& rec : group) {
        (rec.id < boundary ? probe : build).push_back(std::move(rec));
      }
      for (const OrderedRecord& s : probe) {
        const uint64_t min_partner = PartnerSizeLowerBound(fn, theta,
                                                           s.Size());
        const uint64_t max_partner = PartnerSizeUpperBound(fn, theta,
                                                           s.Size());
        auto it = std::lower_bound(
            build.begin(), build.end(), min_partner,
            [](const OrderedRecord& t, uint64_t bound) {
              return t.Size() < bound;
            });
        for (; it != build.end(); ++it) {
          const OrderedRecord& t = *it;
          if (t.Size() > max_partner) break;  // build sorted by size
          if (FirstCommonPrefixToken(s, t) != group_token) {
            continue;  // this pair is handled by another group (dedup rule)
          }
          verify_emit(s, t);
        }
      }
    } else {
      for (size_t i = 0; i < group.size(); ++i) {
        const OrderedRecord& s = group[i];
        const uint64_t max_partner =
            PartnerSizeUpperBound(fn, theta, s.Size());
        for (size_t j = i + 1; j < group.size(); ++j) {
          const OrderedRecord& t = group[j];
          if (t.Size() > max_partner) break;  // group sorted by size
          if (s.id == t.id) continue;
          if (FirstCommonPrefixToken(s, t) != group_token) {
            continue;  // this pair is handled by another group (dedup rule)
          }
          verify_emit(s, t);
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(ctx_->mu);
      ctx_->candidate_pairs += local_candidates;
    }
    return Status::OK();
  }

 private:
  /// Smallest rank common to both records' prefixes; UINT32_MAX if none.
  uint32_t FirstCommonPrefixToken(const OrderedRecord& a,
                                  const OrderedRecord& b) const {
    const uint64_t pa =
        PrefixLength(ctx_->config.function, ctx_->config.theta, a.Size());
    const uint64_t pb =
        PrefixLength(ctx_->config.function, ctx_->config.theta, b.Size());
    size_t i = 0, j = 0;
    while (i < pa && j < pb) {
      if (a.tokens[i] == b.tokens[j]) return a.tokens[i];
      if (a.tokens[i] < b.tokens[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    return UINT32_MAX;
  }

  std::shared_ptr<VernicaContext> ctx_;
};

}  // namespace

Result<BaselineOutput> RunVernicaJoin(const Corpus& corpus,
                                      const BaselineConfig& config) {
  FSJOIN_RETURN_NOT_OK(config.Validate());
  WallTimer timer;

  std::unique_ptr<exec::ExecutionBackend> backend =
      exec::MakeBackend(config.exec);
  mr::Dataset input = MakeCorpusDataset(corpus);

  // Plan 1: ordering.
  mr::JobConfig ordering_cfg = MakeOrderingJobConfig(
      config.exec.num_map_tasks, config.exec.num_reduce_tasks);
  exec::Plan ordering_plan("vernica-ordering");
  exec::StageHints ordering_hints;
  ordering_hints.task_factory = ordering_cfg.task_factory;
  ordering_hints.task_payload = ordering_cfg.task_payload;
  ordering_plan
      .FlatMap("tokenize", ordering_cfg.mapper_factory)
      .GroupByKey("ordering", ordering_cfg.reducer_factory,
                  ordering_cfg.partitioner, ordering_cfg.combiner_factory,
                  std::move(ordering_hints));
  FSJOIN_ASSIGN_OR_RETURN(mr::Dataset freq,
                          backend->Execute(ordering_plan, input));
  FSJOIN_ASSIGN_OR_RETURN(
      GlobalOrder order,
      BuildGlobalOrderFromJobOutput(freq, corpus.dictionary.size()));

  auto ctx = std::make_shared<VernicaContext>();
  ctx->config = config;
  ctx->order = std::make_shared<const GlobalOrder>(std::move(order));
  ctx->budget = std::make_shared<EmissionBudget>(config.exec.emission_limit);

  // Plan 2: RID-pairs kernel. The candidate counter crosses fork-isolated
  // reduce tasks through the stage side channel.
  exec::StageHints kernel_hints;
  kernel_hints.side.reset = [ctx] { ctx->candidate_pairs = 0; };
  kernel_hints.side.capture = [ctx]() -> std::string {
    std::string bytes;
    std::lock_guard<std::mutex> lock(ctx->mu);
    PutVarint64(&bytes, ctx->candidate_pairs);
    return bytes;
  };
  kernel_hints.side.merge = [ctx](const std::string& bytes) -> Status {
    Decoder dec(bytes);
    uint64_t count = 0;
    FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&count));
    std::lock_guard<std::mutex> lock(ctx->mu);
    ctx->candidate_pairs += count;
    return Status::OK();
  };
  exec::Plan kernel_plan("vernica");
  kernel_plan
      .FlatMap("prefix-split",
               [ctx] { return std::make_unique<KernelMapper>(ctx); })
      .GroupByKey("vernica-kernel",
                  [ctx] { return std::make_unique<KernelReducer>(ctx); },
                  nullptr, nullptr, std::move(kernel_hints));
  FSJOIN_ASSIGN_OR_RETURN(mr::Dataset results,
                          backend->Execute(kernel_plan, input));

  BaselineOutput output;
  FSJOIN_ASSIGN_OR_RETURN(output.pairs, DecodeJoinResults(results));
  output.report.algorithm = "RIDPairsPPJoin";
  output.report.backend = backend->kind();
  output.report.jobs = backend->history();
  output.report.signature_stage = "vernica-kernel";
  output.report.candidate_pairs = ctx->candidate_pairs;
  output.report.result_pairs = output.pairs.size();
  output.report.total_wall_ms = timer.ElapsedMillis();
  return output;
}

}  // namespace fsjoin
