#ifndef FSJOIN_CORE_FRAGMENT_JOIN_H_
#define FSJOIN_CORE_FRAGMENT_JOIN_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/fsjoin_config.h"
#include "core/segments.h"
#include "util/thread_pool.h"

namespace fsjoin {

/// Pruning statistics from fragment joins — the raw data behind Table IV.
/// Every counter is a plain sum, so Add is associative and commutative:
/// counters merged over any morsel split of a fragment equal the serial
/// counters exactly (tested in fragment_join_test).
struct FilterCounters {
  uint64_t pairs_considered = 0;  ///< candidate segment pairs examined
  uint64_t pruned_role = 0;       ///< rejected by band/R-S pairing rules
  uint64_t pruned_strl = 0;       ///< Lemma 1
  uint64_t pruned_segl = 0;       ///< Lemma 2
  uint64_t pruned_segi = 0;       ///< Lemma 3
  uint64_t pruned_segd = 0;       ///< Lemma 4
  uint64_t empty_overlap = 0;     ///< candidates with no common token
  uint64_t emitted = 0;           ///< partial-overlap records produced

  void Add(const FilterCounters& other);
};

/// One partial result of the filtering phase: a record pair and the number
/// of common tokens contributed by one fragment.
struct PartialOverlap {
  RecordId a = 0;  ///< smaller rid
  RecordId b = 0;  ///< larger rid
  uint32_t size_a = 0;
  uint32_t size_b = 0;
  uint64_t overlap = 0;
};

/// Parameters of one fragment-local join.
struct FragmentJoinOptions {
  SimilarityFunction function = SimilarityFunction::kJaccard;
  double theta = 0.8;
  JoinMethod method = JoinMethod::kPrefix;
  /// See FsJoinConfig::aggressive_segment_prefix.
  bool aggressive_segment_prefix = false;
  bool use_length_filter = true;
  bool use_segment_length_filter = true;
  bool use_segment_intersection_filter = true;
  bool use_segment_difference_filter = true;
  /// Optional structural pairing rule (horizontal band role). When set,
  /// pairs for which it returns false are never joined.
  std::function<bool(const SegmentView&, const SegmentView&)> pair_allowed;

  /// Two-collection joins: when set, rows with rid < rs_boundary are the
  /// probe (R) side and the rest the build (S) side, and the join loops
  /// enumerate only cross-side pairs — R×R/S×S pairs are never formed (and
  /// never counted), instead of being generated and filtered out. The
  /// batch must be side-tagged (SegmentBatch::TagSides) with this boundary.
  std::optional<RecordId> rs_boundary;

  /// Morsel-parallel execution (exec::ExecConfig::parallel_fragment_join):
  /// when `morsel_pool` is set and `morsel_size` > 0, the probe loop is cut
  /// into morsels of `morsel_size` probe segments scheduled onto the pool.
  /// Each morsel appends to its own output/counter buffers, merged in
  /// morsel-index order, so results and counters are byte-identical to the
  /// serial run for every morsel size and thread count. Defaults preserve
  /// the serial path. The pool is shared across concurrent fragment joins
  /// (work-stealing across fragments *and* morsels); not owned.
  ThreadPool* morsel_pool = nullptr;
  size_t morsel_size = 0;  ///< probe segments per morsel; 0 = serial

  /// Overlap kernel family (exec::KernelMode taxonomy): which compiled
  /// pipeline JoinFragmentBatch dispatches to. Every mode yields identical
  /// results/emissions; see core/join_pipeline.h for the counter-attribution
  /// caveat under kSimd. kAuto resolves against this build + machine.
  exec::KernelMode kernel = exec::KernelMode::kAuto;
};

/// Joins all segment pairs of one fragment over columnar storage (the
/// reducer body of the filtering job, §V-A "Join Algorithms"), appending
/// surviving partial overlaps to *out and pruning statistics to *counters.
/// The batch must be sealed. Output order is deterministic and independent
/// of morsel size and thread count.
void JoinFragmentBatch(const SegmentBatch& batch,
                       const FragmentJoinOptions& options,
                       std::vector<PartialOverlap>* out,
                       FilterCounters* counters);

/// Row-oriented adapter over JoinFragmentBatch: builds the columnar batch
/// from `segments` and joins it. Semantics (results, order, counters) are
/// identical to joining the rows directly.
void JoinFragment(const std::vector<SegmentRecord>& segments,
                  const FragmentJoinOptions& options,
                  std::vector<PartialOverlap>* out, FilterCounters* counters);

}  // namespace fsjoin

#endif  // FSJOIN_CORE_FRAGMENT_JOIN_H_
