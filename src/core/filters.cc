#include "core/filters.h"

#include <algorithm>
#include <cstdlib>

namespace fsjoin {

namespace {
uint64_t AbsDiff(uint32_t x, uint32_t y) {
  return x > y ? x - y : y - x;
}

// Test-only fault state (see filters.h). Plain global: set only while no
// join runs, read-only during execution.
FilterFaultInjection g_fault;

// Applies a fault bias to a required-overlap bound, clamped at 0.
uint64_t Biased(uint64_t required, int bias) {
  if (bias >= 0) return required + static_cast<uint64_t>(bias);
  const uint64_t drop = static_cast<uint64_t>(-bias);
  return required > drop ? required - drop : 0;
}
}  // namespace

void SetFilterFaultInjection(const FilterFaultInjection& fault) {
  g_fault = fault;
}

FilterFaultInjection GetFilterFaultInjection() { return g_fault; }

bool StrLengthPrunes(SimilarityFunction fn, double theta, uint32_t size_a,
                     uint32_t size_b) {
  const uint32_t shorter = std::min(size_a, size_b);
  const uint32_t longer = std::max(size_a, size_b);
  return shorter < PartnerSizeLowerBound(fn, theta, longer);
}

bool SegmentLengthPrunes(SimilarityFunction fn, double theta,
                         const SegmentView& a, const SegmentView& b) {
  const uint64_t required =
      Biased(MinOverlap(fn, theta, a.record_size, b.record_size),
             g_fault.segl_required_bias);
  const uint64_t best_head = std::min(a.head, b.head);
  const uint64_t best_tail = std::min(a.Tail(), b.Tail());
  const uint64_t best_seg = std::min(a.num_tokens, b.num_tokens);
  // Even the most optimistic overlap decomposition cannot reach `required`.
  return best_head + best_seg + best_tail < required;
}

bool SegmentIntersectionPrunes(SimilarityFunction fn, double theta,
                               const SegmentView& a, const SegmentView& b,
                               uint64_t seg_overlap) {
  const uint64_t required =
      Biased(MinOverlap(fn, theta, a.record_size, b.record_size),
             g_fault.segi_required_bias);
  const uint64_t best_head = std::min(a.head, b.head);
  const uint64_t best_tail = std::min(a.Tail(), b.Tail());
  return best_head + seg_overlap + best_tail < required;
}

bool SegmentDifferencePrunes(SimilarityFunction fn, double theta,
                             const SegmentView& a, const SegmentView& b,
                             uint64_t seg_overlap) {
  const uint64_t required = MinOverlap(fn, theta, a.record_size, b.record_size);
  const uint64_t total = static_cast<uint64_t>(a.record_size) + b.record_size;
  // sim >= θ implies |sΔt| = |s|+|t|-2c <= total - 2*required.
  const uint64_t max_sym_diff =
      total >= 2 * required ? total - 2 * required : 0;
  const uint64_t seg_diff =
      static_cast<uint64_t>(a.num_tokens) + b.num_tokens - 2 * seg_overlap;
  const uint64_t min_head_diff = AbsDiff(a.head, b.head);
  const uint64_t min_tail_diff = AbsDiff(a.Tail(), b.Tail());
  return seg_diff + min_head_diff + min_tail_diff > max_sym_diff;
}

uint64_t SegmentMinLocalOverlap(SimilarityFunction fn, double theta,
                                const SegmentView& a) {
  const uint64_t outside = static_cast<uint64_t>(a.record_size) -
                           a.num_tokens;  // head + tail
  const uint64_t required = MinOverlapSelf(fn, theta, a.record_size);
  const uint64_t local = required > outside ? required - outside : 0;
  return std::max<uint64_t>(local, 1);
}

uint64_t SegmentPrefixLength(SimilarityFunction fn, double theta,
                             const SegmentView& a) {
  const uint64_t o = SegmentMinLocalOverlap(fn, theta, a);
  if (o > a.num_tokens) return 0;
  return a.num_tokens - o + 1;
}

}  // namespace fsjoin
