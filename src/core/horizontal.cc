#include "core/horizontal.h"

#include <algorithm>

#include "util/logging.h"

namespace fsjoin {

HorizontalScheme::HorizontalScheme(std::vector<uint32_t> length_pivots,
                                   SimilarityFunction fn, double theta)
    : pivots_(std::move(length_pivots)), fn_(fn), theta_(theta) {
  for (size_t i = 1; i < pivots_.size(); ++i) {
    FSJOIN_CHECK(pivots_[i] > pivots_[i - 1]);
  }
}

uint32_t HorizontalScheme::MainGroupOf(uint32_t len) const {
  // Number of pivots <= len.
  return static_cast<uint32_t>(
      std::upper_bound(pivots_.begin(), pivots_.end(), len) -
      pivots_.begin());
}

std::vector<uint32_t> HorizontalScheme::GroupsOf(uint32_t len) const {
  std::vector<uint32_t> groups;
  const uint32_t main = MainGroupOf(len);
  groups.push_back(main);
  const uint32_t t = NumPivots();
  // Minimal exact band membership (tighter than the paper's symmetric
  // [θ·L_k, L_k/θ] window, which duplicates records into bands where the
  // anchor rule can never join them):
  //  * as the *shorter* side of a straddling pair the record is anchored
  //    to band main+1 only — and only if some θ-similar longer partner can
  //    exist (len >= PartnerSizeLowerBound(L_{main+1}));
  //  * as the *longer* side it must attend band k for every pivot
  //    L_k in [PartnerSizeLowerBound(len), len]: exactly the pivots a
  //    θ-similar shorter partner could sit below.
  if (main < t) {
    const uint32_t next_pivot = pivots_[main];
    if (len >= PartnerSizeLowerBound(fn_, theta_, next_pivot)) {
      groups.push_back(t + main + 1);
    }
  }
  // Longer-side bands all have k <= main, so they can never collide with
  // the shorter-side band main+1 above.
  const uint64_t partner_lo = PartnerSizeLowerBound(fn_, theta_, len);
  for (uint32_t k = 1; k <= t; ++k) {
    const uint32_t pivot = pivots_[k - 1];
    if (pivot > len) break;  // pivots ascend; the rest are above len
    if (pivot >= partner_lo) groups.push_back(t + k);
  }
  return groups;
}

bool HorizontalScheme::ShouldJoinInGroup(uint32_t group, uint32_t len_a,
                                         uint32_t len_b) const {
  const uint32_t t = NumPivots();
  if (group <= t) {
    // Main group: join iff both records live in this main group.
    return MainGroupOf(len_a) == group && MainGroupOf(len_b) == group;
  }
  const uint32_t k = group - t;          // band index 1..t
  const uint32_t pivot = pivots_[k - 1];  // L_k
  const uint32_t prev = (k >= 2) ? pivots_[k - 2] : 0;  // L_{k-1}
  const uint32_t shorter = std::min(len_a, len_b);
  const uint32_t longer = std::max(len_a, len_b);
  return shorter >= prev && shorter < pivot && longer >= pivot;
}

std::vector<uint32_t> SelectLengthPivots(
    const std::vector<OrderedRecord>& records, uint32_t t,
    SimilarityFunction fn, double theta) {
  std::vector<uint32_t> lengths;
  lengths.reserve(records.size());
  for (const OrderedRecord& r : records) {
    lengths.push_back(static_cast<uint32_t>(r.Size()));
  }
  return SelectLengthPivotsFromLengths(std::move(lengths), t, fn, theta);
}

std::vector<uint32_t> SelectLengthPivotsFromLengths(
    std::vector<uint32_t> lengths, uint32_t t, SimilarityFunction fn,
    double theta) {
  std::vector<uint32_t> pivots;
  if (t == 0 || lengths.empty()) return pivots;
  std::sort(lengths.begin(), lengths.end());
  for (uint32_t k = 1; k <= t; ++k) {
    size_t idx = static_cast<size_t>(
        static_cast<uint64_t>(k) * lengths.size() / (t + 1));
    if (idx >= lengths.size()) idx = lengths.size() - 1;
    uint32_t pivot = lengths[idx];
    if (pivot == 0) pivot = 1;
    if (pivots.empty()) {
      pivots.push_back(pivot);
      continue;
    }
    // Geometric gap: accept only pivots whose similarity window cannot
    // also contain the previous pivot.
    if (pivot > pivots.back() &&
        PartnerSizeLowerBound(fn, theta, pivot) > pivots.back()) {
      pivots.push_back(pivot);
    }
  }
  return pivots;
}

}  // namespace fsjoin
