#ifndef FSJOIN_CORE_PIVOTS_H_
#define FSJOIN_CORE_PIVOTS_H_

#include <cstdint>
#include <vector>

#include "core/fsjoin_config.h"
#include "sim/global_order.h"

namespace fsjoin {

/// Selects `num_pivots` vertical pivots over the global ordering
/// (Definition 4, §IV). Returned ranks are strictly increasing and lie in
/// (0, order.NumTokens()): pivot p makes rank p the first rank of the next
/// segment, i.e. segment v covers ranks [pivots[v-1], pivots[v]).
///
/// Fewer pivots may be returned when the domain is too small to host
/// `num_pivots` distinct boundaries.
std::vector<TokenRank> SelectPivots(const GlobalOrder& order,
                                    PivotStrategy strategy,
                                    uint32_t num_pivots, uint64_t seed);

/// Segment index (0-based fragment id) a rank falls into for the given
/// pivot boundaries.
uint32_t SegmentOfRank(const std::vector<TokenRank>& pivots, TokenRank rank);

/// Total term frequency covered by each of the pivots.size()+1 fragments —
/// the quantity Even-TF balances (used by tests and the pivot benchmark).
std::vector<uint64_t> FragmentFrequencies(const GlobalOrder& order,
                                          const std::vector<TokenRank>& pivots);

}  // namespace fsjoin

#endif  // FSJOIN_CORE_PIVOTS_H_
