#ifndef FSJOIN_CORE_FSJOIN_H_
#define FSJOIN_CORE_FSJOIN_H_

#include <string>
#include <vector>

#include "core/fragment_join.h"
#include "core/fsjoin_config.h"
#include "mr/metrics.h"
#include "sim/global_order.h"
#include "sim/join_result.h"
#include "text/corpus.h"
#include "util/status.h"

namespace fsjoin {

/// Everything measured during one FS-Join run — the data every reproduced
/// table and figure is computed from.
struct FsJoinReport {
  FsJoinConfig config;
  std::vector<TokenRank> pivots;
  std::vector<uint32_t> length_pivots;

  mr::JobMetrics ordering_job;
  mr::JobMetrics filtering_job;
  mr::JobMetrics verification_job;

  FilterCounters filters;
  uint64_t candidate_pairs = 0;  ///< distinct pairs reaching verification
  uint64_t result_pairs = 0;
  double total_wall_ms = 0.0;

  /// Jobs in execution order (for the cluster simulator). The ordering job
  /// is included; the paper's cost analysis excludes it, so benches that
  /// follow the paper pass JoinJobs() instead.
  std::vector<mr::JobMetrics> AllJobs() const;
  /// Filtering + verification jobs only (paper's §V-C scope).
  std::vector<mr::JobMetrics> JoinJobs() const;

  std::string Summary() const;
};

/// The result pairs plus the full report.
struct FsJoinOutput {
  JoinResultSet pairs;
  FsJoinReport report;
};

/// FS-Join (§III–§V): a three-job MapReduce pipeline
///   1. ordering      — token frequencies -> global ordering
///   2. filtering     — vertical (+ horizontal) partitioning, fragment joins
///   3. verification  — partial-overlap aggregation and thresholding
/// run on the in-process MR engine.
///
/// Usage:
///   FsJoinConfig config;
///   config.theta = 0.8;
///   FsJoin join(config);
///   FSJOIN_ASSIGN_OR_RETURN(FsJoinOutput out, join.Run(corpus));
class FsJoin {
 public:
  explicit FsJoin(FsJoinConfig config) : config_(std::move(config)) {}

  /// Runs the self-join (or R-S join when config.rs_boundary is set) over
  /// `corpus`. Deterministic for a fixed corpus and config.
  Result<FsJoinOutput> Run(const Corpus& corpus) const;

  const FsJoinConfig& config() const { return config_; }

 private:
  FsJoinConfig config_;
};

/// Convenience wrapper for R-S joins: concatenates R and S (S record ids
/// offset by |R|), sets rs_boundary = |R| and runs FS-Join. Result pairs
/// have `a` in R's id space and `b` in S's (b_original = b - |R|).
Result<FsJoinOutput> FsJoinRS(const Corpus& r, const Corpus& s,
                              FsJoinConfig config);

}  // namespace fsjoin

#endif  // FSJOIN_CORE_FSJOIN_H_
