#ifndef FSJOIN_CORE_FSJOIN_H_
#define FSJOIN_CORE_FSJOIN_H_

#include <string>
#include <vector>

#include "core/fragment_join.h"
#include "core/fsjoin_config.h"
#include "exec/backend.h"
#include "flow/dataflow.h"
#include "mr/metrics.h"
#include "sim/global_order.h"
#include "sim/join_result.h"
#include "text/corpus.h"
#include "util/status.h"

namespace fsjoin {

/// Everything measured during one FS-Join run — the data every reproduced
/// table and figure is computed from.
struct FsJoinReport {
  FsJoinConfig config;
  exec::BackendKind backend = exec::BackendKind::kMapReduce;
  std::vector<TokenRank> pivots;
  std::vector<uint32_t> length_pivots;

  /// Per-wide-stage metrics, identical layout on every backend. On the
  /// MapReduce backend these are the three materialized jobs' exact
  /// counters (pinned by MetricsRegressionTest); on the fused backend they
  /// are synthesized from the dataflow's per-shuffle counters (wall times
  /// stay 0 — the pipeline wall is in flow_pipelines).
  mr::JobMetrics ordering_job;
  mr::JobMetrics filtering_job;
  mr::JobMetrics verification_job;

  /// Fused backend only: raw dataflow counters of the executed pipelines
  /// (ordering, then filter+verify) — fusion and materialization savings.
  std::vector<flow::Pipeline::Metrics> flow_pipelines;

  /// What --auto resolved (empty/disabled on hand-set runs): the sample it
  /// drew, every driver-side choice line, and the per-fragment decision
  /// histogram appended after the run. Summary() prints the lines, so
  /// tuned runs are self-describing like PR 6's kernel logging.
  struct TuneLog {
    bool enabled = false;
    double sample_rate = 0.0;
    uint64_t sampled_records = 0;
    uint64_t total_records = 0;
    std::vector<std::string> lines;
  };
  TuneLog tuning;

  FilterCounters filters;
  uint64_t candidate_pairs = 0;  ///< distinct pairs reaching verification
  uint64_t result_pairs = 0;
  double total_wall_ms = 0.0;

  /// Jobs in execution order (for the cluster simulator). The ordering job
  /// is included; the paper's cost analysis excludes it, so benches that
  /// follow the paper pass JoinJobs() instead.
  std::vector<mr::JobMetrics> AllJobs() const;
  /// Filtering + verification jobs only (paper's §V-C scope).
  std::vector<mr::JobMetrics> JoinJobs() const;

  std::string Summary() const;
};

/// A two-collection (R-S) join input: probe collection R and build
/// collection S. The join produces exactly the cross pairs — one record
/// from each side — whose similarity passes theta; no R×R or S×S pair is
/// ever formed.
struct JoinInput {
  const Corpus& r;
  const Corpus& s;
};

/// Builds the merged corpus every R-S plan runs on. R's records keep both
/// their record ids and their token ids: R's dictionary is interned first,
/// in token-id order, so the union mapping is the identity on R and probe
/// tokens are never remapped (the disjoint-vocabulary invariant the check
/// harness asserts). S's tokens are interned into the union dictionary and
/// its record ids are offset by |R|. Term frequencies are recomputed over
/// R ∪ S, which is what makes the global token ordering shared by both
/// sides. The R/S boundary of the result is input.r.records.size().
Corpus MergeJoinInput(const JoinInput& input);

/// The result pairs plus the full report.
struct FsJoinOutput {
  JoinResultSet pairs;
  FsJoinReport report;

  /// Populated when config.collect_partial_overlaps is set: every partial
  /// overlap the filtering phase emitted, sorted by (a, b, overlap, sizes)
  /// so the capture is deterministic across thread counts and backends.
  std::vector<PartialOverlap> partial_overlaps;
};

/// FS-Join (§III–§V), described as two logical plans
///   1. ordering             — token frequencies -> global ordering
///   2. filtering+verification — vertical (+ horizontal) partitioning,
///      fragment joins, then partial-overlap aggregation and thresholding
/// and executed on the backend selected by config.exec.backend: the
/// Hadoop-style MapReduce engine (one materialized job per wide stage —
/// the paper's substrate) or the Spark-style fused dataflow (§VII).
///
/// Usage:
///   FsJoinConfig config;
///   config.theta = 0.8;
///   config.exec.backend = exec::BackendKind::kFusedFlow;  // optional
///   FsJoin join(config);
///   FSJOIN_ASSIGN_OR_RETURN(FsJoinOutput out, join.Run(corpus));
class FsJoin {
 public:
  explicit FsJoin(FsJoinConfig config) : config_(std::move(config)) {}

  /// Runs the self-join (or R-S join when config.rs_boundary is set) over
  /// `corpus`. Deterministic for a fixed corpus and config.
  Result<FsJoinOutput> Run(const Corpus& corpus) const;

  /// Runs the two-collection join R ⋈_θ S: merges the input through
  /// MergeJoinInput, sets rs_boundary = |R| and executes the same plans.
  /// Result pairs have `a` in R's id space and `b` offset by |R|.
  Result<FsJoinOutput> Run(const JoinInput& input) const;

  const FsJoinConfig& config() const { return config_; }

 private:
  FsJoinConfig config_;
};

/// Convenience wrapper for R-S joins: concatenates R and S (S record ids
/// offset by |R|), sets rs_boundary = |R| and runs FS-Join. Result pairs
/// have `a` in R's id space and `b` in S's (b_original = b - |R|).
Result<FsJoinOutput> FsJoinRS(const Corpus& r, const Corpus& s,
                              FsJoinConfig config);

}  // namespace fsjoin

#endif  // FSJOIN_CORE_FSJOIN_H_
