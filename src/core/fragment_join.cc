#include "core/fragment_join.h"

#include "core/join_pipeline.h"
#include "util/logging.h"

namespace fsjoin {

void FilterCounters::Add(const FilterCounters& other) {
  pairs_considered += other.pairs_considered;
  pruned_role += other.pruned_role;
  pruned_strl += other.pruned_strl;
  pruned_segl += other.pruned_segl;
  pruned_segi += other.pruned_segi;
  pruned_segd += other.pruned_segd;
  empty_overlap += other.empty_overlap;
  emitted += other.emitted;
}

void JoinFragmentBatch(const SegmentBatch& batch,
                       const FragmentJoinOptions& opts,
                       std::vector<PartialOverlap>* out,
                       FilterCounters* counters) {
  if (batch.empty()) return;
  FSJOIN_CHECK(batch.sealed());  // bitmaps/containers back the kernels
  // R-S joins iterate the side lists; an untagged batch would join nothing.
  FSJOIN_CHECK(!opts.rs_boundary.has_value() || batch.side_tagged());
  // One registry lookup per fragment; the compiled pipeline carries the
  // method / filter-subset / kernel branches in its instantiation instead of
  // re-deciding them per candidate pair (core/join_pipeline.h).
  KernelRegistry::Get().Lookup(ShapeOf(opts))(batch, opts, out, counters);
}

void JoinFragment(const std::vector<SegmentRecord>& segments,
                  const FragmentJoinOptions& opts,
                  std::vector<PartialOverlap>* out, FilterCounters* counters) {
  SegmentBatch batch = SegmentBatch::FromRecords(segments);
  if (opts.rs_boundary.has_value()) batch.TagSides(*opts.rs_boundary);
  JoinFragmentBatch(batch, opts, out, counters);
}

}  // namespace fsjoin
