#include "core/fragment_join.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "core/filters.h"
#include "sim/set_ops.h"

namespace fsjoin {

void FilterCounters::Add(const FilterCounters& other) {
  pairs_considered += other.pairs_considered;
  pruned_role += other.pruned_role;
  pruned_strl += other.pruned_strl;
  pruned_segl += other.pruned_segl;
  pruned_segi += other.pruned_segi;
  pruned_segd += other.pruned_segd;
  empty_overlap += other.empty_overlap;
  emitted += other.emitted;
}

namespace {

/// Runs the shared filter pipeline on one candidate segment pair and emits
/// its partial overlap when it survives.
void ProcessPair(const SegmentRecord& x, const SegmentRecord& y,
                 const FragmentJoinOptions& opts,
                 std::vector<PartialOverlap>* out, FilterCounters* counters) {
  ++counters->pairs_considered;
  if (opts.pair_allowed && !opts.pair_allowed(x, y)) {
    ++counters->pruned_role;
    return;
  }
  if (opts.use_length_filter &&
      StrLengthPrunes(opts.function, opts.theta, x.record_size,
                      y.record_size)) {
    ++counters->pruned_strl;
    return;
  }
  if (opts.use_segment_length_filter &&
      SegmentLengthPrunes(opts.function, opts.theta, x, y)) {
    ++counters->pruned_segl;
    return;
  }
  const uint64_t overlap = SortedOverlap(x.tokens, y.tokens);
  if (overlap == 0) {
    ++counters->empty_overlap;
    return;
  }
  if (opts.use_segment_intersection_filter) {
    if (SegmentIntersectionPrunes(opts.function, opts.theta, x, y, overlap)) {
      ++counters->pruned_segi;
      return;
    }
    // Local-overlap gate: any θ-similar pair satisfies
    // c_i >= SegmentMinLocalOverlap for BOTH segments (the bound behind the
    // Prefix Join; see DESIGN.md), so partial counts below it belong to
    // dissimilar pairs and can be dropped without affecting the result.
    if (overlap < SegmentMinLocalOverlap(opts.function, opts.theta, x) ||
        overlap < SegmentMinLocalOverlap(opts.function, opts.theta, y)) {
      ++counters->pruned_segi;
      return;
    }
  }
  if (opts.use_segment_difference_filter &&
      SegmentDifferencePrunes(opts.function, opts.theta, x, y, overlap)) {
    ++counters->pruned_segd;
    return;
  }
  PartialOverlap result;
  if (x.rid <= y.rid) {
    result = PartialOverlap{x.rid, y.rid, x.record_size, y.record_size,
                            overlap};
  } else {
    result = PartialOverlap{y.rid, x.rid, y.record_size, x.record_size,
                            overlap};
  }
  out->push_back(result);
  ++counters->emitted;
}

void LoopJoin(const std::vector<SegmentRecord>& segments,
              const FragmentJoinOptions& opts,
              std::vector<PartialOverlap>* out, FilterCounters* counters) {
  for (size_t i = 0; i < segments.size(); ++i) {
    for (size_t j = i + 1; j < segments.size(); ++j) {
      ProcessPair(segments[i], segments[j], opts, out, counters);
    }
  }
}

/// A posting list whose consumed front is trimmed as the probe size grows
/// (AllPairs-style index minimization).
struct PostingList {
  std::vector<uint32_t> entries;
  size_t start = 0;
};

/// Shared core of the index and prefix joins: indexes the first
/// `prefix_len(seg)` tokens of each segment and probes with the same
/// prefix. A pair becomes a candidate when probing hits one of its indexed
/// tokens; ProcessPair then computes the exact overlap.
///
/// Segments are processed in ascending record size so the string length
/// filter can act at *generation* time: postings whose record is too short
/// to ever again satisfy Lemma 1 are permanently trimmed off the front of
/// each list (the probe's lower bound only grows).
template <typename LenFn>
void IndexedJoin(const std::vector<SegmentRecord>& segments,
                 const FragmentJoinOptions& opts, LenFn prefix_len,
                 std::vector<PartialOverlap>* out, FilterCounters* counters) {
  std::vector<uint32_t> order(segments.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (segments[a].record_size != segments[b].record_size) {
      return segments[a].record_size < segments[b].record_size;
    }
    return segments[a].rid < segments[b].rid;
  });

  std::unordered_map<TokenRank, PostingList> index;
  // Probe-stamp per already-indexed segment to deduplicate candidates.
  std::vector<uint32_t> last_probe(segments.size(),
                                   std::numeric_limits<uint32_t>::max());
  for (uint32_t oi = 0; oi < order.size(); ++oi) {
    const SegmentRecord& x = segments[order[oi]];
    const uint64_t px = prefix_len(x);
    const uint64_t min_partner =
        opts.use_length_filter
            ? PartnerSizeLowerBound(opts.function, opts.theta, x.record_size)
            : 0;
    for (uint64_t p = 0; p < px; ++p) {
      auto it = index.find(x.tokens[p]);
      if (it == index.end()) continue;
      PostingList& list = it->second;
      // Trim postings below the length-filter bound; record sizes ascend
      // along the list, and the bound is monotone in |x|, so the trimmed
      // front can never match a later probe either.
      while (list.start < list.entries.size() &&
             segments[list.entries[list.start]].record_size < min_partner) {
        ++list.start;
      }
      for (size_t e = list.start; e < list.entries.size(); ++e) {
        const uint32_t j = list.entries[e];
        if (last_probe[j] == oi) continue;  // already a candidate this probe
        last_probe[j] = oi;
        ProcessPair(segments[j], x, opts, out, counters);
      }
    }
    for (uint64_t p = 0; p < px; ++p) {
      index[x.tokens[p]].entries.push_back(order[oi]);
    }
  }
}

}  // namespace

void JoinFragment(const std::vector<SegmentRecord>& segments,
                  const FragmentJoinOptions& opts,
                  std::vector<PartialOverlap>* out, FilterCounters* counters) {
  switch (opts.method) {
    case JoinMethod::kLoop:
      LoopJoin(segments, opts, out, counters);
      return;
    case JoinMethod::kIndex:
      IndexedJoin(
          segments, opts,
          [](const SegmentRecord& s) { return s.tokens.size(); }, out,
          counters);
      return;
    case JoinMethod::kPrefix:
      if (opts.aggressive_segment_prefix) {
        // Paper §V-A: each segment filtered like an independent mini-join
        // at threshold θ. Fast but can drop partial counts (see header).
        IndexedJoin(
            segments, opts,
            [&opts](const SegmentRecord& s) {
              return PrefixLength(opts.function, opts.theta,
                                  s.tokens.size());
            },
            out, counters);
      } else {
        IndexedJoin(
            segments, opts,
            [&opts](const SegmentRecord& s) {
              return SegmentPrefixLength(opts.function, opts.theta, s);
            },
            out, counters);
      }
      return;
  }
}

}  // namespace fsjoin
