#include "core/fragment_join.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "core/filters.h"
#include "sim/set_ops.h"
#include "util/logging.h"

namespace fsjoin {

void FilterCounters::Add(const FilterCounters& other) {
  pairs_considered += other.pairs_considered;
  pruned_role += other.pruned_role;
  pruned_strl += other.pruned_strl;
  pruned_segl += other.pruned_segl;
  pruned_segi += other.pruned_segi;
  pruned_segd += other.pruned_segd;
  empty_overlap += other.empty_overlap;
  emitted += other.emitted;
}

namespace {

/// |x ∩ y| for two batch rows. Short segments go through the word-packed
/// bucket-bitmap reject first: one AND decides "provably disjoint" and
/// skips the merge entirely (the empty_overlap case, which dominates sparse
/// fragments). Longer segments saturate the 64-bit summary, so the gate is
/// skipped and the size-skew-dispatching merge runs directly.
inline uint64_t BatchOverlap(const SegmentBatch& batch, uint32_t i,
                             uint32_t j) {
  const uint32_t li = batch.length(i);
  const uint32_t lj = batch.length(j);
  if (std::min(li, lj) <= kPackedMaxTokens &&
      (batch.bitmap(i) & batch.bitmap(j)) == 0) {
    return 0;
  }
  return SortedOverlap(batch.tokens(i), li, batch.tokens(j), lj);
}

/// Runs the shared filter pipeline on one candidate segment pair and emits
/// its partial overlap when it survives.
void ProcessPair(const SegmentBatch& batch, uint32_t i, uint32_t j,
                 const FragmentJoinOptions& opts,
                 std::vector<PartialOverlap>* out, FilterCounters* counters) {
  ++counters->pairs_considered;
  const SegmentView x = batch.View(i);
  const SegmentView y = batch.View(j);
  if (opts.pair_allowed && !opts.pair_allowed(x, y)) {
    ++counters->pruned_role;
    return;
  }
  if (opts.use_length_filter &&
      StrLengthPrunes(opts.function, opts.theta, x.record_size,
                      y.record_size)) {
    ++counters->pruned_strl;
    return;
  }
  if (opts.use_segment_length_filter &&
      SegmentLengthPrunes(opts.function, opts.theta, x, y)) {
    ++counters->pruned_segl;
    return;
  }
  const uint64_t overlap = BatchOverlap(batch, i, j);
  if (overlap == 0) {
    ++counters->empty_overlap;
    return;
  }
  if (opts.use_segment_intersection_filter) {
    if (SegmentIntersectionPrunes(opts.function, opts.theta, x, y, overlap)) {
      ++counters->pruned_segi;
      return;
    }
    // Local-overlap gate: any θ-similar pair satisfies
    // c_i >= SegmentMinLocalOverlap for BOTH segments (the bound behind the
    // Prefix Join; see DESIGN.md), so partial counts below it belong to
    // dissimilar pairs and can be dropped without affecting the result.
    if (overlap < SegmentMinLocalOverlap(opts.function, opts.theta, x) ||
        overlap < SegmentMinLocalOverlap(opts.function, opts.theta, y)) {
      ++counters->pruned_segi;
      return;
    }
  }
  if (opts.use_segment_difference_filter &&
      SegmentDifferencePrunes(opts.function, opts.theta, x, y, overlap)) {
    ++counters->pruned_segd;
    return;
  }
  PartialOverlap result;
  if (x.rid <= y.rid) {
    result = PartialOverlap{x.rid, y.rid, x.record_size, y.record_size,
                            overlap};
  } else {
    result = PartialOverlap{y.rid, x.rid, y.record_size, x.record_size,
                            overlap};
  }
  out->push_back(result);
  ++counters->emitted;
}

/// Runs probes [0, probes) in morsels of opts.morsel_size on the shared
/// pool; `fn(begin, end, out, counters)` must append the probe range's
/// results in serial order. Each morsel writes its own buffers, merged in
/// morsel-index order afterwards, so the concatenation equals the serial
/// probe order and the counter sums are exact — output and counters are
/// byte-identical to the serial run regardless of morsel size, thread
/// count, or scheduling. Falls back to one serial call when morsels are
/// disabled or the fragment fits in a single morsel.
template <typename RangeFn>
void RunMorsels(uint32_t probes, const FragmentJoinOptions& opts,
                const RangeFn& fn, std::vector<PartialOverlap>* out,
                FilterCounters* counters) {
  const size_t morsel = opts.morsel_size;
  if (opts.morsel_pool == nullptr || morsel == 0 || probes <= morsel) {
    fn(0, probes, out, counters);
    return;
  }
  const size_t num_morsels = (probes + morsel - 1) / morsel;
  std::vector<std::vector<PartialOverlap>> morsel_out(num_morsels);
  std::vector<FilterCounters> morsel_counters(num_morsels);
  opts.morsel_pool->ParallelFor(
      num_morsels, 1, [&](size_t begin_m, size_t end_m) {
        for (size_t m = begin_m; m < end_m; ++m) {
          const uint32_t begin = static_cast<uint32_t>(m * morsel);
          const uint32_t end =
              static_cast<uint32_t>(std::min<size_t>(probes, begin + morsel));
          fn(begin, end, &morsel_out[m], &morsel_counters[m]);
        }
      });
  size_t total = 0;
  for (const auto& part : morsel_out) total += part.size();
  out->reserve(out->size() + total);
  for (size_t m = 0; m < num_morsels; ++m) {
    counters->Add(morsel_counters[m]);
    out->insert(out->end(), morsel_out[m].begin(), morsel_out[m].end());
  }
}

void LoopJoinRange(const SegmentBatch& batch, const FragmentJoinOptions& opts,
                   uint32_t begin, uint32_t end,
                   std::vector<PartialOverlap>* out,
                   FilterCounters* counters) {
  const uint32_t n = batch.size();
  for (uint32_t i = begin; i < end; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      ProcessPair(batch, i, j, opts, out, counters);
    }
  }
}

/// Prefix index over the whole batch, built once up front so probe morsels
/// are independent. `order` sorts rows by ascending (record_size, rid);
/// postings hold order *positions*, so each list ascends both in insertion
/// position and in record size. A probe at position `oi` considers exactly
/// the postings with position < oi and record_size above its length-filter
/// bound — the same candidates, in the same order, as the incremental
/// build-while-probing formulation (whose front-trimming this replaces
/// with a stateless binary search; sound because the bound is monotone in
/// the probe's record size).
struct PrefixIndex {
  std::vector<uint32_t> order;        ///< batch rows in probe order
  std::vector<uint32_t> prefix_len;   ///< per order position
  std::unordered_map<TokenRank, std::vector<uint32_t>> postings;
};

template <typename LenFn>
PrefixIndex BuildPrefixIndex(const SegmentBatch& batch, LenFn prefix_len) {
  PrefixIndex index;
  const uint32_t n = batch.size();
  index.order.resize(n);
  for (uint32_t i = 0; i < n; ++i) index.order[i] = i;
  std::sort(index.order.begin(), index.order.end(),
            [&](uint32_t a, uint32_t b) {
              if (batch.record_size(a) != batch.record_size(b)) {
                return batch.record_size(a) < batch.record_size(b);
              }
              return batch.rid(a) < batch.rid(b);
            });
  index.prefix_len.resize(n);
  for (uint32_t oi = 0; oi < n; ++oi) {
    const uint32_t row = index.order[oi];
    const uint32_t px = static_cast<uint32_t>(prefix_len(row));
    index.prefix_len[oi] = px;
    const TokenRank* tokens = batch.tokens(row);
    for (uint32_t p = 0; p < px; ++p) {
      index.postings[tokens[p]].push_back(oi);
    }
  }
  return index;
}

/// Per-morsel candidate-dedup scratch: probe-stamp arrays recycled across
/// morsels. Stamps are order positions, unique per probe within one batch
/// join, so a recycled array never needs resetting.
class StampPool {
 public:
  explicit StampPool(size_t n) : n_(n) {}

  std::unique_ptr<std::vector<uint32_t>> Acquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        auto scratch = std::move(free_.back());
        free_.pop_back();
        return scratch;
      }
    }
    return std::make_unique<std::vector<uint32_t>>(
        n_, std::numeric_limits<uint32_t>::max());
  }

  void Release(std::unique_ptr<std::vector<uint32_t>> scratch) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(scratch));
  }

 private:
  size_t n_;
  std::mutex mu_;
  std::vector<std::unique_ptr<std::vector<uint32_t>>> free_;
};

void IndexedProbeRange(const SegmentBatch& batch,
                       const FragmentJoinOptions& opts,
                       const PrefixIndex& index, uint32_t begin, uint32_t end,
                       std::vector<uint32_t>* last_probe,
                       std::vector<PartialOverlap>* out,
                       FilterCounters* counters) {
  for (uint32_t oi = begin; oi < end; ++oi) {
    const uint32_t xi = index.order[oi];
    const uint32_t px = index.prefix_len[oi];
    const uint64_t min_partner =
        opts.use_length_filter
            ? PartnerSizeLowerBound(opts.function, opts.theta,
                                    batch.record_size(xi))
            : 0;
    const TokenRank* tokens = batch.tokens(xi);
    for (uint32_t p = 0; p < px; ++p) {
      auto it = index.postings.find(tokens[p]);
      if (it == index.postings.end()) continue;
      const std::vector<uint32_t>& list = it->second;
      // Candidates: postings inserted before this probe whose record size
      // passes the length-filter bound. Record sizes ascend along the list,
      // so both bounds are binary searches.
      auto first = list.begin();
      if (min_partner > 0) {
        first = std::lower_bound(
            list.begin(), list.end(), min_partner,
            [&](uint32_t e, uint64_t bound) {
              return batch.record_size(index.order[e]) < bound;
            });
      }
      auto last = std::lower_bound(first, list.end(), oi);
      for (auto e = first; e != last; ++e) {
        const uint32_t j = index.order[*e];
        if ((*last_probe)[j] == oi) continue;  // already a candidate
        (*last_probe)[j] = oi;
        ProcessPair(batch, j, xi, opts, out, counters);
      }
    }
  }
}

template <typename LenFn>
void IndexedJoin(const SegmentBatch& batch, const FragmentJoinOptions& opts,
                 LenFn prefix_len, std::vector<PartialOverlap>* out,
                 FilterCounters* counters) {
  const PrefixIndex index = BuildPrefixIndex(batch, prefix_len);
  StampPool stamps(batch.size());
  RunMorsels(
      batch.size(), opts,
      [&](uint32_t begin, uint32_t end, std::vector<PartialOverlap>* range_out,
          FilterCounters* range_counters) {
        auto scratch = stamps.Acquire();
        IndexedProbeRange(batch, opts, index, begin, end, scratch.get(),
                          range_out, range_counters);
        stamps.Release(std::move(scratch));
      },
      out, counters);
}

}  // namespace

void JoinFragmentBatch(const SegmentBatch& batch,
                       const FragmentJoinOptions& opts,
                       std::vector<PartialOverlap>* out,
                       FilterCounters* counters) {
  if (batch.empty()) return;
  FSJOIN_CHECK(batch.sealed());  // bitmaps back the empty-overlap reject
  switch (opts.method) {
    case JoinMethod::kLoop:
      RunMorsels(
          batch.size(), opts,
          [&](uint32_t begin, uint32_t end,
              std::vector<PartialOverlap>* range_out,
              FilterCounters* range_counters) {
            LoopJoinRange(batch, opts, begin, end, range_out, range_counters);
          },
          out, counters);
      return;
    case JoinMethod::kIndex:
      IndexedJoin(
          batch, opts, [&batch](uint32_t row) { return batch.length(row); },
          out, counters);
      return;
    case JoinMethod::kPrefix:
      if (opts.aggressive_segment_prefix) {
        // Paper §V-A: each segment filtered like an independent mini-join
        // at threshold θ. Fast but can drop partial counts (see header).
        IndexedJoin(
            batch, opts,
            [&](uint32_t row) {
              return PrefixLength(opts.function, opts.theta,
                                  batch.length(row));
            },
            out, counters);
      } else {
        IndexedJoin(
            batch, opts,
            [&](uint32_t row) {
              return SegmentPrefixLength(opts.function, opts.theta,
                                         batch.View(row));
            },
            out, counters);
      }
      return;
  }
}

void JoinFragment(const std::vector<SegmentRecord>& segments,
                  const FragmentJoinOptions& opts,
                  std::vector<PartialOverlap>* out, FilterCounters* counters) {
  JoinFragmentBatch(SegmentBatch::FromRecords(segments), opts, out, counters);
}

}  // namespace fsjoin
