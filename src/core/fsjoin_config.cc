#include "core/fsjoin_config.h"

#include "util/string_util.h"

namespace fsjoin {

const char* PivotStrategyName(PivotStrategy strategy) {
  switch (strategy) {
    case PivotStrategy::kRandom:
      return "random";
    case PivotStrategy::kEvenInterval:
      return "even-interval";
    case PivotStrategy::kEvenTf:
      return "even-tf";
  }
  return "?";
}

const char* JoinMethodName(JoinMethod method) {
  switch (method) {
    case JoinMethod::kLoop:
      return "loop";
    case JoinMethod::kIndex:
      return "index";
    case JoinMethod::kPrefix:
      return "prefix";
  }
  return "?";
}

Status FsJoinConfig::Validate() const {
  if (theta <= 0.0 || theta > 1.0) {
    return Status::InvalidArgument(
        StrFormat("theta must be in (0, 1], got %f", theta));
  }
  if (num_vertical_partitions == 0) {
    return Status::InvalidArgument("num_vertical_partitions must be >= 1");
  }
  return exec.Validate();
}

std::string FsJoinConfig::Summary() const {
  std::string auto_str;
  if (exec.auto_tune) {
    // Pinned knobs listed so two --auto runs with different explicit
    // overrides are distinguishable from the summary line alone.
    auto_str = StrFormat(", auto[%s%s%s%s]", pinned.join_method ? "J" : "",
                         pinned.kernel ? "K" : "",
                         pinned.pivot_strategy ? "P" : "",
                         pinned.horizontal ? "H" : "");
  }
  return StrFormat(
      "FS-Join(theta=%.2f, fn=%s, V=%u(%s), H=%u, join=%s, filters=%s%s%s%s%s)",
      theta, SimilarityFunctionName(function), num_vertical_partitions,
      PivotStrategyName(pivot_strategy), num_horizontal_partitions,
      JoinMethodName(join_method), use_length_filter ? "L" : "",
      use_segment_length_filter ? "l" : "",
      use_segment_intersection_filter ? "i" : "",
      use_segment_difference_filter ? "d" : "", auto_str.c_str());
}

}  // namespace fsjoin
