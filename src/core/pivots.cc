#include "core/pivots.h"

#include <algorithm>

#include "util/logging.h"
#include "util/random.h"

namespace fsjoin {

std::vector<TokenRank> SelectPivots(const GlobalOrder& order,
                                    PivotStrategy strategy,
                                    uint32_t num_pivots, uint64_t seed) {
  const uint64_t n = order.NumTokens();
  std::vector<TokenRank> pivots;
  if (num_pivots == 0 || n <= 1) return pivots;
  // A pivot at rank r starts a new segment, so valid pivots are 1..n-1.
  const uint64_t max_pivots = std::min<uint64_t>(num_pivots, n - 1);

  switch (strategy) {
    case PivotStrategy::kRandom: {
      Rng rng(seed);
      std::vector<TokenRank> all(n - 1);
      for (uint64_t i = 0; i < n - 1; ++i) all[i] = static_cast<TokenRank>(i + 1);
      Shuffle(all, rng);
      pivots.assign(all.begin(), all.begin() + max_pivots);
      std::sort(pivots.begin(), pivots.end());
      break;
    }
    case PivotStrategy::kEvenInterval: {
      for (uint64_t k = 1; k <= max_pivots; ++k) {
        TokenRank p = static_cast<TokenRank>(k * n / (max_pivots + 1));
        if (p == 0) p = 1;
        if (pivots.empty() || p > pivots.back()) pivots.push_back(p);
      }
      break;
    }
    case PivotStrategy::kEvenTf: {
      const uint64_t total = order.TotalFrequency();
      if (total == 0) {
        // Degenerate corpus: fall back to even intervals.
        return SelectPivots(order, PivotStrategy::kEvenInterval, num_pivots,
                            seed);
      }
      uint64_t cum = 0;
      uint64_t next_target = 1;
      for (uint64_t r = 0; r < n && pivots.size() < max_pivots; ++r) {
        const uint64_t freq = order.FrequencyAt(static_cast<TokenRank>(r));
        const uint64_t cum_after = cum + freq;
        // Place a boundary when the cumulative frequency crosses the
        // next_target-th equal share of the total, choosing the side of
        // rank r closer to the target to minimize fragment imbalance.
        while (pivots.size() < max_pivots &&
               cum_after * (max_pivots + 1) >= next_target * total) {
          const double target = static_cast<double>(next_target) * total /
                                (max_pivots + 1);
          // Boundary before r if cum is closer to the target, else after.
          TokenRank p = (target - static_cast<double>(cum) <
                         static_cast<double>(cum_after) - target)
                            ? static_cast<TokenRank>(r)
                            : static_cast<TokenRank>(r + 1);
          if (p > 0 && p < n && (pivots.empty() || p > pivots.back())) {
            pivots.push_back(p);
          }
          ++next_target;
        }
        cum = cum_after;
      }
      break;
    }
  }
  return pivots;
}

uint32_t SegmentOfRank(const std::vector<TokenRank>& pivots, TokenRank rank) {
  // First pivot > rank gives the segment boundary; segment = #pivots <= rank.
  return static_cast<uint32_t>(
      std::upper_bound(pivots.begin(), pivots.end(), rank) - pivots.begin());
}

std::vector<uint64_t> FragmentFrequencies(
    const GlobalOrder& order, const std::vector<TokenRank>& pivots) {
  std::vector<uint64_t> freq(pivots.size() + 1, 0);
  for (uint64_t r = 0; r < order.NumTokens(); ++r) {
    freq[SegmentOfRank(pivots, static_cast<TokenRank>(r))] +=
        order.FrequencyAt(static_cast<TokenRank>(r));
  }
  return freq;
}

}  // namespace fsjoin
