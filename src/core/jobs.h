#ifndef FSJOIN_CORE_JOBS_H_
#define FSJOIN_CORE_JOBS_H_

#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "core/fragment_join.h"
#include "core/fsjoin_config.h"
#include "core/horizontal.h"
#include "mr/job.h"
#include "mr/kv.h"
#include "sim/global_order.h"
#include "sim/join_result.h"
#include "text/corpus.h"
#include "tune/decision.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace fsjoin {

/// ---- Corpus <-> MR dataset ------------------------------------------
/// Input records: key = Fixed32BE(rid), value = varint-coded token vector.

/// Serializes a corpus into the engine's input dataset.
mr::Dataset MakeCorpusDataset(const Corpus& corpus);

/// Parses one input record.
Status DecodeCorpusRecord(const mr::KeyValue& kv, RecordId* rid,
                          std::vector<TokenId>* tokens);

/// ---- Job 1: ordering (token frequency) -------------------------------
/// map:    (rid, tokens)  -> (token, 1) per distinct token
/// combine/reduce: sum counts -> (token, frequency)

/// Mapper/combiner/reducer factories for the ordering job.
mr::JobConfig MakeOrderingJobConfig(uint32_t num_map_tasks,
                                    uint32_t num_reduce_tasks);

/// Builds the global ordering from the ordering job's output. `vocab_size`
/// is the dictionary size (tokens with no output record get frequency 0).
Result<GlobalOrder> BuildGlobalOrderFromJobOutput(const mr::Dataset& output,
                                                  size_t vocab_size);

/// ---- Job 2: filtering (vertical partition + fragment join) ----------
/// map:    (rid, tokens) -> ((h, v), segment) per horizontal group h and
///         non-empty vertical segment v  — duplicate-free in v.
/// reduce: fragment join -> ((rid_a, rid_b), (overlap, |a|, |b|))

/// Read-only state shared by all filtering tasks (the paper distributes the
/// ordering and pivots via Hadoop's distributed cache; we share memory) plus
/// mutex-guarded filter counters aggregated across reducers.
struct FilteringContext {
  FsJoinConfig config;
  std::shared_ptr<const GlobalOrder> order;
  std::vector<TokenRank> pivots;
  HorizontalScheme horizontal;

  /// Morsel pool for parallel fragment joins, shared by every filtering
  /// reducer of the run so morsels steal work across fragments (created by
  /// the driver when config.exec.parallel_fragment_join is set; null =
  /// serial joins).
  std::unique_ptr<ThreadPool> join_pool;

  /// --auto state (DESIGN.md §5i), set by the driver; empty/false without
  /// exec.auto_tune. When split_fragment is non-empty (skew-triggered
  /// horizontal splitting), fragment v emits and dedups through the
  /// horizontal scheme iff split_fragment[v] != 0; every other fragment
  /// collapses to length group 0 and joins all its pairs there — each pair
  /// still counted exactly once per fragment, so partial-overlap
  /// conservation is untouched.
  std::vector<uint8_t> split_fragment;
  tune::TuningPolicy policy;
  bool auto_choose_method = false;  ///< per-fragment join-method choice on
  bool auto_choose_kernel = false;  ///< per-fragment kernel choice on

  std::mutex mu;
  FilterCounters totals;
  /// Capture sink for config.collect_partial_overlaps (mu-guarded; order is
  /// arbitrary — the driver sorts canonically before handing it out).
  std::vector<PartialOverlap> captured_partials;
  /// Decision histogram of the per-fragment choices (mu-guarded, merged
  /// across fork boundaries by the side channel): how many fragments
  /// resolved to each JoinMethod / resolved KernelMode. Zero without
  /// --auto; the driver renders them into JobMetrics::join_kernel.
  uint64_t auto_method_counts[3] = {0, 0, 0};
  uint64_t auto_kernel_counts[4] = {0, 0, 0, 0};
};

mr::JobConfig MakeFilteringJobConfig(
    const std::shared_ptr<FilteringContext>& context);

/// Routes (h, v) fragment keys to reducers round-robin so fragment loads
/// are directly visible as per-reducer input sizes.
class FragmentPartitioner : public mr::Partitioner {
 public:
  explicit FragmentPartitioner(uint32_t num_vertical)
      : num_vertical_(num_vertical) {}
  uint32_t Partition(std::string_view key,
                     uint32_t num_partitions) const override;

 private:
  uint32_t num_vertical_;
};

/// ---- Job 3: verification (overlap aggregation) -----------------------
/// map:    identity
/// reduce: sum partial overlaps; emit (pair, similarity) when >= theta.

/// Shared verification counters.
struct VerificationContext {
  FsJoinConfig config;
  std::mutex mu;
  uint64_t candidate_pairs = 0;  ///< distinct pairs aggregated
};

mr::JobConfig MakeVerificationJobConfig(
    const std::shared_ptr<VerificationContext>& context);

/// Parses the verification job's output into join results.
Result<JoinResultSet> DecodeJoinResults(const mr::Dataset& output);

/// Encodes one partial overlap the way the filtering reducer does (exposed
/// for the baselines, which reuse the verification job).
void EncodePartialOverlap(const PartialOverlap& partial, std::string* key,
                          std::string* value);

}  // namespace fsjoin

#endif  // FSJOIN_CORE_JOBS_H_
