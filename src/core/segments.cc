#include "core/segments.h"

#include <algorithm>

#include "core/pivots.h"
#include "sim/set_ops.h"
#include "util/serde.h"

namespace fsjoin {

namespace {

/// Container policy knobs. A segment keeps the plain array unless an
/// alternate form is clearly cheaper: runs win when the tokens are so
/// clustered that one run covers >= 4 tokens on average (interval merge then
/// touches 4x fewer entries than the array), bitsets when the tokens are so
/// dense that a 64-bit grid word covers >= 2 tokens on average (the words
/// cost no more memory than the array window and intersect by popcount).
/// Below kContainerMinTokens the array merge is already a handful of
/// compares and the dispatch overhead would eat any win.
constexpr uint32_t kContainerMinTokens = 16;
constexpr uint32_t kRunsMaxRatio = 4;    ///< tokens per run, at least
constexpr uint32_t kBitsetMinDensity = 2;  ///< tokens per grid word, at least

}  // namespace

const char* SegContainerName(SegContainer c) {
  switch (c) {
    case SegContainer::kArray:
      return "array";
    case SegContainer::kBitset:
      return "bitset";
    case SegContainer::kRuns:
      return "runs";
  }
  return "?";
}

void SegmentBatch::Reserve(size_t num_segments, size_t num_tokens) {
  arena_.reserve(num_tokens);
  offsets_.reserve(num_segments + 1);
  rids_.reserve(num_segments);
  record_sizes_.reserve(num_segments);
  heads_.reserve(num_segments);
}

void SegmentBatch::Append(RecordId rid, uint32_t record_size, uint32_t head,
                          const TokenRank* tokens, size_t num_tokens) {
  arena_.insert(arena_.end(), tokens, tokens + num_tokens);
  offsets_.push_back(arena_.size());
  rids_.push_back(rid);
  record_sizes_.push_back(record_size);
  heads_.push_back(head);
  sealed_ = false;
}

void SegmentBatch::Append(const SegmentRecord& record) {
  Append(record.rid, record.record_size, record.head, record.tokens.data(),
         record.tokens.size());
}

Status SegmentBatch::AppendEncoded(std::string_view data) {
  Decoder dec(data);
  uint32_t rid = 0, record_size = 0, head = 0;
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&rid));
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&record_size));
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&head));
  uint64_t num_tokens = 0;
  FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&num_tokens));
  if (num_tokens > dec.remaining()) {
    // Each token takes at least one byte, so this is malformed.
    return Status::OutOfRange("truncated segment token vector");
  }
  const size_t start = arena_.size();
  arena_.reserve(start + num_tokens);
  for (uint64_t i = 0; i < num_tokens; ++i) {
    uint32_t token = 0;
    Status st = dec.GetVarint32(&token);
    if (!st.ok()) {
      arena_.resize(start);  // leave the batch as it was before the call
      return st;
    }
    arena_.push_back(token);
  }
  if (!dec.done()) {
    arena_.resize(start);
    return Status::Internal("trailing bytes after segment record");
  }
  offsets_.push_back(arena_.size());
  rids_.push_back(rid);
  record_sizes_.push_back(record_size);
  heads_.push_back(head);
  sealed_ = false;
  return Status::OK();
}

void SegmentBatch::Seal() {
  bitmaps_.assign(size(), 0);
  // Fragment-local bucket mapping: all segments of a batch live inside one
  // pivot interval, so anchoring the 64 buckets at the observed rank range
  // keeps them information-dense (a corpus-global mapping would collapse a
  // fragment onto a handful of buckets).
  uint32_t lo = 0, hi = 0;
  bool any = false;
  for (uint32_t i = 0; i < size(); ++i) {
    const uint32_t len = length(i);
    if (len == 0) continue;
    const TokenRank* t = tokens(i);  // sorted ascending
    if (!any) {
      lo = t[0];
      hi = t[len - 1];
      any = true;
    } else {
      lo = std::min(lo, t[0]);
      hi = std::max(hi, t[len - 1]);
    }
  }
  if (any) {
    const uint32_t shift =
        BitmapShiftForSpan(static_cast<uint64_t>(hi) - lo + 1);
    for (uint32_t i = 0; i < size(); ++i) {
      bitmaps_[i] = TokenBitmap(tokens(i), length(i), lo, shift);
    }
  }
  // Container classification (policy constants at the top of this file).
  // The token array stays in the arena either way; kRuns/kBitset segments
  // additionally get a window in the shared run/bitset arena.
  containers_.assign(size(), SegContainer::kArray);
  bitset_arena_.clear();
  bitset_offsets_.assign(size(), 0);
  bitset_word0_.assign(size(), 0);
  bitset_num_words_.assign(size(), 0);
  runs_arena_.clear();
  run_offsets_.assign(size(), 0);
  run_counts_.assign(size(), 0);
  for (uint32_t i = 0; i < size(); ++i) {
    const uint32_t len = length(i);
    if (len < kContainerMinTokens) continue;
    const TokenRank* t = tokens(i);
    const size_t nruns = CountTokenRuns(t, len);
    if (nruns * kRunsMaxRatio <= len) {
      containers_[i] = SegContainer::kRuns;
      run_offsets_[i] = static_cast<uint32_t>(runs_arena_.size());
      run_counts_[i] = static_cast<uint32_t>(nruns);
      AppendTokenRuns(t, len, &runs_arena_);
      continue;
    }
    const uint32_t word0 = t[0] / 64;
    const uint32_t nwords = t[len - 1] / 64 - word0 + 1;
    if (nwords * kBitsetMinDensity <= len) {
      containers_[i] = SegContainer::kBitset;
      bitset_offsets_[i] = static_cast<uint32_t>(bitset_arena_.size());
      bitset_word0_[i] = word0;
      bitset_num_words_[i] = nwords;
      bitset_arena_.resize(bitset_arena_.size() + nwords, 0);
      uint64_t* words = bitset_arena_.data() + bitset_offsets_[i];
      for (uint32_t k = 0; k < len; ++k) {
        words[t[k] / 64 - word0] |= uint64_t{1} << (t[k] % 64);
      }
    }
  }
  sealed_ = true;
  side_tagged_ = false;
  probe_side_.clear();
  probe_rows_.clear();
  build_rows_.clear();
}

void SegmentBatch::TagSides(RecordId boundary) {
  probe_side_.assign(size(), 0);
  probe_rows_.clear();
  build_rows_.clear();
  for (uint32_t i = 0; i < size(); ++i) {
    if (rids_[i] < boundary) {
      probe_side_[i] = 1;
      probe_rows_.push_back(i);
    } else {
      build_rows_.push_back(i);
    }
  }
  side_tagged_ = true;
}

SegmentBatch SegmentBatch::FromRecords(
    const std::vector<SegmentRecord>& records) {
  SegmentBatch batch;
  size_t total = 0;
  for (const SegmentRecord& r : records) total += r.tokens.size();
  batch.Reserve(records.size(), total);
  for (const SegmentRecord& r : records) batch.Append(r);
  batch.Seal();
  return batch;
}

SegmentSplit SplitIntoSegments(const OrderedRecord& record,
                               const std::vector<TokenRank>& pivots) {
  SegmentSplit split;
  const std::vector<TokenRank>& tokens = record.tokens;
  size_t i = 0;
  while (i < tokens.size()) {
    const uint32_t fragment = SegmentOfRank(pivots, tokens[i]);
    // End of this fragment's rank range (exclusive); the last fragment is
    // unbounded.
    size_t j = i;
    if (fragment < pivots.size()) {
      const TokenRank limit = pivots[fragment];
      while (j < tokens.size() && tokens[j] < limit) ++j;
    } else {
      j = tokens.size();
    }
    SegmentRecord seg;
    seg.rid = record.id;
    seg.record_size = static_cast<uint32_t>(tokens.size());
    seg.head = static_cast<uint32_t>(i);
    seg.tokens.assign(tokens.begin() + i, tokens.begin() + j);
    split.fragment_ids.push_back(fragment);
    split.segments.push_back(std::move(seg));
    i = j;
  }
  return split;
}

void EncodeSegment(const SegmentRecord& segment, std::string* out) {
  PutVarint32(out, segment.rid);
  PutVarint32(out, segment.record_size);
  PutVarint32(out, segment.head);
  PutUint32Vector(out, segment.tokens);
}

Status DecodeSegment(std::string_view data, SegmentRecord* segment) {
  Decoder dec(data);
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&segment->rid));
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&segment->record_size));
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&segment->head));
  FSJOIN_RETURN_NOT_OK(dec.GetUint32Vector(&segment->tokens));
  if (!dec.done()) {
    return Status::Internal("trailing bytes after segment record");
  }
  return Status::OK();
}

}  // namespace fsjoin
