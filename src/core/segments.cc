#include "core/segments.h"

#include <algorithm>

#include "core/pivots.h"
#include "sim/set_ops.h"
#include "util/serde.h"

namespace fsjoin {

void SegmentBatch::Reserve(size_t num_segments, size_t num_tokens) {
  arena_.reserve(num_tokens);
  offsets_.reserve(num_segments + 1);
  rids_.reserve(num_segments);
  record_sizes_.reserve(num_segments);
  heads_.reserve(num_segments);
}

void SegmentBatch::Append(RecordId rid, uint32_t record_size, uint32_t head,
                          const TokenRank* tokens, size_t num_tokens) {
  arena_.insert(arena_.end(), tokens, tokens + num_tokens);
  offsets_.push_back(arena_.size());
  rids_.push_back(rid);
  record_sizes_.push_back(record_size);
  heads_.push_back(head);
  sealed_ = false;
}

void SegmentBatch::Append(const SegmentRecord& record) {
  Append(record.rid, record.record_size, record.head, record.tokens.data(),
         record.tokens.size());
}

Status SegmentBatch::AppendEncoded(std::string_view data) {
  Decoder dec(data);
  uint32_t rid = 0, record_size = 0, head = 0;
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&rid));
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&record_size));
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&head));
  uint64_t num_tokens = 0;
  FSJOIN_RETURN_NOT_OK(dec.GetVarint64(&num_tokens));
  if (num_tokens > dec.remaining()) {
    // Each token takes at least one byte, so this is malformed.
    return Status::OutOfRange("truncated segment token vector");
  }
  const size_t start = arena_.size();
  arena_.reserve(start + num_tokens);
  for (uint64_t i = 0; i < num_tokens; ++i) {
    uint32_t token = 0;
    Status st = dec.GetVarint32(&token);
    if (!st.ok()) {
      arena_.resize(start);  // leave the batch as it was before the call
      return st;
    }
    arena_.push_back(token);
  }
  if (!dec.done()) {
    arena_.resize(start);
    return Status::Internal("trailing bytes after segment record");
  }
  offsets_.push_back(arena_.size());
  rids_.push_back(rid);
  record_sizes_.push_back(record_size);
  heads_.push_back(head);
  sealed_ = false;
  return Status::OK();
}

void SegmentBatch::Seal() {
  bitmaps_.assign(size(), 0);
  // Fragment-local bucket mapping: all segments of a batch live inside one
  // pivot interval, so anchoring the 64 buckets at the observed rank range
  // keeps them information-dense (a corpus-global mapping would collapse a
  // fragment onto a handful of buckets).
  uint32_t lo = 0, hi = 0;
  bool any = false;
  for (uint32_t i = 0; i < size(); ++i) {
    const uint32_t len = length(i);
    if (len == 0) continue;
    const TokenRank* t = tokens(i);  // sorted ascending
    if (!any) {
      lo = t[0];
      hi = t[len - 1];
      any = true;
    } else {
      lo = std::min(lo, t[0]);
      hi = std::max(hi, t[len - 1]);
    }
  }
  if (any) {
    const uint32_t shift =
        BitmapShiftForSpan(static_cast<uint64_t>(hi) - lo + 1);
    for (uint32_t i = 0; i < size(); ++i) {
      bitmaps_[i] = TokenBitmap(tokens(i), length(i), lo, shift);
    }
  }
  sealed_ = true;
}

SegmentBatch SegmentBatch::FromRecords(
    const std::vector<SegmentRecord>& records) {
  SegmentBatch batch;
  size_t total = 0;
  for (const SegmentRecord& r : records) total += r.tokens.size();
  batch.Reserve(records.size(), total);
  for (const SegmentRecord& r : records) batch.Append(r);
  batch.Seal();
  return batch;
}

SegmentSplit SplitIntoSegments(const OrderedRecord& record,
                               const std::vector<TokenRank>& pivots) {
  SegmentSplit split;
  const std::vector<TokenRank>& tokens = record.tokens;
  size_t i = 0;
  while (i < tokens.size()) {
    const uint32_t fragment = SegmentOfRank(pivots, tokens[i]);
    // End of this fragment's rank range (exclusive); the last fragment is
    // unbounded.
    size_t j = i;
    if (fragment < pivots.size()) {
      const TokenRank limit = pivots[fragment];
      while (j < tokens.size() && tokens[j] < limit) ++j;
    } else {
      j = tokens.size();
    }
    SegmentRecord seg;
    seg.rid = record.id;
    seg.record_size = static_cast<uint32_t>(tokens.size());
    seg.head = static_cast<uint32_t>(i);
    seg.tokens.assign(tokens.begin() + i, tokens.begin() + j);
    split.fragment_ids.push_back(fragment);
    split.segments.push_back(std::move(seg));
    i = j;
  }
  return split;
}

void EncodeSegment(const SegmentRecord& segment, std::string* out) {
  PutVarint32(out, segment.rid);
  PutVarint32(out, segment.record_size);
  PutVarint32(out, segment.head);
  PutUint32Vector(out, segment.tokens);
}

Status DecodeSegment(std::string_view data, SegmentRecord* segment) {
  Decoder dec(data);
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&segment->rid));
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&segment->record_size));
  FSJOIN_RETURN_NOT_OK(dec.GetVarint32(&segment->head));
  FSJOIN_RETURN_NOT_OK(dec.GetUint32Vector(&segment->tokens));
  if (!dec.done()) {
    return Status::Internal("trailing bytes after segment record");
  }
  return Status::OK();
}

}  // namespace fsjoin
